/** @file Tests for the static program IR (trace/program). */

#include <gtest/gtest.h>

#include "trace/program.hh"

namespace
{

using namespace interf::trace;
using interf::u32;
using interf::u64;

/** A minimal two-procedure program used by several tests. */
Program
tinyProgram()
{
    Program prog;
    u32 region = prog.addRegion(RegionKind::Heap, 4096);

    Procedure callee;
    callee.name = "callee";
    {
        BasicBlock bb;
        bb.nInsts = 3;
        bb.bytes = 12;
        bb.branch.kind = OpClass::Return;
        callee.blocks.push_back(bb);
    }
    Procedure main_proc;
    main_proc.name = "main";
    {
        BasicBlock bb;
        bb.nInsts = 4;
        bb.bytes = 16;
        MemRef ref;
        ref.regionId = region;
        bb.memRefs.push_back(ref);
        ref.isStore = true;
        bb.memRefs.push_back(ref);
        bb.branch.kind = OpClass::Call;
        bb.branch.targetProc = 1;
        main_proc.blocks.push_back(bb);
    }
    {
        BasicBlock bb;
        bb.nInsts = 2;
        bb.bytes = 6;
        bb.branch.kind = OpClass::Return;
        main_proc.blocks.push_back(bb);
    }
    u32 m = prog.addProcedure(main_proc);
    u32 c = prog.addProcedure(callee);
    u32 f = prog.addFile("tiny.o");
    prog.placeInFile(f, m);
    prog.placeInFile(f, c);
    return prog;
}

TEST(Program, IdsAssignedSequentially)
{
    auto prog = tinyProgram();
    EXPECT_EQ(prog.procedures().size(), 2u);
    EXPECT_EQ(prog.proc(0).name, "main");
    EXPECT_EQ(prog.proc(1).name, "callee");
    EXPECT_EQ(prog.proc(0).id, 0u);
    EXPECT_EQ(prog.proc(1).id, 1u);
}

TEST(Program, ValidatePassesOnWellFormed)
{
    auto prog = tinyProgram();
    prog.validate(); // must not panic
    SUCCEED();
}

TEST(Program, ByteAndBlockAccounting)
{
    auto prog = tinyProgram();
    EXPECT_EQ(prog.proc(0).bytes(), 22u);
    EXPECT_EQ(prog.totalCodeBytes(), 34u);
    EXPECT_EQ(prog.totalBlocks(), 3u);
}

TEST(Program, CondBranchSitesCounted)
{
    auto prog = tinyProgram();
    EXPECT_EQ(prog.condBranchSites(), 0u);
}

TEST(Program, LoadsAndStoresPerBlock)
{
    auto prog = tinyProgram();
    const auto &bb = prog.block(0, 0);
    EXPECT_EQ(bb.loads(), 1u);
    EXPECT_EQ(bb.stores(), 1u);
}

TEST(Program, StaticBranchClassification)
{
    StaticBranch none;
    EXPECT_FALSE(none.exists());
    EXPECT_FALSE(none.isConditional());
    StaticBranch cond;
    cond.kind = OpClass::CondBranch;
    EXPECT_TRUE(cond.exists());
    EXPECT_TRUE(cond.isConditional());
    StaticBranch call;
    call.kind = OpClass::Call;
    EXPECT_TRUE(call.exists());
    EXPECT_FALSE(call.isConditional());
}

TEST(DataId, PacksAndUnpacks)
{
    u64 id = makeDataId(7, 0x123456);
    EXPECT_EQ(dataIdRegion(id), 7u);
    EXPECT_EQ(dataIdOffset(id), 0x123456u);

    u64 big = makeDataId(0xffffff, (u64{1} << 40) - 1);
    EXPECT_EQ(dataIdRegion(big), 0xffffffu);
    EXPECT_EQ(dataIdOffset(big), (u64{1} << 40) - 1);
}

TEST(Program, RegionsRecorded)
{
    auto prog = tinyProgram();
    ASSERT_EQ(prog.regions().size(), 1u);
    EXPECT_EQ(prog.region(0).kind, RegionKind::Heap);
    EXPECT_EQ(prog.region(0).size, 4096u);
}

TEST(ProgramDeathTest, DuplicateFileMembershipFails)
{
    auto prog = tinyProgram();
    prog.placeInFile(0, 0); // main placed twice
    EXPECT_DEATH(prog.validate(), "multiple object files");
}

TEST(ProgramDeathTest, OrphanProcedureFails)
{
    Program prog;
    Procedure p;
    p.name = "orphan";
    BasicBlock bb;
    bb.nInsts = 1;
    bb.bytes = 4;
    bb.branch.kind = OpClass::Return;
    p.blocks.push_back(bb);
    prog.addProcedure(p);
    prog.addFile("empty.o");
    EXPECT_DEATH(prog.validate(), "not in any object file");
}

TEST(ProgramDeathTest, BadBranchTargetFails)
{
    auto prog = tinyProgram();
    Procedure bad;
    bad.name = "bad";
    BasicBlock bb;
    bb.nInsts = 1;
    bb.bytes = 4;
    bb.branch.kind = OpClass::UncondBranch;
    bb.branch.targetProc = 0;
    bb.branch.targetBlock = 99; // out of range
    bad.blocks.push_back(bb);
    u32 id = prog.addProcedure(bad);
    prog.placeInFile(0, id);
    EXPECT_DEATH(prog.validate(), "assertion");
}

TEST(ProgramDeathTest, CondWithoutPatternFails)
{
    auto prog = tinyProgram();
    Procedure bad;
    bad.name = "badcond";
    BasicBlock bb;
    bb.nInsts = 1;
    bb.bytes = 4;
    bb.branch.kind = OpClass::CondBranch;
    bb.branch.targetProc = 0;
    bb.branch.targetBlock = 0;
    bb.branch.pattern = BranchPattern::None;
    bad.blocks.push_back(bb);
    u32 id = prog.addProcedure(bad);
    prog.placeInFile(0, id);
    EXPECT_DEATH(prog.validate(), "assertion");
}

} // anonymous namespace
