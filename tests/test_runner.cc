/** @file Tests for the median-of-five, three-group measurement
 *  protocol. */

#include <cmath>

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "layout/linker.hh"
#include "trace/generator.hh"
#include "workloads/builder.hh"

namespace
{

using namespace interf;
using namespace interf::core;

struct Fixture
{
    trace::Program prog;
    trace::Trace trace;
    layout::CodeLayout code;
    layout::HeapLayout heap;

    Fixture()
        : prog(workloads::buildProgram(workloads::defaultProfile("run"))),
          trace(trace::TraceGenerator(prog, 2).makeTrace(80000)),
          code(layout::Linker().link(prog,
                                     layout::LayoutKey{5, true, true})),
          heap(prog, layout::HeapKey::deterministic())
    {
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(Runner, NoiselessMeasurementMatchesTruth)
{
    RunnerConfig rc;
    rc.noise = NoiseConfig::none();
    MeasurementRunner runner(MachineConfig::xeonE5440(), rc);
    auto &f = fixture();
    auto run = runner.measureWithTruth(f.prog, f.trace, f.code, f.heap, 1);
    const auto &m = run.sample;
    const auto &truth = run.truth;
    EXPECT_EQ(m.cycles, truth.cycles);
    EXPECT_EQ(m.instructions, truth.instructions);
    EXPECT_EQ(m.mispredicts, truth.mispredicts);
    EXPECT_EQ(m.l1iMisses, truth.l1iMisses);
    EXPECT_EQ(m.l2Misses, truth.l2Misses);
}

TEST(Runner, DerivedRatesConsistent)
{
    RunnerConfig rc;
    rc.noise = NoiseConfig::none();
    MeasurementRunner runner(MachineConfig::xeonE5440(), rc);
    auto &f = fixture();
    auto m = runner.measure(f.prog, f.trace, f.code, f.heap, 1);
    double kilo = double(m.instructions) / 1000.0;
    EXPECT_NEAR(m.mpki, double(m.mispredicts) / kilo, 1e-12);
    EXPECT_NEAR(m.l1iMpki, double(m.l1iMisses) / kilo, 1e-12);
    EXPECT_NEAR(m.l2Mpki, double(m.l2Misses) / kilo, 1e-12);
    EXPECT_NEAR(m.cpi, double(m.cycles) / double(m.instructions), 1e-12);
}

TEST(Runner, EventCountsImmuneToNoise)
{
    // User-mode event filtering: only cycles carry noise.
    RunnerConfig noisy;
    noisy.noise.jitterSigma = 0.01;
    noisy.noise.spikeProb = 0.3;
    RunnerConfig clean;
    clean.noise = NoiseConfig::none();
    MeasurementRunner a(MachineConfig::xeonE5440(), noisy);
    MeasurementRunner b(MachineConfig::xeonE5440(), clean);
    auto &f = fixture();
    auto ma = a.measure(f.prog, f.trace, f.code, f.heap, 1);
    auto mb = b.measure(f.prog, f.trace, f.code, f.heap, 1);
    EXPECT_EQ(ma.mispredicts, mb.mispredicts);
    EXPECT_EQ(ma.l1dMisses, mb.l1dMisses);
    EXPECT_EQ(ma.btbMisses, mb.btbMisses);
    EXPECT_NE(ma.cycles, mb.cycles);
}

TEST(Runner, MedianOfFiveBeatsSingleRun)
{
    RunnerConfig rc;
    rc.noise.jitterSigma = 0.004;
    rc.noise.spikeProb = 0.25;
    rc.noise.spikeMax = 0.08;
    auto &f = fixture();

    MeasurementRunner five(MachineConfig::xeonE5440(), rc);
    auto truth_runner = MeasurementRunner(
        MachineConfig::xeonE5440(),
        RunnerConfig{1, NoiseConfig::none()});
    auto truth = truth_runner
                     .measure(f.prog, f.trace, f.code, f.heap, 0)
                     .cycles;

    RunnerConfig one = rc;
    one.runsPerGroup = 1;
    MeasurementRunner single(MachineConfig::xeonE5440(), one);

    double err5 = 0, err1 = 0;
    for (u64 seed = 0; seed < 12; ++seed) {
        auto m5 = five.measure(f.prog, f.trace, f.code, f.heap, seed);
        auto m1 = single.measure(f.prog, f.trace, f.code, f.heap, seed);
        err5 += std::fabs(double(m5.cycles) - double(truth));
        err1 += std::fabs(double(m1.cycles) - double(truth));
    }
    EXPECT_LT(err5, err1);
}

TEST(Runner, ReproduciblePerNoiseSeed)
{
    RunnerConfig rc;
    MeasurementRunner runner(MachineConfig::xeonE5440(), rc);
    auto &f = fixture();
    auto a = runner.measure(f.prog, f.trace, f.code, f.heap, 77);
    auto b = runner.measure(f.prog, f.trace, f.code, f.heap, 77);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cpi, b.cpi);
}

TEST(Runner, LayoutSeedRecorded)
{
    RunnerConfig rc;
    MeasurementRunner runner(MachineConfig::xeonE5440(), rc);
    auto &f = fixture();
    auto m = runner.measure(f.prog, f.trace, f.code, f.heap, 1234);
    EXPECT_EQ(m.layoutSeed, 1234u);
}

/** measureBatch lane i must reproduce measure() of the same layout
 *  and noise seed, bit for bit — the guarantee that lets campaigns
 *  group lanes freely. Uses noisy runs so the per-lane noise seeds
 *  are genuinely exercised. */
TEST(Runner, BatchedMeasurementMatchesPerLane)
{
    RunnerConfig rc;
    auto cfg = MachineConfig::xeonE5440();
    auto &f = fixture();
    trace::ReplayPlan plan(f.prog, f.trace);

    std::vector<trace::LayoutTables> lanes;
    std::vector<u64> seeds;
    std::vector<Measurement> expected;
    for (u64 i = 0; i < 3; ++i) {
        auto code = layout::Linker().link(
            f.prog, layout::LayoutKey{10 + i, true, true});
        layout::HeapKey hk;
        hk.seed = 10 + i;
        hk.randomize = true;
        layout::HeapLayout heap(f.prog, hk);
        layout::PageMap pages(100 + i);
        lanes.emplace_back(plan, code, heap, pages,
                           cfg.hierarchy.l1i.lineBytes);
        seeds.push_back(5000 + i);
        MeasurementRunner runner(cfg, rc);
        expected.push_back(
            runner.measure(plan, lanes.back(), seeds.back()));
    }

    MeasurementRunner runner(cfg, rc);
    trace::BatchedLayoutTables batched(plan, std::move(lanes));
    auto got = runner.measureBatch(plan, batched, seeds);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].layoutSeed, expected[i].layoutSeed);
        EXPECT_EQ(got[i].cycles, expected[i].cycles);
        EXPECT_EQ(got[i].instructions, expected[i].instructions);
        EXPECT_EQ(got[i].condBranches, expected[i].condBranches);
        EXPECT_EQ(got[i].mispredicts, expected[i].mispredicts);
        EXPECT_EQ(got[i].l1iMisses, expected[i].l1iMisses);
        EXPECT_EQ(got[i].l1dMisses, expected[i].l1dMisses);
        EXPECT_EQ(got[i].l2Misses, expected[i].l2Misses);
        EXPECT_EQ(got[i].btbMisses, expected[i].btbMisses);
        EXPECT_EQ(got[i].cpi, expected[i].cpi);
        EXPECT_EQ(got[i].mpki, expected[i].mpki);
        EXPECT_EQ(got[i].l1iMpki, expected[i].l1iMpki);
        EXPECT_EQ(got[i].l1dMpki, expected[i].l1dMpki);
        EXPECT_EQ(got[i].l2Mpki, expected[i].l2Mpki);
        EXPECT_EQ(got[i].btbMpki, expected[i].btbMpki);
    }
}

TEST(RunnerDeathTest, ZeroRunsIsFatal)
{
    RunnerConfig rc;
    rc.runsPerGroup = 0;
    EXPECT_EXIT(MeasurementRunner(MachineConfig::xeonE5440(), rc),
                ::testing::ExitedWithCode(1), "runsPerGroup");
}

} // anonymous namespace
