/** @file Tests for the exec substrate: fixed-size thread pool and the
 *  deterministic parallelFor/parallelMap helpers. */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "exec/threadpool.hh"

namespace
{

using namespace interf;
using namespace interf::exec;

TEST(ThreadPool, ResolvesZeroToHardware)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
    EXPECT_EQ(ThreadPool::resolveJobs(0), ThreadPool::hardwareWorkers());
    EXPECT_EQ(ThreadPool::resolveJobs(3), 3u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), ThreadPool::hardwareWorkers());
}

TEST(ThreadPool, SubmitWaitRunsAllTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait(); // nothing submitted: must not hang
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(pool, hits.size(),
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRange)
{
    ThreadPool pool(4);
    int calls = 0;
    parallelFor(pool, 0, [&calls](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    parallelFor(pool, hits.size(),
                [&hits](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionTheRange)
{
    ThreadPool pool(4);
    // 10 indices over 4 workers: chunk sizes differ by at most one and
    // the chunks tile [0, 10) without gaps or overlap.
    std::vector<std::atomic<int>> hits(10);
    std::atomic<int> chunks{0};
    std::atomic<int> max_len{0};
    std::atomic<int> min_len{1000};
    parallelForChunks(pool, hits.size(),
                      [&](size_t begin, size_t end) {
                          chunks.fetch_add(1);
                          int len = static_cast<int>(end - begin);
                          int seen = max_len.load();
                          while (len > seen &&
                                 !max_len.compare_exchange_weak(seen, len)) {
                          }
                          seen = min_len.load();
                          while (len < seen &&
                                 !min_len.compare_exchange_weak(seen, len)) {
                          }
                          for (size_t i = begin; i < end; ++i)
                              hits[i].fetch_add(1);
                      });
    EXPECT_EQ(chunks.load(), 4);
    EXPECT_LE(max_len.load() - min_len.load(), 1);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 100,
                             [](size_t i) {
                                 if (i == 37)
                                     throw std::runtime_error("task 37");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, LowestChunkExceptionWins)
{
    ThreadPool pool(4);
    // Every chunk throws its begin index; the rethrown one must be
    // chunk 0's regardless of which worker finishes first.
    try {
        parallelForChunks(pool, 100, [](size_t begin, size_t) {
            throw std::runtime_error("chunk@" + std::to_string(begin));
        });
        FAIL() << "expected a throw";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "chunk@0");
    }
}

TEST(ThreadPool, UsableAfterException)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 8,
                             [](size_t) {
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // The workers survived; the next batch runs normally.
    std::atomic<int> done{0};
    parallelFor(pool, 64, [&done](size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ParallelMapPreservesOrder)
{
    ThreadPool pool(4);
    auto squares = parallelMap<u64>(
        pool, 100, [](size_t i) { return static_cast<u64>(i) * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    // With one chunk the body runs on the calling thread, so thread-
    // local effects are visible to the caller.
    ThreadPool pool(1);
    std::thread::id body_thread;
    parallelForChunks(pool, 5, [&body_thread](size_t, size_t) {
        body_thread = std::this_thread::get_id();
    });
    EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&done] { done.fetch_add(1); });
        // No wait(): the destructor must finish the queue, not drop it.
    }
    EXPECT_EQ(done.load(), 200);
}

} // anonymous namespace
