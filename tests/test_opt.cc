/** @file Tests for the layout-space optimizer (src/opt) and its
 *  fitness store: move validity under the LayoutVerifier across
 *  profiles, seeds and every move kind; candidate digests; trajectory
 *  byte-determinism at any jobs/batch and cold vs warm store; the
 *  FitnessStore round trip; and the golden end-to-end claim that both
 *  strategies beat best-of-N random at an equal evaluation budget. */

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "opt/neighborhood.hh"
#include "opt/optimizer.hh"
#include "store/fitness.hh"
#include "store/serialize.hh"
#include "util/json.hh"
#include "verify/verify.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::opt;
using layout::LayoutKey;
using layout::LayoutSpec;
using layout::Linker;

std::string
tempDir(const char *tag)
{
    auto dir = std::filesystem::temp_directory_path() /
               (std::string("interf-opt-") + tag + "-" +
                std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** The satellite property-test matrix: >= 5 distinct program shapes. */
std::vector<workloads::WorkloadProfile>
propertyProfiles()
{
    std::vector<workloads::WorkloadProfile> out;
    out.push_back(workloads::defaultProfile("opt-prop"));
    for (const char *name : {"400.perlbench", "429.mcf", "445.gobmk",
                             "462.libquantum", "470.lbm"})
        out.push_back(workloads::specFor(name).profile);
    return out;
}

/** A search configuration small enough for determinism sweeps. */
OptConfig
quickSearch(Strategy strategy, u64 seed)
{
    OptConfig cfg;
    cfg.instructionBudget = 30000;
    cfg.budget = 10;
    cfg.proposalsPerStep = 3;
    cfg.blameLayouts = 4;
    cfg.seed = seed;
    cfg.strategy = strategy;
    cfg.randomizeHeap = true;
    return cfg;
}

OptResult
runSearch(const workloads::WorkloadProfile &profile, const OptConfig &cfg)
{
    FitnessOracle oracle(profile, cfg);
    return makeOptimizer(oracle, cfg)->run();
}

// ---------------------------------------------------------------------
// Neighborhood property tests: every move kind, across >= 5 profiles
// x 16 seeds, yields a layout the LayoutVerifier passes clean.
// ---------------------------------------------------------------------

TEST(OptNeighborhood, EveryMoveKindVerifiesCleanAcrossProfilesAndSeeds)
{
    Linker linker;
    for (const auto &profile : propertyProfiles()) {
        const auto prog = workloads::buildProgram(profile);
        const Neighborhood nb(prog, true);
        for (u64 seed = 1; seed <= 16; ++seed) {
            Rng rng(seed);
            CandidateLayout cand;
            cand.code = linker.specFor(prog, LayoutKey{seed, true, true});
            cand.heapSeed = seed;
            for (u32 k = 0; k < kMoveKinds; ++k) {
                const auto kind = static_cast<MoveKind>(k);
                if (!nb.kindAvailable(kind))
                    continue;
                nb.proposeOfKind(kind, cand, rng);
                cand.code.validate(prog);
                auto res = verify::verifyLayout(
                    prog, linker.link(prog, cand.code));
                EXPECT_TRUE(res.ok())
                    << profile.name << " seed " << seed << " "
                    << moveKindName(kind) << ": " << res.summary();
                EXPECT_EQ(res.warningCount(), 0u);
            }
        }
    }
}

TEST(OptNeighborhood, WeightedProposalsStayVerifiable)
{
    // The weighted propose() path (blame-skewed kind selection) is the
    // one the search actually runs; a long chain of weighted moves
    // must keep the layout valid too.
    Linker linker;
    const auto prog =
        workloads::buildProgram(workloads::defaultProfile("opt-chain"));
    Neighborhood nb(prog, true);
    interferometry::BlameVector blame;
    blame.branch = 0.7;
    blame.l1i = 0.2;
    blame.l2 = 0.4;
    nb.setBlame(blame);
    Rng rng(99);
    CandidateLayout cand;
    cand.code = LayoutSpec::authored(prog);
    for (u32 i = 0; i < 64; ++i) {
        nb.propose(cand, rng);
        cand.code.validate(prog);
    }
    EXPECT_TRUE(
        verify::verifyLayout(prog, linker.link(prog, cand.code)).ok());
}

TEST(OptNeighborhood, MovesNeverProposeNoOps)
{
    const auto prog =
        workloads::buildProgram(workloads::defaultProfile("opt-noop"));
    const Neighborhood nb(prog, true);
    Rng rng(5);
    for (u64 seed = 1; seed <= 16; ++seed) {
        CandidateLayout cand;
        cand.code = LayoutSpec::authored(prog);
        cand.heapSeed = seed;
        const u64 before_code = cand.digest(0);
        for (u32 k = 0; k < kMoveKinds; ++k) {
            const auto kind = static_cast<MoveKind>(k);
            if (!nb.kindAvailable(kind) || kind == MoveKind::HeapShuffle)
                continue;
            CandidateLayout moved = cand;
            nb.proposeOfKind(kind, moved, rng);
            EXPECT_NE(moved.digest(0), before_code)
                << moveKindName(kind) << " proposed a no-op";
        }
        CandidateLayout shuffled = cand;
        const Move mv =
            nb.proposeOfKind(MoveKind::HeapShuffle, shuffled, rng);
        // The heap move records the redrawn seed in its operands.
        EXPECT_EQ((static_cast<u64>(mv.a) << 32) | mv.b,
                  shuffled.heapSeed);
    }
}

TEST(OptNeighborhood, BlameKeepsEveryAvailableKindReachable)
{
    const auto prog =
        workloads::buildProgram(workloads::defaultProfile("opt-blame"));
    Neighborhood nb(prog, true);
    // Degenerate blame (NaN r^2 from zero-variance seed samples) must
    // not zero out or poison any weight: the epsilon floor holds.
    interferometry::BlameVector degenerate;
    degenerate.branch = std::nan("");
    degenerate.l1i = -1.0;
    degenerate.l2 = std::nan("");
    nb.setBlame(degenerate);
    for (u32 k = 0; k < kMoveKinds; ++k) {
        const auto kind = static_cast<MoveKind>(k);
        if (nb.kindAvailable(kind))
            EXPECT_GT(nb.kindWeights()[k], 0.0) << moveKindName(kind);
        else
            EXPECT_EQ(nb.kindWeights()[k], 0.0) << moveKindName(kind);
    }
    // And blame steers: heavy L2 blame raises heap/file weight above
    // what pure branch blame gives them.
    interferometry::BlameVector l2heavy;
    l2heavy.l2 = 0.9;
    nb.setBlame(l2heavy);
    const auto l2w = nb.kindWeights();
    interferometry::BlameVector branchy;
    branchy.branch = 0.9;
    nb.setBlame(branchy);
    const auto brw = nb.kindWeights();
    EXPECT_GT(l2w[static_cast<u32>(MoveKind::HeapShuffle)],
              brw[static_cast<u32>(MoveKind::HeapShuffle)]);
    EXPECT_GT(brw[static_cast<u32>(MoveKind::ProcSwap)],
              l2w[static_cast<u32>(MoveKind::ProcSwap)]);
}

TEST(OptNeighborhood, HeapMovesGatedByConfiguration)
{
    const auto prog =
        workloads::buildProgram(workloads::defaultProfile("opt-gate"));
    const Neighborhood no_heap(prog, false);
    EXPECT_FALSE(no_heap.kindAvailable(MoveKind::HeapShuffle));
    EXPECT_EQ(
        no_heap.kindWeights()[static_cast<u32>(MoveKind::HeapShuffle)],
        0.0);
    const Neighborhood with_heap(prog, true);
    EXPECT_TRUE(with_heap.kindAvailable(MoveKind::HeapShuffle));
}

TEST(OptCandidate, DigestBindsEveryField)
{
    const auto prog =
        workloads::buildProgram(workloads::defaultProfile("opt-digest"));
    CandidateLayout cand;
    cand.code = LayoutSpec::authored(prog);
    cand.heapSeed = 3;
    const u64 base = 0xabcdef;
    const u64 d0 = cand.digest(base);
    EXPECT_EQ(cand.digest(base), d0); // Pure function.
    EXPECT_NE(cand.digest(base + 1), d0);

    CandidateLayout heap = cand;
    heap.heapSeed = 4;
    EXPECT_NE(heap.digest(base), d0);

    CandidateLayout files = cand;
    ASSERT_GE(files.code.fileOrder.size(), 2u);
    std::swap(files.code.fileOrder[0], files.code.fileOrder[1]);
    EXPECT_NE(files.digest(base), d0);

    CandidateLayout procs = cand;
    for (auto &order : procs.code.procOrder) {
        if (order.size() >= 2) {
            std::swap(order[0], order[1]);
            break;
        }
    }
    EXPECT_NE(procs.digest(base), d0);
}

TEST(OptProperty, SearchPageMapsAreValidPermutations)
{
    // One fixed page mapping serves the whole search; it must be a
    // clean bijection for every seed a config might pin.
    for (u64 seed : {1ull, 2ull, 77ull}) {
        verify::VerifyResult r;
        verify::verifyPageMap(layout::PageMap(seed), 1u << 12,
                              "<opt-pagemap>", r);
        EXPECT_TRUE(r.ok()) << r.summary();
    }
}

// ---------------------------------------------------------------------
// FitnessStore: content-addressed measurement cache.
// ---------------------------------------------------------------------

core::Measurement
sampleMeasurement()
{
    core::Measurement m;
    m.layoutSeed = 77;
    m.cpi = 1.25;
    m.mpki = 4.5;
    m.l1iMpki = 1.5;
    m.l1dMpki = 2.5;
    m.l2Mpki = 0.5;
    m.btbMpki = 0.25;
    m.cycles = 125000;
    m.instructions = 100000;
    m.condBranches = 20000;
    m.mispredicts = 450;
    m.l1iMisses = 150;
    m.l1dMisses = 250;
    m.l2Misses = 50;
    m.btbMisses = 25;
    return m;
}

TEST(FitnessStore, MissThenRoundTrip)
{
    const auto root = tempDir("fitstore");
    const u64 base = 0x1122334455667788ull;
    store::FitnessStore fs(root, base);
    EXPECT_FALSE(fs.load(7).has_value());

    const auto m = sampleMeasurement();
    fs.save(7, m);
    fs.save(7, m); // Idempotent: racing writers commit equal bytes.
    auto got = fs.load(7);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(store::samplesChecksum({*got}),
              store::samplesChecksum({m}));
    EXPECT_EQ(got->cycles, m.cycles);
    EXPECT_EQ(got->layoutSeed, m.layoutSeed);
    EXPECT_DOUBLE_EQ(got->cpi, m.cpi);

    // A second store over the same root and key sees the entry; one
    // over a different base key does not (different directory).
    store::FitnessStore again(root, base);
    EXPECT_TRUE(again.load(7).has_value());
    store::FitnessStore other(root, base + 1);
    EXPECT_FALSE(other.load(7).has_value());
    std::filesystem::remove_all(root);
}

TEST(FitnessStoreDeath, CorruptEntryFailsClosed)
{
    const auto root = tempDir("fitcorrupt");
    const u64 base = 42;
    store::FitnessStore fs(root, base);
    fs.save(9, sampleMeasurement());
    // Truncate the one entry file behind the store's back.
    std::filesystem::path entry;
    for (const auto &e :
         std::filesystem::recursive_directory_iterator(root))
        if (e.is_regular_file())
            entry = e.path();
    ASSERT_FALSE(entry.empty());
    std::filesystem::resize_file(entry, 8);
    EXPECT_EXIT((void)fs.load(9), ::testing::ExitedWithCode(1),
                "fitness");
    std::filesystem::remove_all(root);
}

TEST(FitnessStore, BaseKeySeparatesSearchSetups)
{
    const auto prog =
        workloads::buildProgram(workloads::defaultProfile("opt-key"));
    core::MachineConfig machine = core::MachineConfig::xeonE5440();
    core::RunnerConfig runner;
    const u64 k = store::fitnessBaseKey(prog, 1, 100000, true, 1, false,
                                        machine, runner);
    EXPECT_EQ(store::fitnessBaseKey(prog, 1, 100000, true, 1, false,
                                    machine, runner),
              k); // Pure function of the setup.
    EXPECT_NE(store::fitnessBaseKey(prog, 2, 100000, true, 1, false,
                                    machine, runner),
              k); // Behaviour seed.
    EXPECT_NE(store::fitnessBaseKey(prog, 1, 200000, true, 1, false,
                                    machine, runner),
              k); // Instruction budget.
    EXPECT_NE(store::fitnessBaseKey(prog, 1, 100000, false, 1, false,
                                    machine, runner),
              k); // Physical pages.
    EXPECT_NE(store::fitnessBaseKey(prog, 1, 100000, true, 2, false,
                                    machine, runner),
              k); // Page seed.
    EXPECT_NE(store::fitnessBaseKey(prog, 1, 100000, true, 1, true,
                                    machine, runner),
              k); // Heap randomization.
}

// ---------------------------------------------------------------------
// Determinism: identical seeds -> byte-identical trajectories and
// final layouts at any jobs, any batch width, cold or warm store.
// ---------------------------------------------------------------------

void
expectSweepDeterminism(Strategy strategy)
{
    const auto profile = workloads::defaultProfile("opt-det");
    const OptConfig ref_cfg = quickSearch(strategy, 7);
    FitnessOracle ref_oracle(profile, ref_cfg);
    const OptResult ref = makeOptimizer(ref_oracle, ref_cfg)->run();
    const std::string ref_dump = ref.trajectory.dump();
    const u64 ref_digest = ref_oracle.digestOf(ref.best);
    const u64 ref_sample = store::samplesChecksum({ref.bestSample});
    EXPECT_EQ(ref.freshEvals + ref.cachedEvals, ref_cfg.budget);

    for (u32 jobs : {1u, 4u}) {
        for (u32 lanes : {1u, 2u, 4u, 8u}) {
            if (jobs == ref_cfg.jobs && lanes == ref_cfg.batchLanes)
                continue;
            OptConfig cfg = ref_cfg;
            cfg.jobs = jobs;
            cfg.batchLanes = lanes;
            FitnessOracle oracle(profile, cfg);
            EXPECT_EQ(oracle.baseKey(), ref_oracle.baseKey())
                << "execution knobs leaked into the base key";
            const OptResult res = makeOptimizer(oracle, cfg)->run();
            EXPECT_EQ(res.trajectory.dump(), ref_dump)
                << strategyName(strategy) << " jobs=" << jobs
                << " lanes=" << lanes;
            EXPECT_EQ(oracle.digestOf(res.best), ref_digest);
            EXPECT_EQ(store::samplesChecksum({res.bestSample}),
                      ref_sample);
        }
    }
}

TEST(OptDeterminism, GreedyTrajectoryIdenticalAtAnyJobsAndBatch)
{
    expectSweepDeterminism(Strategy::Greedy);
}

TEST(OptDeterminism, AnnealTrajectoryIdenticalAtAnyJobsAndBatch)
{
    expectSweepDeterminism(Strategy::Anneal);
}

TEST(OptDeterminism, WarmStoreRerunIsByteIdenticalWithZeroFreshEvals)
{
    const auto profile = workloads::defaultProfile("opt-warm");
    const auto root = tempDir("optwarm");
    OptConfig cfg = quickSearch(Strategy::Anneal, 11);
    cfg.storeDir = root;

    FitnessOracle cold(profile, cfg);
    const OptResult first = makeOptimizer(cold, cfg)->run();
    EXPECT_GT(first.freshEvals, 0u);

    // A fresh process would reconstruct the oracle exactly like this:
    // everything measurable is already in the store.
    FitnessOracle warm(profile, cfg);
    const OptResult second = makeOptimizer(warm, cfg)->run();
    EXPECT_EQ(second.freshEvals, 0u) << "warm rerun measured fresh";
    EXPECT_EQ(second.cachedEvals, cfg.budget);
    EXPECT_EQ(second.trajectory.dump(), first.trajectory.dump());
    EXPECT_EQ(warm.digestOf(second.best), cold.digestOf(first.best));

    // Changing the search seed changes the walk but stays warm only
    // where candidates actually repeat -- and never changes base key.
    OptConfig other = cfg;
    other.seed = 12;
    FitnessOracle third(profile, other);
    EXPECT_EQ(third.baseKey(), cold.baseKey());
    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------
// Trajectory document and search bookkeeping.
// ---------------------------------------------------------------------

TEST(OptTrajectory, DocumentParsesAndCarriesTheSchema)
{
    const auto profile = workloads::defaultProfile("opt-doc");
    const OptConfig cfg = quickSearch(Strategy::Greedy, 3);
    const OptResult res = runSearch(profile, cfg);

    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(res.trajectory.dump(), doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    for (const char *field :
         {"schema", "schema_version", "benchmark", "strategy", "seed",
          "budget", "proposals_per_step", "base_key", "initial_cycles",
          "initial_digest", "final_cycles", "final_digest", "steps"})
        EXPECT_NE(doc.find(field), nullptr) << field;
    EXPECT_EQ(doc.find("schema")->asString(), kTrajectorySchema);
    EXPECT_EQ(doc.find("strategy")->asString(), "greedy");
    EXPECT_EQ(doc.find("steps")->size(), res.trajectory.steps.size());

    const std::set<std::string> kinds = {"proc_swap", "proc_reinsert",
                                         "file_block_move",
                                         "heap_shuffle"};
    for (size_t i = 0; i < doc.find("steps")->size(); ++i) {
        const Json &step = doc.find("steps")->at(i);
        EXPECT_TRUE(kinds.count(step.find("kind")->asString()));
        EXPECT_GE(step.find("cycles")->asDouble(), 0.0);
    }
}

TEST(OptSearch, BudgetAndChampionBookkeepingHold)
{
    const auto profile = workloads::defaultProfile("opt-book");
    for (Strategy strategy : {Strategy::Greedy, Strategy::Anneal}) {
        const OptConfig cfg = quickSearch(strategy, 21);
        const OptResult res = runSearch(profile, cfg);
        const auto &traj = res.trajectory;
        // Every evaluation is either fresh or cached, and the recorded
        // proposals are exactly the budget minus the seed pool.
        EXPECT_EQ(res.freshEvals + res.cachedEvals, cfg.budget);
        EXPECT_EQ(traj.steps.size(),
                  cfg.budget - (1 + cfg.blameLayouts));
        // The champion line is monotone and lands on finalCycles,
        // which never regresses from the starting point.
        u64 best = traj.initialCycles;
        for (const auto &s : traj.steps) {
            EXPECT_LE(s.bestCycles, best);
            EXPECT_GE(s.bestCycles,
                      std::min<u64>(best, s.cycles));
            best = s.bestCycles;
            if (strategy == Strategy::Greedy) {
                EXPECT_EQ(s.temperature, 0.0);
            }
        }
        EXPECT_EQ(traj.finalCycles, best);
        EXPECT_LE(traj.finalCycles, traj.initialCycles);
        EXPECT_EQ(traj.finalCycles, res.bestSample.cycles);
    }
}

TEST(OptSearch, StrategyNamesRoundTrip)
{
    EXPECT_STREQ(strategyName(Strategy::Greedy), "greedy");
    EXPECT_STREQ(strategyName(Strategy::Anneal), "anneal");
    Strategy s;
    EXPECT_TRUE(parseStrategy("greedy", s));
    EXPECT_EQ(s, Strategy::Greedy);
    EXPECT_TRUE(parseStrategy("anneal", s));
    EXPECT_EQ(s, Strategy::Anneal);
    EXPECT_TRUE(parseStrategy("sa", s));
    EXPECT_EQ(s, Strategy::Anneal);
    EXPECT_FALSE(parseStrategy("gradient", s));
}

// ---------------------------------------------------------------------
// Golden end-to-end: at an equal evaluation budget, both strategies
// beat the best of N random layouts on multiple profiles.
// ---------------------------------------------------------------------

void
expectBeatsRandom(const char *benchmark, Strategy strategy)
{
    const auto profile = workloads::specFor(benchmark).profile;
    OptConfig cfg;
    cfg.instructionBudget = 80000;
    cfg.budget = 48;
    cfg.proposalsPerStep = 2;
    cfg.blameLayouts = 6;
    cfg.seed = 1;
    cfg.strategy = strategy;
    // One oracle for both contenders: the memo can only skip repeat
    // measurements, never change one, so sharing it is fair.
    FitnessOracle oracle(profile, cfg);
    const OptResult res = makeOptimizer(oracle, cfg)->run();
    const OptResult base = bestOfRandom(oracle, cfg);
    EXPECT_EQ(base.freshEvals + base.cachedEvals, cfg.budget);
    EXPECT_EQ(base.trajectory.strategy, "random");
    EXPECT_LT(res.bestSample.cycles, base.bestSample.cycles)
        << benchmark << " " << strategyName(strategy) << ": optimizer "
        << res.bestSample.cycles << " vs best-of-" << cfg.budget
        << " random " << base.bestSample.cycles;
}

TEST(OptGolden, GreedyBeatsBestOfRandomOnPerlbench)
{
    expectBeatsRandom("400.perlbench", Strategy::Greedy);
}

TEST(OptGolden, AnnealBeatsBestOfRandomOnPerlbench)
{
    expectBeatsRandom("400.perlbench", Strategy::Anneal);
}

TEST(OptGolden, GreedyBeatsBestOfRandomOnMcf)
{
    expectBeatsRandom("429.mcf", Strategy::Greedy);
}

TEST(OptGolden, AnnealBeatsBestOfRandomOnMcf)
{
    expectBeatsRandom("429.mcf", Strategy::Anneal);
}

} // anonymous namespace
