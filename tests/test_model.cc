/** @file Tests for the per-benchmark performance models. */

#include <gtest/gtest.h>

#include "interferometry/model.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using namespace interf::interferometry;
using core::Measurement;

/** Synthesize samples with a known CPI = a*mpki + b*l1i + c*l2 + d. */
std::vector<Measurement>
syntheticSamples(size_t n, double a, double b, double c, double d,
                 double noise_sd, u64 seed = 1)
{
    Rng rng(seed);
    std::vector<Measurement> out;
    for (size_t i = 0; i < n; ++i) {
        Measurement m;
        m.layoutSeed = i;
        m.instructions = 1000000;
        m.mpki = 5.0 + rng.nextDouble() * 2.0;
        m.l1iMpki = 1.0 + rng.nextDouble() * 0.5;
        m.l2Mpki = 0.5 + rng.nextDouble() * 0.2;
        m.cpi = a * m.mpki + b * m.l1iMpki + c * m.l2Mpki + d +
                rng.gaussian(0, noise_sd);
        m.cycles = static_cast<Cycle>(m.cpi * 1e6);
        out.push_back(m);
    }
    return out;
}

TEST(Model, RecoversBranchRelation)
{
    auto samples = syntheticSamples(100, 0.028, 0, 0, 0.517, 0.003);
    PerformanceModel model("synthetic", samples);
    EXPECT_NEAR(model.branchModel().fit.slope(), 0.028, 0.005);
    EXPECT_NEAR(model.branchModel().fit.intercept(), 0.517, 0.03);
    EXPECT_TRUE(model.branchSignificant());
}

TEST(Model, Table1RowMatchesFit)
{
    auto samples = syntheticSamples(100, 0.028, 0, 0, 0.517, 0.003);
    PerformanceModel model("400.perlbench", samples);
    auto row = model.table1Row();
    EXPECT_EQ(row.benchmark, "400.perlbench");
    EXPECT_DOUBLE_EQ(row.slope, model.branchModel().fit.slope());
    EXPECT_DOUBLE_EQ(row.intercept, model.branchModel().fit.intercept());
    EXPECT_LT(row.perfectLow, row.intercept);
    EXPECT_GT(row.perfectHigh, row.intercept);
    EXPECT_TRUE(row.significant);
}

TEST(Model, PerfectPredictionIntervalContainsTruth)
{
    auto samples = syntheticSamples(150, 0.03, 0, 0, 0.6, 0.004);
    PerformanceModel model("m", samples);
    auto pi = model.predictionInterval(0.0);
    EXPECT_TRUE(pi.contains(0.6));
}

TEST(Model, ConfidenceNarrowerThanPrediction)
{
    auto samples = syntheticSamples(100, 0.02, 0, 0, 1.0, 0.01);
    PerformanceModel model("m", samples);
    EXPECT_LT(model.confidenceInterval(3.0).width(),
              model.predictionInterval(3.0).width());
}

TEST(Model, InsignificantWhenNoise)
{
    auto samples = syntheticSamples(60, 0.0, 0, 0, 1.0, 0.05, 9);
    PerformanceModel model("noise", samples);
    EXPECT_FALSE(model.branchSignificant());
    EXPECT_FALSE(model.table1Row().significant);
}

TEST(Model, BlameAssignsVarianceToTheRightEvent)
{
    // CPI driven by L2 misses only: l2 r^2 high, branch r^2 low.
    auto samples = syntheticSamples(120, 0.0, 0.0, 2.0, 1.0, 0.002, 3);
    PerformanceModel model("l2bound", samples);
    EXPECT_GT(model.l2Model().fit.r2(), 0.8);
    EXPECT_LT(model.branchModel().fit.r2(), 0.2);
}

TEST(Model, BlameVectorMirrorsTheFits)
{
    // The typed Figure-6 path: blame() must be exactly the per-event
    // r^2 the fits report -- bench_fig6_blame renders these numbers and
    // the layout optimizer weights its move kinds with them.
    auto samples = syntheticSamples(120, 0.01, 0.5, 1.5, 0.9, 0.002, 17);
    PerformanceModel model("blamed", samples);
    BlameVector blame = model.blame();
    EXPECT_DOUBLE_EQ(blame.branch, model.branchModel().fit.r2());
    EXPECT_DOUBLE_EQ(blame.l1i, model.l1iModel().fit.r2());
    EXPECT_DOUBLE_EQ(blame.l2, model.l2Model().fit.r2());
    EXPECT_DOUBLE_EQ(blame.combined, model.combinedFit().r2());
    EXPECT_DOUBLE_EQ(blame.combinedP, model.combinedTest().pValue);
    EXPECT_DOUBLE_EQ(blame.total(), blame.branch + blame.l1i + blame.l2);
}

TEST(Model, CombinedModelExplainsMoreThanParts)
{
    // Mixed causes: combined r^2 >= each single-event r^2.
    auto samples = syntheticSamples(150, 0.02, 0.05, 1.0, 0.8, 0.003, 5);
    PerformanceModel model("mixed", samples);
    double combined = model.combinedFit().r2();
    EXPECT_GE(combined + 1e-9, model.branchModel().fit.r2());
    EXPECT_GE(combined + 1e-9, model.l1iModel().fit.r2());
    EXPECT_GE(combined + 1e-9, model.l2Model().fit.r2());
    EXPECT_TRUE(model.combinedTest().significantAt(0.05));
}

TEST(Model, MeansReported)
{
    auto samples = syntheticSamples(50, 0.02, 0, 0, 1.0, 0.001, 7);
    PerformanceModel model("m", samples);
    double mean_mpki = 0;
    for (const auto &m : samples)
        mean_mpki += m.mpki;
    mean_mpki /= samples.size();
    EXPECT_NEAR(model.meanMpki(), mean_mpki, 1e-9);
    EXPECT_EQ(model.sampleCount(), 50u);
}

TEST(Model, ColumnExtractsField)
{
    auto samples = syntheticSamples(5, 0.02, 0, 0, 1.0, 0.0, 11);
    auto cpis = column(samples, &Measurement::cpi);
    ASSERT_EQ(cpis.size(), 5u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(cpis[i], samples[i].cpi);
}

TEST(Model, PredictCpiIsLinear)
{
    auto samples = syntheticSamples(80, 0.025, 0, 0, 0.9, 0.002, 13);
    PerformanceModel model("m", samples);
    double at0 = model.predictCpi(0.0);
    double at4 = model.predictCpi(4.0);
    double at8 = model.predictCpi(8.0);
    EXPECT_NEAR(at8 - at4, at4 - at0, 1e-9);
}

TEST(ModelDeathTest, TooFewSamplesPanics)
{
    auto samples = syntheticSamples(3, 0.02, 0, 0, 1.0, 0.001);
    EXPECT_DEATH((PerformanceModel{"m", samples}), "assertion");
}

} // anonymous namespace
