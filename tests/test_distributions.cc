/** @file Tests for the probability distributions (reference values from
 *  standard statistical tables). */

#include <gtest/gtest.h>

#include "stats/distributions.hh"

namespace
{

using namespace interf::stats;

TEST(Normal, CdfReferencePoints)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.841344746, 1e-8);
    EXPECT_NEAR(normalCdf(-1.0), 0.158655254, 1e-8);
    EXPECT_NEAR(normalCdf(1.959963985), 0.975, 1e-8);
    EXPECT_NEAR(normalCdf(-3.0), 0.001349898, 1e-8);
}

TEST(Normal, QuantileInvertsCdf)
{
    for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999})
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-10);
}

TEST(Normal, QuantileReference)
{
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-7);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-10);
    EXPECT_NEAR(normalQuantile(0.05), -1.644853627, 1e-7);
}

TEST(IncompleteBeta, Boundaries)
{
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase)
{
    // I_0.5(a, a) = 0.5 by symmetry.
    for (double a : {0.5, 1.0, 2.0, 10.0})
        EXPECT_NEAR(incompleteBeta(a, a, 0.5), 0.5, 1e-10);
}

TEST(IncompleteBeta, UniformSpecialCase)
{
    // I_x(1, 1) = x.
    for (double x : {0.1, 0.25, 0.7, 0.99})
        EXPECT_NEAR(incompleteBeta(1.0, 1.0, x), x, 1e-12);
}

TEST(StudentT, CdfReferencePoints)
{
    // t tables: P(T <= 2.228) = 0.975 for nu = 10.
    EXPECT_NEAR(studentTCdf(2.228, 10), 0.975, 1e-4);
    EXPECT_NEAR(studentTCdf(0.0, 5), 0.5, 1e-12);
    // nu=1 (Cauchy): P(T <= 1) = 0.75.
    EXPECT_NEAR(studentTCdf(1.0, 1), 0.75, 1e-9);
}

TEST(StudentT, SymmetryHolds)
{
    for (double t : {0.5, 1.3, 2.7})
        for (double nu : {3.0, 12.0, 99.0})
            EXPECT_NEAR(studentTCdf(t, nu) + studentTCdf(-t, nu), 1.0,
                        1e-10);
}

TEST(StudentT, QuantileReferencePoints)
{
    // Two-sided 95% critical values from t tables.
    EXPECT_NEAR(studentTQuantile(0.975, 10), 2.228, 2e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 98), 1.984, 2e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 1), 12.706, 1e-2);
    EXPECT_NEAR(studentTQuantile(0.95, 20), 1.725, 2e-3);
}

TEST(StudentT, QuantileInvertsCdf)
{
    for (double nu : {2.0, 8.0, 30.0, 200.0})
        for (double p : {0.01, 0.2, 0.5, 0.8, 0.99})
            EXPECT_NEAR(studentTCdf(studentTQuantile(p, nu), nu), p,
                        1e-9);
}

TEST(StudentT, ApproachesNormalForLargeNu)
{
    EXPECT_NEAR(studentTQuantile(0.975, 1e6), normalQuantile(0.975),
                1e-4);
}

TEST(StudentT, TwoSidedPValues)
{
    // |t| = 2.228, nu = 10 -> p = 0.05.
    EXPECT_NEAR(studentTTwoSidedP(2.228, 10), 0.05, 1e-3);
    EXPECT_NEAR(studentTTwoSidedP(-2.228, 10), 0.05, 1e-3);
    EXPECT_NEAR(studentTTwoSidedP(0.0, 10), 1.0, 1e-12);
}

TEST(FDist, CdfReferencePoints)
{
    // F tables: P(F <= 3.326) ~= 0.95 for (3, 20) dof.
    EXPECT_NEAR(fCdf(3.10, 3, 20), 0.95, 2e-3);
    EXPECT_DOUBLE_EQ(fCdf(0.0, 3, 20), 0.0);
    // F(1, n) = T(n)^2: P(F <= t^2) = 2 P(T <= t) - 1.
    double t = 2.228;
    EXPECT_NEAR(fCdf(t * t, 1, 10), 0.95, 1e-4);
}

TEST(FDist, UpperTail)
{
    EXPECT_NEAR(fUpperTailP(3.10, 3, 20), 0.05, 2e-3);
    EXPECT_NEAR(fUpperTailP(0.0, 3, 20), 1.0, 1e-12);
}

TEST(DistributionsDeathTest, BadArgumentsPanic)
{
    EXPECT_DEATH((void)normalQuantile(0.0), "assertion");
    EXPECT_DEATH((void)normalQuantile(1.0), "assertion");
    EXPECT_DEATH((void)studentTQuantile(0.5, 0.0), "assertion");
    EXPECT_DEATH((void)incompleteBeta(0.0, 1.0, 0.5), "assertion");
}

} // anonymous namespace
