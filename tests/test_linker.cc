/** @file Tests for the Camino-style reordering linker. */

#include <set>

#include <gtest/gtest.h>

#include "layout/linker.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace
{

using namespace interf;
using namespace interf::layout;

trace::Program
prog()
{
    return workloads::buildProgram(workloads::defaultProfile("lnk"));
}

TEST(Linker, DeterministicForSameKey)
{
    auto p = prog();
    Linker linker;
    LayoutKey key{42, true, true};
    auto a = linker.link(p, key);
    auto b = linker.link(p, key);
    EXPECT_EQ(a.procOrder(), b.procOrder());
    EXPECT_EQ(a.fileOrder(), b.fileOrder());
    for (u32 id = 0; id < p.procedures().size(); ++id)
        EXPECT_EQ(a.procBase(id), b.procBase(id));
}

TEST(Linker, DifferentSeedsPermuteDifferently)
{
    auto p = prog();
    Linker linker;
    auto a = linker.link(p, LayoutKey{1, true, true});
    auto b = linker.link(p, LayoutKey{2, true, true});
    EXPECT_NE(a.procOrder(), b.procOrder());
}

TEST(Linker, IdentityKeyKeepsAuthoredOrder)
{
    auto p = prog();
    Linker linker;
    auto layout = linker.link(p, LayoutKey::identity());
    // File order is authored order.
    for (u32 i = 0; i < p.files().size(); ++i)
        EXPECT_EQ(layout.fileOrder()[i], i);
    // Procedures appear in authored per-file order.
    std::vector<u32> expect;
    for (const auto &file : p.files())
        for (u32 pid : file.procIds)
            expect.push_back(pid);
    EXPECT_EQ(layout.procOrder(), expect);
}

TEST(Linker, ProcOrderIsPermutation)
{
    auto p = prog();
    Linker linker;
    auto layout = linker.link(p, LayoutKey{7, true, true});
    std::set<u32> seen(layout.procOrder().begin(),
                       layout.procOrder().end());
    EXPECT_EQ(seen.size(), p.procedures().size());
}

TEST(Linker, ProceduresAlignedAndNonOverlapping)
{
    auto p = prog();
    Linker linker;
    auto layout = linker.link(p, LayoutKey{11, true, true});
    Addr prev_end = layout.textBase();
    for (u32 pid : layout.procOrder()) {
        Addr base = layout.procBase(pid);
        EXPECT_EQ(base % p.proc(pid).align, 0u);
        EXPECT_GE(base, prev_end);
        // Gap only from alignment (< align bytes).
        EXPECT_LT(base - prev_end, p.proc(pid).align);
        prev_end = base + p.proc(pid).bytes();
    }
    EXPECT_EQ(prev_end - layout.textBase(), layout.textSize());
}

TEST(Linker, BlockAddressesContiguousWithinProcedure)
{
    auto p = prog();
    Linker linker;
    auto layout = linker.link(p, LayoutKey{13, true, true});
    for (const auto &proc : p.procedures()) {
        Addr expect = layout.procBase(proc.id);
        for (u32 b = 0; b < proc.blocks.size(); ++b) {
            EXPECT_EQ(layout.blockAddr(proc.id, b), expect);
            expect += proc.blocks[b].bytes;
        }
    }
}

TEST(Linker, BranchAddressInsideBlock)
{
    auto p = prog();
    Linker linker;
    auto layout = linker.link(p, LayoutKey{17, true, true});
    for (const auto &proc : p.procedures()) {
        for (u32 b = 0; b < proc.blocks.size(); ++b) {
            Addr start = layout.blockAddr(proc.id, b);
            Addr branch = layout.branchAddr(proc.id, b);
            EXPECT_GE(branch, start);
            EXPECT_LT(branch, start + proc.blocks[b].bytes);
        }
    }
}

TEST(Linker, SemanticsInvariantAcrossLayouts)
{
    // The core interferometry invariant: layouts only move code; the
    // total code size (mod alignment slack) is unchanged.
    auto p = prog();
    Linker linker;
    auto a = linker.link(p, LayoutKey{1, true, true});
    auto b = linker.link(p, LayoutKey{999, true, true});
    // Same procedures, same bytes: sizes differ only by alignment.
    i64 diff = static_cast<i64>(a.textSize()) -
               static_cast<i64>(b.textSize());
    EXPECT_LT(std::abs(diff),
              static_cast<i64>(p.procedures().size()) * 16);
}

TEST(Linker, ReorderFlagsIndependent)
{
    auto p = prog();
    Linker linker;
    // Only file order perturbed: within each file, authored order kept.
    LayoutKey files_only{5, false, true};
    auto layout = linker.link(p, files_only);
    size_t cursor = 0;
    for (u32 fi : layout.fileOrder()) {
        for (u32 pid : p.files()[fi].procIds)
            EXPECT_EQ(layout.procOrder()[cursor++], pid);
    }
}

TEST(Linker, AddressesChangeAcrossSeeds)
{
    auto p = prog();
    Linker linker;
    auto a = linker.link(p, LayoutKey{1, true, true});
    auto b = linker.link(p, LayoutKey{2, true, true});
    int moved = 0;
    for (u32 id = 0; id < p.procedures().size(); ++id)
        moved += a.procBase(id) != b.procBase(id);
    EXPECT_GT(moved, static_cast<int>(p.procedures().size() / 2));
}

TEST(Linker, CustomTextBase)
{
    auto p = prog();
    Linker linker(0x1000000);
    auto layout = linker.link(p, LayoutKey::identity());
    EXPECT_EQ(layout.textBase(), 0x1000000u);
    EXPECT_GE(layout.procBase(layout.procOrder()[0]), 0x1000000u);
}

// ---------------------------------------------------------------------
// LayoutSpec: the explicit-permutation path the optimizer edits.
// ---------------------------------------------------------------------

TEST(LinkerSpec, SpecForLinksIdenticallyToTheKey)
{
    // The keyed path is definitionally link(specFor(key)): expanding a
    // key into its explicit permutations and linking those must land
    // every procedure on the same address.
    auto p = prog();
    Linker linker;
    for (u64 seed : {0ull, 1ull, 7ull, 42ull, 1000ull}) {
        for (bool procs : {false, true}) {
            for (bool files : {false, true}) {
                LayoutKey key{seed, procs, files};
                auto direct = linker.link(p, key);
                auto spec = linker.specFor(p, key);
                spec.validate(p);
                auto via = linker.link(p, spec);
                EXPECT_EQ(direct.procOrder(), via.procOrder());
                EXPECT_EQ(direct.fileOrder(), via.fileOrder());
                EXPECT_EQ(direct.textSize(), via.textSize());
                for (u32 id = 0; id < p.procedures().size(); ++id)
                    EXPECT_EQ(direct.procBase(id), via.procBase(id));
            }
        }
    }
}

TEST(LinkerSpec, AuthoredSpecIsTheIdentityLayout)
{
    auto p = prog();
    Linker linker;
    auto spec = LayoutSpec::authored(p);
    spec.validate(p);
    auto identity = linker.link(p, LayoutKey::identity());
    auto authored = linker.link(p, spec);
    EXPECT_EQ(identity.procOrder(), authored.procOrder());
    EXPECT_EQ(identity.fileOrder(), authored.fileOrder());
    EXPECT_EQ(identity.textSize(), authored.textSize());
}

TEST(LinkerSpec, ProcOrderIsIndexedByAuthoredFile)
{
    // procOrder[f] belongs to authored file f regardless of where the
    // link line puts that file -- the property that makes file moves
    // and procedure moves commute in the optimizer.
    auto p = prog();
    Linker linker;
    auto spec = linker.specFor(p, LayoutKey{23, true, true});
    ASSERT_EQ(spec.procOrder.size(), p.files().size());
    for (u32 fi = 0; fi < p.files().size(); ++fi) {
        std::set<u32> authored(p.files()[fi].procIds.begin(),
                               p.files()[fi].procIds.end());
        std::set<u32> spec_set(spec.procOrder[fi].begin(),
                               spec.procOrder[fi].end());
        EXPECT_EQ(spec_set, authored) << "file " << fi;
    }
}

} // anonymous namespace
