/** @file Tests for the PMU model (two-programmable-counter constraint). */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "pmu/pmu.hh"

namespace
{

using namespace interf;
using namespace interf::pmu;

TEST(Pmu, FixedCountersAlwaysReadable)
{
    Pmu pmu;
    pmu.count(Event::Cycles, 100);
    pmu.count(Event::RetiredInsts, 50);
    EXPECT_EQ(pmu.read(Event::Cycles), 100u);
    EXPECT_EQ(pmu.read(Event::RetiredInsts), 50u);
}

TEST(Pmu, ProgrammableNeedsProgramming)
{
    Pmu pmu;
    EXPECT_FALSE(pmu.readable(Event::MispredBranches));
    pmu.program({Event::MispredBranches, Event::RetiredBranches});
    EXPECT_TRUE(pmu.readable(Event::MispredBranches));
    EXPECT_TRUE(pmu.readable(Event::RetiredBranches));
    EXPECT_FALSE(pmu.readable(Event::L1IMisses));
}

TEST(PmuDeathTest, ReadingUnprogrammedEventIsFatal)
{
    Pmu pmu;
    pmu.program({Event::MispredBranches, Event::RetiredBranches});
    pmu.count(Event::L2Misses, 5);
    EXPECT_EXIT((void)pmu.read(Event::L2Misses),
                ::testing::ExitedWithCode(1), "not programmed");
}

TEST(PmuDeathTest, FixedEventInProgrammableSlotIsFatal)
{
    Pmu pmu;
    EXPECT_EXIT(pmu.program({Event::Cycles, Event::L2Misses}),
                ::testing::ExitedWithCode(1), "fixed");
}

TEST(Pmu, CountsAccumulate)
{
    Pmu pmu;
    pmu.program({Event::L1IMisses, Event::L1DMisses});
    pmu.count(Event::L1IMisses);
    pmu.count(Event::L1IMisses, 9);
    EXPECT_EQ(pmu.read(Event::L1IMisses), 10u);
}

TEST(Pmu, ZeroClearsTalliesKeepsProgramming)
{
    Pmu pmu;
    pmu.program({Event::L2Misses, Event::BtbMisses});
    pmu.count(Event::L2Misses, 7);
    pmu.zero();
    EXPECT_EQ(pmu.read(Event::L2Misses), 0u);
    EXPECT_TRUE(pmu.readable(Event::BtbMisses));
}

TEST(Pmu, RawAccessBypassesWindow)
{
    Pmu pmu;
    pmu.count(Event::L2Misses, 3);
    EXPECT_EQ(pmu.rawCount(Event::L2Misses), 3u);
}

TEST(Pmu, StandardGroupsCoverAllProgrammables)
{
    auto groups = standardGroups();
    ASSERT_EQ(groups.size(), 3u); // three runs of two (Section 5.5)
    std::set<Event> covered;
    for (const auto &g : groups) {
        EXPECT_FALSE(isFixedEvent(g.a));
        EXPECT_FALSE(isFixedEvent(g.b));
        covered.insert(g.a);
        covered.insert(g.b);
    }
    EXPECT_EQ(covered.size(), 6u);
    EXPECT_TRUE(covered.count(Event::MispredBranches));
    EXPECT_TRUE(covered.count(Event::L1IMisses));
    EXPECT_TRUE(covered.count(Event::L2Misses));
}

TEST(Pmu, EventNamesAreDistinct)
{
    std::set<std::string> names;
    for (int e = 0; e < static_cast<int>(Event::NumEvents); ++e)
        names.insert(eventName(static_cast<Event>(e)));
    EXPECT_EQ(names.size(), static_cast<size_t>(Event::NumEvents));
}

} // anonymous namespace
