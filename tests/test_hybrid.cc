/** @file Tests for the hybrid (GAs/gshare + bimodal) predictor. */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"
#include "bpred/hybrid.hh"
#include "bpred/twolevel.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Hybrid, LearnsBiasedBranch)
{
    HybridPredictor pred(4096, 8, 1024, 1024);
    Addr pc = 0x400100;
    for (int i = 0; i < 64; ++i)
        pred.predictAndTrain(pc, true);
    int wrong = 0;
    for (int i = 0; i < 200; ++i)
        wrong += pred.predictAndTrain(pc, true) != true;
    EXPECT_EQ(wrong, 0);
}

TEST(Hybrid, LearnsPeriodicPatternViaGlobalComponent)
{
    HybridPredictor pred(8192, 8, 1024, 1024,
                         TwoLevelScheme::Gshare);
    Addr pc = 0x400200;
    auto outcome = [](int i) { return i % 4 != 0; };
    for (int i = 0; i < 500; ++i)
        pred.predictAndTrain(pc, outcome(i));
    int wrong = 0;
    for (int i = 500; i < 1000; ++i)
        wrong += pred.predictAndTrain(pc, outcome(i)) != outcome(i);
    EXPECT_LE(wrong, 5);
}

TEST(Hybrid, BeatsPureGlobalOnNoisyBranches)
{
    // A branch taken 90% at random: global history is useless noise,
    // the bimodal side nails it. The chooser should converge there.
    Rng rng(5);
    HybridPredictor hybrid(4096, 10, 1024, 1024,
                           TwoLevelScheme::Gshare);
    TwoLevelPredictor pure(TwoLevelScheme::Gshare, 4096, 10);
    Addr pc = 0x400300;
    int wrong_h = 0, wrong_p = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        bool t = rng.bernoulli(0.9);
        wrong_h += hybrid.predictAndTrain(pc, t) != t;
        wrong_p += pure.predictAndTrain(pc, t) != t;
    }
    EXPECT_LT(wrong_h, wrong_p);
    // Hybrid should approach the 10% floor.
    EXPECT_LT(wrong_h, n * 14 / 100);
}

TEST(Hybrid, ChooserAdaptsPerBranch)
{
    // Mix: one noisy-biased branch (bimodal wins) and one periodic
    // branch (global wins). The hybrid should do well on both at once.
    Rng rng(7);
    HybridPredictor pred(8192, 8, 2048, 2048,
                         TwoLevelScheme::Gshare);
    Addr noisy = 0x400400, periodic = 0x400500;
    int wrong = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        bool tn = rng.bernoulli(0.92);
        bool tp = i % 4 != 0;
        bool gn = pred.predictAndTrain(noisy, tn);
        bool gp = pred.predictAndTrain(periodic, tp);
        if (i > 2000) {
            wrong += (gn != tn) + (gp != tp);
            total += 2;
        }
    }
    EXPECT_LT(wrong, total * 10 / 100);
}

TEST(Hybrid, ResetRestoresColdState)
{
    HybridPredictor pred(4096, 8, 1024, 1024);
    Addr pc = 0x400600;
    for (int i = 0; i < 200; ++i)
        pred.predictAndTrain(pc, false);
    pred.reset();
    EXPECT_TRUE(pred.predictAndTrain(pc, true));
}

TEST(Hybrid, SizeBitsSumsComponents)
{
    HybridPredictor pred(4096, 8, 2048, 1024);
    TwoLevelPredictor gas(TwoLevelScheme::GAs, 4096, 8);
    BimodalPredictor bim(2048);
    EXPECT_EQ(pred.sizeBits(),
              gas.sizeBits() + bim.sizeBits() + 1024 * 2);
}

TEST(Hybrid, NameMentionsBothComponents)
{
    HybridPredictor pred(4096, 8, 2048, 1024);
    auto n = pred.name();
    EXPECT_NE(n.find("gas"), std::string::npos);
    EXPECT_NE(n.find("bimodal"), std::string::npos);
}

TEST(HybridDeathTest, BadChooserGeometryPanics)
{
    EXPECT_DEATH(HybridPredictor(4096, 8, 1024, 1000), "assertion");
}

} // anonymous namespace
