/** @file Tests for the synthetic SPEC suite registry. */

#include <set>

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::workloads;

TEST(Spec, TwentyThreeBenchmarks)
{
    EXPECT_EQ(specSuite().size(), 23u);
    EXPECT_EQ(suiteNames().size(), 23u);
}

TEST(Spec, ExactlyThreeExpectedFailures)
{
    int failures = 0;
    for (const auto &entry : specSuite())
        failures += !entry.expectSignificant;
    EXPECT_EQ(failures, 3);
}

TEST(Spec, NamesUniqueAndSpecNumbered)
{
    std::set<std::string> names;
    for (const auto &entry : specSuite()) {
        EXPECT_TRUE(names.insert(entry.profile.name).second);
        // SPEC CPU 2006 style: "NNN.name".
        EXPECT_EQ(entry.profile.name[3], '.');
        EXPECT_TRUE(isdigit(entry.profile.name[0]));
    }
}

TEST(Spec, LookupByName)
{
    const auto &mcf = specFor("429.mcf");
    EXPECT_EQ(mcf.profile.name, "429.mcf");
    EXPECT_TRUE(isSuiteBenchmark("400.perlbench"));
    EXPECT_FALSE(isSuiteBenchmark("999.nonesuch"));
}

TEST(SpecDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)specFor("nope"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(Spec, AllProfilesValidate)
{
    for (const auto &entry : specSuite())
        entry.profile.validate();
    SUCCEED();
}

TEST(Spec, SeedsDistinctAcrossSuite)
{
    std::set<u64> seeds;
    for (const auto &entry : specSuite()) {
        EXPECT_TRUE(seeds.insert(entry.profile.structureSeed).second);
        EXPECT_TRUE(seeds.insert(entry.profile.behaviourSeed).second);
    }
}

TEST(Spec, AllBenchmarksBuildAndTrace)
{
    // Smoke: every suite benchmark builds a valid program and a small
    // valid trace.
    for (const auto &entry : specSuite()) {
        auto prog = buildProgram(entry.profile);
        trace::TraceGenerator gen(prog, entry.profile.behaviourSeed);
        auto trace = gen.makeTrace(20000);
        trace.validate(prog);
        EXPECT_GT(trace.instCount, 20000u);
        EXPECT_GT(trace.condBranches, 0u) << entry.profile.name;
    }
}

TEST(Spec, CharacterDiversity)
{
    // The suite must span memory-bound and compute-bound characters.
    const auto &mcf = specFor("429.mcf").profile;
    const auto &hmmer = specFor("456.hmmer").profile;
    EXPECT_GT(mcf.fracMem, 0.1);
    EXPECT_LT(hmmer.fracMem, 0.01);

    // And branchy vs loopy characters.
    const auto &gobmk = specFor("445.gobmk").profile;
    const auto &lbm = specFor("470.lbm").profile;
    EXPECT_GT(gobmk.condFraction, 3 * lbm.condFraction);
}

TEST(Spec, BigSlopeBenchmarksUseDependentLoads)
{
    // zeusmp and GemsFDTD carry the paper's huge Table-1 slopes via
    // branch-after-missing-load resolution.
    for (const char *name : {"434.zeusmp", "459.GemsFDTD"}) {
        const auto &p = specFor(name).profile;
        EXPECT_GT(p.branchLoadDepProb, 0.5) << name;
        EXPECT_GT(p.depLoadSlowTier, 0.9) << name;
    }
}

TEST(Spec, FailureBenchmarksAreBranchInsensitive)
{
    for (const auto &entry : specSuite()) {
        if (entry.expectSignificant)
            continue;
        // Their branch behaviour is overwhelmingly loop-periodic with
        // near-certain biases: nearly nothing for layout to perturb.
        EXPECT_LT(entry.profile.fracRandom, 0.01) << entry.profile.name;
        EXPECT_GT(entry.profile.fracPeriodic, 0.5) << entry.profile.name;
    }
}

} // anonymous namespace
