/** @file Tests for the perceptron branch predictor. */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "bpred/perceptron.hh"
#include "bpred/twolevel.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Perceptron, LearnsBiasedBranch)
{
    PerceptronPredictor pred;
    Addr pc = 0x400100;
    for (int i = 0; i < 100; ++i)
        pred.predictAndTrain(pc, true);
    int wrong = 0;
    for (int i = 0; i < 300; ++i)
        wrong += pred.predictAndTrain(pc, true) != true;
    EXPECT_EQ(wrong, 0);
}

TEST(Perceptron, LearnsAlternatingPattern)
{
    // T N T N ... is a single history bit; trivial for a perceptron,
    // impossible for bimodal.
    PerceptronPredictor pred;
    Addr pc = 0x400200;
    for (int i = 0; i < 200; ++i)
        pred.predictAndTrain(pc, i % 2 == 0);
    int wrong = 0;
    for (int i = 200; i < 600; ++i)
        wrong += pred.predictAndTrain(pc, i % 2 == 0) != (i % 2 == 0);
    EXPECT_LE(wrong, 2);
}

TEST(Perceptron, LearnsLinearlySeparableCorrelation)
{
    // Outcome = XOR-free majority of two recent outcomes: linearly
    // separable, the perceptron's home turf.
    PerceptronPredictor pred;
    Addr a = 0x400300, b = 0x400308, c = 0x400310;
    Rng rng(5);
    int wrong = 0, total = 0;
    bool last_a = false, last_b = false;
    for (int i = 0; i < 8000; ++i) {
        last_a = rng.bernoulli(0.5);
        last_b = rng.bernoulli(0.5);
        pred.predictAndTrain(a, last_a);
        pred.predictAndTrain(b, last_b);
        bool t = last_a; // c repeats a's outcome (2 branches back)
        bool got = pred.predictAndTrain(c, t);
        if (i > 2000) {
            wrong += got != t;
            ++total;
        }
    }
    EXPECT_LT(wrong, total / 10);
}

TEST(Perceptron, LongHistoryBeatsShortGshareOnLongPattern)
{
    // Period-20 loop: invisible to an 8-bit gshare, learnable by a
    // 24-bit perceptron.
    PerceptronPredictor perc;
    TwoLevelPredictor gshare(TwoLevelScheme::Gshare, 4096, 8);
    Addr pc = 0x400400;
    int wrong_p = 0, wrong_g = 0;
    for (int i = 0; i < 20000; ++i) {
        bool t = i % 20 != 19;
        wrong_p += perc.predictAndTrain(pc, t) != t;
        wrong_g += gshare.predictAndTrain(pc, t) != t;
    }
    EXPECT_LT(wrong_p, wrong_g / 2)
        << "perceptron " << wrong_p << " gshare " << wrong_g;
}

TEST(Perceptron, ThresholdFollowsPublishedFormula)
{
    PerceptronConfig cfg;
    cfg.historyBits = 24;
    PerceptronPredictor pred(cfg);
    EXPECT_EQ(pred.threshold(), static_cast<interf::i64>(1.93 * 24 + 14));
}

TEST(Perceptron, ResetRestoresColdState)
{
    PerceptronPredictor pred;
    Addr pc = 0x400500;
    for (int i = 0; i < 500; ++i)
        pred.predictAndTrain(pc, false);
    pred.reset();
    // Zero weights: dot product 0 -> predicts taken (y >= 0).
    EXPECT_TRUE(pred.predictAndTrain(pc, true));
}

TEST(Perceptron, SizeBitsMatchesGeometry)
{
    PerceptronConfig cfg;
    cfg.rows = 256;
    cfg.historyBits = 16;
    PerceptronPredictor pred(cfg);
    EXPECT_EQ(pred.sizeBits(), 256u * 17 * 8 + 16);
    EXPECT_EQ(pred.name(), "perceptron-256r-h16");
}

TEST(Perceptron, FactoryBuildsIt)
{
    auto pred = bpred::makePredictor("perceptron:512:24");
    EXPECT_NE(pred->name().find("perceptron"), std::string::npos);
    pred->predictAndTrain(0x400000, true);
}

TEST(PerceptronDeathTest, BadSpecsFatal)
{
    EXPECT_EXIT((void)bpred::makePredictor("perceptron:500:24"),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT((void)bpred::makePredictor("perceptron:512"),
                ::testing::ExitedWithCode(1), "want perceptron");
}

TEST(PerceptronDeathTest, BadConfigPanics)
{
    PerceptronConfig cfg;
    cfg.rows = 100;
    EXPECT_DEATH(PerceptronPredictor{cfg}, "assertion");
}

} // anonymous namespace
