/** @file Tests for the L1I/L1D/L2 hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace
{

using namespace interf;
using namespace interf::cache;

HierarchyConfig
smallHierarchy(bool prefetch = false)
{
    HierarchyConfig cfg;
    cfg.l1i = {"L1I", 4 << 10, 2, 64};
    cfg.l1d = {"L1D", 4 << 10, 2, 64};
    cfg.l2 = {"L2", 64 << 10, 4, 64};
    cfg.nextLinePrefetch = prefetch;
    return cfg;
}

TEST(Hierarchy, DataMissFillsAllLevels)
{
    MemoryHierarchy hier(smallHierarchy());
    EXPECT_EQ(hier.accessData(0x10000), HitLevel::Memory);
    EXPECT_EQ(hier.accessData(0x10000), HitLevel::L1);
}

TEST(Hierarchy, L2HoldsL1Victims)
{
    MemoryHierarchy hier(smallHierarchy());
    // Fill far beyond L1D (4 KB) but within L2 (64 KB).
    for (Addr a = 0; a < (32 << 10); a += 64)
        hier.accessData(0x100000 + a);
    // Second lap: L1-evicted lines hit in L2.
    int l2_hits = 0;
    for (Addr a = 0; a < (32 << 10); a += 64)
        l2_hits += hier.accessData(0x100000 + a) == HitLevel::L2;
    EXPECT_GT(l2_hits, 400);
    auto s = hier.stats();
    EXPECT_EQ(s.l2DataMisses, 512u); // only the cold pass missed L2
}

TEST(Hierarchy, InstAndDataTracksSeparate)
{
    MemoryHierarchy hier(smallHierarchy());
    hier.fetchInst(0x400000);
    hier.accessData(0x800000);
    auto s = hier.stats();
    EXPECT_EQ(s.l1i.accesses, 1u);
    EXPECT_EQ(s.l1d.accesses, 1u);
    EXPECT_EQ(s.l2InstMisses, 1u);
    EXPECT_EQ(s.l2DataMisses, 1u);
}

TEST(Hierarchy, PrefetchHidesSequentialMisses)
{
    MemoryHierarchy with(smallHierarchy(true));
    MemoryHierarchy without(smallHierarchy(false));
    // Sequential fetch through 2 KB of fresh code.
    for (Addr a = 0; a < 2048; a += 64) {
        with.fetchInst(0x400000 + a);
        without.fetchInst(0x400000 + a);
    }
    EXPECT_LT(with.stats().l1i.misses, without.stats().l1i.misses);
    // The prefetcher covers all but the first line.
    EXPECT_LE(with.stats().l1i.misses, 1u);
}

TEST(Hierarchy, PrefetchMissesAttributedSeparately)
{
    MemoryHierarchy hier(smallHierarchy(true));
    for (Addr a = 0; a < 2048; a += 64)
        hier.fetchInst(0x400000 + a);
    auto s = hier.stats();
    EXPECT_GT(s.l2PrefMisses, 0u);
}

TEST(Hierarchy, JumpTargetsStillMissWithPrefetch)
{
    MemoryHierarchy hier(smallHierarchy(true));
    // Jumpy fetch: distinct far-apart lines; next-line prefetch cannot
    // help.
    for (int i = 0; i < 16; ++i)
        hier.fetchInst(0x400000 + i * 8192);
    EXPECT_EQ(hier.stats().l1i.misses, 16u);
}

TEST(Hierarchy, StreamingEvictsL2)
{
    MemoryHierarchy hier(smallHierarchy());
    hier.accessData(0x10000); // resident line
    // Stream 4x the L2 through it.
    for (Addr a = 0; a < (256 << 10); a += 64)
        hier.accessData(0x1000000 + a);
    EXPECT_EQ(hier.accessData(0x10000), HitLevel::Memory);
}

TEST(Hierarchy, ResetForgetsEverything)
{
    MemoryHierarchy hier(smallHierarchy());
    hier.accessData(0x10000);
    hier.fetchInst(0x400000);
    hier.reset();
    EXPECT_EQ(hier.accessData(0x10000), HitLevel::Memory);
    auto s = hier.stats();
    EXPECT_EQ(s.l1d.accesses, 1u);
    EXPECT_EQ(s.l1i.accesses, 0u);
}

TEST(Hierarchy, ClearStatsKeepsContents)
{
    MemoryHierarchy hier(smallHierarchy());
    hier.accessData(0x10000);
    hier.clearStats();
    EXPECT_EQ(hier.stats().l1d.accesses, 0u);
    EXPECT_EQ(hier.stats().l2DataMisses, 0u);
    EXPECT_EQ(hier.accessData(0x10000), HitLevel::L1); // still warm
}

TEST(Hierarchy, XeonDefaultsValidate)
{
    HierarchyConfig cfg; // defaults = Xeon-like
    MemoryHierarchy hier(cfg);
    EXPECT_EQ(cfg.l1i.sizeBytes, 32u << 10);
    EXPECT_EQ(cfg.l2.sizeBytes, 6u << 20);
    EXPECT_EQ(hier.accessData(0x1234), HitLevel::Memory);
}

} // anonymous namespace
