/** @file Tests for the return address stack. */

#include <gtest/gtest.h>

#include "bpred/ras.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.pops(), 1u);
}

TEST(Ras, OccupancyTracksPushesAndPops)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.occupancy(), 0u);
    ras.push(1);
    ras.push(2);
    EXPECT_EQ(ras.occupancy(), 2u);
    ras.pop();
    EXPECT_EQ(ras.occupancy(), 1u);
}

TEST(Ras, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3); // overwrites 0x1
    EXPECT_EQ(ras.overflows(), 1u);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    // The third pop hits a stale/empty slot.
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, DeepChainMispredictsOnlyBeyondDepth)
{
    // Depth-16 stack, 20-deep call chain: the 4 outermost returns are
    // wrong, the 16 innermost are right.
    ReturnAddressStack ras(16);
    for (Addr d = 1; d <= 20; ++d)
        ras.push(d);
    int correct = 0;
    for (Addr d = 20; d >= 1; --d)
        correct += ras.pop() == d;
    EXPECT_EQ(correct, 16);
}

TEST(Ras, ResetClearsEverything)
{
    ReturnAddressStack ras(4);
    ras.push(1);
    ras.pop();
    ras.reset();
    EXPECT_EQ(ras.occupancy(), 0u);
    EXPECT_EQ(ras.pops(), 0u);
    EXPECT_EQ(ras.overflows(), 0u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, BalancedTrafficNeverOverflows)
{
    ReturnAddressStack ras(8);
    for (int round = 0; round < 100; ++round) {
        for (Addr d = 0; d < 6; ++d)
            ras.push(0x1000 + d);
        for (int d = 5; d >= 0; --d)
            EXPECT_EQ(ras.pop(), 0x1000u + d);
    }
    EXPECT_EQ(ras.overflows(), 0u);
}

TEST(RasDeathTest, ZeroDepthPanics)
{
    EXPECT_DEATH(ReturnAddressStack{0}, "assertion");
}

} // anonymous namespace
