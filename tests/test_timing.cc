/** @file Tests for the machine timing model — the properties program
 *  interferometry depends on. */

#include <gtest/gtest.h>

#include "core/timing.hh"
#include "layout/heap.hh"
#include "layout/linker.hh"
#include "trace/generator.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::core;

struct Bench
{
    trace::Program prog;
    trace::Trace trace;

    explicit Bench(const workloads::WorkloadProfile &profile,
                   u64 insts = 120000)
        : prog(workloads::buildProgram(profile)),
          trace(trace::TraceGenerator(prog, profile.behaviourSeed)
                    .makeTrace(insts))
    {
    }

    RunResult
    run(const MachineConfig &cfg, u64 layout_seed = 1,
        bool random_heap = false) const
    {
        layout::Linker linker;
        auto code = linker.link(prog, layout::LayoutKey{layout_seed,
                                                        true, true});
        layout::HeapKey hk;
        hk.seed = layout_seed;
        hk.randomize = random_heap;
        layout::HeapLayout heap(prog, hk);
        Machine machine(cfg);
        return machine.run(prog, trace, code, heap);
    }
};

const Bench &
testBench()
{
    static Bench bench(workloads::defaultProfile("timing"));
    return bench;
}

TEST(Timing, DeterministicRuns)
{
    auto cfg = MachineConfig::xeonE5440();
    auto a = testBench().run(cfg, 7);
    auto b = testBench().run(cfg, 7);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
}

TEST(Timing, MachineReusableAcrossRuns)
{
    auto cfg = MachineConfig::xeonE5440();
    Machine machine(cfg);
    layout::Linker linker;
    auto code = linker.link(testBench().prog,
                            layout::LayoutKey{3, true, true});
    layout::HeapLayout heap(testBench().prog,
                            layout::HeapKey::deterministic());
    auto a = machine.run(testBench().prog, testBench().trace, code, heap);
    auto b = machine.run(testBench().prog, testBench().trace, code, heap);
    EXPECT_EQ(a.cycles, b.cycles) << "state must reset between runs";
}

TEST(Timing, InstructionCountLayoutInvariant)
{
    auto cfg = MachineConfig::xeonE5440();
    auto a = testBench().run(cfg, 1);
    auto b = testBench().run(cfg, 2);
    // The Camino invariant: every layout retires identical work.
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.condBranches, b.condBranches);
}

TEST(Timing, CyclesVaryAcrossLayouts)
{
    auto cfg = MachineConfig::xeonE5440();
    auto a = testBench().run(cfg, 1);
    auto b = testBench().run(cfg, 2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Timing, CpiBoundedBelowByWidth)
{
    auto cfg = MachineConfig::xeonE5440();
    auto res = testBench().run(cfg);
    EXPECT_GE(res.cpi(), 1.0 / cfg.width);
    EXPECT_LT(res.cpi(), 20.0);
}

TEST(Timing, PerfectPredictorRemovesAllMispredicts)
{
    auto cfg = MachineConfig::xeonE5440().withPredictor("perfect");
    auto res = testBench().run(cfg);
    EXPECT_EQ(res.mispredicts, 0u);
    EXPECT_DOUBLE_EQ(res.mpki(), 0.0);
}

TEST(Timing, PerfectPredictionIsFaster)
{
    auto base = MachineConfig::xeonE5440();
    auto real = testBench().run(base);
    auto perfect =
        testBench().run(base.withPredictor("perfect"));
    EXPECT_LT(perfect.cycles, real.cycles);
    EXPECT_GT(real.mispredicts, 0u);
}

TEST(Timing, BetterPredictorFewerMispredictsFasterRun)
{
    auto base = MachineConfig::xeonE5440();
    auto weak = testBench().run(base.withPredictor("bimodal:256"));
    auto strong = testBench().run(base.withPredictor("ltage"));
    EXPECT_LT(strong.mispredicts, weak.mispredicts);
    EXPECT_LT(strong.cycles, weak.cycles);
}

TEST(Timing, PredictorIsTheOnlyCounterThatChanges)
{
    // Varying only the predictor must leave cache and BTB counts
    // untouched (the MASE single-variable property, Section 3.2).
    auto base = MachineConfig::xeonE5440();
    auto a = testBench().run(base.withPredictor("bimodal:1024"));
    auto b = testBench().run(base.withPredictor("ltage"));
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Timing, MispredictPenaltyScalesWithDepth)
{
    auto shallow = MachineConfig::xeonE5440();
    shallow.frontendDepth = 5;
    auto deep = MachineConfig::xeonE5440();
    deep.frontendDepth = 40;
    auto a = testBench().run(shallow);
    auto b = testBench().run(deep);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_LT(a.cycles, b.cycles);
    // Cycle delta ~ mispredicts * depth delta (within 50% slack from
    // other redirect costs).
    double delta = double(b.cycles - a.cycles);
    double expect = double(a.mispredicts) * 35.0;
    EXPECT_GT(delta, expect * 0.5);
    EXPECT_LT(delta, expect * 1.5);
}

TEST(Timing, MemoryLatencyMatters)
{
    auto profile = workloads::defaultProfile("memtest");
    profile.fracMem = 0.1;
    profile.fracL1 = 0.8;
    profile.fracL2 = 0.1;
    profile.memWorkingSet = 32 << 20;
    Bench bench(profile);
    auto fast = MachineConfig::xeonE5440();
    fast.memLatency = 60;
    auto slow = MachineConfig::xeonE5440();
    slow.memLatency = 400;
    EXPECT_LT(bench.run(fast).cycles, bench.run(slow).cycles);
}

TEST(Timing, MlpOverlapReducesMemoryCost)
{
    auto profile = workloads::defaultProfile("mlptest");
    profile.fracMem = 0.15;
    profile.fracL1 = 0.75;
    profile.fracL2 = 0.1;
    profile.memWorkingSet = 32 << 20;
    Bench bench(profile);
    auto serial = MachineConfig::xeonE5440();
    serial.maxMlp = 1;
    auto parallel = MachineConfig::xeonE5440();
    parallel.maxMlp = 8;
    auto a = bench.run(serial);
    auto b = bench.run(parallel);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_GT(a.cycles, b.cycles);
}

TEST(Timing, WarmupExcludesColdStart)
{
    auto no_warm = MachineConfig::xeonE5440();
    no_warm.warmupFraction = 0.0;
    auto warm = MachineConfig::xeonE5440();
    warm.warmupFraction = 0.5;
    auto a = testBench().run(no_warm);
    auto b = testBench().run(warm);
    EXPECT_GT(a.instructions, b.instructions);
    // Cold-start misses make the unwarmed CPI higher.
    EXPECT_GT(a.perKilo(a.l2Misses), b.perKilo(b.l2Misses));
}

TEST(Timing, HeapRandomizationPerturbsDataCaches)
{
    // Figure 3's mechanism: with randomize=true, different heap seeds
    // give different L1D/L2 miss counts for the same code layout.
    auto spec = workloads::specFor("454.calculix");
    Bench bench(spec.profile);
    layout::Linker linker;
    auto code = linker.link(bench.prog, layout::LayoutKey{1, true, true});
    Machine machine(MachineConfig::xeonE5440());
    layout::HeapKey h1, h2;
    h1.seed = 1;
    h2.seed = 2;
    auto a = machine.run(bench.prog, bench.trace, code,
                         layout::HeapLayout(bench.prog, h1));
    auto b = machine.run(bench.prog, bench.trace, code,
                         layout::HeapLayout(bench.prog, h2));
    EXPECT_NE(a.l1dMisses, b.l1dMisses);
    // Branch behaviour is untouched by data placement.
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(Timing, L2BreakdownSumsToTotal)
{
    auto res = testBench().run(MachineConfig::xeonE5440());
    EXPECT_EQ(res.l2Misses,
              res.l2InstMisses + res.l2PrefMisses + res.l2DataMisses);
}

TEST(Timing, RunResultHelpers)
{
    RunResult r;
    r.cycles = 2000;
    r.instructions = 1000;
    r.mispredicts = 5;
    EXPECT_DOUBLE_EQ(r.cpi(), 2.0);
    EXPECT_DOUBLE_EQ(r.mpki(), 5.0);
    EXPECT_DOUBLE_EQ(r.perKilo(20), 20.0);
}

TEST(TimingDeathTest, InvalidConfigIsFatal)
{
    auto cfg = MachineConfig::xeonE5440();
    cfg.width = 0;
    EXPECT_EXIT(Machine{cfg}, ::testing::ExitedWithCode(1), "width");
}

} // anonymous namespace
