/** @file Tests for interferometry campaigns (layout sweeps +
 *  escalation). */

#include <gtest/gtest.h>

#include "interferometry/campaign.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::interferometry;

CampaignConfig
quickConfig(u32 layouts = 8)
{
    CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts;
    return cfg;
}

TEST(Campaign, MeasuresRequestedLayouts)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto samples = camp.measureLayouts(0, 5);
    EXPECT_EQ(samples.size(), 5u);
    for (const auto &m : samples) {
        EXPECT_GT(m.cpi, 0.0);
        EXPECT_GT(m.instructions, 0u);
    }
}

TEST(Campaign, LayoutSeedsDistinct)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto samples = camp.measureLayouts(0, 4);
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_NE(samples[i].layoutSeed, samples[0].layoutSeed);
}

TEST(Campaign, InstructionCountInvariantAcrossLayouts)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto samples = camp.measureLayouts(0, 6);
    for (const auto &m : samples)
        EXPECT_EQ(m.instructions, samples[0].instructions);
}

TEST(Campaign, Reproducible)
{
    auto profile = workloads::defaultProfile("camp");
    Campaign a(profile, quickConfig());
    Campaign b(profile, quickConfig());
    auto sa = a.measureLayouts(0, 3);
    auto sb = b.measureLayouts(0, 3);
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].cycles, sb[i].cycles);
        EXPECT_EQ(sa[i].mispredicts, sb[i].mispredicts);
    }
}

TEST(Campaign, CodeLayoutsDifferPerIndex)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto a = camp.codeLayoutFor(0);
    auto b = camp.codeLayoutFor(1);
    EXPECT_NE(a.procOrder(), b.procOrder());
}

TEST(Campaign, HeapModeFollowsConfig)
{
    auto profile = workloads::defaultProfile("camp");
    auto cfg = quickConfig();
    cfg.randomizeHeap = false;
    Campaign fixed(profile, cfg);
    // Deterministic heap: all layout indices share data placement.
    auto h0 = fixed.heapLayoutFor(0);
    auto h1 = fixed.heapLayoutFor(1);
    for (const auto &region : fixed.program().regions())
        EXPECT_EQ(h0.regionBase(region.id), h1.regionBase(region.id));

    cfg.randomizeHeap = true;
    Campaign randomized(profile, cfg);
    auto r0 = randomized.heapLayoutFor(0);
    auto r1 = randomized.heapLayoutFor(1);
    int moved = 0;
    for (const auto &region : randomized.program().regions())
        if (region.kind == trace::RegionKind::Heap)
            moved += r0.regionBase(region.id) != r1.regionBase(region.id);
    EXPECT_GT(moved, 0);
}

TEST(Campaign, RunStopsEarlyWhenSignificant)
{
    // A strongly layout-sensitive benchmark should pass in the first
    // batch and never escalate.
    auto spec = workloads::specFor("445.gobmk");
    CampaignConfig cfg;
    cfg.instructionBudget = 150000;
    cfg.initialLayouts = 20;
    cfg.escalationStep = 20;
    cfg.maxLayouts = 60;
    Campaign camp(spec.profile, cfg);
    auto res = camp.run();
    EXPECT_TRUE(res.significant);
    EXPECT_EQ(res.layoutsUsed, 20u);
    EXPECT_EQ(res.samples.size(), 20u);
}

TEST(Campaign, RunEscalatesAndGivesUpOnFlatBenchmark)
{
    // lbm-like: no MPKI range at all -> escalate to the cap and fail.
    auto spec = workloads::specFor("470.lbm");
    CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = 6;
    cfg.escalationStep = 6;
    cfg.maxLayouts = 18;
    Campaign camp(spec.profile, cfg);
    auto res = camp.run();
    EXPECT_FALSE(res.significant);
    EXPECT_FALSE(res.enoughMpkiRange);
    EXPECT_EQ(res.layoutsUsed, 18u);
    EXPECT_EQ(res.samples.size(), 18u);
}

TEST(Campaign, NoDataDiscardedOnEscalation)
{
    // "We do not discard any data": escalation appends, keeping the
    // earlier batches' samples (same seeds as a direct big batch).
    auto profile = workloads::defaultProfile("camp");
    CampaignConfig small = quickConfig(4);
    Campaign direct(profile, quickConfig(8));
    Campaign stepwise(profile, small);
    auto all = direct.measureLayouts(0, 8);
    auto first = stepwise.measureLayouts(0, 4);
    auto second = stepwise.measureLayouts(4, 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(all[i].cycles, first[i].cycles);
        EXPECT_EQ(all[4 + i].cycles, second[i].cycles);
    }
}

TEST(Campaign, TraceSharedAcrossLayouts)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    const auto &trace = camp.trace();
    EXPECT_GT(trace.instCount, 0u);
    // The trace is generated once; its address-free events never change
    // between measureLayouts calls.
    auto before = trace.events.size();
    camp.measureLayouts(0, 2);
    EXPECT_EQ(camp.trace().events.size(), before);
}

} // anonymous namespace
