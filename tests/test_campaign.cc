/** @file Tests for interferometry campaigns (layout sweeps +
 *  escalation + artifact-store checkpoint/resume). */

#include <filesystem>

#include <gtest/gtest.h>

#include "interferometry/campaign.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::interferometry;

CampaignConfig
quickConfig(u32 layouts = 8)
{
    CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts;
    return cfg;
}

TEST(Campaign, MeasuresRequestedLayouts)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto samples = camp.measureLayouts(0, 5);
    EXPECT_EQ(samples.size(), 5u);
    for (const auto &m : samples) {
        EXPECT_GT(m.cpi, 0.0);
        EXPECT_GT(m.instructions, 0u);
    }
}

TEST(Campaign, LayoutSeedsDistinct)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto samples = camp.measureLayouts(0, 4);
    for (size_t i = 1; i < samples.size(); ++i)
        EXPECT_NE(samples[i].layoutSeed, samples[0].layoutSeed);
}

TEST(Campaign, InstructionCountInvariantAcrossLayouts)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto samples = camp.measureLayouts(0, 6);
    for (const auto &m : samples)
        EXPECT_EQ(m.instructions, samples[0].instructions);
}

TEST(Campaign, Reproducible)
{
    auto profile = workloads::defaultProfile("camp");
    Campaign a(profile, quickConfig());
    Campaign b(profile, quickConfig());
    auto sa = a.measureLayouts(0, 3);
    auto sb = b.measureLayouts(0, 3);
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].cycles, sb[i].cycles);
        EXPECT_EQ(sa[i].mispredicts, sb[i].mispredicts);
    }
}

TEST(Campaign, CodeLayoutsDifferPerIndex)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    auto a = camp.codeLayoutFor(0);
    auto b = camp.codeLayoutFor(1);
    EXPECT_NE(a.procOrder(), b.procOrder());
}

TEST(Campaign, HeapModeFollowsConfig)
{
    auto profile = workloads::defaultProfile("camp");
    auto cfg = quickConfig();
    cfg.randomizeHeap = false;
    Campaign fixed(profile, cfg);
    // Deterministic heap: all layout indices share data placement.
    auto h0 = fixed.heapLayoutFor(0);
    auto h1 = fixed.heapLayoutFor(1);
    for (const auto &region : fixed.program().regions())
        EXPECT_EQ(h0.regionBase(region.id), h1.regionBase(region.id));

    cfg.randomizeHeap = true;
    Campaign randomized(profile, cfg);
    auto r0 = randomized.heapLayoutFor(0);
    auto r1 = randomized.heapLayoutFor(1);
    int moved = 0;
    for (const auto &region : randomized.program().regions())
        if (region.kind == trace::RegionKind::Heap)
            moved += r0.regionBase(region.id) != r1.regionBase(region.id);
    EXPECT_GT(moved, 0);
}

TEST(Campaign, RunStopsEarlyWhenSignificant)
{
    // A strongly layout-sensitive benchmark should pass in the first
    // batch and never escalate.
    auto spec = workloads::specFor("445.gobmk");
    CampaignConfig cfg;
    cfg.instructionBudget = 150000;
    cfg.initialLayouts = 20;
    cfg.escalationStep = 20;
    cfg.maxLayouts = 60;
    Campaign camp(spec.profile, cfg);
    auto res = camp.run();
    EXPECT_TRUE(res.significant);
    EXPECT_EQ(res.layoutsUsed, 20u);
    EXPECT_EQ(res.samples.size(), 20u);
}

TEST(Campaign, RunEscalatesAndGivesUpOnFlatBenchmark)
{
    // lbm-like: no MPKI range at all -> escalate to the cap and fail.
    auto spec = workloads::specFor("470.lbm");
    CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = 6;
    cfg.escalationStep = 6;
    cfg.maxLayouts = 18;
    Campaign camp(spec.profile, cfg);
    auto res = camp.run();
    EXPECT_FALSE(res.significant);
    EXPECT_FALSE(res.enoughMpkiRange);
    EXPECT_EQ(res.layoutsUsed, 18u);
    EXPECT_EQ(res.samples.size(), 18u);
}

TEST(Campaign, NoDataDiscardedOnEscalation)
{
    // "We do not discard any data": escalation appends, keeping the
    // earlier batches' samples (same seeds as a direct big batch).
    auto profile = workloads::defaultProfile("camp");
    CampaignConfig small = quickConfig(4);
    Campaign direct(profile, quickConfig(8));
    Campaign stepwise(profile, small);
    auto all = direct.measureLayouts(0, 8);
    auto first = stepwise.measureLayouts(0, 4);
    auto second = stepwise.measureLayouts(4, 4);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(all[i].cycles, first[i].cycles);
        EXPECT_EQ(all[4 + i].cycles, second[i].cycles);
    }
}

void
expectSamplesIdentical(const std::vector<core::Measurement> &a,
                       const std::vector<core::Measurement> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].layoutSeed, b[i].layoutSeed) << "sample " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "sample " << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << "sample " << i;
        EXPECT_EQ(a[i].condBranches, b[i].condBranches) << "sample " << i;
        EXPECT_EQ(a[i].mispredicts, b[i].mispredicts) << "sample " << i;
        EXPECT_EQ(a[i].l1iMisses, b[i].l1iMisses) << "sample " << i;
        EXPECT_EQ(a[i].l1dMisses, b[i].l1dMisses) << "sample " << i;
        EXPECT_EQ(a[i].l2Misses, b[i].l2Misses) << "sample " << i;
        EXPECT_EQ(a[i].btbMisses, b[i].btbMisses) << "sample " << i;
        // Doubles compared with ==: the parallel path must be
        // bit-identical, not merely close.
        EXPECT_EQ(a[i].cpi, b[i].cpi) << "sample " << i;
        EXPECT_EQ(a[i].mpki, b[i].mpki) << "sample " << i;
        EXPECT_EQ(a[i].l1iMpki, b[i].l1iMpki) << "sample " << i;
        EXPECT_EQ(a[i].l1dMpki, b[i].l1dMpki) << "sample " << i;
        EXPECT_EQ(a[i].l2Mpki, b[i].l2Mpki) << "sample " << i;
        EXPECT_EQ(a[i].btbMpki, b[i].btbMpki) << "sample " << i;
    }
}

TEST(Campaign, ParallelMatchesSerialBitForBit)
{
    // The determinism regression the executor guarantees: jobs=1 and
    // jobs=8 produce seed-for-seed identical samples on all counters.
    auto profile = workloads::defaultProfile("camp");
    auto serial_cfg = quickConfig(12);
    serial_cfg.jobs = 1;
    auto parallel_cfg = quickConfig(12);
    parallel_cfg.jobs = 8;
    Campaign serial(profile, serial_cfg);
    Campaign parallel(profile, parallel_cfg);
    expectSamplesIdentical(serial.measureLayouts(0, 12),
                           parallel.measureLayouts(0, 12));
}

TEST(Campaign, ParallelMatchesSerialWithHeapAndPages)
{
    // Same guarantee with every per-layout degree of freedom enabled
    // (randomized heap + physical page maps).
    auto profile = workloads::defaultProfile("camp");
    auto cfg = quickConfig(10);
    cfg.randomizeHeap = true;
    cfg.physicalPages = true;
    auto serial_cfg = cfg;
    serial_cfg.jobs = 1;
    auto parallel_cfg = cfg;
    parallel_cfg.jobs = 8;
    Campaign serial(profile, serial_cfg);
    Campaign parallel(profile, parallel_cfg);
    expectSamplesIdentical(serial.measureLayouts(0, 10),
                           parallel.measureLayouts(0, 10));
}

TEST(Campaign, BatchLanesProduceIdenticalSamplesAtAnyWidthAndJobs)
{
    // batchLanes is an execution knob like jobs: any lane grouping, at
    // any worker count, yields seed-for-seed byte-identical samples.
    // Width 3 makes groups straddle the 13-layout range raggedly; 8
    // exceeds the serial chunk a 4-worker pool gets for some chunks.
    auto profile = workloads::defaultProfile("camp");
    auto base_cfg = quickConfig(13);
    base_cfg.randomizeHeap = true;
    base_cfg.physicalPages = true;
    base_cfg.jobs = 1;
    base_cfg.batchLanes = 1;
    Campaign baseline(profile, base_cfg);
    auto expected = baseline.measureLayouts(0, 13);
    for (u32 lanes : {3u, 4u, 8u}) {
        for (u32 jobs : {1u, 4u}) {
            auto cfg = base_cfg;
            cfg.batchLanes = lanes;
            cfg.jobs = jobs;
            Campaign camp(profile, cfg);
            expectSamplesIdentical(expected, camp.measureLayouts(0, 13));
        }
    }
}

TEST(Campaign, RunEscalatesIdenticallyUnderParallelism)
{
    // The full escalation loop (which reuses the pool across batches)
    // reaches the same verdict and samples at any worker count.
    auto spec = workloads::specFor("470.lbm");
    CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = 6;
    cfg.escalationStep = 6;
    cfg.maxLayouts = 18;
    auto serial_cfg = cfg;
    serial_cfg.jobs = 1;
    auto parallel_cfg = cfg;
    parallel_cfg.jobs = 8;
    Campaign serial(spec.profile, serial_cfg);
    Campaign parallel(spec.profile, parallel_cfg);
    auto ra = serial.run();
    auto rb = parallel.run();
    EXPECT_EQ(ra.significant, rb.significant);
    EXPECT_EQ(ra.enoughMpkiRange, rb.enoughMpkiRange);
    EXPECT_EQ(ra.layoutsUsed, rb.layoutsUsed);
    EXPECT_GT(rb.layoutsUsed, cfg.initialLayouts); // escalation happened
    expectSamplesIdentical(ra.samples, rb.samples);
}

/** Scratch artifact-store root, removed on destruction. */
struct TempStore
{
    std::string path;

    TempStore()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = ::testing::TempDir() + "interf_campaign_store_" +
               std::string(info->name());
        std::filesystem::remove_all(path);
    }

    ~TempStore() { std::filesystem::remove_all(path); }
};

/** The escalating configuration used by the store tests: a flat
 *  benchmark that always runs 3 batches of 6 layouts. */
CampaignConfig
escalatingConfig(const std::string &store_dir, u32 jobs)
{
    CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = 6;
    cfg.escalationStep = 6;
    cfg.maxLayouts = 18;
    cfg.storeDir = store_dir;
    cfg.jobs = jobs;
    return cfg;
}

class CampaignStoreTest : public ::testing::TestWithParam<u32>
{
};

TEST_P(CampaignStoreTest, RepeatRunIsAPureCacheHit)
{
    const u32 jobs = GetParam();
    auto spec = workloads::specFor("470.lbm");
    TempStore store;

    Campaign cold(spec.profile, escalatingConfig(store.path, jobs));
    auto cold_res = cold.run();
    EXPECT_EQ(cold_res.measuredLayouts, 18u);
    EXPECT_EQ(cold_res.cachedLayouts, 0u);

    // A fresh campaign over the same configuration performs zero new
    // measurements and returns byte-identical samples — even at a
    // different worker count, since jobs is not part of the store key.
    for (u32 warm_jobs : {1u, 4u}) {
        Campaign warm(spec.profile,
                      escalatingConfig(store.path, warm_jobs));
        auto warm_res = warm.run();
        EXPECT_EQ(warm_res.measuredLayouts, 0u) << warm_jobs;
        EXPECT_EQ(warm_res.cachedLayouts, 18u) << warm_jobs;
        EXPECT_EQ(warm_res.significant, cold_res.significant);
        EXPECT_EQ(warm_res.enoughMpkiRange, cold_res.enoughMpkiRange);
        EXPECT_EQ(warm_res.layoutsUsed, cold_res.layoutsUsed);
        expectSamplesIdentical(warm_res.samples, cold_res.samples);
    }
}

TEST_P(CampaignStoreTest, InterruptedCampaignResumes)
{
    const u32 jobs = GetParam();
    auto spec = workloads::specFor("470.lbm");

    // The reference: a storeless cold run of the full escalation.
    Campaign reference(spec.profile, escalatingConfig("", jobs));
    auto ref = reference.run();
    ASSERT_EQ(ref.samples.size(), 18u);

    // The "killed" campaign persisted 7 layouts — one full batch plus
    // one layout of the second — before dying.
    TempStore store;
    {
        Campaign partial(spec.profile,
                         escalatingConfig(store.path, jobs));
        partial.measureLayouts(0, 7);
    }

    // Resume: the completed prefix is loaded, only the remaining 11
    // layouts are measured, and the samples match the uninterrupted
    // run byte for byte.
    Campaign resumed(spec.profile, escalatingConfig(store.path, jobs));
    auto res = resumed.run();
    EXPECT_EQ(res.cachedLayouts, 7u);
    EXPECT_EQ(res.measuredLayouts, 11u);
    EXPECT_EQ(res.significant, ref.significant);
    EXPECT_EQ(res.layoutsUsed, ref.layoutsUsed);
    expectSamplesIdentical(res.samples, ref.samples);
}

TEST_P(CampaignStoreTest, MeasureLayoutsServedFromStore)
{
    // The benches' path: measureLayouts directly, no escalation loop.
    const u32 jobs = GetParam();
    auto profile = workloads::defaultProfile("camp");
    auto cfg = quickConfig(8);
    cfg.jobs = jobs;
    TempStore store;
    cfg.storeDir = store.path;

    Campaign cold(profile, cfg);
    auto a = cold.measureLayouts(0, 8);
    EXPECT_EQ(cold.measuredLayouts(), 8u);

    Campaign warm(profile, cfg);
    auto b = warm.measureLayouts(0, 8);
    EXPECT_EQ(warm.measuredLayouts(), 0u);
    EXPECT_EQ(warm.cachedLayouts(), 8u);
    expectSamplesIdentical(a, b);
}

INSTANTIATE_TEST_SUITE_P(JobsSerialAndParallel, CampaignStoreTest,
                         ::testing::Values(1u, 4u));

TEST(CampaignStore, DistinctConfigsDoNotShareSamples)
{
    // Changing any key field (here the instruction budget) must miss
    // the cache rather than serve another campaign's samples.
    auto profile = workloads::defaultProfile("camp");
    TempStore store;
    auto cfg = quickConfig(4);
    cfg.storeDir = store.path;
    Campaign first(profile, cfg);
    first.measureLayouts(0, 4);

    auto other_cfg = cfg;
    other_cfg.instructionBudget += 10000;
    Campaign second(profile, other_cfg);
    second.measureLayouts(0, 4);
    EXPECT_EQ(second.measuredLayouts(), 4u);
    EXPECT_EQ(second.cachedLayouts(), 0u);
}

TEST(CampaignStore, GapBeyondStoreIsMeasuredNotPersisted)
{
    // Jumping past the persisted prefix still measures correctly; the
    // store only ever grows by contiguous batches.
    auto profile = workloads::defaultProfile("camp");
    TempStore store;
    auto cfg = quickConfig(12);
    cfg.storeDir = store.path;

    Campaign camp(profile, cfg);
    auto tail = camp.measureLayouts(6, 3); // gap: nothing persisted yet
    EXPECT_EQ(camp.measuredLayouts(), 3u);

    Campaign again(profile, cfg);
    auto tail2 = again.measureLayouts(6, 3);
    EXPECT_EQ(again.cachedLayouts(), 0u); // nothing was persisted
    expectSamplesIdentical(tail, tail2);

    // Contiguous prefix appends still work afterwards.
    auto head = again.measureLayouts(0, 6);
    Campaign third(profile, cfg);
    auto head2 = third.measureLayouts(0, 6);
    EXPECT_EQ(third.cachedLayouts(), 6u);
    EXPECT_EQ(third.measuredLayouts(), 0u);
    expectSamplesIdentical(head, head2);
}

TEST(CampaignStore, PartiallyCachedRunBuildsTablesOnlyForUnmeasured)
{
    // Layout tables are expensive to build; a partially-cached run must
    // derive them only for the lanes it actually replays, never for the
    // layouts served from the store. Proven via the layout.tables_built
    // counter, which both measureOne and the batched group increment.
    auto profile = workloads::defaultProfile("camp");
    TempStore store;
    auto cfg = quickConfig(8);
    cfg.storeDir = store.path;
    cfg.batchLanes = 4;

    // Cold prefix: persist layouts [0, 5) with telemetry off.
    {
        Campaign cold(profile, cfg);
        cold.measureLayouts(0, 5);
    }

    telemetry::resetForTest();
    telemetry::enable();
    {
        Campaign warm(profile, cfg);
        auto samples = warm.measureLayouts(0, 8);
        EXPECT_EQ(samples.size(), 8u);
        EXPECT_EQ(warm.cachedLayouts(), 5u);
        EXPECT_EQ(warm.measuredLayouts(), 3u);
    }
    u64 built = 0;
    for (const auto &c :
         telemetry::Registry::global().snapshot().counters)
        if (c.name == "layout.tables_built")
            built = c.value;
    telemetry::disable();
    telemetry::resetForTest();
    EXPECT_EQ(built, 3u);
}

TEST(Campaign, TraceSharedAcrossLayouts)
{
    Campaign camp(workloads::defaultProfile("camp"), quickConfig());
    const auto &trace = camp.trace();
    EXPECT_GT(trace.instCount, 0u);
    // The trace is generated once; its address-free events never change
    // between measureLayouts calls.
    auto before = trace.events.size();
    camp.measureLayouts(0, 2);
    EXPECT_EQ(camp.trace().events.size(), before);
}

} // anonymous namespace
