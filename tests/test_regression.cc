/** @file Tests for simple and multiple least-squares regression. */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/regression.hh"
#include "util/random.hh"

namespace
{

using interf::Rng;
using namespace interf::stats;

TEST(LinearFit, ExactLineRecovered)
{
    std::vector<double> xs{0, 1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(3.0 * x + 1.5);
    LinearFit fit(xs, ys);
    EXPECT_NEAR(fit.slope(), 3.0, 1e-12);
    EXPECT_NEAR(fit.intercept(), 1.5, 1e-12);
    EXPECT_NEAR(fit.r(), 1.0, 1e-12);
    EXPECT_NEAR(fit.residualStdError(), 0.0, 1e-9);
}

TEST(LinearFit, KnownTextbookCase)
{
    // Anscombe I data set: slope 0.5001, intercept 3.0001, r2 ~ 0.667.
    std::vector<double> xs{10, 8, 13, 9, 11, 14, 6, 4, 12, 7, 5};
    std::vector<double> ys{8.04, 6.95, 7.58, 8.81, 8.33, 9.96,
                           7.24, 4.26, 10.84, 4.82, 5.68};
    LinearFit fit(xs, ys);
    EXPECT_NEAR(fit.slope(), 0.5001, 1e-3);
    EXPECT_NEAR(fit.intercept(), 3.0001, 1e-2);
    EXPECT_NEAR(fit.r2(), 0.6665, 1e-3);
}

TEST(LinearFit, PredictionMatchesCoefficients)
{
    std::vector<double> xs{1, 2, 3, 4, 5, 6};
    std::vector<double> ys{2.1, 3.9, 6.2, 7.8, 10.1, 11.9};
    LinearFit fit(xs, ys);
    EXPECT_NEAR(fit.predict(10.0),
                fit.slope() * 10.0 + fit.intercept(), 1e-12);
}

TEST(LinearFit, ConfidenceNarrowerThanPrediction)
{
    Rng rng(1);
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.1;
        xs.push_back(x);
        ys.push_back(2.0 * x + 1.0 + rng.gaussian(0, 0.3));
    }
    LinearFit fit(xs, ys);
    for (double x : {0.0, 2.5, 5.0, 10.0}) {
        auto ci = fit.confidenceInterval(x);
        auto pi = fit.predictionInterval(x);
        EXPECT_LT(ci.width(), pi.width());
        EXPECT_NEAR(ci.center(), fit.predict(x), 1e-9);
        EXPECT_NEAR(pi.center(), fit.predict(x), 1e-9);
    }
}

TEST(LinearFit, IntervalsWidenAwayFromMean)
{
    Rng rng(2);
    std::vector<double> xs, ys;
    for (int i = 0; i < 30; ++i) {
        double x = 1.0 + i * 0.2;
        xs.push_back(x);
        ys.push_back(0.5 * x + rng.gaussian(0, 0.1));
    }
    LinearFit fit(xs, ys);
    double mid = fit.xMean();
    auto at_mean = fit.confidenceInterval(mid);
    auto far = fit.confidenceInterval(mid + 10.0);
    EXPECT_GT(far.width(), at_mean.width());
}

TEST(LinearFit, PredictionIntervalCoverage)
{
    // Property: ~95% of fresh observations fall inside the 95% PI.
    Rng rng(3);
    int covered = 0, total = 0;
    for (int rep = 0; rep < 40; ++rep) {
        std::vector<double> xs, ys;
        for (int i = 0; i < 60; ++i) {
            double x = rng.nextDouble() * 10;
            xs.push_back(x);
            ys.push_back(1.7 * x + 0.4 + rng.gaussian(0, 0.5));
        }
        LinearFit fit(xs, ys);
        for (int i = 0; i < 25; ++i) {
            double x = rng.nextDouble() * 10;
            double y = 1.7 * x + 0.4 + rng.gaussian(0, 0.5);
            covered += fit.predictionInterval(x).contains(y);
            ++total;
        }
    }
    double rate = double(covered) / total;
    EXPECT_GT(rate, 0.92);
    EXPECT_LT(rate, 0.98);
}

TEST(LinearFit, SlopeTStatistic)
{
    // Strong linear signal should give a large t.
    Rng rng(4);
    std::vector<double> xs, ys;
    for (int i = 0; i < 100; ++i) {
        double x = i * 0.1;
        xs.push_back(x);
        ys.push_back(x + rng.gaussian(0, 0.2));
    }
    LinearFit fit(xs, ys);
    EXPECT_GT(fit.slopeT(), 20.0);
    EXPECT_GT(fit.slopeStdError(), 0.0);
}

TEST(LinearFit, ConstantXDegenerates)
{
    std::vector<double> xs{2, 2, 2, 2};
    std::vector<double> ys{1, 2, 3, 4};
    LinearFit fit(xs, ys);
    EXPECT_DOUBLE_EQ(fit.slope(), 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept(), 2.5);
    EXPECT_DOUBLE_EQ(fit.r(), 0.0);
    EXPECT_DOUBLE_EQ(fit.slopeT(), 0.0);
}

TEST(LinearFit, PaperStyleModel)
{
    // Synthetic version of the paper's perlbench model:
    // CPI = 0.02799 * MPKI + 0.51667 with small noise.
    Rng rng(5);
    std::vector<double> mpki, cpi;
    for (int i = 0; i < 100; ++i) {
        double m = 5.8 + rng.nextDouble() * 1.4;
        mpki.push_back(m);
        cpi.push_back(0.02799 * m + 0.51667 + rng.gaussian(0, 0.004));
    }
    LinearFit fit(mpki, cpi);
    EXPECT_NEAR(fit.slope(), 0.028, 0.004);
    EXPECT_NEAR(fit.intercept(), 0.517, 0.02);
    // Extrapolated perfect-prediction CPI has a sane interval.
    auto pi = fit.predictionInterval(0.0);
    EXPECT_TRUE(pi.contains(0.517));
    EXPECT_LT(pi.width(), 0.2);
}

TEST(MultiFit, ExactPlaneRecovered)
{
    std::vector<double> x1{1, 2, 3, 4, 5, 6, 7};
    std::vector<double> x2{2, 1, 4, 3, 6, 5, 8};
    std::vector<double> ys;
    for (size_t i = 0; i < x1.size(); ++i)
        ys.push_back(1.0 + 2.0 * x1[i] - 0.5 * x2[i]);
    MultiFit fit({x1, x2}, ys);
    ASSERT_EQ(fit.coefficients().size(), 3u);
    EXPECT_NEAR(fit.coefficients()[0], 1.0, 1e-9);
    EXPECT_NEAR(fit.coefficients()[1], 2.0, 1e-9);
    EXPECT_NEAR(fit.coefficients()[2], -0.5, 1e-9);
    EXPECT_NEAR(fit.r2(), 1.0, 1e-12);
}

TEST(MultiFit, PredictUsesAllCoefficients)
{
    std::vector<double> x1{1, 2, 3, 4, 5};
    std::vector<double> x2{0, 1, 0, 1, 0};
    std::vector<double> ys{1, 4, 3, 6, 5};
    MultiFit fit({x1, x2}, ys);
    auto b = fit.coefficients();
    EXPECT_NEAR(fit.predict({2.0, 1.0}), b[0] + 2 * b[1] + b[2], 1e-9);
}

TEST(MultiFit, MatchesSimpleFitWithOnePredictor)
{
    std::vector<double> xs{1, 2, 3, 4, 5, 6};
    std::vector<double> ys{1.1, 2.3, 2.8, 4.2, 5.1, 5.8};
    LinearFit simple(xs, ys);
    MultiFit multi({xs}, ys);
    EXPECT_NEAR(multi.coefficients()[0], simple.intercept(), 1e-9);
    EXPECT_NEAR(multi.coefficients()[1], simple.slope(), 1e-9);
    EXPECT_NEAR(multi.r2(), simple.r2(), 1e-9);
}

TEST(MultiFit, AdjustedR2BelowR2)
{
    Rng rng(6);
    std::vector<double> x1, x2, x3, ys;
    for (int i = 0; i < 30; ++i) {
        x1.push_back(rng.nextDouble());
        x2.push_back(rng.nextDouble());
        x3.push_back(rng.nextDouble());
        ys.push_back(x1.back() + rng.gaussian(0, 0.3));
    }
    MultiFit fit({x1, x2, x3}, ys);
    EXPECT_LE(fit.adjustedR2(), fit.r2());
}

TEST(MultiFit, FStatisticSignificantForRealSignal)
{
    Rng rng(7);
    std::vector<double> x1, x2, ys;
    for (int i = 0; i < 60; ++i) {
        x1.push_back(rng.nextDouble() * 5);
        x2.push_back(rng.nextDouble() * 5);
        ys.push_back(2 * x1.back() + x2.back() + rng.gaussian(0, 0.5));
    }
    MultiFit fit({x1, x2}, ys);
    EXPECT_LT(fit.fPValue(), 1e-6);
}

TEST(MultiFit, FStatisticInsignificantForNoise)
{
    Rng rng(8);
    std::vector<double> x1, ys;
    for (int i = 0; i < 40; ++i) {
        x1.push_back(rng.nextDouble());
        ys.push_back(rng.gaussian(0, 1.0));
    }
    MultiFit fit({x1}, ys);
    EXPECT_GT(fit.fPValue(), 0.01);
}

TEST(MultiFit, CollinearPredictorsSurvive)
{
    // x2 = 2*x1: the ridge fallback must keep the solve stable.
    std::vector<double> x1{1, 2, 3, 4, 5, 6};
    std::vector<double> x2{2, 4, 6, 8, 10, 12};
    std::vector<double> ys{1, 2, 3, 4, 5, 6};
    MultiFit fit({x1, x2}, ys);
    EXPECT_NEAR(fit.r2(), 1.0, 1e-6);
    EXPECT_NEAR(fit.predict({3.5, 7.0}), 3.5, 1e-4);
}

TEST(RegressionDeathTest, TooFewPointsPanics)
{
    std::vector<double> xs{1, 2};
    std::vector<double> ys{1, 2};
    EXPECT_DEATH((LinearFit{xs, ys}), "assertion");
}

} // anonymous namespace
