/** @file Tests for binary trace serialization. */

#include <sstream>

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "trace/io.hh"
#include "workloads/builder.hh"

namespace
{

using namespace interf;
using namespace interf::trace;

struct Fixture
{
    Program prog;
    Trace trace;

    Fixture()
        : prog(workloads::buildProgram(workloads::defaultProfile("io"))),
          trace(TraceGenerator(prog, 3).makeTrace(50000))
    {
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    auto &f = fixture();
    std::stringstream buf;
    saveTrace(buf, f.prog, f.trace);
    Trace loaded = loadTrace(buf, f.prog);

    EXPECT_EQ(loaded.instCount, f.trace.instCount);
    EXPECT_EQ(loaded.condBranches, f.trace.condBranches);
    EXPECT_EQ(loaded.takenBranches, f.trace.takenBranches);
    EXPECT_EQ(loaded.loads, f.trace.loads);
    EXPECT_EQ(loaded.stores, f.trace.stores);
    ASSERT_EQ(loaded.events.size(), f.trace.events.size());
    EXPECT_EQ(loaded.memIds, f.trace.memIds);
    for (size_t i = 0; i < loaded.events.size(); ++i) {
        EXPECT_EQ(loaded.events[i].proc, f.trace.events[i].proc);
        EXPECT_EQ(loaded.events[i].block, f.trace.events[i].block);
        EXPECT_EQ(loaded.events[i].taken, f.trace.events[i].taken);
    }
}

TEST(TraceIo, ChecksumStableAndStructural)
{
    auto &f = fixture();
    EXPECT_EQ(programChecksum(f.prog), programChecksum(f.prog));
    // A different program hashes differently.
    auto profile = workloads::defaultProfile("io");
    profile.structureSeed += 1;
    auto other = workloads::buildProgram(profile);
    EXPECT_NE(programChecksum(f.prog), programChecksum(other));
}

TEST(TraceIo, FileRoundTrip)
{
    auto &f = fixture();
    std::string path = ::testing::TempDir() + "interf_trace_io_test.bin";
    saveTrace(path, f.prog, f.trace);
    Trace loaded = loadTrace(path, f.prog);
    EXPECT_EQ(loaded.instCount, f.trace.instCount);
    std::remove(path.c_str());
}

TEST(TraceIoDeathTest, WrongProgramRejected)
{
    auto &f = fixture();
    std::stringstream buf;
    saveTrace(buf, f.prog, f.trace);
    auto profile = workloads::defaultProfile("io");
    profile.structureSeed += 7;
    auto other = workloads::buildProgram(profile);
    EXPECT_EXIT((void)loadTrace(buf, other),
                ::testing::ExitedWithCode(1), "checksum mismatch");
}

TEST(TraceIoDeathTest, GarbageRejected)
{
    auto &f = fixture();
    std::stringstream buf("this is not a trace file at all");
    EXPECT_EXIT((void)loadTrace(buf, f.prog),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(TraceIoDeathTest, TruncationRejected)
{
    auto &f = fixture();
    std::stringstream buf;
    saveTrace(buf, f.prog, f.trace);
    std::string data = buf.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_EXIT((void)loadTrace(cut, f.prog),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(TraceIoDeathTest, MissingFileRejected)
{
    auto &f = fixture();
    EXPECT_EXIT((void)loadTrace("/nonexistent/trace.bin", f.prog),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
