/** @file Golden tests for the compiled replay plan: Machine::replay
 *  must be bit-identical to the event-at-a-time reference model on
 *  every counter, for every layout — this is the contract that lets
 *  campaigns run the dense kernel at all. */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/timing.hh"
#include "layout/heap.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "pinsim/pinsim.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::core;
using namespace interf::trace;

struct Workload
{
    Program prog;
    Trace trace;
    ReplayPlan plan;

    explicit Workload(const workloads::WorkloadProfile &profile,
                      u64 insts = 80000)
        : prog(workloads::buildProgram(profile)),
          trace(trace::TraceGenerator(prog, profile.behaviourSeed)
                    .makeTrace(insts)),
          plan(prog, trace)
    {
    }
};

/** The >= 3 profiles the golden sweep covers: a synthetic default plus
 *  two paper benchmarks with distinct branch/memory mixes. */
const std::vector<Workload> &
workloads()
{
    static std::vector<Workload> all = [] {
        std::vector<Workload> w;
        w.emplace_back(workloads::defaultProfile("replay-golden"));
        w.emplace_back(workloads::specFor("445.gobmk").profile);
        w.emplace_back(workloads::specFor("454.calculix").profile);
        return w;
    }();
    return all;
}

layout::CodeLayout
codeFor(const Workload &w, u64 seed)
{
    layout::Linker linker;
    return linker.link(w.prog, layout::LayoutKey{seed, true, true});
}

void
expectSameResult(const RunResult &a, const RunResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.condBranches, b.condBranches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
    EXPECT_EQ(a.l1iMisses, b.l1iMisses) << what;
    EXPECT_EQ(a.l1dMisses, b.l1dMisses) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.l2InstMisses, b.l2InstMisses) << what;
    EXPECT_EQ(a.l2PrefMisses, b.l2PrefMisses) << what;
    EXPECT_EQ(a.l2DataMisses, b.l2DataMisses) << what;
    EXPECT_EQ(a.btbMisses, b.btbMisses) << what;
    EXPECT_EQ(a.rasMispredicts, b.rasMispredicts) << what;
}

/** The golden sweep: >= 3 profiles x 8 layout seeds x identity and
 *  randomized page maps, randomized heap throughout. Every RunResult
 *  field must match the reference model exactly. */
TEST(ReplayGolden, BitIdenticalToReferenceAcrossLayouts)
{
    auto cfg = MachineConfig::xeonE5440();
    for (size_t wi = 0; wi < workloads().size(); ++wi) {
        const Workload &w = workloads()[wi];
        for (u64 seed = 1; seed <= 8; ++seed) {
            auto code = codeFor(w, seed);
            layout::HeapKey hk;
            hk.seed = seed;
            hk.randomize = true;
            layout::HeapLayout heap(w.prog, hk);
            for (bool physical : {false, true}) {
                layout::PageMap pages =
                    physical ? layout::PageMap(seed * 31 + 7)
                             : layout::PageMap();
                std::string what = "workload " + std::to_string(wi) +
                                   " seed " + std::to_string(seed) +
                                   (physical ? " physical" : " identity");
                Machine machine(cfg);
                auto ref = machine.runReference(w.prog, w.trace, code,
                                                heap, pages);
                LayoutTables tables(w.plan, code, heap, pages,
                                    cfg.hierarchy.l1i.lineBytes);
                auto fast = machine.replay(w.plan, tables);
                expectSameResult(ref, fast, what);
            }
        }
    }
}

layout::HeapLayout
heapFor(const Workload &w, u64 seed)
{
    layout::HeapKey hk;
    hk.seed = seed;
    hk.randomize = true;
    return layout::HeapLayout(w.prog, hk);
}

/** The batched golden sweep: for every workload and page-map mode,
 *  measure 8 layouts as batches of K for K in {1, 2, 4, 8} and also
 *  K = 3 (whose final batch holds only 2 live lanes — the ragged
 *  case). Every lane's RunResult must equal the reference model's,
 *  field for field, regardless of how the lanes were grouped. */
TEST(ReplayBatched, BitIdenticalToReferencePerLane)
{
    auto cfg = MachineConfig::xeonE5440();
    constexpr u64 kSeeds = 8;
    for (size_t wi = 0; wi < workloads().size(); ++wi) {
        const Workload &w = workloads()[wi];
        for (bool physical : {false, true}) {
            std::vector<RunResult> ref(kSeeds);
            std::vector<LayoutTables> tables;
            tables.reserve(kSeeds);
            for (u64 seed = 1; seed <= kSeeds; ++seed) {
                auto code = codeFor(w, seed);
                auto heap = heapFor(w, seed);
                layout::PageMap pages =
                    physical ? layout::PageMap(seed * 31 + 7)
                             : layout::PageMap();
                Machine machine(cfg);
                ref[seed - 1] = machine.runReference(w.prog, w.trace,
                                                     code, heap, pages);
                tables.emplace_back(w.plan, code, heap, pages,
                                    cfg.hierarchy.l1i.lineBytes);
            }
            for (u32 k : {1u, 2u, 3u, 4u, 8u}) {
                Machine machine(cfg);
                for (u32 first = 0; first < kSeeds; first += k) {
                    u32 n = std::min<u32>(k, kSeeds - first);
                    std::vector<LayoutTables> lanes(
                        tables.begin() + first,
                        tables.begin() + first + n);
                    BatchedLayoutTables batched(w.plan,
                                                std::move(lanes));
                    auto out = machine.replayBatch(w.plan, batched);
                    ASSERT_EQ(out.size(), n);
                    for (u32 l = 0; l < n; ++l)
                        expectSameResult(
                            ref[first + l], out[l],
                            "workload " + std::to_string(wi) +
                                (physical ? " physical" : " identity") +
                                " K " + std::to_string(k) + " lane " +
                                std::to_string(first + l));
                }
            }
        }
    }
}

/** Lanes with different page-map modes in one batch fall back to the
 *  generic kernel and must still match per lane. */
TEST(ReplayBatched, MixedPageModesInOneBatch)
{
    auto cfg = MachineConfig::xeonE5440();
    const Workload &w = workloads()[0];
    std::vector<RunResult> ref;
    std::vector<LayoutTables> lanes;
    for (u64 seed = 1; seed <= 4; ++seed) {
        auto code = codeFor(w, seed);
        auto heap = heapFor(w, seed);
        // Alternate identity and randomized mappings lane by lane.
        layout::PageMap pages = seed % 2 ? layout::PageMap()
                                         : layout::PageMap(seed);
        Machine machine(cfg);
        ref.push_back(
            machine.runReference(w.prog, w.trace, code, heap, pages));
        lanes.emplace_back(w.plan, code, heap, pages,
                           cfg.hierarchy.l1i.lineBytes);
    }
    BatchedLayoutTables batched(w.plan, std::move(lanes));
    EXPECT_FALSE(batched.allIdentityPages());
    Machine machine(cfg);
    auto out = machine.replayBatch(w.plan, batched);
    ASSERT_EQ(out.size(), 4u);
    for (u32 l = 0; l < 4; ++l)
        expectSameResult(ref[l], out[l],
                         "mixed lane " + std::to_string(l));
}

/** Batching must hold for non-default geometry too (odd issue width =
 *  the kernel's divide path, as in the single-layout golden test). */
TEST(ReplayBatched, HoldsForOddMachineWidth)
{
    auto cfg = MachineConfig::xeonE5440();
    cfg.width = 3;
    const Workload &w = workloads()[0];
    std::vector<RunResult> ref;
    std::vector<LayoutTables> lanes;
    for (u64 seed = 4; seed <= 6; ++seed) {
        auto code = codeFor(w, seed);
        auto heap = heapFor(w, seed);
        Machine machine(cfg);
        ref.push_back(machine.runReference(w.prog, w.trace, code, heap,
                                           layout::PageMap()));
        lanes.emplace_back(w.plan, code, heap, layout::PageMap(),
                           cfg.hierarchy.l1i.lineBytes);
    }
    BatchedLayoutTables batched(w.plan, std::move(lanes));
    Machine machine(cfg);
    auto out = machine.replayBatch(w.plan, batched);
    ASSERT_EQ(out.size(), 3u);
    for (u32 l = 0; l < 3; ++l)
        expectSameResult(ref[l], out[l],
                         "width 3 lane " + std::to_string(l));
}

/** The batched tables gather lane-major rows from the per-lane
 *  tables: entry (i, lane) sits at [i * lanes + lane]. */
TEST(ReplayBatched, TablesAreLaneMajor)
{
    auto cfg = MachineConfig::xeonE5440();
    const Workload &w = workloads()[0];
    std::vector<LayoutTables> lanes;
    for (u64 seed = 1; seed <= 3; ++seed)
        lanes.emplace_back(w.plan, codeFor(w, seed), heapFor(w, seed),
                           layout::PageMap(seed),
                           cfg.hierarchy.l1i.lineBytes);
    BatchedLayoutTables batched(w.plan, lanes);
    ASSERT_EQ(batched.lanes(), 3u);
    ASSERT_EQ(batched.siteAddr.size(), w.plan.siteCount() * 3);
    ASSERT_EQ(batched.branchAddr.size(), w.plan.siteCount() * 3);
    ASSERT_EQ(batched.dataAddr.size(), w.plan.memCount() * 3);
    for (u32 l = 0; l < 3; ++l) {
        for (u32 s = 0; s < w.plan.siteCount(); s += 97) {
            EXPECT_EQ(batched.siteAddr[s * 3 + l],
                      lanes[l].siteAddr[s]);
            EXPECT_EQ(batched.branchAddr[s * 3 + l],
                      lanes[l].branchAddr[s]);
        }
        for (size_t m = 0; m < w.plan.memCount(); m += 997)
            EXPECT_EQ(batched.dataAddr[m * 3 + l],
                      lanes[l].dataAddr[m]);
    }
}

/** Machine::run is a thin adapter over replay(): identical results. */
TEST(ReplayGolden, RunAdapterMatchesReplay)
{
    auto cfg = MachineConfig::xeonE5440();
    const Workload &w = workloads()[0];
    for (u64 seed : {3u, 11u}) {
        auto code = codeFor(w, seed);
        layout::HeapKey hk;
        hk.seed = seed;
        hk.randomize = true;
        layout::HeapLayout heap(w.prog, hk);
        layout::PageMap pages(seed);
        Machine machine(cfg);
        auto via_run = machine.run(w.prog, w.trace, code, heap, pages);
        LayoutTables tables(w.plan, code, heap, pages,
                            cfg.hierarchy.l1i.lineBytes);
        auto via_replay = machine.replay(w.plan, tables);
        expectSameResult(via_run, via_replay,
                         "seed " + std::to_string(seed));
    }
}

/** The golden contract holds for non-default machine geometry too
 *  (non-power-of-two width exercises the kernel's slow divide path). */
TEST(ReplayGolden, HoldsForOddMachineWidth)
{
    auto cfg = MachineConfig::xeonE5440();
    cfg.width = 3;
    const Workload &w = workloads()[0];
    auto code = codeFor(w, 5);
    layout::HeapKey hk;
    hk.seed = 5;
    hk.randomize = true;
    layout::HeapLayout heap(w.prog, hk);
    Machine machine(cfg);
    auto ref = machine.runReference(w.prog, w.trace, code, heap,
                                    layout::PageMap());
    LayoutTables tables(w.plan, code, heap, layout::PageMap(),
                        cfg.hierarchy.l1i.lineBytes);
    expectSameResult(ref, machine.replay(w.plan, tables), "width 3");
}

/** A plan built twice from the same inputs is identical (the campaign
 *  store may assume plan construction is deterministic). */
TEST(ReplayPlanProperties, ConstructionIsDeterministic)
{
    const Workload &w = workloads()[0];
    ReplayPlan again(w.prog, w.trace);
    EXPECT_EQ(w.plan.site, again.site);
    EXPECT_EQ(w.plan.flags, again.flags);
    EXPECT_EQ(w.plan.memId, again.memId);
    EXPECT_EQ(w.plan.memRank, again.memRank);
    EXPECT_EQ(w.plan.memUniverse, again.memUniverse);
    EXPECT_EQ(w.plan.condSite, again.condSite);
}

TEST(ReplayPlanProperties, EventAndMemoryCountsMatchTrace)
{
    for (const Workload &w : workloads()) {
        EXPECT_EQ(w.plan.eventCount(), w.trace.events.size());
        EXPECT_EQ(w.plan.memCount(), w.trace.memIds.size());
        EXPECT_EQ(w.plan.instCount, w.trace.instCount);
        EXPECT_EQ(w.plan.bytes.size(), w.plan.eventCount());
        EXPECT_EQ(w.plan.nInsts.size(), w.plan.eventCount());
        EXPECT_EQ(w.plan.nMem.size(), w.plan.eventCount());
        EXPECT_EQ(w.plan.flags.size(), w.plan.eventCount());
        EXPECT_EQ(w.plan.memIsStore.size(), w.plan.memCount());
        EXPECT_EQ(w.plan.memRank.size(), w.plan.memCount());
    }
}

/** memRank/memUniverse must reconstruct the memId stream exactly, and
 *  the universe must list each distinct id once, in first-appearance
 *  order (the per-layout decode relies on both). */
TEST(ReplayPlanProperties, MemUniverseReconstructsStream)
{
    for (const Workload &w : workloads()) {
        const ReplayPlan &p = w.plan;
        std::set<u64> seen;
        size_t next_first = 0;
        for (size_t i = 0; i < p.memCount(); ++i) {
            ASSERT_LT(p.memRank[i], p.memUniverse.size());
            EXPECT_EQ(p.memUniverse[p.memRank[i]], p.memId[i]);
            if (seen.insert(p.memId[i]).second) {
                // First appearance: must claim the next universe slot.
                EXPECT_EQ(p.memRank[i], next_first);
                ++next_first;
            }
        }
        EXPECT_EQ(next_first, p.memUniverse.size());
        EXPECT_EQ(seen.size(), p.memUniverse.size());
    }
}

/** Site numbering is a proc-major bijection onto (proc, block). */
TEST(ReplayPlanProperties, SiteTableIsBijective)
{
    for (const Workload &w : workloads()) {
        const ReplayPlan &p = w.plan;
        for (u32 s = 0; s < p.siteCount(); ++s) {
            EXPECT_EQ(p.siteOf(p.siteProc[s], p.siteBlock[s]), s);
            const auto &block = w.prog.block(p.siteProc[s], p.siteBlock[s]);
            EXPECT_EQ(p.siteBytes[s], block.bytes);
        }
    }
}

/** The conditional substream matches the per-event kCond flags. */
TEST(ReplayPlanProperties, CondSubstreamMatchesFlags)
{
    for (const Workload &w : workloads()) {
        const ReplayPlan &p = w.plan;
        size_t cond = 0;
        for (size_t i = 0; i < p.eventCount(); ++i) {
            if (!(p.flags[i] & ReplayPlan::kCond))
                continue;
            ASSERT_LT(cond, p.condSite.size());
            EXPECT_EQ(p.condSite[cond], p.site[i]);
            EXPECT_EQ(p.condTaken[cond] != 0,
                      (p.flags[i] & ReplayPlan::kTaken) != 0);
            ++cond;
        }
        EXPECT_EQ(cond, p.condSite.size());
        EXPECT_EQ(p.condSite.size(), p.condTaken.size());
    }
}

/** LayoutTables must agree with the CodeLayout it was built from. */
TEST(ReplayPlanProperties, LayoutTablesMatchCodeLayout)
{
    const Workload &w = workloads()[1];
    auto code = codeFor(w, 17);
    LayoutTables tables(w.plan, code);
    ASSERT_EQ(tables.siteAddr.size(), w.plan.siteCount());
    ASSERT_EQ(tables.branchAddr.size(), w.plan.siteCount());
    EXPECT_FALSE(tables.hasData());
    for (u32 s = 0; s < w.plan.siteCount(); ++s) {
        EXPECT_EQ(tables.siteAddr[s],
                  code.blockAddr(w.plan.siteProc[s], w.plan.siteBlock[s]));
        EXPECT_EQ(tables.branchAddr[s],
                  code.branchAddr(w.plan.siteProc[s], w.plan.siteBlock[s]));
    }
}

/** PinSim's plan replay must match its Program-walking run() exactly,
 *  predictor by predictor. */
TEST(ReplayGolden, PinSimReplayMatchesRun)
{
    const std::vector<std::string> specs = {"bimodal:1024", "gshare:4096:10",
                                            "hybrid:2048:8:512:512"};
    const Workload &w = workloads()[0];
    for (u64 seed : {2u, 9u}) {
        auto code = codeFor(w, seed);
        pinsim::PinSim a(specs);
        auto slow = a.run(w.prog, w.trace, code);
        pinsim::PinSim b(specs);
        LayoutTables tables(w.plan, code);
        auto fast = b.replay(w.plan, tables);
        ASSERT_EQ(slow.size(), fast.size());
        for (size_t i = 0; i < slow.size(); ++i) {
            EXPECT_EQ(slow[i].name, fast[i].name);
            EXPECT_EQ(slow[i].branches, fast[i].branches);
            EXPECT_EQ(slow[i].mispredicts, fast[i].mispredicts);
            EXPECT_EQ(slow[i].instructions, fast[i].instructions);
        }
    }
}

} // anonymous namespace
