/** @file Tests for the t-test / F-test gates. */

#include <gtest/gtest.h>

#include "stats/descriptive.hh"
#include "stats/hypothesis.hh"
#include "util/random.hh"

namespace
{

using interf::Rng;
using namespace interf::stats;

TEST(CorrelationTTest, TextbookCriticalValue)
{
    // r = 0.632 with n = 10 gives t = 2.306 ~ exactly the 5% critical
    // value for 8 dof.
    auto res = correlationTTest(0.632, 10);
    EXPECT_NEAR(res.statistic, 2.306, 5e-3);
    EXPECT_NEAR(res.pValue, 0.05, 2e-3);
}

TEST(CorrelationTTest, StrongCorrelationSignificant)
{
    auto res = correlationTTest(0.8, 100);
    EXPECT_TRUE(res.significantAt(0.05));
    EXPECT_LT(res.pValue, 1e-10);
}

TEST(CorrelationTTest, WeakCorrelationNotSignificant)
{
    auto res = correlationTTest(0.1, 20);
    EXPECT_FALSE(res.significantAt(0.05));
}

TEST(CorrelationTTest, NegativeCorrelationSymmetric)
{
    auto pos = correlationTTest(0.5, 30);
    auto neg = correlationTTest(-0.5, 30);
    EXPECT_NEAR(pos.pValue, neg.pValue, 1e-12);
    EXPECT_NEAR(pos.statistic, -neg.statistic, 1e-12);
}

TEST(CorrelationTTest, PerfectCorrelationIsCertain)
{
    auto res = correlationTTest(1.0, 10);
    EXPECT_EQ(res.pValue, 0.0);
    EXPECT_TRUE(res.significantAt(0.0001));
}

TEST(CorrelationTTest, SampleOverloadMatchesScalar)
{
    std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<double> ys{1.2, 1.9, 3.4, 3.8, 5.1, 6.2, 6.8, 8.3};
    auto a = correlationTTest(xs, ys);
    auto b = correlationTTest(pearson(xs, ys), xs.size());
    EXPECT_NEAR(a.statistic, b.statistic, 1e-12);
}

TEST(CorrelationTTest, MoreSamplesMoreSignificant)
{
    auto small = correlationTTest(0.3, 20);
    auto large = correlationTTest(0.3, 200);
    EXPECT_GT(large.statistic, small.statistic);
    EXPECT_LT(large.pValue, small.pValue);
}

/** The paper's escalation logic: a borderline r that fails at 100
 *  samples can succeed at 300. */
TEST(CorrelationTTest, EscalationStory)
{
    double r = 0.13;
    EXPECT_FALSE(correlationTTest(r, 100).significantAt(0.05));
    EXPECT_TRUE(correlationTTest(r, 300).significantAt(0.05));
}

TEST(CorrelationTTest, FalsePositiveRateNearAlpha)
{
    // Under the null (independent data), about 5% of tests fire.
    Rng rng(77);
    int fired = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs, ys;
        for (int i = 0; i < 30; ++i) {
            xs.push_back(rng.gaussian());
            ys.push_back(rng.gaussian());
        }
        fired += correlationTTest(xs, ys).significantAt(0.05);
    }
    double rate = double(fired) / trials;
    EXPECT_GT(rate, 0.02);
    EXPECT_LT(rate, 0.09);
}

TEST(FTest, MatchesTTestForOnePredictor)
{
    // F(1, n-2) = t^2: identical p-values.
    double r = 0.45;
    size_t n = 50;
    auto t = correlationTTest(r, n);
    auto f = regressionFTest(r * r, n, 1);
    EXPECT_NEAR(f.pValue, t.pValue, 1e-9);
    EXPECT_NEAR(f.statistic, t.statistic * t.statistic, 1e-9);
}

TEST(FTest, SignificantCombinedModel)
{
    auto res = regressionFTest(0.5, 100, 3);
    EXPECT_TRUE(res.significantAt(0.05));
}

TEST(FTest, InsignificantSmallR2)
{
    auto res = regressionFTest(0.02, 50, 3);
    EXPECT_FALSE(res.significantAt(0.05));
}

/**
 * Section 6.4: a benchmark can pass the single-variable t-test yet fail
 * the combined-model F-test, because extra useless predictors dilute
 * the per-predictor explanatory power.
 */
TEST(FTest, CombinedModelCanLoseSignificance)
{
    double r = 0.284; // t-test p ~ 0.045 at n = 50
    size_t n = 50;
    EXPECT_TRUE(correlationTTest(r, n).significantAt(0.05));
    // Combined model: same explained variance spread over 3 predictors.
    EXPECT_FALSE(regressionFTest(r * r, n, 3).significantAt(0.05));
}

TEST(FTest, PerfectFitCertain)
{
    auto res = regressionFTest(1.0, 20, 3);
    EXPECT_EQ(res.pValue, 0.0);
}

TEST(FTest, NegativeR2Clamped)
{
    auto res = regressionFTest(-0.1, 20, 2);
    EXPECT_GE(res.statistic, 0.0);
    EXPECT_NEAR(res.pValue, 1.0, 1e-9);
}

} // anonymous namespace
