/** @file Tests for the text/CSV table writer. */

#include <sstream>

#include <gtest/gtest.h>

#include "util/table.hh"

namespace
{

using interf::Align;
using interf::TableWriter;

TableWriter
sampleTable()
{
    TableWriter tw;
    tw.addColumn("Benchmark", Align::Left);
    tw.addColumn("Slope");
    tw.beginRow();
    tw.cell(std::string("perlbench"));
    tw.cell(0.0281, "%.3f");
    tw.beginRow();
    tw.cell(std::string("mcf"));
    tw.cell(0.019, "%.3f");
    return tw;
}

TEST(Table, PrintAlignsColumns)
{
    auto tw = sampleTable();
    std::ostringstream os;
    tw.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Benchmark"), std::string::npos);
    EXPECT_NE(out.find("perlbench"), std::string::npos);
    EXPECT_NE(out.find("0.028"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowsCount)
{
    auto tw = sampleTable();
    EXPECT_EQ(tw.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    auto tw = sampleTable();
    std::ostringstream os;
    tw.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Benchmark,Slope"), std::string::npos);
    EXPECT_NE(out.find("perlbench,0.028"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    TableWriter tw;
    tw.addColumn("a");
    tw.addColumn("b");
    tw.beginRow();
    tw.cell(std::string("x,y"));
    tw.cell(std::string("he said \"hi\""));
    std::ostringstream os;
    tw.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, IntegerCells)
{
    TableWriter tw;
    tw.addColumn("n");
    tw.beginRow();
    tw.cell(static_cast<long long>(12345));
    std::ostringstream os;
    tw.print(os);
    EXPECT_NE(os.str().find("12345"), std::string::npos);
}

TEST(Table, LeftAlignPadsRight)
{
    TableWriter tw;
    tw.addColumn("name", Align::Left);
    tw.addColumn("v");
    tw.beginRow();
    tw.cell(std::string("ab"));
    tw.cell(static_cast<long long>(1));
    std::ostringstream os;
    tw.print(os);
    // "name" header is 4 wide; "ab" should be padded to 4 then 2 spaces.
    EXPECT_NE(os.str().find("ab    1"), std::string::npos);
}

TEST(TableDeathTest, TooManyCellsPanics)
{
    TableWriter tw;
    tw.addColumn("only");
    tw.beginRow();
    tw.cell(std::string("one"));
    EXPECT_DEATH(tw.cell(std::string("two")), "assertion");
}

TEST(TableDeathTest, ShortRowDetectedOnNextRow)
{
    TableWriter tw;
    tw.addColumn("a");
    tw.addColumn("b");
    tw.beginRow();
    tw.cell(std::string("only-one"));
    EXPECT_DEATH(tw.beginRow(), "cells");
}

} // anonymous namespace
