/** @file Tests for the predictor factory and the standard spec sets. */

#include <set>

#include <gtest/gtest.h>

#include "bpred/factory.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Factory, BuildsEveryKind)
{
    for (const char *spec :
         {"perfect", "ltage", "xeon", "bimodal:1024", "gas:2048:8",
          "gshare:4096:10", "hybrid:2048:8:512:512"}) {
        auto pred = makePredictor(spec);
        ASSERT_NE(pred, nullptr) << spec;
        // Must be usable immediately.
        pred->predictAndTrain(0x400000, true);
        EXPECT_FALSE(pred->name().empty());
    }
}

TEST(Factory, PerfectNeverWrong)
{
    auto pred = makePredictor("perfect");
    for (int i = 0; i < 100; ++i) {
        bool t = (i * 7 % 3) == 0;
        EXPECT_EQ(pred->predictAndTrain(0x400000 + i, t), t);
    }
    EXPECT_EQ(pred->sizeBits(), 0u);
}

TEST(Factory, SizesScaleWithSpec)
{
    auto small = makePredictor("gas:2048:8");
    auto large = makePredictor("gas:16384:8");
    EXPECT_EQ(large->sizeBits() - 8, (small->sizeBits() - 8) * 8);
}

TEST(Factory, BytesToEntriesConvention)
{
    // 2-bit counters: 1024 bytes = 4096 entries.
    auto pred = makePredictor("bimodal:1024");
    EXPECT_EQ(pred->name(), "bimodal-4096e");
}

TEST(FactoryDeathTest, MalformedSpecsAreFatal)
{
    EXPECT_EXIT((void)makePredictor("nope"),
                ::testing::ExitedWithCode(1), "unknown predictor");
    EXPECT_EXIT((void)makePredictor("bimodal"),
                ::testing::ExitedWithCode(1), "want bimodal");
    EXPECT_EXIT((void)makePredictor("bimodal:abc"),
                ::testing::ExitedWithCode(1), "bad number");
    EXPECT_EXIT((void)makePredictor("bimodal:1000"),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT((void)makePredictor("gas:1024:20"),
                ::testing::ExitedWithCode(1), "history");
    EXPECT_EXIT((void)makePredictor("perfect:1"),
                ::testing::ExitedWithCode(1), "no arguments");
}

TEST(Factory, FigureCandidatesMatchPaper)
{
    auto specs = figureCandidateSpecs();
    // GAs at 2, 4, 8, 16 KB plus L-TAGE (Figure 7).
    ASSERT_EQ(specs.size(), 5u);
    EXPECT_EQ(specs[0], "gas:2048:10");
    EXPECT_EQ(specs[3], "gas:16384:10");
    EXPECT_EQ(specs[4], "ltage");
    for (const auto &s : specs)
        (void)makePredictor(s);
}

TEST(Factory, SweepHasExactly145Configs)
{
    auto specs = sweepSpecs();
    EXPECT_EQ(specs.size(), 145u);
}

TEST(Factory, SweepConfigsAllBuildAndAreUnique)
{
    auto specs = sweepSpecs();
    std::set<std::string> unique(specs.begin(), specs.end());
    EXPECT_EQ(unique.size(), specs.size());
    for (const auto &s : specs)
        (void)makePredictor(s);
}

TEST(Factory, SweepSpansAccuracyRange)
{
    // The sweep must include small and large tables of several kinds.
    auto specs = sweepSpecs();
    int bimodal = 0, gas = 0, gshare = 0, hybrid = 0;
    for (const auto &s : specs) {
        bimodal += s.rfind("bimodal", 0) == 0;
        gas += s.rfind("gas", 0) == 0;
        gshare += s.rfind("gshare", 0) == 0;
        hybrid += s.rfind("hybrid", 0) == 0;
    }
    EXPECT_GT(bimodal, 3);
    EXPECT_GT(gas, 20);
    EXPECT_GT(gshare, 20);
    EXPECT_GT(hybrid, 3);
}

TEST(Factory, XeonIsAHybrid)
{
    auto pred = makePredictor("xeon");
    EXPECT_NE(pred->name().find("hybrid"), std::string::npos);
    EXPECT_GT(pred->sizeBits(), 0u);
}

} // anonymous namespace
