/** @file Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace
{

using namespace interf;
using namespace interf::cache;

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 1024; // 16 lines
    cfg.assoc = 2;        // 8 sets
    cfg.lineBytes = 64;
    return cfg;
}

TEST(CacheConfig, GeometryDerivation)
{
    auto cfg = smallConfig();
    EXPECT_EQ(cfg.numSets(), 8u);
    cfg.validate();
    CacheConfig l1{"L1", 32 << 10, 8, 64};
    EXPECT_EQ(l1.numSets(), 64u);
}

TEST(CacheConfigDeathTest, BadGeometryIsFatal)
{
    CacheConfig bad{"bad", 1000, 2, 64};
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1), "");
    CacheConfig bad2{"bad2", 1024, 2, 60};
    EXPECT_EXIT(bad2.validate(), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1030)); // same 64B line
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SetIndexUsesLineBits)
{
    Cache cache(smallConfig());
    EXPECT_EQ(cache.setIndex(0x0), 0u);
    EXPECT_EQ(cache.setIndex(0x40), 1u);
    EXPECT_EQ(cache.setIndex(0x40 * 8), 0u); // wraps at 8 sets
}

TEST(Cache, ConflictMissesBeyondAssociativity)
{
    // 3 lines in a 2-way set: cycling them LRU-misses every time.
    Cache cache(smallConfig());
    Addr stride = 64 * 8; // same set
    for (int round = 0; round < 5; ++round)
        for (int i = 0; i < 3; ++i)
            cache.access(0x10000 + i * stride);
    EXPECT_EQ(cache.stats().misses, 15u); // every access misses
}

TEST(Cache, TwoLinesInTwoWaySetCoexist)
{
    Cache cache(smallConfig());
    Addr stride = 64 * 8;
    cache.access(0x10000);
    cache.access(0x10000 + stride);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(cache.access(0x10000));
        EXPECT_TRUE(cache.access(0x10000 + stride));
    }
}

TEST(Cache, LruReplacement)
{
    Cache cache(smallConfig());
    Addr stride = 64 * 8;
    Addr a = 0x10000, b = a + stride, c = b + stride;
    cache.access(a);
    cache.access(b);
    cache.access(a); // refresh a
    cache.access(c); // evicts b
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, ContainsDoesNotTouchStateOrStats)
{
    Cache cache(smallConfig());
    cache.access(0x2000);
    auto before = cache.stats().accesses;
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_FALSE(cache.contains(0x9999000));
    EXPECT_EQ(cache.stats().accesses, before);
}

TEST(Cache, InstallSkipsStats)
{
    Cache cache(smallConfig());
    cache.install(0x3000);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_TRUE(cache.contains(0x3000));
    EXPECT_TRUE(cache.access(0x3000)); // prefetched line hits
}

TEST(Cache, CapacityMissesOnBigWorkingSet)
{
    Cache cache(smallConfig()); // 1 KB
    // Walk 4 KB repeatedly: everything misses after the first lap too.
    for (int lap = 0; lap < 3; ++lap)
        for (Addr a = 0; a < 4096; a += 64)
            cache.access(0x40000 + a);
    EXPECT_GT(cache.stats().missRate(), 0.9);
}

TEST(Cache, WorkingSetWithinCapacityHitsAfterWarmup)
{
    Cache cache(smallConfig());
    for (int lap = 0; lap < 4; ++lap)
        for (Addr a = 0; a < 1024; a += 64)
            cache.access(0x50000 + a);
    // 16 cold misses, everything else hits.
    EXPECT_EQ(cache.stats().misses, 16u);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache cache(smallConfig());
    cache.access(0x1000);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(Cache, ClearStatsKeepsContents)
{
    Cache cache(smallConfig());
    cache.access(0x1000);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_TRUE(cache.access(0x1000)); // still warm
}

TEST(Cache, StatsHelpers)
{
    CacheStats s;
    s.accesses = 10;
    s.misses = 3;
    EXPECT_EQ(s.hits(), 7u);
    EXPECT_DOUBLE_EQ(s.missRate(), 0.3);
    CacheStats zero;
    EXPECT_DOUBLE_EQ(zero.missRate(), 0.0);
}

} // anonymous namespace
