/** @file Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace
{

using namespace interf;
using namespace interf::cache;

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 1024; // 16 lines
    cfg.assoc = 2;        // 8 sets
    cfg.lineBytes = 64;
    return cfg;
}

TEST(CacheConfig, GeometryDerivation)
{
    auto cfg = smallConfig();
    EXPECT_EQ(cfg.numSets(), 8u);
    cfg.validate();
    CacheConfig l1{"L1", 32 << 10, 8, 64};
    EXPECT_EQ(l1.numSets(), 64u);
}

TEST(CacheConfigDeathTest, BadGeometryIsFatal)
{
    CacheConfig bad{"bad", 1000, 2, 64};
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1), "");
    CacheConfig bad2{"bad2", 1024, 2, 60};
    EXPECT_EXIT(bad2.validate(), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(CacheConfigDeathTest, NonPowerOfTwoSetsNamesTheAliasing)
{
    // The typed diagnostic must say *why* the geometry is rejected:
    // set indexing masks low bits, so a non-power-of-two set count
    // would silently alias sets.
    CacheConfig bad{"odd-sets", 3 * 64 * 2, 2, 64}; // 3 sets
    EXPECT_EQ(bad.numSets(), 3u);
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "silently alias sets");
}

TEST(CacheConfigDeathTest, LruWiderThan32WaysIsFatal)
{
    // u8 per-set ages cap LRU associativity at 32.
    CacheConfig bad{"wide-lru", 64 * 64, 64, 64};
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "exceeds 32");
    CacheConfig ok{"wide-rnd", 64 * 64, 64, 64, Replacement::Random};
    ok.validate(); // Random replacement never reads ages
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1030)); // same 64B line
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SetIndexUsesLineBits)
{
    Cache cache(smallConfig());
    EXPECT_EQ(cache.setIndex(0x0), 0u);
    EXPECT_EQ(cache.setIndex(0x40), 1u);
    EXPECT_EQ(cache.setIndex(0x40 * 8), 0u); // wraps at 8 sets
}

TEST(Cache, ConflictMissesBeyondAssociativity)
{
    // 3 lines in a 2-way set: cycling them LRU-misses every time.
    Cache cache(smallConfig());
    Addr stride = 64 * 8; // same set
    for (int round = 0; round < 5; ++round)
        for (int i = 0; i < 3; ++i)
            cache.access(0x10000 + i * stride);
    EXPECT_EQ(cache.stats().misses, 15u); // every access misses
}

TEST(Cache, TwoLinesInTwoWaySetCoexist)
{
    Cache cache(smallConfig());
    Addr stride = 64 * 8;
    cache.access(0x10000);
    cache.access(0x10000 + stride);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(cache.access(0x10000));
        EXPECT_TRUE(cache.access(0x10000 + stride));
    }
}

TEST(Cache, LruReplacement)
{
    Cache cache(smallConfig());
    Addr stride = 64 * 8;
    Addr a = 0x10000, b = a + stride, c = b + stride;
    cache.access(a);
    cache.access(b);
    cache.access(a); // refresh a
    cache.access(c); // evicts b
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, ContainsDoesNotTouchStateOrStats)
{
    Cache cache(smallConfig());
    cache.access(0x2000);
    auto before = cache.stats().accesses;
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_FALSE(cache.contains(0x9999000));
    EXPECT_EQ(cache.stats().accesses, before);
}

TEST(Cache, InstallSkipsStats)
{
    Cache cache(smallConfig());
    cache.install(0x3000);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_TRUE(cache.contains(0x3000));
    EXPECT_TRUE(cache.access(0x3000)); // prefetched line hits
}

TEST(Cache, CapacityMissesOnBigWorkingSet)
{
    Cache cache(smallConfig()); // 1 KB
    // Walk 4 KB repeatedly: everything misses after the first lap too.
    for (int lap = 0; lap < 3; ++lap)
        for (Addr a = 0; a < 4096; a += 64)
            cache.access(0x40000 + a);
    EXPECT_GT(cache.stats().missRate(), 0.9);
}

TEST(Cache, WorkingSetWithinCapacityHitsAfterWarmup)
{
    Cache cache(smallConfig());
    for (int lap = 0; lap < 4; ++lap)
        for (Addr a = 0; a < 1024; a += 64)
            cache.access(0x50000 + a);
    // 16 cold misses, everything else hits.
    EXPECT_EQ(cache.stats().misses, 16u);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache cache(smallConfig());
    cache.access(0x1000);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(Cache, ClearStatsKeepsContents)
{
    Cache cache(smallConfig());
    cache.access(0x1000);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_TRUE(cache.access(0x1000)); // still warm
}

TEST(Cache, StatsHelpers)
{
    CacheStats s;
    s.accesses = 10;
    s.misses = 3;
    EXPECT_EQ(s.hits(), 7u);
    EXPECT_DOUBLE_EQ(s.missRate(), 0.3);
    CacheStats zero;
    EXPECT_DOUBLE_EQ(zero.missRate(), 0.0);
}

/** 8-set geometry at the given associativity: 2 and 4 ways exercise
 *  the scalar tag-scan fallback (the packed scan needs assoc % 8 ==
 *  0), 8/16/32 the SSE2 path. */
CacheConfig
assocConfig(u32 assoc)
{
    return CacheConfig{"assoc", static_cast<u64>(64) * assoc * 8, assoc,
                       64};
}

TEST(Cache, HintedProbeMatchesUnhintedAcrossAssociativities)
{
    for (u32 assoc : {2u, 3u, 4u, 6u, 8u, 16u, 32u}) {
        Cache cache(assocConfig(assoc));
        const Addr stride = 64 * 8;
        // Overfill one set so probes see present lines, evicted
        // (stale-hint) lines, and never-seen lines.
        for (u32 i = 0; i < assoc + 3; ++i)
            cache.access(0x40000 + i * stride);
        for (u32 i = 0; i < assoc + 5; ++i) {
            const Addr a = 0x40000 + i * stride;
            const u32 expect = cache.probeWay(a);
            // A hint may only ever change the probe's cost, never its
            // result: every in-range hint (right, wrong-way stale, or
            // pointing at an invalid way), the way memo's 0xff
            // never-seen sentinel, and wildly out-of-range values all
            // agree with the unhinted scan.
            for (u32 hint = 0; hint <= assoc; ++hint)
                EXPECT_EQ(cache.probeWayHinted(a, hint), expect)
                    << "assoc " << assoc << " hint " << hint;
            EXPECT_EQ(cache.probeWayHinted(a, 0xffu), expect);
            EXPECT_EQ(cache.probeWayHinted(a, ~0u), expect);
        }
    }
}

TEST(Cache, ProbeCommitSplitMatchesAccessAcrossAssociativities)
{
    // The batched kernel's probeWay + accessFoundWay split must be
    // observationally identical to access(): same hit/miss sequence,
    // same stats, and the reported way is where the line now lives.
    for (u32 assoc : {2u, 3u, 4u, 6u, 8u, 16u, 32u}) {
        Cache direct(assocConfig(assoc));
        Cache split(assocConfig(assoc));
        const Addr stride = 64 * 8;
        u64 x = 0x9e3779b97f4a7c15ull;
        for (int i = 0; i < 500; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            // assoc + 2 distinct lines cycling through 2 sets.
            const u64 slot = (x >> 33) % (assoc + 2);
            const Addr a = 0x40000 + slot * stride + ((x >> 20) & 1) * 64;
            const bool hit_direct = direct.access(a);
            const u32 w = split.probeWay(a);
            const u32 now = split.accessFoundWay(a, w);
            EXPECT_EQ(hit_direct, w != assoc);
            EXPECT_EQ(split.probeWay(a), now);
        }
        EXPECT_EQ(direct.stats().accesses, split.stats().accesses);
        EXPECT_EQ(direct.stats().misses, split.stats().misses);
    }
}

TEST(Cache, HintCountingIsOptIn)
{
    // The probe/verify counters are diagnostics sampled by the bench
    // in an untimed pass; the timed path must not pay for them.
    Cache cache(smallConfig());
    cache.access(0x1000);
    const u32 w = cache.probeWay(0x1000);
    EXPECT_EQ(cache.probeWayHinted(0x1000, w), w);
    EXPECT_EQ(cache.hintStats().probes, 0u);
    cache.setHintCounting(true);
    EXPECT_EQ(cache.probeWayHinted(0x1000, w), w);
    EXPECT_EQ(cache.probeWayHinted(0x1000, 0xffu), w); // fallback scan
    EXPECT_EQ(cache.hintStats().probes, 2u);
    EXPECT_EQ(cache.hintStats().verified, 1u);
}

TEST(Cache, RepeatedResetNeverResurrectsLines)
{
    // Property any lazy reset scheme must keep, driven through three
    // full 63-reset epoch cycles: a line installed before a reset
    // never reads as present after it. The dangerous instant is the
    // wrap — a set untouched for exactly kEpochPeriod resets would
    // alias the recycled epoch salt and resurrect its tags, which the
    // wrap's full clear prevents.
    Cache cache(smallConfig());
    for (int r = 0; r < 200; ++r) {
        const Addr a = 0x10000 + static_cast<Addr>(r) * 64;
        EXPECT_FALSE(cache.contains(a));
        cache.access(a);
        EXPECT_TRUE(cache.contains(a));
        cache.reset();
        for (int p = 0; p <= r; ++p)
            EXPECT_FALSE(cache.contains(0x10000 +
                                        static_cast<Addr>(p) * 64))
                << "line from reset " << p << " resurfaced at reset "
                << r;
    }
}

TEST(Cache, ResetRestartsStampClock)
{
    // The u32 stamp clock has no wrap handling — touchLru stores
    // ++lruClock_ raw — so its wrap bound must be per replay, not per
    // pooled-lane lifetime: reset() restarts it at 0 exactly as the
    // pre-epoch eager clear did. Without the restart, ~2^32 cumulative
    // L1 touches (reachable across a long optimizer sweep's thousands
    // of replays on one pooled lane) wrap stamps to small values and
    // silently invert LRU victim choice against the fresh-per-run
    // reference model. Restarting is safe under the lazy reset: stale
    // sets can't hit (epoch-salted tags), and every LRU read or write
    // happens only after materializeSet() re-zeroes the set's stamps.
    Cache cache(smallConfig());
    for (Addr a = 0; a < 1024; a += 64)
        cache.access(0x60000 + a);
    EXPECT_GT(cache.lruClockForTest(), 0u);
    cache.reset();
    EXPECT_EQ(cache.lruClockForTest(), 0u);
    // Same invariant across the epoch wrap's eager-clear path.
    for (int r = 0; r < 100; ++r) {
        cache.access(0x60000);
        cache.reset();
        EXPECT_EQ(cache.lruClockForTest(), 0u) << "reset " << r;
    }
}

/** Smallest geometry that takes the narrow (u8 per-set age) LRU
 *  representation: kNarrowLruLines lines, 4-way. */
CacheConfig
narrowConfig()
{
    return CacheConfig{"narrow",
                       static_cast<u64>(64) * Cache::kNarrowLruLines, 4,
                       64};
}

TEST(Cache, NarrowLruMatchesStampLruAcrossRenormalization)
{
    // The u8 per-set age scheme must be replacement-identical to the
    // u32 stamp scheme: drive one set of a narrow cache and one set
    // of a stamp cache with the same 6-line reference string, long
    // enough to cross the 255-touch renormalization many times, and
    // expect the exact same hit/miss sequence (LRU depends only on
    // recency order, which renormalization preserves).
    Cache narrow(narrowConfig());
    Cache stamp(CacheConfig{"stamp", 64 * 4 * 8, 4, 64});
    const Addr nstride =
        static_cast<Addr>(narrowConfig().numSets()) * 64;
    const Addr sstride = 8 * 64;
    u64 x = 0x123456789abcdefull;
    for (int i = 0; i < 4000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const u64 slot = (x >> 40) % 6;
        EXPECT_EQ(narrow.access(slot * nstride),
                  stamp.access(slot * sstride))
            << "diverged at access " << i;
    }
    EXPECT_EQ(narrow.stats().misses, stamp.stats().misses);
}

TEST(Cache, NarrowLruRenormalizationPreservesEvictionOrder)
{
    Cache cache(narrowConfig());
    const Addr stride = static_cast<Addr>(narrowConfig().numSets()) * 64;
    const Addr a = 0, b = stride, c = 2 * stride, d = 3 * stride;
    cache.access(a);
    cache.access(b);
    cache.access(c);
    cache.access(d);
    // Touch everything but `a` far past the u8 clock's 255 limit; the
    // renormalizations in between must keep `a` the eviction victim.
    for (int i = 0; i < 300; ++i) {
        EXPECT_TRUE(cache.access(b));
        EXPECT_TRUE(cache.access(c));
        EXPECT_TRUE(cache.access(d));
    }
    cache.access(4 * stride); // evicts the least-recent way
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
    EXPECT_TRUE(cache.contains(d));
}

TEST(Cache, NarrowLruQuartersAgeStorage)
{
    // 6 tag bytes + 1 age byte per line, 1 clock + 1 generation byte
    // per set — the accounting the footprint claims rest on.
    Cache narrow(narrowConfig());
    const u64 lines = Cache::kNarrowLruLines;
    const u64 sets = lines / 4;
    EXPECT_EQ(narrow.hotStateBytes(), lines * 7 + sets * 2);
}

} // anonymous namespace
