/** @file Tests for the DieHard-style randomized heap layout. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "layout/heap.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace
{

using namespace interf;
using namespace interf::layout;
using namespace interf::trace;

Program
mixedProgram()
{
    Program prog;
    for (int i = 0; i < 6; ++i)
        prog.addRegion(RegionKind::Heap, 4096 + 1024 * i);
    prog.addRegion(RegionKind::Global, 8192);
    prog.addRegion(RegionKind::Stack, 16384);
    return prog;
}

TEST(Heap, DeterministicForSameKey)
{
    auto prog = mixedProgram();
    HeapKey key;
    key.seed = 42;
    HeapLayout a(prog, key), b(prog, key);
    for (u32 r = 0; r < prog.regions().size(); ++r)
        EXPECT_EQ(a.regionBase(r), b.regionBase(r));
}

TEST(Heap, DifferentSeedsMoveHeapRegions)
{
    auto prog = mixedProgram();
    HeapKey k1, k2;
    k1.seed = 1;
    k2.seed = 2;
    HeapLayout a(prog, k1), b(prog, k2);
    int moved = 0;
    for (const auto &region : prog.regions())
        if (region.kind == RegionKind::Heap)
            moved += a.regionBase(region.id) != b.regionBase(region.id);
    EXPECT_GT(moved, 2);
}

TEST(Heap, GlobalsAndStackNeverMove)
{
    auto prog = mixedProgram();
    HeapKey k1, k2;
    k1.seed = 1;
    k2.seed = 999;
    HeapLayout a(prog, k1), b(prog, k2);
    for (const auto &region : prog.regions()) {
        if (region.kind == RegionKind::Heap)
            continue;
        EXPECT_EQ(a.regionBase(region.id), b.regionBase(region.id))
            << "non-heap region " << region.id << " moved";
    }
}

TEST(Heap, DeterministicModePacksInOrder)
{
    auto prog = mixedProgram();
    HeapLayout layout(prog, HeapKey::deterministic());
    Addr prev_end = 0;
    for (const auto &region : prog.regions()) {
        if (region.kind != RegionKind::Heap)
            continue;
        Addr base = layout.regionBase(region.id);
        EXPECT_GE(base, prev_end);
        prev_end = base + region.size;
    }
}

TEST(Heap, RegionsNeverOverlap)
{
    auto prog = mixedProgram();
    for (u64 seed : {1ull, 7ull, 42ull}) {
        HeapKey key;
        key.seed = seed;
        HeapLayout layout(prog, key);
        std::vector<std::pair<Addr, Addr>> spans;
        for (const auto &region : prog.regions())
            spans.push_back({layout.regionBase(region.id),
                             layout.regionBase(region.id) + region.size});
        std::sort(spans.begin(), spans.end());
        for (size_t i = 1; i < spans.size(); ++i)
            EXPECT_LE(spans[i - 1].second, spans[i].first)
                << "overlap at seed " << seed;
    }
}

TEST(Heap, SizeClassSegregation)
{
    // Objects of very different sizes must land in different arenas.
    Program prog;
    u32 small1 = prog.addRegion(RegionKind::Heap, 4096);
    u32 small2 = prog.addRegion(RegionKind::Heap, 4000);
    u32 big = prog.addRegion(RegionKind::Heap, 1 << 20);
    HeapKey key;
    key.seed = 5;
    HeapLayout layout(prog, key);
    // All placements are line-aligned; same-class objects sit in the
    // same (small) arena while the big object's arena lies beyond it.
    EXPECT_EQ(layout.regionBase(small1) % 64, 0u);
    EXPECT_EQ(layout.regionBase(small2) % 64, 0u);
    EXPECT_EQ(layout.regionBase(big) % 64, 0u);
    Addr small_hi = std::max(layout.regionBase(small1),
                             layout.regionBase(small2));
    EXPECT_GT(layout.regionBase(big), small_hi);
}

TEST(Heap, DataAddrTranslatesOffsets)
{
    auto prog = mixedProgram();
    HeapKey key;
    key.seed = 3;
    HeapLayout layout(prog, key);
    u64 id = makeDataId(2, 128);
    EXPECT_EQ(layout.dataAddr(id), layout.regionBase(2) + 128);
}

TEST(Heap, RandomizedSpreadsPlacements)
{
    // DieHard effect: across many seeds a given object takes many
    // distinct addresses.
    auto prog = mixedProgram();
    std::set<Addr> bases;
    for (u64 seed = 0; seed < 32; ++seed) {
        HeapKey key;
        key.seed = seed;
        bases.insert(HeapLayout(prog, key).regionBase(0));
    }
    EXPECT_GT(bases.size(), 8u);
}

TEST(Heap, ExpansionFactorGrowsArena)
{
    auto prog = mixedProgram();
    HeapKey tight;
    tight.seed = 1;
    tight.expansionFactor = 1;
    HeapKey loose;
    loose.seed = 1;
    loose.expansionFactor = 8;
    EXPECT_GT(HeapLayout(prog, loose).heapSpan(),
              HeapLayout(prog, tight).heapSpan());
}

TEST(Heap, WorksWithSuiteBenchmark)
{
    auto prog = workloads::buildProgram(
        workloads::defaultProfile("heaptest"));
    HeapKey key;
    key.seed = 11;
    HeapLayout layout(prog, key);
    for (const auto &region : prog.regions())
        EXPECT_GT(layout.regionBase(region.id), 0u);
}

TEST(Heap, NoHeapRegionsIsFine)
{
    Program prog;
    prog.addRegion(RegionKind::Global, 4096);
    HeapKey key;
    key.seed = 1;
    HeapLayout layout(prog, key);
    EXPECT_EQ(layout.heapSpan(), 0u);
    EXPECT_GT(layout.regionBase(0), 0u);
}

} // anonymous namespace
