/** @file Tests for the bimodal predictor and 2-bit counter helpers. */

#include <gtest/gtest.h>

#include "bpred/bimodal.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Counter2, SaturatesBothEnds)
{
    u8 c = 3;
    c = counter2::update(c, true);
    EXPECT_EQ(c, 3);
    c = 0;
    c = counter2::update(c, false);
    EXPECT_EQ(c, 0);
}

TEST(Counter2, HysteresisNeedsTwoFlips)
{
    u8 c = 3; // strongly taken
    c = counter2::update(c, false);
    EXPECT_TRUE(counter2::predict(c)); // still predicts taken
    c = counter2::update(c, false);
    EXPECT_FALSE(counter2::predict(c));
}

TEST(Bimodal, LearnsAlwaysTakenBranch)
{
    BimodalPredictor pred(1024);
    Addr pc = 0x400123;
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += pred.predictAndTrain(pc, true) != true;
    EXPECT_LE(wrong, 1); // init weakly-taken: at most warmup error
}

TEST(Bimodal, LearnsAlwaysNotTaken)
{
    BimodalPredictor pred(1024);
    Addr pc = 0x400321;
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += pred.predictAndTrain(pc, false) != false;
    EXPECT_LE(wrong, 2);
}

TEST(Bimodal, LoopExitMispredictedOncePerIteration)
{
    BimodalPredictor pred(1024);
    Addr pc = 0x400500;
    // Warm up.
    for (int i = 0; i < 16; ++i)
        pred.predictAndTrain(pc, true);
    int wrong = 0;
    // 10 loops of period 8: 7 taken + 1 not-taken.
    for (int loop = 0; loop < 10; ++loop) {
        for (int it = 0; it < 7; ++it)
            wrong += pred.predictAndTrain(pc, true) != true;
        wrong += pred.predictAndTrain(pc, false) != false;
    }
    // Bimodal misses each exit exactly once (hysteresis protects the
    // body).
    EXPECT_EQ(wrong, 10);
}

TEST(Bimodal, CannotLearnAlternating)
{
    BimodalPredictor pred(1024);
    Addr pc = 0x400700;
    int wrong = 0;
    for (int i = 0; i < 200; ++i)
        wrong += pred.predictAndTrain(pc, i % 2 == 0) != (i % 2 == 0);
    EXPECT_GT(wrong, 80); // ~50% or worse
}

TEST(Bimodal, AliasingInterferes)
{
    // Two branches mapping to the same entry with opposite behaviour
    // destroy each other; with a large table they do not collide.
    BimodalPredictor small(2);
    Addr a = 0x1000, b = 0x3000; // identical index in a 2-entry table
    int wrong_small = 0;
    for (int i = 0; i < 200; ++i) {
        wrong_small += small.predictAndTrain(a, true) != true;
        wrong_small += small.predictAndTrain(b, false) != false;
    }
    BimodalPredictor big(1u << 16);
    int wrong_big = 0;
    for (int i = 0; i < 200; ++i) {
        wrong_big += big.predictAndTrain(a, true) != true;
        wrong_big += big.predictAndTrain(b, false) != false;
    }
    EXPECT_GT(wrong_small, wrong_big + 50);
}

TEST(Bimodal, IndexWithinTable)
{
    BimodalPredictor pred(256);
    for (Addr pc = 0x400000; pc < 0x400400; pc += 7)
        EXPECT_LT(pred.indexFor(pc), 256u);
}

TEST(Bimodal, ResetRestoresColdBehaviour)
{
    BimodalPredictor pred(128);
    Addr pc = 0x400100;
    for (int i = 0; i < 50; ++i)
        pred.predictAndTrain(pc, false);
    EXPECT_FALSE(pred.predictAndTrain(pc, false));
    pred.reset();
    // Power-on state is weakly taken.
    EXPECT_TRUE(pred.predictAndTrain(pc, true));
}

TEST(Bimodal, SizeBitsAndName)
{
    BimodalPredictor pred(4096);
    EXPECT_EQ(pred.sizeBits(), 8192u);
    EXPECT_EQ(pred.name(), "bimodal-4096e");
}

TEST(BimodalDeathTest, NonPowerOfTwoPanics)
{
    EXPECT_DEATH(BimodalPredictor(100), "assertion");
}

} // anonymous namespace
