/** @file Tests for the crash-safe flight recorder: framing round-trip
 *  through the binary segment format, torn-tail tolerance, segment
 *  rotation bounds, sequence resume, and the death-path guarantee that
 *  a panicking process flushes its last words without corrupting the
 *  segments already committed. */

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/progress.hh"
#include "telemetry/recorder.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace
{

using namespace interf;
using namespace interf::telemetry;

/** RAII: telemetry enabled for one test, state cleared around it.
 *  resetForTest() also stops + seals any recorder the test started. */
struct TelemetryOn
{
    TelemetryOn()
    {
        telemetry::resetForTest();
        telemetry::enable();
    }
    ~TelemetryOn()
    {
        telemetry::disable();
        telemetry::resetForTest();
    }
};

std::string
tempDir(const char *tag)
{
    auto dir = std::filesystem::temp_directory_path() /
               (std::string("interf-flight-") + tag + "-" +
                std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

std::string
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

std::vector<std::string>
segmentFiles(const std::string &dir)
{
    std::vector<std::string> out;
    for (const auto &f : std::filesystem::directory_iterator(dir))
        out.push_back(f.path().filename().string());
    std::sort(out.begin(), out.end());
    return out;
}

TEST(FlightRecorder, RoundTripsAllEventTypes)
{
    TelemetryOn on;
    const std::string dir = tempDir("roundtrip");
    recorder::start(dir);
    ASSERT_TRUE(recorder::active());

    SpanRecord span;
    span.name = "test.flight_span";
    span.tid = 3;
    span.startNs = 1000;
    span.wallNs = 250;
    span.threadNs = 200;
    span.spanId = 42;
    span.parentSpanId = 7;
    span.ctx.campaignId = 0xabcdefULL;
    span.ctx.batchIndex = 5;
    span.ctx.candidateDigest = 0x123456ULL;
    recorder::recordSpan(span);
    recorder::recordLog(static_cast<u8>(LogLevel::Warn), "warn words");
    ProgressEvent pe;
    pe.task = "test.progress";
    pe.tsNs = 2000;
    pe.done = 3;
    pe.total = 10;
    pe.cached = 1;
    pe.fresh = 2;
    pe.ratePerSec = 123.5;
    pe.etaSec = 0.25;
    recorder::recordProgress(pe);
    recorder::stop();
    EXPECT_FALSE(recorder::active());

    flight::ReadResult rr;
    ASSERT_TRUE(flight::readDir(dir, rr));
    EXPECT_EQ(rr.segments, 1u);
    EXPECT_FALSE(rr.tornTail);
    EXPECT_TRUE(rr.errors.empty());
    ASSERT_EQ(rr.events.size(), 3u);

    const flight::Event &s = rr.events[0];
    EXPECT_EQ(s.type, flight::EventType::Span);
    EXPECT_EQ(s.name, "test.flight_span");
    EXPECT_EQ(s.tid, 3u);
    EXPECT_EQ(s.tsNs, 1000u);
    EXPECT_EQ(s.wallNs, 250u);
    EXPECT_EQ(s.threadNs, 200u);
    EXPECT_EQ(s.spanId, 42u);
    EXPECT_EQ(s.parentSpanId, 7u);
    EXPECT_EQ(s.campaignId, 0xabcdefULL);
    EXPECT_EQ(s.batchIndex, 5u);
    EXPECT_EQ(s.candidateDigest, 0x123456ULL);

    const flight::Event &l = rr.events[1];
    EXPECT_EQ(l.type, flight::EventType::Log);
    EXPECT_EQ(l.logLevel, static_cast<u8>(LogLevel::Warn));
    EXPECT_EQ(l.name, "warn words");

    const flight::Event &p = rr.events[2];
    EXPECT_EQ(p.type, flight::EventType::Progress);
    EXPECT_EQ(p.name, "test.progress");
    EXPECT_EQ(p.done, 3u);
    EXPECT_EQ(p.total, 10u);
    EXPECT_EQ(p.cached, 1u);
    EXPECT_EQ(p.fresh, 2u);
    EXPECT_DOUBLE_EQ(p.ratePerSec, 123.5);
    EXPECT_DOUBLE_EQ(p.etaSec, 0.25);
    std::filesystem::remove_all(dir);
}

/** Finished spans reach the log only at close, so a phase span that
 *  outlives a SIGKILL must have announced its open — otherwise its
 *  recorded children would point at an id absent from the log. Read
 *  the log back while the phase span is still open and resolve the
 *  child's parent against the open marker. */
TEST(FlightRecorder, OpenMarkerResolvesParentOfKilledPhase)
{
    TelemetryOn on;
    const std::string dir = tempDir("openmarker");
    recorder::start(dir);
    {
        INTERF_SPAN_PHASE("test.phase");
        {
            INTERF_SPAN("test.child");
        }
        recorder::flushNow();

        // The "post-mortem": the phase span has not closed, exactly as
        // if the process had been killed here.
        flight::ReadResult rr;
        ASSERT_TRUE(flight::readDir(dir, rr));
        EXPECT_TRUE(rr.errors.empty());
        ASSERT_EQ(rr.events.size(), 2u);
        const flight::Event &open = rr.events[0];
        EXPECT_EQ(open.type, flight::EventType::SpanOpen);
        EXPECT_EQ(open.name, "test.phase");
        ASSERT_NE(open.spanId, 0u);
        const flight::Event &child = rr.events[1];
        EXPECT_EQ(child.type, flight::EventType::Span);
        EXPECT_EQ(child.name, "test.child");
        EXPECT_EQ(child.parentSpanId, open.spanId);
    }
    recorder::stop();
    std::filesystem::remove_all(dir);
}

/** A SIGKILL can cut the active segment mid-record. Everything before
 *  the tear must read back; the tear is reported, not an error. */
TEST(FlightRecorder, TornActiveTailIsToleratedNotAnError)
{
    TelemetryOn on;
    const std::string dir = tempDir("torn");
    recorder::start(dir);
    for (int i = 0; i < 10; ++i)
        recorder::recordLog(static_cast<u8>(LogLevel::Inform),
                            "message " + std::to_string(i));
    recorder::stop(); // Seals flight-000000.bin with 10 records.

    // Fake a killed successor: its active segment is a copy of the
    // sealed one, cut a few bytes short of the final record boundary.
    const std::string sealed = dir + "/flight-000000.bin";
    const std::string torn = dir + "/flight-000001.bin.tmp.9999";
    std::filesystem::copy_file(sealed, torn);
    const auto size = std::filesystem::file_size(torn);
    std::filesystem::resize_file(torn, size - 5);

    flight::ReadResult rr;
    ASSERT_TRUE(flight::readDir(dir, rr));
    EXPECT_EQ(rr.segments, 2u);
    EXPECT_TRUE(rr.tornTail);
    EXPECT_TRUE(rr.errors.empty()) << rr.errors[0];
    // 10 sealed + 9 complete before the tear.
    EXPECT_EQ(rr.events.size(), 19u);
    EXPECT_EQ(rr.events.back().name, "message 8");
    std::filesystem::remove_all(dir);
}

/** The same truncation inside a *sealed* segment is corruption and
 *  must surface as an error (exit 1 through interf_trace). */
TEST(FlightRecorder, TruncatedSealedSegmentIsAnError)
{
    TelemetryOn on;
    const std::string dir = tempDir("corrupt");
    recorder::start(dir);
    for (int i = 0; i < 10; ++i)
        recorder::recordLog(static_cast<u8>(LogLevel::Inform),
                            "message " + std::to_string(i));
    recorder::stop();
    const std::string sealed = dir + "/flight-000000.bin";
    // A later sealed segment makes the truncated one a non-tail file.
    std::filesystem::copy_file(sealed, dir + "/flight-000001.bin");
    const auto size = std::filesystem::file_size(sealed);
    std::filesystem::resize_file(sealed, size - 5);

    flight::ReadResult rr;
    ASSERT_TRUE(flight::readDir(dir, rr));
    EXPECT_FALSE(rr.errors.empty());
    std::filesystem::remove_all(dir);
}

/** Rotation caps the log: at most kMaxSealedSegments sealed segments
 *  survive (oldest pruned), each about kSegmentBytes long. */
TEST(FlightRecorder, RotationBoundsDiskUsage)
{
    TelemetryOn on;
    const std::string dir = tempDir("rotate");
    recorder::start(dir);
    const std::string payload(4096, 'x');
    // ~6 MiB through 1 MiB segments; flush often enough that nothing
    // is dropped by the bounded queue.
    for (int i = 0; i < 1536; ++i) {
        recorder::recordLog(static_cast<u8>(LogLevel::Inform), payload);
        if (i % 8 == 7)
            recorder::flushNow();
    }
    recorder::stop();
    EXPECT_EQ(recorder::droppedEvents(), 0u);

    const auto files = segmentFiles(dir);
    ASSERT_FALSE(files.empty());
    // Rotation prunes to kMaxSealedSegments; the final seal may add one.
    EXPECT_LE(files.size(), flight::kMaxSealedSegments + 1);
    for (const auto &f : files) {
        // Rotation triggers between record batches, so a segment can
        // overshoot by one flush batch (8 records here) at most.
        EXPECT_LE(std::filesystem::file_size(dir + "/" + f),
                  flight::kSegmentBytes + 64 * 1024);
        // The earliest segments must be gone.
        EXPECT_NE(f, "flight-000000.bin");
    }
    flight::ReadResult rr;
    ASSERT_TRUE(flight::readDir(dir, rr));
    EXPECT_TRUE(rr.errors.empty()) << rr.errors[0];
    EXPECT_FALSE(rr.tornTail);
    EXPECT_GT(rr.events.size(), 0u);
    std::filesystem::remove_all(dir);
}

/** Restarting a recorder over an existing log appends after the
 *  highest sequence number instead of clobbering history. */
TEST(FlightRecorder, RestartResumesSequence)
{
    TelemetryOn on;
    const std::string dir = tempDir("resume");
    recorder::start(dir);
    recorder::recordLog(static_cast<u8>(LogLevel::Inform), "first run");
    recorder::stop();
    recorder::start(dir);
    recorder::recordLog(static_cast<u8>(LogLevel::Inform), "second run");
    recorder::stop();

    const auto files = segmentFiles(dir);
    EXPECT_EQ(files, (std::vector<std::string>{"flight-000000.bin",
                                               "flight-000001.bin"}));
    flight::ReadResult rr;
    ASSERT_TRUE(flight::readDir(dir, rr));
    EXPECT_TRUE(rr.errors.empty());
    ASSERT_EQ(rr.events.size(), 2u);
    EXPECT_EQ(rr.events[0].name, "first run");
    EXPECT_EQ(rr.events[1].name, "second run");
    std::filesystem::remove_all(dir);
}

/** A panicking process flushes its last words into the flight log and
 *  leaves every previously committed segment byte-for-byte intact. */
TEST(FlightRecorderDeathTest, PanicFlushKeepsCommittedSegmentIntact)
{
    TelemetryOn on;
    const std::string dir = tempDir("death");
    recorder::start(dir);
    recorder::recordLog(static_cast<u8>(LogLevel::Inform),
                        "calm before");
    recorder::stop(); // Seals flight-000000.bin.
    const std::string sealed = dir + "/flight-000000.bin";
    const std::string before = readBytes(sealed);
    ASSERT_FALSE(before.empty());

    EXPECT_DEATH(
        {
            recorder::start(dir);
            recorder::recordLog(static_cast<u8>(LogLevel::Inform),
                                "queued in the doomed child");
            panic("flight death test");
        },
        "flight death test");

    // The committed segment is untouched...
    EXPECT_EQ(readBytes(sealed), before);
    // ...and the whole directory (including the dead child's tail)
    // still reads cleanly, ending with the panic's last words.
    flight::ReadResult rr;
    ASSERT_TRUE(flight::readDir(dir, rr));
    EXPECT_TRUE(rr.errors.empty()) << rr.errors[0];
    ASSERT_GE(rr.events.size(), 3u);
    EXPECT_EQ(rr.events[0].name, "calm before");
    bool saw_queued = false, saw_panic = false;
    for (const auto &ev : rr.events) {
        if (ev.name == "queued in the doomed child")
            saw_queued = true;
        if (ev.type == flight::EventType::Log &&
            ev.logLevel == static_cast<u8>(LogLevel::Panic) &&
            ev.name.find("flight death test") != std::string::npos)
            saw_panic = true;
    }
    EXPECT_TRUE(saw_queued);
    EXPECT_TRUE(saw_panic);
    std::filesystem::remove_all(dir);
}

} // anonymous namespace
