/** @file Tests for the violin-plot kernel density estimator. */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/kde.hh"
#include "util/random.hh"

namespace
{

using interf::Rng;
using namespace interf::stats;

std::vector<double>
gaussianSample(u_int64_t seed, int n, double mean, double sigma)
{
    Rng rng(seed);
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
        xs.push_back(rng.gaussian(mean, sigma));
    return xs;
}

TEST(Kde, GridCoversDataWithPadding)
{
    std::vector<double> xs{1.0, 2.0, 3.0};
    auto violin = kernelDensity(xs, 32, 0.15);
    EXPECT_EQ(violin.grid.size(), 32u);
    EXPECT_LT(violin.grid.front(), 1.0);
    EXPECT_GT(violin.grid.back(), 3.0);
}

TEST(Kde, DensityIntegratesToOne)
{
    auto xs = gaussianSample(1, 400, 0.0, 1.0);
    auto violin = kernelDensity(xs, 256, 0.5);
    double step = violin.grid[1] - violin.grid[0];
    double integral = 0.0;
    for (double d : violin.density)
        integral += d * step;
    EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(Kde, ModeNearTrueMean)
{
    auto xs = gaussianSample(2, 1000, 5.0, 0.5);
    auto violin = kernelDensity(xs, 128);
    EXPECT_NEAR(violin.mode(), 5.0, 0.2);
}

TEST(Kde, BimodalShowsTwoBumps)
{
    auto a = gaussianSample(3, 300, -3.0, 0.3);
    auto b = gaussianSample(4, 300, 3.0, 0.3);
    a.insert(a.end(), b.begin(), b.end());
    auto violin = kernelDensity(a, 200);
    // Density at the valley (0) far below density at the modes.
    auto at = [&](double x) {
        size_t best = 0;
        for (size_t i = 1; i < violin.grid.size(); ++i)
            if (std::fabs(violin.grid[i] - x) <
                std::fabs(violin.grid[best] - x))
                best = i;
        return violin.density[best];
    };
    EXPECT_LT(at(0.0) * 3.0, at(-3.0));
    EXPECT_LT(at(0.0) * 3.0, at(3.0));
}

TEST(Kde, DensityNonNegative)
{
    auto xs = gaussianSample(5, 50, 0.0, 2.0);
    auto violin = kernelDensity(xs);
    for (double d : violin.density)
        EXPECT_GE(d, 0.0);
}

TEST(Kde, NearConstantSampleStillWorks)
{
    std::vector<double> xs{1.0, 1.0, 1.0, 1.0 + 1e-12};
    auto violin = kernelDensity(xs, 16);
    EXPECT_EQ(violin.grid.size(), 16u);
    double peak = 0;
    for (double d : violin.density)
        peak = std::max(peak, d);
    EXPECT_GT(peak, 0.0);
}

TEST(Kde, SilvermanBandwidthScales)
{
    auto narrow = gaussianSample(6, 500, 0.0, 0.1);
    auto wide = gaussianSample(7, 500, 0.0, 10.0);
    EXPECT_LT(silvermanBandwidth(narrow), silvermanBandwidth(wide));
}

TEST(Kde, SilvermanShrinksWithSampleSize)
{
    auto small = gaussianSample(8, 50, 0.0, 1.0);
    auto large = gaussianSample(8, 5000, 0.0, 1.0);
    EXPECT_GT(silvermanBandwidth(small), silvermanBandwidth(large) * 1.5);
}

TEST(KdeDeathTest, RejectsDegenerateInputs)
{
    EXPECT_DEATH((void)kernelDensity({1.0}), "assertion");
    EXPECT_DEATH((void)kernelDensity({1.0, 2.0}, 1), "assertion");
}

} // anonymous namespace
