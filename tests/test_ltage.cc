/** @file Tests for the L-TAGE predictor. */

#include <gtest/gtest.h>

#include "bpred/history.hh"
#include "bpred/ltage.hh"
#include "bpred/twolevel.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(FoldedHistory, DependsOnlyOnWindowContents)
{
    // Two folded registers fed the same window contents agree, even if
    // their earlier (expired) histories differed.
    auto run = [](const std::vector<int> &prefix,
                  const std::vector<int> &window) {
        FoldedHistory fh;
        fh.configure(16, 8);
        LongHistory hist(64);
        for (int b : prefix) {
            fh.update(b != 0, hist.bitAt(15));
            hist.push(b != 0);
        }
        for (int b : window) {
            fh.update(b != 0, hist.bitAt(15));
            hist.push(b != 0);
        }
        return fh.value();
    };
    std::vector<int> window;
    for (int i = 0; i < 16; ++i)
        window.push_back(i % 3 == 0);
    u32 a = run({1, 1, 0, 1, 0, 0, 1}, window);
    u32 b = run({0, 0, 0}, window);
    u32 c = run({}, window);
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, c);
    // Different window contents (usually) give a different fold.
    std::vector<int> other(16, 0);
    other[3] = 1;
    EXPECT_NE(run({}, other), a);
    // All-zero window folds to zero.
    EXPECT_EQ(run({1, 0, 1, 1}, std::vector<int>(16, 0)), 0u);
}

TEST(LongHistory, RingSemantics)
{
    LongHistory hist(8);
    hist.push(true);
    hist.push(false);
    hist.push(true);
    EXPECT_TRUE(hist.bitAt(0));  // newest
    EXPECT_FALSE(hist.bitAt(1));
    EXPECT_TRUE(hist.bitAt(2));
}

TEST(Ltage, GeometricHistoryLengths)
{
    LtagePredictor pred;
    u32 prev = 0;
    for (u32 t = 0; t < 12; ++t) {
        u32 len = pred.historyLength(t);
        EXPECT_GT(len, prev);
        prev = len;
    }
    EXPECT_EQ(pred.historyLength(0), 4u);
    EXPECT_EQ(pred.historyLength(11), 640u);
}

TEST(Ltage, LearnsBiasedBranch)
{
    LtagePredictor pred;
    Addr pc = 0x400100;
    for (int i = 0; i < 100; ++i)
        pred.predictAndTrain(pc, true);
    int wrong = 0;
    for (int i = 0; i < 500; ++i)
        wrong += pred.predictAndTrain(pc, true) != true;
    EXPECT_EQ(wrong, 0);
}

TEST(Ltage, LearnsLongPeriodicPattern)
{
    // Period 40 defeats a 12-bit gshare; TAGE's long histories and/or
    // the loop predictor must capture it.
    LtagePredictor pred;
    Addr pc = 0x400200;
    auto outcome = [](int i) { return i % 40 != 39; };
    int i = 0;
    for (; i < 4000; ++i)
        pred.predictAndTrain(pc, outcome(i));
    int wrong = 0;
    const int n = 4000;
    for (; i < 4000 + n; ++i)
        wrong += pred.predictAndTrain(pc, outcome(i)) != outcome(i);
    // Far better than the 1-in-40 exit-miss floor (100 misses).
    EXPECT_LT(wrong, 30);
}

TEST(Ltage, LoopPredictorCatchesConstantTripCounts)
{
    // A constant-trip-count loop whose body contains a *random* branch:
    // global history is useless noise, so only the loop predictor's
    // iteration counting can catch the exits.
    LtageConfig with, without;
    without.enableLoopPredictor = false;
    LtagePredictor a(with), b(without);
    Addr loop_pc = 0x400300, noise_pc = 0x400308;
    Rng rng(3);
    int wrong_with = 0, wrong_without = 0;
    for (int i = 0; i < 60000; ++i) {
        bool noise = rng.bernoulli(0.5);
        a.predictAndTrain(noise_pc, noise);
        b.predictAndTrain(noise_pc, noise);
        bool t = i % 50 != 49;
        wrong_with += a.predictAndTrain(loop_pc, t) != t;
        wrong_without += b.predictAndTrain(loop_pc, t) != t;
    }
    EXPECT_LT(wrong_with, wrong_without * 7 / 10)
        << "with " << wrong_with << " without " << wrong_without;
}

TEST(Ltage, BeatsGshareOnMixedWorkload)
{
    // The headline property: L-TAGE is substantially more accurate
    // than a same-era gshare on a mixed branch population.
    Rng rng(11);
    LtagePredictor ltage;
    TwoLevelPredictor gshare(TwoLevelScheme::Gshare, 16384, 12);
    const int sites = 64;
    std::vector<Addr> pcs;
    std::vector<int> kind;
    for (int s = 0; s < sites; ++s) {
        pcs.push_back(0x400000 + 13 * s);
        kind.push_back(s % 3);
    }
    // Structured execution (round-robin over the sites, like loop
    // nests in real code) so histories repeat and both predictors get
    // a fair shot.
    std::vector<int> phase(sites, 0);
    int wrong_l = 0, wrong_g = 0, total = 0;
    for (int round = 0; round < 1200; ++round) {
        for (int s = 0; s < sites; ++s) {
            bool t;
            switch (kind[s]) {
              case 0:
                t = rng.bernoulli(0.95);
                break;
              case 1:
                t = (phase[s]++ % 30) != 29;
                break;
              default:
                t = (phase[s]++ % 7) != 6;
                break;
            }
            wrong_l += ltage.predictAndTrain(pcs[s], t) != t;
            wrong_g += gshare.predictAndTrain(pcs[s], t) != t;
            ++total;
        }
    }
    EXPECT_LT(wrong_l, wrong_g)
        << "ltage " << wrong_l << " vs gshare " << wrong_g;
}

TEST(Ltage, ResetRestoresColdState)
{
    LtagePredictor pred;
    Addr pc = 0x400400;
    for (int i = 0; i < 1000; ++i)
        pred.predictAndTrain(pc, false);
    pred.reset();
    EXPECT_TRUE(pred.predictAndTrain(pc, true)); // cold default taken
}

TEST(Ltage, DeterministicAcrossInstances)
{
    LtagePredictor a, b;
    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        Addr pc = 0x400000 + (rng.next() & 0xfff);
        bool t = rng.bernoulli(0.7);
        EXPECT_EQ(a.predictAndTrain(pc, t), b.predictAndTrain(pc, t));
    }
}

TEST(Ltage, SizeBitsInExpectedRange)
{
    LtagePredictor pred;
    // The CBP-2 design is ~256 Kbit; ours should be the same order.
    EXPECT_GT(pred.sizeBits(), 100u << 10);
    EXPECT_LT(pred.sizeBits(), 400u << 10);
    EXPECT_NE(pred.name().find("ltage"), std::string::npos);
}

TEST(Ltage, SmallConfigurationWorks)
{
    LtageConfig small;
    small.numTables = 4;
    small.maxHistory = 64;
    small.logTaggedEntries = 7;
    small.logBimodalEntries = 9;
    LtagePredictor pred(small);
    Addr pc = 0x400500;
    for (int i = 0; i < 200; ++i)
        pred.predictAndTrain(pc, true);
    EXPECT_TRUE(pred.predictAndTrain(pc, true));
}

TEST(LtageDeathTest, BadConfigPanics)
{
    LtageConfig bad;
    bad.numTables = 1;
    EXPECT_DEATH(LtagePredictor{bad}, "assertion");
}

} // anonymous namespace
