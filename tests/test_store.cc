/** @file Tests for the campaign artifact store: serialization
 *  round-trips, the corruption matrix (every damaged artifact must
 *  fail closed), and store-key derivation properties. */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "store/serialize.hh"
#include "store/store.hh"
#include "trace/io.hh"
#include "util/digest.hh"
#include "workloads/builder.hh"

namespace
{

namespace fs = std::filesystem;
using namespace interf;
using namespace interf::store;

/** A fully-populated synthetic sample (no field left default). */
core::Measurement
sampleAt(u64 seed)
{
    core::Measurement m;
    m.layoutSeed = 1000 + seed;
    m.cpi = 0.5 + 0.001 * static_cast<double>(seed);
    m.mpki = 8.0 + 0.01 * static_cast<double>(seed);
    m.l1iMpki = 1.0 + 0.1 * static_cast<double>(seed);
    m.l1dMpki = 2.0 + 0.1 * static_cast<double>(seed);
    m.l2Mpki = 0.25 + 0.01 * static_cast<double>(seed);
    m.btbMpki = 3.5 + 0.1 * static_cast<double>(seed);
    m.cycles = 100000 + seed;
    m.instructions = 60000 + seed;
    m.condBranches = 9000 + seed;
    m.mispredicts = 700 + seed;
    m.l1iMisses = 80 + seed;
    m.l1dMisses = 120 + seed;
    m.l2Misses = 15 + seed;
    m.btbMisses = 210 + seed;
    return m;
}

std::vector<core::Measurement>
samplesAt(u32 count, u64 base = 0)
{
    std::vector<core::Measurement> out;
    for (u32 i = 0; i < count; ++i)
        out.push_back(sampleAt(base + i));
    return out;
}

void
expectEqual(const std::vector<core::Measurement> &a,
            const std::vector<core::Measurement> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].layoutSeed, b[i].layoutSeed) << "sample " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << "sample " << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions) << "sample " << i;
        EXPECT_EQ(a[i].condBranches, b[i].condBranches) << "sample " << i;
        EXPECT_EQ(a[i].mispredicts, b[i].mispredicts) << "sample " << i;
        EXPECT_EQ(a[i].l1iMisses, b[i].l1iMisses) << "sample " << i;
        EXPECT_EQ(a[i].l1dMisses, b[i].l1dMisses) << "sample " << i;
        EXPECT_EQ(a[i].l2Misses, b[i].l2Misses) << "sample " << i;
        EXPECT_EQ(a[i].btbMisses, b[i].btbMisses) << "sample " << i;
        // Doubles round-trip by bit pattern, so exact comparison.
        EXPECT_EQ(a[i].cpi, b[i].cpi) << "sample " << i;
        EXPECT_EQ(a[i].mpki, b[i].mpki) << "sample " << i;
        EXPECT_EQ(a[i].l1iMpki, b[i].l1iMpki) << "sample " << i;
        EXPECT_EQ(a[i].l1dMpki, b[i].l1dMpki) << "sample " << i;
        EXPECT_EQ(a[i].l2Mpki, b[i].l2Mpki) << "sample " << i;
        EXPECT_EQ(a[i].btbMpki, b[i].btbMpki) << "sample " << i;
    }
}

/** Per-test scratch store root, removed on destruction. */
struct TempRoot
{
    std::string path;

    TempRoot()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        path = ::testing::TempDir() + "interf_store_" +
               info->test_suite_name() + "_" + info->name();
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempRoot() { fs::remove_all(path); }
};

/** XOR one byte of a file in place. */
void
flipByte(const std::string &path, size_t offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(c ^ 0x5a));
    ASSERT_TRUE(f) << path;
}

void
truncateFile(const std::string &path, size_t keep)
{
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_LT(keep, data.size());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(keep));
}

size_t
fileSize(const std::string &path)
{
    return static_cast<size_t>(fs::file_size(path));
}

constexpr u64 kKey = 0x1234abcd5678ef01ULL;

/** Batch file header: magic + version + key + first + count + checksum. */
constexpr size_t kBatchHeaderBytes = 8 + 4 + 8 + 4 + 4 + 8;
/** Offset of the format-version field in both file kinds. */
constexpr size_t kVersionOffset = 8;

// ---------------------------------------------------------------------
// Serialization round-trips.

TEST(StoreSerialize, MeasurementRoundTripsAllFields)
{
    auto samples = samplesAt(7);
    std::stringstream buf;
    writeSamples(buf, samples);
    auto loaded = readSamples(buf, 7);
    ASSERT_TRUE(buf) << "short read";
    expectEqual(samples, loaded);
}

TEST(StoreSerialize, ChecksumCoversEveryField)
{
    // Perturbing any single field must change the payload checksum;
    // otherwise the corruption matrix has a blind spot.
    auto base = samplesAt(3);
    const u64 base_sum = samplesChecksum(base);
    EXPECT_EQ(base_sum, samplesChecksum(samplesAt(3)));

    std::vector<std::function<void(core::Measurement &)>> tweaks = {
        [](auto &m) { m.layoutSeed++; },
        [](auto &m) { m.cpi += 1e-9; },
        [](auto &m) { m.mpki += 1e-9; },
        [](auto &m) { m.l1iMpki += 1e-9; },
        [](auto &m) { m.l1dMpki += 1e-9; },
        [](auto &m) { m.l2Mpki += 1e-9; },
        [](auto &m) { m.btbMpki += 1e-9; },
        [](auto &m) { m.cycles++; },
        [](auto &m) { m.instructions++; },
        [](auto &m) { m.condBranches++; },
        [](auto &m) { m.mispredicts++; },
        [](auto &m) { m.l1iMisses++; },
        [](auto &m) { m.l1dMisses++; },
        [](auto &m) { m.l2Misses++; },
        [](auto &m) { m.btbMisses++; },
    };
    for (size_t t = 0; t < tweaks.size(); ++t) {
        auto mutated = base;
        tweaks[t](mutated[1]);
        EXPECT_NE(samplesChecksum(mutated), base_sum) << "tweak " << t;
    }
}

TEST(Store, EmptyStoreIsCold)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    EXPECT_EQ(st.storedCount(), 0u);
    EXPECT_TRUE(st.batches().empty());
    EXPECT_TRUE(st.loadSamples().empty());
}

TEST(Store, BatchRoundTripAcrossReopen)
{
    TempRoot root;
    auto first = samplesAt(5, 0);
    auto second = samplesAt(3, 5);
    {
        CampaignStore st(root.path, kKey);
        st.appendBatch(0, first);
        st.appendBatch(5, second);
        EXPECT_EQ(st.storedCount(), 8u);
    }
    // A fresh open (a resuming process) sees both batches intact.
    CampaignStore st(root.path, kKey);
    EXPECT_EQ(st.storedCount(), 8u);
    ASSERT_EQ(st.batches().size(), 2u);
    EXPECT_EQ(st.batches()[0].first, 0u);
    EXPECT_EQ(st.batches()[0].count, 5u);
    EXPECT_EQ(st.batches()[1].first, 5u);
    EXPECT_EQ(st.batches()[1].count, 3u);

    auto all = samplesAt(8, 0);
    expectEqual(st.loadSamples(), all);
}

TEST(Store, EmptyAppendIsANoOp)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, {});
    EXPECT_EQ(st.storedCount(), 0u);
    EXPECT_FALSE(fs::exists(st.manifestPath()));
}

TEST(Store, DistinctKeysDistinctDirectories)
{
    TempRoot root;
    CampaignStore a(root.path, 1);
    CampaignStore b(root.path, 2);
    a.appendBatch(0, samplesAt(2, 0));
    b.appendBatch(0, samplesAt(4, 90));
    EXPECT_NE(a.dir(), b.dir());
    CampaignStore a2(root.path, 1);
    CampaignStore b2(root.path, 2);
    EXPECT_EQ(a2.storedCount(), 2u);
    EXPECT_EQ(b2.storedCount(), 4u);
}

// ---------------------------------------------------------------------
// The corruption matrix: every damaged artifact fails closed with a
// clear error — never garbage samples.

TEST(StoreDeathTest, NonContiguousAppendIsABug)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    EXPECT_DEATH(st.appendBatch(5, samplesAt(2)), "non-contiguous");
}

TEST(StoreDeathTest, TruncatedBatchRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    truncateFile(st.batchPath(0), kBatchHeaderBytes + 24);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1), "truncated store batch");
}

TEST(StoreDeathTest, BatchTruncatedInsideHeaderRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    truncateFile(st.batchPath(0), kBatchHeaderBytes - 4);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1), "truncated store batch");
}

TEST(StoreDeathTest, BatchBadMagicRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.batchPath(0), 0);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(StoreDeathTest, BatchVersionSkewRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.batchPath(0), kVersionOffset);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1),
                "unsupported format version");
}

TEST(StoreDeathTest, FlippedPayloadByteRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.batchPath(0), kBatchHeaderBytes + 17);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1),
                "payload checksum mismatch");
}

TEST(StoreDeathTest, FlippedBatchHeaderRejected)
{
    // Damage to the header's own checksum field: the batch no longer
    // matches its manifest entry.
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.batchPath(0), kBatchHeaderBytes - 2);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1),
                "does not match its manifest entry");
}

TEST(StoreDeathTest, MissingBatchRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    fs::remove(st.batchPath(0));
    EXPECT_EXIT((void)CampaignStore(root.path, kKey).loadSamples(),
                ::testing::ExitedWithCode(1), "missing");
}

TEST(StoreDeathTest, ManifestBadMagicRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.manifestPath(), 0);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey),
                ::testing::ExitedWithCode(1), "bad magic");
}

TEST(StoreDeathTest, ManifestVersionSkewRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.manifestPath(), kVersionOffset);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey),
                ::testing::ExitedWithCode(1),
                "unsupported format version");
}

TEST(StoreDeathTest, ManifestHugeBatchCountRejected)
{
    // A corrupt batch count must fail closed before the batch table is
    // allocated — not OOM trying to reserve billions of entries. The
    // count is the u32 after magic+version+key; flipping its high byte
    // turns 1 into ~1.5e9.
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.manifestPath(), 8 + 4 + 8 + 3);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey),
                ::testing::ExitedWithCode(1),
                "truncated store manifest");
}

TEST(StoreDeathTest, ConcurrentWriterRejected)
{
    // Two live campaigns writing the same key must not interleave
    // writes; the second writer dies with a clear error instead.
    TempRoot root;
    CampaignStore a(root.path, kKey);
    a.appendBatch(0, samplesAt(2)); // a now holds the write lock
    CampaignStore b(root.path, kKey);
    EXPECT_DEATH(b.appendBatch(2, samplesAt(2, 2)),
                 "locked by another process");
}

TEST(StoreDeathTest, StaleWriterRejected)
{
    // A writer whose entry was extended on disk after it opened (by a
    // racing campaign that has since finished) must not clobber the
    // newer batches from its stale view.
    TempRoot root;
    CampaignStore late(root.path, kKey); // opened while still cold
    {
        CampaignStore writer(root.path, kKey);
        writer.appendBatch(0, samplesAt(2));
    } // writer's lock released
    EXPECT_DEATH(late.appendBatch(0, samplesAt(2)), "changed on disk");
}

TEST(StoreDeathTest, TruncatedManifestRejected)
{
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    truncateFile(st.manifestPath(), fileSize(st.manifestPath()) - 8);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey),
                ::testing::ExitedWithCode(1),
                "truncated store manifest");
}

TEST(StoreDeathTest, CorruptManifestEntryRejected)
{
    // A flipped byte inside the batch table breaks the manifest's own
    // digest before any batch is even opened.
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    flipByte(st.manifestPath(), 8 + 4 + 8 + 4 + 2);
    EXPECT_EXIT((void)CampaignStore(root.path, kKey),
                ::testing::ExitedWithCode(1), "digest mismatch");
}

TEST(StoreDeathTest, KeyMismatchRejected)
{
    // Artifacts renamed under another campaign's key directory must be
    // rejected: samples are bound to the campaign that produced them.
    TempRoot root;
    CampaignStore st(root.path, kKey);
    st.appendBatch(0, samplesAt(4));
    const u64 other = kKey + 1;
    fs::rename(st.dir(), fs::path(root.path) / digestHex(other));
    EXPECT_EXIT((void)CampaignStore(root.path, other),
                ::testing::ExitedWithCode(1), "key mismatch");
}

// ---------------------------------------------------------------------
// Store-key derivation properties.

interferometry::CampaignConfig
baseConfig()
{
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = 8;
    cfg.maxLayouts = 8;
    return cfg;
}

const trace::Program &
keyProgram()
{
    static trace::Program prog =
        workloads::buildProgram(workloads::defaultProfile("key"));
    return prog;
}

TEST(StoreKey, StableAcrossRecomputation)
{
    // Rebuilding the program and the config from scratch yields the
    // same key: nothing address- or run-dependent leaks into it.
    auto prog2 = workloads::buildProgram(workloads::defaultProfile("key"));
    EXPECT_EQ(campaignKey(keyProgram(), 2, baseConfig()),
              campaignKey(prog2, 2, baseConfig()));
}

TEST(StoreKey, EveryConfigFieldChangesTheKey)
{
    using Cfg = interferometry::CampaignConfig;
    const std::vector<
        std::pair<const char *, std::function<void(Cfg &)>>>
        mutators = {
            {"instructionBudget",
             [](Cfg &c) { c.instructionBudget += 1; }},
            {"initialLayouts", [](Cfg &c) { c.initialLayouts += 1; }},
            {"escalationStep", [](Cfg &c) { c.escalationStep += 1; }},
            {"maxLayouts", [](Cfg &c) { c.maxLayouts += 1; }},
            {"alpha", [](Cfg &c) { c.alpha += 1e-6; }},
            {"minMpkiCv", [](Cfg &c) { c.minMpkiCv += 1e-6; }},
            {"randomizeHeap", [](Cfg &c) { c.randomizeHeap = true; }},
            {"physicalPages", [](Cfg &c) { c.physicalPages = false; }},
            {"layoutSeedBase", [](Cfg &c) { c.layoutSeedBase += 1; }},
            {"machine.name", [](Cfg &c) { c.machine.name += "x"; }},
            {"machine.width", [](Cfg &c) { c.machine.width += 1; }},
            {"machine.frontendDepth",
             [](Cfg &c) { c.machine.frontendDepth += 1; }},
            {"machine.robSize", [](Cfg &c) { c.machine.robSize += 1; }},
            {"machine.l1Latency",
             [](Cfg &c) { c.machine.l1Latency += 1; }},
            {"machine.l2Latency",
             [](Cfg &c) { c.machine.l2Latency += 1; }},
            {"machine.memLatency",
             [](Cfg &c) { c.machine.memLatency += 1; }},
            {"machine.maxMlp", [](Cfg &c) { c.machine.maxMlp += 1; }},
            {"machine.predictorSpec",
             [](Cfg &c) { c.machine.predictorSpec = "bimodal:4096"; }},
            {"machine.btbSets", [](Cfg &c) { c.machine.btbSets *= 2; }},
            {"machine.btbWays", [](Cfg &c) { c.machine.btbWays += 1; }},
            {"machine.rasDepth",
             [](Cfg &c) { c.machine.rasDepth += 1; }},
            {"machine.misfetchPenalty",
             [](Cfg &c) { c.machine.misfetchPenalty += 1; }},
            {"machine.warmupFraction",
             [](Cfg &c) { c.machine.warmupFraction += 1e-6; }},
            {"machine.hierarchy.l1i.sizeBytes",
             [](Cfg &c) { c.machine.hierarchy.l1i.sizeBytes *= 2; }},
            {"machine.hierarchy.l1d.assoc",
             [](Cfg &c) { c.machine.hierarchy.l1d.assoc *= 2; }},
            {"machine.hierarchy.l2.lineBytes",
             [](Cfg &c) { c.machine.hierarchy.l2.lineBytes *= 2; }},
            {"machine.hierarchy.l2.replacement",
             [](Cfg &c) {
                 c.machine.hierarchy.l2.replacement =
                     cache::Replacement::Random;
             }},
            {"machine.hierarchy.nextLinePrefetch",
             [](Cfg &c) { c.machine.hierarchy.nextLinePrefetch = false; }},
            {"runner.runsPerGroup",
             [](Cfg &c) { c.runner.runsPerGroup += 2; }},
            {"runner.noise.jitterSigma",
             [](Cfg &c) { c.runner.noise.jitterSigma += 1e-6; }},
            {"runner.noise.spikeProb",
             [](Cfg &c) { c.runner.noise.spikeProb += 1e-6; }},
            {"runner.noise.spikeMax",
             [](Cfg &c) { c.runner.noise.spikeMax += 1e-6; }},
            {"runner.noise.quiescent",
             [](Cfg &c) { c.runner.noise.quiescent = false; }},
        };

    const u64 base = campaignKey(keyProgram(), 2, baseConfig());
    std::set<u64> keys{base};
    for (const auto &[name, mutate] : mutators) {
        auto cfg = baseConfig();
        mutate(cfg);
        const u64 key = campaignKey(keyProgram(), 2, cfg);
        EXPECT_NE(key, base) << name;
        EXPECT_TRUE(keys.insert(key).second)
            << name << " collides with an earlier mutation";
    }
}

TEST(StoreKey, ExecutionOnlyFieldsDoNotChangeTheKey)
{
    // jobs and batchLanes cannot change a sample's bytes (the
    // executor's determinism guarantees across worker counts and lane
    // groupings) and storeDir is where the cache lives — serial,
    // parallel, batched and relocated-store runs all share one cache
    // entry.
    const u64 base = campaignKey(keyProgram(), 2, baseConfig());
    auto cfg = baseConfig();
    cfg.jobs = 7;
    EXPECT_EQ(campaignKey(keyProgram(), 2, cfg), base);
    cfg.batchLanes = 9;
    EXPECT_EQ(campaignKey(keyProgram(), 2, cfg), base);
    cfg.storeDir = "/somewhere/else";
    EXPECT_EQ(campaignKey(keyProgram(), 2, cfg), base);
}

TEST(StoreKey, ProgramAndBehaviourBindTheKey)
{
    const u64 base = campaignKey(keyProgram(), 2, baseConfig());
    // A different behaviour seed means a different trace.
    EXPECT_NE(campaignKey(keyProgram(), 3, baseConfig()), base);
    // A structurally different program.
    auto profile = workloads::defaultProfile("key");
    profile.structureSeed += 1;
    auto other = workloads::buildProgram(profile);
    EXPECT_NE(campaignKey(other, 2, baseConfig()), base);
}

/**
 * Build a small two-procedure program by hand, with every
 * behaviour-bearing field at a non-default value, letting @p mutate
 * tweak the first procedure before it is frozen into the Program
 * (Program exposes no mutable access afterwards).
 */
trace::Program
handProgram(const std::function<void(trace::Procedure &)> &mutate = {})
{
    using namespace trace;
    Procedure p;
    p.name = "hot";
    p.align = 16;

    BasicBlock body;
    body.bytes = 48;
    body.nInsts = 9;
    body.extraExecCycles = 2;
    body.branch.kind = OpClass::CondBranch;
    body.branch.pattern = BranchPattern::Biased;
    body.branch.takenProb = 0.8f;
    body.branch.period = 5;
    body.branch.historyBits = 4;
    body.branch.dependsOnLoad = false;
    body.branch.targetProc = 0;
    body.branch.targetBlock = 1;
    body.branch.indirectTargets = 0;
    MemRef ref;
    ref.regionId = 0;
    ref.isStore = false;
    ref.pattern = MemPattern::Stride;
    ref.stride = 8;
    ref.churnSpan = 96 << 10;
    ref.genId = 0;
    body.memRefs.push_back(ref);
    p.blocks.push_back(body);

    BasicBlock ret;
    ret.bytes = 8;
    ret.nInsts = 1;
    ret.branch.kind = OpClass::Return;
    p.blocks.push_back(ret);

    if (mutate)
        mutate(p);

    Procedure cold;
    cold.name = "cold";
    cold.align = 16;
    cold.blocks.push_back(ret);

    Program prog;
    u32 hot_id = prog.addProcedure(std::move(p));
    u32 cold_id = prog.addProcedure(std::move(cold));
    u32 file = prog.addFile("a.o");
    prog.placeInFile(file, hot_id);
    prog.placeInFile(file, cold_id);
    prog.addRegion(trace::RegionKind::Heap, 4096);
    return prog;
}

TEST(StoreKey, EveryProgramFieldChangesTheKey)
{
    // The fields the trace-file checksum does NOT cover: branch
    // behaviour parameters, memory-site details, intrinsic stalls and
    // linker alignment. Each one shapes the trace or the layout, so
    // each must produce a distinct store key — a collision here means
    // a warm store can serve another profile's samples.
    using trace::Procedure;
    const std::vector<
        std::pair<const char *, std::function<void(Procedure &)>>>
        mutators = {
            {"align", [](Procedure &p) { p.align = 32; }},
            {"extraExecCycles",
             [](Procedure &p) { p.blocks[0].extraExecCycles = 5; }},
            {"branch.pattern",
             [](Procedure &p) {
                 p.blocks[0].branch.pattern =
                     trace::BranchPattern::Periodic;
             }},
            {"branch.takenProb",
             [](Procedure &p) { p.blocks[0].branch.takenProb = 0.75f; }},
            {"branch.period",
             [](Procedure &p) { p.blocks[0].branch.period = 6; }},
            {"branch.historyBits",
             [](Procedure &p) { p.blocks[0].branch.historyBits = 7; }},
            {"branch.dependsOnLoad",
             [](Procedure &p) {
                 p.blocks[0].branch.dependsOnLoad = true;
             }},
            {"branch.indirectTargets",
             [](Procedure &p) {
                 p.blocks[0].branch.indirectTargets = 3;
             }},
            {"memRef.isStore",
             [](Procedure &p) { p.blocks[0].memRefs[0].isStore = true; }},
            {"memRef.pattern",
             [](Procedure &p) {
                 p.blocks[0].memRefs[0].pattern = trace::MemPattern::Hot;
             }},
            {"memRef.stride",
             [](Procedure &p) { p.blocks[0].memRefs[0].stride = 64; }},
            {"memRef.churnSpan",
             [](Procedure &p) {
                 p.blocks[0].memRefs[0].churnSpan = 128 << 10;
             }},
            {"memRef.genId",
             [](Procedure &p) { p.blocks[0].memRefs[0].genId = 9; }},
        };

    const u64 base = campaignKey(handProgram(), 2, baseConfig());
    EXPECT_EQ(base, campaignKey(handProgram(), 2, baseConfig()));
    std::set<u64> keys{base};
    for (const auto &[name, mutate] : mutators) {
        const u64 key =
            campaignKey(handProgram(mutate), 2, baseConfig());
        EXPECT_NE(key, base) << name;
        EXPECT_TRUE(keys.insert(key).second)
            << name << " collides with an earlier mutation";
    }
}

TEST(StoreKey, AuthoredLinkOrderChangesTheKey)
{
    // The linker permutes the *authored* order, so two programs whose
    // procedures are authored in swapped file order are different
    // experiments even though their procedure sets are identical.
    using namespace trace;
    auto build = [](bool swapped) {
        Program prog;
        Procedure a, b;
        a.name = "a";
        b.name = "b";
        BasicBlock ret;
        ret.bytes = 8;
        ret.nInsts = 1;
        ret.branch.kind = OpClass::Return;
        a.blocks.push_back(ret);
        b.blocks.push_back(ret);
        u32 ia = prog.addProcedure(std::move(a));
        u32 ib = prog.addProcedure(std::move(b));
        u32 file = prog.addFile("a.o");
        prog.placeInFile(file, swapped ? ib : ia);
        prog.placeInFile(file, swapped ? ia : ib);
        return prog;
    };
    EXPECT_NE(campaignKey(build(false), 2, baseConfig()),
              campaignKey(build(true), 2, baseConfig()));
}

TEST(StoreKey, ProfileBehaviourKnobsChangeTheKey)
{
    // End-to-end over the builder: profile knobs that only alter
    // branch/memory *behaviour* (not block geometry) were invisible to
    // the trace-file checksum; each must still change the store key.
    using workloads::WorkloadProfile;
    const std::vector<
        std::pair<const char *, std::function<void(WorkloadProfile &)>>>
        knobs = {
            {"biasMin", [](WorkloadProfile &p) { p.biasMin = 0.50; }},
            {"biasMax", [](WorkloadProfile &p) { p.biasMax = 0.80; }},
            {"periodMax", [](WorkloadProfile &p) { p.periodMax = 40; }},
            {"historyBitsMax",
             [](WorkloadProfile &p) { p.historyBitsMax = 14; }},
            {"branchLoadDepProb",
             [](WorkloadProfile &p) { p.branchLoadDepProb = 0.9; }},
            {"meanExtraExecCycles",
             [](WorkloadProfile &p) { p.meanExtraExecCycles = 4.0; }},
            {"storesPerInst",
             [](WorkloadProfile &p) { p.storesPerInst = 0.25; }},
            {"churnWindow",
             [](WorkloadProfile &p) { p.churnWindow = 192 << 10; }},
        };

    const u64 base = campaignKey(keyProgram(), 2, baseConfig());
    std::set<u64> keys{base};
    for (const auto &[name, tweak] : knobs) {
        auto profile = workloads::defaultProfile("key");
        tweak(profile);
        const u64 key = campaignKey(workloads::buildProgram(profile), 2,
                                    baseConfig());
        EXPECT_NE(key, base) << name;
        EXPECT_TRUE(keys.insert(key).second)
            << name << " collides with an earlier mutation";
    }
}

} // anonymous namespace
