/** @file Cross-cutting property tests: invariants that must hold for
 *  every benchmark, seed, and geometry — the guarantees program
 *  interferometry rests on. */

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "cache/cache.hh"
#include "interferometry/campaign.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "pinsim/pinsim.hh"
#include "trace/generator.hh"
#include "stats/distributions.hh"
#include "stats/regression.hh"
#include "util/random.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;

// ---------------------------------------------------------------------
// Property 1: the interferometry invariant. For every suite benchmark,
// every layout retires identical work; only addresses (and therefore
// timing) change.

class LayoutInvariance : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LayoutInvariance, SemanticsFixedAddressesMoving)
{
    auto spec = workloads::specFor(GetParam());
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    interferometry::Campaign camp(spec.profile, cfg);
    auto samples = camp.measureLayouts(0, 4);
    for (const auto &m : samples) {
        EXPECT_EQ(m.instructions, samples[0].instructions);
        EXPECT_EQ(m.condBranches, samples[0].condBranches);
        EXPECT_GE(m.mpki, 0.0);
        EXPECT_GT(m.cpi, 0.2);
    }
    // Addresses genuinely move between layouts.
    auto a = camp.codeLayoutFor(0);
    auto b = camp.codeLayoutFor(1);
    int moved = 0;
    for (u32 p = 0; p < camp.program().procedures().size(); ++p)
        moved += a.procBase(p) != b.procBase(p);
    EXPECT_GT(moved, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, LayoutInvariance,
    ::testing::Values("400.perlbench", "429.mcf", "434.zeusmp",
                      "445.gobmk", "454.calculix", "470.lbm",
                      "483.xalancbmk"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Property 2: predictor quality ordering holds across workload seeds,
// not just the one we tuned on.

class PredictorOrdering : public ::testing::TestWithParam<u64>
{
};

TEST_P(PredictorOrdering, PerfectBeatsLtageBeatsTinyBimodal)
{
    auto profile = workloads::defaultProfile("order");
    profile.structureSeed = GetParam();
    profile.behaviourSeed = GetParam() + 1;
    auto prog = workloads::buildProgram(profile);
    auto trace =
        trace::TraceGenerator(prog, profile.behaviourSeed).makeTrace(60000);
    auto code = layout::Linker().link(
        prog, layout::LayoutKey{GetParam(), true, true});

    pinsim::PinSim sim({"perfect", "ltage", "bimodal:64"});
    auto res = sim.run(prog, trace, code);
    EXPECT_EQ(res[0].mispredicts, 0u);
    EXPECT_LE(res[1].mispredicts, res[2].mispredicts);
    EXPECT_LT(res[1].mispredicts, res[2].mispredicts)
        << "ltage must strictly beat a 64-byte bimodal";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorOrdering,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------
// Property 3: larger caches never lose (statistically) on random
// traffic; same traffic, same seed, four geometries.

class CacheMonotonicity
    : public ::testing::TestWithParam<std::pair<u32, u32>>
{
};

TEST_P(CacheMonotonicity, BiggerCacheFewerMisses)
{
    auto [small_kb, big_kb] = GetParam();
    cache::Cache small({"s", small_kb << 10, 8, 64});
    cache::Cache big({"b", big_kb << 10, 8, 64});
    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        Addr a = (rng.next() % (1u << 21)) & ~Addr{63}; // 2 MB span
        small.access(a);
        big.access(a);
    }
    EXPECT_LE(big.stats().misses, small.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheMonotonicity,
                         ::testing::Values(std::make_pair(16u, 32u),
                                           std::make_pair(32u, 64u),
                                           std::make_pair(64u, 256u),
                                           std::make_pair(256u, 1024u)));

// ---------------------------------------------------------------------
// Property 4: the PageMap is a bijection (no two pages collide) and
// preserves page offsets.

class PageMapBijection : public ::testing::TestWithParam<u64>
{
};

TEST_P(PageMapBijection, NoCollisionsOffsetsPreserved)
{
    layout::PageMap map(GetParam());
    std::set<Addr> seen;
    Rng rng(GetParam() ^ 0x1234);
    for (int i = 0; i < 20000; ++i) {
        Addr va = rng.next() & 0xffffffffffull; // low 16 TiB
        Addr pa = map.translate(va);
        EXPECT_EQ(pa & 0xfff, va & 0xfff) << "page offset must survive";
        Addr vpage = va >> 12;
        Addr ppage = pa >> 12;
        // Same virtual page must always map to the same physical page;
        // distinct pages must stay distinct.
        static thread_local std::map<Addr, Addr> forward;
        auto it = forward.find(vpage);
        if (it != forward.end()) {
            EXPECT_EQ(it->second, ppage);
        }
        forward[vpage] = ppage;
        (void)seen;
    }
    // Explicit injectivity check over a dense page range.
    std::set<u64> phys;
    for (u64 page = 0; page < 4096; ++page) {
        Addr pa = map.translate(page << 12);
        EXPECT_TRUE(phys.insert(pa >> 12).second)
            << "two pages collided under seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageMapBijection,
                         ::testing::Values(1u, 42u, 0xdeadbeefu));

TEST(PageMapProperties, IdentityIsIdentity)
{
    layout::PageMap identity;
    EXPECT_TRUE(identity.isIdentity());
    for (Addr a : {0x0ull, 0x400123ull, 0x7fff12345678ull})
        EXPECT_EQ(identity.translate(a), a);
}

TEST(PageMapProperties, SeedsGiveDifferentMappings)
{
    layout::PageMap a(1), b(2);
    int differ = 0;
    for (u64 page = 1; page <= 256; ++page)
        differ += a.translate(page << 12) != b.translate(page << 12);
    EXPECT_GT(differ, 200);
}

// ---------------------------------------------------------------------
// Property 5: 95% confidence intervals for the slope actually cover the
// true slope about 95% of the time.

TEST(RegressionProperties, SlopeCoverageNear95Percent)
{
    Rng rng(31);
    const double true_slope = 0.028, true_icept = 0.517;
    int covered = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        std::vector<double> xs, ys;
        for (int i = 0; i < 40; ++i) {
            double x = 5.0 + rng.nextDouble() * 3.0;
            xs.push_back(x);
            ys.push_back(true_slope * x + true_icept +
                         rng.gaussian(0, 0.01));
        }
        stats::LinearFit fit(xs, ys);
        double nu = 38.0;
        double tq = stats::studentTQuantile(0.975, nu);
        double lo = fit.slope() - tq * fit.slopeStdError();
        double hi = fit.slope() + tq * fit.slopeStdError();
        covered += (true_slope >= lo && true_slope <= hi);
    }
    double rate = double(covered) / trials;
    EXPECT_GT(rate, 0.90);
    EXPECT_LT(rate, 0.99);
}

// ---------------------------------------------------------------------
// Property 6: campaign determinism end to end — two independently
// constructed campaigns at the same seeds agree bit for bit.

TEST(CampaignProperties, EndToEndDeterminism)
{
    for (const char *name : {"456.hmmer", "471.omnetpp"}) {
        auto spec = workloads::specFor(name);
        interferometry::CampaignConfig cfg;
        cfg.instructionBudget = 50000;
        cfg.randomizeHeap = true;
        interferometry::Campaign a(spec.profile, cfg);
        interferometry::Campaign b(spec.profile, cfg);
        auto sa = a.measureLayouts(0, 3);
        auto sb = b.measureLayouts(0, 3);
        for (size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].cycles, sb[i].cycles) << name;
            EXPECT_EQ(sa[i].mispredicts, sb[i].mispredicts) << name;
            EXPECT_EQ(sa[i].l1dMisses, sb[i].l1dMisses) << name;
        }
    }
}

} // anonymous namespace
