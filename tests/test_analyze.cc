/** @file Tests for the static soundness analyzer: a seeded-unsoundness
 *  matrix proving every invariant-breaking config class is rejected by
 *  the right pass with the right entity reference, clean-acceptance
 *  checks over the default machine and bundled profiles, and the
 *  fail-closed trust boundary. Mirrors the test_verify.cc
 *  corruption-matrix style. */

#include <cstring>
#include <optional>

#include <gtest/gtest.h>

#include "analyze/analyze.hh"
#include "core/config.hh"
#include "interferometry/campaign.hh"
#include "layout/linker.hh"
#include "trace/generator.hh"
#include "trace/program.hh"
#include "trace/replay.hh"
#include "verify/verify.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using verify::EntityKind;
using verify::Severity;
using verify::VerifyResult;

/** True when the result contains a matching diagnostic. */
bool
hasDiag(const VerifyResult &r, const char *pass, EntityKind kind,
        std::optional<u64> index = std::nullopt,
        Severity severity = Severity::Error)
{
    for (const auto &d : r.diagnostics()) {
        if (d.severity != severity || std::strcmp(d.pass, pass) != 0 ||
            d.entity != kind)
            continue;
        if (index.has_value() && d.index != *index)
            continue;
        return true;
    }
    return false;
}

std::string
render(const VerifyResult &r)
{
    std::string out;
    for (const auto &d : r.diagnostics())
        out += d.text() + "\n";
    return out.empty() ? "(no diagnostics)" : out;
}

#define EXPECT_CLEAN(result)                                             \
    do {                                                                 \
        const auto &r_ = (result);                                       \
        EXPECT_EQ(r_.errorCount(), 0u) << render(r_);                    \
        EXPECT_EQ(r_.warningCount(), 0u) << render(r_);                  \
    } while (0)

core::MachineConfig
machineWith(const std::string &override_spec)
{
    core::MachineConfig m = core::MachineConfig::xeonE5440();
    std::string err;
    EXPECT_TRUE(analyze::applyConfigOverride(m, override_spec, &err))
        << err;
    return m;
}

// ---------------------------------------------------------------------
// Clean acceptance: the default machine and the bundled profiles.
// ---------------------------------------------------------------------

TEST(Analyze, DefaultConfigIsSound)
{
    EXPECT_CLEAN(
        analyze::analyzeMachine(core::MachineConfig::xeonE5440()));
}

TEST(Analyze, BundledProfilesAnalyzeClean)
{
    const auto machine = core::MachineConfig::xeonE5440();
    for (const char *name : {"400.perlbench", "429.mcf", "445.gobmk"}) {
        const auto &profile = workloads::specFor(name).profile;
        auto prog = workloads::buildProgram(profile);
        trace::TraceGenerator gen(prog, profile.behaviourSeed);
        auto tr = gen.makeTrace(30000);
        trace::ReplayPlan plan(prog, tr);
        const layout::Linker linker;
        std::vector<layout::LayoutSpec> specs;
        for (u64 seed = 0; seed < 3; ++seed) {
            layout::LayoutKey key;
            key.seed = seed;
            specs.push_back(linker.specFor(prog, key));
        }
        EXPECT_CLEAN(analyze::analyzeMachine(machine, &plan, &prog,
                                             &specs, name));
    }
}

// ---------------------------------------------------------------------
// ConfigSoundness: tag width, epoch salt, geometry, representation.
// ---------------------------------------------------------------------

TEST(Analyze, EpochSaltCollisionRejected)
{
    // 16-byte lines need 44 tag bits for the default address space —
    // two of them land inside the epoch-salt field at bits 42..47, so
    // a salted tag could alias a real line address across epochs.
    auto r = analyze::analyzeMachine(machineWith("l1i.line=16"));
    EXPECT_TRUE(hasDiag(r, "config-soundness", EntityKind::Cache, 0))
        << render(r);
    // The other caches keep 64-byte lines and stay sound.
    EXPECT_FALSE(hasDiag(r, "config-soundness", EntityKind::Cache, 1))
        << render(r);
    EXPECT_FALSE(hasDiag(r, "config-soundness", EntityKind::Cache, 2))
        << render(r);
}

TEST(Analyze, ThirtyTwoByteLinesSitAtTheSaltBoundary)
{
    // 32-byte lines need exactly kEpochShift tag bits: the widest
    // geometry that is still sound. Guards off-by-one drift in the
    // boundary comparison.
    EXPECT_CLEAN(analyze::analyzeMachine(
        machineWith("l1i.line=32,l1d.line=32,l2.line=32")));
}

TEST(Analyze, TagWidthOverflowRejectedForHugeAddressSpace)
{
    // A 2^55 line-address ceiling needs 49 tag bits with 64-byte
    // lines — past the whole 48-bit split-tag field, caught for every
    // cache level independently.
    verify::Artifacts a;
    const auto machine = core::MachineConfig::xeonE5440();
    a.machine = &machine;
    a.lineAddrCeiling = Addr{1} << 55;
    a.path = "<huge address space>";
    auto r = analyze::soundnessPasses().run(a);
    for (u64 cache : {0u, 1u, 2u})
        EXPECT_TRUE(
            hasDiag(r, "config-soundness", EntityKind::Cache, cache))
            << render(r);
}

TEST(Analyze, LruAssociativityPastRenormalizationRejected)
{
    // 33-way LRU breaks the u8-age renormalization contract (and the
    // Cache constructor would fatal); the analyzer reports it as a
    // typed diagnostic instead.
    auto r = analyze::analyzeMachine(machineWith("l2.assoc=33"));
    EXPECT_TRUE(hasDiag(r, "config-soundness", EntityKind::Cache, 2))
        << render(r);
}

TEST(Analyze, BrokenGeometryRejectedNotFatal)
{
    // Non-power-of-two line size: a typed diagnostic, no fatal().
    auto r = analyze::analyzeMachine(machineWith("l1d.line=48"));
    EXPECT_TRUE(hasDiag(r, "config-soundness", EntityKind::Cache, 1))
        << render(r);
}

TEST(Analyze, NarrowLruThresholdMatchesConstructor)
{
    const auto machine = core::MachineConfig::xeonE5440();
    // 32 KiB / 64 B = 512 lines: far below kNarrowLruLines -> stamps.
    EXPECT_FALSE(analyze::narrowLruFor(machine.hierarchy.l1i));
    // 6 MiB / 64 B = 98304 lines: narrow u8 ages.
    EXPECT_TRUE(analyze::narrowLruFor(machine.hierarchy.l2));
}

TEST(Analyze, ClaimedLruRepresentationMismatchCaught)
{
    const auto machine = core::MachineConfig::xeonE5440();

    // A sub-threshold cache claiming narrow u8 ages: the constructor
    // would pick stamps, so the claim is a seeded unsoundness.
    VerifyResult narrow_claim;
    analyze::auditLruRepresentation(machine.hierarchy.l1i,
                                    /*claimed_narrow=*/true, 0,
                                    "<claims>", narrow_claim);
    EXPECT_TRUE(hasDiag(narrow_claim, "config-soundness",
                        EntityKind::Cache, 0))
        << render(narrow_claim);

    // And the reverse: a big L2 claiming u32 stamps.
    VerifyResult stamp_claim;
    analyze::auditLruRepresentation(machine.hierarchy.l2,
                                    /*claimed_narrow=*/false, 2,
                                    "<claims>", stamp_claim);
    EXPECT_TRUE(hasDiag(stamp_claim, "config-soundness",
                        EntityKind::Cache, 2))
        << render(stamp_claim);

    // Truthful claims are clean.
    VerifyResult truthful;
    analyze::auditLruRepresentation(machine.hierarchy.l1i, false, 0,
                                    "<claims>", truthful);
    analyze::auditLruRepresentation(machine.hierarchy.l2, true, 2,
                                    "<claims>", truthful);
    EXPECT_CLEAN(truthful);
}

TEST(Analyze, BtbTagOverflowRejected)
{
    // Branch PCs at 2^33 cannot round-trip through the u32 full-PC
    // BTB tag.
    VerifyResult r;
    analyze::auditBtbConfig(1024, 4, Addr{1} << 33, "<btb>", r);
    EXPECT_TRUE(hasDiag(r, "config-soundness", EntityKind::Btb, 0))
        << render(r);

    VerifyResult ok;
    analyze::auditBtbConfig(1024, 4, Addr{1} << 31, "<btb>", ok);
    EXPECT_CLEAN(ok);
}

TEST(Analyze, BtbBadGeometryRejected)
{
    VerifyResult r;
    analyze::auditBtbConfig(1000, 4, Addr{1} << 31, "<btb>", r);
    EXPECT_TRUE(hasDiag(r, "config-soundness", EntityKind::Btb, 0))
        << render(r);
}

// ---------------------------------------------------------------------
// PlanBounds: the u32 stamp-clock wrap bound.
// ---------------------------------------------------------------------

TEST(Analyze, StampWrapBoundSeam)
{
    const auto machine = core::MachineConfig::xeonE5440();
    const u64 wrap = u64{1} << 32;

    // A stamp cache (L1I geometry) whose per-replay advance can reach
    // the wrap: victim choice could invert mid-replay.
    VerifyResult over;
    analyze::checkLruAdvanceBound(machine.hierarchy.l1i,
                                  /*claimed_narrow=*/false, wrap, 0,
                                  "<plan>", over);
    EXPECT_TRUE(hasDiag(over, "plan-bounds", EntityKind::Cache, 0))
        << render(over);

    // One below the wrap is proven safe.
    VerifyResult under;
    analyze::checkLruAdvanceBound(machine.hierarchy.l1i, false,
                                  wrap - 1, 0, "<plan>", under);
    EXPECT_CLEAN(under);

    // Narrow u8-age caches renormalize per touch: wrap-safe by
    // construction, any bound is fine.
    VerifyResult narrow;
    analyze::checkLruAdvanceBound(machine.hierarchy.l2, true,
                                  wrap * 16, 2, "<plan>", narrow);
    EXPECT_CLEAN(narrow);
}

TEST(Analyze, PlanWithWrappingAdvanceBoundRejected)
{
    // A hand-built plan whose blocks are so large the L1I fetch-line
    // bound overflows the u32 stamp clock within one replay. 70
    // events of ~4 GiB of code each bound ~4.7e9 fetch lines.
    const auto machine = core::MachineConfig::xeonE5440();
    trace::ReplayPlan plan;
    plan.site.assign(70, 0);
    plan.bytes.assign(70, 0xfff00000u);

    auto bounds = analyze::lruAdvanceBounds(machine, plan);
    EXPECT_GE(bounds.l1i, u64{1} << 32);

    auto r = analyze::analyzeMachine(machine, &plan);
    // L1I (stamps) trips the wrap bound; L2 is narrow and wrap-safe,
    // L1D advance is bounded by the (empty) memory stream.
    EXPECT_TRUE(hasDiag(r, "plan-bounds", EntityKind::Cache, 0))
        << render(r);
    EXPECT_FALSE(hasDiag(r, "plan-bounds", EntityKind::Cache, 1))
        << render(r);
    EXPECT_FALSE(hasDiag(r, "plan-bounds", EntityKind::Cache, 2))
        << render(r);
}

TEST(Analyze, AdvanceBoundsFollowPlanCounts)
{
    const auto &profile = workloads::specFor("429.mcf").profile;
    auto prog = workloads::buildProgram(profile);
    trace::TraceGenerator gen(prog, profile.behaviourSeed);
    auto tr = gen.makeTrace(20000);
    trace::ReplayPlan plan(prog, tr);

    const auto machine = core::MachineConfig::xeonE5440();
    auto bounds = analyze::lruAdvanceBounds(machine, plan);

    u64 fetch = 0;
    const u32 line = machine.hierarchy.l1i.lineBytes;
    for (u32 b : plan.bytes)
        fetch += b / line + 1;
    EXPECT_EQ(bounds.fetchLines, fetch);
    EXPECT_EQ(bounds.l1i, 2 * fetch);
    EXPECT_EQ(bounds.l1d, plan.memCount());
    EXPECT_EQ(bounds.l2, 2 * fetch + plan.memCount());
    EXPECT_EQ(bounds.forCache(0), bounds.l1i);
    EXPECT_EQ(bounds.forCache(1), bounds.l1d);
    EXPECT_EQ(bounds.forCache(2), bounds.l2);
}

// ---------------------------------------------------------------------
// LayoutInjectivity: aliased targets, zero-byte blocks, spec shape.
// ---------------------------------------------------------------------

TEST(Analyze, AliasedBranchTargetSitesCaught)
{
    // Sites 0 and 2 are both branch targets at the same address: u32
    // site tokens would call unequal targets equal. The diagnostic
    // names the higher site.
    VerifyResult r;
    analyze::checkSiteAddressInjectivity(
        {0x1000, 0x2000, 0x1000}, {1, 1, 1}, "<sites>", r);
    EXPECT_TRUE(hasDiag(r, "layout-injectivity", EntityKind::Site, 2))
        << render(r);

    // An alias is only unsound if both sites can be targets.
    VerifyResult ok;
    analyze::checkSiteAddressInjectivity({0x1000, 0x1000}, {1, 0},
                                         "<sites>", ok);
    EXPECT_CLEAN(ok);
}

/** Two-file, two-procedure program for the layout matrix. */
trace::Program
makeTwoProc(u32 zero_byte_block = ~u32{0})
{
    trace::Program prog;
    prog.addFile("a.o");
    prog.addFile("b.o");

    u32 site = 0;
    for (u32 p = 0; p < 2; ++p) {
        trace::Procedure proc;
        proc.name = p == 0 ? "main" : "callee";
        proc.fileIndex = p;
        proc.align = 16;
        for (u32 b = 0; b < 2; ++b, ++site) {
            trace::BasicBlock blk;
            blk.bytes = site == zero_byte_block ? 0 : 16;
            blk.nInsts = 4;
            if (b == 1)
                blk.branch.kind = trace::OpClass::Return;
            proc.blocks.push_back(blk);
        }
        prog.addProcedure(proc);
        prog.placeInFile(p, p);
    }
    return prog;
}

TEST(Analyze, ZeroByteBlockDefeatsInjectivity)
{
    // Dense site id 3 = callee's second block.
    auto prog = makeTwoProc(/*zero_byte_block=*/3);
    std::vector<layout::LayoutSpec> specs = {
        layout::LayoutSpec::authored(prog)};
    auto r = analyze::analyzeMachine(core::MachineConfig::xeonE5440(),
                                     nullptr, &prog, &specs);
    EXPECT_TRUE(hasDiag(r, "layout-injectivity", EntityKind::Block, 3))
        << render(r);
}

TEST(Analyze, MalformedSpecCaughtByIndex)
{
    auto prog = makeTwoProc();
    std::vector<layout::LayoutSpec> specs = {
        layout::LayoutSpec::authored(prog),
        layout::LayoutSpec::authored(prog)};
    specs[1].fileOrder = {0, 0}; // Not a permutation.
    auto r = analyze::analyzeMachine(core::MachineConfig::xeonE5440(),
                                     nullptr, &prog, &specs);
    EXPECT_FALSE(
        hasDiag(r, "layout-injectivity", EntityKind::Artifact, 0))
        << render(r);
    EXPECT_TRUE(
        hasDiag(r, "layout-injectivity", EntityKind::Artifact, 1))
        << render(r);
}

TEST(Analyze, AuthoredSpecsAreInjective)
{
    auto prog = makeTwoProc();
    std::vector<layout::LayoutSpec> specs = {
        layout::LayoutSpec::authored(prog)};
    EXPECT_CLEAN(analyze::analyzeMachine(
        core::MachineConfig::xeonE5440(), nullptr, &prog, &specs));
}

// ---------------------------------------------------------------------
// Config overrides + the fail-closed trust boundary.
// ---------------------------------------------------------------------

TEST(Analyze, ConfigOverrideRoundTrip)
{
    auto m = machineWith(
        "l1i.line=32,l2.size=12m,l2.assoc=24,l1d.repl=random,"
        "btb.sets=4096,btb.ways=8");
    EXPECT_EQ(m.hierarchy.l1i.lineBytes, 32u);
    EXPECT_EQ(m.hierarchy.l2.sizeBytes, u64{12} << 20);
    EXPECT_EQ(m.hierarchy.l2.assoc, 24u);
    EXPECT_EQ(m.hierarchy.l1d.replacement, cache::Replacement::Random);
    EXPECT_EQ(m.btbSets, 4096u);
    EXPECT_EQ(m.btbWays, 8u);
}

TEST(Analyze, ConfigOverrideErrorsAreTyped)
{
    core::MachineConfig m = core::MachineConfig::xeonE5440();
    std::string err;
    EXPECT_FALSE(analyze::applyConfigOverride(m, "bogus=1", &err));
    EXPECT_NE(err.find("unit.field=value"), std::string::npos) << err;
    EXPECT_FALSE(analyze::applyConfigOverride(m, "l3.size=1m", &err));
    EXPECT_NE(err.find("unknown unit"), std::string::npos) << err;
    EXPECT_FALSE(analyze::applyConfigOverride(m, "l1i.line=huge", &err));
    EXPECT_NE(err.find("bad numeric"), std::string::npos) << err;
    EXPECT_FALSE(analyze::applyConfigOverride(m, "btb.assoc=4", &err));
    EXPECT_NE(err.find("unknown btb field"), std::string::npos) << err;
}

TEST(AnalyzeDeathTest, RequireSoundMachinePanicsOnUnsoundConfig)
{
    auto m = machineWith("l1i.line=16");
    EXPECT_DEATH(
        analyze::requireSoundMachine(m, nullptr, "test boundary"),
        "test boundary");
}

TEST(AnalyzeDeathTest, CampaignRefusesUnsoundMachine)
{
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = 20000;
    cfg.initialLayouts = 2;
    cfg.maxLayouts = 2;
    cfg.machine.hierarchy.l1i.lineBytes = 16;
    EXPECT_DEATH(interferometry::Campaign(
                     workloads::defaultProfile("unsound"), cfg),
                 "Campaign machine config");
}

} // anonymous namespace
