/** @file Tests for hypothetical-predictor CPI prediction. */

#include <gtest/gtest.h>

#include "interferometry/predict.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using namespace interf::interferometry;

/** Model with known slope 0.028 and intercept 0.517 (paper's
 *  perlbench). */
PerformanceModel
perlbenchModel()
{
    Rng rng(1);
    std::vector<core::Measurement> samples;
    for (int i = 0; i < 150; ++i) {
        core::Measurement m;
        m.instructions = 1000000;
        m.mpki = 5.8 + rng.nextDouble() * 1.4;
        m.l1iMpki = 0.5;
        m.l2Mpki = 0.2;
        m.cpi = 0.02799 * m.mpki + 0.51667 + rng.gaussian(0, 0.004);
        samples.push_back(m);
    }
    return PerformanceModel("400.perlbench", samples);
}

TEST(Predict, PerfectPredictionImprovement)
{
    auto model = perlbenchModel();
    // Real CPI at the observed mean MPKI (~6.5): about 0.70.
    double real_cpi = model.predictCpi(model.meanMpki());
    PredictorEvaluator eval(model, real_cpi);
    auto perfect = eval.evaluatePerfect();
    // Section 1.4: perfect predictor -> CPI 0.517 +- 0.029, a ~26%
    // improvement.
    EXPECT_NEAR(perfect.cpi, 0.517, 0.02);
    EXPECT_NEAR(perfect.improvementVsReal, 0.26, 0.04);
    EXPECT_TRUE(perfect.pi.contains(0.517));
    EXPECT_LT(perfect.pi.width(), 0.1);
}

TEST(Predict, HalvingMpkiStory)
{
    auto model = perlbenchModel();
    double real_cpi = model.predictCpi(6.50);
    PredictorEvaluator eval(model, real_cpi);
    // Section 1.4: halving MPKI from 6.50 to 3.25 improves CPI ~13% to
    // ~0.61.
    auto half = eval.evaluate("half-mpki", 3.25);
    EXPECT_NEAR(half.cpi, 0.61, 0.02);
    EXPECT_NEAR(half.improvementVsReal, 0.13, 0.03);
}

TEST(Predict, MpkiReductionForTenPercentCpi)
{
    auto model = perlbenchModel();
    double real_cpi = model.predictCpi(6.50);
    PredictorEvaluator eval(model, real_cpi);
    // Section 1.4: "a 10% improvement in CPI ... would require a 38%
    // reduction in mispredictions".
    double reduction = eval.mpkiReductionForCpiGain(0.10);
    EXPECT_NEAR(reduction, 0.38, 0.05);
}

TEST(Predict, ImprovementIntervalFlipsBounds)
{
    auto model = perlbenchModel();
    PredictorEvaluator eval(model, 0.70);
    auto p = eval.evaluate("x", 3.0);
    // Lower CPI bound -> higher improvement bound.
    EXPECT_LE(p.improvementInterval.lo, p.improvementVsReal);
    EXPECT_GE(p.improvementInterval.hi, p.improvementVsReal);
    EXPECT_NEAR(p.improvementInterval.lo,
                (0.70 - p.pi.hi) / 0.70, 1e-12);
}

TEST(Predict, ZeroGainNeedsZeroReduction)
{
    auto model = perlbenchModel();
    PredictorEvaluator eval(model, 0.70);
    EXPECT_DOUBLE_EQ(eval.mpkiReductionForCpiGain(0.0), 0.0);
}

TEST(Predict, WorsePredictorNegativeImprovement)
{
    auto model = perlbenchModel();
    double real_cpi = model.predictCpi(6.5);
    PredictorEvaluator eval(model, real_cpi);
    auto worse = eval.evaluate("worse", 12.0);
    EXPECT_LT(worse.improvementVsReal, 0.0);
    EXPECT_GT(worse.cpi, real_cpi);
}

TEST(Predict, NamesCarriedThrough)
{
    auto model = perlbenchModel();
    PredictorEvaluator eval(model, 0.7);
    EXPECT_EQ(eval.evaluate("ltage", 4.0).predictor, "ltage");
    EXPECT_EQ(eval.evaluatePerfect().predictor, "perfect");
    EXPECT_EQ(eval.evaluatePerfect().mpki, 0.0);
}

TEST(PredictDeathTest, NonPositiveRealCpiPanics)
{
    auto model = perlbenchModel();
    EXPECT_DEATH(PredictorEvaluator(model, 0.0), "assertion");
}

} // anonymous namespace
