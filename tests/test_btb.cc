/** @file Tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "bpred/btb.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Btb, MissWhenCold)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x400100).hit);
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(64, 4);
    btb.update(0x400100, 0x400800);
    auto res = btb.lookup(0x400100);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.target, 0x400800u);
}

TEST(Btb, TargetRefreshedOnUpdate)
{
    Btb btb(64, 4);
    btb.update(0x400100, 0x400800);
    btb.update(0x400100, 0x400900); // indirect branch changed target
    EXPECT_EQ(btb.lookup(0x400100).target, 0x400900u);
}

TEST(Btb, AssociativityHoldsConflictingBranches)
{
    Btb btb(16, 4);
    // Four branches in the same set (stride = sets * line granularity
    // of the index): all must coexist.
    Addr base = 0x400000;
    std::vector<Addr> pcs;
    // find 4 pcs with identical set index
    Btb probe(16, 1);
    u32 want = 0;
    for (Addr pc = base; pcs.size() < 4; pc += 1) {
        Btb tmp(16, 1);
        tmp.update(pc, 1);
        // derive set by checking conflict behaviour instead: simpler,
        // use the documented index: pc ^ (pc >> 13) masked.
        u32 set = static_cast<u32>(pc ^ (pc >> 13)) & 15u;
        if (pcs.empty())
            want = set;
        if (set == want)
            pcs.push_back(pc);
    }
    for (size_t i = 0; i < pcs.size(); ++i)
        btb.update(pcs[i], 0x1000 + i);
    for (size_t i = 0; i < pcs.size(); ++i) {
        auto res = btb.lookup(pcs[i]);
        EXPECT_TRUE(res.hit);
        EXPECT_EQ(res.target, 0x1000 + i);
    }
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(1, 2); // one set, two ways
    btb.update(0x1, 0x100);
    btb.update(0x2, 0x200);
    btb.update(0x1, 0x100); // refresh 0x1
    btb.update(0x3, 0x300); // evicts 0x2 (LRU)
    EXPECT_TRUE(btb.lookup(0x1).hit);
    EXPECT_FALSE(btb.lookup(0x2).hit);
    EXPECT_TRUE(btb.lookup(0x3).hit);
}

TEST(Btb, LookupDoesNotPerturbLru)
{
    Btb btb(1, 2);
    btb.update(0x1, 0x100);
    btb.update(0x2, 0x200);
    (void)btb.lookup(0x1); // must NOT refresh
    btb.update(0x3, 0x300); // evicts 0x1 (oldest by update)
    EXPECT_FALSE(btb.lookup(0x1).hit);
    EXPECT_TRUE(btb.lookup(0x2).hit);
}

TEST(Btb, ResetEmptiesAllEntries)
{
    Btb btb(16, 2);
    for (Addr pc = 0; pc < 64; ++pc)
        btb.update(0x400000 + pc * 4, pc);
    btb.reset();
    for (Addr pc = 0; pc < 64; ++pc)
        EXPECT_FALSE(btb.lookup(0x400000 + pc * 4).hit);
}

TEST(Btb, GeometryAccessors)
{
    Btb btb(1024, 4);
    EXPECT_EQ(btb.sets(), 1024u);
    EXPECT_EQ(btb.ways(), 4u);
    EXPECT_GT(btb.sizeBits(), 0u);
}

TEST(BtbDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(Btb(100, 4), "assertion");
    EXPECT_DEATH(Btb(64, 0), "assertion");
}

} // anonymous namespace
