/** @file Tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "bpred/btb.hh"

namespace
{

using namespace interf;
using namespace interf::bpred;

TEST(Btb, MissWhenCold)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x400100).hit);
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(64, 4);
    btb.update(0x400100, 0x400800);
    auto res = btb.lookup(0x400100);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.target, 0x400800u);
}

TEST(Btb, TargetRefreshedOnUpdate)
{
    Btb btb(64, 4);
    btb.update(0x400100, 0x400800);
    btb.update(0x400100, 0x400900); // indirect branch changed target
    EXPECT_EQ(btb.lookup(0x400100).target, 0x400900u);
}

TEST(Btb, AssociativityHoldsConflictingBranches)
{
    Btb btb(16, 4);
    // Four branches in the same set (stride = sets * line granularity
    // of the index): all must coexist.
    Addr base = 0x400000;
    std::vector<Addr> pcs;
    // find 4 pcs with identical set index
    Btb probe(16, 1);
    u32 want = 0;
    for (Addr pc = base; pcs.size() < 4; pc += 1) {
        Btb tmp(16, 1);
        tmp.update(pc, 1);
        // derive set by checking conflict behaviour instead: simpler,
        // use the documented index: pc ^ (pc >> 13) masked.
        u32 set = static_cast<u32>(pc ^ (pc >> 13)) & 15u;
        if (pcs.empty())
            want = set;
        if (set == want)
            pcs.push_back(pc);
    }
    for (size_t i = 0; i < pcs.size(); ++i)
        btb.update(pcs[i], static_cast<u32>(0x1000 + i));
    for (size_t i = 0; i < pcs.size(); ++i) {
        auto res = btb.lookup(pcs[i]);
        EXPECT_TRUE(res.hit);
        EXPECT_EQ(res.target, 0x1000 + i);
    }
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(1, 2); // one set, two ways
    btb.update(0x1, 0x100);
    btb.update(0x2, 0x200);
    btb.update(0x1, 0x100); // refresh 0x1
    btb.update(0x3, 0x300); // evicts 0x2 (LRU)
    EXPECT_TRUE(btb.lookup(0x1).hit);
    EXPECT_FALSE(btb.lookup(0x2).hit);
    EXPECT_TRUE(btb.lookup(0x3).hit);
}

TEST(Btb, LookupDoesNotPerturbLru)
{
    Btb btb(1, 2);
    btb.update(0x1, 0x100);
    btb.update(0x2, 0x200);
    (void)btb.lookup(0x1); // must NOT refresh
    btb.update(0x3, 0x300); // evicts 0x1 (oldest by update)
    EXPECT_FALSE(btb.lookup(0x1).hit);
    EXPECT_TRUE(btb.lookup(0x2).hit);
}

TEST(Btb, ResetEmptiesAllEntries)
{
    Btb btb(16, 2);
    for (Addr pc = 0; pc < 64; ++pc)
        btb.update(0x400000 + pc * 4, static_cast<u32>(pc));
    btb.reset();
    for (Addr pc = 0; pc < 64; ++pc)
        EXPECT_FALSE(btb.lookup(0x400000 + pc * 4).hit);
}

TEST(Btb, RepeatedResetNeverResurrectsEntries)
{
    // reset() must empty the BTB no matter how many resets precede it
    // (a lazy epoch-versioned reset was tried and reverted here — see
    // btb.cc — and this property is what any future scheme has to
    // keep): entries installed before any reset must never resurface
    // after it. Drive many reset cycles touching a rotating subset of
    // sets, the aliasing-prone pattern for generation-tag schemes.
    Btb btb(16, 2);
    for (int epoch = 0; epoch < 600; ++epoch) {
        Addr pc = 0x400000 + static_cast<Addr>(epoch % 7) * 4;
        EXPECT_FALSE(btb.lookup(pc).hit) << "epoch " << epoch;
        btb.update(pc, static_cast<u32>(epoch));
        auto res = btb.lookup(pc);
        EXPECT_TRUE(res.hit);
        EXPECT_EQ(res.target, static_cast<u32>(epoch));
        btb.reset();
    }
    // And a fully-populated BTB must be fully empty after the 600th.
    for (Addr pc = 0; pc < 64; ++pc)
        btb.update(0x400000 + pc * 4, 7);
    btb.reset();
    for (Addr pc = 0; pc < 64; ++pc)
        EXPECT_FALSE(btb.lookup(0x400000 + pc * 4).hit);
}

TEST(Btb, HintedProbeMatchesUnhinted)
{
    // A hint can change the cost of a probe, never its result: for
    // any hint value (stale, out-of-range, or the 0xff "no hint"
    // sentinel), probeWayHinted must agree with probeWay.
    Btb btb(16, 4);
    btb.setHintCounting(true);
    for (Addr pc = 0; pc < 128; ++pc)
        btb.update(0x400000 + pc * 4, static_cast<u32>(pc));
    for (Addr pc = 0; pc < 160; ++pc) {
        Addr a = 0x400000 + pc * 4;
        u32 want = btb.probeWay(a);
        for (u32 hint : {0u, 1u, 3u, 4u, 17u, 0xffu})
            EXPECT_EQ(btb.probeWayHinted(a, hint), want)
                << "pc=" << a << " hint=" << hint;
    }
    // Stale hints (the entry moved ways or was evicted) still agree.
    btb.reset();
    btb.update(0x400000, 1);
    for (u32 hint : {0u, 1u, 2u, 3u, 0xffu})
        EXPECT_EQ(btb.probeWayHinted(0x400000, hint),
                  btb.probeWay(0x400000));
    EXPECT_GT(btb.hintStats().probes, 0u);
}

TEST(Btb, GeometryAccessors)
{
    Btb btb(1024, 4);
    EXPECT_EQ(btb.sets(), 1024u);
    EXPECT_EQ(btb.ways(), 4u);
    EXPECT_GT(btb.sizeBits(), 0u);
}

TEST(BtbDeathTest, BadGeometryIsFatal)
{
    // Construction-time validation is a typed user-facing diagnostic
    // (exit code 1 with an actionable message), not an assertion: a
    // non-power-of-two set count would otherwise silently alias sets
    // through the index mask.
    EXPECT_EXIT(Btb(100, 4), ::testing::ExitedWithCode(1),
                "not a power of two");
    EXPECT_EXIT(Btb(64, 0), ::testing::ExitedWithCode(1),
                "associativity must be >= 1");
    EXPECT_EXIT(Btb(64, 33), ::testing::ExitedWithCode(1),
                "exceeds 32");
}

} // anonymous namespace
