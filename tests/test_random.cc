/** @file Tests for the seeded PRNG (util/random). */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hh"

namespace
{

using interf::Rng;
using interf::u64;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng rng(0);
    std::set<u64> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng.next());
    EXPECT_GT(seen.size(), 95u); // not stuck on a fixed point
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    for (u64 bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0, sum2 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(23);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(29);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += double(rng.geometric(0.5));
    // failures before first success: mean (1-p)/p = 1.
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    auto copy = v;
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(copy, sorted);
}

TEST(Rng, PermutationValid)
{
    Rng rng(37);
    auto p = rng.permutation(100);
    std::set<interf::u32> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(42), b(42);
    Rng fa = a.fork(5), fb = b.fork(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForkStreamsIndependent)
{
    Rng root(42);
    Rng s1 = root.fork(1), s2 = root.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += s1.next() == s2.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkDoesNotPerturbParent)
{
    Rng a(42), b(42);
    (void)a.fork(99);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), b.next());
}

/** Chi-squared-ish uniformity sanity for the raw generator. */
TEST(Rng, LowBitsBalanced)
{
    Rng rng(101);
    int ones = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ones += rng.next() & 1;
    EXPECT_NEAR(ones / double(n), 0.5, 0.01);
}

TEST(SplitMix64, KnownSequenceIsStable)
{
    u64 s1 = 0, s2 = 0;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(interf::splitmix64(s1), interf::splitmix64(s2));
}

} // anonymous namespace
