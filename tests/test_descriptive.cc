/** @file Tests for descriptive statistics. */

#include <cmath>

#include <gtest/gtest.h>

#include "stats/descriptive.hh"

namespace
{

using namespace interf::stats;

TEST(Descriptive, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({5}), 5.0);
    EXPECT_DOUBLE_EQ(mean({-1, 1}), 0.0);
}

TEST(Descriptive, SampleVariance)
{
    // Known: var of {2,4,4,4,5,5,7,9} population=4, sample=32/7.
    std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(sampleVariance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(sampleStdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, VarianceOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(sampleVariance({3, 3, 3, 3}), 0.0);
}

TEST(Descriptive, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Descriptive, MedianDoesNotMutateInput)
{
    std::vector<double> xs{3, 1, 2};
    (void)median(xs);
    EXPECT_EQ(xs, (std::vector<double>{3, 1, 2}));
}

TEST(Descriptive, MedianIndexOdd)
{
    // values: index of the median element (5 runs, pick median cycles).
    std::vector<double> xs{50, 10, 30, 20, 40};
    EXPECT_EQ(medianIndex(xs), 2u); // 30 is the median
}

TEST(Descriptive, MedianIndexEvenPicksLowerMiddle)
{
    std::vector<double> xs{40, 10, 30, 20};
    EXPECT_EQ(medianIndex(xs), 3u); // sorted: 10,20,30,40 -> 20
}

TEST(Descriptive, MedianIndexSingleton)
{
    std::vector<double> xs{42};
    EXPECT_EQ(medianIndex(xs), 0u);
}

TEST(Descriptive, Percentiles)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 1.5); // interpolated
}

TEST(Descriptive, MinMax)
{
    std::vector<double> xs{3, -7, 12, 0};
    EXPECT_DOUBLE_EQ(minValue(xs), -7.0);
    EXPECT_DOUBLE_EQ(maxValue(xs), 12.0);
}

TEST(Descriptive, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{2, 4, 6, 8};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> neg{8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Descriptive, PearsonUncorrelated)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys{1, -1, 1, -1};
    EXPECT_NEAR(pearson(xs, ys), -0.4472, 1e-3);
}

TEST(Descriptive, PearsonConstantInputIsZero)
{
    std::vector<double> xs{5, 5, 5, 5};
    std::vector<double> ys{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Descriptive, SummaryBundle)
{
    auto s = summarize({1, 2, 3, 4, 5});
    EXPECT_EQ(s.n, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_NEAR(s.stdDev, std::sqrt(2.5), 1e-12);
}

TEST(DescriptiveDeathTest, EmptyInputsPanic)
{
    EXPECT_DEATH((void)mean({}), "assertion");
    EXPECT_DEATH((void)median({}), "assertion");
    EXPECT_DEATH((void)sampleVariance({1.0}), "assertion");
}

} // anonymous namespace
