/** @file Tests for the artifact verifier passes: a seeded-corruption
 *  matrix proving every mutation class is flagged by the right pass
 *  with the right entity reference, and a clean-artifact property test
 *  proving the passes emit zero diagnostics across profiles and seeds. */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>

#include <gtest/gtest.h>

#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "store/format.hh"
#include "store/store.hh"
#include "trace/generator.hh"
#include "trace/io.hh"
#include "trace/program.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"
#include "util/digest.hh"
#include "verify/verify.hh"
#include "workloads/builder.hh"
#include "workloads/spec.hh"

namespace
{

namespace fs = std::filesystem;
using namespace interf;
using verify::EntityKind;
using verify::Severity;
using verify::VerifyResult;

/** True when the result contains a matching diagnostic. */
bool
hasDiag(const VerifyResult &r, const char *pass, EntityKind kind,
        std::optional<u64> index = std::nullopt,
        Severity severity = Severity::Error)
{
    for (const auto &d : r.diagnostics()) {
        if (d.severity != severity || std::strcmp(d.pass, pass) != 0 ||
            d.entity != kind)
            continue;
        if (index.has_value() && d.index != *index)
            continue;
        return true;
    }
    return false;
}

/** Render every diagnostic for failure messages. */
std::string
render(const VerifyResult &r)
{
    std::string out;
    for (const auto &d : r.diagnostics())
        out += d.text() + "\n";
    return out.empty() ? "(no diagnostics)" : out;
}

#define EXPECT_CLEAN(result)                                             \
    do {                                                                 \
        const auto &r_ = (result);                                       \
        EXPECT_EQ(r_.errorCount(), 0u) << render(r_);                    \
        EXPECT_EQ(r_.warningCount(), 0u) << render(r_);                  \
    } while (0)

// ---------------------------------------------------------------------
// ProgramVerifier: corrupt programs built through the public API.
// ---------------------------------------------------------------------

/** Mutable pieces of the tiny two-procedure test program. */
struct TinySpec
{
    std::vector<trace::Procedure> procs;
    std::vector<std::pair<trace::RegionKind, u64>> regions;
    /** (file index, proc id) placements; files are {"a.o", "b.o"}. */
    std::vector<std::pair<u32, u32>> placements;
};

trace::Program
makeTiny(const std::function<void(TinySpec &)> &mutate = nullptr)
{
    using trace::BasicBlock;
    using trace::MemPattern;
    using trace::MemRef;
    using trace::OpClass;
    using trace::Procedure;

    TinySpec spec;
    spec.regions = {{trace::RegionKind::Global, 4096},
                    {trace::RegionKind::Heap, 65536}};
    spec.placements = {{0, 0}, {1, 1}};

    Procedure main;
    main.name = "main";
    main.fileIndex = 0;
    main.align = 16;
    {
        BasicBlock b0;
        b0.bytes = 12;
        b0.nInsts = 3;
        MemRef load;
        load.regionId = 0;
        load.pattern = MemPattern::Stride;
        load.stride = 8;
        b0.memRefs.push_back(load);
        b0.branch.kind = OpClass::CondBranch;
        b0.branch.pattern = trace::BranchPattern::Biased;
        b0.branch.takenProb = 0.6f;
        b0.branch.targetProc = 0;
        b0.branch.targetBlock = 2;
        main.blocks.push_back(b0);

        BasicBlock b1;
        b1.bytes = 8;
        b1.nInsts = 2;
        b1.branch.kind = OpClass::Call;
        b1.branch.targetProc = 1;
        b1.branch.targetBlock = 0;
        main.blocks.push_back(b1);

        BasicBlock b2;
        b2.bytes = 16;
        b2.nInsts = 4;
        MemRef store;
        store.regionId = 1;
        store.isStore = true;
        store.pattern = MemPattern::Random;
        b2.memRefs.push_back(store);
        b2.branch.kind = OpClass::Return;
        main.blocks.push_back(b2);
    }
    spec.procs.push_back(main);

    Procedure callee;
    callee.name = "callee";
    callee.fileIndex = 1;
    callee.align = 32;
    {
        BasicBlock b0;
        b0.bytes = 8;
        b0.nInsts = 2; // Branchless: falls through to b1.
        callee.blocks.push_back(b0);

        BasicBlock b1;
        b1.bytes = 4;
        b1.nInsts = 1;
        b1.branch.kind = OpClass::Return;
        callee.blocks.push_back(b1);
    }
    spec.procs.push_back(callee);

    if (mutate)
        mutate(spec);

    trace::Program prog;
    prog.addFile("a.o");
    prog.addFile("b.o");
    for (const auto &[kind, size] : spec.regions)
        prog.addRegion(kind, size);
    for (auto &p : spec.procs)
        prog.addProcedure(p);
    for (const auto &[file, pid] : spec.placements)
        prog.placeInFile(file, pid);
    return prog;
}

TEST(ProgramVerifier, CleanTinyProgramHasNoDiagnostics)
{
    EXPECT_CLEAN(verify::verifyProgram(makeTiny()));
}

TEST(ProgramVerifier, BranchTargetProcedureOutOfRange)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[0].blocks[1].branch.targetProc = 99;
    });
    auto r = verify::verifyProgram(prog);
    // Site 1 = main's second block, dense proc-major numbering.
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Branch, 1))
        << render(r);
}

TEST(ProgramVerifier, BranchTargetBlockOutOfRange)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[0].blocks[0].branch.targetBlock = 57;
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Branch, 0))
        << render(r);
}

TEST(ProgramVerifier, IndirectTargetWindowOverrunsProcedure)
{
    auto prog = makeTiny([](TinySpec &s) {
        auto &br = s.procs[0].blocks[1].branch;
        br.kind = trace::OpClass::IndirectBranch;
        br.targetProc = 1;
        br.targetBlock = 1;
        br.indirectTargets = 4; // Window [1, 5) in a 2-block callee.
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Branch, 1))
        << render(r);
}

TEST(ProgramVerifier, ConditionalBranchWithoutPattern)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[0].blocks[0].branch.pattern =
            trace::BranchPattern::None;
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Branch, 0))
        << render(r);
}

TEST(ProgramVerifier, ProcedureInTwoObjectFiles)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.placements.push_back({1, 0}); // main also listed in b.o.
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Procedure, 0))
        << render(r);
}

TEST(ProgramVerifier, ProcedureInNoObjectFile)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.placements = {{0, 0}}; // callee never placed.
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Procedure, 1))
        << render(r);
}

TEST(ProgramVerifier, PeriodicBranchWithZeroPeriod)
{
    auto prog = makeTiny([](TinySpec &s) {
        auto &br = s.procs[0].blocks[0].branch;
        br.pattern = trace::BranchPattern::Periodic;
        br.period = 0;
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Branch, 0))
        << render(r);
}

TEST(ProgramVerifier, AlignmentNotPowerOfTwo)
{
    auto prog = makeTiny([](TinySpec &s) { s.procs[1].align = 12; });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Procedure, 1))
        << render(r);
}

TEST(ProgramVerifier, ZeroByteBlock)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[1].blocks[0].bytes = 0;
    });
    auto r = verify::verifyProgram(prog);
    // Site 3 = callee's first block (main has 3 blocks).
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Block, 3))
        << render(r);
}

TEST(ProgramVerifier, MemRefNamesRegionOutOfRange)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[0].blocks[2].memRefs[0].regionId = 7;
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::MemRef, 2))
        << render(r);
}

TEST(ProgramVerifier, MemRefTargetsEmptyRegion)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.regions[0].second = 0;
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::MemRef, 0))
        << render(r);
}

TEST(ProgramVerifier, StrideRefWithZeroStride)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[0].blocks[0].memRefs[0].stride = 0;
    });
    auto r = verify::verifyProgram(prog);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::MemRef, 0))
        << render(r);
}

TEST(ProgramVerifier, StructureDigestMismatchDetected)
{
    auto prog = makeTiny();
    verify::Artifacts a;
    a.program = &prog;
    a.expectedProgramDigest =
        trace::programStructureDigest(prog) ^ 0x1234;
    auto r = verify::PassManager::standard().run(a);
    EXPECT_TRUE(hasDiag(r, "program", EntityKind::Artifact, 0))
        << render(r);
}

// ---------------------------------------------------------------------
// TraceVerifier: a real generated trace, mutated one field at a time.
// ---------------------------------------------------------------------

struct TraceFixture
{
    trace::Program prog;
    trace::Trace trace;

    TraceFixture()
        : prog(workloads::buildProgram(
              workloads::specFor("429.mcf").profile))
    {
        trace::TraceGenerator gen(prog, 42);
        trace = gen.makeTrace(20000);
    }

    /** First event index satisfying @p pred. */
    size_t findEvent(
        const std::function<bool(const trace::BlockEvent &,
                                 const trace::BasicBlock &)> &pred) const
    {
        for (size_t i = 0; i < trace.events.size(); ++i) {
            const auto &ev = trace.events[i];
            if (pred(ev, prog.block(ev.proc, ev.block)))
                return i;
        }
        ADD_FAILURE() << "fixture trace lacks the wanted event shape";
        return 0;
    }
};

TEST(TraceVerifier, CleanGeneratedTraceHasNoDiagnostics)
{
    TraceFixture f;
    EXPECT_CLEAN(verify::verifyTrace(f.prog, f.trace));
}

TEST(TraceVerifier, EventProcedureOutOfRange)
{
    TraceFixture f;
    f.trace.events[5].proc = 0xffff;
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Event, 5)) << render(r);
}

TEST(TraceVerifier, EventBlockOutOfRange)
{
    TraceFixture f;
    f.trace.events[9].block = 0xfffe;
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Event, 9)) << render(r);
}

TEST(TraceVerifier, TakenFlagOnBranchlessBlock)
{
    TraceFixture f;
    const size_t i = f.findEvent(
        [](const trace::BlockEvent &, const trace::BasicBlock &bb) {
            return !bb.branch.exists();
        });
    f.trace.events[i].taken = 1;
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Event, i)) << render(r);
}

TEST(TraceVerifier, IndirectChoiceOnNonIndirectEvent)
{
    TraceFixture f;
    const size_t i = f.findEvent(
        [](const trace::BlockEvent &, const trace::BasicBlock &bb) {
            return bb.branch.kind != trace::OpClass::IndirectBranch;
        });
    f.trace.events[i].indirectChoice = 3;
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Event, i)) << render(r);
}

TEST(TraceVerifier, MemoryAccessNamesWrongRegion)
{
    TraceFixture f;
    ASSERT_FALSE(f.trace.memIds.empty());
    const u32 bad_region =
        static_cast<u32>(f.prog.regions().size()) + 5;
    f.trace.memIds[0] = trace::makeDataId(bad_region, 0);
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::MemAccess, 0))
        << render(r);
}

TEST(TraceVerifier, MemoryAccessOffsetOutsideRegion)
{
    TraceFixture f;
    ASSERT_FALSE(f.trace.memIds.empty());
    // Keep the access's own region so only the offset is wrong.
    const u32 region = trace::dataIdRegion(f.trace.memIds[0]);
    const u64 size = f.prog.region(region).size;
    f.trace.memIds[0] = trace::makeDataId(region, size + 64);
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::MemAccess, 0))
        << render(r);
}

TEST(TraceVerifier, MemoryStreamLengthMismatch)
{
    TraceFixture f;
    ASSERT_FALSE(f.trace.memIds.empty());
    f.trace.memIds.pop_back();
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Artifact, 0))
        << render(r);
}

TEST(TraceVerifier, HeaderInstructionCountMismatch)
{
    TraceFixture f;
    f.trace.instCount += 7;
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Artifact, 0))
        << render(r);
}

TEST(TraceVerifier, FlippedOutcomeBreaksContinuity)
{
    TraceFixture f;
    // A conditional whose taken target differs from its fall-through,
    // so flipping the outcome must contradict the recorded successor.
    const size_t i = f.findEvent(
        [](const trace::BlockEvent &ev, const trace::BasicBlock &bb) {
            const auto &br = bb.branch;
            return br.isConditional() &&
                   !(br.targetProc == ev.proc &&
                     br.targetBlock == ev.block + 1);
        });
    f.trace.events[i].taken ^= 1;
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Event, i + 1))
        << render(r);
}

TEST(TraceVerifier, TraceMustStartAtMainEntry)
{
    TraceFixture f;
    f.trace.events[0].block = 1; // Main has >1 block in this profile.
    auto r = verify::verifyTrace(f.prog, f.trace);
    EXPECT_TRUE(hasDiag(r, "trace", EntityKind::Event, 0)) << render(r);
}

// ---------------------------------------------------------------------
// ReplayPlanVerifier: structural and equivalence mutations.
// ---------------------------------------------------------------------

struct PlanFixture : TraceFixture
{
    trace::ReplayPlan plan;

    PlanFixture() : plan(prog, trace) {}

    VerifyResult check() const
    {
        return verify::verifyPlan(prog, trace, plan);
    }
};

TEST(ReplayPlanVerifier, CleanCompiledPlanHasNoDiagnostics)
{
    PlanFixture f;
    EXPECT_CLEAN(f.check());
}

TEST(ReplayPlanVerifier, SoAArraySizeMismatch)
{
    PlanFixture f;
    f.plan.flags.pop_back();
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Artifact, 0))
        << render(r);
}

TEST(ReplayPlanVerifier, EventSiteOutOfRange)
{
    PlanFixture f;
    f.plan.site[3] = static_cast<u32>(f.plan.siteCount()) + 10;
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Event, 3))
        << render(r);
}

TEST(ReplayPlanVerifier, TargetSiteOutOfRange)
{
    PlanFixture f;
    f.plan.targetSite[4] = static_cast<u32>(f.plan.siteCount());
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Event, 4))
        << render(r);
}

TEST(ReplayPlanVerifier, MemoryRankOutOfRange)
{
    PlanFixture f;
    ASSERT_FALSE(f.plan.memRank.empty());
    f.plan.memRank[0] = static_cast<u32>(f.plan.memUniverse.size());
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::MemAccess, 0))
        << render(r);
}

TEST(ReplayPlanVerifier, ProcFirstSiteNotDense)
{
    PlanFixture f;
    ASSERT_GT(f.plan.procFirstSite.size(), 1u);
    f.plan.procFirstSite[1] += 1;
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Site))
        << render(r);
}

TEST(ReplayPlanVerifier, FlippedFlagBitBreaksEquivalence)
{
    PlanFixture f;
    f.plan.flags[6] ^= trace::ReplayPlan::kTaken;
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Event, 6))
        << render(r);
}

TEST(ReplayPlanVerifier, FlippedStoreFlagBreaksEquivalence)
{
    PlanFixture f;
    ASSERT_FALSE(f.plan.memIsStore.empty());
    f.plan.memIsStore[0] ^= 1;
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::MemAccess, 0))
        << render(r);
}

TEST(ReplayPlanVerifier, FlippedConditionalOutcomeBreaksEquivalence)
{
    PlanFixture f;
    ASSERT_FALSE(f.plan.condTaken.empty());
    f.plan.condTaken[0] ^= 1;
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Event))
        << render(r);
}

TEST(ReplayPlanVerifier, InstCountMismatchBreaksEquivalence)
{
    PlanFixture f;
    f.plan.instCount += 1;
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "replay-plan", EntityKind::Artifact, 0))
        << render(r);
}

// ---------------------------------------------------------------------
// LayoutVerifier: real layouts, plus hand-built corrupt tables through
// the verifyPlacements/verifyPageTable seams.
// ---------------------------------------------------------------------

TEST(LayoutVerifier, LinkedLayoutsVerifyClean)
{
    auto prog = workloads::buildProgram(
        workloads::specFor("429.mcf").profile);
    const layout::Linker linker;
    for (u64 seed : {0ull, 1ull, 17ull}) {
        layout::LayoutKey key;
        key.seed = seed;
        EXPECT_CLEAN(
            verify::verifyLayout(prog, linker.link(prog, key)));
    }
}

TEST(LayoutVerifier, OverlappingPlacementsDetected)
{
    auto prog = makeTiny();
    const layout::Linker linker;
    auto code = linker.link(prog, layout::LayoutKey::identity());
    std::vector<Addr> bases = {code.procBase(0), code.procBase(0)};
    VerifyResult r;
    verify::verifyPlacements(prog, bases, "<test>", r);
    EXPECT_TRUE(hasDiag(r, "layout", EntityKind::Placement))
        << render(r);
}

TEST(LayoutVerifier, MisalignedPlacementDetected)
{
    auto prog = makeTiny();
    // Far apart (no overlap), but proc 1 off its 32-byte alignment.
    std::vector<Addr> bases = {0x400000, 0x500010};
    VerifyResult r;
    verify::verifyPlacements(prog, bases, "<test>", r);
    EXPECT_TRUE(hasDiag(r, "layout", EntityKind::Placement, 1))
        << render(r);
}

TEST(LayoutVerifier, DuplicatePhysicalPageDetected)
{
    VerifyResult r;
    verify::verifyPageTable({0, 1, 1, 3}, "<test>", r);
    EXPECT_TRUE(hasDiag(r, "layout", EntityKind::Page, 2)) << render(r);
}

TEST(LayoutVerifier, SeededPageMapsAreBijective)
{
    for (u64 seed : {1ull, 2ull, 99ull}) {
        const layout::PageMap pages(seed);
        VerifyResult r;
        verify::verifyPageMap(pages, 1u << 12, "<test>", r);
        EXPECT_CLEAN(r);
    }
    const layout::PageMap identity;
    VerifyResult r;
    verify::verifyPageMap(identity, 1u << 12, "<test>", r);
    EXPECT_CLEAN(r);
}

// ---------------------------------------------------------------------
// StoreVerifier: on-disk mutations of a real store entry.
// ---------------------------------------------------------------------

struct StoreFixture
{
    static constexpr u64 kKey = 0x1234abcd5678ef01ULL;

    std::string root;

    StoreFixture()
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root = ::testing::TempDir() + "interf_verify_" +
               info->test_suite_name() + "_" + info->name();
        fs::remove_all(root);
        fs::create_directories(root);

        store::CampaignStore st(root, kKey);
        std::vector<core::Measurement> samples(4);
        for (u32 i = 0; i < samples.size(); ++i) {
            samples[i].layoutSeed = i;
            samples[i].cycles = 1000 + i;
            samples[i].instructions = 900 + i;
        }
        st.appendBatch(0, samples);
    }

    ~StoreFixture() { fs::remove_all(root); }

    std::string manifest() const
    {
        return root + "/" + digestHex(kKey) + "/manifest.bin";
    }

    std::string batch0() const
    {
        return root + "/" + digestHex(kKey) + "/batch-00000000.bin";
    }

    void flipByte(const std::string &path, size_t offset) const
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(f) << path;
        f.seekg(static_cast<std::streamoff>(offset));
        char c = 0;
        f.get(c);
        f.seekp(static_cast<std::streamoff>(offset));
        f.put(static_cast<char>(c ^ 0x5a));
        ASSERT_TRUE(f) << path;
    }

    void truncate(const std::string &path, size_t keep) const
    {
        fs::resize_file(path, keep);
    }

    VerifyResult check(bool deep = true) const
    {
        return verify::verifyStoreEntry(root, kKey, deep);
    }
};

TEST(StoreVerifier, FreshEntryVerifiesClean)
{
    StoreFixture f;
    EXPECT_CLEAN(f.check());
}

TEST(StoreVerifier, MissingEntryDirectoryIsAnError)
{
    StoreFixture f;
    auto r = verify::verifyStoreEntry(f.root, 0xdeadbeefdeadbeefULL);
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Artifact, 0))
        << render(r);
}

TEST(StoreVerifier, ManifestMagicCorruptionDetected)
{
    StoreFixture f;
    f.flipByte(f.manifest(), 0);
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Manifest, 0))
        << render(r);
}

TEST(StoreVerifier, ManifestSealDigestMismatchDetected)
{
    StoreFixture f;
    // A byte inside the batch table: framing stays sane, seal breaks.
    f.flipByte(f.manifest(), store::format::kManifestHeaderBytes + 4);
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Manifest, 0))
        << render(r);
}

TEST(StoreVerifier, TruncatedManifestDetected)
{
    StoreFixture f;
    f.truncate(f.manifest(), 10);
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Manifest, 0))
        << render(r);
}

TEST(StoreVerifier, MissingBatchFileDetected)
{
    StoreFixture f;
    fs::remove(f.batch0());
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Batch, 0)) << render(r);
}

TEST(StoreVerifier, BatchHeaderManifestMismatchDetected)
{
    StoreFixture f;
    // The batch header's `first` field (after magic+version+key).
    f.flipByte(f.batch0(), 8 + 4 + 8);
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Batch, 0)) << render(r);
}

TEST(StoreVerifier, BatchPayloadBitflipDetectedOnlyByDeepCheck)
{
    StoreFixture f;
    f.flipByte(f.batch0(), store::format::kBatchHeaderBytes + 3);
    auto deep = f.check(true);
    EXPECT_TRUE(hasDiag(deep, "store", EntityKind::Batch, 0))
        << render(deep);
    EXPECT_CLEAN(f.check(false)); // Shallow trusts the header checksum.
}

TEST(StoreVerifier, TruncatedBatchPayloadDetected)
{
    StoreFixture f;
    f.truncate(f.batch0(), store::format::kBatchHeaderBytes + 5);
    auto r = f.check();
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Batch, 0)) << render(r);
}

TEST(StoreVerifier, OrphanBatchIsAWarningNotAnError)
{
    StoreFixture f;
    // A batch committed right before a crash, manifest not yet
    // rewritten: valid crash window, must not fail verification.
    fs::copy_file(f.batch0(), f.root + "/" + digestHex(f.kKey) +
                                  "/batch-00000777.bin");
    auto r = f.check();
    EXPECT_TRUE(r.ok()) << render(r);
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Batch, 777,
                        Severity::Warning))
        << render(r);
}

TEST(StoreVerifier, StaleTempFileIsAWarning)
{
    StoreFixture f;
    std::ofstream(f.root + "/" + digestHex(f.kKey) +
                  "/batch-00000000.bin.tmp.123")
        << "partial";
    auto r = f.check();
    EXPECT_TRUE(r.ok()) << render(r);
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Artifact, 0,
                        Severity::Warning))
        << render(r);
}

TEST(StoreVerifier, RootSweepFindsCorruptEntryAndForeignDir)
{
    StoreFixture f;
    f.flipByte(f.manifest(), 0);
    fs::create_directories(f.root + "/not-a-key");
    std::vector<u64> keys;
    auto r = verify::verifyStoreRoot(f.root, true, &keys);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], f.kKey);
    EXPECT_TRUE(hasDiag(r, "store", EntityKind::Artifact, 0,
                        Severity::Warning))
        << render(r);
}

// ---------------------------------------------------------------------
// Trace files, the pass manager, and the diagnostics plumbing.
// ---------------------------------------------------------------------

TEST(VerifyTraceFile, CleanFileRoundTripsAndCorruptionIsDiagnosed)
{
    TraceFixture f;
    const std::string path =
        ::testing::TempDir() + "interf_verify_trace.bin";
    trace::saveTrace(path, f.prog, f.trace);

    EXPECT_CLEAN(verify::verifyTraceFile(path, f.prog));

    // Corrupt the magic: the file-level reader owns the diagnostic.
    {
        std::fstream fh(path, std::ios::binary | std::ios::in |
                                  std::ios::out);
        fh.put('X');
    }
    auto r = verify::verifyTraceFile(path, f.prog);
    EXPECT_TRUE(hasDiag(r, "trace-file", EntityKind::Artifact, 0))
        << render(r);
    fs::remove(path);
}

TEST(VerifyTraceFile, MissingFileIsDiagnosedNotFatal)
{
    TraceFixture f;
    auto r = verify::verifyTraceFile("/nonexistent/trace.bin", f.prog);
    EXPECT_TRUE(hasDiag(r, "trace-file", EntityKind::Artifact, 0))
        << render(r);
}

TEST(TryLoadTrace, HugeEventCountFailsAsTruncation)
{
    TraceFixture f;
    std::stringstream ss;
    trace::saveTrace(ss, f.prog, f.trace);
    std::string bytes = ss.str();
    // The event count sits after magic(8)+version(4)+checksum(8)+five
    // u64 aggregates: patch it to an absurd value.
    const u64 huge = 1ULL << 60;
    std::memcpy(&bytes[8 + 4 + 8 + 5 * 8], &huge, sizeof(huge));
    std::istringstream is(bytes);
    trace::Trace loaded;
    std::string error;
    EXPECT_FALSE(trace::tryLoadTrace(is, f.prog, loaded, error));
    EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(PassManager, StandardPipelineRunsOnlyApplicablePasses)
{
    // No artifacts at all: nothing runs, nothing is reported.
    verify::Artifacts empty;
    EXPECT_CLEAN(verify::PassManager::standard().run(empty));

    // Full program+trace+plan artifact set: clean across all passes.
    PlanFixture f;
    verify::Artifacts a;
    a.program = &f.prog;
    a.trace = &f.trace;
    a.plan = &f.plan;
    EXPECT_CLEAN(verify::PassManager::standard().run(a));
}

TEST(Diagnostics, JsonAndTextRenderingCarryTheEntityReference)
{
    auto prog = makeTiny([](TinySpec &s) {
        s.procs[0].blocks[0].branch.targetBlock = 57;
    });
    auto r = verify::verifyProgram(prog, "<tiny>");
    ASSERT_FALSE(r.ok());
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
    EXPECT_NE(json.find("\"pass\": \"program\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"entity\": \"branch\""), std::string::npos)
        << json;
    const std::string text = r.diagnostics()[0].text();
    EXPECT_NE(text.find("<tiny>"), std::string::npos) << text;
}

TEST(Diagnostics, SinkCapsRunawayEmission)
{
    VerifyResult out;
    {
        verify::Sink sink(out, "<cap>", "test");
        for (u64 i = 0; i < 1000; ++i)
            sink.error(EntityKind::Event, i, "boom");
    }
    // The cap plus the suppression note.
    EXPECT_LE(out.diagnostics().size(),
              verify::Sink::kMaxDiagnostics + 1);
    EXPECT_EQ(out.errorCount() + out.warningCount(),
              out.diagnostics().size());
}

// ---------------------------------------------------------------------
// Clean-artifact property: across profiles and seeds, every pass over
// every pipeline artifact emits zero diagnostics.
// ---------------------------------------------------------------------

class CleanArtifacts : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CleanArtifacts, WholePipelineVerifiesWithZeroDiagnostics)
{
    auto profile = workloads::specFor(GetParam()).profile;
    for (u64 seed_bump : {0ull, 1ull}) {
        profile.behaviourSeed += seed_bump;
        const auto prog = workloads::buildProgram(profile);
        EXPECT_CLEAN(verify::verifyProgram(prog));

        trace::TraceGenerator gen(prog, profile.behaviourSeed);
        const auto tr = gen.makeTrace(15000);
        EXPECT_CLEAN(verify::verifyTrace(prog, tr));

        const trace::ReplayPlan plan(prog, tr);
        EXPECT_CLEAN(verify::verifyPlan(prog, tr, plan));

        const layout::Linker linker;
        layout::LayoutKey key;
        key.seed = 7 + seed_bump;
        EXPECT_CLEAN(verify::verifyLayout(prog, linker.link(prog, key)));

        const layout::PageMap pages(11 + seed_bump);
        VerifyResult pr;
        verify::verifyPageMap(pages, 1u << 12, "<pagemap>", pr);
        EXPECT_CLEAN(pr);
    }
}

INSTANTIATE_TEST_SUITE_P(Profiles, CleanArtifacts,
                         ::testing::Values("400.perlbench", "429.mcf",
                                           "433.milc", "459.GemsFDTD",
                                           "483.xalancbmk"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name)
                                 if (c == '.')
                                     c = '_';
                             return name;
                         });

} // anonymous namespace
