/** @file Tests for the campaign telemetry layer: the determinism
 *  invariant (telemetry observes, never participates), metric shard
 *  aggregation, histogram bucket semantics, Chrome-trace export, run
 *  manifests and their atomic writes. */

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/threadpool.hh"
#include "interferometry/campaign.hh"
#include "store/serialize.hh"
#include "telemetry/manifest.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "util/json.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using telemetry::Registry;
using telemetry::RunManifest;

/** RAII: telemetry enabled for one test, state cleared around it. */
struct TelemetryOn
{
    TelemetryOn()
    {
        telemetry::resetForTest();
        telemetry::enable();
    }
    ~TelemetryOn()
    {
        telemetry::disable();
        telemetry::resetForTest();
    }
};

std::string
tempDir(const char *tag)
{
    auto dir = std::filesystem::temp_directory_path() /
               (std::string("interf-telem-") + tag + "-" +
                std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

interferometry::CampaignConfig
quickConfig(u32 jobs)
{
    interferometry::CampaignConfig cfg;
    cfg.instructionBudget = 60000;
    cfg.initialLayouts = 6;
    cfg.maxLayouts = 6;
    cfg.jobs = jobs;
    return cfg;
}

u64
campaignChecksum(u32 jobs, u32 batch = 4)
{
    auto cfg = quickConfig(jobs);
    cfg.batchLanes = batch;
    interferometry::Campaign camp(workloads::defaultProfile("camp"),
                                  cfg);
    return store::samplesChecksum(camp.measureLayouts(0, 6));
}

/** The tentpole invariant: telemetry on/off cannot change a sample
 *  byte, serial or parallel. */
TEST(TelemetryDeterminism, SamplesIdenticalOnOrOff)
{
    telemetry::disable();
    const u64 off_serial = campaignChecksum(1);
    const u64 off_parallel = campaignChecksum(4);
    {
        TelemetryOn on;
        EXPECT_EQ(campaignChecksum(1), off_serial);
        EXPECT_EQ(campaignChecksum(4), off_parallel);
    }
    EXPECT_EQ(off_parallel, off_serial);
}

/** PR 10's flavor of the invariant: with the flight recorder writing
 *  and a progress observer subscribed, samples are still byte-identical
 *  to the telemetry-off run at every jobs x batch combination. */
TEST(TelemetryDeterminism, SamplesIdenticalWithRecorderAndProgressOn)
{
    telemetry::disable();
    const u32 jobs_axis[] = {1, 4};
    const u32 batch_axis[] = {1, 4};
    u64 off[2][2];
    for (int j = 0; j < 2; ++j)
        for (int b = 0; b < 2; ++b)
            off[j][b] = campaignChecksum(jobs_axis[j], batch_axis[b]);

    const std::string dir = tempDir("recorder-det");
    {
        TelemetryOn on;
        telemetry::setOutputDir(dir); // Starts the flight recorder.
        auto prev = telemetry::setProgressObserver(
            [](const telemetry::ProgressEvent &) {});
        for (int j = 0; j < 2; ++j)
            for (int b = 0; b < 2; ++b)
                EXPECT_EQ(campaignChecksum(jobs_axis[j], batch_axis[b]),
                          off[j][b])
                    << "jobs " << jobs_axis[j] << " batch "
                    << batch_axis[b];
        telemetry::setProgressObserver(std::move(prev));
    } // TelemetryOn teardown stops + seals the recorder.
    std::filesystem::remove_all(dir);
}

TEST(TelemetryCore, DisabledByDefaultAndRecordingNoOps)
{
    telemetry::resetForTest();
    telemetry::disable();
    auto counter = Registry::global().counter("test.disabled");
    counter.add(5);
    telemetry::ScopedSpan span("test.disabled_span");
    for (const auto &c : Registry::global().snapshot().counters) {
        if (c.name == "test.disabled") {
            EXPECT_EQ(c.value, 0u);
        }
    }
}

TEST(TelemetryCore, CountersAggregateAcrossPoolThreads)
{
    TelemetryOn on;
    auto counter = Registry::global().counter("test.pool_adds");
    {
        exec::ThreadPool pool(4);
        exec::parallelFor(pool, 1000,
                          [&](size_t) { counter.add(1); });
        // Shards of live worker threads must already be visible...
        bool found = false;
        for (const auto &c : Registry::global().snapshot().counters)
            if (c.name == "test.pool_adds") {
                found = true;
                EXPECT_EQ(c.value, 1000u);
            }
        EXPECT_TRUE(found);
    }
    // ...and survive the workers' death via the retired fold.
    for (const auto &c : Registry::global().snapshot().counters) {
        if (c.name == "test.pool_adds") {
            EXPECT_EQ(c.value, 1000u);
        }
    }
}

TEST(TelemetryCore, GaugeKeepsLastValue)
{
    TelemetryOn on;
    auto gauge = Registry::global().gauge("test.gauge");
    gauge.set(7);
    gauge.set(-3);
    for (const auto &g : Registry::global().snapshot().gauges) {
        if (g.name == "test.gauge") {
            EXPECT_EQ(g.value, -3);
        }
    }
}

TEST(TelemetryHistogram, BucketBoundariesAreUpperInclusive)
{
    TelemetryOn on;
    auto histo = Registry::global().histogram("test.le",
                                              {10, 20, 50});
    // "le" semantics: a value lands in the first bucket whose upper
    // bound >= value; exactly-on-boundary goes to that bucket.
    histo.record(0);   // -> le 10
    histo.record(10);  // -> le 10 (boundary inclusive)
    histo.record(11);  // -> le 20
    histo.record(20);  // -> le 20
    histo.record(50);  // -> le 50
    histo.record(51);  // -> overflow
    histo.record(9999);// -> overflow
    for (const auto &h : Registry::global().snapshot().histograms) {
        if (h.name != "test.le")
            continue;
        ASSERT_EQ(h.bounds, (std::vector<u64>{10, 20, 50}));
        ASSERT_EQ(h.counts.size(), 3u);
        EXPECT_EQ(h.counts[0], 2u);
        EXPECT_EQ(h.counts[1], 2u);
        EXPECT_EQ(h.counts[2], 1u);
        EXPECT_EQ(h.overflow, 2u);
        EXPECT_EQ(h.sum, 0u + 10 + 11 + 20 + 50 + 51 + 9999);
        EXPECT_EQ(h.total(), 7u);
    }
}

TEST(TelemetryHistogram, RegistrationIsIdempotentByName)
{
    TelemetryOn on;
    auto a = Registry::global().histogram("test.same", {1, 2});
    auto b = Registry::global().histogram("test.same", {1, 2});
    a.record(1);
    b.record(2);
    for (const auto &h : Registry::global().snapshot().histograms) {
        if (h.name == "test.same") {
            EXPECT_EQ(h.total(), 2u);
        }
    }
}

TEST(TelemetrySpans, PhaseStatsSinceReportsOnlyTheDelta)
{
    TelemetryOn on;
    { telemetry::ScopedSpan s("test.phase_a"); }
    auto base = telemetry::phaseStats();
    { telemetry::ScopedSpan s("test.phase_a"); }
    { telemetry::ScopedSpan s("test.phase_b"); }
    auto delta = telemetry::phaseStatsSince(base);
    u64 a_count = 0, b_count = 0;
    for (const auto &p : delta) {
        if (p.name == "test.phase_a")
            a_count = p.count;
        if (p.name == "test.phase_b")
            b_count = p.count;
    }
    EXPECT_EQ(a_count, 1u);
    EXPECT_EQ(b_count, 1u);
}

/** The per-name aggregates behind phaseStats() are monotonic: pushing
 *  more spans than the ring holds overwrites raw records (counted, by
 *  name) but never loses a count from the aggregate. */
TEST(TelemetrySpans, PhaseStatsSurviveRingWrapAround)
{
    TelemetryOn on;
    auto base = telemetry::phaseStats();
    ASSERT_EQ(telemetry::droppedSpans(), 0u);
    constexpr u64 kRing = 1 << 16; // span.cc's kRingCapacity.
    constexpr u64 kSpans = kRing + 5000;
    for (u64 i = 0; i < kSpans; ++i) {
        telemetry::ScopedSpan span("test.wrap");
    }
    u64 wrap_count = 0;
    for (const auto &p : telemetry::phaseStatsSince(base))
        if (p.name == "test.wrap")
            wrap_count = p.count;
    EXPECT_EQ(wrap_count, kSpans);
    // The ring started empty, so every overwritten record was ours.
    EXPECT_EQ(telemetry::droppedSpans(), kSpans - kRing);
    u64 dropped_by_name = 0;
    for (const auto &[name, count] : telemetry::droppedSpansByName())
        if (name == "test.wrap")
            dropped_by_name = count;
    EXPECT_EQ(dropped_by_name, kSpans - kRing);
}

/** Spans closed concurrently on pool workers all land in the ring with
 *  unique ids, and each one's parent is the span that enqueued the
 *  work on the main thread — the causal chain the flow arrows draw. */
TEST(TelemetrySpans, ConcurrentPoolWorkerSpansRecordCausalIds)
{
    TelemetryOn on;
    auto base = telemetry::phaseStats();
    {
        telemetry::ScopedSpan parent("test.enqueue_parent");
        exec::ThreadPool pool(4);
        exec::parallelFor(pool, 512, [](size_t) {
            telemetry::ScopedSpan s("test.worker_span");
        });
    }
    u64 workers = 0, parents = 0;
    for (const auto &p : telemetry::phaseStatsSince(base)) {
        if (p.name == "test.worker_span")
            workers = p.count;
        if (p.name == "test.enqueue_parent")
            parents = p.count;
    }
    EXPECT_EQ(workers, 512u);
    EXPECT_EQ(parents, 1u);

    const std::string dir = tempDir("causal");
    const std::string path = dir + "/trace.json";
    telemetry::writeChromeTrace(path);
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parseFile(path, doc, &error)) << error;
    u64 parent_id = 0;
    for (const auto &ev : doc.get("traceEvents").elements())
        if (ev.get("ph").asString() == "X" &&
            ev.get("name").asString() == "test.enqueue_parent")
            parent_id = ev.get("args").get("span_id").asU64();
    ASSERT_NE(parent_id, 0u);
    std::set<u64> worker_ids;
    size_t flow_starts = 0;
    for (const auto &ev : doc.get("traceEvents").elements()) {
        const std::string ph = ev.get("ph").asString();
        if (ph == "s")
            ++flow_starts;
        if (ph != "X" ||
            ev.get("name").asString() != "test.worker_span")
            continue;
        worker_ids.insert(ev.get("args").get("span_id").asU64());
        EXPECT_EQ(ev.get("args").get("parent_span_id").asU64(),
                  parent_id);
    }
    EXPECT_EQ(worker_ids.size(), 512u); // All distinct, all in the ring.
    EXPECT_GE(flow_starts, 1u); // Cross-thread arrows were emitted.
    std::filesystem::remove_all(dir);
}

/** The exported trace must be valid Chrome trace-event JSON: "M"
 *  metadata naming every thread plus "X" complete events with ts/dur
 *  and "s"/"f" flow arrows, all on pid 1 — exactly what Perfetto
 *  loads. */
TEST(TelemetryTrace, ChromeTraceExportIsSchemaValid)
{
    TelemetryOn on;
    telemetry::setCurrentThreadName("test-main");
    { telemetry::ScopedSpan s("test.trace_span"); }
    {
        exec::ThreadPool pool(2);
        exec::parallelFor(pool, 8, [](size_t) {
            telemetry::ScopedSpan s("test.pool_span");
        });
    }
    const std::string dir = tempDir("trace");
    const std::string path = dir + "/trace.json";
    telemetry::writeChromeTrace(path);

    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parseFile(path, doc, &error)) << error;
    ASSERT_TRUE(doc.get("traceEvents").isArray());
    EXPECT_EQ(doc.get("otherData").get("schema").asString(),
              "interf-trace-1");

    std::set<std::string> thread_names;
    bool saw_span = false, saw_pool_span = false;
    for (const auto &ev : doc.get("traceEvents").elements()) {
        ASSERT_TRUE(ev.get("name").isString());
        ASSERT_TRUE(ev.get("ph").isString());
        ASSERT_TRUE(ev.get("pid").isNumber());
        ASSERT_TRUE(ev.get("tid").isNumber());
        EXPECT_EQ(ev.get("pid").asInt(), 1);
        const std::string ph = ev.get("ph").asString();
        if (ph == "M") {
            if (ev.get("name").asString() == "thread_name")
                thread_names.insert(
                    ev.get("args").get("name").asString());
            continue;
        }
        if (ph == "s" || ph == "f") {
            EXPECT_EQ(ev.get("cat").asString(), "flow");
            EXPECT_TRUE(ev.get("id").isNumber());
            EXPECT_TRUE(ev.get("ts").isNumber());
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_TRUE(ev.get("ts").isNumber());
        EXPECT_TRUE(ev.get("dur").isNumber());
        if (ev.get("name").asString() == "test.trace_span")
            saw_span = true;
        if (ev.get("name").asString() == "test.pool_span")
            saw_pool_span = true;
    }
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_pool_span);
    EXPECT_TRUE(thread_names.count("test-main"));
    EXPECT_TRUE(thread_names.count("pool-worker-0"));
    std::filesystem::remove_all(dir);
}

TEST(TelemetryManifest, RoundTripsThroughJson)
{
    RunManifest m;
    m.benchmark = "401.bzip2";
    m.configDigest = "00ff00ff00ff00ff";
    m.storeKey = m.configDigest;
    m.storeDir = "/tmp/store/00ff00ff00ff00ff";
    m.instructionBudget = 1'000'000;
    m.jobs = 4;
    m.layoutsUsed = 100;
    m.layoutsMeasured = 60;
    m.layoutsCached = 40;
    m.storeBatchesCommitted = 3;
    m.storeCommitMs = 12.5;
    m.wallMs = 543.25;
    m.layoutsPerSec = 110.4;
    m.phases.push_back({"replay.batch", 6, 500.0, 1200.0});
    m.verifyErrors = 0;
    m.verifyWarnings = 2;
    m.logWarns = 3;
    m.logInforms = 9;
    m.recentWarnings = {"warning one", "warning two"};
    m.spansDropped = 7;
    m.spansDroppedByName = {{"replay.batch", 4}, {"store.commit", 3}};
    m.regressionRan = true;
    m.regressionSignificant = true;
    m.enoughMpkiRange = true;
    m.slope = 1.25;
    m.intercept = 0.5;
    m.r2 = 0.95;

    RunManifest back;
    std::string error;
    ASSERT_TRUE(back.fromJson(m.toJson(), &error)) << error;
    EXPECT_EQ(back.benchmark, m.benchmark);
    EXPECT_EQ(back.configDigest, m.configDigest);
    EXPECT_EQ(back.storeKey, m.storeKey);
    EXPECT_EQ(back.storeDir, m.storeDir);
    EXPECT_EQ(back.instructionBudget, m.instructionBudget);
    EXPECT_EQ(back.jobs, m.jobs);
    EXPECT_EQ(back.layoutsUsed, m.layoutsUsed);
    EXPECT_EQ(back.layoutsMeasured, m.layoutsMeasured);
    EXPECT_EQ(back.layoutsCached, m.layoutsCached);
    EXPECT_EQ(back.storeBatchesCommitted, m.storeBatchesCommitted);
    EXPECT_DOUBLE_EQ(back.storeCommitMs, m.storeCommitMs);
    EXPECT_DOUBLE_EQ(back.wallMs, m.wallMs);
    EXPECT_DOUBLE_EQ(back.layoutsPerSec, m.layoutsPerSec);
    ASSERT_EQ(back.phases.size(), 1u);
    EXPECT_EQ(back.phases[0].name, "replay.batch");
    EXPECT_EQ(back.phases[0].count, 6u);
    EXPECT_DOUBLE_EQ(back.phases[0].wallMs, 500.0);
    EXPECT_DOUBLE_EQ(back.phases[0].threadMs, 1200.0);
    EXPECT_EQ(back.verifyWarnings, m.verifyWarnings);
    EXPECT_EQ(back.logWarns, m.logWarns);
    EXPECT_EQ(back.recentWarnings, m.recentWarnings);
    EXPECT_EQ(back.spansDropped, 7u);
    EXPECT_EQ(back.spansDroppedByName, m.spansDroppedByName);
    EXPECT_TRUE(back.regressionRan);
    EXPECT_TRUE(back.regressionSignificant);
    EXPECT_DOUBLE_EQ(back.slope, m.slope);
    EXPECT_DOUBLE_EQ(back.intercept, m.intercept);
    EXPECT_DOUBLE_EQ(back.r2, m.r2);
}

TEST(TelemetryManifest, RejectsWrongSchema)
{
    Json doc = Json::object();
    doc.set("schema", "not-a-manifest");
    RunManifest m;
    std::string error;
    EXPECT_FALSE(m.fromJson(doc, &error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(TelemetryManifest, LoadReportsMissingFile)
{
    RunManifest m;
    std::string error;
    EXPECT_FALSE(m.load("/nonexistent/manifest.json", &error));
    EXPECT_FALSE(error.empty());
}

TEST(TelemetryManifest, WriteAtomicRoundTripsViaFile)
{
    const std::string dir = tempDir("manifest");
    const std::string path = dir + "/m.json";
    RunManifest m;
    m.benchmark = "camp";
    m.configDigest = "0123456789abcdef";
    m.writeAtomic(path);
    RunManifest back;
    std::string error;
    ASSERT_TRUE(back.load(path, &error)) << error;
    EXPECT_EQ(back.benchmark, "camp");
    // No temp sibling may survive the rename.
    size_t files = 0;
    for ([[maybe_unused]] const auto &f :
         std::filesystem::directory_iterator(dir))
        ++files;
    EXPECT_EQ(files, 1u);
    std::filesystem::remove_all(dir);
}

/** A crash after the temp write but before the rename must leave the
 *  previous manifest intact — the reader never sees a torn file. */
TEST(TelemetryAtomicWriteDeathTest, CrashBeforeRenameKeepsOriginal)
{
    const std::string dir = tempDir("crash");
    const std::string path = dir + "/m.json";
    RunManifest original;
    original.benchmark = "before-crash";
    original.configDigest = "0123456789abcdef";
    original.writeAtomic(path);

    RunManifest update;
    update.benchmark = "after-crash";
    update.configDigest = "fedcba9876543210";
    EXPECT_DEATH(
        {
            telemetry::detail::g_crashAfterTmpWrite.store(true);
            update.writeAtomic(path);
        },
        "");

    RunManifest survivor;
    std::string error;
    ASSERT_TRUE(survivor.load(path, &error)) << error;
    EXPECT_EQ(survivor.benchmark, "before-crash");
    std::filesystem::remove_all(dir);
}

/** End to end: a campaign run with a store and an output directory
 *  leaves a schema-valid manifest in both places. */
TEST(TelemetryManifest, CampaignWritesManifestNextToStore)
{
    const std::string store_dir = tempDir("store");
    const std::string out_dir = tempDir("out");
    {
        TelemetryOn on;
        telemetry::setOutputDir(out_dir);
        auto cfg = quickConfig(1);
        cfg.storeDir = store_dir;
        interferometry::Campaign camp(workloads::defaultProfile("camp"),
                                      cfg);
        auto result = camp.run();
        EXPECT_EQ(result.layoutsUsed, 6u);
    } // Campaign destructor writes the manifests.

    // Next to the store entry.
    std::string store_manifest;
    for (const auto &key_dir :
         std::filesystem::directory_iterator(store_dir)) {
        auto candidate = key_dir.path() / "run-manifest.json";
        if (std::filesystem::exists(candidate))
            store_manifest = candidate.string();
    }
    ASSERT_FALSE(store_manifest.empty());
    RunManifest m;
    std::string error;
    ASSERT_TRUE(m.load(store_manifest, &error)) << error;
    EXPECT_EQ(m.benchmark, "camp");
    EXPECT_EQ(m.layoutsMeasured, 6u);
    EXPECT_TRUE(m.regressionRan);
    EXPECT_EQ(m.storeBatchesCommitted, 1u);
    EXPECT_FALSE(m.phases.empty());

    // And into the output directory.
    size_t out_manifests = 0;
    for (const auto &f : std::filesystem::directory_iterator(out_dir))
        if (f.path().filename().string().rfind("manifest-", 0) == 0) {
            ++out_manifests;
            RunManifest om;
            ASSERT_TRUE(om.load(f.path().string(), &error)) << error;
            EXPECT_EQ(om.benchmark, "camp");
        }
    EXPECT_EQ(out_manifests, 1u);
    std::filesystem::remove_all(store_dir);
    std::filesystem::remove_all(out_dir);
}

} // anonymous namespace
