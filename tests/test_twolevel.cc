/** @file Tests for the two-level adaptive predictors (GAs / gshare). */

#include <gtest/gtest.h>

#include "bpred/twolevel.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using interf::splitmix64;
using namespace interf::bpred;

TEST(TwoLevel, GAsLearnsShortPeriodicPattern)
{
    TwoLevelPredictor pred(TwoLevelScheme::GAs, 4096, 6);
    Addr pc = 0x400100;
    // Period-4 pattern T T T N is fully determined by 6 history bits.
    auto outcome = [](int i) { return i % 4 != 3; };
    for (int i = 0; i < 200; ++i)
        pred.predictAndTrain(pc, outcome(i));
    int wrong = 0;
    for (int i = 200; i < 400; ++i)
        wrong += pred.predictAndTrain(pc, outcome(i)) != outcome(i);
    EXPECT_LE(wrong, 2);
}

TEST(TwoLevel, GshareLearnsShortPeriodicPattern)
{
    TwoLevelPredictor pred(TwoLevelScheme::Gshare, 4096, 8);
    Addr pc = 0x400200;
    auto outcome = [](int i) { return i % 5 != 0; };
    for (int i = 0; i < 300; ++i)
        pred.predictAndTrain(pc, outcome(i));
    int wrong = 0;
    for (int i = 300; i < 600; ++i)
        wrong += pred.predictAndTrain(pc, outcome(i)) != outcome(i);
    EXPECT_LE(wrong, 3);
}

TEST(TwoLevel, CannotLearnPatternLongerThanHistory)
{
    // Period 40 with only 3 history bits: the exit is invisible.
    TwoLevelPredictor pred(TwoLevelScheme::Gshare, 4096, 3);
    Addr pc = 0x400300;
    auto outcome = [](int i) { return i % 40 != 39; };
    for (int i = 0; i < 400; ++i)
        pred.predictAndTrain(pc, outcome(i));
    int wrong = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        wrong += pred.predictAndTrain(pc, outcome(i)) != outcome(i);
    // Roughly one miss per period (the unpredictable exit).
    EXPECT_GT(wrong, n / 40 - 10);
}

TEST(TwoLevel, HistoryDisambiguatesContext)
{
    // A branch whose outcome equals the previous outcome of another
    // branch: global history captures it, bimodal-style cannot.
    TwoLevelPredictor pred(TwoLevelScheme::Gshare, 8192, 10);
    Addr leader = 0x400400, follower = 0x400500;
    u64 state = 12345;
    int wrong = 0, total = 0;
    bool last_leader = false;
    for (int i = 0; i < 4000; ++i) {
        bool l = (splitmix64(state) & 1) != 0;
        pred.predictAndTrain(leader, l);
        bool f = l; // will be re-fetched from history: equals leader? no:
        // follower repeats the leader's outcome.
        bool got = pred.predictAndTrain(follower, last_leader = l);
        if (i > 1000) {
            wrong += got != f;
            ++total;
        }
    }
    (void)last_leader;
    // Correlated branch should be highly predictable (< 15% misses).
    EXPECT_LT(wrong, total * 15 / 100);
}

TEST(TwoLevel, GAsIndexConcatenatesAddressAndHistory)
{
    TwoLevelPredictor pred(TwoLevelScheme::GAs, 1024, 4);
    // With zero history, branches differing only in high address bits
    // used by the index must map to different slots.
    u32 i1 = pred.indexFor(0x400000);
    u32 i2 = pred.indexFor(0x400001);
    EXPECT_NE(i1, i2);
    EXPECT_LT(i1, 1024u);
}

TEST(TwoLevel, IndexChangesWithHistory)
{
    TwoLevelPredictor pred(TwoLevelScheme::Gshare, 1024, 8);
    Addr pc = 0x400123;
    u32 before = pred.indexFor(pc);
    pred.predictAndTrain(pc, true); // shifts history
    u32 after = pred.indexFor(pc);
    EXPECT_NE(before, after);
}

TEST(TwoLevel, ResetClearsLearnedState)
{
    TwoLevelPredictor pred(TwoLevelScheme::Gshare, 1024, 6);
    Addr pc = 0x400600;
    for (int i = 0; i < 100; ++i)
        pred.predictAndTrain(pc, false);
    pred.reset();
    EXPECT_TRUE(pred.predictAndTrain(pc, true)); // cold weakly-taken
}

TEST(TwoLevel, NamesAndSizes)
{
    TwoLevelPredictor gas(TwoLevelScheme::GAs, 8192, 10);
    EXPECT_EQ(gas.name(), "gas-8192e-h10");
    EXPECT_EQ(gas.sizeBits(), 8192u * 2 + 10);
    TwoLevelPredictor gsh(TwoLevelScheme::Gshare, 4096, 12);
    EXPECT_EQ(gsh.name(), "gshare-4096e-h12");
    EXPECT_EQ(gsh.historyBits(), 12u);
}

TEST(TwoLevelDeathTest, GAsHistoryMustLeaveAddressBits)
{
    EXPECT_DEATH(TwoLevelPredictor(TwoLevelScheme::GAs, 1024, 10),
                 "assertion");
    // gshare allows history == index bits.
    TwoLevelPredictor ok(TwoLevelScheme::Gshare, 1024, 10);
    SUCCEED();
}

/** Parameterized sweep: all sizes learn a trivially-biased branch. */
class TwoLevelSizes : public ::testing::TestWithParam<u32>
{
};

TEST_P(TwoLevelSizes, AllSizesLearnBiasedBranch)
{
    TwoLevelPredictor pred(TwoLevelScheme::Gshare, GetParam(), 4);
    Addr pc = 0x400700;
    for (int i = 0; i < 64; ++i)
        pred.predictAndTrain(pc, true);
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += pred.predictAndTrain(pc, true) != true;
    EXPECT_EQ(wrong, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwoLevelSizes,
                         ::testing::Values(64u, 256u, 1024u, 4096u,
                                           16384u, 65536u));

} // anonymous namespace
