/** @file Tests for the reporting helpers. */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "interferometry/report.hh"
#include "util/random.hh"

namespace
{

using namespace interf;
using namespace interf::interferometry;

PerformanceModel
someModel()
{
    Rng rng(1);
    std::vector<core::Measurement> samples;
    for (int i = 0; i < 60; ++i) {
        core::Measurement m;
        m.instructions = 1000000;
        m.mpki = 5.0 + rng.nextDouble();
        m.cpi = 0.03 * m.mpki + 0.5 + rng.gaussian(0, 0.003);
        samples.push_back(m);
    }
    return PerformanceModel("x", samples);
}

TEST(Report, Table1ListsOnlySignificantRows)
{
    std::vector<Table1Row> rows;
    Table1Row a{"sig", 0.03, 0.5, 0.45, 0.55, true};
    Table1Row b{"notsig", 0.01, 1.0, 0.9, 1.1, false};
    rows.push_back(a);
    rows.push_back(b);
    auto tw = makeTable1(rows);
    std::ostringstream os;
    tw.print(os);
    EXPECT_NE(os.str().find("sig"), std::string::npos);
    EXPECT_EQ(os.str().find("notsig"), std::string::npos);
    EXPECT_EQ(tw.rows(), 1u);
}

TEST(Report, Table1HasPaperColumns)
{
    auto tw = makeTable1({{"b", 0.02, 0.6, 0.5, 0.7, true}});
    std::ostringstream os;
    tw.print(os);
    for (const char *col :
         {"Benchmark", "Slope", "y-intercept", "Low", "High"})
        EXPECT_NE(os.str().find(col), std::string::npos) << col;
}

TEST(Report, RegressionLineFormat)
{
    auto model = someModel();
    auto line = regressionLine(model);
    EXPECT_NE(line.find("CPI ="), std::string::npos);
    EXPECT_NE(line.find("MPKI"), std::string::npos);
    EXPECT_NE(line.find("r2="), std::string::npos);
    EXPECT_NE(line.find("n=60"), std::string::npos);
}

TEST(Report, AsciiViolinShape)
{
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.gaussian(0.0, 1.0));
    auto violin = stats::kernelDensity(xs, 128);
    auto lines = asciiViolin(violin, 11, 20);
    ASSERT_EQ(lines.size(), 11u);
    // Middle rows (near the mode) should be wider than edge rows.
    auto width = [](const std::string &s) {
        return std::count(s.begin(), s.end(), '#');
    };
    EXPECT_GT(width(lines[5]), width(lines[0]));
    EXPECT_GT(width(lines[5]), width(lines[10]));
    // Every row carries the grid label and the spine.
    for (const auto &l : lines)
        EXPECT_NE(l.find('|'), std::string::npos);
}

TEST(Report, AsciiViolinSymmetricBars)
{
    std::vector<double> xs{1, 2, 2, 3, 3, 3, 4, 4, 5};
    auto violin = stats::kernelDensity(xs, 64);
    auto lines = asciiViolin(violin, 9, 16);
    for (const auto &l : lines) {
        auto bar = l.substr(l.find_first_of("#|"));
        size_t spine = bar.find('|');
        size_t left = 0, right = 0;
        for (size_t i = 0; i < spine; ++i)
            left += bar[i] == '#';
        for (size_t i = spine + 1; i < bar.size(); ++i)
            right += bar[i] == '#';
        EXPECT_EQ(left, right);
    }
}

} // anonymous namespace
