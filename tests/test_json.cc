/** @file Tests for the minimal JSON value/parser in util/json.hh. */

#include <string>

#include <gtest/gtest.h>

#include "util/json.hh"

namespace
{

using interf::Json;

TEST(JsonValue, TypesAndAccessors)
{
    Json null;
    EXPECT_TRUE(null.isNull());

    Json b(true);
    EXPECT_TRUE(b.isBool());
    EXPECT_TRUE(b.asBool());

    Json n(42.5);
    EXPECT_TRUE(n.isNumber());
    EXPECT_DOUBLE_EQ(n.asDouble(), 42.5);

    Json i(interf::u64{1234567890123456ULL});
    EXPECT_EQ(i.asU64(), 1234567890123456ULL);

    Json s("hello");
    EXPECT_TRUE(s.isString());
    EXPECT_EQ(s.asString(), "hello");
}

TEST(JsonValue, ObjectAndArrayBuilding)
{
    Json obj = Json::object();
    obj.set("k", 7);
    obj.set("s", "v");
    Json arr = Json::array();
    arr.push(1);
    arr.push(2);
    obj.set("a", std::move(arr));

    EXPECT_TRUE(obj.has("k"));
    EXPECT_FALSE(obj.has("missing"));
    EXPECT_EQ(obj.get("k").asInt(), 7);
    EXPECT_EQ(obj.get("a").size(), 2u);
    EXPECT_EQ(obj.get("a").at(1).asInt(), 2);
    // get() on a missing key returns a null sentinel, not a crash.
    EXPECT_TRUE(obj.get("missing").isNull());
}

TEST(JsonParse, RoundTripsDocuments)
{
    const std::string text =
        R"({"a": [1, 2.5, "x"], "b": {"nested": true}, "c": null})";
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(text, doc, &error)) << error;
    EXPECT_EQ(doc.get("a").at(0).asInt(), 1);
    EXPECT_DOUBLE_EQ(doc.get("a").at(1).asDouble(), 2.5);
    EXPECT_EQ(doc.get("a").at(2).asString(), "x");
    EXPECT_TRUE(doc.get("b").get("nested").asBool());
    EXPECT_TRUE(doc.get("c").isNull());

    // dump -> parse -> dump must be a fixed point.
    std::string once = doc.dump();
    Json again;
    ASSERT_TRUE(Json::parse(once, again, &error)) << error;
    EXPECT_EQ(again.dump(), once);
}

TEST(JsonParse, StringEscapes)
{
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(R"("a\"b\\c\n\tAé")", doc,
                            &error))
        << error;
    EXPECT_EQ(doc.asString(), "a\"b\\c\n\tA\xc3\xa9");

    // Surrogate pair: U+1F600 as 😀.
    ASSERT_TRUE(Json::parse(R"("😀")", doc, &error)) << error;
    EXPECT_EQ(doc.asString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, IntegersSurviveExactly)
{
    Json doc;
    std::string error;
    // Counters and byte sizes must round-trip digit for digit (any
    // integer a double holds exactly, i.e. below 2^53).
    ASSERT_TRUE(Json::parse("1234567890123456", doc, &error)) << error;
    EXPECT_EQ(doc.dump(), "1234567890123456");
    EXPECT_EQ(doc.asU64(), 1234567890123456ULL);
}

TEST(JsonParse, RejectsMalformedInput)
{
    Json doc;
    std::string error;
    EXPECT_FALSE(Json::parse("{", doc, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Json::parse("[1, 2,]", doc, &error));
    EXPECT_FALSE(Json::parse(R"({"a" 1})", doc, &error));
    EXPECT_FALSE(Json::parse("\"unterminated", doc, &error));
    EXPECT_FALSE(Json::parse("[1] trailing", doc, &error));
    EXPECT_FALSE(Json::parse("", doc, &error));
}

TEST(JsonParse, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    Json doc;
    std::string error;
    EXPECT_FALSE(Json::parse(deep, doc, &error));
    EXPECT_NE(error.find("nest"), std::string::npos) << error;
}

TEST(JsonDump, PrettyPrintIsStable)
{
    Json obj = Json::object();
    obj.set("z", 1);
    obj.set("a", 2);
    // Insertion order preserved (manifest readability), both modes.
    EXPECT_EQ(obj.dump(), R"({"z":1,"a":2})");
    EXPECT_EQ(obj.dump(1), "{\n \"z\": 1,\n \"a\": 2\n}");
}

TEST(JsonDump, NonFiniteNumbersBecomeZero)
{
    Json inf(1.0 / 0.0);
    EXPECT_EQ(inf.dump(), "0");
}

} // anonymous namespace
