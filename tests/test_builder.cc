/** @file Tests for the ProgramBuilder (workloads/builder). */

#include <gtest/gtest.h>

#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace
{

using namespace interf;
using namespace interf::workloads;
using namespace interf::trace;

TEST(Builder, StructureMatchesProfileCounts)
{
    auto profile = defaultProfile("t");
    auto prog = buildProgram(profile);
    EXPECT_EQ(prog.procedures().size(), profile.procedures);
    EXPECT_EQ(prog.files().size(), profile.objectFiles);
    EXPECT_EQ(prog.proc(0).name, "main");
}

TEST(Builder, DeterministicForSameSeed)
{
    auto profile = defaultProfile("t");
    auto a = buildProgram(profile);
    auto b = buildProgram(profile);
    ASSERT_EQ(a.procedures().size(), b.procedures().size());
    EXPECT_EQ(a.totalCodeBytes(), b.totalCodeBytes());
    EXPECT_EQ(a.condBranchSites(), b.condBranchSites());
    for (size_t p = 0; p < a.procedures().size(); ++p) {
        ASSERT_EQ(a.proc(p).blocks.size(), b.proc(p).blocks.size());
        EXPECT_EQ(a.proc(p).bytes(), b.proc(p).bytes());
    }
}

TEST(Builder, DifferentSeedsDifferentStructure)
{
    auto p1 = defaultProfile("t");
    auto p2 = p1;
    p2.structureSeed += 1;
    auto a = buildProgram(p1);
    auto b = buildProgram(p2);
    EXPECT_NE(a.totalCodeBytes(), b.totalCodeBytes());
}

TEST(Builder, CallGraphIsDag)
{
    auto prog = buildProgram(defaultProfile("t"));
    for (const auto &proc : prog.procedures()) {
        for (const auto &bb : proc.blocks) {
            if (bb.branch.kind == OpClass::Call) {
                EXPECT_GT(bb.branch.targetProc, proc.id)
                    << "call from " << proc.id << " must go to a "
                    << "higher id (DAG)";
            }
        }
    }
}

TEST(Builder, EveryProcedureEndsInReturn)
{
    auto prog = buildProgram(defaultProfile("t"));
    for (const auto &proc : prog.procedures()) {
        ASSERT_FALSE(proc.blocks.empty());
        EXPECT_EQ(proc.blocks.back().branch.kind, OpClass::Return);
    }
}

TEST(Builder, ConditionalsHavePatterns)
{
    auto prog = buildProgram(defaultProfile("t"));
    for (const auto &proc : prog.procedures())
        for (const auto &bb : proc.blocks)
            if (bb.branch.isConditional()) {
                EXPECT_NE(bb.branch.pattern, BranchPattern::None);
            }
}

TEST(Builder, ProducesValidProgram)
{
    // validate() is called inside buildProgram; re-run explicitly.
    auto prog = buildProgram(defaultProfile("t"));
    prog.validate();
    SUCCEED();
}

TEST(Builder, RegionTiersRespectProfile)
{
    auto profile = defaultProfile("t");
    profile.fracL1 = 0.77;
    profile.fracMem = 0.1;
    profile.memWorkingSet = 8 << 20;
    profile.validate();
    auto prog = buildProgram(profile);
    // Three tiers x regionsPerTier regions.
    EXPECT_EQ(prog.regions().size(), 3u * profile.regionsPerTier);
    interf::u64 total = 0;
    for (const auto &r : prog.regions())
        total += r.size;
    // Tier totals are jittered but should be the right order.
    interf::u64 want = profile.l1WorkingSet + profile.l2WorkingSet +
                       profile.memWorkingSet;
    EXPECT_GT(total, want / 2);
    EXPECT_LT(total, want * 2);
}

TEST(Builder, HeapFractionControlsRegionKinds)
{
    auto all_heap = defaultProfile("t");
    all_heap.heapFraction = 1.0;
    auto prog = buildProgram(all_heap);
    for (const auto &r : prog.regions())
        EXPECT_EQ(r.kind, RegionKind::Heap);

    auto no_heap = defaultProfile("t");
    no_heap.heapFraction = 0.0;
    auto prog2 = buildProgram(no_heap);
    for (const auto &r : prog2.regions())
        EXPECT_EQ(r.kind, RegionKind::Global);
}

TEST(Builder, BranchDensityTracksProfile)
{
    auto low = defaultProfile("t");
    low.condFraction = 0.1;
    auto high = defaultProfile("t");
    high.condFraction = 0.6;
    EXPECT_LT(buildProgram(low).condBranchSites(),
              buildProgram(high).condBranchSites());
}

TEST(Builder, IndirectBranchesWellFormed)
{
    auto profile = defaultProfile("t");
    profile.indirectDensity = 0.1;
    auto prog = buildProgram(profile);
    int found = 0;
    for (const auto &proc : prog.procedures()) {
        for (const auto &bb : proc.blocks) {
            if (bb.branch.kind != OpClass::IndirectBranch)
                continue;
            ++found;
            EXPECT_GE(bb.branch.indirectTargets, 2);
            EXPECT_EQ(bb.branch.targetProc, proc.id);
            EXPECT_LE(bb.branch.targetBlock + bb.branch.indirectTargets,
                      proc.blocks.size());
        }
    }
    EXPECT_GT(found, 0);
}

TEST(Builder, MemRefGenIdsUnique)
{
    auto prog = buildProgram(defaultProfile("t"));
    std::vector<bool> seen;
    for (const auto &proc : prog.procedures()) {
        for (const auto &bb : proc.blocks) {
            for (const auto &ref : bb.memRefs) {
                if (ref.genId >= seen.size())
                    seen.resize(ref.genId + 1, false);
                EXPECT_FALSE(seen[ref.genId]) << "duplicate genId";
                seen[ref.genId] = true;
            }
        }
    }
}

TEST(Builder, DepLoadRoutingTouchesSlowTier)
{
    auto profile = defaultProfile("t");
    profile.branchLoadDepProb = 1.0;
    profile.depLoadSlowTier = 1.0;
    auto prog = buildProgram(profile);
    // Every conditional block with loads must have its feeding load in
    // a Churn (L2-tier) or Random (mem-tier) pattern.
    int dep_blocks = 0;
    for (const auto &proc : prog.procedures()) {
        for (const auto &bb : proc.blocks) {
            if (!bb.branch.isConditional() || bb.loads() == 0)
                continue;
            EXPECT_TRUE(bb.branch.dependsOnLoad);
            ++dep_blocks;
            bool slow = false;
            for (const auto &ref : bb.memRefs)
                if (!ref.isStore && (ref.pattern == MemPattern::Churn ||
                                     ref.pattern == MemPattern::Random))
                    slow = true;
            EXPECT_TRUE(slow);
        }
    }
    EXPECT_GT(dep_blocks, 0);
}

TEST(BuilderDeathTest, InvalidProfileIsFatal)
{
    auto profile = defaultProfile("t");
    profile.hotProcedures = profile.procedures; // must be < procedures
    EXPECT_EXIT(buildProgram(profile), ::testing::ExitedWithCode(1),
                "hotProcedures");
}

} // anonymous namespace
