/** @file Tests for the Pin-style functional predictor simulator. */

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "layout/linker.hh"
#include "pinsim/pinsim.hh"
#include "trace/generator.hh"
#include "workloads/builder.hh"

namespace
{

using namespace interf;
using namespace interf::pinsim;

struct Fixture
{
    trace::Program prog;
    trace::Trace trace;
    layout::CodeLayout code;

    Fixture()
        : prog(workloads::buildProgram(workloads::defaultProfile("pin"))),
          trace(trace::TraceGenerator(prog, 4).makeTrace(80000)),
          code(layout::Linker().link(prog,
                                     layout::LayoutKey{9, true, true}))
    {
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(PinSim, PerfectPredictorHasZeroMpki)
{
    PinSim sim({"perfect"});
    auto res = sim.run(fixture().prog, fixture().trace, fixture().code);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0].mispredicts, 0u);
    EXPECT_DOUBLE_EQ(res[0].mpki(), 0.0);
    EXPECT_DOUBLE_EQ(res[0].accuracy(), 1.0);
}

TEST(PinSim, BranchCountMatchesTrace)
{
    PinSim sim({"bimodal:1024"});
    auto &f = fixture();
    auto res = sim.run(f.prog, f.trace, f.code);
    EXPECT_EQ(res[0].branches, f.trace.condBranches);
    EXPECT_EQ(res[0].instructions, f.trace.instCount);
}

TEST(PinSim, NoVarianceAcrossRepeatedRuns)
{
    // "Pin runs only once for each reordering; ... there is no variance
    // in the simulation result."
    PinSim sim({"gas:4096:8", "ltage"});
    auto &f = fixture();
    auto a = sim.run(f.prog, f.trace, f.code);
    auto b = sim.run(f.prog, f.trace, f.code);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].mispredicts, b[i].mispredicts);
}

TEST(PinSim, AllPredictorsSeeSameBranches)
{
    PinSim sim({"bimodal:64", "gas:4096:8", "gshare:8192:10", "ltage",
                "perfect"});
    auto &f = fixture();
    auto res = sim.run(f.prog, f.trace, f.code);
    for (const auto &r : res)
        EXPECT_EQ(r.branches, res[0].branches);
}

TEST(PinSim, AccuracyOrderingSensible)
{
    PinSim sim({"bimodal:64", "gas:8192:10", "ltage", "perfect"});
    auto &f = fixture();
    auto res = sim.run(f.prog, f.trace, f.code);
    // tiny bimodal >= GAs >= ltage >= perfect in mispredictions.
    EXPECT_GE(res[0].mispredicts, res[1].mispredicts);
    EXPECT_GE(res[1].mispredicts, res[2].mispredicts);
    EXPECT_GE(res[2].mispredicts, res[3].mispredicts);
    EXPECT_GT(res[0].mispredicts, res[2].mispredicts);
}

TEST(PinSim, LayoutChangesMpki)
{
    PinSim sim({"gshare:1024:8"});
    auto &f = fixture();
    layout::Linker linker;
    auto l1 = linker.link(f.prog, layout::LayoutKey{1, true, true});
    auto l2 = linker.link(f.prog, layout::LayoutKey{2, true, true});
    auto a = sim.run(f.prog, f.trace, l1);
    auto b = sim.run(f.prog, f.trace, l2);
    EXPECT_NE(a[0].mispredicts, b[0].mispredicts)
        << "aliasing must depend on code placement";
    // Branch counts are layout-invariant.
    EXPECT_EQ(a[0].branches, b[0].branches);
}

TEST(PinSim, PredictorNamesExposed)
{
    PinSim sim({"ltage", "perfect"});
    EXPECT_EQ(sim.numPredictors(), 2u);
    EXPECT_NE(sim.predictorName(0).find("ltage"), std::string::npos);
    EXPECT_EQ(sim.predictorName(1), "perfect");
}

TEST(PinSim, AverageMpkiAveragesPerPredictor)
{
    std::vector<std::vector<PredictorResult>> per_layout(2);
    PredictorResult r;
    r.instructions = 1000;
    r.branches = 100;
    r.mispredicts = 10; // 10 MPKI
    per_layout[0].push_back(r);
    r.mispredicts = 20; // 20 MPKI
    per_layout[1].push_back(r);
    auto avg = averageMpki(per_layout);
    ASSERT_EQ(avg.size(), 1u);
    EXPECT_DOUBLE_EQ(avg[0], 15.0);
}

TEST(PinSim, CandidateSetRunsOnSuiteWorkload)
{
    auto specs = bpred::figureCandidateSpecs();
    PinSim sim(specs);
    auto &f = fixture();
    auto res = sim.run(f.prog, f.trace, f.code);
    ASSERT_EQ(res.size(), specs.size());
    for (const auto &r : res) {
        EXPECT_GT(r.branches, 0u);
        EXPECT_GT(r.accuracy(), 0.5);
    }
}

} // anonymous namespace
