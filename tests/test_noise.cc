/** @file Tests for the measurement-noise model. */

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/noise.hh"

namespace
{

using namespace interf;
using namespace interf::core;

TEST(Noise, NoneIsExact)
{
    NoiseModel model(NoiseConfig::none(), 42);
    for (u64 run = 0; run < 20; ++run)
        EXPECT_EQ(model.perturbCycles(run, 1000000), 1000000u);
}

TEST(Noise, DeterministicPerRunId)
{
    NoiseConfig cfg;
    NoiseModel a(cfg, 42), b(cfg, 42);
    for (u64 run = 0; run < 20; ++run)
        EXPECT_EQ(a.perturbCycles(run, 123456789),
                  b.perturbCycles(run, 123456789));
}

TEST(Noise, DifferentRunsDiffer)
{
    NoiseConfig cfg;
    NoiseModel model(cfg, 42);
    std::set<Cycle> seen;
    for (u64 run = 0; run < 10; ++run)
        seen.insert(model.perturbCycles(run, 1000000000));
    EXPECT_GT(seen.size(), 7u);
}

TEST(Noise, DifferentSeedsDiffer)
{
    NoiseConfig cfg;
    NoiseModel a(cfg, 1), b(cfg, 2);
    int same = 0;
    for (u64 run = 0; run < 20; ++run)
        same += a.perturbCycles(run, 1000000000) ==
                b.perturbCycles(run, 1000000000);
    EXPECT_LT(same, 3);
}

TEST(Noise, MagnitudeMatchesSigma)
{
    NoiseConfig cfg;
    cfg.jitterSigma = 0.002;
    cfg.spikeProb = 0.0;
    NoiseModel model(cfg, 7);
    const Cycle base = 1000000000;
    double sum = 0, sum2 = 0;
    const int n = 2000;
    for (int run = 0; run < n; ++run) {
        double rel =
            double(model.perturbCycles(run, base)) / double(base) - 1.0;
        sum += rel;
        sum2 += rel * rel;
    }
    double mean = sum / n;
    double sd = std::sqrt(sum2 / n - mean * mean);
    EXPECT_NEAR(mean, 0.0, 3e-4);
    EXPECT_NEAR(sd, 0.002, 4e-4);
}

TEST(Noise, SpikesOnlyInflate)
{
    NoiseConfig cfg;
    cfg.jitterSigma = 0.0;
    cfg.spikeProb = 1.0;
    cfg.spikeMax = 0.05;
    NoiseModel model(cfg, 9);
    const Cycle base = 1000000;
    for (int run = 0; run < 100; ++run) {
        Cycle c = model.perturbCycles(run, base);
        EXPECT_GE(c, base);
        EXPECT_LE(c, base + base / 19); // <= 5.3%
    }
}

TEST(Noise, NonQuiescentIsNoisier)
{
    NoiseConfig quiet;
    NoiseConfig loud = quiet;
    loud.quiescent = false;
    const Cycle base = 1000000000;
    auto spread = [&](const NoiseConfig &cfg) {
        NoiseModel model(cfg, 3);
        double acc = 0;
        for (int run = 0; run < 500; ++run) {
            double rel =
                double(model.perturbCycles(run, base)) / base - 1.0;
            acc += rel * rel;
        }
        return acc;
    };
    EXPECT_GT(spread(loud), spread(quiet) * 4);
}

TEST(Noise, MedianOfFiveTightensEstimates)
{
    // The paper's protocol defends against spikes: the median of five
    // noisy runs is much closer to truth than the mean is.
    NoiseConfig cfg;
    cfg.jitterSigma = 0.002;
    cfg.spikeProb = 0.2;
    cfg.spikeMax = 0.10;
    NoiseModel model(cfg, 11);
    const Cycle base = 1000000000;
    double sum_median = 0, sum_single = 0, worst_median = 0,
           worst_single = 0;
    const int reps = 200;
    for (int rep = 0; rep < reps; ++rep) {
        std::vector<double> runs;
        for (int r = 0; r < 5; ++r)
            runs.push_back(double(
                model.perturbCycles(rep * 5 + r, base)));
        std::sort(runs.begin(), runs.end());
        double med_err = std::fabs(runs[2] / base - 1.0);
        sum_median += med_err;
        worst_median = std::max(worst_median, med_err);
        // Compare with the first (arbitrary) single run of the set.
        double single_err = std::fabs(
            double(model.perturbCycles(rep * 5, base)) / base - 1.0);
        sum_single += single_err;
        worst_single = std::max(worst_single, single_err);
    }
    // Median-of-five is better on average and in the worst case.
    EXPECT_LT(sum_median, sum_single);
    EXPECT_LE(worst_median, worst_single);
    EXPECT_LT(sum_median / reps, 0.01);
}

} // anonymous namespace
