/** @file End-to-end integration tests: the full interferometry pipeline
 *  at reduced scale, checking the paper's qualitative results. */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bpred/factory.hh"
#include "interferometry/campaign.hh"
#include "interferometry/model.hh"
#include "interferometry/predict.hh"
#include "pinsim/pinsim.hh"
#include "workloads/spec.hh"

namespace
{

using namespace interf;
using namespace interf::interferometry;

CampaignConfig
integrationConfig(u32 layouts)
{
    CampaignConfig cfg;
    cfg.instructionBudget = 200000;
    cfg.initialLayouts = layouts;
    cfg.maxLayouts = layouts;
    return cfg;
}

TEST(Integration, PerlbenchPipeline)
{
    auto spec = workloads::specFor("400.perlbench");
    Campaign camp(spec.profile, integrationConfig(24));
    auto samples = camp.measureLayouts(0, 24);
    PerformanceModel model(spec.profile.name, samples);

    // Significant positive CPI~MPKI relation.
    EXPECT_TRUE(model.branchSignificant());
    EXPECT_GT(model.branchModel().fit.slope(), 0.005);
    EXPECT_LT(model.branchModel().fit.slope(), 0.2);

    // The operating point is in the right neighbourhood (CPI < 1.2,
    // MPKI several-per-kilo).
    EXPECT_GT(model.meanMpki(), 2.0);
    EXPECT_LT(model.meanMpki(), 20.0);
    EXPECT_GT(model.meanCpi(), 0.3);
    EXPECT_LT(model.meanCpi(), 1.5);

    // Perfect prediction is an improvement with a sane interval.
    PredictorEvaluator eval(model, model.meanCpi());
    auto perfect = eval.evaluatePerfect();
    EXPECT_GT(perfect.improvementVsReal, 0.02);
    EXPECT_LT(perfect.improvementVsReal, 0.6);
    EXPECT_LT(perfect.pi.lo, perfect.cpi);
}

TEST(Integration, PinsimPlusModelPredictsLtageGain)
{
    auto spec = workloads::specFor("445.gobmk");
    Campaign camp(spec.profile, integrationConfig(20));
    auto samples = camp.measureLayouts(0, 20);
    PerformanceModel model(spec.profile.name, samples);
    ASSERT_TRUE(model.branchSignificant());

    // Measure candidate predictors with the Pin-style tool on the same
    // first layouts.
    pinsim::PinSim sim({"gas:8192:10", "ltage"});
    std::vector<std::vector<pinsim::PredictorResult>> per_layout;
    for (u32 i = 0; i < 8; ++i)
        per_layout.push_back(
            sim.run(camp.program(), camp.trace(), camp.codeLayoutFor(i)));
    auto avg = pinsim::averageMpki(per_layout);

    // L-TAGE beats the 8KB GAs.
    EXPECT_LT(avg[1], avg[0]);

    // Model-predicted CPI: ltage < gas (both below real mean CPI since
    // both beat the real predictor here).
    PredictorEvaluator eval(model, model.meanCpi());
    auto gas = eval.evaluate("gas-8k", avg[0]);
    auto ltage = eval.evaluate("ltage", avg[1]);
    EXPECT_LT(ltage.cpi, gas.cpi);
}

TEST(Integration, FlatBenchmarkFailsGate)
{
    auto spec = workloads::specFor("470.lbm");
    Campaign camp(spec.profile, integrationConfig(12));
    auto samples = camp.measureLayouts(0, 12);
    PerformanceModel model(spec.profile.name, samples);
    // Either the t-test fails or the MPKI range is meaninglessly small;
    // the campaign-level gate (run()) combines both.
    CampaignConfig cfg = integrationConfig(12);
    Campaign gated(spec.profile, cfg);
    auto res = gated.run();
    EXPECT_FALSE(res.significant);
}

TEST(Integration, HeapRandomizationElicitsCacheVariance)
{
    // Figure 3 mechanism end-to-end on the calculix analog.
    auto spec = workloads::specFor("454.calculix");
    auto cfg = integrationConfig(16);
    cfg.randomizeHeap = true;
    Campaign camp(spec.profile, cfg);
    auto samples = camp.measureLayouts(0, 16);

    auto l1d = column(samples, &core::Measurement::l1dMpki);
    double lo = *std::min_element(l1d.begin(), l1d.end());
    double hi = *std::max_element(l1d.begin(), l1d.end());
    EXPECT_GT(hi - lo, 0.0) << "heap randomization must move L1D misses";

    // And the variance correlates with performance: fit CPI ~ L1D.
    stats::LinearFit fit(l1d, column(samples, &core::Measurement::cpi));
    EXPECT_GT(fit.r2(), 0.0);
}

TEST(Integration, SimulatedSweepIsLinear)
{
    // Section 3 at small scale: CPI is near-linear in MPKI when only
    // the predictor changes.
    auto spec = workloads::specFor("456.hmmer");
    Campaign camp(spec.profile, integrationConfig(1));
    auto code = camp.codeLayoutFor(0);
    auto heap = camp.heapLayoutFor(0);

    std::vector<double> mpki, cpi;
    auto sweep = bpred::sweepSpecs();
    for (size_t i = 0; i < sweep.size(); i += 12) {
        core::Machine machine(
            core::MachineConfig::xeonE5440().withPredictor(sweep[i]));
        auto r = machine.run(camp.program(), camp.trace(), code, heap);
        mpki.push_back(r.mpki());
        cpi.push_back(r.cpi());
    }
    stats::LinearFit fit(mpki, cpi);
    EXPECT_GT(fit.r2(), 0.95);

    // Extrapolation to 0 MPKI lands near the true perfect-prediction
    // CPI (paper: avg error 1.32%).
    core::Machine perfect(
        core::MachineConfig::xeonE5440().withPredictor("perfect"));
    auto pr = perfect.run(camp.program(), camp.trace(), code, heap);
    double err = std::fabs(fit.predict(0.0) - pr.cpi()) / pr.cpi();
    EXPECT_LT(err, 0.05);
}

/** Property sweep: every suite benchmark runs end to end and produces
 *  finite, ordered statistics. */
class SuiteSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSmoke, CampaignAndModelWellFormed)
{
    auto spec = workloads::specFor(GetParam());
    Campaign camp(spec.profile, integrationConfig(6));
    auto samples = camp.measureLayouts(0, 6);
    ASSERT_EQ(samples.size(), 6u);
    PerformanceModel model(spec.profile.name, samples);
    EXPECT_TRUE(std::isfinite(model.meanCpi()));
    EXPECT_TRUE(std::isfinite(model.branchModel().fit.slope()));
    EXPECT_GT(model.meanCpi(), 0.25);
    EXPECT_LT(model.meanCpi(), 12.0);
    EXPECT_GE(model.meanMpki(), 0.0);
    auto pi = model.predictionInterval(model.meanMpki());
    EXPECT_LT(pi.lo, model.meanCpi());
    EXPECT_GT(pi.hi, model.meanCpi());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteSmoke,
    ::testing::ValuesIn(interf::workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &ch : name)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // anonymous namespace
