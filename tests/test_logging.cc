/** @file Tests for strprintf, the assertion/death machinery, and the
 *  log sink (timestamps, dedup, observer). */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace
{

using interf::strprintf;

TEST(Strprintf, FormatsBasicTypes)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Strprintf, EmptyAndLongStrings)
{
    EXPECT_EQ(strprintf("%s", ""), "");
    std::string big(5000, 'x');
    EXPECT_EQ(strprintf("%s", big.c_str()), big);
}

TEST(AssertDeathTest, PanicsOnViolation)
{
    EXPECT_DEATH({ INTERF_ASSERT(1 + 1 == 3); }, "assertion failed");
}

TEST(AssertDeathTest, PassesQuietly)
{
    INTERF_ASSERT(2 + 2 == 4);
    SUCCEED();
}

TEST(PanicDeathTest, PanicAborts)
{
    EXPECT_DEATH(interf::panic("boom %d", 7), "boom 7");
}

TEST(FatalDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(interf::fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LogSink, DedupsConsecutiveIdenticalWarnings)
{
    interf::flushLog();
    testing::internal::CaptureStderr();
    interf::warn("dup message %d", 1);
    interf::warn("dup message %d", 1);
    interf::warn("dup message %d", 1);
    interf::warn("different message");
    std::string err = testing::internal::GetCapturedStderr();
    // One printed instance, one repeat summary, then the new message.
    EXPECT_EQ(err.find("dup message 1"), err.rfind("dup message 1"));
    EXPECT_NE(err.find("repeated 2 more times"), std::string::npos);
    EXPECT_NE(err.find("different message"), std::string::npos);
}

TEST(LogSink, FlushEmitsPendingRepeatSummary)
{
    interf::flushLog();
    testing::internal::CaptureStderr();
    interf::warn("trailing dup");
    interf::warn("trailing dup");
    interf::flushLog();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("repeated 1 more time"), std::string::npos);
}

TEST(LogSink, DedupDisabledByEnv)
{
    interf::flushLog();
    setenv("INTERF_LOG_DEDUP", "0", 1);
    testing::internal::CaptureStderr();
    interf::warn("undeduped");
    interf::warn("undeduped");
    std::string err = testing::internal::GetCapturedStderr();
    unsetenv("INTERF_LOG_DEDUP");
    EXPECT_NE(err.find("undeduped"), err.rfind("undeduped"));
    EXPECT_EQ(err.find("repeated"), std::string::npos);
}

TEST(LogSink, TimestampsWhenRequested)
{
    interf::flushLog();
    setenv("INTERF_LOG_TS", "1", 1);
    testing::internal::CaptureStderr();
    interf::inform("stamped line");
    std::string err = testing::internal::GetCapturedStderr();
    unsetenv("INTERF_LOG_TS");
    // "[+12.345] info: stamped line"
    EXPECT_EQ(err.rfind("[+", 0), 0u) << err;
    EXPECT_NE(err.find("] info: stamped line"), std::string::npos) << err;
}

TEST(LogSink, ObserverSeesEveryMessageIncludingSuppressed)
{
    interf::flushLog();
    std::vector<std::pair<interf::LogLevel, std::string>> seen;
    interf::setLogObserver(
        [&seen](interf::LogLevel level, const std::string &msg) {
            seen.emplace_back(level, msg);
        });
    testing::internal::CaptureStderr();
    interf::warn("observed");
    interf::warn("observed"); // Suppressed on stderr, still observed.
    interf::inform("status");
    interf::setLogObserver(nullptr);
    interf::warn("after clear"); // Must not reach the observer.
    testing::internal::GetCapturedStderr();
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].first, interf::LogLevel::Warn);
    EXPECT_EQ(seen[0].second, "observed");
    EXPECT_EQ(seen[1].second, "observed");
    EXPECT_EQ(seen[2].first, interf::LogLevel::Inform);
    EXPECT_EQ(seen[2].second, "status");
}

} // anonymous namespace
