/** @file Tests for strprintf and the assertion/death machinery. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace
{

using interf::strprintf;

TEST(Strprintf, FormatsBasicTypes)
{
    EXPECT_EQ(strprintf("x=%d", 42), "x=42");
    EXPECT_EQ(strprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Strprintf, EmptyAndLongStrings)
{
    EXPECT_EQ(strprintf("%s", ""), "");
    std::string big(5000, 'x');
    EXPECT_EQ(strprintf("%s", big.c_str()), big);
}

TEST(AssertDeathTest, PanicsOnViolation)
{
    EXPECT_DEATH({ INTERF_ASSERT(1 + 1 == 3); }, "assertion failed");
}

TEST(AssertDeathTest, PassesQuietly)
{
    INTERF_ASSERT(2 + 2 == 4);
    SUCCEED();
}

TEST(PanicDeathTest, PanicAborts)
{
    EXPECT_DEATH(interf::panic("boom %d", 7), "boom 7");
}

TEST(FatalDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(interf::fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

} // anonymous namespace
