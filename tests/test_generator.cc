/** @file Tests for the dynamic trace generator (CFG interpreter). */

#include <gtest/gtest.h>

#include "trace/generator.hh"
#include "workloads/builder.hh"
#include "workloads/profile.hh"

namespace
{

using namespace interf;
using namespace interf::trace;
using workloads::defaultProfile;

Program
testProgram()
{
    return workloads::buildProgram(defaultProfile("gen"));
}

TEST(Generator, DeterministicTraces)
{
    auto prog = testProgram();
    TraceGenerator g1(prog, 123), g2(prog, 123);
    auto t1 = g1.makeTrace(50000);
    auto t2 = g2.makeTrace(50000);
    ASSERT_EQ(t1.events.size(), t2.events.size());
    EXPECT_EQ(t1.instCount, t2.instCount);
    EXPECT_EQ(t1.memIds, t2.memIds);
    for (size_t i = 0; i < t1.events.size(); ++i) {
        EXPECT_EQ(t1.events[i].proc, t2.events[i].proc);
        EXPECT_EQ(t1.events[i].block, t2.events[i].block);
        EXPECT_EQ(t1.events[i].taken, t2.events[i].taken);
    }
}

TEST(Generator, DifferentSeedsDifferentTraces)
{
    auto prog = testProgram();
    auto t1 = TraceGenerator(prog, 1).makeTrace(50000);
    auto t2 = TraceGenerator(prog, 2).makeTrace(50000);
    EXPECT_NE(t1.instCount, t2.instCount);
}

TEST(Generator, BudgetMetAtMainBoundary)
{
    auto prog = testProgram();
    TraceGenerator gen(prog, 5);
    u64 per_main = gen.instructionsPerMainCall();
    EXPECT_GT(per_main, 0u);
    auto trace = gen.makeTrace(100000);
    EXPECT_GE(trace.instCount, 100000u);
    // Whole invocations only: the overshoot is less than one call.
    EXPECT_LT(trace.instCount, 100000u + per_main + 1);
}

TEST(Generator, CaminoInvariantSameInstCountPerSeed)
{
    // Every "executable" (layout) of a benchmark retires the same
    // instructions; the trace does not depend on layout at all, so
    // re-generation must reproduce the exact count.
    auto prog = testProgram();
    u64 count = TraceGenerator(prog, 9).makeTrace(80000).instCount;
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(TraceGenerator(prog, 9).makeTrace(80000).instCount,
                  count);
}

TEST(Generator, TraceValidatesAgainstProgram)
{
    auto prog = testProgram();
    auto trace = TraceGenerator(prog, 7).makeTrace(60000);
    trace.validate(prog); // panics on malformation
    SUCCEED();
}

TEST(Generator, RecountMatchesGeneratorCounts)
{
    auto prog = testProgram();
    auto trace = TraceGenerator(prog, 7).makeTrace(60000);
    u64 insts = trace.instCount;
    u64 conds = trace.condBranches;
    u64 loads = trace.loads;
    u64 stores = trace.stores;
    trace.recount(prog);
    EXPECT_EQ(trace.instCount, insts);
    EXPECT_EQ(trace.condBranches, conds);
    EXPECT_EQ(trace.loads, loads);
    EXPECT_EQ(trace.stores, stores);
}

TEST(Generator, MemIdsInRegionBounds)
{
    auto prog = testProgram();
    auto trace = TraceGenerator(prog, 3).makeTrace(60000);
    for (u64 id : trace.memIds) {
        u32 region = dataIdRegion(id);
        ASSERT_LT(region, prog.regions().size());
        EXPECT_LT(dataIdOffset(id), prog.region(region).size);
        EXPECT_EQ(dataIdOffset(id) % 8, 0u) << "8-byte aligned";
    }
}

TEST(Generator, ColdProceduresNeverExecute)
{
    auto profile = defaultProfile("gen");
    auto prog = workloads::buildProgram(profile);
    auto trace = TraceGenerator(prog, 11).makeTrace(60000);
    for (const auto &ev : trace.events)
        EXPECT_LE(ev.proc, profile.hotProcedures)
            << "cold procedures are never called";
}

TEST(Generator, TakenFlagConsistentWithTerminators)
{
    auto prog = testProgram();
    auto trace = TraceGenerator(prog, 13).makeTrace(60000);
    for (const auto &ev : trace.events) {
        const auto &bb = prog.block(ev.proc, ev.block);
        switch (bb.branch.kind) {
          case OpClass::IntAlu:
            EXPECT_FALSE(ev.taken);
            break;
          case OpClass::UncondBranch:
          case OpClass::Call:
          case OpClass::Return:
          case OpClass::IndirectBranch:
            EXPECT_TRUE(ev.taken);
            break;
          default:
            break; // conditional: either way
        }
    }
}

TEST(Generator, PeriodicLoopsIterateAtPeriod)
{
    // Build a tiny program with one loop of known period and check the
    // back-edge takes period-1 times per entry.
    Program prog;
    Procedure main_proc;
    main_proc.name = "main";
    {
        BasicBlock body;
        body.nInsts = 2;
        body.bytes = 8;
        body.branch.kind = OpClass::CondBranch;
        body.branch.targetProc = 0;
        body.branch.targetBlock = 0; // self-loop
        body.branch.pattern = BranchPattern::Periodic;
        body.branch.period = 5;
        main_proc.blocks.push_back(body);
    }
    {
        BasicBlock ret;
        ret.nInsts = 1;
        ret.bytes = 4;
        ret.branch.kind = OpClass::Return;
        main_proc.blocks.push_back(ret);
    }
    prog.addProcedure(main_proc);
    u32 f = prog.addFile("a.o");
    prog.placeInFile(f, 0);
    prog.validate();

    TraceGenerator gen(prog, 1);
    auto trace = gen.makeTrace(1);
    // One main call: block 0 executes 5 times (4 taken + 1 not-taken),
    // then the return block.
    int block0 = 0, taken = 0;
    for (const auto &ev : trace.events) {
        if (ev.block == 0) {
            ++block0;
            taken += ev.taken;
        }
    }
    EXPECT_EQ(block0, 5);
    EXPECT_EQ(taken, 4);
}

TEST(Generator, HistoryParityIsDeterministicFunctionOfHistory)
{
    // Two generators over the same program/seed see identical parity
    // outcomes; covered by determinism, but also check a parity site
    // actually varies (not stuck).
    auto profile = defaultProfile("gen");
    profile.fracHistory = 0.5;
    profile.fracBiased = 0.2;
    profile.fracPeriodic = 0.2;
    profile.fracRandom = 0.1;
    auto prog = workloads::buildProgram(profile);
    auto trace = TraceGenerator(prog, 21).makeTrace(40000);
    EXPECT_GT(trace.condBranches, 0u);
    EXPECT_GT(trace.takenBranches, 0u);
    EXPECT_LT(trace.takenBranches, trace.events.size());
}

TEST(Generator, LoopGuardForcesExit)
{
    // A biased branch with takenProb 1.0 on a self-loop would never
    // exit; the consecutive-taken guard must cut it.
    Program prog;
    Procedure main_proc;
    main_proc.name = "main";
    BasicBlock body;
    body.nInsts = 1;
    body.bytes = 4;
    body.branch.kind = OpClass::CondBranch;
    body.branch.targetProc = 0;
    body.branch.targetBlock = 0;
    body.branch.pattern = BranchPattern::Biased;
    body.branch.takenProb = 1.0f;
    main_proc.blocks.push_back(body);
    BasicBlock ret;
    ret.nInsts = 1;
    ret.bytes = 4;
    ret.branch.kind = OpClass::Return;
    main_proc.blocks.push_back(ret);
    prog.addProcedure(main_proc);
    prog.placeInFile(prog.addFile("a.o"), 0);

    GeneratorLimits limits;
    limits.maxLoopIterations = 100;
    TraceGenerator gen(prog, 1, limits);
    auto trace = gen.makeTrace(1);
    EXPECT_LT(trace.events.size(), 300u);
}

TEST(Generator, MemoryFootprintReasonable)
{
    auto prog = testProgram();
    auto trace = TraceGenerator(prog, 17).makeTrace(100000);
    EXPECT_GT(trace.memoryBytes(), 0u);
    // Compact storage: well under 100 B per instruction.
    EXPECT_LT(trace.memoryBytes(), trace.instCount * 100);
}

} // anonymous namespace
