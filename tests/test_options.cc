/** @file Tests for the command-line option parser. */

#include <vector>

#include <gtest/gtest.h>

#include "util/options.hh"

namespace
{

using interf::OptionParser;

/** Build argv from a list of strings (argv[0] is the program name). */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : strings_(std::move(args))
    {
        strings_.insert(strings_.begin(), "prog");
        for (auto &s : strings_)
            ptrs_.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> strings_;
    std::vector<char *> ptrs_;
};

OptionParser
makeParser()
{
    OptionParser p("prog", "test parser");
    p.addInt("layouts", 100, "number of layouts");
    p.addDouble("alpha", 0.05, "significance level");
    p.addString("bench", "perlbench", "benchmark name");
    p.addFlag("full", "run at paper scale");
    return p;
}

TEST(Options, DefaultsApply)
{
    auto p = makeParser();
    Argv a({});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("layouts"), 100);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), 0.05);
    EXPECT_EQ(p.getString("bench"), "perlbench");
    EXPECT_FALSE(p.getFlag("full"));
}

TEST(Options, SpaceSeparatedValues)
{
    auto p = makeParser();
    Argv a({"--layouts", "30", "--alpha", "0.01", "--bench", "mcf",
            "--full"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("layouts"), 30);
    EXPECT_DOUBLE_EQ(p.getDouble("alpha"), 0.01);
    EXPECT_EQ(p.getString("bench"), "mcf");
    EXPECT_TRUE(p.getFlag("full"));
}

TEST(Options, EqualsSyntax)
{
    auto p = makeParser();
    Argv a({"--layouts=7", "--bench=astar"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("layouts"), 7);
    EXPECT_EQ(p.getString("bench"), "astar");
}

TEST(Options, NegativeAndHexIntegers)
{
    auto p = makeParser();
    Argv a({"--layouts=-5"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("layouts"), -5);

    auto p2 = makeParser();
    Argv b({"--layouts", "0x10"});
    p2.parse(b.argc(), b.argv());
    EXPECT_EQ(p2.getInt("layouts"), 16);
}

TEST(Options, UsageMentionsAllOptions)
{
    auto p = makeParser();
    auto text = p.usage();
    EXPECT_NE(text.find("--layouts"), std::string::npos);
    EXPECT_NE(text.find("--alpha"), std::string::npos);
    EXPECT_NE(text.find("--bench"), std::string::npos);
    EXPECT_NE(text.find("--full"), std::string::npos);
    EXPECT_NE(text.find("default"), std::string::npos);
}

TEST(OptionsDeathTest, UnknownOptionIsFatal)
{
    auto p = makeParser();
    Argv a({"--nope", "1"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(OptionsDeathTest, MissingValueIsFatal)
{
    auto p = makeParser();
    Argv a({"--layouts"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "requires a value");
}

TEST(OptionsDeathTest, BadIntegerIsFatal)
{
    auto p = makeParser();
    Argv a({"--layouts", "ten"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(OptionsDeathTest, FlagWithValueIsFatal)
{
    auto p = makeParser();
    Argv a({"--full=yes"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                ::testing::ExitedWithCode(1), "does not take a value");
}

TEST(OptionsDeathTest, WrongTypeAccessPanics)
{
    auto p = makeParser();
    Argv a({});
    p.parse(a.argc(), a.argv());
    EXPECT_DEATH((void)p.getInt("alpha"), "wrong type");
}

} // anonymous namespace
