/**
 * @file
 * LayoutInjectivity: static proof that layout permutations keep block
 * addresses distinct.
 *
 * The replay kernels store u32 *site indices* as BTB target tokens
 * instead of 8-byte target addresses, which is sound iff block
 * addresses are injective per layout: token equality must coincide
 * with address equality. PR 8 checks that at runtime in
 * LayoutTables::fillCode, per materialized table, under
 * verifyOnTrust(). This pass proves it *statically* for any set of
 * LayoutSpec candidates, with no table materialization, by abstractly
 * replaying the linker's address arithmetic:
 *
 *   - blocks are contiguous within a procedure, so two blocks of one
 *     procedure are distinct iff no block is zero bytes;
 *   - the link cursor is monotone (align-up, then advance by the
 *     procedure's size), so procedures occupy disjoint, increasing
 *     extents for ANY permutation — two blocks of different
 *     procedures can never share an address;
 *   - therefore injectivity holds for a spec iff the program has no
 *     zero-byte block and the spec is a well-formed permutation.
 *
 * The proof is O(procedures) per spec; the final cursor additionally
 * bounds the text extent, which must stay below the u32 full-PC BTB
 * tag sentinel for that layout's branch PCs to be taggable at all.
 */

#include "analyze/analyze.hh"

#include <algorithm>
#include <numeric>

#include "layout/linker.hh"
#include "trace/program.hh"

#include "util/logging.hh"

namespace interf::analyze
{

namespace
{

constexpr const char *kPassName = "layout-injectivity";

/** True when @p v is a permutation of @p universe (order-free). */
bool
isPermutationOf(std::vector<u32> v, std::vector<u32> universe)
{
    std::sort(v.begin(), v.end());
    std::sort(universe.begin(), universe.end());
    return v == universe;
}

/** The worst text address any block of @p spec can reach, exclusive:
 *  the link cursor after the last procedure. Returns 0 on a malformed
 *  spec (reported separately). */
Addr
textExtent(const trace::Program &prog, const layout::LayoutSpec &spec)
{
    Addr cursor = layout::kDefaultTextBase;
    for (u32 file : spec.fileOrder) {
        if (file >= spec.procOrder.size())
            return 0;
        for (u32 pid : spec.procOrder[file]) {
            if (pid >= prog.procedures().size())
                return 0;
            const auto &proc = prog.proc(pid);
            Addr align = proc.align ? proc.align : 1;
            cursor = (cursor + align - 1) / align * align;
            cursor += proc.bytes();
        }
    }
    return cursor;
}

class LayoutInjectivity : public verify::Pass
{
  public:
    const char *name() const override { return kPassName; }

    bool applicable(const verify::Artifacts &a) const override
    {
        return a.program != nullptr && a.layoutSpecs != nullptr &&
               !a.layoutSpecs->empty();
    }

    void run(const verify::Artifacts &a,
             verify::VerifyResult &out) const override
    {
        using verify::EntityKind;
        verify::Sink sink(out, a.path, kPassName);
        const trace::Program &prog = *a.program;

        // Zero-byte blocks defeat injectivity in every layout: the
        // block shares its start address with its successor (or, at
        // the end of a procedure, possibly with the next procedure's
        // first block after alignment). One check covers all specs.
        u32 site = 0;
        for (const auto &proc : prog.procedures()) {
            for (size_t b = 0; b < proc.blocks.size(); ++b, ++site) {
                if (proc.blocks[b].bytes == 0) {
                    sink.error(
                        EntityKind::Block, site,
                        strprintf("proc %u ('%s') block %zu has zero "
                                  "bytes; its address aliases the "
                                  "next block in every layout, so "
                                  "u32 site tokens are not a sound "
                                  "target encoding",
                                  proc.id, proc.name.c_str(), b));
                }
            }
        }

        std::vector<u32> file_universe(prog.files().size());
        std::iota(file_universe.begin(), file_universe.end(), 0);

        for (size_t k = 0; k < a.layoutSpecs->size(); ++k) {
            const layout::LayoutSpec &spec = (*a.layoutSpecs)[k];
            bool shape_ok = true;
            if (!isPermutationOf(spec.fileOrder, file_universe)) {
                sink.error(EntityKind::Artifact, k,
                           strprintf("layout spec %zu: fileOrder is "
                                     "not a permutation of the %zu "
                                     "object files",
                                     k, prog.files().size()));
                shape_ok = false;
            }
            if (spec.procOrder.size() != prog.files().size()) {
                sink.error(EntityKind::Artifact, k,
                           strprintf("layout spec %zu: procOrder has "
                                     "%zu entries for %zu files",
                                     k, spec.procOrder.size(),
                                     prog.files().size()));
                shape_ok = false;
            } else {
                for (size_t f = 0; f < spec.procOrder.size(); ++f) {
                    if (!isPermutationOf(spec.procOrder[f],
                                         prog.files()[f].procIds)) {
                        sink.error(
                            EntityKind::Artifact, k,
                            strprintf("layout spec %zu: procOrder[%zu]"
                                      " is not a permutation of file "
                                      "'%s' procedures",
                                      k, f,
                                      prog.files()[f].name.c_str()));
                        shape_ok = false;
                    }
                }
            }
            if (!shape_ok)
                continue;

            // With shape proven, injectivity reduces to the zero-byte
            // check above; what remains per spec is the u32 PC bound.
            Addr extent = textExtent(prog, spec);
            if (extent > Addr{~u32{0}}) {
                sink.error(
                    EntityKind::Btb, 0,
                    strprintf("layout spec %zu: text extent reaches "
                              "%#llx; branch PCs past %#llx cannot be "
                              "tagged by the u32 full-PC BTB tag",
                              k,
                              static_cast<unsigned long long>(extent),
                              static_cast<unsigned long long>(
                                  Addr{~u32{0}} - 1)));
            }
        }
    }
};

} // anonymous namespace

void
checkSiteAddressInjectivity(const std::vector<Addr> &site_addr,
                            const std::vector<u8> &site_is_target,
                            const std::string &path,
                            verify::VerifyResult &out)
{
    verify::Sink sink(out, path, kPassName);
    if (site_is_target.size() != site_addr.size()) {
        sink.error(verify::EntityKind::Artifact, 0,
                   strprintf("site table sizes disagree: %zu "
                             "addresses vs %zu target flags",
                             site_addr.size(), site_is_target.size()));
        return;
    }
    // Sort target sites by address; equal neighbours are aliases.
    std::vector<u32> targets;
    targets.reserve(site_addr.size());
    for (u32 s = 0; s < site_addr.size(); ++s) {
        if (site_is_target[s])
            targets.push_back(s);
    }
    std::sort(targets.begin(), targets.end(), [&](u32 a, u32 b) {
        return site_addr[a] != site_addr[b] ? site_addr[a] < site_addr[b]
                                            : a < b;
    });
    for (size_t i = 1; i < targets.size(); ++i) {
        u32 prev = targets[i - 1], cur = targets[i];
        if (site_addr[prev] == site_addr[cur]) {
            sink.error(
                verify::EntityKind::Site, cur,
                strprintf("branch-target sites %u and %u share "
                          "address %#llx; u32 site tokens would call "
                          "unequal targets equal",
                          prev, cur,
                          static_cast<unsigned long long>(
                              site_addr[cur])));
        }
    }
}

std::unique_ptr<verify::Pass>
makeLayoutInjectivity()
{
    return std::make_unique<LayoutInjectivity>();
}

} // namespace interf::analyze
