/**
 * @file
 * PlanBounds: wrap-bound analysis of one ReplayPlan against a machine.
 *
 * The compacted cache keeps LRU recency as u32 stamps against a u32
 * clock that restarts at every reset() — so correctness needs the
 * clock to advance fewer than 2^32 times between resets, i.e. within
 * ONE replay of the plan. This pass derives that bound statically from
 * the plan's event arrays, before any replay runs:
 *
 *   fetchLines = sum over events of (bytes/line + 1)  — an upper bound
 *     on demand-fetched L1I lines (a block of B bytes spans at most
 *     B/line + 1 lines wherever a layout places it);
 *   L1I advance <= 2 * fetchLines   (demand touch + at most one
 *     next-line prefetch install per new line);
 *   L1D advance <= memCount         (one touch per data access);
 *   L2 advance  <= 2 * fetchLines + memCount (demand-miss fill +
 *     prefetch fill probe per line, one probe per data miss).
 *
 * Narrow (u8-age) caches need no bound: renormalization is invoked by
 * the per-set clock itself and is sound for any touch count. The u8
 * BTB recency scheme likewise handles wrap by construction.
 *
 * The same pass checks the plan's index widths against their u32
 * sentinels (site ids vs ReplayPlan::kNoSite, memory-universe ranks),
 * which every compacted table indexes with u32.
 */

#include "analyze/analyze.hh"

#include "core/config.hh"
#include "trace/replay.hh"

#include "util/logging.hh"

namespace interf::analyze
{

namespace
{

constexpr const char *kPassName = "plan-bounds";

constexpr u64 kU32Wrap = u64{1} << 32;

void
checkLruAdvanceBoundIn(const cache::CacheConfig &cfg,
                       bool claimed_narrow, u64 advance_bound,
                       u32 cache_index, verify::Sink &sink)
{
    if (cfg.replacement != cache::Replacement::Lru || claimed_narrow)
        return;
    if (advance_bound >= kU32Wrap) {
        sink.error(
            verify::EntityKind::Cache, cache_index,
            strprintf("'%s': one replay can advance the u32 LRU stamp "
                      "clock %llu times (>= 2^32); the per-reset "
                      "restart no longer bounds the clock, so stamps "
                      "could wrap and invert victim choice",
                      cfg.name.c_str(),
                      static_cast<unsigned long long>(advance_bound)));
    }
}

class PlanBounds : public verify::Pass
{
  public:
    const char *name() const override { return kPassName; }

    bool applicable(const verify::Artifacts &a) const override
    {
        return a.machine != nullptr && a.plan != nullptr;
    }

    void run(const verify::Artifacts &a,
             verify::VerifyResult &out) const override
    {
        using verify::EntityKind;
        verify::Sink sink(out, a.path, kPassName);
        const core::MachineConfig &m = *a.machine;
        const trace::ReplayPlan &plan = *a.plan;

        LruAdvanceBounds bounds = lruAdvanceBounds(m, plan);
        const cache::CacheConfig *caches[3] = {&m.hierarchy.l1i,
                                               &m.hierarchy.l1d,
                                               &m.hierarchy.l2};
        for (u32 i = 0; i < 3; ++i)
            checkLruAdvanceBoundIn(*caches[i], narrowLruFor(*caches[i]),
                                   bounds.forCache(i), i, sink);

        // u32 index widths. Site ids share their space with the
        // kNoSite sentinel; memory ranks index the universe table.
        if (plan.siteCount() >=
            static_cast<size_t>(trace::ReplayPlan::kNoSite)) {
            sink.error(EntityKind::Site, plan.siteCount() - 1,
                       strprintf("%zu sites collide with the u32 "
                                 "kNoSite sentinel",
                                 plan.siteCount()));
        }
        if (plan.memUniverse.size() > static_cast<size_t>(~u32{0})) {
            sink.error(EntityKind::MemAccess,
                       plan.memUniverse.size() - 1,
                       strprintf("%zu distinct memory ids exceed the "
                                 "u32 memRank width",
                                 plan.memUniverse.size()));
        }
    }
};

} // anonymous namespace

LruAdvanceBounds
lruAdvanceBounds(const core::MachineConfig &machine,
                 const trace::ReplayPlan &plan)
{
    LruAdvanceBounds bounds;
    u32 line = machine.hierarchy.l1i.lineBytes;
    if (line == 0 || (line & (line - 1)) != 0)
        line = 64; // broken geometry is ConfigSoundness's diagnostic
    for (u32 b : plan.bytes)
        bounds.fetchLines += b / line + 1;
    bounds.l1i = 2 * bounds.fetchLines;
    bounds.l1d = plan.memCount();
    bounds.l2 = 2 * bounds.fetchLines + plan.memCount();
    return bounds;
}

void
checkLruAdvanceBound(const cache::CacheConfig &cfg, bool claimed_narrow,
                     u64 advance_bound, u32 cache_index,
                     const std::string &path, verify::VerifyResult &out)
{
    verify::Sink sink(out, path, kPassName);
    checkLruAdvanceBoundIn(cfg, claimed_narrow, advance_bound,
                           cache_index, sink);
}

std::unique_ptr<verify::Pass>
makePlanBounds()
{
    return std::make_unique<PlanBounds>();
}

} // namespace interf::analyze
