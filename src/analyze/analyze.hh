/**
 * @file
 * Static soundness analysis of machine configurations.
 *
 * PR 8's hot-state compaction made replay correctness rest on
 * *narrowing invariants*: 48-bit split tags with a 6-bit epoch salt at
 * bits 42..47, u8 LRU ages chosen by the Cache::kNarrowLruLines
 * geometry threshold, a u32 LRU stamp clock restarted per reset, and
 * u32 site-index BTB tags that require per-layout address injectivity.
 * Those invariants hold on the default Xeon E5440 config — tests pin
 * them there — but the fleet roadmap item runs campaigns across many
 * cache/BTB geometries, exactly where a narrowing trick that is sound
 * on one config silently goes wrong on another.
 *
 * This module *proves* the invariants per MachineConfig before any
 * replay runs, without constructing a Cache or materializing a single
 * layout table, and reports through the verify diagnostics-as-data
 * framework. Three passes (DESIGN.md §5k):
 *
 *   - ConfigSoundness:   interval/width analysis. Derives the required
 *     tag bits from the address space the layout engines + page maps
 *     can reach and proves the split tagsLo(u32)/tagsHi(u16) pair plus
 *     epoch-salt bits cover it with no overlap, for every cache and
 *     the BTB; re-derives the narrow-vs-stamp LRU representation
 *     choice and the geometry preconditions as typed diagnostics.
 *   - PlanBounds:        wrap-bound analysis. Bounds LRU clock advance
 *     per replay from a ReplayPlan's event counts and proves the u32
 *     stamp clock (restarted every reset) can never wrap — hence never
 *     invert victim choice — within one replay; checks the plan's
 *     index widths against their u32 sentinels.
 *   - LayoutInjectivity: proves, for explicit LayoutSpec permutations,
 *     that every basic-block address is distinct (so u32 site-index
 *     BTB target tokens compare equal iff the targets are equal) by
 *     replaying the linker's address arithmetic abstractly — O(procs)
 *     per spec, generalizing the runtime fillCode check to arbitrary
 *     candidate layouts with no table materialization.
 *
 * Trust boundaries: Campaign and opt::FitnessOracle refuse unsound
 * configs fail-closed (always, not only under verifyOnTrust() — the
 * analysis is a few hundred comparisons per campaign). The
 * tools/interf_analyze CLI exposes the same passes for fleet audits.
 */

#ifndef INTERF_ANALYZE_ANALYZE_HH
#define INTERF_ANALYZE_ANALYZE_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "verify/verify.hh"

#include "util/types.hh"

namespace interf::core
{
struct MachineConfig;
}
namespace interf::trace
{
class Program;
class ReplayPlan;
}

namespace interf::analyze
{

/**
 * Exclusive upper bounds of the address space the soundness analysis
 * must cover. Two ceilings because two different structures index
 * them: caches see post-page-map line addresses (data up to the stack
 * anchor, code possibly lifted by the Feistel permutation), the BTB
 * sees raw branch PCs.
 */
struct AddressSpace
{
    Addr lineCeiling = 0; ///< Any cache-indexed address is below this.
    Addr codeCeiling = 0; ///< Any branch PC is below this.

    /**
     * The engine contract with no program bound: data addresses stay
     * below the stack anchor (layout::kStackBase — globals, heap and
     * stack regions are all placed under it, and the page-map Feistel
     * permutation can lift an address to at most 2^(pageBits +
     * permutedVpnBits), which is lower still); code addresses stay
     * within the non-PIE text model's low 2 GiB. forProgram() replaces
     * the code ceiling with a proven per-program bound.
     */
    static AddressSpace engineDefault();

    /**
     * engineDefault() tightened by @p prog: the code ceiling becomes
     * the worst-case text extent over *all* layout permutations
     * (textBase + sum of every procedure's size plus maximal alignment
     * padding — sound for any link order the Linker can produce).
     */
    static AddressSpace forProgram(const trace::Program &prog);
};

/** @{ Pure derived facts, shared by the passes, the CLI report and
 *  the seeded-unsoundness tests. */

/** Tag bits needed to address lines below @p ceiling: the bit width
 *  of the largest line number, (ceiling - 1) >> log2(line_bytes).
 *  @p line_bytes must be a nonzero power of two. */
u32 requiredTagBits(u32 line_bytes, Addr ceiling);

/** The narrow-vs-stamp LRU representation the Cache constructor picks
 *  for this geometry (u8 per-set ages at or above kNarrowLruLines
 *  lines, u32 stamps below). False for non-LRU caches. */
bool narrowLruFor(const cache::CacheConfig &cfg);

/**
 * Upper bounds on LRU clock advance within ONE replay of @p plan —
 * the interval the per-reset stamp-clock restart re-establishes.
 * fetchLines bounds the demand-fetched L1I lines per replay; each can
 * advance the L1I clock at most twice (demand touch + prefetch
 * install) and the L2 clock at most twice (demand miss + prefetch
 * fill probe). Every data access advances L1D at most once and L2 at
 * most once.
 */
struct LruAdvanceBounds
{
    u64 fetchLines = 0;
    u64 l1i = 0;
    u64 l1d = 0;
    u64 l2 = 0;

    u64 forCache(u32 cache_index) const
    {
        return cache_index == 0 ? l1i : cache_index == 1 ? l1d : l2;
    }
};

LruAdvanceBounds lruAdvanceBounds(const core::MachineConfig &machine,
                                  const trace::ReplayPlan &plan);
/** @} */

/**
 * @{ Lower-level seams the passes delegate to, exposed (mirroring
 * verify::verifyPlacements and friends) so the seeded-unsoundness
 * matrix in tests/test_analyze.cc can feed hand-built inputs —
 * including representation claims the real constructor could never
 * produce. Cache indices follow EntityKind::Cache: 0 = L1I, 1 = L1D,
 * 2 = L2.
 */

/** Geometry preconditions + tag-width/epoch-salt coverage of one
 *  cache against @p line_ceiling. */
void auditCacheConfig(const cache::CacheConfig &cfg, u32 cache_index,
                      Addr line_ceiling, const std::string &path,
                      verify::VerifyResult &out);

/** Check a claimed narrow/stamp LRU representation choice against the
 *  geometry threshold and the u8 renormalization headroom. */
void auditLruRepresentation(const cache::CacheConfig &cfg,
                            bool claimed_narrow, u32 cache_index,
                            const std::string &path,
                            verify::VerifyResult &out);

/** BTB geometry + u32 full-PC tag coverage against @p code_ceiling. */
void auditBtbConfig(u32 sets, u32 ways, Addr code_ceiling,
                    const std::string &path, verify::VerifyResult &out);

/** Prove a per-replay LRU clock advance bound safe for the cache's
 *  representation (u32 stamp caches must stay below 2^32). */
void checkLruAdvanceBound(const cache::CacheConfig &cfg,
                          bool claimed_narrow, u64 advance_bound,
                          u32 cache_index, const std::string &path,
                          verify::VerifyResult &out);

/**
 * Check an explicit site -> address table for branch-target
 * injectivity: no two sites that can be branch targets
 * (site_is_target[s] != 0) may share an address. The static
 * counterpart of the LayoutTables::fillCode runtime check.
 */
void checkSiteAddressInjectivity(const std::vector<Addr> &site_addr,
                                 const std::vector<u8> &site_is_target,
                                 const std::string &path,
                                 verify::VerifyResult &out);
/** @} */

/** @{ Pass factories (verify::Pass; see verify/verify.hh). */
std::unique_ptr<verify::Pass> makeConfigSoundness();
std::unique_ptr<verify::Pass> makePlanBounds();
std::unique_ptr<verify::Pass> makeLayoutInjectivity();
/** @} */

/** All three soundness passes in dependency order. */
verify::PassManager soundnessPasses();

/**
 * Convenience entry point: analyze @p machine (plus whatever optional
 * artifacts are supplied) and return the merged result.
 */
verify::VerifyResult
analyzeMachine(const core::MachineConfig &machine,
               const trace::ReplayPlan *plan = nullptr,
               const trace::Program *prog = nullptr,
               const std::vector<layout::LayoutSpec> *specs = nullptr,
               const std::string &path = "<machine>");

/**
 * Fail-closed trust boundary: panic with the diagnostics when
 * @p machine (optionally checked against @p plan) breaks a compaction
 * invariant. Campaign and FitnessOracle call this before any replay
 * state is built, so an unsound fleet config dies with a typed
 * explanation instead of asserting (Debug) or silently corrupting
 * victim choice (Release) deep inside the kernel.
 */
void requireSoundMachine(const core::MachineConfig &machine,
                         const trace::ReplayPlan *plan,
                         const char *what);

/**
 * Apply a fleet-override spec ("l1i.line=16,l2.assoc=24,btb.sets=512")
 * to @p machine. Keys: {l1i,l1d,l2}.{size,assoc,line,repl} (repl takes
 * lru|random; sizes accept k/m suffixes) and btb.{sets,ways}. Returns
 * false and sets @p error on a malformed spec.
 */
bool applyConfigOverride(core::MachineConfig &machine,
                         const std::string &spec, std::string *error);

} // namespace interf::analyze

#endif // INTERF_ANALYZE_ANALYZE_HH
