/**
 * @file
 * ConfigSoundness: interval/width analysis of one MachineConfig.
 *
 * The abstract domain is deliberately tiny — exclusive upper bounds on
 * the addresses each hardware structure can ever be asked to index
 * (see analyze.hh's AddressSpace). Everything the pass proves reduces
 * to bit-width comparisons against those bounds: a cache tag of
 * Cache::kTagBits bits with an epoch salt at kEpochShift covers the
 * space iff the width of the largest line number stays at or below
 * kEpochShift; u32 BTB full-PC tags cover it iff the largest PC stays
 * below the all-ones sentinel. The geometry preconditions the Cache
 * constructor enforces with fatal() are re-derived here as typed
 * diagnostics, so a fleet sweep learns *which* config is broken and
 * why instead of dying on the first.
 */

#include "analyze/analyze.hh"

#include <bit>

#include "core/config.hh"
#include "layout/heap.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "trace/program.hh"

#include "util/logging.hh"

namespace interf::analyze
{

// The salt layout the width analysis assumes: the 6-bit epoch field
// sits exactly on top of the real tag bits, and the salt value space
// excludes all-ones so the kNoTag sentinel can never be produced.
static_assert(cache::Cache::kEpochShift + 6 == cache::Cache::kTagBits,
              "epoch salt must fill the tag bits above kEpochShift");
static_assert(cache::Cache::kEpochPeriod <= 63,
              "epoch salt must leave the all-ones sentinel unreachable");
static_assert(cache::Cache::kNoTag ==
                  (Addr{1} << cache::Cache::kTagBits) - 1,
              "sentinel is all-ones in the stored tag width");

namespace
{

constexpr const char *kPassName = "config-soundness";

/** Exclusive code-address ceiling when no program bounds it: the
 *  non-PIE text model anchors text at kDefaultTextBase and interferometry
 *  programs are trace-scale, far below the low 2 GiB this contract
 *  grants. forProgram() proves a per-program bound instead. */
constexpr Addr kContractCodeCeiling = Addr{1} << 31;

bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

AddressSpace
AddressSpace::engineDefault()
{
    // Data: globals pack up from kGlobalBase, heap arenas from
    // kHeapBase, stack regions down from kStackBase — all below
    // kStackBase. Code sits below the data space entirely. The page
    // map can lift any of them to at most 2^(pageBits +
    // permutedVpnBits); addresses above that window pass through
    // untranslated, so the overall ceiling is the larger of the two.
    constexpr Addr permuted_ceiling =
        Addr{1} << (layout::PageMap::pageBits +
                    layout::PageMap::permutedVpnBits);
    AddressSpace space;
    space.lineCeiling = layout::kStackBase > permuted_ceiling
                            ? layout::kStackBase
                            : permuted_ceiling;
    space.codeCeiling = kContractCodeCeiling;
    return space;
}

AddressSpace
AddressSpace::forProgram(const trace::Program &prog)
{
    AddressSpace space = engineDefault();
    // Worst-case text extent over every permutation the Linker can
    // produce: each procedure contributes at most (align - 1) padding
    // bytes regardless of where the link order places it.
    Addr extent = layout::kDefaultTextBase;
    for (const auto &proc : prog.procedures()) {
        u32 align = proc.align ? proc.align : 1;
        extent += static_cast<Addr>(align - 1) + proc.bytes();
    }
    space.codeCeiling = extent;
    return space;
}

u32
requiredTagBits(u32 line_bytes, Addr ceiling)
{
    INTERF_ASSERT(isPow2(line_bytes));
    if (ceiling <= 1)
        return 0;
    u32 line_shift = static_cast<u32>(std::countr_zero(line_bytes));
    return static_cast<u32>(std::bit_width((ceiling - 1) >> line_shift));
}

bool
narrowLruFor(const cache::CacheConfig &cfg)
{
    if (cfg.replacement != cache::Replacement::Lru)
        return false;
    u64 entries = (cfg.sizeBytes / cfg.lineBytes / cfg.assoc) *
                  static_cast<u64>(cfg.assoc);
    return entries >= cache::Cache::kNarrowLruLines;
}

namespace
{

/** Geometry preconditions (the CacheConfig::validate() fatal()s, as
 *  diagnostics). Returns false when the width analysis below would be
 *  meaningless. */
bool
auditCacheGeometry(const cache::CacheConfig &cfg, u32 cache_index,
                   verify::Sink &sink)
{
    using verify::EntityKind;
    bool ok = true;
    if (!isPow2(cfg.lineBytes)) {
        sink.error(EntityKind::Cache, cache_index,
                   strprintf("'%s': line size %u is not a power of two",
                             cfg.name.c_str(), cfg.lineBytes));
        ok = false;
    }
    if (cfg.assoc == 0) {
        sink.error(EntityKind::Cache, cache_index,
                   strprintf("'%s': associativity must be >= 1",
                             cfg.name.c_str()));
        return false;
    }
    if (cfg.replacement == cache::Replacement::Lru && cfg.assoc > 32) {
        // The u8 age renormalization buffer and the SIMD rank scan
        // both cap at 32 ways; wider LRU sets would index past them.
        sink.error(
            EntityKind::Cache, cache_index,
            strprintf("'%s': LRU associativity %u exceeds the 32-way "
                      "u8-age bound; use random replacement",
                      cfg.name.c_str(), cfg.assoc));
        ok = false;
    }
    if (!ok)
        return false;
    if (cfg.sizeBytes %
            (static_cast<u64>(cfg.lineBytes) * cfg.assoc) !=
        0) {
        sink.error(EntityKind::Cache, cache_index,
                   strprintf("'%s': size %llu not divisible by way "
                             "size %llu",
                             cfg.name.c_str(),
                             static_cast<unsigned long long>(
                                 cfg.sizeBytes),
                             static_cast<unsigned long long>(
                                 static_cast<u64>(cfg.lineBytes) *
                                 cfg.assoc)));
        return false;
    }
    u32 sets = cfg.numSets();
    if (!isPow2(sets)) {
        sink.error(EntityKind::Cache, cache_index,
                   strprintf("'%s': %u sets is not a power of two; "
                             "set indexing masks low bits, so sets "
                             "would silently alias",
                             cfg.name.c_str(), sets));
        return false;
    }
    return true;
}

void
auditLruRepresentationIn(const cache::CacheConfig &cfg,
                         bool claimed_narrow, u32 cache_index,
                         verify::Sink &sink)
{
    using verify::EntityKind;
    bool derived = narrowLruFor(cfg);
    if (claimed_narrow != derived) {
        u64 entries = cfg.sizeBytes / cfg.lineBytes;
        sink.error(
            EntityKind::Cache, cache_index,
            strprintf("'%s': LRU representation claims %s but the "
                      "geometry threshold derives %s (%llu lines vs "
                      "kNarrowLruLines = %u): %s",
                      cfg.name.c_str(),
                      claimed_narrow ? "u8 ages" : "u32 stamps",
                      derived ? "u8 ages" : "u32 stamps",
                      static_cast<unsigned long long>(entries),
                      cache::Cache::kNarrowLruLines,
                      claimed_narrow
                          ? "a sub-threshold cache on u8 ages pays "
                            "renormalization with no footprint win"
                          : "a large cache on u32 stamps quadruples "
                            "its per-lane LRU footprint"));
    }
    if (claimed_narrow && cfg.assoc > 254) {
        // renormalizeLru reassigns ranks 0..assoc-1 and the per-set
        // clock then counts up from assoc; both must fit u8 with
        // headroom for at least one post-renormalization touch.
        sink.error(EntityKind::Cache, cache_index,
                   strprintf("'%s': %u ways cannot renormalize into "
                             "u8 ages",
                             cfg.name.c_str(), cfg.assoc));
    }
}

void
auditCacheConfigIn(const cache::CacheConfig &cfg, u32 cache_index,
                   Addr line_ceiling, verify::Sink &sink)
{
    using cache::Cache;
    using verify::EntityKind;
    if (!auditCacheGeometry(cfg, cache_index, sink))
        return;

    u32 required = requiredTagBits(cfg.lineBytes, line_ceiling);
    if (required > Cache::kTagBits) {
        sink.error(
            EntityKind::Cache, cache_index,
            strprintf("'%s': addresses below %#llx need %u-bit line "
                      "tags; the split u32/u16 pair stores only %u "
                      "bits, so distinct lines would alias",
                      cfg.name.c_str(),
                      static_cast<unsigned long long>(line_ceiling),
                      required, Cache::kTagBits));
    } else if (required > Cache::kEpochShift) {
        // Smallest line size whose line numbers stay out of the salt
        // field: one address bit per doubling of the line.
        u32 addr_bits =
            static_cast<u32>(std::bit_width(line_ceiling - 1));
        u64 min_line = Addr{1} << (addr_bits - Cache::kEpochShift);
        sink.error(
            EntityKind::Cache, cache_index,
            strprintf("'%s': addresses below %#llx need %u-bit line "
                      "tags, overlapping the epoch salt at tag bits "
                      "%u..%u — a line installed in one reset epoch "
                      "could hit a probe from another; lines must be "
                      ">= %llu bytes for this address space",
                      cfg.name.c_str(),
                      static_cast<unsigned long long>(line_ceiling),
                      required, Cache::kEpochShift,
                      Cache::kTagBits - 1,
                      static_cast<unsigned long long>(min_line)));
    }

    auditLruRepresentationIn(cfg, narrowLruFor(cfg), cache_index,
                             sink);
}

void
auditBtbConfigIn(u32 sets, u32 ways, Addr code_ceiling,
                 verify::Sink &sink)
{
    using verify::EntityKind;
    if (!isPow2(sets)) {
        sink.error(EntityKind::Btb, 0,
                   strprintf("%u sets is not a power of two", sets));
        return;
    }
    if (ways == 0 || ways > 32) {
        sink.error(EntityKind::Btb, 0,
                   strprintf("associativity %u outside 1..32", ways));
        return;
    }
    // Full-PC u32 tags: every branch PC must round-trip through the
    // cast, and the all-ones value is the invalid-way sentinel.
    if (code_ceiling > Addr{~u32{0}}) {
        sink.error(
            EntityKind::Btb, 0,
            strprintf("branch PCs can reach %#llx; u32 full-PC tags "
                      "cover only addresses below %#llx (all-ones is "
                      "the invalid-way sentinel)",
                      static_cast<unsigned long long>(code_ceiling - 1),
                      static_cast<unsigned long long>(Addr{~u32{0}})));
    }
}

class ConfigSoundness : public verify::Pass
{
  public:
    const char *name() const override { return kPassName; }

    bool applicable(const verify::Artifacts &a) const override
    {
        return a.machine != nullptr;
    }

    void run(const verify::Artifacts &a,
             verify::VerifyResult &out) const override
    {
        AddressSpace space = a.program
                                 ? AddressSpace::forProgram(*a.program)
                                 : AddressSpace::engineDefault();
        if (a.lineAddrCeiling)
            space.lineCeiling = a.lineAddrCeiling;
        if (a.codeAddrCeiling)
            space.codeCeiling = a.codeAddrCeiling;

        verify::Sink sink(out, a.path, kPassName);
        const core::MachineConfig &m = *a.machine;
        const cache::CacheConfig *caches[3] = {&m.hierarchy.l1i,
                                               &m.hierarchy.l1d,
                                               &m.hierarchy.l2};
        for (u32 i = 0; i < 3; ++i)
            auditCacheConfigIn(*caches[i], i, space.lineCeiling, sink);
        auditBtbConfigIn(m.btbSets, m.btbWays, space.codeCeiling,
                         sink);
    }
};

} // anonymous namespace

void
auditCacheConfig(const cache::CacheConfig &cfg, u32 cache_index,
                 Addr line_ceiling, const std::string &path,
                 verify::VerifyResult &out)
{
    verify::Sink sink(out, path, kPassName);
    auditCacheConfigIn(cfg, cache_index, line_ceiling, sink);
}

void
auditLruRepresentation(const cache::CacheConfig &cfg,
                       bool claimed_narrow, u32 cache_index,
                       const std::string &path,
                       verify::VerifyResult &out)
{
    verify::Sink sink(out, path, kPassName);
    auditLruRepresentationIn(cfg, claimed_narrow, cache_index, sink);
}

void
auditBtbConfig(u32 sets, u32 ways, Addr code_ceiling,
               const std::string &path, verify::VerifyResult &out)
{
    verify::Sink sink(out, path, kPassName);
    auditBtbConfigIn(sets, ways, code_ceiling, sink);
}

std::unique_ptr<verify::Pass>
makeConfigSoundness()
{
    return std::make_unique<ConfigSoundness>();
}

} // namespace interf::analyze
