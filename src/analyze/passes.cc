/**
 * @file
 * Soundness pass plumbing: the composed PassManager, the fail-closed
 * trust-boundary helper Campaign/FitnessOracle call, and the fleet
 * config-override parser the analyze CLI and CI sweeps use.
 */

#include "analyze/analyze.hh"

#include <cstdlib>

#include "core/config.hh"

#include "util/logging.hh"

namespace interf::analyze
{

verify::PassManager
soundnessPasses()
{
    verify::PassManager pm;
    pm.add(makeConfigSoundness())
        .add(makePlanBounds())
        .add(makeLayoutInjectivity());
    return pm;
}

verify::VerifyResult
analyzeMachine(const core::MachineConfig &machine,
               const trace::ReplayPlan *plan,
               const trace::Program *prog,
               const std::vector<layout::LayoutSpec> *specs,
               const std::string &path)
{
    verify::Artifacts a;
    a.machine = &machine;
    a.plan = plan;
    a.program = prog;
    a.layoutSpecs = specs;
    a.path = path;
    return soundnessPasses().run(a);
}

void
requireSoundMachine(const core::MachineConfig &machine,
                    const trace::ReplayPlan *plan, const char *what)
{
    verify::VerifyResult result = analyzeMachine(
        machine, plan, nullptr, nullptr,
        strprintf("<machine '%s'>", machine.name.c_str()));
    verify::requireClean(result, what);
}

namespace
{

/** Parse "64", "32k", "6m" into bytes; false on garbage. */
bool
parseSize(const std::string &text, u64 *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    u64 value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        return false;
    std::string suffix(end);
    if (suffix == "" || suffix == "b")
        *out = value;
    else if (suffix == "k" || suffix == "K")
        *out = value << 10;
    else if (suffix == "m" || suffix == "M")
        *out = value << 20;
    else
        return false;
    return true;
}

bool
applyCacheKey(cache::CacheConfig &cfg, const std::string &field,
              const std::string &value, std::string *error)
{
    u64 n = 0;
    if (field == "repl") {
        if (value == "lru")
            cfg.replacement = cache::Replacement::Lru;
        else if (value == "random")
            cfg.replacement = cache::Replacement::Random;
        else {
            *error = strprintf("unknown replacement '%s' (lru|random)",
                               value.c_str());
            return false;
        }
        return true;
    }
    if (!parseSize(value, &n)) {
        *error = strprintf("bad numeric value '%s'", value.c_str());
        return false;
    }
    if (field == "size")
        cfg.sizeBytes = n;
    else if (field == "assoc")
        cfg.assoc = static_cast<u32>(n);
    else if (field == "line")
        cfg.lineBytes = static_cast<u32>(n);
    else {
        *error = strprintf("unknown cache field '%s' "
                           "(size|assoc|line|repl)",
                           field.c_str());
        return false;
    }
    return true;
}

} // anonymous namespace

bool
applyConfigOverride(core::MachineConfig &machine,
                    const std::string &spec, std::string *error)
{
    std::string err;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        size_t eq = item.find('=');
        size_t dot = item.find('.');
        if (eq == std::string::npos || dot == std::string::npos ||
            dot > eq) {
            err = strprintf("override '%s' is not unit.field=value",
                            item.c_str());
            break;
        }
        std::string unit = item.substr(0, dot);
        std::string field = item.substr(dot + 1, eq - dot - 1);
        std::string value = item.substr(eq + 1);

        if (unit == "l1i" || unit == "l1d" || unit == "l2") {
            cache::CacheConfig &cfg =
                unit == "l1i"   ? machine.hierarchy.l1i
                : unit == "l1d" ? machine.hierarchy.l1d
                                : machine.hierarchy.l2;
            if (!applyCacheKey(cfg, field, value, &err))
                break;
        } else if (unit == "btb") {
            u64 n = 0;
            if (!parseSize(value, &n)) {
                err = strprintf("bad numeric value '%s'",
                                value.c_str());
                break;
            }
            if (field == "sets")
                machine.btbSets = static_cast<u32>(n);
            else if (field == "ways")
                machine.btbWays = static_cast<u32>(n);
            else {
                err = strprintf("unknown btb field '%s' (sets|ways)",
                                field.c_str());
                break;
            }
        } else {
            err = strprintf("unknown unit '%s' (l1i|l1d|l2|btb)",
                            unit.c_str());
            break;
        }
    }
    if (err.empty())
        return true;
    if (error)
        *error = err;
    return false;
}

} // namespace interf::analyze
