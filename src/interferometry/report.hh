/**
 * @file
 * Reporting helpers shared by the bench harnesses: Table-1 style
 * tables, ASCII violin rendering for Figure 1, and regression summary
 * lines matching the statistics the paper quotes.
 */

#ifndef INTERF_INTERFEROMETRY_REPORT_HH
#define INTERF_INTERFEROMETRY_REPORT_HH

#include <string>
#include <vector>

#include "interferometry/model.hh"
#include "stats/kde.hh"
#include "util/table.hh"

namespace interf::interferometry
{

/** Build the Table-1 table (slope, intercept, 0-MPKI PI) from rows. */
TableWriter makeTable1(const std::vector<Table1Row> &rows);

/**
 * One-line regression summary like the paper's
 * "CPI = 0.02799 * MPKI + 0.51667".
 */
std::string regressionLine(const PerformanceModel &model);

/**
 * ASCII violin: a horizontal density profile per row (widest at the
 * mode), for terminal inspection of Figure 1's distributions.
 *
 * @param violin The KDE profile.
 * @param rows Number of text rows to compress the grid into.
 * @param width Maximum half-width in characters.
 * @return One string per row: "<grid value> |<bar>|".
 */
std::vector<std::string> asciiViolin(const stats::ViolinData &violin,
                                     size_t rows = 15, size_t width = 24);

} // namespace interf::interferometry

#endif // INTERF_INTERFEROMETRY_REPORT_HH
