/**
 * @file
 * Interferometry campaigns: the paper's experimental loop.
 *
 * A campaign takes one benchmark and measures it under many random but
 * reproducible layouts (Section 4.4): build the program once, generate
 * its layout-invariant trace once, then for each layout seed link a new
 * "executable" (code layout, optionally a randomized heap) and measure
 * it with the median-of-five counter protocol.
 *
 * Sample-count escalation follows Section 6.3: start at 100 layouts and
 * add batches of 100 until the CPI~MPKI correlation t-test rejects the
 * null hypothesis or the cap (300) is reached. "We do not discard any
 * data when building or testing our regression models."
 */

#ifndef INTERF_INTERFEROMETRY_CAMPAIGN_HH
#define INTERF_INTERFEROMETRY_CAMPAIGN_HH

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "exec/threadpool.hh"
#include "layout/heap.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "telemetry/manifest.hh"
#include "telemetry/progress.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "workloads/profile.hh"

namespace interf::store
{
class CampaignStore;
}

namespace interf::interferometry
{

/** Parameters of one campaign. */
struct CampaignConfig
{
    u64 instructionBudget = 1'000'000;
    u32 initialLayouts = 100; ///< The paper's first batch.
    u32 escalationStep = 100; ///< Added when not yet significant.
    u32 maxLayouts = 300;     ///< The paper: "a few require 300".
    double alpha = 0.05;
    /**
     * Minimum coefficient of variation of MPKI across layouts for the
     * benchmark to count as having "enough range of MPKI to predict
     * CPI" (Section 4.6). Below this, a t-test verdict would rest on
     * meaninglessly small MPKI movement, so the benchmark is excluded
     * just as the paper excludes its three.
     */
    double minMpkiCv = 0.0025;
    bool randomizeHeap = false; ///< Figure-3 mode (DieHard allocator).
    /**
     * Worker threads for measureLayouts: 0 = one per hardware thread,
     * 1 = serial on the calling thread. Layouts are measured from
     * power-on state with per-worker machines and results land in
     * layout-indexed slots, so every value of jobs produces
     * byte-identical samples (see tests/test_campaign.cc).
     */
    u32 jobs = 0;
    /**
     * Layouts replayed per pass over the event stream within each
     * worker (Machine::replayBatch). Each worker's index range is cut
     * into groups of up to batchLanes lanes; 0 or 1 disables batching
     * (one layout per pass), values above the kernel's lane cap are
     * clamped. Like jobs, this is an execution knob: lane i of a batch
     * is bit-identical to the unbatched measurement of the same
     * layout, so any value produces byte-identical samples (see
     * tests/test_campaign.cc) and it is excluded from the store key.
     */
    u32 batchLanes = 4;
    /** Model physically-indexed L2 placement (per-layout page maps).
     *  Disable to ablate: a virtually-indexed L2 loses its placement
     *  sensitivity entirely. */
    bool physicalPages = true;
    u64 layoutSeedBase = 1000;  ///< Layout i uses seed base + i.
    /**
     * Root of the on-disk campaign artifact store (see store/store.hh);
     * empty disables persistence entirely. With a store, measured
     * batches are checkpointed as they complete and already-persisted
     * layouts are served from disk instead of re-measured, so a killed
     * campaign resumes at the first unmeasured batch and a repeated
     * campaign is a pure cache hit with byte-identical samples. Like
     * jobs, this knob cannot change a single sample's bytes.
     */
    std::string storeDir;
    core::MachineConfig machine = core::MachineConfig::xeonE5440();
    core::RunnerConfig runner;
};

/** Outcome of a campaign. */
struct CampaignResult
{
    std::vector<core::Measurement> samples;
    bool significant = false; ///< CPI~MPKI t-test at alpha + range gate.
    bool enoughMpkiRange = true; ///< False: "not enough range of MPKI".
    u32 layoutsUsed = 0;
    /** @{ Where this run's samples came from: freshly measured vs
     *  loaded from the artifact store. A repeated campaign with a warm
     *  store reports measuredLayouts == 0 (a pure cache hit). */
    u32 measuredLayouts = 0;
    u32 cachedLayouts = 0;
    /** @} */
};

/**
 * One benchmark's interferometry campaign. Owns the program, the trace
 * and the measurement machinery; run() executes the escalation loop,
 * measureLayouts() gives finer-grained control.
 */
class Campaign
{
  public:
    Campaign(const workloads::WorkloadProfile &profile,
             const CampaignConfig &config);
    ~Campaign();

    /** The escalation loop of Section 6.3. */
    CampaignResult run();

    /**
     * Measure layouts [first, first + count) without any testing.
     *
     * Fans the layouts out to config().jobs worker threads: the index
     * range is split into contiguous chunks, each worker owns its own
     * MeasurementRunner (hence Machine) and derives layout, heap and
     * page map from the shared immutable Program/Trace, and sample i
     * lands in slot i — so the result is identical to the serial path
     * for any jobs value.
     *
     * With config().storeDir set, layouts already persisted under this
     * campaign's key are loaded instead of re-measured, and freshly
     * measured layouts extending the persisted prefix are checkpointed
     * before returning. Both paths return byte-identical samples.
     */
    std::vector<core::Measurement> measureLayouts(u32 first, u32 count);

    /** @{ Lifetime tallies of where samples came from (store hits vs
     *  actual measurements); run() reports per-run deltas of these. */
    u32 measuredLayouts() const { return measuredLayouts_; }
    u32 cachedLayouts() const { return cachedLayouts_; }
    /** @} */

    /** The static program (built once per campaign). */
    const trace::Program &program() const { return program_; }

    /** The layout-invariant dynamic trace (generated once). */
    const trace::Trace &trace() const { return trace_; }

    /**
     * The compiled replay plan (trace flattened once per campaign);
     * immutable, shared read-only by all pool workers.
     */
    const trace::ReplayPlan &plan() const { return plan_; }

    /** The code layout for layout index i. */
    layout::CodeLayout codeLayoutFor(u32 index) const;

    /** The heap layout for layout index i (per config.randomizeHeap). */
    layout::HeapLayout heapLayoutFor(u32 index) const;

    /**
     * The virtual-to-physical page mapping for layout index i. Each
     * layout is one execution setup, and real executions get different
     * physical pages, which is what moves lines between L2 sets.
     */
    layout::PageMap pageMapFor(u32 index) const;

    const CampaignConfig &config() const { return cfg_; }

    /**
     * Snapshot of everything this campaign did so far as a run
     * manifest (see telemetry/manifest.hh). With telemetry enabled the
     * destructor writes this next to the store and/or into
     * telemetry::outputDir(); callers wanting the document earlier (or
     * without telemetry) can build it themselves.
     */
    telemetry::RunManifest buildManifest() const;

  private:
    /** Link, derive and measure layout @p index with @p runner. */
    core::Measurement measureOne(core::MeasurementRunner &runner,
                                 u32 index) const;

    /**
     * Measure layouts [first, first + n) as one batched replay pass
     * (n <= BatchedLayoutTables::kMaxLanes), writing sample l to
     * out[l]. n == 1 degenerates to measureOne. Only called for
     * unmeasured layouts, so layout tables are built for exactly the
     * lanes actually replayed.
     */
    void measureGroup(core::MeasurementRunner &runner, u32 first, u32 n,
                      core::Measurement *out) const;

    /** cfg_.batchLanes clamped to the kernel's [1, kMaxLanes]. */
    u32 laneWidth() const;

    /** Measure [first, first + count) into @p out at @p out_offset. */
    void measureRange(u32 first, u32 count,
                      std::vector<core::Measurement> &out,
                      u32 out_offset);

    /**
     * The artifact store for this campaign's key, opened (and its
     * samples loaded) on first use; nullptr when storeDir is empty.
     */
    store::CampaignStore *store();

    workloads::WorkloadProfile profile_;
    CampaignConfig cfg_;
    trace::Program program_;
    trace::Trace trace_;
    trace::ReplayPlan plan_;
    layout::Linker linker_;
    core::MeasurementRunner runner_; ///< Serial path (jobs == 1).
    std::unique_ptr<exec::ThreadPool> pool_; ///< Lazily sized to jobs.
    std::unique_ptr<store::CampaignStore> store_; ///< See store().
    bool storeOpened_ = false;
    std::vector<core::Measurement> cached_; ///< Store's samples [0, n).
    u32 measuredLayouts_ = 0;
    u32 cachedLayouts_ = 0;

    /** @{ Live progress plumbing for measureLayouts: a tracker is
     *  installed for the duration of one call and fed from measureRange
     *  completions (worker threads included, hence the mutex). All
     *  observe-only; null whenever telemetry is off. */
    telemetry::ProgressTracker *progress_ = nullptr;
    std::mutex progressMutex_;
    u32 progressDone_ = 0;   ///< Layouts finished (cached + fresh).
    u32 progressCached_ = 0; ///< Of which served from the store.
    /** @} */

    /** @{ Telemetry bookkeeping for buildManifest(); maintained
     *  unconditionally (cheap), observed only. */
    u64 campaignKey_ = 0;
    u32 batchIndex_ = 0; ///< measureLayouts calls so far (trace ctx).
    u64 startNs_ = 0;
    std::vector<telemetry::PhaseStat> phaseBase_; ///< At construction.
    u64 verifyErrors_ = 0;
    u64 verifyWarnings_ = 0;
    u64 measureNs_ = 0; ///< Wall time inside fresh measureRange calls.
    u64 storeBatches_ = 0;
    double storeCommitMs_ = 0.0;
    bool regressionRan_ = false;
    bool lastSignificant_ = false;
    bool lastEnoughRange_ = false;
    u32 lastLayoutsUsed_ = 0;
    double lastSlope_ = 0.0;
    double lastIntercept_ = 0.0;
    double lastR2_ = 0.0;
    /** @} */
};

} // namespace interf::interferometry

#endif // INTERF_INTERFEROMETRY_CAMPAIGN_HH
