#include "interferometry/model.hh"

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace interf::interferometry
{

EventModel::EventModel(std::string name, const std::vector<double> &xs,
                       const std::vector<double> &ys)
    : event(std::move(name)),
      fit(xs, ys),
      test(stats::correlationTTest(fit.r(), xs.size()))
{
}

std::vector<double>
column(const std::vector<core::Measurement> &samples,
       double core::Measurement::*field)
{
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto &m : samples)
        out.push_back(m.*field);
    return out;
}

PerformanceModel::PerformanceModel(
    std::string benchmark, const std::vector<core::Measurement> &samples,
    double alpha)
    : benchmark_(std::move(benchmark)),
      n_(samples.size()),
      alpha_(alpha),
      branch_("mpki", column(samples, &core::Measurement::mpki),
              column(samples, &core::Measurement::cpi)),
      l1i_("l1i", column(samples, &core::Measurement::l1iMpki),
           column(samples, &core::Measurement::cpi)),
      l2_("l2", column(samples, &core::Measurement::l2Mpki),
          column(samples, &core::Measurement::cpi)),
      combined_({column(samples, &core::Measurement::mpki),
                 column(samples, &core::Measurement::l1iMpki),
                 column(samples, &core::Measurement::l2Mpki)},
                column(samples, &core::Measurement::cpi)),
      combinedTest_(stats::regressionFTest(combined_.r2(), samples.size(),
                                           combined_.k()))
{
    INTERF_ASSERT(samples.size() >= 4);
    meanCpi_ = stats::mean(column(samples, &core::Measurement::cpi));
    meanMpki_ = stats::mean(column(samples, &core::Measurement::mpki));
    meanL1i_ = stats::mean(column(samples, &core::Measurement::l1iMpki));
    meanL2_ = stats::mean(column(samples, &core::Measurement::l2Mpki));
}

bool
PerformanceModel::branchSignificant() const
{
    return branch_.test.significantAt(alpha_);
}

double
PerformanceModel::predictCpi(double mpki) const
{
    return branch_.fit.predict(mpki);
}

stats::Interval
PerformanceModel::predictionInterval(double mpki) const
{
    return branch_.fit.predictionInterval(mpki, 0.95);
}

stats::Interval
PerformanceModel::confidenceInterval(double mpki) const
{
    return branch_.fit.confidenceInterval(mpki, 0.95);
}

BlameVector
PerformanceModel::blame() const
{
    BlameVector b;
    b.branch = branch_.fit.r2();
    b.l1i = l1i_.fit.r2();
    b.l2 = l2_.fit.r2();
    b.combined = combined_.r2();
    b.combinedP = combinedTest_.pValue;
    return b;
}

Table1Row
PerformanceModel::table1Row() const
{
    Table1Row row;
    row.benchmark = benchmark_;
    row.slope = branch_.fit.slope();
    row.intercept = branch_.fit.intercept();
    auto pi = predictionInterval(0.0);
    row.perfectLow = pi.lo;
    row.perfectHigh = pi.hi;
    row.significant = branchSignificant();
    return row;
}

} // namespace interf::interferometry
