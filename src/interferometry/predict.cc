#include "interferometry/predict.hh"

#include <limits>

#include "util/logging.hh"

namespace interf::interferometry
{

PredictorEvaluator::PredictorEvaluator(const PerformanceModel &model,
                                       double real_cpi)
    : model_(model), realCpi_(real_cpi)
{
    INTERF_ASSERT(real_cpi > 0.0);
}

PredictedPoint
PredictorEvaluator::evaluate(const std::string &name, double mpki) const
{
    PredictedPoint p;
    p.predictor = name;
    p.mpki = mpki;
    p.cpi = model_.predictCpi(mpki);
    p.pi = model_.predictionInterval(mpki);
    p.improvementVsReal = (realCpi_ - p.cpi) / realCpi_;
    // A lower CPI bound is a larger improvement: the interval flips.
    p.improvementInterval = {(realCpi_ - p.pi.hi) / realCpi_,
                             (realCpi_ - p.pi.lo) / realCpi_};
    return p;
}

PredictedPoint
PredictorEvaluator::evaluatePerfect() const
{
    return evaluate("perfect", 0.0);
}

double
PredictorEvaluator::mpkiReductionForCpiGain(double cpi_gain_fraction) const
{
    INTERF_ASSERT(cpi_gain_fraction >= 0.0);
    double slope = model_.branchModel().fit.slope();
    double mean_mpki = model_.meanMpki();
    if (slope <= 0.0 || mean_mpki <= 0.0)
        return std::numeric_limits<double>::infinity();
    double delta_cpi = cpi_gain_fraction * realCpi_;
    double delta_mpki = delta_cpi / slope;
    return delta_mpki / mean_mpki;
}

} // namespace interf::interferometry
