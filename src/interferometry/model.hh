/**
 * @file
 * Per-benchmark performance models built from campaign samples.
 *
 * Section 6 of the paper: least-squares models relate CPI to each
 * layout-sensitive event — branch MPKI, L1I misses, L2 misses — plus a
 * combined multi-linear model. r^2 "assigns blame" (Figure 6); the
 * t-test gates the single-event models and the F-test the combined one
 * (Section 6.2); the branch model's slope/intercept and its prediction
 * interval at 0 MPKI form Table 1.
 */

#ifndef INTERF_INTERFEROMETRY_MODEL_HH
#define INTERF_INTERFEROMETRY_MODEL_HH

#include <string>
#include <vector>

#include "core/runner.hh"
#include "stats/hypothesis.hh"
#include "stats/regression.hh"

namespace interf::interferometry
{

/** One single-event regression: CPI ~ event rate. */
struct EventModel
{
    std::string event;   ///< "mpki", "l1i", "l2".
    stats::LinearFit fit;
    stats::TestResult test;

    EventModel(std::string name, const std::vector<double> &xs,
               const std::vector<double> &ys);
};

/**
 * Figure-6 blame assignment as data: the fraction of CPI variance
 * (r^2) each layout-sensitive event explains, plus the combined
 * model's r^2. This is the typed path consumers use instead of
 * scraping report text: bench_fig6_blame renders it and the layout
 * optimizer (src/opt) turns it into proposal weights — which
 * structure's collisions to attack first.
 */
struct BlameVector
{
    double branch = 0.0;   ///< r^2 of CPI ~ branch MPKI.
    double l1i = 0.0;      ///< r^2 of CPI ~ L1I MPKI.
    double l2 = 0.0;       ///< r^2 of CPI ~ L2 MPKI.
    double combined = 0.0; ///< r^2 of the multi-linear model.
    double combinedP = 1.0;///< F-test p-value of the combined model.

    /** Sum of the three single-event r^2 (> combined when events
     *  overlap; the Figure-6 "bars don't add up" observation). */
    double total() const { return branch + l1i + l2; }
};

/** A Table-1 row. */
struct Table1Row
{
    std::string benchmark;
    double slope = 0.0;
    double intercept = 0.0;
    double perfectLow = 0.0;  ///< 95% PI low bound at 0 MPKI.
    double perfectHigh = 0.0; ///< 95% PI high bound at 0 MPKI.
    bool significant = false;
};

/**
 * The full per-benchmark model bundle: three single-event regressions,
 * the combined multi-linear model, and the sample summaries the benches
 * report.
 */
class PerformanceModel
{
  public:
    /**
     * @param benchmark Display name.
     * @param samples Campaign measurements (>= 4 required).
     * @param alpha Significance level for the gates (default 0.05).
     */
    PerformanceModel(std::string benchmark,
                     const std::vector<core::Measurement> &samples,
                     double alpha = 0.05);

    const std::string &benchmark() const { return benchmark_; }
    size_t sampleCount() const { return n_; }

    /** @{ Single-event models. */
    const EventModel &branchModel() const { return branch_; }
    const EventModel &l1iModel() const { return l1i_; }
    const EventModel &l2Model() const { return l2_; }
    /** @} */

    /** Combined CPI ~ (MPKI, L1I, L2) model. */
    const stats::MultiFit &combinedFit() const { return combined_; }

    /** F-test of the combined model. */
    const stats::TestResult &combinedTest() const { return combinedTest_; }

    /** Whether the branch model passes the t-test gate. */
    bool branchSignificant() const;

    /** Point CPI prediction from the branch model. */
    double predictCpi(double mpki) const;

    /** 95% prediction interval at the given MPKI. */
    stats::Interval predictionInterval(double mpki) const;

    /** 95% confidence interval (for observed operating points). */
    stats::Interval confidenceInterval(double mpki) const;

    /** @{ Sample summaries. */
    double meanCpi() const { return meanCpi_; }
    double meanMpki() const { return meanMpki_; }
    double meanL1iMpki() const { return meanL1i_; }
    double meanL2Mpki() const { return meanL2_; }
    /** @} */

    /** The Table-1 row for this benchmark. */
    Table1Row table1Row() const;

    /** The Figure-6 per-event r^2 blame assignment. */
    BlameVector blame() const;

    double alpha() const { return alpha_; }

  private:
    std::string benchmark_;
    size_t n_;
    double alpha_;
    EventModel branch_;
    EventModel l1i_;
    EventModel l2_;
    stats::MultiFit combined_;
    stats::TestResult combinedTest_;
    double meanCpi_;
    double meanMpki_;
    double meanL1i_;
    double meanL2_;
};

/** Extract one measurement field across samples (helper for benches). */
std::vector<double> column(const std::vector<core::Measurement> &samples,
                           double core::Measurement::*field);

} // namespace interf::interferometry

#endif // INTERF_INTERFEROMETRY_MODEL_HH
