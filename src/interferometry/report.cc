#include "interferometry/report.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace interf::interferometry
{

TableWriter
makeTable1(const std::vector<Table1Row> &rows)
{
    TableWriter tw;
    tw.addColumn("Benchmark", Align::Left);
    tw.addColumn("Slope");
    tw.addColumn("y-intercept");
    tw.addColumn("Low");
    tw.addColumn("High");
    for (const auto &row : rows) {
        if (!row.significant)
            continue; // Table 1 lists only the significant benchmarks
        tw.beginRow();
        tw.cell(row.benchmark);
        tw.cell(row.slope, "%.3f");
        tw.cell(row.intercept, "%.3f");
        tw.cell(row.perfectLow, "%.3f");
        tw.cell(row.perfectHigh, "%.3f");
    }
    return tw;
}

std::string
regressionLine(const PerformanceModel &model)
{
    const auto &fit = model.branchModel().fit;
    return strprintf("CPI = %.5f * MPKI + %.5f  (r=%.3f, r2=%.3f, n=%zu)",
                     fit.slope(), fit.intercept(), fit.r(), fit.r2(),
                     model.sampleCount());
}

std::vector<std::string>
asciiViolin(const stats::ViolinData &violin, size_t rows, size_t width)
{
    INTERF_ASSERT(rows >= 2);
    INTERF_ASSERT(!violin.grid.empty());
    double max_density = 0.0;
    for (double d : violin.density)
        max_density = std::max(max_density, d);
    if (max_density <= 0.0)
        max_density = 1.0;

    std::vector<std::string> out;
    size_t n = violin.grid.size();
    for (size_t r = 0; r < rows; ++r) {
        // Average the density over this row's slice of the grid.
        size_t lo = r * n / rows;
        size_t hi = std::max(lo + 1, (r + 1) * n / rows);
        double d = 0.0;
        for (size_t i = lo; i < hi; ++i)
            d += violin.density[i];
        d /= static_cast<double>(hi - lo);
        double mid = 0.5 * (violin.grid[lo] + violin.grid[hi - 1]);
        size_t half = static_cast<size_t>(
            std::lround(d / max_density * static_cast<double>(width)));
        std::string bar(width - half, ' ');
        bar += std::string(half, '#');
        bar += "|";
        bar += std::string(half, '#');
        out.push_back(strprintf("%9.3f  %s", mid, bar.c_str()));
    }
    return out;
}

} // namespace interf::interferometry
