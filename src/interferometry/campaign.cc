#include "interferometry/campaign.hh"

#include "stats/descriptive.hh"
#include "stats/hypothesis.hh"
#include "util/logging.hh"
#include "workloads/builder.hh"

namespace interf::interferometry
{

Campaign::Campaign(const workloads::WorkloadProfile &profile,
                   const CampaignConfig &config)
    : profile_(profile),
      cfg_(config),
      program_(workloads::buildProgram(profile)),
      linker_(),
      runner_(config.machine, config.runner)
{
    trace::TraceGenerator gen(program_, profile.behaviourSeed);
    trace_ = gen.makeTrace(cfg_.instructionBudget);
    trace_.validate(program_);
}

layout::CodeLayout
Campaign::codeLayoutFor(u32 index) const
{
    layout::LayoutKey key;
    key.seed = cfg_.layoutSeedBase + index;
    return linker_.link(program_, key);
}

layout::HeapLayout
Campaign::heapLayoutFor(u32 index) const
{
    layout::HeapKey key;
    key.randomize = cfg_.randomizeHeap;
    key.seed = cfg_.layoutSeedBase + index;
    return layout::HeapLayout(program_, key);
}

layout::PageMap
Campaign::pageMapFor(u32 index) const
{
    if (!cfg_.physicalPages)
        return layout::PageMap(); // identity: virtually-indexed L2
    return layout::PageMap(cfg_.layoutSeedBase + index);
}

std::vector<core::Measurement>
Campaign::measureLayouts(u32 first, u32 count)
{
    std::vector<core::Measurement> out;
    out.reserve(count);
    for (u32 i = first; i < first + count; ++i) {
        layout::CodeLayout code = codeLayoutFor(i);
        layout::HeapLayout heap = heapLayoutFor(i);
        core::Measurement m = runner_.measure(
            program_, trace_, code, heap, pageMapFor(i),
            cfg_.layoutSeedBase + i);
        out.push_back(m);
    }
    return out;
}

CampaignResult
Campaign::run()
{
    CampaignResult res;
    u32 next = 0;
    u32 batch = cfg_.initialLayouts;
    while (next < cfg_.maxLayouts) {
        u32 count = std::min(batch, cfg_.maxLayouts - next);
        auto batch_samples = measureLayouts(next, count);
        res.samples.insert(res.samples.end(), batch_samples.begin(),
                           batch_samples.end());
        next += count;

        std::vector<double> mpki, cpi;
        mpki.reserve(res.samples.size());
        cpi.reserve(res.samples.size());
        for (const auto &m : res.samples) {
            mpki.push_back(m.mpki);
            cpi.push_back(m.cpi);
        }
        auto test = stats::correlationTTest(mpki, cpi);
        double mean_mpki = stats::mean(mpki);
        double cv = mean_mpki > 0.0
                        ? stats::sampleStdDev(mpki) / mean_mpki
                        : 0.0;
        res.enoughMpkiRange = cv >= cfg_.minMpkiCv;
        res.significant =
            test.significantAt(cfg_.alpha) && res.enoughMpkiRange;
        if (res.significant)
            break;
        batch = cfg_.escalationStep;
    }
    res.layoutsUsed = next;
    return res;
}

} // namespace interf::interferometry
