#include "interferometry/campaign.hh"

#include <algorithm>

#include "stats/descriptive.hh"
#include "stats/hypothesis.hh"
#include "stats/regression.hh"
#include "store/store.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_ctx.hh"
#include "analyze/analyze.hh"
#include "util/digest.hh"
#include "util/logging.hh"
#include "verify/verify.hh"
#include "workloads/builder.hh"

namespace interf::interferometry
{

Campaign::Campaign(const workloads::WorkloadProfile &profile,
                   const CampaignConfig &config)
    : profile_(profile),
      cfg_(config),
      program_(workloads::buildProgram(profile)),
      linker_(),
      runner_(config.machine, config.runner)
{
    startNs_ = telemetry::nowNs();
    phaseBase_ = telemetry::phaseStats();
    {
        INTERF_SPAN("trace.generate");
        trace::TraceGenerator gen(program_, profile.behaviourSeed);
        trace_ = gen.makeTrace(cfg_.instructionBudget);
        trace_.validate(program_);
    }
    // Trust boundary: Debug builds / INTERF_VERIFY=1 prove the built
    // program and generated trace before compiling anything from them.
    if (verify::verifyOnTrust()) {
        INTERF_SPAN("campaign.verify");
        auto prog_result = verify::verifyProgram(program_);
        auto trace_result = verify::verifyTrace(program_, trace_);
        verifyErrors_ =
            prog_result.errorCount() + trace_result.errorCount();
        verifyWarnings_ =
            prog_result.warningCount() + trace_result.warningCount();
        verify::requireClean(prog_result, "Campaign program");
        verify::requireClean(trace_result, "Campaign trace");
    }
    // Compile the trace once; every layout measurement replays the
    // plan through flat per-layout address tables (the ReplayPlan
    // constructor records the "plan.compile" span itself).
    plan_ = trace::ReplayPlan(program_, trace_);
    // Fail closed, in every build type: a machine geometry that breaks
    // a compaction invariant (tag width, epoch salt, LRU wrap bound)
    // must never reach the replay kernel, where it would assert in
    // Debug and silently corrupt victim choice in Release. The static
    // analysis is a few hundred comparisons per campaign.
    analyze::requireSoundMachine(cfg_.machine, &plan_,
                                 "Campaign machine config");
    campaignKey_ =
        store::campaignKey(program_, profile_.behaviourSeed, cfg_);
}

Campaign::~Campaign()
{
    if (!telemetry::enabled())
        return;
    telemetry::RunManifest manifest = buildManifest();
    if (store_)
        manifest.writeAtomic(store_->dir() + "/run-manifest.json");
    std::string out_dir = telemetry::outputDir();
    if (!out_dir.empty())
        manifest.writeAtomic(
            strprintf("%s/manifest-%s-%s.json", out_dir.c_str(),
                      profile_.name.c_str(),
                      digestHex(campaignKey_).c_str()));
}

store::CampaignStore *
Campaign::store()
{
    if (!storeOpened_) {
        storeOpened_ = true;
        if (!cfg_.storeDir.empty()) {
            store_ = std::make_unique<store::CampaignStore>(
                cfg_.storeDir, campaignKey_);
            cached_ = store_->loadSamples();
        }
    }
    return store_.get();
}

layout::CodeLayout
Campaign::codeLayoutFor(u32 index) const
{
    layout::LayoutKey key;
    key.seed = cfg_.layoutSeedBase + index;
    return linker_.link(program_, key);
}

layout::HeapLayout
Campaign::heapLayoutFor(u32 index) const
{
    layout::HeapKey key;
    key.randomize = cfg_.randomizeHeap;
    key.seed = cfg_.layoutSeedBase + index;
    return layout::HeapLayout(program_, key);
}

layout::PageMap
Campaign::pageMapFor(u32 index) const
{
    if (!cfg_.physicalPages)
        return layout::PageMap(); // identity: virtually-indexed L2
    return layout::PageMap(cfg_.layoutSeedBase + index);
}

core::Measurement
Campaign::measureOne(core::MeasurementRunner &runner, u32 index) const
{
    trace::LayoutTables tables = [&] {
        INTERF_SPAN("layout.gen");
        layout::CodeLayout code = codeLayoutFor(index);
        layout::HeapLayout heap = heapLayoutFor(index);
        return trace::LayoutTables(plan_, code, heap, pageMapFor(index),
                                   cfg_.machine.hierarchy.l1i.lineBytes);
    }();
    INTERF_TELEM_COUNT("layout.tables_built", 1);
    return runner.measure(plan_, tables, cfg_.layoutSeedBase + index);
}

void
Campaign::measureGroup(core::MeasurementRunner &runner, u32 first, u32 n,
                       core::Measurement *out) const
{
    // Attribute the group's spans to its first lane's layout seed (the
    // campaign/batch ids are already on the thread's context).
    telemetry::ScopedCandidateDigest candidate(cfg_.layoutSeedBase +
                                               first);
    if (n == 1) {
        *out = measureOne(runner, first);
        return;
    }
    // Generate the K layout triples, then build the batched tables
    // directly: the direct constructor materializes data addresses
    // once into the lane-major universe table instead of building K
    // per-position streams and transposing them (see
    // trace::BatchedLayoutTables).
    std::vector<layout::CodeLayout> codes;
    std::vector<layout::HeapLayout> heaps;
    std::vector<trace::BatchedLayoutTables::LaneSource> sources(n);
    codes.reserve(n);
    heaps.reserve(n);
    trace::BatchedLayoutTables batched = [&] {
        INTERF_SPAN("layout.gen");
        for (u32 l = 0; l < n; ++l) {
            const u32 index = first + l;
            codes.push_back(codeLayoutFor(index));
            heaps.push_back(heapLayoutFor(index));
            sources[l] = {&codes[l], &heaps[l], pageMapFor(index)};
        }
        return trace::BatchedLayoutTables(
            plan_, sources, cfg_.machine.hierarchy.l1i.lineBytes);
    }();
    INTERF_TELEM_COUNT("layout.tables_built", n);
    std::vector<u64> seeds(n);
    for (u32 l = 0; l < n; ++l)
        seeds[l] = cfg_.layoutSeedBase + first + l;
    auto samples = runner.measureBatch(plan_, batched, seeds);
    for (u32 l = 0; l < n; ++l)
        out[l] = samples[l];
}

u32
Campaign::laneWidth() const
{
    return std::clamp<u32>(cfg_.batchLanes, 1,
                           trace::BatchedLayoutTables::kMaxLanes);
}

void
Campaign::measureRange(u32 first, u32 count,
                       std::vector<core::Measurement> &out,
                       u32 out_offset)
{
    const u32 jobs = exec::ThreadPool::resolveJobs(cfg_.jobs);
    const u32 lanes = laneWidth();
    // Progress tick per finished group. Workers land here too, so the
    // tracker (not thread-safe by itself) is fed under a mutex; when no
    // tracker is installed (telemetry off) this is one pointer test.
    auto note_progress = [this](u32 n) {
        if (!telemetry::enabled())
            return;
        std::lock_guard<std::mutex> lock(progressMutex_);
        if (progress_ == nullptr)
            return;
        progressDone_ += n;
        progress_->update(progressDone_, progressCached_,
                          progressDone_ - progressCached_);
    };
    if (jobs <= 1 || count <= 1) {
        INTERF_SPAN_PHASE("replay.batch");
        for (u32 k = 0; k < count; k += lanes) {
            const u32 n = std::min(lanes, count - k);
            measureGroup(runner_, first + k, n, &out[out_offset + k]);
            note_progress(n);
        }
        return;
    }
    if (!pool_ || pool_->workers() != jobs)
        pool_ = std::make_unique<exec::ThreadPool>(jobs);
    // Workers share the immutable Program/Trace and own everything
    // mutable: a fresh MeasurementRunner (Machine) per chunk plus the
    // per-layout code/heap/page state derived inside measureGroup. Slot
    // out_offset + k always holds layout first + k, and a batch lane's
    // sample is bit-identical to the unbatched measurement of the same
    // layout, so neither scheduling nor lane grouping can reorder or
    // otherwise perturb the samples.
    exec::parallelForChunks(*pool_, count, [&](size_t begin, size_t end) {
        INTERF_SPAN_PHASE("replay.batch");
        core::MeasurementRunner runner(cfg_.machine, cfg_.runner);
        for (size_t k = begin; k < end; k += lanes) {
            u32 n = static_cast<u32>(std::min<size_t>(lanes, end - k));
            measureGroup(runner, first + static_cast<u32>(k), n,
                         &out[out_offset + k]);
            note_progress(n);
        }
    });
}

std::vector<core::Measurement>
Campaign::measureLayouts(u32 first, u32 count)
{
    // Every span recorded below (this thread and the pool workers, via
    // ThreadPool::submit's capture) carries this campaign/batch id.
    telemetry::ScopedTraceContext trace_ctx(campaignKey_, batchIndex_);
    ++batchIndex_;
    std::vector<core::Measurement> out(count);
    auto *st = store();

    // Serve the prefix that overlaps the store's persisted samples.
    u32 have = 0;
    if (st && first < cached_.size()) {
        have = std::min(count, static_cast<u32>(cached_.size()) - first);
        std::copy_n(cached_.begin() + first, have, out.begin());
    }
    cachedLayouts_ += have;
    measuredLayouts_ += count - have;
    INTERF_TELEM_COUNT("store.sample_hits", have);
    INTERF_TELEM_COUNT("store.sample_misses", count - have);
    telemetry::ProgressTracker tracker("campaign.measure", count);
    if (have == count) {
        tracker.update(have, have, 0);
        tracker.finish();
        return out;
    }

    // Install the tracker for the duration of the fresh measurements;
    // measureRange's completions (on any thread) tick it.
    if (telemetry::enabled()) {
        std::lock_guard<std::mutex> lock(progressMutex_);
        progress_ = &tracker;
        progressDone_ = have;
        progressCached_ = have;
        if (have > 0)
            tracker.update(have, have, 0);
    }
    const u64 measure_start = telemetry::nowNs();
    measureRange(first + have, count - have, out, have);
    measureNs_ += telemetry::nowNs() - measure_start;
    {
        std::lock_guard<std::mutex> lock(progressMutex_);
        progress_ = nullptr;
    }
    tracker.finish();

    // Checkpoint the fresh samples if they extend the persisted prefix
    // contiguously; a gap (a caller jumping ahead of the store) is
    // measured but not persisted, since resume relies on contiguity.
    if (st && first + have == st->storedCount()) {
        std::vector<core::Measurement> fresh(out.begin() + have,
                                             out.end());
        const u64 commit_start = telemetry::nowNs();
        st->appendBatch(first + have, fresh);
        ++storeBatches_;
        storeCommitMs_ +=
            (telemetry::nowNs() - commit_start) / 1e6;
        cached_.insert(cached_.end(), fresh.begin(), fresh.end());
    }
    return out;
}

CampaignResult
Campaign::run()
{
    INTERF_SPAN_PHASE("campaign.run");
    CampaignResult res;
    res.samples.reserve(cfg_.maxLayouts);
    const u32 measured_before = measuredLayouts_;
    const u32 cached_before = cachedLayouts_;
    // Escalation appends: the regression inputs grow with each batch
    // instead of being rebuilt from res.samples every round.
    std::vector<double> mpki, cpi;
    mpki.reserve(cfg_.maxLayouts);
    cpi.reserve(cfg_.maxLayouts);
    u32 next = 0;
    u32 batch = cfg_.initialLayouts;
    while (next < cfg_.maxLayouts) {
        u32 count = std::min(batch, cfg_.maxLayouts - next);
        auto batch_samples = measureLayouts(next, count);
        for (const auto &m : batch_samples) {
            mpki.push_back(m.mpki);
            cpi.push_back(m.cpi);
        }
        res.samples.insert(res.samples.end(), batch_samples.begin(),
                           batch_samples.end());
        next += count;

        INTERF_SPAN("campaign.regression");
        auto test = stats::correlationTTest(mpki, cpi);
        double mean_mpki = stats::mean(mpki);
        double cv = mean_mpki > 0.0
                        ? stats::sampleStdDev(mpki) / mean_mpki
                        : 0.0;
        res.enoughMpkiRange = cv >= cfg_.minMpkiCv;
        res.significant =
            test.significantAt(cfg_.alpha) && res.enoughMpkiRange;
        if (res.significant)
            break;
        batch = cfg_.escalationStep;
    }
    res.layoutsUsed = next;
    res.measuredLayouts = measuredLayouts_ - measured_before;
    res.cachedLayouts = cachedLayouts_ - cached_before;

    stats::LinearFit fit(mpki, cpi);
    regressionRan_ = true;
    lastSignificant_ = res.significant;
    lastEnoughRange_ = res.enoughMpkiRange;
    lastLayoutsUsed_ = res.layoutsUsed;
    lastSlope_ = fit.slope();
    lastIntercept_ = fit.intercept();
    lastR2_ = fit.r2();
    return res;
}

telemetry::RunManifest
Campaign::buildManifest() const
{
    telemetry::RunManifest m;
    m.benchmark = profile_.name;
    m.configDigest = digestHex(campaignKey_);
    if (store_) {
        m.storeKey = m.configDigest;
        m.storeDir = store_->dir();
        m.storeBatchesCommitted = storeBatches_;
        m.storeCommitMs = storeCommitMs_;
    }
    m.instructionBudget = cfg_.instructionBudget;
    m.jobs = exec::ThreadPool::resolveJobs(cfg_.jobs);
    m.layoutsUsed = regressionRan_ ? lastLayoutsUsed_
                                   : measuredLayouts_ + cachedLayouts_;
    m.layoutsMeasured = measuredLayouts_;
    m.layoutsCached = cachedLayouts_;
    m.wallMs = (telemetry::nowNs() - startNs_) / 1e6;
    m.layoutsPerSec = measureNs_ > 0
                          ? measuredLayouts_ / (measureNs_ / 1e9)
                          : 0.0;
    m.phases = telemetry::phaseStatsSince(phaseBase_);
    m.verifyErrors = verifyErrors_;
    m.verifyWarnings = verifyWarnings_;
    telemetry::LogCaptureSnapshot logs = telemetry::logCapture();
    m.logWarns = logs.warns;
    m.logInforms = logs.informs;
    m.recentWarnings = logs.recentWarnings;
    m.spansDropped = telemetry::droppedSpans();
    m.spansDroppedByName = telemetry::droppedSpansByName();
    m.regressionRan = regressionRan_;
    m.regressionSignificant = lastSignificant_;
    m.enoughMpkiRange = lastEnoughRange_;
    m.slope = lastSlope_;
    m.intercept = lastIntercept_;
    m.r2 = lastR2_;
    m.metrics = telemetry::Registry::global().snapshot().toJson();
    return m;
}

} // namespace interf::interferometry
