#include "interferometry/campaign.hh"

#include "stats/descriptive.hh"
#include "stats/hypothesis.hh"
#include "util/logging.hh"
#include "workloads/builder.hh"

namespace interf::interferometry
{

Campaign::Campaign(const workloads::WorkloadProfile &profile,
                   const CampaignConfig &config)
    : profile_(profile),
      cfg_(config),
      program_(workloads::buildProgram(profile)),
      linker_(),
      runner_(config.machine, config.runner)
{
    trace::TraceGenerator gen(program_, profile.behaviourSeed);
    trace_ = gen.makeTrace(cfg_.instructionBudget);
    trace_.validate(program_);
}

layout::CodeLayout
Campaign::codeLayoutFor(u32 index) const
{
    layout::LayoutKey key;
    key.seed = cfg_.layoutSeedBase + index;
    return linker_.link(program_, key);
}

layout::HeapLayout
Campaign::heapLayoutFor(u32 index) const
{
    layout::HeapKey key;
    key.randomize = cfg_.randomizeHeap;
    key.seed = cfg_.layoutSeedBase + index;
    return layout::HeapLayout(program_, key);
}

layout::PageMap
Campaign::pageMapFor(u32 index) const
{
    if (!cfg_.physicalPages)
        return layout::PageMap(); // identity: virtually-indexed L2
    return layout::PageMap(cfg_.layoutSeedBase + index);
}

core::Measurement
Campaign::measureOne(core::MeasurementRunner &runner, u32 index) const
{
    layout::CodeLayout code = codeLayoutFor(index);
    layout::HeapLayout heap = heapLayoutFor(index);
    return runner.measure(program_, trace_, code, heap,
                          pageMapFor(index), cfg_.layoutSeedBase + index);
}

std::vector<core::Measurement>
Campaign::measureLayouts(u32 first, u32 count)
{
    std::vector<core::Measurement> out(count);
    const u32 jobs = exec::ThreadPool::resolveJobs(cfg_.jobs);
    if (jobs <= 1 || count <= 1) {
        for (u32 k = 0; k < count; ++k)
            out[k] = measureOne(runner_, first + k);
        return out;
    }
    if (!pool_ || pool_->workers() != jobs)
        pool_ = std::make_unique<exec::ThreadPool>(jobs);
    // Workers share the immutable Program/Trace and own everything
    // mutable: a fresh MeasurementRunner (Machine) per chunk plus the
    // per-layout code/heap/page state derived inside measureOne. Slot k
    // always holds layout first + k, so scheduling cannot reorder or
    // otherwise perturb the samples.
    exec::parallelForChunks(*pool_, count, [&](size_t begin, size_t end) {
        core::MeasurementRunner runner(cfg_.machine, cfg_.runner);
        for (size_t k = begin; k < end; ++k)
            out[k] = measureOne(runner, first + static_cast<u32>(k));
    });
    return out;
}

CampaignResult
Campaign::run()
{
    CampaignResult res;
    res.samples.reserve(cfg_.maxLayouts);
    // Escalation appends: the regression inputs grow with each batch
    // instead of being rebuilt from res.samples every round.
    std::vector<double> mpki, cpi;
    mpki.reserve(cfg_.maxLayouts);
    cpi.reserve(cfg_.maxLayouts);
    u32 next = 0;
    u32 batch = cfg_.initialLayouts;
    while (next < cfg_.maxLayouts) {
        u32 count = std::min(batch, cfg_.maxLayouts - next);
        auto batch_samples = measureLayouts(next, count);
        for (const auto &m : batch_samples) {
            mpki.push_back(m.mpki);
            cpi.push_back(m.cpi);
        }
        res.samples.insert(res.samples.end(), batch_samples.begin(),
                           batch_samples.end());
        next += count;

        auto test = stats::correlationTTest(mpki, cpi);
        double mean_mpki = stats::mean(mpki);
        double cv = mean_mpki > 0.0
                        ? stats::sampleStdDev(mpki) / mean_mpki
                        : 0.0;
        res.enoughMpkiRange = cv >= cfg_.minMpkiCv;
        res.significant =
            test.significantAt(cfg_.alpha) && res.enoughMpkiRange;
        if (res.significant)
            break;
        batch = cfg_.escalationStep;
    }
    res.layoutsUsed = next;
    return res;
}

} // namespace interf::interferometry
