/**
 * @file
 * Predicting the performance of hypothetical branch predictors.
 *
 * Section 7 of the paper: the Pin tool measures each candidate
 * predictor's MPKI on the same executables; plugging that MPKI into a
 * benchmark's regression model yields the CPI the real machine would
 * have with that predictor — with a 95% prediction interval. Section
 * 1.4 also derives "what-if" quantities: the improvement from perfect
 * prediction, from halving MPKI, and the misprediction reduction a
 * given CPI improvement would require.
 */

#ifndef INTERF_INTERFEROMETRY_PREDICT_HH
#define INTERF_INTERFEROMETRY_PREDICT_HH

#include <string>
#include <vector>

#include "interferometry/model.hh"

namespace interf::interferometry
{

/** Predicted operating point of one candidate predictor. */
struct PredictedPoint
{
    std::string predictor;
    double mpki = 0.0;      ///< From pinsim (0 for perfect).
    double cpi = 0.0;       ///< Model point estimate.
    stats::Interval pi;     ///< 95% prediction interval.
    /** Relative CPI improvement vs the measured real predictor (+ is
     *  faster). */
    double improvementVsReal = 0.0;
    stats::Interval improvementInterval; ///< From the PI bounds.
};

/** Evaluates candidate predictors against one benchmark's model. */
class PredictorEvaluator
{
  public:
    /**
     * @param model The benchmark's performance model.
     * @param real_cpi Measured mean CPI of the real predictor.
     */
    PredictorEvaluator(const PerformanceModel &model, double real_cpi);

    /** Predict the operating point at a candidate's MPKI. */
    PredictedPoint evaluate(const std::string &name, double mpki) const;

    /** Shorthand for the 0-MPKI oracle. */
    PredictedPoint evaluatePerfect() const;

    /**
     * Section 1.4, prediction 3: the fractional MPKI reduction required
     * for a given fractional CPI improvement (e.g. 0.10 -> "a 10% CPI
     * improvement requires a __% reduction in mispredictions").
     * Returns +inf when the slope cannot buy the improvement.
     */
    double mpkiReductionForCpiGain(double cpi_gain_fraction) const;

    const PerformanceModel &model() const { return model_; }
    double realCpi() const { return realCpi_; }

  private:
    const PerformanceModel &model_;
    double realCpi_;
};

} // namespace interf::interferometry

#endif // INTERF_INTERFEROMETRY_PREDICT_HH
