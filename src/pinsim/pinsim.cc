#include "pinsim/pinsim.hh"

#include "bpred/factory.hh"
#include "util/logging.hh"

namespace interf::pinsim
{

double
PredictorResult::mpki() const
{
    INTERF_ASSERT(instructions > 0);
    return 1000.0 * static_cast<double>(mispredicts) /
           static_cast<double>(instructions);
}

double
PredictorResult::accuracy() const
{
    if (branches == 0)
        return 1.0;
    return 1.0 - static_cast<double>(mispredicts) /
                     static_cast<double>(branches);
}

PinSim::PinSim(const std::vector<std::string> &specs)
{
    INTERF_ASSERT(!specs.empty());
    for (const auto &spec : specs) {
        predictors_.push_back(bpred::makePredictor(spec));
        names_.push_back(predictors_.back()->name());
    }
}

const std::string &
PinSim::predictorName(size_t i) const
{
    INTERF_ASSERT(i < names_.size());
    return names_[i];
}

std::vector<PredictorResult>
PinSim::run(const trace::Program &prog, const trace::Trace &trace,
            const layout::CodeLayout &code)
{
    std::vector<PredictorResult> results(predictors_.size());
    for (size_t i = 0; i < predictors_.size(); ++i) {
        predictors_[i]->reset();
        results[i].name = names_[i];
        results[i].instructions = trace.instCount;
    }

    for (const auto &ev : trace.events) {
        const trace::BasicBlock &bb = prog.block(ev.proc, ev.block);
        if (!bb.branch.isConditional())
            continue;
        Addr pc = code.branchAddr(ev.proc, ev.block);
        bool taken = ev.taken != 0;
        for (size_t i = 0; i < predictors_.size(); ++i) {
            bool pred = predictors_[i]->predictAndTrain(pc, taken);
            ++results[i].branches;
            if (pred != taken)
                ++results[i].mispredicts;
        }
    }
    return results;
}

std::vector<PredictorResult>
PinSim::replay(const trace::ReplayPlan &plan,
               const trace::LayoutTables &tables)
{
    INTERF_ASSERT(tables.branchAddr.size() == plan.siteCount());
    std::vector<PredictorResult> results(predictors_.size());
    for (size_t i = 0; i < predictors_.size(); ++i) {
        predictors_[i]->reset();
        results[i].name = names_[i];
        results[i].instructions = plan.instCount;
    }

    const u32 *cond_site = plan.condSite.data();
    const u8 *cond_taken = plan.condTaken.data();
    const Addr *branch_addr = tables.branchAddr.data();
    const size_t n = plan.condSite.size();
    for (size_t j = 0; j < n; ++j) {
        Addr pc = branch_addr[cond_site[j]];
        bool taken = cond_taken[j] != 0;
        for (size_t i = 0; i < predictors_.size(); ++i) {
            bool pred = predictors_[i]->predictAndTrain(pc, taken);
            ++results[i].branches;
            if (pred != taken)
                ++results[i].mispredicts;
        }
    }
    return results;
}

std::vector<double>
averageMpki(const std::vector<std::vector<PredictorResult>> &per_layout)
{
    INTERF_ASSERT(!per_layout.empty());
    size_t n_predictors = per_layout.front().size();
    std::vector<double> avg(n_predictors, 0.0);
    for (const auto &layout : per_layout) {
        INTERF_ASSERT(layout.size() == n_predictors);
        for (size_t i = 0; i < n_predictors; ++i)
            avg[i] += layout[i].mpki();
    }
    for (auto &v : avg)
        v /= static_cast<double>(per_layout.size());
    return avg;
}

} // namespace interf::pinsim
