/**
 * @file
 * Pin-style functional branch-predictor simulation.
 *
 * Section 5.6 / 7.1 of the paper: "Our Pin tool instruments each branch
 * with a callback to code that simulates a set of branch predictors.
 * The tool counts the number of branches executed and the number of
 * branches mispredicted for each predictor simulated. ... Pin runs only
 * once for each reordering; since we control the initial conditions of
 * the simulator and Pin is not affected by system-level events, there
 * is no variance in the simulation result."
 *
 * PinSim replays a trace's conditional-branch stream (with the physical
 * branch addresses of a given layout) through any number of predictor
 * models simultaneously — functional only, no timing, deterministic.
 */

#ifndef INTERF_PINSIM_PINSIM_HH
#define INTERF_PINSIM_PINSIM_HH

#include <string>
#include <vector>

#include "bpred/predictor.hh"
#include "layout/linker.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"

namespace interf::pinsim
{

/** Per-predictor result of one instrumented run. */
struct PredictorResult
{
    std::string name;
    Count branches = 0;   ///< Conditional branches executed.
    Count mispredicts = 0;
    Count instructions = 0;

    double mpki() const;
    double accuracy() const;
};

/**
 * The instrumentation engine: owns a set of predictors and replays
 * traces through all of them at once.
 */
class PinSim
{
  public:
    /** Build predictors from spec strings (see bpred/factory.hh). */
    explicit PinSim(const std::vector<std::string> &specs);

    /**
     * Replay one (trace, layout) pair through every predictor from
     * power-on state. Deterministic.
     */
    std::vector<PredictorResult> run(const trace::Program &prog,
                                     const trace::Trace &trace,
                                     const layout::CodeLayout &code);

    /**
     * As run(), but over a compiled plan's conditional-branch
     * substream and a layout's flat address tables — the hot path when
     * the same trace replays under many layouts (Figure 7/8 sweeps).
     * Bit-identical results to run() on the same (trace, layout).
     */
    std::vector<PredictorResult> replay(const trace::ReplayPlan &plan,
                                        const trace::LayoutTables &tables);

    /** Number of predictors simulated. */
    size_t numPredictors() const { return predictors_.size(); }

    /** Name of predictor i. */
    const std::string &predictorName(size_t i) const;

  private:
    std::vector<bpred::PredictorPtr> predictors_;
    std::vector<std::string> names_;
};

/**
 * Convenience: average each predictor's MPKI over many layouts, as
 * Figure 7 does ("these data are averaged over 100 different
 * pseudo-randomly generated code reorderings").
 */
std::vector<double> averageMpki(
    const std::vector<std::vector<PredictorResult>> &per_layout);

} // namespace interf::pinsim

#endif // INTERF_PINSIM_PINSIM_HH
