#include "cache/hierarchy.hh"

namespace interf::cache
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : cfg_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

HitLevel
MemoryHierarchy::fetchInst(Addr addr)
{
    HitLevel level;
    if (l1i_.access(addr)) {
        level = HitLevel::L1;
    } else if (l2_.access(addr)) {
        level = HitLevel::L2;
    } else {
        level = HitLevel::Memory;
        ++l2InstMisses_;
    }

    // Sequential next-line prefetch: bring in the following line so
    // straight-line fetch rarely misses; conflict misses among hot
    // lines (the layout-sensitive kind) remain.
    if (cfg_.nextLinePrefetch) {
        u32 line_bytes = cfg_.l1i.lineBytes;
        Addr line = addr / line_bytes;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            Addr next = (line + 1) * line_bytes;
            if (!l1i_.contains(next)) {
                // The prefetch fills L1I via L2 without counting as a
                // demand L1I miss.
                if (!l2_.access(next))
                    ++l2PrefMisses_;
                l1i_.install(next);
            }
        }
    }
    return level;
}

HitLevel
MemoryHierarchy::accessData(Addr addr)
{
    if (l1d_.access(addr))
        return HitLevel::L1;
    if (l2_.access(addr))
        return HitLevel::L2;
    ++l2DataMisses_;
    return HitLevel::Memory;
}

void
MemoryHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    lastFetchLine_ = ~Addr{0};
    l2InstMisses_ = 0;
    l2PrefMisses_ = 0;
    l2DataMisses_ = 0;
}

void
MemoryHierarchy::clearStats()
{
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
    l2InstMisses_ = 0;
    l2PrefMisses_ = 0;
    l2DataMisses_ = 0;
}

HierarchyStats
MemoryHierarchy::stats() const
{
    HierarchyStats s;
    s.l1i = l1i_.stats();
    s.l1d = l1d_.stats();
    s.l2 = l2_.stats();
    s.l2InstMisses = l2InstMisses_;
    s.l2PrefMisses = l2PrefMisses_;
    s.l2DataMisses = l2DataMisses_;
    return s;
}

} // namespace interf::cache
