#include "cache/hierarchy.hh"

namespace interf::cache
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : cfg_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
    prefMemoSafe_ = config.l1i.numSets() > 1;
}

void
MemoryHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    lastFetchLine_ = ~Addr{0};
    prefLine_ = ~Addr{0};
    l2InstMisses_ = 0;
    l2PrefMisses_ = 0;
    l2DataMisses_ = 0;
}

void
MemoryHierarchy::clearStats()
{
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
    l2InstMisses_ = 0;
    l2PrefMisses_ = 0;
    l2DataMisses_ = 0;
}

HierarchyStats
MemoryHierarchy::stats() const
{
    HierarchyStats s;
    s.l1i = l1i_.stats();
    s.l1d = l1d_.stats();
    s.l2 = l2_.stats();
    s.l2InstMisses = l2InstMisses_;
    s.l2PrefMisses = l2PrefMisses_;
    s.l2DataMisses = l2DataMisses_;
    return s;
}

} // namespace interf::cache
