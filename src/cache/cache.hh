/**
 * @file
 * Generic set-associative cache model with LRU replacement.
 *
 * Section 4.1 of the paper: "conflict misses in the instruction cache
 * occur when the number of blocks mapping to a particular set exceeds
 * the associativity of the cache" — the mechanism through which code
 * reordering perturbs the L1I, and heap randomization the L1D/L2.
 * The model tracks hits and misses only (no data), which is all the
 * PMU observes.
 *
 * The replay kernel calls access() roughly once per trace event and
 * once per memory reference, so the lookup path is inlined here and
 * the ways are stored as parallel tag arrays (an invalid way holds the
 * kNoTag sentinel) rather than an array of line structs: a set's tags
 * share one cache line and the common hit case touches nothing else.
 *
 * The representation is compacted so batched replay lanes fit in the
 * host LLC (each lane carries its own hierarchy):
 *  - Tags are stored once, split u32-lo / u16-hi (48 bits). Real tags
 *    are line numbers (address >> lineShift), and every address the
 *    layout engines produce is far below 2^48+lineShift bits, which an
 *    install-time assert enforces.
 *  - LRU recency is represented per geometry. L1-class caches keep a
 *    u32 stamp per way from one cache-wide clock, written and never
 *    read on the touch path. Two narrower schemes were implemented
 *    and measured there before settling on stamps: a u8 per-set age
 *    clock quarters the state but its load-increment-store on every
 *    touch forms a store-forwarding chain through per-set bytes that
 *    cost ~10-15% of the whole replay kernel, and u16 stamps with a
 *    rank-renormalizing wrap still lost ~5-9% (16-bit RMW on the
 *    clock plus the wrap's cold excursions); the arrays are ~2 KB per
 *    L1, so narrowing them buys nothing anyway. Megabyte-class LRU
 *    caches (>= kNarrowLruLines lines — the modeled 6 MB L2) keep u8
 *    per-set ages with order-exact rank renormalization instead (the
 *    BTB's scheme): only L1-miss traffic touches them, so the per-set
 *    chain is off the hot path, and a u32 age array at that line
 *    count would be ~0.4 MB of a lane's ~0.65 MB footprint. Victim
 *    choice is bit-identical between the two representations —
 *    renormalization preserves strict age order and the way-index
 *    tie-break — so which one a cache uses is invisible to results.
 *  - reset() bumps a per-cache epoch instead of memsetting megabytes.
 *    The epoch is folded into the tag itself (bits 42..47, above any
 *    real line number): a probe key only ever matches a tag installed
 *    in the same epoch, so stale sets miss with zero per-probe checks
 *    — an earlier design that tested a per-set generation tag on
 *    every probe measured ~10% of batched replay throughput. The
 *    generation array survives only on the miss/install path, where a
 *    stale set re-materializes before its first install; the epoch
 *    wrap (every 63 resets) pays for a real clear.
 */

#ifndef INTERF_CACHE_CACHE_HH
#define INTERF_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define INTERF_CACHE_HAVE_SSE2 1
#endif

namespace interf::cache
{

/** Replacement policy of a cache level. */
enum class Replacement : u8 {
    Lru,    ///< True LRU (small L1-class caches).
    Random, ///< Seeded random victim: models the pseudo-LRU/NRU
            ///< approximations of large L2s, whose behaviour sits
            ///< between LRU and random and has no sharp capacity cliff.
};

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    u64 sizeBytes = 32 << 10;
    u32 assoc = 8;
    u32 lineBytes = 64;
    Replacement replacement = Replacement::Lru;

    u32 numSets() const;

    /** Validate geometry (power-of-two sets/lines); fatal() if not. */
    void validate() const;
};

/** Hit/miss statistics of one cache. */
struct CacheStats
{
    Count accesses = 0;
    Count misses = 0;

    Count hits() const { return accesses - misses; }
    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Cumulative outcome counts of probeWayHinted() calls: how many ran,
 *  and how many the one-load hint verification answered without the
 *  full scan. Diagnostics only (the bench reports the ratio as the
 *  memo verify rate); never cleared by reset(), and only accumulated
 *  while setHintCounting(true) — the unconditional increments were
 *  two read-modify-writes on the hottest probe path, and replacing
 *  them with a predicted never-taken branch measured ~3% of batched
 *  replay throughput. */
struct HintStats
{
    u64 probes = 0;
    u64 verified = 0;
};

/** A set-associative, LRU, tag-only cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one address (a single line).
     *
     * @return true on hit, false on miss (the line is then installed).
     *
     * The way scan dispatches to a fixed-associativity instantiation
     * for the geometries the machine models actually use (8-way L1s,
     * 24-way L2), letting the compiler fully unroll it.
     */
    bool access(Addr addr)
    {
        switch (assoc_) {
          case 8:
            return accessT<8>(addr);
          case 24:
            return accessT<24>(addr);
          default:
            return accessT<0>(addr);
        }
    }

    /** Probe without updating replacement state or installing. */
    bool contains(Addr addr) const
    {
        return probeWay(addr) != assoc_;
    }

    /**
     * Commit half of access(): complete an access whose tag scan
     * already ran (@p way from probeWay(), with no intervening change
     * to the set). Statistics, LRU and install effects are exactly
     * those of access(); the return value is the same hit/miss.
     *
     * This is the batched replay kernel's primitive: K lanes' probeWay
     * scans issue back-to-back — independent packed compares whose set
     * rows load in parallel — and the branchy commit runs after, so
     * one event's K tag scans overlap instead of serializing.
     */
    bool accessFound(Addr addr, u32 way)
    {
        switch (assoc_) {
          case 8:
            return accessFoundT<8>(addr, way);
          case 24:
            return accessFoundT<24>(addr, way);
          default:
            return accessFoundT<0>(addr, way);
        }
    }

    /**
     * Way currently holding @p addr's line, or assoc() if absent; no
     * state change. Lets callers that will touch the line again skip
     * the next scan (see MemoryHierarchy's prefetch memo).
     */
    u32 probeWay(Addr addr) const
    {
        switch (assoc_) {
          case 8:
            return probeWayT<8>(addr);
          case 24:
            return probeWayT<24>(addr);
          default:
            return probeWayT<0>(addr);
        }
    }

    /**
     * probeWay() with a verified way hint. A line occupies at most one
     * way of its set, so if the tag at @p hint matches, @p hint *is*
     * the answer — one tag load replaces the packed scan. A stale or
     * out-of-range hint (the sentinel 0xff included) falls back to the
     * full scan, so a hint can only ever change the cost of the probe,
     * never its result. The batched replay kernel feeds this from
     * small per-lane way memos keyed by replay-plan indices.
     */
    u32 probeWayHinted(Addr addr, u32 hint) const
    {
        if (countHints_) [[unlikely]]
            ++hintStats_.probes;
        if (hint < assoc_) {
            const u32 set = setIndex(addr);
            const size_t base = static_cast<size_t>(set) * assoc_;
            // The probe key carries the epoch salt, so a tag written
            // in a stale epoch cannot verify — no liveness check.
            const Addr tag = tagOf(addr);
            if (tagsLo_[base + hint] == static_cast<u32>(tag) &&
                tagsHi_[base + hint] == static_cast<u16>(tag >> 32)) {
                if (countHints_) [[unlikely]]
                    ++hintStats_.verified;
                return hint;
            }
        }
        return probeWay(addr);
    }

    /**
     * accessFound() that also reports the way the line occupies after
     * the access — the hit way, or the victim a miss installed into —
     * so callers can refresh a way memo. Effects and hit/miss outcome
     * are exactly accessFound()'s.
     */
    u32 accessFoundWay(Addr addr, u32 way)
    {
        switch (assoc_) {
          case 8:
            return accessFoundWayT<8>(addr, way);
          case 24:
            return accessFoundWayT<24>(addr, way);
          default:
            return accessFoundWayT<0>(addr, way);
        }
    }

    /**
     * Record a demand access that is known to hit at @p way — the
     * caller proved presence (probeWay/install with no intervening
     * state change to the set). Statistics and LRU updates are exactly
     * those of a hitting access(), without the scan.
     */
    void accessAt(Addr addr, u32 way)
    {
        const u32 set = setIndex(addr);
        const size_t base = static_cast<size_t>(set) * assoc_;
        // Bounds only: verifying the caller's claim (tag equality,
        // set liveness) re-loads the set's metadata on the
        // prefetch-shortcut fetch path — the hottest accessAt caller
        // — and measured ~3% of replay throughput; the golden replay
        // tests pin the claim instead.
        INTERF_ASSERT(way < assoc_);
        ++stats_.accesses;
        touchLru(base, set, way);
    }

    /**
     * Install a line without touching the hit/miss statistics (used for
     * prefetches, which are not demand misses).
     *
     * @return The way the line now occupies.
     */
    u32 install(Addr addr)
    {
        switch (assoc_) {
          case 8:
            return installT<8>(addr);
          case 24:
            return installT<24>(addr);
          default:
            return installT<0>(addr);
        }
    }

    /** Invalidate everything and clear statistics. O(1) amortized:
     *  bumps the set-generation epoch instead of clearing the tag
     *  arrays; a full clear runs only when the u8 epoch wraps. */
    void reset();

    /** Clear statistics only, keeping cache contents (warmup end). */
    void clearStats() { stats_ = CacheStats(); }

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }
    const HintStats &hintStats() const { return hintStats_; }

    /** Enable/disable hinted-probe outcome counting (off by default;
     *  see HintStats). */
    void setHintCounting(bool on) { countHints_ = on; }

    /** Bytes of per-replay mutable state (tag/LRU/generation arrays) —
     *  what one batched-replay lane keeps hot per cache. */
    u64 hotStateBytes() const
    {
        return tagsLo_.size() * sizeof(u32) +
               tagsHi_.size() * sizeof(u16) +
               lru_.size() * sizeof(u32) + lru8_.size() +
               setClock8_.size() + gen_.size();
    }

    /** Line count at and above which an LRU cache stores u8 per-set
     *  ages instead of u32 stamps (see the file header; exposed so
     *  tests can construct caches on either side). */
    static constexpr u32 kNarrowLruLines = 16384;

    /**
     * @{ Compacted-tag representation constants, public so the static
     * soundness analyzer (src/analyze) re-derives the invariants the
     * kernel assumes from the same values the kernel uses.
     *
     * kTagBits is the total stored tag width (the split u32 lo /
     * u16 hi pair). kNoTag is the invalid-way sentinel: all-ones in
     * that 48-bit representation. Raw tags are line numbers
     * (address >> lineShift), which must stay below 2^kEpochShift for
     * any address the layout engines produce — installs assert it —
     * leaving bits 42..47 for the epoch salt tagOf() ORs in. A
     * probe's key therefore only ever matches a tag installed in the
     * same epoch, which is the entire invalidation check. Epochs
     * cycle 0..kEpochPeriod-1 (all-ones excluded), so a salted tag's
     * top six bits can never be all-ones and the sentinel never
     * collides; the wrap — once every 63 resets — pays for a real
     * clear (see reset()).
     */
    static constexpr u32 kTagBits = 48;
    static constexpr Addr kNoTag = (Addr{1} << kTagBits) - 1;
    static constexpr u32 kEpochShift = 42;
    static constexpr u8 kEpochPeriod = 63;
    /** @} */

    /** Current u32 stamp-clock value (stamp-LRU caches only). Exposed
     *  so tests can pin the reset-restart invariant: the clock must
     *  restart at every reset(), or a pooled lane's cumulative touches
     *  could wrap it mid-sweep and silently invert victim choice —
     *  2^32 touches is unreachable within one replay, which is the
     *  bound reset() re-establishes, but reachable across thousands
     *  of optimizer replays. */
    u32 lruClockForTest() const { return lruClock_; }

    /** Set index for an address (exposed for tests). */
    u32 setIndex(Addr addr) const
    {
        return static_cast<u32>(addr >> lineShift_) & (sets_ - 1);
    }

  private:
    /** Raw line-number tag of @p addr, salted with the epoch. */
    Addr tagOf(Addr addr) const
    {
        return (addr >> lineShift_) |
               (static_cast<Addr>(epoch_) << kEpochShift);
    }

    bool setLive(u32 set) const { return gen_[set] == epoch_; }

    /** Bring a stale set up to the current epoch: all ways invalid,
     *  ages zeroed — exactly the state an eager reset() would have
     *  left it in. */
    void materializeSet(size_t base, u32 set)
    {
        for (u32 w = 0; w < assoc_; ++w) {
            tagsLo_[base + w] = static_cast<u32>(kNoTag);
            tagsHi_[base + w] = static_cast<u16>(kNoTag >> 32);
        }
        if (lruTracked_) {
            if (narrowLru_) {
                for (u32 w = 0; w < assoc_; ++w)
                    lru8_[base + w] = 0;
                setClock8_[set] = 0;
            } else {
                for (u32 w = 0; w < assoc_; ++w)
                    lru_[base + w] = 0;
            }
        }
        gen_[set] = epoch_;
    }

    /**
     * Mark way @p w most-recent in its set. For stamp-tracked caches
     * the store is the only per-set write — nothing on this path
     * *reads* per-set replacement state, so consecutive touches of
     * one set never serialize through it (see the file header for the
     * narrower schemes this out-measured). Narrow (big-LRU) caches
     * take the BTB's per-set age-clock path instead; the narrowLru_
     * branch is loop-invariant per cache instance, and the fixed-
     * associativity template instantiations keep the L1s' inlined
     * copies on the stamp side unconditionally predicted.
     */
    void touchLru(size_t base, u32 set, u32 w)
    {
        if (!lruTracked_)
            return;
        if (narrowLru_) {
            u8 clock = setClock8_[set];
            if (clock == 0xff) {
                renormalizeLru(base);
                clock = static_cast<u8>(assoc_ - 1);
            }
            ++clock;
            setClock8_[set] = clock;
            lru8_[base + w] = clock;
            return;
        }
        lru_[base + w] = ++lruClock_;
    }

    /** Rank-renormalize one set's u8 ages to 0..assoc-1, preserving
     *  age order with ties (never-touched ways) broken by way index —
     *  exactly the order pickVictim's min scan observes, so victim
     *  choice across a renormalization is unchanged. */
    void renormalizeLru(size_t base)
    {
        u8 *ages = lru8_.data() + base;
        u8 ranked[32]; // validate() caps LRU assoc at 32
        for (u32 w = 0; w < assoc_; ++w) {
            u8 r = 0;
            for (u32 v = 0; v < assoc_; ++v)
                r += static_cast<u8>(ages[v] < ages[w] ||
                                     (ages[v] == ages[w] && v < w));
            ranked[w] = r;
        }
        for (u32 w = 0; w < assoc_; ++w)
            ages[w] = ranked[w];
    }

    /**
     * Way of the row at @p base holding @p tag, or assoc if absent.
     * The caller must have checked the set is live.
     *
     * The scan is branchless across the ways: packed compares against
     * the u32 low halves (4 per vector) and the u16 high halves (8 per
     * vector, narrowed to a per-way byte mask) AND together into an
     * exact 48-bit-equality bitmask — lo equal and hi equal iff the
     * full tags are equal — so the hit way is a single ctz away with
     * no data-dependent load or branch. The per-way early-exit loop
     * this replaces paid one mispredict per lookup — the way holding a
     * tag is effectively random — which dominated the replay kernel's
     * cycle budget.
     */
    template <u32 kAssoc>
    u32 findWay(size_t base, Addr tag) const
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const u16 tag_hi = static_cast<u16>(tag >> 32);
#ifdef INTERF_CACHE_HAVE_SSE2
        if (assoc % 8 == 0 && assoc <= 32) { // mask is a u32; odd rows
                                             // (kAssoc == 0) scan scalar
            const u32 *lo = tagsLo_.data() + base;
            const u16 *hi = tagsHi_.data() + base;
            const __m128i key_lo =
                _mm_set1_epi32(static_cast<int>(static_cast<u32>(tag)));
            const __m128i key_hi =
                _mm_set1_epi16(static_cast<short>(tag_hi));
            u32 mask = 0;
            for (u32 w = 0; w < assoc; w += 8) {
                __m128i eq_lo0 = _mm_cmpeq_epi32(
                    _mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(lo + w)),
                    key_lo);
                __m128i eq_lo1 = _mm_cmpeq_epi32(
                    _mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(lo + w + 4)),
                    key_lo);
                __m128i eq_hi = _mm_cmpeq_epi16(
                    _mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(hi + w)),
                    key_hi);
                // packs_epi16 narrows the 8 u16 compare results to one
                // 0x00/0xff byte per way, aligning them with the lo
                // mask's bit-per-way layout.
                const u32 m_lo =
                    static_cast<u32>(_mm_movemask_ps(
                        _mm_castsi128_ps(eq_lo0))) |
                    (static_cast<u32>(_mm_movemask_ps(
                         _mm_castsi128_ps(eq_lo1)))
                     << 4);
                const u32 m_hi = static_cast<u32>(_mm_movemask_epi8(
                                     _mm_packs_epi16(eq_hi, eq_hi))) &
                                 0xffu;
                mask |= (m_lo & m_hi) << w;
            }
            return mask ? static_cast<u32>(__builtin_ctz(mask)) : assoc;
        }
#endif
        const u32 *lo = tagsLo_.data() + base;
        const u16 *hi = tagsHi_.data() + base;
        for (u32 w = 0; w < assoc; ++w)
            if (lo[w] == static_cast<u32>(tag) && hi[w] == tag_hi)
                return w;
        return assoc;
    }

    /** @{ Fixed-associativity bodies; kAssoc == 0 = runtime assoc_. */
    template <u32 kAssoc>
    bool accessT(Addr addr)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const u32 set = setIndex(addr);
        const size_t base = static_cast<size_t>(set) * assoc;
        // No liveness check: a stale set's tags carry an old epoch
        // salt, so the scan misses on its own (see kEpochShift).
        const u32 w = findWay<kAssoc>(base, tagOf(addr));
        return accessFoundT<kAssoc>(addr, w);
    }

    /** Commit body shared by accessT and the batched probe/commit
     *  split; the set/tag recomputation folds away after inlining. */
    template <u32 kAssoc>
    bool accessFoundT(Addr addr, u32 w)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        accessFoundWayT<kAssoc>(addr, w);
        return w != assoc;
    }

    /** As accessFoundT, returning the way the line ends up in (the
     *  hit way unchanged, or the just-installed victim on a miss). */
    template <u32 kAssoc>
    u32 accessFoundWayT(Addr addr, u32 w)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        ++stats_.accesses;
        const u32 set = setIndex(addr);
        const size_t base = static_cast<size_t>(set) * assoc;
        if (w != assoc) {
            touchLru(base, set, w);
            return w;
        }
        ++stats_.misses;
        if (!setLive(set))
            materializeSet(base, set);
        const Addr tag = tagOf(addr);
        INTERF_ASSERT((addr >> lineShift_) <
                      (Addr{1} << kEpochShift)); // salt headroom
        u32 victim = pickVictim<kAssoc>(base);
        tagsLo_[base + victim] = static_cast<u32>(tag);
        tagsHi_[base + victim] = static_cast<u16>(tag >> 32);
        touchLru(base, set, victim);
        return victim;
    }

    template <u32 kAssoc>
    u32 probeWayT(Addr addr) const
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const u32 set = setIndex(addr);
        const size_t base = static_cast<size_t>(set) * assoc;
        return findWay<kAssoc>(base, tagOf(addr));
    }

    template <u32 kAssoc>
    u32 installT(Addr addr)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const u32 set = setIndex(addr);
        const size_t base = static_cast<size_t>(set) * assoc;
        const Addr tag = tagOf(addr);
        INTERF_ASSERT((addr >> lineShift_) <
                      (Addr{1} << kEpochShift)); // salt headroom
        if (!setLive(set))
            materializeSet(base, set);
        u32 w = findWay<kAssoc>(base, tag);
        if (w != assoc) {
            touchLru(base, set, w);
            return w;
        }
        u32 victim = pickVictim<kAssoc>(base);
        tagsLo_[base + victim] = static_cast<u32>(tag);
        tagsHi_[base + victim] = static_cast<u16>(tag >> 32);
        touchLru(base, set, victim);
        return victim;
    }

    /**
     * Victim way: invalid ways first (in way order, which the kNoTag
     * scan preserves since candidates are visited low way first), then
     * the policy's choice. The caller materialized the set.
     */
    template <u32 kAssoc>
    u32 pickVictim(size_t base)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        u32 invalid = findWay<kAssoc>(base, kNoTag);
        if (invalid != assoc)
            return invalid;
        if (cfg_.replacement == Replacement::Random)
            return static_cast<u32>(victimRng_.uniformInt(assoc));
        if (narrowLru_) {
            const u8 *lru = lru8_.data() + base;
            u32 victim = 0;
            for (u32 w = 1; w < assoc; ++w)
                if (lru[w] < lru[victim])
                    victim = w;
            return victim;
        }
        const u32 *lru = lru_.data() + base;
        u32 victim = 0;
        for (u32 w = 1; w < assoc; ++w)
            if (lru[w] < lru[victim])
                victim = w;
        return victim;
    }
    /** @} */

    CacheConfig cfg_;
    u32 sets_;
    u32 assoc_;
    u32 lineShift_;
    /** LRU ages are only ever read under Replacement::Lru; Random
     *  caches skip the stores — dead writes evict real state from the
     *  host's caches. */
    bool lruTracked_;
    /** Lru representation: u8 per-set ages (lru8_/setClock8_) for
     *  caches of >= kNarrowLruLines lines, u32 stamps (lru_) below.
     *  Fixed by geometry at construction — not a knob. */
    bool narrowLru_ = false;
    /** Current reset epoch; a set is valid iff gen_[set] == epoch_. */
    u8 epoch_ = 0;
    Rng victimRng_{0x5eed};
    std::vector<u32> tagsLo_;    ///< @{ 48-bit tags, split for the
    std::vector<u16> tagsHi_;    ///< packed scan; row-major by set. @}
    std::vector<u32> lru_;       ///< Per-way stamp (small Lru caches).
    u32 lruClock_ = 0;           ///< Cache-wide stamp clock.
    std::vector<u8> lru8_;       ///< Per-way age (narrow Lru caches).
    std::vector<u8> setClock8_;  ///< Per-set age clock (narrow Lru).
    std::vector<u8> gen_;        ///< Per-set reset generation.
    CacheStats stats_;
    mutable HintStats hintStats_;
    bool countHints_ = false;    ///< See setHintCounting().
};

} // namespace interf::cache

#endif // INTERF_CACHE_CACHE_HH
