/**
 * @file
 * Generic set-associative cache model with LRU replacement.
 *
 * Section 4.1 of the paper: "conflict misses in the instruction cache
 * occur when the number of blocks mapping to a particular set exceeds
 * the associativity of the cache" — the mechanism through which code
 * reordering perturbs the L1I, and heap randomization the L1D/L2.
 * The model tracks hits and misses only (no data), which is all the
 * PMU observes.
 */

#ifndef INTERF_CACHE_CACHE_HH
#define INTERF_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace interf::cache
{

/** Replacement policy of a cache level. */
enum class Replacement : u8 {
    Lru,    ///< True LRU (small L1-class caches).
    Random, ///< Seeded random victim: models the pseudo-LRU/NRU
            ///< approximations of large L2s, whose behaviour sits
            ///< between LRU and random and has no sharp capacity cliff.
};

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    u64 sizeBytes = 32 << 10;
    u32 assoc = 8;
    u32 lineBytes = 64;
    Replacement replacement = Replacement::Lru;

    u32 numSets() const;

    /** Validate geometry (power-of-two sets/lines); fatal() if not. */
    void validate() const;
};

/** Hit/miss statistics of one cache. */
struct CacheStats
{
    Count accesses = 0;
    Count misses = 0;

    Count hits() const { return accesses - misses; }
    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** A set-associative, LRU, tag-only cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one address (a single line).
     *
     * @return true on hit, false on miss (the line is then installed).
     */
    bool access(Addr addr);

    /** Probe without updating replacement state or installing. */
    bool contains(Addr addr) const;

    /**
     * Install a line without touching the hit/miss statistics (used for
     * prefetches, which are not demand misses).
     */
    void install(Addr addr);

    /** Invalidate everything and clear statistics. */
    void reset();

    /** Clear statistics only, keeping cache contents (warmup end). */
    void clearStats() { stats_ = CacheStats(); }

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    /** Set index for an address (exposed for tests). */
    u32 setIndex(Addr addr) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        u32 lru = 0;
    };

    Addr tagOf(Addr addr) const;
    u32 pickVictim(const Line *row);

    CacheConfig cfg_;
    u32 sets_;
    u32 lineShift_;
    u32 lruClock_ = 0;
    Rng victimRng_{0x5eed};
    std::vector<Line> lines_; ///< sets_ * assoc, row-major by set.
    CacheStats stats_;
};

} // namespace interf::cache

#endif // INTERF_CACHE_CACHE_HH
