/**
 * @file
 * Generic set-associative cache model with LRU replacement.
 *
 * Section 4.1 of the paper: "conflict misses in the instruction cache
 * occur when the number of blocks mapping to a particular set exceeds
 * the associativity of the cache" — the mechanism through which code
 * reordering perturbs the L1I, and heap randomization the L1D/L2.
 * The model tracks hits and misses only (no data), which is all the
 * PMU observes.
 *
 * The replay kernel calls access() roughly once per trace event and
 * once per memory reference, so the lookup path is inlined here and
 * the ways are stored as parallel tag/LRU arrays (an invalid way holds
 * the kNoTag sentinel) rather than an array of line structs: a set's
 * tags share one cache line and the common hit case touches nothing
 * else.
 */

#ifndef INTERF_CACHE_CACHE_HH
#define INTERF_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"
#include "util/types.hh"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define INTERF_CACHE_HAVE_SSE2 1
#endif

namespace interf::cache
{

/** Replacement policy of a cache level. */
enum class Replacement : u8 {
    Lru,    ///< True LRU (small L1-class caches).
    Random, ///< Seeded random victim: models the pseudo-LRU/NRU
            ///< approximations of large L2s, whose behaviour sits
            ///< between LRU and random and has no sharp capacity cliff.
};

/** Geometry of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    u64 sizeBytes = 32 << 10;
    u32 assoc = 8;
    u32 lineBytes = 64;
    Replacement replacement = Replacement::Lru;

    u32 numSets() const;

    /** Validate geometry (power-of-two sets/lines); fatal() if not. */
    void validate() const;
};

/** Hit/miss statistics of one cache. */
struct CacheStats
{
    Count accesses = 0;
    Count misses = 0;

    Count hits() const { return accesses - misses; }
    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** A set-associative, LRU, tag-only cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one address (a single line).
     *
     * @return true on hit, false on miss (the line is then installed).
     *
     * The way scan dispatches to a fixed-associativity instantiation
     * for the geometries the machine models actually use (8-way L1s,
     * 24-way L2), letting the compiler fully unroll it.
     */
    bool access(Addr addr)
    {
        switch (assoc_) {
          case 8:
            return accessT<8>(addr);
          case 24:
            return accessT<24>(addr);
          default:
            return accessT<0>(addr);
        }
    }

    /** Probe without updating replacement state or installing. */
    bool contains(Addr addr) const
    {
        return probeWay(addr) != assoc_;
    }

    /**
     * Commit half of access(): complete an access whose tag scan
     * already ran (@p way from probeWay(), with no intervening change
     * to the set). Statistics, LRU and install effects are exactly
     * those of access(); the return value is the same hit/miss.
     *
     * This is the batched replay kernel's primitive: K lanes' probeWay
     * scans issue back-to-back — independent packed compares whose set
     * rows load in parallel — and the branchy commit runs after, so
     * one event's K tag scans overlap instead of serializing.
     */
    bool accessFound(Addr addr, u32 way)
    {
        switch (assoc_) {
          case 8:
            return accessFoundT<8>(addr, way);
          case 24:
            return accessFoundT<24>(addr, way);
          default:
            return accessFoundT<0>(addr, way);
        }
    }

    /**
     * Way currently holding @p addr's line, or assoc() if absent; no
     * state change. Lets callers that will touch the line again skip
     * the next scan (see MemoryHierarchy's prefetch memo).
     */
    u32 probeWay(Addr addr) const
    {
        switch (assoc_) {
          case 8:
            return probeWayT<8>(addr);
          case 24:
            return probeWayT<24>(addr);
          default:
            return probeWayT<0>(addr);
        }
    }

    /**
     * probeWay() with a verified way hint. A line occupies at most one
     * way of its set, so if the tag at @p hint matches, @p hint *is*
     * the answer — one tag load replaces the packed scan. A stale or
     * out-of-range hint (the sentinel 0xff included) falls back to the
     * full scan, so a hint can only ever change the cost of the probe,
     * never its result. The batched replay kernel feeds this from
     * small per-lane way memos keyed by replay-plan indices.
     */
    u32 probeWayHinted(Addr addr, u32 hint) const
    {
        if (hint < assoc_) {
            const size_t base =
                static_cast<size_t>(setIndex(addr)) * assoc_;
            if (tags_[base + hint] == tagOf(addr))
                return hint;
        }
        return probeWay(addr);
    }

    /**
     * accessFound() that also reports the way the line occupies after
     * the access — the hit way, or the victim a miss installed into —
     * so callers can refresh a way memo. Effects and hit/miss outcome
     * are exactly accessFound()'s.
     */
    u32 accessFoundWay(Addr addr, u32 way)
    {
        switch (assoc_) {
          case 8:
            return accessFoundWayT<8>(addr, way);
          case 24:
            return accessFoundWayT<24>(addr, way);
          default:
            return accessFoundWayT<0>(addr, way);
        }
    }

    /**
     * Record a demand access that is known to hit at @p way — the
     * caller proved presence (probeWay/install with no intervening
     * state change to the set). Statistics and LRU updates are exactly
     * those of a hitting access(), without the scan.
     */
    void accessAt(Addr addr, u32 way)
    {
        const size_t base = static_cast<size_t>(setIndex(addr)) * assoc_;
        INTERF_ASSERT(way < assoc_ && tags_[base + way] == tagOf(addr));
        ++stats_.accesses;
        ++lruClock_;
        if (lruTracked_)
            lru_[base + way] = lruClock_;
    }

    /**
     * Install a line without touching the hit/miss statistics (used for
     * prefetches, which are not demand misses).
     *
     * @return The way the line now occupies.
     */
    u32 install(Addr addr)
    {
        switch (assoc_) {
          case 8:
            return installT<8>(addr);
          case 24:
            return installT<24>(addr);
          default:
            return installT<0>(addr);
        }
    }

    /** Invalidate everything and clear statistics. */
    void reset();

    /** Clear statistics only, keeping cache contents (warmup end). */
    void clearStats() { stats_ = CacheStats(); }

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }

    /** Set index for an address (exposed for tests). */
    u32 setIndex(Addr addr) const
    {
        return static_cast<u32>(addr >> lineShift_) & (sets_ - 1);
    }

  private:
    /**
     * Tag value of an invalid way. Real tags are line numbers (address
     * >> lineShift), far below 2^52 for any address the layout engines
     * produce, so the all-ones value can never collide.
     */
    static constexpr Addr kNoTag = ~Addr{0};

    Addr tagOf(Addr addr) const { return addr >> lineShift_; }

    /**
     * Way of the row at @p base holding @p tag, or assoc if absent.
     *
     * The scan is branchless across the ways: packed compares against
     * the parallel low- and high-half tag arrays AND together into an
     * exact 64-bit-equality bitmask (lo equal and hi equal iff the full
     * tags are equal), so the hit way is a single ctz away with no
     * data-dependent load or branch. The per-way early-exit loop this
     * replaces paid one mispredict per lookup — the way holding a tag
     * is effectively random — which dominated the replay kernel's
     * cycle budget.
     */
    template <u32 kAssoc>
    u32 findWay(size_t base, Addr tag) const
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
#ifdef INTERF_CACHE_HAVE_SSE2
        if (assoc % 4 == 0 && assoc <= 32) { // mask is a u32; odd rows
                                             // (kAssoc == 0) scan scalar
            const u32 *lo = tagsLo_.data() + base;
            const u32 *hi = tagsHi_.data() + base;
            const __m128i key_lo =
                _mm_set1_epi32(static_cast<int>(static_cast<u32>(tag)));
            const __m128i key_hi = _mm_set1_epi32(
                static_cast<int>(static_cast<u32>(tag >> 32)));
            u32 mask = 0;
            for (u32 w = 0; w < assoc; w += 4) {
                __m128i eq = _mm_and_si128(
                    _mm_cmpeq_epi32(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(lo + w)),
                        key_lo),
                    _mm_cmpeq_epi32(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(hi + w)),
                        key_hi));
                mask |= static_cast<u32>(
                            _mm_movemask_ps(_mm_castsi128_ps(eq)))
                        << w;
            }
            return mask ? static_cast<u32>(__builtin_ctz(mask)) : assoc;
        }
#endif
        const Addr *tags = tags_.data() + base;
        for (u32 w = 0; w < assoc; ++w)
            if (tags[w] == tag)
                return w;
        return assoc;
    }

    /** @{ Fixed-associativity bodies; kAssoc == 0 = runtime assoc_. */
    template <u32 kAssoc>
    bool accessT(Addr addr)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const size_t base = static_cast<size_t>(setIndex(addr)) * assoc;
        return accessFoundT<kAssoc>(addr,
                                    findWay<kAssoc>(base, tagOf(addr)));
    }

    /** Commit body shared by accessT and the batched probe/commit
     *  split; the set/tag recomputation folds away after inlining. */
    template <u32 kAssoc>
    bool accessFoundT(Addr addr, u32 w)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        accessFoundWayT<kAssoc>(addr, w);
        return w != assoc;
    }

    /** As accessFoundT, returning the way the line ends up in (the
     *  hit way unchanged, or the just-installed victim on a miss). */
    template <u32 kAssoc>
    u32 accessFoundWayT(Addr addr, u32 w)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        ++stats_.accesses;
        const size_t base = static_cast<size_t>(setIndex(addr)) * assoc;
        ++lruClock_;
        if (w != assoc) {
            if (lruTracked_)
                lru_[base + w] = lruClock_;
            return w;
        }
        ++stats_.misses;
        const Addr tag = tagOf(addr);
        u32 victim = pickVictim<kAssoc>(base);
        tags_[base + victim] = tag;
        tagsLo_[base + victim] = static_cast<u32>(tag);
        tagsHi_[base + victim] = static_cast<u32>(tag >> 32);
        if (lruTracked_)
            lru_[base + victim] = lruClock_;
        return victim;
    }

    template <u32 kAssoc>
    u32 probeWayT(Addr addr) const
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const size_t base = static_cast<size_t>(setIndex(addr)) * assoc;
        return findWay<kAssoc>(base, tagOf(addr));
    }

    template <u32 kAssoc>
    u32 installT(Addr addr)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        const size_t base = static_cast<size_t>(setIndex(addr)) * assoc;
        const Addr tag = tagOf(addr);
        ++lruClock_;
        u32 w = findWay<kAssoc>(base, tag);
        if (w != assoc) {
            if (lruTracked_)
                lru_[base + w] = lruClock_;
            return w;
        }
        u32 victim = pickVictim<kAssoc>(base);
        tags_[base + victim] = tag;
        tagsLo_[base + victim] = static_cast<u32>(tag);
        tagsHi_[base + victim] = static_cast<u32>(tag >> 32);
        if (lruTracked_)
            lru_[base + victim] = lruClock_;
        return victim;
    }

    /**
     * Victim way: invalid ways first (in way order, which the kNoTag
     * scan preserves since candidates are visited low way first), then
     * the policy's choice.
     */
    template <u32 kAssoc>
    u32 pickVictim(size_t base)
    {
        const u32 assoc = kAssoc ? kAssoc : assoc_;
        u32 invalid = findWay<kAssoc>(base, kNoTag);
        if (invalid != assoc)
            return invalid;
        if (cfg_.replacement == Replacement::Random)
            return static_cast<u32>(victimRng_.uniformInt(assoc));
        const u32 *lru = lru_.data() + base;
        u32 victim = 0;
        for (u32 w = 1; w < assoc; ++w)
            if (lru[w] < lru[victim])
                victim = w;
        return victim;
    }
    /** @} */

    CacheConfig cfg_;
    u32 sets_;
    u32 assoc_;
    u32 lineShift_;
    /** LRU timestamps are only ever read under Replacement::Lru;
     *  Random caches (the large L2) skip the stores — the lru_ array
     *  is as big as the tag arrays, and dead writes to it evict real
     *  state from the host's caches. */
    bool lruTracked_;
    u32 lruClock_ = 0;
    Rng victimRng_{0x5eed};
    std::vector<Addr> tags_;   ///< sets_ * assoc, row-major by set.
    std::vector<u32> tagsLo_;  ///< @{ Split halves of tags_: the scan
    std::vector<u32> tagsHi_;  ///< compares both packed. @}
    std::vector<u32> lru_;     ///< Parallel to tags_.
    CacheStats stats_;
};

} // namespace interf::cache

#endif // INTERF_CACHE_CACHE_HH
