#include "cache/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace interf::cache
{

u32
CacheConfig::numSets() const
{
    u64 lines = sizeBytes / lineBytes;
    return static_cast<u32>(lines / assoc);
}

void
CacheConfig::validate() const
{
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("cache '%s': line size %u is not a power of two",
              name.c_str(), lineBytes);
    if (assoc == 0)
        fatal("cache '%s': associativity must be >= 1", name.c_str());
    if (replacement == Replacement::Lru && assoc > 32)
        fatal("cache '%s': LRU associativity %u exceeds 32 (u8 per-set "
              "ages; use Replacement::Random for wider sets)",
              name.c_str(), assoc);
    if (sizeBytes % (static_cast<u64>(lineBytes) * assoc) != 0)
        fatal("cache '%s': size %llu not divisible by way size",
              name.c_str(),
              static_cast<unsigned long long>(sizeBytes));
    u32 sets = numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("cache '%s': %u sets is not a power of two (%llu B / %u "
              "B lines / %u ways); set indexing masks low bits, so a "
              "non-power-of-two count would silently alias sets",
              name.c_str(), sets,
              static_cast<unsigned long long>(sizeBytes), lineBytes,
              assoc);
}

Cache::Cache(const CacheConfig &config) : cfg_(config)
{
    cfg_.validate();
    sets_ = cfg_.numSets();
    assoc_ = cfg_.assoc;
    lruTracked_ = cfg_.replacement == Replacement::Lru;
    lineShift_ = static_cast<u32>(std::countr_zero(cfg_.lineBytes));
    const size_t entries = static_cast<size_t>(sets_) * assoc_;
    tagsLo_.resize(entries, static_cast<u32>(kNoTag));
    tagsHi_.resize(entries, static_cast<u16>(kNoTag >> 32));
    // Random caches never read LRU ages (pickVictim consults the
    // RNG), so they skip the allocation entirely: dead writes would
    // evict real state from the host's caches. LRU caches choose the
    // representation by geometry (see the file header in cache.hh):
    // u32 stamps for small hot caches, u8 per-set ages for
    // megabyte-class ones whose stamp array would dominate a replay
    // lane's footprint.
    if (lruTracked_) {
        narrowLru_ = entries >= Cache::kNarrowLruLines;
        if (narrowLru_) {
            lru8_.resize(entries, 0);
            setClock8_.resize(sets_, 0);
        } else {
            lru_.resize(entries, 0);
        }
    }
    gen_.resize(sets_, 0);
}

void
Cache::reset()
{
    // Epoch-versioned invalidation: bumping epoch_ changes the salt
    // tagOf() folds into every probe key and installed tag, so all
    // tags written in earlier epochs stop matching (see kEpochShift).
    // Epochs cycle 0..62; the wrap — once every 63 resets — pays for
    // a real clear, without which a set last touched 63 epochs ago
    // would alias the new epoch and resurrect its contents.
    ++epoch_;
    if (epoch_ == Cache::kEpochPeriod) {
        epoch_ = 0;
        std::fill(tagsLo_.begin(), tagsLo_.end(),
                  static_cast<u32>(kNoTag));
        std::fill(tagsHi_.begin(), tagsHi_.end(),
                  static_cast<u16>(kNoTag >> 32));
        if (lruTracked_) {
            if (narrowLru_) {
                std::fill(lru8_.begin(), lru8_.end(), u8{0});
                std::fill(setClock8_.begin(), setClock8_.end(), u8{0});
            } else {
                std::fill(lru_.begin(), lru_.end(), u32{0});
            }
        }
        std::fill(gen_.begin(), gen_.end(), u8{0});
    }
    // The stamp clock restarts every reset, exactly as the eager-clear
    // scheme did, so wrap of the u32 clock would need 2^32 touches in
    // ONE replay (unreachable) rather than across a pooled lane's whole
    // lifetime (reachable in long optimizer sweeps). Restarting under a
    // lazy reset is safe: stale sets carry the old epoch salt so they
    // can't hit, and both LRU read paths (pickVictim, touchLru-on-hit)
    // run only after materializeSet() has re-zeroed the set's stamps.
    lruClock_ = 0;
    stats_ = CacheStats();
    victimRng_ = Rng(0x5eed); // deterministic runs
}

} // namespace interf::cache
