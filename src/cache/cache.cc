#include "cache/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace interf::cache
{

u32
CacheConfig::numSets() const
{
    u64 lines = sizeBytes / lineBytes;
    return static_cast<u32>(lines / assoc);
}

void
CacheConfig::validate() const
{
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("cache '%s': line size %u is not a power of two",
              name.c_str(), lineBytes);
    if (assoc == 0)
        fatal("cache '%s': associativity must be >= 1", name.c_str());
    if (sizeBytes % (static_cast<u64>(lineBytes) * assoc) != 0)
        fatal("cache '%s': size %llu not divisible by way size",
              name.c_str(),
              static_cast<unsigned long long>(sizeBytes));
    u32 sets = numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("cache '%s': %u sets is not a power of two", name.c_str(),
              sets);
}

Cache::Cache(const CacheConfig &config) : cfg_(config)
{
    cfg_.validate();
    sets_ = cfg_.numSets();
    lineShift_ = static_cast<u32>(std::countr_zero(cfg_.lineBytes));
    lines_.resize(static_cast<size_t>(sets_) * cfg_.assoc);
}

u32
Cache::setIndex(Addr addr) const
{
    return static_cast<u32>(addr >> lineShift_) & (sets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

bool
Cache::access(Addr addr)
{
    ++stats_.accesses;
    Line *row = &lines_[static_cast<size_t>(setIndex(addr)) * cfg_.assoc];
    Addr tag = tagOf(addr);
    ++lruClock_;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].lru = lruClock_;
            return true;
        }
    }
    ++stats_.misses;
    row[pickVictim(row)] = {true, tag, lruClock_};
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const Line *row =
        &lines_[static_cast<size_t>(setIndex(addr)) * cfg_.assoc];
    Addr tag = tagOf(addr);
    for (u32 w = 0; w < cfg_.assoc; ++w)
        if (row[w].valid && row[w].tag == tag)
            return true;
    return false;
}

void
Cache::install(Addr addr)
{
    Line *row = &lines_[static_cast<size_t>(setIndex(addr)) * cfg_.assoc];
    Addr tag = tagOf(addr);
    ++lruClock_;
    for (u32 w = 0; w < cfg_.assoc; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].lru = lruClock_;
            return;
        }
    }
    row[pickVictim(row)] = {true, tag, lruClock_};
}

u32
Cache::pickVictim(const Line *row)
{
    // Invalid ways first under either policy.
    for (u32 w = 0; w < cfg_.assoc; ++w)
        if (!row[w].valid)
            return w;
    if (cfg_.replacement == Replacement::Random)
        return static_cast<u32>(victimRng_.uniformInt(cfg_.assoc));
    u32 victim = 0;
    for (u32 w = 1; w < cfg_.assoc; ++w)
        if (row[w].lru < row[victim].lru)
            victim = w;
    return victim;
}

void
Cache::reset()
{
    std::fill(lines_.begin(), lines_.end(), Line());
    lruClock_ = 0;
    stats_ = CacheStats();
    victimRng_ = Rng(0x5eed); // deterministic runs
}

} // namespace interf::cache
