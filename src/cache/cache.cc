#include "cache/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace interf::cache
{

u32
CacheConfig::numSets() const
{
    u64 lines = sizeBytes / lineBytes;
    return static_cast<u32>(lines / assoc);
}

void
CacheConfig::validate() const
{
    if (lineBytes == 0 || (lineBytes & (lineBytes - 1)) != 0)
        fatal("cache '%s': line size %u is not a power of two",
              name.c_str(), lineBytes);
    if (assoc == 0)
        fatal("cache '%s': associativity must be >= 1", name.c_str());
    if (sizeBytes % (static_cast<u64>(lineBytes) * assoc) != 0)
        fatal("cache '%s': size %llu not divisible by way size",
              name.c_str(),
              static_cast<unsigned long long>(sizeBytes));
    u32 sets = numSets();
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("cache '%s': %u sets is not a power of two", name.c_str(),
              sets);
}

Cache::Cache(const CacheConfig &config) : cfg_(config)
{
    cfg_.validate();
    sets_ = cfg_.numSets();
    assoc_ = cfg_.assoc;
    lruTracked_ = cfg_.replacement == Replacement::Lru;
    lineShift_ = static_cast<u32>(std::countr_zero(cfg_.lineBytes));
    tags_.resize(static_cast<size_t>(sets_) * assoc_, kNoTag);
    tagsLo_.resize(tags_.size(), static_cast<u32>(kNoTag));
    tagsHi_.resize(tags_.size(), static_cast<u32>(kNoTag >> 32));
    // Random caches never read lru_ (pickVictim consults the RNG),
    // so the large L2 skips the allocation entirely: at 4 bytes per
    // line it would rival the tag arrays and its per-reset memset
    // evicts real state from the host's caches.
    if (lruTracked_)
        lru_.resize(tags_.size(), 0);
}

void
Cache::reset()
{
    std::fill(tags_.begin(), tags_.end(), kNoTag);
    std::fill(tagsLo_.begin(), tagsLo_.end(), static_cast<u32>(kNoTag));
    std::fill(tagsHi_.begin(), tagsHi_.end(),
              static_cast<u32>(kNoTag >> 32));
    if (lruTracked_)
        std::fill(lru_.begin(), lru_.end(), 0u);
    lruClock_ = 0;
    stats_ = CacheStats();
    victimRng_ = Rng(0x5eed); // deterministic runs
}

} // namespace interf::cache
