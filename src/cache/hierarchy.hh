/**
 * @file
 * The machine's memory hierarchy: split L1I/L1D backed by a unified L2
 * and main memory, mirroring the Xeon E5440's per-core 32 KB L1 caches
 * and large shared L2 (Section 5.4).
 *
 * The hierarchy reports which level served each access; the timing
 * model converts levels into latencies (with MLP overlap). An optional
 * next-line instruction prefetcher reduces sequential-fetch misses the
 * way real front ends do, keeping conflict misses (the layout-sensitive
 * kind) as the dominant L1I miss source.
 */

#ifndef INTERF_CACHE_HIERARCHY_HH
#define INTERF_CACHE_HIERARCHY_HH

#include "cache/cache.hh"

namespace interf::cache
{

/** Which level served an access. */
enum class HitLevel : u8 { L1, L2, Memory };

/** Geometry + behaviour of the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{"L1I", 32 << 10, 8, 64};
    CacheConfig l1d{"L1D", 32 << 10, 8, 64};
    CacheConfig l2{"L2", 6 << 20, 24, 64, Replacement::Random};
    bool nextLinePrefetch = true; ///< Sequential I-prefetch into L1I.
};

/** Aggregate miss statistics of the hierarchy. */
struct HierarchyStats
{
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    Count l2InstMisses = 0; ///< L2 misses from demand instruction fetch.
    Count l2PrefMisses = 0; ///< L2 misses from the I-prefetcher.
    Count l2DataMisses = 0; ///< L2 misses from loads/stores.
};

/** Split L1 + unified L2 + memory. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config);

    /**
     * Instruction fetch of one line-covered address. Inlined: this and
     * accessData() are the two hottest calls in the replay kernel.
     */
    HitLevel fetchInst(Addr addr)
    {
        HitLevel level;
        if (addr == prefLine_) {
            // Sequential fetch of the line the previous call's prefetch
            // check just proved present. Nothing can have evicted it
            // since: only fetchInst mutates the L1I, every other call
            // refreshes this memo, and the hierarchy-deduped call (same
            // line re-fetch) touches the *previous* line's set, never
            // this one's (consecutive lines map to consecutive sets).
            // accessAt applies a hitting access's exact state updates.
            l1i_.accessAt(addr, prefWay_);
            level = HitLevel::L1;
        } else if (l1i_.access(addr)) {
            level = HitLevel::L1;
        } else if (l2_.access(addr)) {
            level = HitLevel::L2;
        } else {
            level = HitLevel::Memory;
            ++l2InstMisses_;
        }

        // Sequential next-line prefetch: bring in the following line so
        // straight-line fetch rarely misses; conflict misses among hot
        // lines (the layout-sensitive kind) remain.
        if (cfg_.nextLinePrefetch) {
            u32 line_bytes = cfg_.l1i.lineBytes;
            Addr line = addr / line_bytes;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                Addr next = (line + 1) * line_bytes;
                u32 way = l1i_.probeWay(next);
                if (way == l1i_.config().assoc) {
                    // The prefetch fills L1I via L2 without counting as
                    // a demand L1I miss.
                    if (!l2_.access(next))
                        ++l2PrefMisses_;
                    way = l1i_.install(next);
                }
                if (prefMemoSafe_) {
                    prefLine_ = next;
                    prefWay_ = way;
                }
            }
        }
        return level;
    }

    /** Data access (load or store; the model is allocate-on-miss). */
    HitLevel accessData(Addr addr)
    {
        if (l1d_.access(addr))
            return HitLevel::L1;
        if (l2_.access(addr))
            return HitLevel::L2;
        ++l2DataMisses_;
        return HitLevel::Memory;
    }

    /**
     * @{ accessData() split into its scan and commit halves for the
     * batched replay kernel: one event's K lanes probe their L1Ds
     * back-to-back (independent packed tag scans, so the K set-row
     * loads overlap) and then commit per lane. probeDataWay() has no
     * state change; accessDataAt(addr, way) applies exactly
     * accessData()'s effects given the scan result.
     */
    u32 probeDataWay(Addr addr) const { return l1d_.probeWay(addr); }

    HitLevel accessDataAt(Addr addr, u32 way)
    {
        if (l1d_.accessFound(addr, way))
            return HitLevel::L1;
        if (l2_.access(addr))
            return HitLevel::L2;
        ++l2DataMisses_;
        return HitLevel::Memory;
    }
    /** @} */

    /**
     * @{ Way-memoized probe/commit pair. The batched replay kernel
     * keeps a per-lane memo of the L1D way each memory-universe entry
     * hit last time: the hinted probe verifies the memo with a single
     * tag load (Cache::probeWayHinted — a match proves presence, so a
     * hint can never change a result, only skip the packed scan) and
     * the commit refreshes @p memo with the line's current way.
     * Effects and results are exactly probeDataWay()/accessDataAt()'s.
     */
    u32 probeDataWayHinted(Addr addr, u32 hint) const
    {
        return l1d_.probeWayHinted(addr, hint);
    }

    HitLevel accessDataCommit(Addr addr, u32 way, u8 &memo)
    {
        memo = static_cast<u8>(l1d_.accessFoundWay(addr, way));
        if (way != l1d_.config().assoc)
            return HitLevel::L1;
        if (l2_.access(addr))
            return HitLevel::L2;
        ++l2DataMisses_;
        return HitLevel::Memory;
    }
    /** @} */

    /**
     * fetchInst() with way memos for the demand line and the
     * prefetcher's next-line probe: @p demand_memo and @p pref_memo
     * hint the L1I ways those lines occupied the last time this fetch
     * slot ran, and are refreshed in place. Every access, statistic
     * and replacement update is exactly fetchInst()'s — the memos only
     * let the two tag scans collapse to single verified tag loads when
     * the hints still hold (see Cache::probeWayHinted).
     */
    HitLevel fetchInstHinted(Addr addr, u8 &demand_memo, u8 &pref_memo)
    {
        HitLevel level;
        if (addr == prefLine_) {
            // See fetchInst(): the previous call's prefetch check just
            // proved this line present at prefWay_.
            l1i_.accessAt(addr, prefWay_);
            demand_memo = static_cast<u8>(prefWay_);
            level = HitLevel::L1;
        } else {
            u32 w = l1i_.probeWayHinted(addr, demand_memo);
            demand_memo = static_cast<u8>(l1i_.accessFoundWay(addr, w));
            if (w != l1i_.config().assoc) {
                level = HitLevel::L1;
            } else if (l2_.access(addr)) {
                level = HitLevel::L2;
            } else {
                level = HitLevel::Memory;
                ++l2InstMisses_;
            }
        }

        if (cfg_.nextLinePrefetch) {
            u32 line_bytes = cfg_.l1i.lineBytes;
            Addr line = addr / line_bytes;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                Addr next = (line + 1) * line_bytes;
                u32 way = l1i_.probeWayHinted(next, pref_memo);
                if (way == l1i_.config().assoc) {
                    if (!l2_.access(next))
                        ++l2PrefMisses_;
                    way = l1i_.install(next);
                }
                pref_memo = static_cast<u8>(way);
                if (prefMemoSafe_) {
                    prefLine_ = next;
                    prefWay_ = way;
                }
            }
        }
        return level;
    }

    /** Invalidate all levels and clear statistics. */
    void reset();

    /** Clear statistics only, keeping contents (end of warmup). */
    void clearStats();

    const HierarchyConfig &config() const { return cfg_; }
    HierarchyStats stats() const;

    /** Per-replay mutable state across all three levels — what one
     *  batched-replay lane keeps hot. */
    u64 hotStateBytes() const
    {
        return l1i_.hotStateBytes() + l1d_.hotStateBytes() +
               l2_.hotStateBytes();
    }

    /** Enable/disable hinted-probe outcome counting on the memoized
     *  caches (off by default; see cache::HintStats). */
    void setHintCounting(bool on)
    {
        l1i_.setHintCounting(on);
        l1d_.setHintCounting(on);
    }

    /** Summed hinted-probe outcomes of the L1I and L1D (the two caches
     *  the way memos front). */
    HintStats hintStats() const
    {
        HintStats s;
        s.probes = l1i_.hintStats().probes + l1d_.hintStats().probes;
        s.verified =
            l1i_.hintStats().verified + l1d_.hintStats().verified;
        return s;
    }

  private:
    HierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Addr lastFetchLine_ = ~Addr{0};
    /** @{ Prefetch memo: the line the last prefetch check proved
     *  present in the L1I, and its way. The sequential-set argument in
     *  fetchInst() needs >= 2 L1I sets, so single-set geometries leave
     *  the memo disarmed. */
    Addr prefLine_ = ~Addr{0};
    u32 prefWay_ = 0;
    bool prefMemoSafe_ = false;
    /** @} */
    Count l2InstMisses_ = 0;
    Count l2PrefMisses_ = 0;
    Count l2DataMisses_ = 0;
};

} // namespace interf::cache

#endif // INTERF_CACHE_HIERARCHY_HH
