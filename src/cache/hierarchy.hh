/**
 * @file
 * The machine's memory hierarchy: split L1I/L1D backed by a unified L2
 * and main memory, mirroring the Xeon E5440's per-core 32 KB L1 caches
 * and large shared L2 (Section 5.4).
 *
 * The hierarchy reports which level served each access; the timing
 * model converts levels into latencies (with MLP overlap). An optional
 * next-line instruction prefetcher reduces sequential-fetch misses the
 * way real front ends do, keeping conflict misses (the layout-sensitive
 * kind) as the dominant L1I miss source.
 */

#ifndef INTERF_CACHE_HIERARCHY_HH
#define INTERF_CACHE_HIERARCHY_HH

#include "cache/cache.hh"

namespace interf::cache
{

/** Which level served an access. */
enum class HitLevel : u8 { L1, L2, Memory };

/** Geometry + behaviour of the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{"L1I", 32 << 10, 8, 64};
    CacheConfig l1d{"L1D", 32 << 10, 8, 64};
    CacheConfig l2{"L2", 6 << 20, 24, 64, Replacement::Random};
    bool nextLinePrefetch = true; ///< Sequential I-prefetch into L1I.
};

/** Aggregate miss statistics of the hierarchy. */
struct HierarchyStats
{
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    Count l2InstMisses = 0; ///< L2 misses from demand instruction fetch.
    Count l2PrefMisses = 0; ///< L2 misses from the I-prefetcher.
    Count l2DataMisses = 0; ///< L2 misses from loads/stores.
};

/** Split L1 + unified L2 + memory. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config);

    /** Instruction fetch of one line-covered address. */
    HitLevel fetchInst(Addr addr);

    /** Data access (load or store; the model is allocate-on-miss). */
    HitLevel accessData(Addr addr);

    /** Invalidate all levels and clear statistics. */
    void reset();

    /** Clear statistics only, keeping contents (end of warmup). */
    void clearStats();

    const HierarchyConfig &config() const { return cfg_; }
    HierarchyStats stats() const;

  private:
    HierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Addr lastFetchLine_ = ~Addr{0};
    Count l2InstMisses_ = 0;
    Count l2PrefMisses_ = 0;
    Count l2DataMisses_ = 0;
};

} // namespace interf::cache

#endif // INTERF_CACHE_HIERARCHY_HH
