/**
 * @file
 * The machine's memory hierarchy: split L1I/L1D backed by a unified L2
 * and main memory, mirroring the Xeon E5440's per-core 32 KB L1 caches
 * and large shared L2 (Section 5.4).
 *
 * The hierarchy reports which level served each access; the timing
 * model converts levels into latencies (with MLP overlap). An optional
 * next-line instruction prefetcher reduces sequential-fetch misses the
 * way real front ends do, keeping conflict misses (the layout-sensitive
 * kind) as the dominant L1I miss source.
 */

#ifndef INTERF_CACHE_HIERARCHY_HH
#define INTERF_CACHE_HIERARCHY_HH

#include "cache/cache.hh"

namespace interf::cache
{

/** Which level served an access. */
enum class HitLevel : u8 { L1, L2, Memory };

/** Geometry + behaviour of the full hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{"L1I", 32 << 10, 8, 64};
    CacheConfig l1d{"L1D", 32 << 10, 8, 64};
    CacheConfig l2{"L2", 6 << 20, 24, 64, Replacement::Random};
    bool nextLinePrefetch = true; ///< Sequential I-prefetch into L1I.
};

/** Aggregate miss statistics of the hierarchy. */
struct HierarchyStats
{
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    Count l2InstMisses = 0; ///< L2 misses from demand instruction fetch.
    Count l2PrefMisses = 0; ///< L2 misses from the I-prefetcher.
    Count l2DataMisses = 0; ///< L2 misses from loads/stores.
};

/** Split L1 + unified L2 + memory. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config);

    /**
     * Instruction fetch of one line-covered address. Inlined: this and
     * accessData() are the two hottest calls in the replay kernel.
     */
    HitLevel fetchInst(Addr addr)
    {
        HitLevel level;
        if (addr == prefLine_) {
            // Sequential fetch of the line the previous call's prefetch
            // check just proved present. Nothing can have evicted it
            // since: only fetchInst mutates the L1I, every other call
            // refreshes this memo, and the hierarchy-deduped call (same
            // line re-fetch) touches the *previous* line's set, never
            // this one's (consecutive lines map to consecutive sets).
            // accessAt applies a hitting access's exact state updates.
            l1i_.accessAt(addr, prefWay_);
            level = HitLevel::L1;
        } else if (l1i_.access(addr)) {
            level = HitLevel::L1;
        } else if (l2_.access(addr)) {
            level = HitLevel::L2;
        } else {
            level = HitLevel::Memory;
            ++l2InstMisses_;
        }

        // Sequential next-line prefetch: bring in the following line so
        // straight-line fetch rarely misses; conflict misses among hot
        // lines (the layout-sensitive kind) remain.
        if (cfg_.nextLinePrefetch) {
            u32 line_bytes = cfg_.l1i.lineBytes;
            Addr line = addr / line_bytes;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                Addr next = (line + 1) * line_bytes;
                u32 way = l1i_.probeWay(next);
                if (way == l1i_.config().assoc) {
                    // The prefetch fills L1I via L2 without counting as
                    // a demand L1I miss.
                    if (!l2_.access(next))
                        ++l2PrefMisses_;
                    way = l1i_.install(next);
                }
                if (prefMemoSafe_) {
                    prefLine_ = next;
                    prefWay_ = way;
                }
            }
        }
        return level;
    }

    /** Data access (load or store; the model is allocate-on-miss). */
    HitLevel accessData(Addr addr)
    {
        if (l1d_.access(addr))
            return HitLevel::L1;
        if (l2_.access(addr))
            return HitLevel::L2;
        ++l2DataMisses_;
        return HitLevel::Memory;
    }

    /** Invalidate all levels and clear statistics. */
    void reset();

    /** Clear statistics only, keeping contents (end of warmup). */
    void clearStats();

    const HierarchyConfig &config() const { return cfg_; }
    HierarchyStats stats() const;

  private:
    HierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Addr lastFetchLine_ = ~Addr{0};
    /** @{ Prefetch memo: the line the last prefetch check proved
     *  present in the L1I, and its way. The sequential-set argument in
     *  fetchInst() needs >= 2 L1I sets, so single-set geometries leave
     *  the memo disarmed. */
    Addr prefLine_ = ~Addr{0};
    u32 prefWay_ = 0;
    bool prefMemoSafe_ = false;
    /** @} */
    Count l2InstMisses_ = 0;
    Count l2PrefMisses_ = 0;
    Count l2DataMisses_ = 0;
};

} // namespace interf::cache

#endif // INTERF_CACHE_HIERARCHY_HH
