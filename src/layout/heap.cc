#include "layout/heap.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"
#include "util/random.hh"

namespace interf::layout
{

namespace
{

/** Smallest power-of-two size class holding `size` (min 4 KiB). */
u64
sizeClassOf(u64 size)
{
    u64 cls = 4096;
    while (cls < size)
        cls <<= 1;
    return cls;
}

} // anonymous namespace

HeapKey
HeapKey::deterministic()
{
    HeapKey key;
    key.randomize = false;
    return key;
}

HeapLayout::HeapLayout(const trace::Program &prog, const HeapKey &key)
{
    using trace::RegionKind;
    const auto &regions = prog.regions();
    regionBase_.resize(regions.size(), 0);

    // Globals: packed in id order, 64-byte aligned, never randomized.
    Addr global_cursor = kGlobalBase;
    for (const auto &r : regions) {
        if (r.kind != RegionKind::Global)
            continue;
        regionBase_[r.id] = global_cursor;
        global_cursor += (r.size + 63) & ~u64{63};
    }

    // Stack regions: fixed placement below the stack base.
    Addr stack_cursor = kStackBase;
    for (const auto &r : regions) {
        if (r.kind != RegionKind::Stack)
            continue;
        stack_cursor -= (r.size + 63) & ~u64{63};
        regionBase_[r.id] = stack_cursor;
    }

    // Heap regions.
    std::vector<u32> heap_ids;
    for (const auto &r : regions)
        if (r.kind == RegionKind::Heap)
            heap_ids.push_back(r.id);
    if (heap_ids.empty())
        return;

    if (!key.randomize) {
        // Deterministic malloc: bump allocation in id (allocation)
        // order with 64-byte alignment.
        Addr cursor = kHeapBase;
        for (u32 id : heap_ids) {
            regionBase_[id] = cursor;
            cursor += (regions[id].size + 63) & ~u64{63};
        }
        heapSpan_ = cursor - kHeapBase;
        return;
    }

    // DieHard-style: group objects by power-of-two size class; each
    // class has an arena of expansionFactor * count slots; each object
    // occupies a distinct uniformly-random slot.
    INTERF_ASSERT(key.expansionFactor >= 1);
    std::map<u64, std::vector<u32>> classes;
    for (u32 id : heap_ids)
        classes[sizeClassOf(regions[id].size)].push_back(id);

    Rng rng(key.seed);
    Addr arena_base = kHeapBase;
    for (auto &[cls_size, ids] : classes) {
        u64 slots =
            static_cast<u64>(ids.size()) * key.expansionFactor;
        Rng cls_rng = rng.fork(cls_size);
        std::vector<u32> slot_perm =
            cls_rng.permutation(static_cast<size_t>(slots));
        // Slot pitch carries one guard line: size classes are
        // multiples of the L1 way span, so class-aligned placement
        // alone would never change L1 set mappings. The guard line
        // (and the sub-slot jitter below) model the arbitrary
        // page-offset positions of real DieHard miniheaps.
        u64 pitch = cls_size + 64;
        // Per-class arena phase: the miniheap itself lands at a random
        // line-aligned offset, so even a single-object class sees many
        // distinct placements across seeds.
        Addr arena_phase = cls_rng.uniformInt(cls_size / 64) * 64;
        for (size_t i = 0; i < ids.size(); ++i) {
            Addr slot = arena_base + arena_phase +
                static_cast<u64>(slot_perm[i]) * pitch;
            u64 slack = (cls_size - regions[ids[i]].size) / 64;
            Addr jitter =
                slack > 0 ? cls_rng.uniformInt(slack + 1) * 64 : 0;
            regionBase_[ids[i]] = slot + jitter;
        }
        arena_base += slots * pitch + cls_size; // phase headroom
    }
    heapSpan_ = arena_base - kHeapBase;
}

Addr
HeapLayout::regionBase(u32 region_id) const
{
    INTERF_ASSERT(region_id < regionBase_.size());
    return regionBase_[region_id];
}

Addr
HeapLayout::dataAddr(u64 logical_id) const
{
    u32 region = trace::dataIdRegion(logical_id);
    return regionBase(region) + trace::dataIdOffset(logical_id);
}

} // namespace interf::layout
