/**
 * @file
 * DieHard-style randomized heap placement.
 *
 * Section 1.3 / 4.4 of the paper: "we use a custom memory allocator
 * based on DieHard that essentially assigns random addresses to
 * heap-allocated objects to elicit perturbations due to conflict misses
 * in the data caches". DieHard's allocator segregates objects into
 * power-of-two size classes and places each object in a uniformly random
 * free slot of an over-provisioned arena.
 *
 * HeapLayout reproduces that placement model for the Program's Heap
 * regions: with randomization off, heap regions are packed in allocation
 * order (a deterministic malloc); with randomization on, each region
 * lands in a random slot of its size class's arena, keyed by the heap
 * seed. Global regions and the stack are never randomized (the paper
 * disables stack address randomization, Section 5.5).
 */

#ifndef INTERF_LAYOUT_HEAP_HH
#define INTERF_LAYOUT_HEAP_HH

#include <vector>

#include "trace/program.hh"
#include "util/types.hh"

namespace interf::layout
{

/** Reproducible recipe for one data layout. */
struct HeapKey
{
    u64 seed = 0;
    bool randomize = true;
    /** DieHard over-provisioning: arena slots per object in a class. */
    u32 expansionFactor = 4;

    /** Deterministic packing (randomization off). */
    static HeapKey deterministic();
};

/** Immutable mapping from logical data ids to virtual addresses. */
class HeapLayout
{
  public:
    /**
     * Place all of the program's data regions.
     *
     * @param prog The program whose regions to place.
     * @param key Placement recipe; equal keys give identical layouts.
     */
    HeapLayout(const trace::Program &prog, const HeapKey &key);

    /** Base virtual address of a region. */
    Addr regionBase(u32 region_id) const;

    /** Translate a logical data id (region, offset) to an address. */
    Addr dataAddr(u64 logical_id) const;

    /** Total bytes spanned by the heap arenas (randomized mode). */
    u64 heapSpan() const { return heapSpan_; }

  private:
    std::vector<Addr> regionBase_;
    u64 heapSpan_ = 0;
};

} // namespace interf::layout

#endif // INTERF_LAYOUT_HEAP_HH
