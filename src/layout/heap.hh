/**
 * @file
 * DieHard-style randomized heap placement.
 *
 * Section 1.3 / 4.4 of the paper: "we use a custom memory allocator
 * based on DieHard that essentially assigns random addresses to
 * heap-allocated objects to elicit perturbations due to conflict misses
 * in the data caches". DieHard's allocator segregates objects into
 * power-of-two size classes and places each object in a uniformly random
 * free slot of an over-provisioned arena.
 *
 * HeapLayout reproduces that placement model for the Program's Heap
 * regions: with randomization off, heap regions are packed in allocation
 * order (a deterministic malloc); with randomization on, each region
 * lands in a random slot of its size class's arena, keyed by the heap
 * seed. Global regions and the stack are never randomized (the paper
 * disables stack address randomization, Section 5.5).
 */

#ifndef INTERF_LAYOUT_HEAP_HH
#define INTERF_LAYOUT_HEAP_HH

#include <vector>

#include "trace/program.hh"
#include "util/types.hh"

namespace interf::layout
{

/**
 * @{ Virtual-address anchors of the data address space. Every data
 * address the layout engines can produce lies in [kGlobalBase,
 * kStackBase): globals pack upward from kGlobalBase, heap arenas from
 * kHeapBase, and stack regions grow downward from just below
 * kStackBase. Exposed so the static soundness analyzer (src/analyze)
 * can bound the reachable address space from the same constants the
 * placement code uses.
 */
inline constexpr Addr kGlobalBase = 0x00600000;
inline constexpr Addr kHeapBase = 0x10000000;
inline constexpr Addr kStackBase = 0x7fff00000000ULL;
/** @} */

/** Reproducible recipe for one data layout. */
struct HeapKey
{
    u64 seed = 0;
    bool randomize = true;
    /** DieHard over-provisioning: arena slots per object in a class. */
    u32 expansionFactor = 4;

    /** Deterministic packing (randomization off). */
    static HeapKey deterministic();
};

/** Immutable mapping from logical data ids to virtual addresses. */
class HeapLayout
{
  public:
    /**
     * Place all of the program's data regions.
     *
     * @param prog The program whose regions to place.
     * @param key Placement recipe; equal keys give identical layouts.
     */
    HeapLayout(const trace::Program &prog, const HeapKey &key);

    /** Base virtual address of a region. */
    Addr regionBase(u32 region_id) const;

    /** Translate a logical data id (region, offset) to an address. */
    Addr dataAddr(u64 logical_id) const;

    /** Total bytes spanned by the heap arenas (randomized mode). */
    u64 heapSpan() const { return heapSpan_; }

  private:
    std::vector<Addr> regionBase_;
    u64 heapSpan_ = 0;
};

} // namespace interf::layout

#endif // INTERF_LAYOUT_HEAP_HH
