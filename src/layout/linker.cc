#include "layout/linker.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/random.hh"

namespace interf::layout
{

LayoutKey
LayoutKey::identity()
{
    LayoutKey key;
    key.reorderProcedures = false;
    key.reorderObjectFiles = false;
    return key;
}

Addr
CodeLayout::procBase(u32 proc_id) const
{
    INTERF_ASSERT(proc_id < procBase_.size());
    return procBase_[proc_id];
}

Addr
CodeLayout::blockAddr(u32 proc_id, u32 block_id) const
{
    INTERF_ASSERT(proc_id < procBase_.size());
    u32 base = blockOffsetBase_[proc_id];
    return procBase_[proc_id] + blockOff_[base + block_id];
}

Addr
CodeLayout::branchAddr(u32 proc_id, u32 block_id) const
{
    INTERF_ASSERT(proc_id < procBase_.size());
    u32 base = blockOffsetBase_[proc_id];
    return procBase_[proc_id] + branchOff_[base + block_id];
}

LayoutSpec
LayoutSpec::authored(const trace::Program &prog)
{
    const auto &files = prog.files();
    LayoutSpec spec;
    spec.fileOrder.resize(files.size());
    spec.procOrder.resize(files.size());
    for (u32 i = 0; i < files.size(); ++i) {
        spec.fileOrder[i] = i;
        spec.procOrder[i] = files[i].procIds;
    }
    return spec;
}

void
LayoutSpec::validate(const trace::Program &prog) const
{
    const auto &files = prog.files();
    INTERF_ASSERT(fileOrder.size() == files.size());
    INTERF_ASSERT(procOrder.size() == files.size());
    std::vector<u8> seen_file(files.size(), 0);
    for (u32 fi : fileOrder) {
        INTERF_ASSERT(fi < files.size() && !seen_file[fi]);
        seen_file[fi] = 1;
    }
    for (u32 fi = 0; fi < files.size(); ++fi) {
        // Same multiset as the authored procIds: each file keeps
        // exactly its own procedures, only their order may differ.
        std::vector<u32> a = files[fi].procIds;
        std::vector<u32> b = procOrder[fi];
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        INTERF_ASSERT(a == b);
    }
}

Linker::Linker(Addr text_base) : textBase_(text_base) {}

LayoutSpec
Linker::specFor(const trace::Program &prog, const LayoutKey &key) const
{
    const auto &files = prog.files();

    Rng rng(key.seed);
    // Independent substreams so toggling one reorder flag does not
    // change the other's permutation for the same seed.
    Rng file_rng = rng.fork(1);
    Rng proc_rng = rng.fork(2);

    LayoutSpec spec;
    spec.fileOrder.resize(files.size());
    for (u32 i = 0; i < files.size(); ++i)
        spec.fileOrder[i] = i;
    if (key.reorderObjectFiles)
        file_rng.shuffle(spec.fileOrder);

    // Per-file procedure shuffles are drawn in link-line order (the
    // historical sequence link(key) consumed its PRNG in), then stored
    // under the authored file index.
    spec.procOrder.resize(files.size());
    for (u32 fi : spec.fileOrder) {
        std::vector<u32> local = files[fi].procIds;
        if (key.reorderProcedures)
            proc_rng.shuffle(local);
        spec.procOrder[fi] = std::move(local);
    }
    return spec;
}

CodeLayout
Linker::link(const trace::Program &prog, const LayoutKey &key) const
{
    return link(prog, specFor(prog, key));
}

CodeLayout
Linker::link(const trace::Program &prog, const LayoutSpec &spec) const
{
    const auto &procs = prog.procedures();
#ifndef NDEBUG
    spec.validate(prog);
#endif

    CodeLayout out;
    out.textBase_ = textBase_;
    out.fileOrder_ = spec.fileOrder;

    // Files contribute their procedures in link-line order (the linker
    // lays code out in the order it is encountered on the command
    // line).
    out.procOrder_.reserve(procs.size());
    for (u32 fi : out.fileOrder_)
        for (u32 pid : spec.procOrder[fi])
            out.procOrder_.push_back(pid);
    INTERF_ASSERT(out.procOrder_.size() == procs.size());

    // Assign addresses.
    out.procBase_.resize(procs.size());
    out.blockOffsetBase_.resize(procs.size());
    u32 total_blocks = 0;
    for (const auto &p : procs)
        total_blocks += static_cast<u32>(p.blocks.size());
    out.blockOff_.resize(total_blocks);
    out.branchOff_.resize(total_blocks);

    // Precompute per-proc block offset tables (layout-invariant within
    // a procedure: blocks are contiguous in authored order).
    {
        u32 cursor = 0;
        for (const auto &p : procs) {
            out.blockOffsetBase_[p.id] = cursor;
            u32 off = 0;
            for (const auto &bb : p.blocks) {
                out.blockOff_[cursor] = off;
                // The terminator is the last instruction; approximate
                // its size as the final 2 bytes minimum, scaling with
                // the block's average instruction size.
                u32 avg = bb.bytes / bb.nInsts;
                u32 branch_bytes = avg > 0 ? avg : 2;
                out.branchOff_[cursor] =
                    off + bb.bytes - std::min(branch_bytes, bb.bytes);
                off += bb.bytes;
                ++cursor;
            }
        }
    }

    Addr cursor = textBase_;
    for (u32 pid : out.procOrder_) {
        const auto &p = procs[pid];
        Addr align = p.align;
        cursor = (cursor + align - 1) & ~(align - 1);
        out.procBase_[pid] = cursor;
        cursor += p.bytes();
    }
    out.textSize_ = cursor - textBase_;
    return out;
}

} // namespace interf::layout
