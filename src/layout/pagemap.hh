/**
 * @file
 * Virtual-to-physical page mapping.
 *
 * The Xeon's L1 caches are effectively page-offset-indexed (32 KB,
 * 8-way, 64 B lines: the set index fits inside the 4 KB page offset),
 * but the large L2 is *physically* indexed: bits of the physical page
 * number select the set. Which physical pages a process receives
 * depends on OS allocator state and differs per execution setup — this
 * is the mechanism through which heap randomization (and plain reruns)
 * perturb L2 conflict behaviour on real machines, since pure
 * virtual-address placement cannot move lines between the sets of a
 * highly-associative LRU cache.
 *
 * PageMap models that: a seeded bijective permutation of page numbers
 * (a small Feistel network) that preserves page offsets. Identity maps
 * are available for studies that want virtual-indexed behaviour.
 */

#ifndef INTERF_LAYOUT_PAGEMAP_HH
#define INTERF_LAYOUT_PAGEMAP_HH

#include "util/types.hh"

namespace interf::layout
{

/** Seeded bijective virtual-to-physical page mapping. */
class PageMap
{
  public:
    /** Identity mapping (physical == virtual). */
    PageMap();

    /**
     * Random-looking but bijective mapping keyed by seed; equal seeds
     * give identical mappings.
     */
    explicit PageMap(u64 seed);

    /** Translate a full address (page offset preserved). */
    Addr translate(Addr vaddr) const;

    /** Whether this is the identity mapping. */
    bool isIdentity() const { return identity_; }

    u64 seed() const { return seed_; }

    /** Page size (fixed 4 KiB, as on the measured system). */
    static constexpr u32 pageBits = 12;

    /**
     * The Feistel permutation covers this many page-number bits;
     * addresses at or above 1 << (pageBits + permutedVpnBits) pass
     * through translate() unchanged. The soundness analyzer uses this
     * to bound the post-translation address space: translate() can
     * lift a low address to at most that ceiling, never beyond.
     */
    static constexpr u32 permutedVpnBits = 32;

  private:
    u32 permutePage(u32 vpn) const;

    bool identity_ = true;
    u64 seed_ = 0;
    u32 keys_[4] = {0, 0, 0, 0};
};

} // namespace interf::layout

#endif // INTERF_LAYOUT_PAGEMAP_HH
