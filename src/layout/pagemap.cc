#include "layout/pagemap.hh"

#include "util/random.hh"

namespace interf::layout
{

namespace
{

/** Mix a 16-bit half with a round key (any function works in a
 *  Feistel network). */
inline u32
roundFn(u32 half, u32 key)
{
    u32 x = half ^ key;
    x *= 0x9e37u;
    x ^= x >> 7;
    x *= 0x85ebu;
    x ^= x >> 9;
    return x & 0xffffu;
}

} // anonymous namespace

PageMap::PageMap() = default;

PageMap::PageMap(u64 seed) : identity_(false), seed_(seed)
{
    u64 s = seed;
    for (auto &k : keys_)
        k = static_cast<u32>(splitmix64(s) & 0xffffu);
}

u32
PageMap::permutePage(u32 vpn) const
{
    // 4-round Feistel over a 32-bit page number: bijective by
    // construction, so distinct virtual pages never collide.
    u32 left = vpn >> 16;
    u32 right = vpn & 0xffffu;
    for (u32 round = 0; round < 4; ++round) {
        u32 next_left = right;
        right = left ^ roundFn(right, keys_[round]);
        left = next_left;
    }
    return (left << 16) | right;
}

Addr
PageMap::translate(Addr vaddr) const
{
    if (identity_)
        return vaddr;
    // The permutation covers the low 16 TiB (32-bit page numbers) that
    // all text/data/heap images live in; anything above (e.g. stack
    // pages) passes through unchanged, like OS-pinned mappings.
    if (vaddr >> (pageBits + permutedVpnBits))
        return vaddr;
    Addr offset = vaddr & ((Addr{1} << pageBits) - 1);
    u32 vpn = static_cast<u32>(vaddr >> pageBits);
    return (static_cast<Addr>(permutePage(vpn)) << pageBits) | offset;
}

} // namespace interf::layout
