/**
 * @file
 * The layout engine: Camino-style reordering plus a linker model.
 *
 * Section 5.3 of the paper: "The Camino infrastructure is then used to
 * reorder procedures within files ... The resulting object files are
 * randomly reordered and linked to make an executable. Camino accepts a
 * seed to a pseudorandom number generator to generate pseudo-random but
 * reproducible orderings of procedures and object files."
 *
 * The Linker reproduces exactly that: given a Program and a LayoutKey
 * (the seed), it permutes procedures within each object file, permutes
 * the object files on the link line, and lays code out contiguously in
 * that order with the usual alignment rules. The resulting CodeLayout
 * maps every (procedure, block) to a virtual address; semantics never
 * change, only addresses do.
 */

#ifndef INTERF_LAYOUT_LINKER_HH
#define INTERF_LAYOUT_LINKER_HH

#include <vector>

#include "trace/program.hh"
#include "util/types.hh"

namespace interf::layout
{

/** Default text-segment base: a Linux x86_64 non-PIE executable.
 *  Named so the static soundness analyzer can reason about text
 *  extents with the same anchor the Linker links against. */
inline constexpr Addr kDefaultTextBase = 0x400000;

/** Reproducible recipe for one code layout. */
struct LayoutKey
{
    u64 seed = 0;               ///< PRNG seed for the permutations.
    bool reorderProcedures = true; ///< Shuffle procedures within files.
    bool reorderObjectFiles = true; ///< Shuffle files on the link line.

    /** The identity layout: authored order, no perturbation. */
    static LayoutKey identity();
};

/**
 * An explicit code-layout permutation: the link-line order of object
 * files plus, per authored file, the order of that file's procedures.
 *
 * LayoutKey describes a layout *implicitly* (a seed the Linker expands
 * into permutations); LayoutSpec is the expanded form, the natural
 * representation for code that *edits* layouts — the opt::Neighborhood
 * moves permute these vectors directly, so every candidate it produces
 * is a valid permutation by construction. Linker::specFor() expands a
 * key into the spec it would link, and linking the spec yields a
 * byte-identical CodeLayout (see tests/test_linker.cc).
 */
struct LayoutSpec
{
    /** Link-line order: a permutation of [0, files). */
    std::vector<u32> fileOrder;

    /**
     * procOrder[f] is the memory order of file f's procedures — a
     * permutation of the authored ObjectFile::procIds — indexed by
     * *authored* file index, not link-line position, so moves on
     * fileOrder never invalidate the per-file vectors.
     */
    std::vector<std::vector<u32>> procOrder;

    /** The authored (identity) spec for a program. */
    static LayoutSpec authored(const trace::Program &prog);

    /** Sanity-check against a program; panics on violation. */
    void validate(const trace::Program &prog) const;
};

/**
 * Immutable result of linking: every block's virtual address.
 *
 * Addresses are precomputed into flat arrays so the hot timing loops can
 * translate (proc, block) -> Addr with two array reads.
 */
class CodeLayout
{
  public:
    /** Base virtual address of a procedure's first block. */
    Addr procBase(u32 proc_id) const;

    /** Virtual address of a block's first instruction byte. */
    Addr blockAddr(u32 proc_id, u32 block_id) const;

    /**
     * Virtual address of a block's terminating branch instruction
     * (the last instruction of the block). Only meaningful when the
     * block has a terminator.
     */
    Addr branchAddr(u32 proc_id, u32 block_id) const;

    /** First byte of the text segment. */
    Addr textBase() const { return textBase_; }

    /** Bytes of text (including alignment padding). */
    u64 textSize() const { return textSize_; }

    /** Link-line order of object files used for this layout. */
    const std::vector<u32> &fileOrder() const { return fileOrder_; }

    /** Memory order of procedures (global proc ids). */
    const std::vector<u32> &procOrder() const { return procOrder_; }

  private:
    friend class Linker;

    Addr textBase_ = 0;
    u64 textSize_ = 0;
    std::vector<u32> fileOrder_;
    std::vector<u32> procOrder_;
    std::vector<Addr> procBase_;       ///< Indexed by global proc id.
    std::vector<u32> blockOffsetBase_; ///< Per-proc offset into blockOff_.
    std::vector<u32> blockOff_;        ///< Block start offsets in proc.
    std::vector<u32> branchOff_;       ///< Branch-instruction offsets.
};

/** Produces CodeLayouts from (Program, LayoutKey) pairs. */
class Linker
{
  public:
    /**
     * @param text_base Base address of the text segment (default mimics
     *        a Linux x86_64 non-PIE text segment).
     */
    explicit Linker(Addr text_base = kDefaultTextBase);

    /**
     * Link the program under the given key. Deterministic: equal keys
     * always produce identical layouts. Equivalent to
     * link(prog, specFor(prog, key)).
     */
    CodeLayout link(const trace::Program &prog, const LayoutKey &key) const;

    /**
     * Link the program under an explicit permutation. The spec must
     * validate() against the program (asserted in Debug builds).
     */
    CodeLayout link(const trace::Program &prog,
                    const LayoutSpec &spec) const;

    /** Expand a key into the explicit permutation link(key) lays out. */
    LayoutSpec specFor(const trace::Program &prog,
                       const LayoutKey &key) const;

  private:
    Addr textBase_;
};

} // namespace interf::layout

#endif // INTERF_LAYOUT_LINKER_HH
