/**
 * @file
 * L-TAGE branch predictor (Seznec, CBP-2 / JILP 2007).
 *
 * "The L-TAGE branch predictor is currently the most accurate branch
 * predictor in the academic literature" (paper, Section 7.2.2). The
 * paper simulates it with Pin and uses the interferometry regression
 * model to estimate that it would improve the Xeon's CPI by ~4.8%.
 *
 * The implementation follows the published design: a bimodal base
 * predictor, M partially-tagged components indexed with geometrically
 * increasing global-history lengths (folded via circular-shift
 * registers), usefulness counters with periodic aging, the
 * use-alt-on-newly-allocated policy, and a loop predictor that
 * overrides TAGE for branches with constant iteration counts.
 */

#ifndef INTERF_BPRED_LTAGE_HH
#define INTERF_BPRED_LTAGE_HH

#include <vector>

#include "bpred/history.hh"
#include "bpred/predictor.hh"
#include "util/random.hh"

namespace interf::bpred
{

/** Configuration of an L-TAGE instance. */
struct LtageConfig
{
    u32 numTables = 12;       ///< Tagged components.
    u32 minHistory = 4;       ///< Shortest tagged history length.
    u32 maxHistory = 640;     ///< Longest tagged history length.
    u32 logTaggedEntries = 10; ///< log2 entries per tagged table.
    u32 logBimodalEntries = 13; ///< log2 bimodal entries.
    u32 tagBitsShort = 8;     ///< Tag width for short-history tables.
    u32 tagBitsLong = 12;     ///< Tag width for long-history tables.
    u32 uResetPeriod = 1 << 18; ///< Branches between usefulness aging.
    bool enableLoopPredictor = true;
    u32 logLoopEntries = 6;   ///< log2 loop-predictor entries.
};

/** The L-TAGE predictor. */
class LtagePredictor : public BranchPredictor
{
  public:
    explicit LtagePredictor(LtageConfig config = LtageConfig());

    bool predictAndTrain(Addr pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    u64 sizeBits() const override;

    /** History length of tagged table i (exposed for tests). */
    u32 historyLength(u32 table) const;

  private:
    struct TaggedEntry
    {
        i64 ctr = 0; ///< Signed 3-bit counter in [-4, 3].
        u32 tag = 0;
        u8 u = 0; ///< 2-bit usefulness.
    };

    struct LoopEntry
    {
        u16 tag = 0;
        u16 pastIter = 0;
        u16 currentIter = 0;
        u8 confidence = 0;
        u8 age = 0;
        bool valid = false;
    };

    struct Prediction
    {
        bool pred = false;
        bool altPred = false;
        int provider = -1; ///< Tagged table index, -1 = bimodal.
        int altProvider = -1;
        u32 providerIndex = 0;
        u32 altIndex = 0;
        bool usedLoop = false;
        bool loopPred = false;
        u32 loopIndex = 0;
    };

    u32 taggedIndex(Addr pc, u32 table) const;
    u32 taggedTag(Addr pc, u32 table) const;
    u32 bimodalIndex(Addr pc) const;
    Prediction lookup(Addr pc);
    void update(Addr pc, bool taken, const Prediction &pr);
    void updateHistories(bool taken);
    bool loopLookup(Addr pc, Prediction &pr);
    void loopUpdate(Addr pc, bool taken, const Prediction &pr,
                    bool tage_pred);

    LtageConfig cfg_;
    std::vector<u32> histLen_;
    std::vector<std::vector<TaggedEntry>> tables_;
    std::vector<u32> tagBits_;
    std::vector<FoldedHistory> indexFold_;
    std::vector<FoldedHistory> tagFold1_;
    std::vector<FoldedHistory> tagFold2_;
    counter2::CounterTable bimodal_; ///< 2-bit counters, byte each.
    std::vector<LoopEntry> loop_;
    LongHistory history_;
    i64 useAltOnNa_ = 0; ///< In [-8, 7]: >= 0 favours altpred for
                         ///< newly-allocated weak entries.
    i64 loopConfCtr_ = 0; ///< Trust counter for the loop predictor.
    u64 branchCount_ = 0;
    Rng allocRng_; ///< Deterministic tie-breaking for allocation.
};

} // namespace interf::bpred

#endif // INTERF_BPRED_LTAGE_HH
