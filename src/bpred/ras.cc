#include "bpred/ras.hh"

#include "util/logging.hh"

namespace interf::bpred
{

ReturnAddressStack::ReturnAddressStack(u32 depth)
    : depth_(depth), stack_(depth, 0)
{
    INTERF_ASSERT(depth >= 1);
}

void
ReturnAddressStack::push(Addr return_addr)
{
    stack_[top_] = return_addr;
    top_ = (top_ + 1) % depth_;
    if (occupancy_ < depth_)
        ++occupancy_;
    else
        ++overflows_; // overwrote the oldest live entry
}

Addr
ReturnAddressStack::pop()
{
    ++pops_;
    if (occupancy_ == 0)
        return 0;
    top_ = (top_ + depth_ - 1) % depth_;
    --occupancy_;
    return stack_[top_];
}

void
ReturnAddressStack::reset()
{
    std::fill(stack_.begin(), stack_.end(), Addr{0});
    top_ = 0;
    occupancy_ = 0;
    pops_ = 0;
    overflows_ = 0;
}

} // namespace interf::bpred
