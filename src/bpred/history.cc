#include "bpred/history.hh"

#include "util/logging.hh"

namespace interf::bpred
{

GlobalHistory::GlobalHistory(u32 bits) : width_(bits)
{
    INTERF_ASSERT(bits >= 1 && bits <= 64);
}

void
FoldedHistory::configure(u32 orig_len, u32 folded_len)
{
    INTERF_ASSERT(folded_len >= 1 && folded_len <= 32);
    origLen_ = orig_len;
    foldedLen_ = folded_len;
    outPoint_ = orig_len % folded_len;
    value_ = 0;
}

void
FoldedHistory::update(bool new_bit, bool old_bit)
{
    // Classic TAGE circular-shift folding: rotate left by one, insert
    // the new bit, remove the bit that exits the window.
    value_ = (value_ << 1) | (new_bit ? 1u : 0u);
    value_ ^= (old_bit ? 1u : 0u) << outPoint_;
    value_ ^= value_ >> foldedLen_;
    value_ &= (u32{1} << foldedLen_) - 1;
}

LongHistory::LongHistory(u32 capacity)
    : ring_(capacity, 0), capacity_(capacity)
{
    INTERF_ASSERT(capacity >= 1);
}

void
LongHistory::push(bool taken)
{
    head_ = (head_ + 1) % capacity_;
    ring_[head_] = taken ? 1 : 0;
}

bool
LongHistory::bitAt(u32 i) const
{
    INTERF_ASSERT(i < capacity_);
    u32 idx = (head_ + capacity_ - i % capacity_) % capacity_;
    return ring_[idx] != 0;
}

void
LongHistory::reset()
{
    std::fill(ring_.begin(), ring_.end(), u8{0});
    head_ = 0;
}

} // namespace interf::bpred
