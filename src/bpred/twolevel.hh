/**
 * @file
 * Two-level adaptive predictors with global history (Yeh & Patt 1991).
 *
 * GAs: the pattern history table is indexed by the concatenation of
 * branch-address bits and global-history bits — the structure the paper
 * simulates at 2-16 KB for Figure 7/8 and believes (hybridized with
 * bimodal) to live in the real Xeon E5440.
 *
 * gshare (McFarling): address XOR history indexing; included for the
 * 145-configuration linearity sweep.
 */

#ifndef INTERF_BPRED_TWOLEVEL_HH
#define INTERF_BPRED_TWOLEVEL_HH

#include <vector>

#include "bpred/history.hh"
#include "bpred/predictor.hh"

namespace interf::bpred
{

/** Indexing flavour of a global two-level predictor. */
enum class TwoLevelScheme { GAs, Gshare };

/** Global-history two-level predictor (GAs or gshare indexing). */
class TwoLevelPredictor : public BranchPredictor
{
  public:
    /**
     * @param scheme Indexing scheme.
     * @param entries PHT entries; must be a power of two.
     * @param history_bits Global history length; for GAs must be
     *        < log2(entries) so some address bits remain.
     */
    TwoLevelPredictor(TwoLevelScheme scheme, u32 entries, u32 history_bits);

    bool predictAndTrain(Addr pc, bool taken) override
    {
        const u32 i = indexFor(pc);
        const u8 ctr = table_.get(i);
        bool prediction = counter2::predict(ctr);
        table_.set(i, counter2::update(ctr, taken));
        history_.push(taken);
        return prediction;
    }

    void reset() override;
    std::string name() const override;
    u64 sizeBits() const override;
    u64 stateBytes() const override
    {
        return table_.stateBytes() + sizeof(history_);
    }

    /** Table index for (pc, current history) (exposed for tests). */
    u32 indexFor(Addr pc) const
    {
        u32 addr_mix = static_cast<u32>(pc ^ (pc >> 16));
        u64 hist = history_.low(historyBits_);
        if (scheme_ == TwoLevelScheme::GAs) {
            // Concatenate: {addr bits, history bits}.
            u32 addr_bits = indexBits_ - historyBits_;
            u32 addr_part = addr_mix & ((u32{1} << addr_bits) - 1);
            return ((addr_part << historyBits_) |
                    static_cast<u32>(hist)) & mask_;
        }
        // gshare: XOR.
        return (addr_mix ^ static_cast<u32>(hist)) & mask_;
    }

    u32 historyBits() const { return historyBits_; }

  private:
    TwoLevelScheme scheme_;
    counter2::CounterTable table_; ///< 2-bit counters, byte each.
    u32 mask_;
    u32 indexBits_;
    u32 historyBits_;
    GlobalHistory history_;
};

} // namespace interf::bpred

#endif // INTERF_BPRED_TWOLEVEL_HH
