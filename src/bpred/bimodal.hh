/**
 * @file
 * Bimodal branch predictor (Smith 1981): a PC-indexed table of 2-bit
 * saturating counters. Half of the paper's reverse-engineered Intel
 * hybrid, and the simplest point in the 145-configuration sweep.
 */

#ifndef INTERF_BPRED_BIMODAL_HH
#define INTERF_BPRED_BIMODAL_HH

#include <vector>

#include "bpred/predictor.hh"

namespace interf::bpred
{

/** PC-indexed 2-bit-counter predictor. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param entries Table entries; must be a power of two. */
    explicit BimodalPredictor(u32 entries);

    bool predictAndTrain(Addr pc, bool taken) override
    {
        const u32 i = indexFor(pc);
        const u8 ctr = table_.get(i);
        bool prediction = counter2::predict(ctr);
        table_.set(i, counter2::update(ctr, taken));
        return prediction;
    }

    void reset() override;
    std::string name() const override;
    u64 sizeBits() const override;
    u64 stateBytes() const override { return table_.stateBytes(); }

    /** Table index used for a PC (exposed for tests). */
    u32 indexFor(Addr pc) const
    {
        // x86 branch addresses are byte-aligned; use the low bits
        // directly, mixed slightly so adjacent branches spread across
        // the table.
        return static_cast<u32>(pc ^ (pc >> 16)) & mask_;
    }

  private:
    counter2::CounterTable table_; ///< 2-bit counters, byte each.
    u32 mask_;
};

} // namespace interf::bpred

#endif // INTERF_BPRED_BIMODAL_HH
