#include "bpred/ltage.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace interf::bpred
{

LtagePredictor::LtagePredictor(LtageConfig config)
    : cfg_(config), history_(config.maxHistory + 8), allocRng_(0xdead)
{
    INTERF_ASSERT(cfg_.numTables >= 2 && cfg_.numTables <= 64);
    INTERF_ASSERT(cfg_.minHistory >= 2);
    INTERF_ASSERT(cfg_.maxHistory > cfg_.minHistory);

    // Geometric history lengths L(i) = L1 * r^(i-1), r chosen so the
    // last table reaches maxHistory.
    histLen_.resize(cfg_.numTables);
    double ratio = std::pow(
        static_cast<double>(cfg_.maxHistory) / cfg_.minHistory,
        1.0 / static_cast<double>(cfg_.numTables - 1));
    double len = cfg_.minHistory;
    for (u32 i = 0; i < cfg_.numTables; ++i) {
        histLen_[i] = std::max<u32>(
            static_cast<u32>(len + 0.5),
            i > 0 ? histLen_[i - 1] + 1 : cfg_.minHistory);
        len *= ratio;
    }
    histLen_.back() = cfg_.maxHistory;

    u32 entries = u32{1} << cfg_.logTaggedEntries;
    tables_.assign(cfg_.numTables, std::vector<TaggedEntry>(entries));
    tagBits_.resize(cfg_.numTables);
    indexFold_.resize(cfg_.numTables);
    tagFold1_.resize(cfg_.numTables);
    tagFold2_.resize(cfg_.numTables);
    for (u32 i = 0; i < cfg_.numTables; ++i) {
        tagBits_[i] = i < cfg_.numTables / 2 ? cfg_.tagBitsShort
                                             : cfg_.tagBitsLong;
        indexFold_[i].configure(histLen_[i], cfg_.logTaggedEntries);
        tagFold1_[i].configure(histLen_[i], tagBits_[i]);
        tagFold2_[i].configure(histLen_[i],
                               std::max<u32>(tagBits_[i] - 1, 1));
    }
    bimodal_ = counter2::CounterTable(
        static_cast<u32>(u64{1} << cfg_.logBimodalEntries), 2);
    loop_.assign(u64{1} << cfg_.logLoopEntries, LoopEntry());
}

u32
LtagePredictor::bimodalIndex(Addr pc) const
{
    u64 mask = (u64{1} << cfg_.logBimodalEntries) - 1;
    return static_cast<u32>((pc ^ (pc >> 17)) & mask);
}

u32
LtagePredictor::taggedIndex(Addr pc, u32 table) const
{
    u32 bits = cfg_.logTaggedEntries;
    u32 mask = (u32{1} << bits) - 1;
    u32 pc_mix = static_cast<u32>(pc ^ (pc >> bits) ^ (pc >> (2 * bits)));
    return (pc_mix ^ indexFold_[table].value() ^ (table + 1)) & mask;
}

u32
LtagePredictor::taggedTag(Addr pc, u32 table) const
{
    u32 bits = tagBits_[table];
    u32 mask = (u32{1} << bits) - 1;
    u32 pc_mix = static_cast<u32>(pc ^ (pc >> (bits + 3)));
    return (pc_mix ^ tagFold1_[table].value() ^
            (tagFold2_[table].value() << 1)) & mask;
}

bool
LtagePredictor::loopLookup(Addr pc, Prediction &pr)
{
    if (!cfg_.enableLoopPredictor)
        return false;
    u32 mask = (u32{1} << cfg_.logLoopEntries) - 1;
    u32 idx = static_cast<u32>(pc ^ (pc >> cfg_.logLoopEntries)) & mask;
    u16 tag = static_cast<u16>((pc >> 4) & 0x3fff);
    pr.loopIndex = idx;
    const LoopEntry &e = loop_[idx];
    if (!e.valid || e.tag != tag || e.confidence < 3)
        return false;
    // Predict taken while inside the loop body, not-taken on the exit
    // iteration.
    pr.loopPred = (e.currentIter + 1) < e.pastIter;
    return true;
}

void
LtagePredictor::loopUpdate(Addr pc, bool taken, const Prediction &pr,
                           bool tage_pred)
{
    if (!cfg_.enableLoopPredictor)
        return;
    u32 idx = pr.loopIndex;
    u16 tag = static_cast<u16>((pc >> 4) & 0x3fff);
    LoopEntry &e = loop_[idx];

    if (e.valid && e.tag == tag) {
        if (taken) {
            ++e.currentIter;
            if (e.currentIter > 0x3000) {
                // Not a constant-trip-count loop; give the entry up.
                e.valid = false;
                return;
            }
        } else {
            u16 trip = e.currentIter + 1;
            if (e.pastIter == trip) {
                if (e.confidence < 3)
                    ++e.confidence;
                e.age = 255;
            } else if (e.pastIter == 0) {
                // First completed traversal: record the trip count and
                // start building confidence on subsequent matches.
                e.pastIter = trip;
            } else {
                if (e.confidence > 0) {
                    --e.confidence;
                    e.pastIter = trip;
                } else {
                    e.valid = false;
                }
            }
            e.currentIter = 0;
        }
        // Track whether the loop predictor beats TAGE for this branch.
        if (e.confidence >= 3 && pr.usedLoop) {
            bool loop_correct = pr.loopPred == taken;
            bool tage_correct = tage_pred == taken;
            if (loop_correct != tage_correct) {
                loopConfCtr_ += loop_correct ? 1 : -1;
                loopConfCtr_ = std::clamp<i64>(loopConfCtr_, -8, 7);
            }
        }
        return;
    }

    // Allocate on a mispredicted not-taken outcome (potential loop
    // exit) when the slot is free or stale.
    if (!taken && tage_pred != taken) {
        if (!e.valid || e.age == 0) {
            e.valid = true;
            e.tag = tag;
            e.pastIter = 0;
            e.currentIter = 0;
            e.confidence = 0;
            e.age = 200;
        } else if (e.age > 0) {
            --e.age;
        }
    }
}

LtagePredictor::Prediction
LtagePredictor::lookup(Addr pc)
{
    Prediction pr;
    bool bim = counter2::predict(bimodal_.get(bimodalIndex(pc)));
    pr.pred = bim;
    pr.altPred = bim;

    // Find provider (longest-history tag hit) and the alternate.
    for (int t = static_cast<int>(cfg_.numTables) - 1; t >= 0; --t) {
        u32 idx = taggedIndex(pc, t);
        const TaggedEntry &e = tables_[t][idx];
        if (e.tag != taggedTag(pc, t))
            continue;
        if (pr.provider < 0) {
            pr.provider = t;
            pr.providerIndex = idx;
        } else {
            pr.altProvider = t;
            pr.altIndex = idx;
            break;
        }
    }

    if (pr.provider >= 0) {
        const TaggedEntry &prov = tables_[pr.provider][pr.providerIndex];
        bool prov_pred = prov.ctr >= 0;
        if (pr.altProvider >= 0) {
            const TaggedEntry &alt = tables_[pr.altProvider][pr.altIndex];
            pr.altPred = alt.ctr >= 0;
        } else {
            pr.altPred = bim;
        }
        // Newly-allocated weak entries: optionally trust the alternate.
        bool weak = (prov.ctr == 0 || prov.ctr == -1) && prov.u == 0;
        pr.pred = (weak && useAltOnNa_ >= 0) ? pr.altPred : prov_pred;
    }
    return pr;
}

void
LtagePredictor::updateHistories(bool taken)
{
    bool bits_out[64];
    // Capture outgoing bits before pushing (bitAt(len-1) leaves the
    // window of length len once the new bit enters).
    for (u32 t = 0; t < cfg_.numTables; ++t)
        bits_out[t] = history_.bitAt(histLen_[t] - 1);
    history_.push(taken);
    for (u32 t = 0; t < cfg_.numTables; ++t) {
        indexFold_[t].update(taken, bits_out[t]);
        tagFold1_[t].update(taken, bits_out[t]);
        tagFold2_[t].update(taken, bits_out[t]);
    }
}

void
LtagePredictor::update(Addr pc, bool taken, const Prediction &pr)
{
    bool correct = pr.pred == taken;

    // Usefulness and use-alt bookkeeping.
    if (pr.provider >= 0) {
        TaggedEntry &prov = tables_[pr.provider][pr.providerIndex];
        bool prov_pred = prov.ctr >= 0;
        bool weak = (prov.ctr == 0 || prov.ctr == -1) && prov.u == 0;
        if (weak && prov_pred != pr.altPred) {
            // Track whether trusting the alternate would have helped.
            useAltOnNa_ += (pr.altPred == taken) ? 1 : -1;
            useAltOnNa_ = std::clamp<i64>(useAltOnNa_, -8, 7);
        }
        if (prov_pred != pr.altPred) {
            if (prov_pred == taken) {
                if (prov.u < 3)
                    ++prov.u;
            } else if (prov.u > 0) {
                --prov.u;
            }
        }
        prov.ctr = std::clamp<i64>(prov.ctr + (taken ? 1 : -1), -4, 3);
        // Also train the base predictor when the provider is weak, so
        // the bimodal stays a usable fallback.
        if (prov.ctr == 0 || prov.ctr == -1) {
            const u32 bi = bimodalIndex(pc);
            bimodal_.set(bi, counter2::update(bimodal_.get(bi), taken));
        }
    } else {
        const u32 bi = bimodalIndex(pc);
        bimodal_.set(bi, counter2::update(bimodal_.get(bi), taken));
    }

    // Allocation on misprediction: claim an entry in a longer-history
    // table with u == 0, preferring shorter of the candidates.
    if (!correct && pr.provider < static_cast<int>(cfg_.numTables) - 1) {
        u32 start = static_cast<u32>(pr.provider + 1);
        // Seznec's trick: sometimes skip the first candidate so
        // allocations spread over tables.
        if (start + 1 < cfg_.numTables && (allocRng_.next() & 1))
            ++start;
        bool allocated = false;
        for (u32 t = start; t < cfg_.numTables; ++t) {
            u32 idx = taggedIndex(pc, t);
            TaggedEntry &e = tables_[t][idx];
            if (e.u == 0) {
                e.tag = taggedTag(pc, t);
                e.ctr = taken ? 0 : -1;
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // All candidates useful: age them so future allocations
            // can succeed.
            for (u32 t = start; t < cfg_.numTables; ++t) {
                TaggedEntry &e = tables_[t][taggedIndex(pc, t)];
                if (e.u > 0)
                    --e.u;
            }
        }
    }

    // Periodic global aging of usefulness counters.
    if (++branchCount_ % cfg_.uResetPeriod == 0) {
        for (auto &table : tables_)
            for (auto &e : table)
                e.u >>= 1;
    }

    updateHistories(taken);
}

bool
LtagePredictor::predictAndTrain(Addr pc, bool taken)
{
    Prediction pr = lookup(pc);
    bool tage_pred = pr.pred;
    bool final_pred = tage_pred;

    bool loop_hit = loopLookup(pc, pr);
    if (loop_hit && loopConfCtr_ >= 0) {
        pr.usedLoop = true;
        final_pred = pr.loopPred;
    } else if (loop_hit) {
        pr.usedLoop = true; // still track its accuracy vs TAGE
    }

    loopUpdate(pc, taken, pr, tage_pred);
    update(pc, taken, pr);
    return final_pred;
}

void
LtagePredictor::reset()
{
    for (auto &table : tables_)
        std::fill(table.begin(), table.end(), TaggedEntry());
    bimodal_.fill(2);
    std::fill(loop_.begin(), loop_.end(), LoopEntry());
    for (u32 t = 0; t < cfg_.numTables; ++t) {
        indexFold_[t].reset();
        tagFold1_[t].reset();
        tagFold2_[t].reset();
    }
    history_.reset();
    useAltOnNa_ = 0;
    loopConfCtr_ = 0;
    branchCount_ = 0;
    allocRng_ = Rng(0xdead);
}

std::string
LtagePredictor::name() const
{
    return strprintf("ltage-%uT-%ue", cfg_.numTables,
                     1u << cfg_.logTaggedEntries);
}

u64
LtagePredictor::sizeBits() const
{
    u64 bits = 0;
    for (u32 t = 0; t < cfg_.numTables; ++t) {
        u64 entry_bits = 3 + tagBits_[t] + 2; // ctr + tag + u
        bits += (u64{1} << cfg_.logTaggedEntries) * entry_bits;
    }
    bits += (u64{1} << cfg_.logBimodalEntries) * 2;
    if (cfg_.enableLoopPredictor)
        bits += (u64{1} << cfg_.logLoopEntries) * (14 + 14 + 14 + 2 + 8 + 1);
    bits += cfg_.maxHistory;
    return bits;
}

u32
LtagePredictor::historyLength(u32 table) const
{
    INTERF_ASSERT(table < histLen_.size());
    return histLen_[table];
}

} // namespace interf::bpred
