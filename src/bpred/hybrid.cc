#include "bpred/hybrid.hh"

#include "util/logging.hh"

namespace interf::bpred
{

HybridPredictor::HybridPredictor(u32 gas_entries, u32 gas_history,
                                 u32 bimodal_entries, u32 chooser_entries,
                                 TwoLevelScheme scheme)
    : gas_(scheme, gas_entries, gas_history),
      bimodal_(bimodal_entries),
      chooser_(chooser_entries, 2),
      chooserMask_(chooser_entries - 1)
{
    INTERF_ASSERT(chooser_entries >= 2 &&
                  (chooser_entries & (chooser_entries - 1)) == 0);
}

bool
HybridPredictor::predictAndTrain(Addr pc, bool taken)
{
    u8 &choose = chooser_[static_cast<u32>(pc ^ (pc >> 16)) & chooserMask_];
    bool use_gas = choose >= 2;

    // Train both components; each returns its own pre-update guess.
    bool gas_pred = gas_.predictAndTrain(pc, taken);
    bool bim_pred = bimodal_.predictAndTrain(pc, taken);
    bool prediction = use_gas ? gas_pred : bim_pred;

    // Train the chooser only when the components disagree.
    if (gas_pred != bim_pred) {
        bool gas_correct = gas_pred == taken;
        choose = counter2::update(choose, gas_correct);
    }
    return prediction;
}

void
HybridPredictor::reset()
{
    gas_.reset();
    bimodal_.reset();
    std::fill(chooser_.begin(), chooser_.end(), u8{2});
}

std::string
HybridPredictor::name() const
{
    return strprintf("hybrid(%s+%s)", gas_.name().c_str(),
                     bimodal_.name().c_str());
}

u64
HybridPredictor::sizeBits() const
{
    return gas_.sizeBits() + bimodal_.sizeBits() +
           static_cast<u64>(chooserMask_ + 1) * 2;
}

} // namespace interf::bpred
