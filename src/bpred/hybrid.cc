#include "bpred/hybrid.hh"

#include "util/logging.hh"

namespace interf::bpred
{

HybridPredictor::HybridPredictor(u32 gas_entries, u32 gas_history,
                                 u32 bimodal_entries, u32 chooser_entries,
                                 TwoLevelScheme scheme)
    : gas_(scheme, gas_entries, gas_history),
      bimodal_(bimodal_entries),
      chooser_(chooser_entries, 2),
      chooserMask_(chooser_entries - 1)
{
    INTERF_ASSERT(chooser_entries >= 2 &&
                  (chooser_entries & (chooser_entries - 1)) == 0);
}

void
HybridPredictor::reset()
{
    gas_.reset();
    bimodal_.reset();
    chooser_.fill(2);
}

std::string
HybridPredictor::name() const
{
    return strprintf("hybrid(%s+%s)", gas_.name().c_str(),
                     bimodal_.name().c_str());
}

u64
HybridPredictor::sizeBits() const
{
    return gas_.sizeBits() + bimodal_.sizeBits() +
           static_cast<u64>(chooserMask_ + 1) * 2;
}

} // namespace interf::bpred
