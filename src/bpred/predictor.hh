/**
 * @file
 * Conditional branch predictor interface.
 *
 * Predictors are functional models: they consume the dynamic stream of
 * (branch PC, outcome) pairs and report their prediction accuracy. The
 * same models serve three roles in the reproduction:
 *
 *  1. inside the machine timing model as the "real" Intel predictor
 *     (a hybrid of GAs and bimodal, per the paper's reverse
 *     engineering);
 *  2. inside the Pin-style functional simulator to measure hypothetical
 *     predictors (GAs of several sizes, L-TAGE) on the same executables
 *     (Section 7.1);
 *  3. as the 145-configuration sweep used to validate CPI/MPKI
 *     linearity (Section 3.2).
 */

#ifndef INTERF_BPRED_PREDICTOR_HH
#define INTERF_BPRED_PREDICTOR_HH

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::bpred
{

/**
 * Abstract conditional branch direction predictor.
 *
 * The single-call interface predicts and trains atomically: the
 * returned value is the direction the predictor *would have guessed*
 * before seeing the outcome, and internal state advances to include the
 * outcome. Perfect predictors may peek at the outcome.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the branch at pc and then train with its actual outcome.
     *
     * @param pc Address of the branch instruction.
     * @param taken Actual outcome.
     * @return The predicted direction.
     */
    virtual bool predictAndTrain(Addr pc, bool taken) = 0;

    /** Restore the power-on state. */
    virtual void reset() = 0;

    /** Human-readable name including sizing, e.g. "gas-8KB-h10". */
    virtual std::string name() const = 0;

    /** Storage budget in bits (prediction tables + histories). */
    virtual u64 sizeBits() const = 0;

    /** Host bytes of mutable state this predictor keeps per replay
     *  lane. Defaults to the modeled budget rounded up to bytes —
     *  exact for packed-counter predictors; structured predictors
     *  (L-TAGE) override with their real container sizes. */
    virtual u64 stateBytes() const { return (sizeBits() + 7) / 8; }
};

/** Owning handle used throughout the library. */
using PredictorPtr = std::unique_ptr<BranchPredictor>;

/** Saturating 2-bit counter helpers shared by table-based predictors. */
namespace counter2
{

/**
 * Update a 2-bit counter toward taken/not-taken: +1 saturating at 3,
 * -1 saturating at 0. Written branchlessly (the compiler emits
 * conditional moves): the direction bit is the least predictable data
 * the replay kernel consumes, and a branch here mispredicts on the
 * host about as often as the modeled counter itself is wrong.
 */
inline u8
update(u8 ctr, bool taken)
{
    int next = static_cast<int>(ctr) + (taken ? 1 : -1);
    next = next < 0 ? 0 : next;
    next = next > 3 ? 3 : next;
    return static_cast<u8>(next);
}

/** Predicted direction of a 2-bit counter. */
inline bool
predict(u8 ctr)
{
    return ctr >= 2;
}

/**
 * Table of 2-bit saturating counters, one byte per counter.
 *
 * A 4-per-byte bit-packed variant was implemented and measured for the
 * lane-state compaction work: it shrank predictor tables 4x but cost
 * ~5% replay throughput, because four hot counters sharing one byte
 * turn independent updates into same-byte load-modify-store chains
 * (the host forwards each store to the next update's load). The tables
 * are a few tens of KB against a ~600 KB lane — the L2 tag arrays
 * dominate — so the byte-per-counter layout stays. The class remains
 * the single place predictors size and account their counter storage.
 */
class CounterTable
{
  public:
    CounterTable() = default;

    /** @param entries Counter count. @param init Initial value 0..3. */
    explicit CounterTable(u32 entries, u8 init = 2)
        : entries_(entries), bytes_(entries, init)
    {
    }

    /** Counter @p i (0..3). */
    u8 get(u32 i) const { return bytes_[i]; }

    /** Overwrite counter @p i with @p v (0..3). */
    void set(u32 i, u8 v) { bytes_[i] = v; }

    /** Set every counter to @p v (0..3). */
    void fill(u8 v)
    {
        std::fill(bytes_.begin(), bytes_.end(), v);
    }

    u32 entries() const { return entries_; }
    u64 stateBytes() const { return bytes_.size(); }

  private:
    u32 entries_ = 0;
    std::vector<u8> bytes_;
};

} // namespace counter2

} // namespace interf::bpred

#endif // INTERF_BPRED_PREDICTOR_HH
