#include "bpred/perceptron.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace interf::bpred
{

PerceptronPredictor::PerceptronPredictor(PerceptronConfig config)
    : cfg_(config),
      threshold_(static_cast<i64>(
          std::floor(1.93 * cfg_.historyBits + 14))),
      weights_(static_cast<size_t>(config.rows) *
               (config.historyBits + 1), 0),
      history_(std::max(config.historyBits, 1u))
{
    INTERF_ASSERT(cfg_.rows >= 2 && (cfg_.rows & (cfg_.rows - 1)) == 0);
    INTERF_ASSERT(cfg_.historyBits >= 1 && cfg_.historyBits <= 64);
    INTERF_ASSERT(cfg_.weightMin < cfg_.weightMax);
}

u32
PerceptronPredictor::rowFor(Addr pc) const
{
    return static_cast<u32>(pc ^ (pc >> 14)) & (cfg_.rows - 1);
}

i64
PerceptronPredictor::dotProduct(u32 row) const
{
    const i64 *w =
        &weights_[static_cast<size_t>(row) * (cfg_.historyBits + 1)];
    i64 sum = w[0]; // bias
    u64 hist = history_.low(cfg_.historyBits);
    for (u32 i = 0; i < cfg_.historyBits; ++i) {
        bool bit = (hist >> i) & 1;
        sum += bit ? w[i + 1] : -w[i + 1];
    }
    return sum;
}

bool
PerceptronPredictor::predictAndTrain(Addr pc, bool taken)
{
    u32 row = rowFor(pc);
    i64 y = dotProduct(row);
    bool prediction = y >= 0;

    // Train on mispredictions or low-confidence correct predictions.
    if (prediction != taken || std::abs(y) <= threshold_) {
        i64 *w =
            &weights_[static_cast<size_t>(row) * (cfg_.historyBits + 1)];
        i64 t = taken ? 1 : -1;
        w[0] = std::clamp(w[0] + t, cfg_.weightMin, cfg_.weightMax);
        u64 hist = history_.low(cfg_.historyBits);
        for (u32 i = 0; i < cfg_.historyBits; ++i) {
            i64 x = ((hist >> i) & 1) ? 1 : -1;
            w[i + 1] = std::clamp(w[i + 1] + t * x, cfg_.weightMin,
                                  cfg_.weightMax);
        }
    }
    history_.push(taken);
    return prediction;
}

void
PerceptronPredictor::reset()
{
    std::fill(weights_.begin(), weights_.end(), i64{0});
    history_.reset();
}

std::string
PerceptronPredictor::name() const
{
    return strprintf("perceptron-%ur-h%u", cfg_.rows, cfg_.historyBits);
}

u64
PerceptronPredictor::sizeBits() const
{
    // 8-bit weights as published, plus the history register.
    return static_cast<u64>(cfg_.rows) * (cfg_.historyBits + 1) * 8 +
           cfg_.historyBits;
}

} // namespace interf::bpred
