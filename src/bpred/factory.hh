/**
 * @file
 * Predictor construction from spec strings, plus the standard sets the
 * benches use: the Figure 7/8 candidate list (GAs 2-16 KB, L-TAGE,
 * perfect) and the 145-configuration sweep the paper runs under MASE to
 * validate linearity (Section 3.2).
 *
 * Spec grammar (sizes are prediction-table bytes; 2-bit counters, so
 * entries = 4 * bytes):
 *   "perfect"
 *   "bimodal:<bytes>"
 *   "gas:<bytes>:<history-bits>"
 *   "gshare:<bytes>:<history-bits>"
 *   "hybrid:<gas-bytes>:<history-bits>:<bimodal-bytes>:<chooser-bytes>"
 *   "perceptron:<rows>:<history-bits>"
 *   "ltage"
 *   "xeon"          (the reverse-engineered real-machine hybrid)
 */

#ifndef INTERF_BPRED_FACTORY_HH
#define INTERF_BPRED_FACTORY_HH

#include <string>
#include <vector>

#include "bpred/predictor.hh"

namespace interf::bpred
{

/** Build a predictor from a spec string; fatal() on a malformed spec. */
PredictorPtr makePredictor(const std::string &spec);

/**
 * The candidate list of Figures 7 and 8: GAs at 2, 4, 8 and 16 KB and
 * L-TAGE. ("perfect" is handled separately since its MPKI is zero by
 * definition.)
 */
std::vector<std::string> figureCandidateSpecs();

/**
 * The 145 imperfect predictor configurations used to demonstrate
 * CPI-MPKI linearity: bimodal, GAs, gshare and hybrid designs spanning
 * a wide accuracy range.
 */
std::vector<std::string> sweepSpecs();

} // namespace interf::bpred

#endif // INTERF_BPRED_FACTORY_HH
