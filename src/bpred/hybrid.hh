/**
 * @file
 * Hybrid predictor: GAs + bimodal with a chooser (Evers/Chang/Patt
 * style). Section 5.4 of the paper: "The branch predictor of the Intel
 * Xeon E5440 is not documented, but through reverse-engineering
 * experiments we have determined that it is likely to contain a hybrid
 * of a GAs-style branch predictor and a bimodal branch predictor."
 * This is the model the machine timing simulator uses as the "real"
 * predictor.
 */

#ifndef INTERF_BPRED_HYBRID_HH
#define INTERF_BPRED_HYBRID_HH

#include <vector>

#include "bpred/bimodal.hh"
#include "bpred/twolevel.hh"

namespace interf::bpred
{

/** Chooser-based hybrid of a GAs component and a bimodal component.
 *  Final so the replay kernel's devirtualized call inlines the whole
 *  predict-and-train chain. */
class HybridPredictor final : public BranchPredictor
{
  public:
    /**
     * @param gas_entries Global-component PHT entries (power of two).
     * @param gas_history Global history bits.
     * @param bimodal_entries Bimodal table entries (power of two).
     * @param chooser_entries Chooser table entries (power of two).
     * @param scheme Indexing of the global component. GAs concatenates
     *        address and history bits; Gshare hashes them together,
     *        which is what the Core-2-era hardware most plausibly does
     *        (concatenation would leave too few address bits).
     */
    HybridPredictor(u32 gas_entries, u32 gas_history, u32 bimodal_entries,
                    u32 chooser_entries,
                    TwoLevelScheme scheme = TwoLevelScheme::GAs);

    bool predictAndTrain(Addr pc, bool taken) override
    {
        const u32 ci =
            static_cast<u32>(pc ^ (pc >> 16)) & chooserMask_;
        const u8 choose = chooser_.get(ci);
        bool use_gas = choose >= 2;

        // Train both components; each returns its own pre-update guess.
        bool gas_pred = gas_.predictAndTrain(pc, taken);
        bool bim_pred = bimodal_.predictAndTrain(pc, taken);
        bool prediction = use_gas ? gas_pred : bim_pred;

        // Train the chooser only when the components disagree
        // (branchless: agreement writes back the old value).
        u8 trained = counter2::update(choose, gas_pred == taken);
        chooser_.set(ci, gas_pred != bim_pred ? trained : choose);
        return prediction;
    }

    void reset() override;
    std::string name() const override;
    u64 sizeBits() const override;
    u64 stateBytes() const override
    {
        return gas_.stateBytes() + bimodal_.stateBytes() +
               chooser_.stateBytes();
    }

  private:
    TwoLevelPredictor gas_;
    BimodalPredictor bimodal_;
    /** 2-bit chooser counters (packed 4/byte): >=2 selects GAs. */
    counter2::CounterTable chooser_;
    u32 chooserMask_;
};

} // namespace interf::bpred

#endif // INTERF_BPRED_HYBRID_HH
