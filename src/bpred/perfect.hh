/**
 * @file
 * Perfect (oracle) branch prediction: 0 MPKI by construction.
 *
 * The paper uses perfect prediction as the extrapolation target: the
 * regression model's y-intercept is the predicted CPI at 0 MPKI, and
 * Section 3 validates linearity by comparing that extrapolation against
 * simulation with a perfect predictor.
 */

#ifndef INTERF_BPRED_PERFECT_HH
#define INTERF_BPRED_PERFECT_HH

#include "bpred/predictor.hh"

namespace interf::bpred
{

/** Oracle predictor: always right. */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool
    predictAndTrain(Addr /*pc*/, bool taken) override
    {
        return taken;
    }

    void reset() override {}

    std::string name() const override { return "perfect"; }

    u64 sizeBits() const override { return 0; }
};

} // namespace interf::bpred

#endif // INTERF_BPRED_PERFECT_HH
