#include "bpred/bimodal.hh"

#include "util/logging.hh"

namespace interf::bpred
{

BimodalPredictor::BimodalPredictor(u32 entries)
    : table_(entries, 2), mask_(entries - 1)
{
    INTERF_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0);
}

void
BimodalPredictor::reset()
{
    table_.fill(2);
}

std::string
BimodalPredictor::name() const
{
    return strprintf("bimodal-%ue", mask_ + 1);
}

u64
BimodalPredictor::sizeBits() const
{
    return static_cast<u64>(mask_ + 1) * 2;
}

} // namespace interf::bpred
