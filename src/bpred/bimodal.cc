#include "bpred/bimodal.hh"

#include "util/logging.hh"

namespace interf::bpred
{

BimodalPredictor::BimodalPredictor(u32 entries)
    : table_(entries, 2), mask_(entries - 1)
{
    INTERF_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0);
}

u32
BimodalPredictor::indexFor(Addr pc) const
{
    // x86 branch addresses are byte-aligned; use the low bits directly,
    // mixed slightly so adjacent branches spread across the table.
    return static_cast<u32>(pc ^ (pc >> 16)) & mask_;
}

bool
BimodalPredictor::predictAndTrain(Addr pc, bool taken)
{
    u8 &ctr = table_[indexFor(pc)];
    bool prediction = counter2::predict(ctr);
    ctr = counter2::update(ctr, taken);
    return prediction;
}

void
BimodalPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), u8{2});
}

std::string
BimodalPredictor::name() const
{
    return strprintf("bimodal-%ue", mask_ + 1);
}

u64
BimodalPredictor::sizeBits() const
{
    return static_cast<u64>(mask_ + 1) * 2;
}

} // namespace interf::bpred
