/**
 * @file
 * Global branch history registers, plain and folded.
 *
 * Two-level predictors index their tables with recent branch outcomes;
 * TAGE needs the same history *folded* down to index/tag widths via
 * circular-shift registers so very long histories stay cheap to hash.
 */

#ifndef INTERF_BPRED_HISTORY_HH
#define INTERF_BPRED_HISTORY_HH

#include <cstddef>
#include <vector>

#include "util/types.hh"

namespace interf::bpred
{

/** Simple shift-register global history (newest outcome in bit 0). */
class GlobalHistory
{
  public:
    explicit GlobalHistory(u32 bits = 64);

    /** Shift in one outcome. Inlined: once per conditional branch. */
    void push(bool taken)
    {
        value_ = (value_ << 1) | (taken ? 1u : 0u);
        if (width_ < 64)
            value_ &= (u64{1} << width_) - 1;
    }

    /** The low `bits` history bits (bits <= width). */
    u64 low(u32 bits) const
    {
        if (bits == 0)
            return 0;
        if (bits >= 64)
            return value_;
        return value_ & ((u64{1} << bits) - 1);
    }

    /** Full register value. */
    u64 value() const { return value_; }

    /** Reset to all-zero history. */
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
    u32 width_;
};

/**
 * A folded (compressed) history register as used by TAGE: maintains
 * hash = history[0..origLen) folded by XOR into `foldedLen` bits,
 * updated incrementally in O(1) per branch.
 *
 * Requires the cooperating caller to keep a byte ring of the full
 * history so the outgoing bit is known (see LongHistory).
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /** Configure for folding origLen bits down to foldedLen bits. */
    void configure(u32 orig_len, u32 folded_len);

    /** Update with the newest bit entering and the oldest leaving. */
    void update(bool new_bit, bool old_bit);

    /** Current folded value. */
    u32 value() const { return value_; }

    void reset() { value_ = 0; }

  private:
    u32 value_ = 0;
    u32 origLen_ = 0;
    u32 foldedLen_ = 0;
    u32 outPoint_ = 0;
};

/**
 * Arbitrarily long global history kept as a byte ring, with helpers to
 * read the bit that is about to fall out of any window length.
 */
class LongHistory
{
  public:
    explicit LongHistory(u32 capacity = 1024);

    /** Shift in one outcome. */
    void push(bool taken);

    /** The outcome i branches ago (i = 0 is the most recent). */
    bool bitAt(u32 i) const;

    void reset();

  private:
    std::vector<u8> ring_;
    u32 head_ = 0; ///< Position of the most recent bit.
    u32 capacity_;
};

} // namespace interf::bpred

#endif // INTERF_BPRED_HISTORY_HH
