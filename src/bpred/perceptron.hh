/**
 * @file
 * Perceptron branch predictor (Jiménez & Lin, HPCA 2001).
 *
 * The paper's second author co-invented this predictor, and its §7.2.3
 * point — evaluate candidate predictors *before* spending design effort
 * — is exactly the workflow this class supports: a fundamentally
 * different prediction mechanism (linear threshold over history bits
 * instead of saturating-counter tables) that drops into the same
 * interferometry pipeline via the BranchPredictor interface.
 *
 * Each branch hashes to a row of signed weights; the prediction is the
 * sign of the dot product of the weights with the global history
 * (taken = +1, not-taken = -1) plus a bias weight. Training nudges
 * weights toward the outcome when the prediction was wrong or the
 * magnitude was below the threshold th = 1.93*h + 14 (the published
 * optimum).
 */

#ifndef INTERF_BPRED_PERCEPTRON_HH
#define INTERF_BPRED_PERCEPTRON_HH

#include <vector>

#include "bpred/history.hh"
#include "bpred/predictor.hh"

namespace interf::bpred
{

/** Configuration of a perceptron predictor. */
struct PerceptronConfig
{
    u32 rows = 512;       ///< Weight-table rows (power of two).
    u32 historyBits = 24; ///< History length == weights per row - 1.
    i64 weightMin = -128; ///< 8-bit weights, as published.
    i64 weightMax = 127;
};

/** Global-history perceptron predictor. */
class PerceptronPredictor : public BranchPredictor
{
  public:
    explicit PerceptronPredictor(
        PerceptronConfig config = PerceptronConfig());

    bool predictAndTrain(Addr pc, bool taken) override;
    void reset() override;
    std::string name() const override;
    u64 sizeBits() const override;

    /** The training threshold used (exposed for tests). */
    i64 threshold() const { return threshold_; }

  private:
    u32 rowFor(Addr pc) const;
    i64 dotProduct(u32 row) const;

    PerceptronConfig cfg_;
    i64 threshold_;
    std::vector<i64> weights_; ///< rows * (historyBits + 1), bias first.
    GlobalHistory history_;
};

} // namespace interf::bpred

#endif // INTERF_BPRED_PERCEPTRON_HH
