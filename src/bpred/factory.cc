#include "bpred/factory.hh"

#include <bit>
#include <cstdlib>

#include "bpred/bimodal.hh"
#include "bpred/hybrid.hh"
#include "bpred/ltage.hh"
#include "bpred/perceptron.hh"
#include "bpred/perfect.hh"
#include "bpred/twolevel.hh"
#include "util/logging.hh"

namespace interf::bpred
{

namespace
{

std::vector<std::string>
splitSpec(const std::string &spec)
{
    std::vector<std::string> parts;
    size_t start = 0;
    for (;;) {
        size_t colon = spec.find(':', start);
        if (colon == std::string::npos) {
            parts.push_back(spec.substr(start));
            return parts;
        }
        parts.push_back(spec.substr(start, colon - start));
        start = colon + 1;
    }
}

u32
parseU32(const std::string &text, const std::string &spec)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || v == 0)
        fatal("bad number '%s' in predictor spec '%s'", text.c_str(),
              spec.c_str());
    return static_cast<u32>(v);
}

/** 2-bit-counter table: entries = 4 * bytes. */
u32
entriesFromBytes(u32 bytes, const std::string &spec)
{
    u32 entries = bytes * 4;
    if ((entries & (entries - 1)) != 0)
        fatal("predictor spec '%s': %u bytes is not a power of two",
              spec.c_str(), bytes);
    return entries;
}

} // anonymous namespace

PredictorPtr
makePredictor(const std::string &spec)
{
    auto parts = splitSpec(spec);
    const std::string &kind = parts[0];

    if (kind == "perfect") {
        if (parts.size() != 1)
            fatal("predictor spec '%s': perfect takes no arguments",
                  spec.c_str());
        return std::make_unique<PerfectPredictor>();
    }
    if (kind == "ltage") {
        if (parts.size() != 1)
            fatal("predictor spec '%s': ltage takes no arguments",
                  spec.c_str());
        return std::make_unique<LtagePredictor>();
    }
    if (kind == "xeon") {
        // The reverse-engineered Xeon E5440 model: a hybrid of a GAs
        // component and a bimodal component (Section 5.4).
        if (parts.size() != 1)
            fatal("predictor spec '%s': xeon takes no arguments",
                  spec.c_str());
        return std::make_unique<HybridPredictor>(1024, 10, 2048, 2048,
                                                 TwoLevelScheme::Gshare);
    }
    if (kind == "perceptron") {
        if (parts.size() != 3)
            fatal("predictor spec '%s': want perceptron:<rows>:<history>",
                  spec.c_str());
        PerceptronConfig cfg;
        cfg.rows = parseU32(parts[1], spec);
        cfg.historyBits = parseU32(parts[2], spec);
        if ((cfg.rows & (cfg.rows - 1)) != 0)
            fatal("predictor spec '%s': rows must be a power of two",
                  spec.c_str());
        if (cfg.historyBits > 64)
            fatal("predictor spec '%s': history too long", spec.c_str());
        return std::make_unique<PerceptronPredictor>(cfg);
    }
    if (kind == "bimodal") {
        if (parts.size() != 2)
            fatal("predictor spec '%s': want bimodal:<bytes>",
                  spec.c_str());
        return std::make_unique<BimodalPredictor>(
            entriesFromBytes(parseU32(parts[1], spec), spec));
    }
    if (kind == "gas" || kind == "gshare") {
        if (parts.size() != 3)
            fatal("predictor spec '%s': want %s:<bytes>:<history>",
                  spec.c_str(), kind.c_str());
        u32 entries = entriesFromBytes(parseU32(parts[1], spec), spec);
        u32 hist = parseU32(parts[2], spec);
        auto scheme = kind == "gas" ? TwoLevelScheme::GAs
                                    : TwoLevelScheme::Gshare;
        u32 index_bits = static_cast<u32>(std::countr_zero(entries));
        if ((scheme == TwoLevelScheme::GAs && hist >= index_bits) ||
            hist > index_bits)
            fatal("predictor spec '%s': history %u too long for %u "
                  "entries", spec.c_str(), hist, entries);
        return std::make_unique<TwoLevelPredictor>(scheme, entries, hist);
    }
    if (kind == "hybrid") {
        if (parts.size() != 5)
            fatal("predictor spec '%s': want hybrid:<gas-bytes>:"
                  "<history>:<bimodal-bytes>:<chooser-bytes>",
                  spec.c_str());
        u32 gas_entries = entriesFromBytes(parseU32(parts[1], spec), spec);
        u32 hist = parseU32(parts[2], spec);
        u32 bim_entries = entriesFromBytes(parseU32(parts[3], spec), spec);
        u32 cho_entries = entriesFromBytes(parseU32(parts[4], spec), spec);
        u32 index_bits = static_cast<u32>(std::countr_zero(gas_entries));
        if (hist >= index_bits)
            fatal("predictor spec '%s': history %u too long for %u "
                  "entries", spec.c_str(), hist, gas_entries);
        return std::make_unique<HybridPredictor>(gas_entries, hist,
                                                 bim_entries, cho_entries);
    }
    fatal("unknown predictor kind '%s' in spec '%s'", kind.c_str(),
          spec.c_str());
}

std::vector<std::string>
figureCandidateSpecs()
{
    return {
        "gas:2048:10",  // 2 KB GAs
        "gas:4096:10",  // 4 KB
        "gas:8192:10",  // 8 KB
        "gas:16384:10", // 16 KB
        "ltage",
    };
}

std::vector<std::string>
sweepSpecs()
{
    std::vector<std::string> all;

    // Bimodal sizes from tiny to large.
    for (u32 bytes : {256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u,
                      32768u, 65536u})
        all.push_back(strprintf("bimodal:%u", bytes));

    // GAs and gshare across sizes and history lengths.
    for (u32 bytes : {256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
        u32 index_bits =
            static_cast<u32>(std::countr_zero(bytes * 4));
        for (u32 hist = 2; hist <= 12; ++hist) {
            if (hist < index_bits)
                all.push_back(strprintf("gas:%u:%u", bytes, hist));
            if (hist <= index_bits)
                all.push_back(strprintf("gshare:%u:%u", bytes, hist));
        }
    }

    // Hybrids.
    for (u32 bytes : {512u, 1024u, 2048u, 4096u, 8192u, 16384u})
        for (u32 hist : {4u, 8u})
            all.push_back(strprintf("hybrid:%u:%u:%u:%u", bytes, hist,
                                    bytes / 4, bytes / 4));

    // The paper's MASE study uses exactly 145 imperfect configurations;
    // thin the list evenly to that count.
    constexpr size_t target = 145;
    INTERF_ASSERT(all.size() >= target);
    if (all.size() == target)
        return all;
    std::vector<std::string> picked;
    picked.reserve(target);
    double stride = static_cast<double>(all.size()) / target;
    double pos = 0.0;
    for (size_t i = 0; i < target; ++i) {
        picked.push_back(all[static_cast<size_t>(pos)]);
        pos += stride;
    }
    return picked;
}

} // namespace interf::bpred
