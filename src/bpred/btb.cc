#include "bpred/btb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace interf::bpred
{

Btb::Btb(u32 sets, u32 ways) : sets_(sets), ways_(ways)
{
    INTERF_ASSERT(sets >= 1 && (sets & (sets - 1)) == 0);
    INTERF_ASSERT(ways >= 1);
    size_t n = static_cast<size_t>(sets) * ways;
    tags_.resize(n, kNoTag);
    tagsLo_.resize(n, static_cast<u32>(kNoTag));
    tagsHi_.resize(n, static_cast<u32>(kNoTag >> 32));
    targets_.resize(n, 0);
    lru_.resize(n, 0);
}

void
Btb::reset()
{
    std::fill(tags_.begin(), tags_.end(), kNoTag);
    std::fill(tagsLo_.begin(), tagsLo_.end(), static_cast<u32>(kNoTag));
    std::fill(tagsHi_.begin(), tagsHi_.end(),
              static_cast<u32>(kNoTag >> 32));
    std::fill(targets_.begin(), targets_.end(), Addr{0});
    std::fill(lru_.begin(), lru_.end(), 0u);
    lruClock_ = 0;
}

u64
Btb::sizeBits() const
{
    // Tag (approx. 20 bits stored in real designs) + target (32 offset
    // bits) per entry, as a rough budget figure.
    return static_cast<u64>(sets_) * ways_ * (20 + 32);
}

} // namespace interf::bpred
