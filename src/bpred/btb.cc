#include "bpred/btb.hh"

#include <algorithm>

#include "util/logging.hh"

namespace interf::bpred
{

Btb::Btb(u32 sets, u32 ways) : sets_(sets), ways_(ways)
{
    // Typed construction-time diagnostics rather than asserts: a bad
    // geometry is a configuration error, and a non-power-of-two set
    // count would otherwise silently alias sets through the index mask.
    if (sets == 0 || (sets & (sets - 1)) != 0)
        fatal("btb: %u sets is not a power of two; the set index masks "
              "low PC bits, so a non-power-of-two count would silently "
              "alias sets",
              sets);
    if (ways == 0)
        fatal("btb: associativity must be >= 1");
    if (ways > 32)
        fatal("btb: associativity %u exceeds 32 (u8 per-set ages and "
              "the packed scan's u32 mask cap the ways)",
              ways);
    size_t n = static_cast<size_t>(sets) * ways;
    tags_.resize(n, kNoTag);
    targets_.resize(n, 0);
    lru_.resize(n, 0);
    setClock_.resize(sets, 0);
}

void
Btb::reset()
{
    // Eager clear. An epoch-versioned lazy reset (as the caches use)
    // was implemented and measured here too: full-u32-PC tags leave
    // no spare bits to fold an epoch salt into, so every probe had to
    // test a per-set generation tag, and that check alone cost ~3% of
    // batched replay throughput. The BTB's whole state is ~45 KB —
    // the memset is trivial next to a layout replay.
    std::fill(tags_.begin(), tags_.end(), kNoTag);
    std::fill(targets_.begin(), targets_.end(), u32{0});
    std::fill(lru_.begin(), lru_.end(), u8{0});
    std::fill(setClock_.begin(), setClock_.end(), u8{0});
}

u64
Btb::sizeBits() const
{
    // Tag (approx. 20 bits stored in real designs) + target (32 offset
    // bits) per entry, as a rough budget figure.
    return static_cast<u64>(sets_) * ways_ * (20 + 32);
}

} // namespace interf::bpred
