#include "bpred/btb.hh"

#include "util/logging.hh"

namespace interf::bpred
{

Btb::Btb(u32 sets, u32 ways) : sets_(sets), ways_(ways)
{
    INTERF_ASSERT(sets >= 1 && (sets & (sets - 1)) == 0);
    INTERF_ASSERT(ways >= 1);
    entries_.resize(static_cast<size_t>(sets) * ways);
}

u32
Btb::setIndex(Addr pc) const
{
    return static_cast<u32>(pc ^ (pc >> 13)) & (sets_ - 1);
}

Addr
Btb::tagOf(Addr pc) const
{
    return pc; // full tags: conflicts come from the set index only
}

BtbResult
Btb::lookup(Addr pc) const
{
    const Entry *row = &entries_[static_cast<size_t>(setIndex(pc)) * ways_];
    for (u32 w = 0; w < ways_; ++w) {
        if (row[w].valid && row[w].tag == tagOf(pc))
            return {true, row[w].target};
    }
    return {};
}

void
Btb::update(Addr pc, Addr target)
{
    Entry *row = &entries_[static_cast<size_t>(setIndex(pc)) * ways_];
    ++lruClock_;
    // Hit: refresh.
    for (u32 w = 0; w < ways_; ++w) {
        if (row[w].valid && row[w].tag == tagOf(pc)) {
            row[w].target = target;
            row[w].lru = lruClock_;
            return;
        }
    }
    // Miss: replace invalid or LRU way.
    u32 victim = 0;
    for (u32 w = 0; w < ways_; ++w) {
        if (!row[w].valid) {
            victim = w;
            break;
        }
        if (row[w].lru < row[victim].lru)
            victim = w;
    }
    row[victim] = {true, tagOf(pc), target, lruClock_};
}

void
Btb::reset()
{
    std::fill(entries_.begin(), entries_.end(), Entry());
    lruClock_ = 0;
}

u64
Btb::sizeBits() const
{
    // Tag (approx. 20 bits stored in real designs) + target (32 offset
    // bits) per entry, as a rough budget figure.
    return static_cast<u64>(sets_) * ways_ * (20 + 32);
}

} // namespace interf::bpred
