/**
 * @file
 * Return address stack (RAS).
 *
 * Call/return target prediction in the machine model. A finite circular
 * stack: calls push their return address, returns pop the predicted
 * target. Deep call chains overflow the stack (oldest entries are
 * silently overwritten) and mispredict on the way back out — a small
 * but real placement-independent cost real front ends pay.
 */

#ifndef INTERF_BPRED_RAS_HH
#define INTERF_BPRED_RAS_HH

#include <vector>

#include "util/types.hh"

namespace interf::bpred
{

/** Finite circular return-address stack. */
class ReturnAddressStack
{
  public:
    /** @param depth Number of entries (Core-2-class parts use ~16). */
    explicit ReturnAddressStack(u32 depth = 16);

    /** Push a return address at a call. */
    void push(Addr return_addr);

    /**
     * Pop the predicted return target. Returns 0 if the stack is
     * logically empty (prediction will be wrong).
     */
    Addr pop();

    /** Entries currently live (saturates at the capacity). */
    u32 occupancy() const { return occupancy_; }

    u32 depth() const { return depth_; }

    /** Empty the stack. */
    void reset();

    /** Host bytes of mutable state (the entry ring). */
    u64 stateBytes() const { return stack_.size() * sizeof(Addr); }

    /** @{ Accuracy statistics (correct/incorrect pops). */
    Count pops() const { return pops_; }
    Count overflows() const { return overflows_; }
    /** @} */

  private:
    u32 depth_;
    std::vector<Addr> stack_;
    u32 top_ = 0; ///< Index of the next free slot.
    u32 occupancy_ = 0;
    Count pops_ = 0;
    Count overflows_ = 0;
};

} // namespace interf::bpred

#endif // INTERF_BPRED_RAS_HH
