/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * Section 4.1 of the paper lists the BTB among the address-hashed
 * structures that code placement perturbs: "A branch target buffer
 * (BTB) or indirect branch predictor would use lower-order bits of the
 * branch address to index a table of branch targets." The machine
 * timing model charges a misfetch penalty on BTB misses for taken
 * branches and a full misprediction penalty for wrong indirect targets;
 * this adds layout-dependent CPI variance *not* explained by MPKI,
 * which is part of why the paper's branch-only r^2 averages 27%.
 */

#ifndef INTERF_BPRED_BTB_HH
#define INTERF_BPRED_BTB_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::bpred
{

/** Result of a BTB lookup. */
struct BtbResult
{
    bool hit = false;
    Addr target = 0;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity (>= 1).
     */
    Btb(u32 sets, u32 ways);

    /** Look up the predicted target for a branch; no state change. */
    BtbResult lookup(Addr pc) const;

    /** Install/refresh the target for a branch (LRU update). */
    void update(Addr pc, Addr target);

    /** Restore the power-on (empty) state. */
    void reset();

    u32 sets() const { return sets_; }
    u32 ways() const { return ways_; }

    /** Storage estimate in bits (tags + targets). */
    u64 sizeBits() const;

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        u32 lru = 0; ///< Higher = more recently used.
    };

    u32 setIndex(Addr pc) const;
    Addr tagOf(Addr pc) const;

    u32 sets_;
    u32 ways_;
    u32 lruClock_ = 0;
    std::vector<Entry> entries_; ///< sets_ * ways_, row-major by set.
};

} // namespace interf::bpred

#endif // INTERF_BPRED_BTB_HH
