/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * Section 4.1 of the paper lists the BTB among the address-hashed
 * structures that code placement perturbs: "A branch target buffer
 * (BTB) or indirect branch predictor would use lower-order bits of the
 * branch address to index a table of branch targets." The machine
 * timing model charges a misfetch penalty on BTB misses for taken
 * branches and a full misprediction penalty for wrong indirect targets;
 * this adds layout-dependent CPI variance *not* explained by MPKI,
 * which is part of why the paper's branch-only r^2 averages 27%.
 *
 * The representation is compact so batched replay lanes stay small:
 * tags are stored once as u32 (branch PCs are text-segment addresses,
 * far below 2^32 — installs assert it), targets are u32 *tokens* the
 * caller chooses (the replay kernels store plan site indices instead
 * of 8-byte addresses; equality of tokens is equality of targets
 * because block addresses are injective per layout), and recency is a
 * u8 age per way against a u8 per-set clock (free at BTB touch rates;
 * see touchLru). reset() clears eagerly: unlike the caches, the full
 * u32-PC tags leave no spare bits for an epoch salt, and a per-set
 * generation check on every probe measured ~3% of batched replay
 * throughput (see Btb::reset in btb.cc).
 */

#ifndef INTERF_BPRED_BTB_HH
#define INTERF_BPRED_BTB_HH

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define INTERF_BTB_HAVE_SSE2 1
#endif

namespace interf::bpred
{

/** Result of a BTB lookup. The target is the u32 token the last
 *  update for this branch stored (a plan site index in the replay
 *  kernels; any caller-defined encoding elsewhere). */
struct BtbResult
{
    bool hit = false;
    u32 target = 0;
};

/** Cumulative probeWayHinted() outcomes (bench diagnostics; not
 *  cleared by reset(), and only accumulated while
 *  setHintCounting(true) — see cache::HintStats for why the
 *  unconditional increments were evicted from the hot path). */
struct BtbHintStats
{
    u64 probes = 0;
    u64 verified = 0;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity (1..32).
     */
    Btb(u32 sets, u32 ways);

    /**
     * Look up the predicted target for a branch; no state change.
     * Inlined (with SoA tag storage) for the replay kernel, which
     * calls this once per taken branch.
     */
    BtbResult lookup(Addr pc) const
    {
        const u32 set = setIndex(pc);
        const size_t base = static_cast<size_t>(set) * ways_;
        u32 w = findWay(base, tagOf(pc));
        if (w != ways_)
            return {true, targets_[base + w]};
        return {};
    }

    /**
     * lookup() followed by update() with a single tag scan: returns
     * what lookup(pc) would have, then installs/refreshes the target.
     * The replay kernel always pairs the two on taken branches, and
     * the scan is the dominant cost of each.
     */
    BtbResult lookupUpdate(Addr pc, u32 target)
    {
        return updateFound(pc, target, probeWay(pc));
    }

    /**
     * @{ lookupUpdate() split into its scan and commit halves for the
     * batched replay kernel: the K lanes' probeWay() scans (independent
     * packed tag compares) issue back-to-back so their set-row loads
     * overlap, then each lane commits with updateFound(). probeWay()
     * has no state change; updateFound(pc, target, way) applies
     * exactly lookupUpdate()'s effects given the scan result.
     */
    u32 probeWay(Addr pc) const
    {
        const u32 set = setIndex(pc);
        return findWay(static_cast<size_t>(set) * ways_, tagOf(pc));
    }

    /**
     * probeWay() with a verified way hint: a branch occupies at most
     * one way of its set, so a tag match at @p hint is the answer and
     * one tag load replaces the packed scan. Stale or out-of-range
     * hints fall back to the scan — a hint can only change the cost of
     * the probe, never its result. The batched replay kernel feeds
     * this from a per-lane way memo keyed by branch site.
     */
    u32 probeWayHinted(Addr pc, u32 hint) const
    {
        if (countHints_) [[unlikely]]
            ++hintStats_.probes;
        if (hint < ways_) {
            const u32 set = setIndex(pc);
            if (tags_[static_cast<size_t>(set) * ways_ + hint] ==
                    tagOf(pc)) {
                if (countHints_) [[unlikely]]
                    ++hintStats_.verified;
                return hint;
            }
        }
        return probeWay(pc);
    }

    BtbResult updateFound(Addr pc, u32 target, u32 w)
    {
        u32 way_now;
        return updateFoundAt(pc, target, w, way_now);
    }

    /** updateFound() that also reports the way the entry occupies
     *  afterwards (the hit way, or the victim a miss installed into)
     *  so callers can refresh a way memo. */
    BtbResult updateFoundAt(Addr pc, u32 target, u32 w, u32 &way_now)
    {
        const u32 set = setIndex(pc);
        const size_t base = static_cast<size_t>(set) * ways_;
        if (w != ways_) {
            BtbResult before{true, targets_[base + w]};
            targets_[base + w] = target;
            touchLru(base, set, w);
            way_now = w;
            return before;
        }
        const u32 tag = tagOf(pc);
        INTERF_ASSERT(static_cast<Addr>(tag) == pc && tag != kNoTag);
        u32 victim = pickVictim(base);
        tags_[base + victim] = tag;
        targets_[base + victim] = target;
        touchLru(base, set, victim);
        way_now = victim;
        return {};
    }
    /** @} */

    /** Install/refresh the target for a branch (LRU update). */
    void update(Addr pc, u32 target)
    {
        updateFound(pc, target, probeWay(pc));
    }

    /** Restore the power-on (empty) state (eager ~45 KB clear; see
     *  the rationale in btb.cc). */
    void reset();

    u32 sets() const { return sets_; }
    u32 ways() const { return ways_; }
    const BtbHintStats &hintStats() const { return hintStats_; }

    /** Enable/disable hinted-probe outcome counting (off by default;
     *  see BtbHintStats). */
    void setHintCounting(bool on) { countHints_ = on; }

    /** Bytes of per-replay mutable state (tag/target/age/generation
     *  arrays) — what one batched-replay lane keeps hot. */
    u64 hotStateBytes() const
    {
        return tags_.size() * sizeof(u32) +
               targets_.size() * sizeof(u32) + lru_.size() +
               setClock_.size();
    }

    /** Storage estimate in bits (tags + targets). */
    u64 sizeBits() const;

  private:
    /**
     * Tag of an invalid way; branch PCs are text-segment code
     * addresses far below the all-ones value (installs assert the u32
     * tag round-trips), so the sentinel can never collide.
     */
    static constexpr u32 kNoTag = ~u32{0};

    u32 setIndex(Addr pc) const
    {
        return static_cast<u32>(pc ^ (pc >> 13)) & (sets_ - 1);
    }

    static u32 tagOf(Addr pc)
    {
        // Full (truncated-to-u32) tags: conflicts come from the set
        // index only. Installs assert the truncation is lossless.
        return static_cast<u32>(pc);
    }

    /** Stamp way @p w most-recent; rank-renormalize the set's u8 ages
     *  when its clock saturates (order-preserving). The cache's LRU
     *  keeps wide write-only stamps because a per-set clock's
     *  load-increment-store chain cost ~10-15% of replay throughput
     *  there; the BTB touches LRU only on taken branches — an order
     *  of magnitude rarer — where the same scheme measured free, so
     *  the u8 narrowing stays. */
    void touchLru(size_t base, u32 set, u32 w)
    {
        u8 clock = setClock_[set];
        if (clock == 0xff) {
            renormalizeLru(base);
            clock = static_cast<u8>(ways_ - 1);
        }
        ++clock;
        setClock_[set] = clock;
        lru_[base + w] = clock;
    }

    void renormalizeLru(size_t base)
    {
        u8 *ages = lru_.data() + base;
        u8 ranked[32]; // ctor caps ways at 32
        for (u32 w = 0; w < ways_; ++w) {
            u8 r = 0;
            for (u32 v = 0; v < ways_; ++v)
                r += static_cast<u8>(
                    ages[v] < ages[w] ||
                    (ages[v] == ages[w] && v < w));
            ranked[w] = r;
        }
        for (u32 w = 0; w < ways_; ++w)
            ages[w] = ranked[w];
    }

    /** Victim way: first invalid way (way order), else least recent.
     *  The caller materialized the set. */
    u32 pickVictim(size_t base) const
    {
        const u32 *tags = tags_.data() + base;
        const u8 *lru = lru_.data() + base;
        u32 victim = 0;
        for (u32 v = 0; v < ways_; ++v) {
            if (tags[v] == kNoTag)
                return v;
            if (lru[v] < lru[victim])
                victim = v;
        }
        return victim;
    }

    /**
     * Way of the row at @p base holding @p tag, or ways_ if absent.
     * Branchless packed compare of the u32 tags into an exact equality
     * mask — same scheme as cache::Cache::findWay (see the rationale
     * there), exact without a confirm step because the stored tag is
     * the full u32. The caller must have checked the set is live.
     */
    u32 findWay(size_t base, u32 tag) const
    {
#ifdef INTERF_BTB_HAVE_SSE2
        if (ways_ % 4 == 0 && ways_ <= 32) {
            const u32 *tags = tags_.data() + base;
            const __m128i key =
                _mm_set1_epi32(static_cast<int>(tag));
            u32 mask = 0;
            for (u32 w = 0; w < ways_; w += 4) {
                __m128i eq = _mm_cmpeq_epi32(
                    _mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(tags + w)),
                    key);
                mask |= static_cast<u32>(
                            _mm_movemask_ps(_mm_castsi128_ps(eq)))
                        << w;
            }
            return mask ? static_cast<u32>(__builtin_ctz(mask)) : ways_;
        }
#endif
        const u32 *tags = tags_.data() + base;
        for (u32 w = 0; w < ways_; ++w)
            if (tags[w] == tag)
                return w;
        return ways_;
    }

    u32 sets_;
    u32 ways_;
    /** @{ sets_ * ways_, row-major by set; parallel arrays. */
    std::vector<u32> tags_;    ///< u32 tags (sentinel kNoTag).
    std::vector<u32> targets_; ///< Caller-defined target tokens.
    std::vector<u8> lru_;      ///< Per-way age; higher = more recent.
    std::vector<u8> setClock_; ///< Per-set age clock.
    /** @} */
    mutable BtbHintStats hintStats_;
    bool countHints_ = false;   ///< See setHintCounting().
};

} // namespace interf::bpred

#endif // INTERF_BPRED_BTB_HH
