/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * Section 4.1 of the paper lists the BTB among the address-hashed
 * structures that code placement perturbs: "A branch target buffer
 * (BTB) or indirect branch predictor would use lower-order bits of the
 * branch address to index a table of branch targets." The machine
 * timing model charges a misfetch penalty on BTB misses for taken
 * branches and a full misprediction penalty for wrong indirect targets;
 * this adds layout-dependent CPI variance *not* explained by MPKI,
 * which is part of why the paper's branch-only r^2 averages 27%.
 */

#ifndef INTERF_BPRED_BTB_HH
#define INTERF_BPRED_BTB_HH

#include <string>
#include <vector>

#include "util/types.hh"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define INTERF_BTB_HAVE_SSE2 1
#endif

namespace interf::bpred
{

/** Result of a BTB lookup. */
struct BtbResult
{
    bool hit = false;
    Addr target = 0;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param sets Number of sets (power of two).
     * @param ways Associativity (>= 1).
     */
    Btb(u32 sets, u32 ways);

    /**
     * Look up the predicted target for a branch; no state change.
     * Inlined (with SoA tag storage) for the replay kernel, which
     * calls this once per taken branch.
     */
    BtbResult lookup(Addr pc) const
    {
        const size_t base = static_cast<size_t>(setIndex(pc)) * ways_;
        u32 w = findWay(base, tagOf(pc));
        if (w != ways_)
            return {true, targets_[base + w]};
        return {};
    }

    /**
     * lookup() followed by update() with a single tag scan: returns
     * what lookup(pc) would have, then installs/refreshes the target.
     * The replay kernel always pairs the two on taken branches, and
     * the scan is the dominant cost of each.
     */
    BtbResult lookupUpdate(Addr pc, Addr target)
    {
        return updateFound(pc, target, probeWay(pc));
    }

    /**
     * @{ lookupUpdate() split into its scan and commit halves for the
     * batched replay kernel: the K lanes' probeWay() scans (independent
     * packed tag compares) issue back-to-back so their set-row loads
     * overlap, then each lane commits with updateFound(). probeWay()
     * has no state change; updateFound(pc, target, way) applies
     * exactly lookupUpdate()'s effects given the scan result.
     */
    u32 probeWay(Addr pc) const
    {
        return findWay(static_cast<size_t>(setIndex(pc)) * ways_,
                       tagOf(pc));
    }

    /**
     * probeWay() with a verified way hint: a branch occupies at most
     * one way of its set, so a tag match at @p hint is the answer and
     * one tag load replaces the packed scan. Stale or out-of-range
     * hints fall back to the scan — a hint can only change the cost of
     * the probe, never its result. The batched replay kernel feeds
     * this from a per-lane way memo keyed by branch site.
     */
    u32 probeWayHinted(Addr pc, u32 hint) const
    {
        if (hint < ways_) {
            const size_t base =
                static_cast<size_t>(setIndex(pc)) * ways_;
            if (tags_[base + hint] == tagOf(pc))
                return hint;
        }
        return probeWay(pc);
    }

    BtbResult updateFound(Addr pc, Addr target, u32 w)
    {
        u32 way_now;
        return updateFoundAt(pc, target, w, way_now);
    }

    /** updateFound() that also reports the way the entry occupies
     *  afterwards (the hit way, or the victim a miss installed into)
     *  so callers can refresh a way memo. */
    BtbResult updateFoundAt(Addr pc, Addr target, u32 w, u32 &way_now)
    {
        const size_t base = static_cast<size_t>(setIndex(pc)) * ways_;
        const Addr tag = tagOf(pc);
        ++lruClock_;
        if (w != ways_) {
            BtbResult before{true, targets_[base + w]};
            targets_[base + w] = target;
            lru_[base + w] = lruClock_;
            way_now = w;
            return before;
        }
        Addr *tags = tags_.data() + base;
        u32 victim = 0;
        for (u32 v = 0; v < ways_; ++v) {
            if (tags[v] == kNoTag) {
                victim = v;
                break;
            }
            if (lru_[base + v] < lru_[base + victim])
                victim = v;
        }
        tags[victim] = tag;
        tagsLo_[base + victim] = static_cast<u32>(tag);
        tagsHi_[base + victim] = static_cast<u32>(tag >> 32);
        targets_[base + victim] = target;
        lru_[base + victim] = lruClock_;
        way_now = victim;
        return {};
    }
    /** @} */

    /** Install/refresh the target for a branch (LRU update). */
    void update(Addr pc, Addr target)
    {
        const size_t base = static_cast<size_t>(setIndex(pc)) * ways_;
        Addr *tags = tags_.data() + base;
        const Addr tag = tagOf(pc);
        ++lruClock_;
        // Hit: refresh.
        u32 w = findWay(base, tag);
        if (w != ways_) {
            targets_[base + w] = target;
            lru_[base + w] = lruClock_;
            return;
        }
        // Miss: replace invalid or LRU way.
        u32 victim = 0;
        for (u32 v = 0; v < ways_; ++v) {
            if (tags[v] == kNoTag) {
                victim = v;
                break;
            }
            if (lru_[base + v] < lru_[base + victim])
                victim = v;
        }
        tags[victim] = tag;
        tagsLo_[base + victim] = static_cast<u32>(tag);
        tagsHi_[base + victim] = static_cast<u32>(tag >> 32);
        targets_[base + victim] = target;
        lru_[base + victim] = lruClock_;
    }

    /** Restore the power-on (empty) state. */
    void reset();

    u32 sets() const { return sets_; }
    u32 ways() const { return ways_; }

    /** Storage estimate in bits (tags + targets). */
    u64 sizeBits() const;

  private:
    /**
     * Tag of an invalid way; branch PCs are virtual code addresses far
     * below the all-ones value, so the sentinel can never collide.
     */
    static constexpr Addr kNoTag = ~Addr{0};

    u32 setIndex(Addr pc) const
    {
        return static_cast<u32>(pc ^ (pc >> 13)) & (sets_ - 1);
    }

    static Addr tagOf(Addr pc)
    {
        return pc; // full tags: conflicts come from the set index only
    }

    /**
     * Way of the row at @p base holding @p tag, or ways_ if absent.
     * Branchless packed compare of both tag halves ANDed into an exact
     * equality mask — same scheme as cache::Cache::findWay (see the
     * rationale there).
     */
    u32 findWay(size_t base, Addr tag) const
    {
#ifdef INTERF_BTB_HAVE_SSE2
        if (ways_ % 4 == 0 && ways_ <= 32) {
            const u32 *lo = tagsLo_.data() + base;
            const u32 *hi = tagsHi_.data() + base;
            const __m128i key_lo =
                _mm_set1_epi32(static_cast<int>(static_cast<u32>(tag)));
            const __m128i key_hi = _mm_set1_epi32(
                static_cast<int>(static_cast<u32>(tag >> 32)));
            u32 mask = 0;
            for (u32 w = 0; w < ways_; w += 4) {
                __m128i eq = _mm_and_si128(
                    _mm_cmpeq_epi32(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(lo + w)),
                        key_lo),
                    _mm_cmpeq_epi32(
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i *>(hi + w)),
                        key_hi));
                mask |= static_cast<u32>(
                            _mm_movemask_ps(_mm_castsi128_ps(eq)))
                        << w;
            }
            return mask ? static_cast<u32>(__builtin_ctz(mask)) : ways_;
        }
#endif
        const Addr *tags = tags_.data() + base;
        for (u32 w = 0; w < ways_; ++w)
            if (tags[w] == tag)
                return w;
        return ways_;
    }

    u32 sets_;
    u32 ways_;
    u32 lruClock_ = 0;
    /** @{ sets_ * ways_, row-major by set; parallel arrays. */
    std::vector<Addr> tags_;
    std::vector<u32> tagsLo_; ///< @{ Split halves of tags_: the scan
    std::vector<u32> tagsHi_; ///< compares both packed. @}
    std::vector<Addr> targets_;
    std::vector<u32> lru_; ///< Higher = more recently used.
    /** @} */
};

} // namespace interf::bpred

#endif // INTERF_BPRED_BTB_HH
