#include "bpred/twolevel.hh"

#include <bit>

#include "util/logging.hh"

namespace interf::bpred
{

TwoLevelPredictor::TwoLevelPredictor(TwoLevelScheme scheme, u32 entries,
                                     u32 history_bits)
    : scheme_(scheme),
      table_(entries, 2),
      mask_(entries - 1),
      indexBits_(static_cast<u32>(std::countr_zero(entries))),
      historyBits_(history_bits),
      history_(std::max(history_bits, 1u))
{
    INTERF_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0);
    INTERF_ASSERT(history_bits >= 1);
    if (scheme == TwoLevelScheme::GAs)
        INTERF_ASSERT(history_bits < indexBits_);
    else
        INTERF_ASSERT(history_bits <= indexBits_);
}

void
TwoLevelPredictor::reset()
{
    table_.fill(2);
    history_.reset();
}

std::string
TwoLevelPredictor::name() const
{
    const char *tag = scheme_ == TwoLevelScheme::GAs ? "gas" : "gshare";
    return strprintf("%s-%ue-h%u", tag, mask_ + 1, historyBits_);
}

u64
TwoLevelPredictor::sizeBits() const
{
    return static_cast<u64>(mask_ + 1) * 2 + historyBits_;
}

} // namespace interf::bpred
