#include "bpred/twolevel.hh"

#include <bit>

#include "util/logging.hh"

namespace interf::bpred
{

TwoLevelPredictor::TwoLevelPredictor(TwoLevelScheme scheme, u32 entries,
                                     u32 history_bits)
    : scheme_(scheme),
      table_(entries, 2),
      mask_(entries - 1),
      indexBits_(static_cast<u32>(std::countr_zero(entries))),
      historyBits_(history_bits),
      history_(std::max(history_bits, 1u))
{
    INTERF_ASSERT(entries >= 2 && (entries & (entries - 1)) == 0);
    INTERF_ASSERT(history_bits >= 1);
    if (scheme == TwoLevelScheme::GAs)
        INTERF_ASSERT(history_bits < indexBits_);
    else
        INTERF_ASSERT(history_bits <= indexBits_);
}

u32
TwoLevelPredictor::indexFor(Addr pc) const
{
    u32 addr_mix = static_cast<u32>(pc ^ (pc >> 16));
    u64 hist = history_.low(historyBits_);
    if (scheme_ == TwoLevelScheme::GAs) {
        // Concatenate: {addr bits, history bits}.
        u32 addr_bits = indexBits_ - historyBits_;
        u32 addr_part = addr_mix & ((u32{1} << addr_bits) - 1);
        return ((addr_part << historyBits_) |
                static_cast<u32>(hist)) & mask_;
    }
    // gshare: XOR.
    return (addr_mix ^ static_cast<u32>(hist)) & mask_;
}

bool
TwoLevelPredictor::predictAndTrain(Addr pc, bool taken)
{
    u8 &ctr = table_[indexFor(pc)];
    bool prediction = counter2::predict(ctr);
    ctr = counter2::update(ctr, taken);
    history_.push(taken);
    return prediction;
}

void
TwoLevelPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), u8{2});
    history_.reset();
}

std::string
TwoLevelPredictor::name() const
{
    const char *tag = scheme_ == TwoLevelScheme::GAs ? "gas" : "gshare";
    return strprintf("%s-%ue-h%u", tag, mask_ + 1, historyBits_);
}

u64
TwoLevelPredictor::sizeBits() const
{
    return static_cast<u64>(mask_ + 1) * 2 + historyBits_;
}

} // namespace interf::bpred
