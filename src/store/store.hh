/**
 * @file
 * Content-addressed campaign artifact store.
 *
 * Every sample a campaign produces is deterministic given (program,
 * trace seed, CampaignConfig), so re-measuring a previously-run
 * configuration is pure waste and a crash mid-campaign loses hours of
 * work. The store extends the invariant trace/io.hh enforces for traces
 * to whole campaigns: cached samples are cryptographically bound, via a
 * structural digest, to the exact program and configuration that
 * produced them, and anything that fails that binding is rejected
 * outright — a corrupt cache must fail closed, never hand back garbage
 * samples that would silently skew a regression model.
 *
 * On-disk layout (one directory per campaign key under the store root):
 *
 *   <root>/<16-hex-digit key>/
 *       manifest.bin        index: format version, key, batch table
 *       batch-00000000.bin  samples [first, first+count), checksummed
 *       batch-00000006.bin  ...
 *
 * Batches are contiguous from layout 0 and appended atomically
 * (write-temp-then-rename, batch file before manifest), so a killed
 * campaign leaves a valid store covering every completed batch and
 * resumes at the first unmeasured layout; a repeated campaign is a pure
 * cache hit returning byte-identical samples.
 */

#ifndef INTERF_STORE_STORE_HH
#define INTERF_STORE_STORE_HH

#include <string>
#include <vector>

#include "core/runner.hh"
#include "interferometry/campaign.hh"

namespace interf::store
{

/**
 * The campaign's content address: a digest of the program structure,
 * the trace behaviour seed, and every CampaignConfig field that can
 * influence a sample's bytes — machine, runner/noise protocol, layout
 * seed range and escalation shape included.
 *
 * The program is bound via trace::programStructureDigest — the
 * exhaustive every-field digest — not just the trace-file checksum,
 * because programChecksum omits behaviour- and layout-determining
 * fields (branch bias/period/history/load-dependence, store vs load,
 * strides and churn windows, extra exec cycles, alignment, authored
 * link order). Two profiles differing only in such knobs must never
 * share a cache entry.
 *
 * Deliberately excluded: `jobs` and `batchLanes` (the executor
 * guarantees byte-identical samples at any worker count and any lane
 * grouping, so serial, parallel and batched runs share cache entries)
 * and `storeDir` (where the cache lives cannot affect what it caches).
 */
u64 campaignKey(const trace::Program &prog, u64 behaviour_seed,
                const interferometry::CampaignConfig &cfg);

/** One persisted batch of contiguous samples. */
struct BatchInfo
{
    u32 first = 0;    ///< Index of the batch's first layout.
    u32 count = 0;    ///< Number of samples in the batch.
    u64 checksum = 0; ///< samplesChecksum of the payload.
};

/**
 * The persisted artifacts of one campaign key.
 *
 * Opening a store validates the manifest (magic, format version, key
 * binding, manifest digest, batch contiguity) and fatal()s on any
 * corruption; loadSamples() additionally validates every batch file
 * against the manifest and its own payload checksum. Append order is
 * the only write protocol: appendBatch(first, ...) requires
 * first == storedCount().
 *
 * Concurrency: opening and loading are lockless (committed files are
 * immutable and renames are atomic), but the first appendBatch takes an
 * exclusive advisory flock on the key directory, held for the store's
 * lifetime. A second concurrent writer on the same key fails fast with
 * a clear error instead of interleaving writes, and a writer whose
 * entry changed on disk between open and first append (a racing
 * campaign that finished first) refuses to clobber it.
 */
class CampaignStore
{
  public:
    /**
     * Open (creating directories as needed) the store for @p key under
     * @p root. Reads and validates the manifest if one exists.
     */
    CampaignStore(const std::string &root, u64 key);

    /** Releases the write lock, if held. */
    ~CampaignStore();

    CampaignStore(const CampaignStore &) = delete;
    CampaignStore &operator=(const CampaignStore &) = delete;

    u64 key() const { return key_; }

    /** This key's directory under the store root. */
    const std::string &dir() const { return dir_; }

    /** Contiguous samples available, i.e. the resume point. */
    u32 storedCount() const { return storedCount_; }

    const std::vector<BatchInfo> &batches() const { return batches_; }

    /**
     * Load all persisted samples (layouts [0, storedCount())),
     * verifying every batch; fatal() on corruption.
     */
    std::vector<core::Measurement> loadSamples() const;

    /**
     * Persist one batch atomically; requires first == storedCount().
     * The batch file lands (tmp + rename) before the manifest that
     * indexes it, so a crash between the two leaves a valid store.
     */
    void appendBatch(u32 first,
                     const std::vector<core::Measurement> &samples);

    /** @{ On-disk paths (exposed for tools and tests). */
    std::string manifestPath() const;
    std::string batchPath(u32 first) const;
    /** @} */

  private:
    void readManifest();
    void writeManifest() const;
    void acquireWriteLock();

    std::string dir_;
    u64 key_;
    std::vector<BatchInfo> batches_;
    u32 storedCount_ = 0;
    int writeLockFd_ = -1; ///< flock fd; -1 until the first append.
};

} // namespace interf::store

#endif // INTERF_STORE_STORE_HH
