#include "store/serialize.hh"

#include <istream>
#include <ostream>
#include <type_traits>

#include "util/digest.hh"

namespace interf::store
{

namespace
{

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

/**
 * Apply @p fn to every field of @p m in the canonical order. Writer,
 * reader and checksum all walk the same list, so they cannot drift
 * apart when Measurement grows a field.
 */
template <typename M, typename Fn>
void
forEachField(M &m, Fn &&fn)
{
    fn(m.layoutSeed);
    fn(m.cpi);
    fn(m.mpki);
    fn(m.l1iMpki);
    fn(m.l1dMpki);
    fn(m.l2Mpki);
    fn(m.btbMpki);
    fn(m.cycles);
    fn(m.instructions);
    fn(m.condBranches);
    fn(m.mispredicts);
    fn(m.l1iMisses);
    fn(m.l1dMisses);
    fn(m.l2Misses);
    fn(m.btbMisses);
}

} // anonymous namespace

void
writeMeasurement(std::ostream &os, const core::Measurement &m)
{
    forEachField(m, [&os](const auto &field) { writePod(os, field); });
}

core::Measurement
readMeasurement(std::istream &is)
{
    core::Measurement m;
    forEachField(m, [&is](auto &field) { readPod(is, field); });
    return m;
}

void
writeSamples(std::ostream &os,
             const std::vector<core::Measurement> &samples)
{
    for (const auto &m : samples)
        writeMeasurement(os, m);
}

std::vector<core::Measurement>
readSamples(std::istream &is, u32 count)
{
    std::vector<core::Measurement> samples;
    samples.reserve(count);
    for (u32 i = 0; i < count; ++i)
        samples.push_back(readMeasurement(is));
    return samples;
}

u64
samplesChecksum(const std::vector<core::Measurement> &samples)
{
    Digest d;
    d.mix(samples.size());
    for (const auto &m : samples) {
        forEachField(m, [&d](const auto &field) {
            using Field = std::remove_cvref_t<decltype(field)>;
            if constexpr (std::is_same_v<Field, double>)
                d.mixDouble(field);
            else
                d.mix(static_cast<u64>(field));
        });
    }
    return d.value();
}

} // namespace interf::store
