#include "store/store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "store/format.hh"
#include "store/serialize.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "trace/io.hh"
#include "util/digest.hh"
#include "util/logging.hh"
#include "verify/verify.hh"

namespace interf::store
{

namespace format
{

u64
manifestDigest(u64 key, const std::vector<BatchInfo> &batches)
{
    Digest d;
    d.mix(kManifestMagic);
    d.mix(kFormatVersion);
    d.mix(key);
    d.mix(batches.size());
    for (const auto &b : batches) {
        d.mix(b.first);
        d.mix(b.count);
        d.mix(b.checksum);
    }
    return d.value();
}

namespace
{

/** fsync @p path (a regular file or a directory) or die. */
void
syncPath(const std::string &path, bool directory)
{
    int fd = ::open(path.c_str(),
                    directory ? (O_RDONLY | O_DIRECTORY)
                              : (O_RDONLY | O_CLOEXEC));
    const bool ok = fd >= 0 && ::fsync(fd) == 0;
    if (fd >= 0)
        ::close(fd);
    if (!ok)
        fatal("cannot fsync store %s '%s'",
              directory ? "directory" : "file", path.c_str());
}

} // anonymous namespace

/**
 * Durably rename @p tmp onto @p path; the POSIX rename is atomic. The
 * temp file is fsynced before the rename and @p dir after it, so a
 * power loss can never make the rename durable while the contents are
 * not — which would brick the store with a permanently-empty artifact.
 */
void
commitFile(const std::string &tmp, const std::string &path,
           const std::string &dir)
{
    syncPath(tmp, false);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot commit store file '%s'", path.c_str());
    syncPath(dir, true);
}

/** A per-process unique temp sibling of @p path (crash leftovers of
 *  other processes can then never be half-overwritten). */
std::string
tmpPathFor(const std::string &path)
{
    return path + strprintf(".tmp.%ld", static_cast<long>(::getpid()));
}

void
mixMachineConfig(Digest &d, const core::MachineConfig &m)
{
    d.mixString(m.name);
    d.mix(m.width);
    d.mix(m.frontendDepth);
    d.mix(m.robSize);
    d.mix(m.l1Latency);
    d.mix(m.l2Latency);
    d.mix(m.memLatency);
    d.mix(m.maxMlp);
    d.mixString(m.predictorSpec);
    d.mix(m.btbSets);
    d.mix(m.btbWays);
    d.mix(m.rasDepth);
    d.mix(m.misfetchPenalty);
    for (const auto *c :
         {&m.hierarchy.l1i, &m.hierarchy.l1d, &m.hierarchy.l2}) {
        d.mixString(c->name);
        d.mix(c->sizeBytes);
        d.mix(c->assoc);
        d.mix(c->lineBytes);
        d.mix(static_cast<u64>(c->replacement));
    }
    d.mixBool(m.hierarchy.nextLinePrefetch);
    d.mixDouble(m.warmupFraction);
}

void
mixRunnerConfig(Digest &d, const core::RunnerConfig &r)
{
    d.mix(r.runsPerGroup);
    d.mixDouble(r.noise.jitterSigma);
    d.mixDouble(r.noise.spikeProb);
    d.mixDouble(r.noise.spikeMax);
    d.mixBool(r.noise.quiescent);
}

} // namespace format

namespace
{

using format::commitFile;
using format::kBatchMagic;
using format::kFormatVersion;
using format::kManifestMagic;
using format::manifestDigest;
using format::mixMachineConfig;
using format::mixRunnerConfig;
using format::readPod;
using format::tmpPathFor;
using format::writePod;

} // anonymous namespace

u64
campaignKey(const trace::Program &prog, u64 behaviour_seed,
            const interferometry::CampaignConfig &cfg)
{
    Digest d;
    d.mix(kFormatVersion); // A format bump invalidates every entry.
    // The exhaustive digest, not the trace-file checksum: every Program
    // field that can shape the trace or the layout must bind the key
    // (see campaignKey's doc comment).
    d.mix(trace::programStructureDigest(prog));
    d.mix(behaviour_seed);
    d.mix(cfg.instructionBudget);
    d.mix(cfg.initialLayouts);
    d.mix(cfg.escalationStep);
    d.mix(cfg.maxLayouts);
    d.mixDouble(cfg.alpha);
    d.mixDouble(cfg.minMpkiCv);
    d.mixBool(cfg.randomizeHeap);
    d.mixBool(cfg.physicalPages);
    d.mix(cfg.layoutSeedBase);
    mixMachineConfig(d, cfg.machine);
    mixRunnerConfig(d, cfg.runner);
    // cfg.jobs, cfg.batchLanes and cfg.storeDir are intentionally NOT
    // mixed: none can change a sample's bytes (see campaignKey's doc
    // comment).
    return d.value();
}

CampaignStore::CampaignStore(const std::string &root, u64 key)
    : key_(key)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(root) / digestHex(key);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("cannot create store directory '%s': %s",
              dir.string().c_str(), ec.message().c_str());
    dir_ = dir.string();
    // Opt-in trust boundary (INTERF_VERIFY=1, not Debug by default:
    // the deep pass re-reads every batch, and campaigns open stores
    // constantly). Corrupt-on-disk is a user-environment problem, so
    // fatal() — the fail-closed read below would do the same, but the
    // verifier reports every problem in the entry first.
    if (verify::verifyEnvRequested()) {
        auto result = verify::verifyStoreEntry(root, key, true);
        if (!result.ok()) {
            for (const auto &d : result.diagnostics())
                warn("%s", d.text().c_str());
            fatal("store entry '%s' failed verification: %s",
                  dir_.c_str(), result.summary().c_str());
        }
    }
    readManifest();
}

CampaignStore::~CampaignStore()
{
    if (writeLockFd_ >= 0)
        ::close(writeLockFd_); // Releases the flock.
}

void
CampaignStore::acquireWriteLock()
{
    if (writeLockFd_ >= 0)
        return;
    const std::string path = dir_ + "/.lock";
    int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0)
        fatal("cannot open store lock '%s'", path.c_str());
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        fatal("store entry '%s' is locked by another process; two "
              "campaigns cannot write the same store entry concurrently",
              dir_.c_str());
    }
    writeLockFd_ = fd;
    // Now that we are the exclusive writer, make sure no racing
    // campaign extended the entry between our (lockless) open and this
    // first write — appending from a stale view would clobber its
    // batches with differently-sized ones the manifest no longer
    // describes.
    const u64 opened = manifestDigest(key_, batches_);
    readManifest();
    if (manifestDigest(key_, batches_) != opened)
        fatal("store entry '%s' changed on disk since it was opened "
              "(a concurrent campaign wrote it); re-run to resume from "
              "its samples",
              dir_.c_str());
}

std::string
CampaignStore::manifestPath() const
{
    return dir_ + "/manifest.bin";
}

std::string
CampaignStore::batchPath(u32 first) const
{
    return dir_ + strprintf("/batch-%08u.bin", first);
}

void
CampaignStore::readManifest()
{
    std::ifstream is(manifestPath(), std::ios::binary);
    if (!is)
        return; // No manifest yet: an empty (cold) store.

    u64 magic = 0, key = 0;
    u32 version = 0, n_batches = 0;
    readPod(is, magic);
    readPod(is, version);
    if (!is || magic != kManifestMagic)
        fatal("'%s' is not a store manifest (bad magic)",
              manifestPath().c_str());
    if (version != kFormatVersion)
        fatal("store manifest '%s' has unsupported format version %u",
              manifestPath().c_str(), version);
    readPod(is, key);
    readPod(is, n_batches);
    if (!is)
        fatal("truncated store manifest '%s'", manifestPath().c_str());
    if (key != key_)
        fatal("store manifest '%s' belongs to a different campaign "
              "(key mismatch)",
              manifestPath().c_str());

    // Bound the batch table against the file size before allocating:
    // a corrupt count must fail closed, not bad_alloc trying to
    // reserve up to 64 GiB of entries.
    constexpr u64 kHeaderBytes = format::kManifestHeaderBytes;
    constexpr u64 kEntryBytes = format::kManifestEntryBytes;
    constexpr u64 kSealBytes = format::kManifestSealBytes;
    std::error_code size_ec;
    const u64 file_size =
        std::filesystem::file_size(manifestPath(), size_ec);
    if (size_ec || file_size < kHeaderBytes + kSealBytes ||
        n_batches > (file_size - kHeaderBytes - kSealBytes) / kEntryBytes)
        fatal("truncated store manifest '%s' (batch table overruns "
              "the file)",
              manifestPath().c_str());

    std::vector<BatchInfo> batches(n_batches);
    for (auto &b : batches) {
        readPod(is, b.first);
        readPod(is, b.count);
        readPod(is, b.checksum);
    }
    u64 digest = 0;
    readPod(is, digest);
    if (!is)
        fatal("truncated store manifest '%s'", manifestPath().c_str());
    if (digest != manifestDigest(key_, batches))
        fatal("store manifest '%s' is corrupt (digest mismatch)",
              manifestPath().c_str());

    u32 next = 0;
    for (const auto &b : batches) {
        if (b.first != next || b.count == 0)
            fatal("store manifest '%s' batches are not contiguous",
                  manifestPath().c_str());
        next += b.count;
    }
    batches_ = std::move(batches);
    storedCount_ = next;
}

void
CampaignStore::writeManifest() const
{
    std::string tmp = tmpPathFor(manifestPath());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '%s' for writing", tmp.c_str());
        writePod(os, kManifestMagic);
        writePod(os, kFormatVersion);
        writePod(os, key_);
        writePod(os, static_cast<u32>(batches_.size()));
        for (const auto &b : batches_) {
            writePod(os, b.first);
            writePod(os, b.count);
            writePod(os, b.checksum);
        }
        writePod(os, manifestDigest(key_, batches_));
        os.flush();
        if (!os)
            fatal("store manifest write to '%s' failed", tmp.c_str());
    }
    commitFile(tmp, manifestPath(), dir_);
}

std::vector<core::Measurement>
CampaignStore::loadSamples() const
{
    INTERF_SPAN("store.load");
    std::vector<core::Measurement> samples;
    samples.reserve(storedCount_);
    for (const auto &entry : batches_) {
        std::string path = batchPath(entry.first);
        std::ifstream is(path, std::ios::binary);
        if (!is)
            fatal("store batch '%s' is missing", path.c_str());

        u64 magic = 0, key = 0, checksum = 0;
        u32 version = 0, first = 0, count = 0;
        readPod(is, magic);
        readPod(is, version);
        if (!is || magic != kBatchMagic)
            fatal("'%s' is not a store batch (bad magic)", path.c_str());
        if (version != kFormatVersion)
            fatal("store batch '%s' has unsupported format version %u",
                  path.c_str(), version);
        readPod(is, key);
        readPod(is, first);
        readPod(is, count);
        readPod(is, checksum);
        if (!is)
            fatal("truncated store batch '%s'", path.c_str());
        if (key != key_)
            fatal("store batch '%s' belongs to a different campaign "
                  "(key mismatch)",
                  path.c_str());
        if (first != entry.first || count != entry.count ||
            checksum != entry.checksum)
            fatal("store batch '%s' does not match its manifest entry",
                  path.c_str());

        auto batch = readSamples(is, count);
        if (!is)
            fatal("truncated store batch '%s'", path.c_str());
        if (samplesChecksum(batch) != entry.checksum)
            fatal("store batch '%s' payload checksum mismatch "
                  "(corrupt samples)",
                  path.c_str());
        samples.insert(samples.end(), batch.begin(), batch.end());
    }
    return samples;
}

void
CampaignStore::appendBatch(u32 first,
                           const std::vector<core::Measurement> &samples)
{
    if (samples.empty())
        return;
    INTERF_SPAN("store.commit");
    const u64 commit_start = telemetry::nowNs();
    // Exclusive writer for the rest of this store's lifetime; may
    // fatal() on a concurrent or raced writer.
    acquireWriteLock();
    // Contiguity is the caller's contract; violating it is a bug, not
    // a user error.
    if (first != storedCount_)
        panic("store append at layout %u, expected %u (non-contiguous)",
              first, storedCount_);

    BatchInfo entry;
    entry.first = first;
    entry.count = static_cast<u32>(samples.size());
    entry.checksum = samplesChecksum(samples);

    std::string path = batchPath(first);
    std::string tmp = tmpPathFor(path);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '%s' for writing", tmp.c_str());
        writePod(os, kBatchMagic);
        writePod(os, kFormatVersion);
        writePod(os, key_);
        writePod(os, entry.first);
        writePod(os, entry.count);
        writePod(os, entry.checksum);
        writeSamples(os, samples);
        os.flush();
        if (!os)
            fatal("store batch write to '%s' failed", tmp.c_str());
    }
    // Batch before manifest: a crash in between leaves an unindexed
    // batch file that the next run simply overwrites.
    commitFile(tmp, path, dir_);
    batches_.push_back(entry);
    writeManifest();
    storedCount_ += entry.count;
    INTERF_TELEM_COUNT("store.batches_committed", 1);
    INTERF_TELEM_COUNT("store.samples_committed", entry.count);
    INTERF_TELEM_HISTOGRAM(
        "store.commit_ms",
        (std::vector<u64>{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}),
        (telemetry::nowNs() - commit_start) / 1'000'000);
}

} // namespace interf::store
