#include "store/fitness.hh"

#include <filesystem>
#include <fstream>

#include "store/format.hh"
#include "store/serialize.hh"
#include "trace/io.hh"
#include "util/digest.hh"
#include "util/logging.hh"

namespace interf::store
{

namespace
{

using format::commitFile;
using format::kFitnessMagic;
using format::kFormatVersion;
using format::readPod;
using format::tmpPathFor;
using format::writePod;

} // anonymous namespace

u64
fitnessBaseKey(const trace::Program &prog, u64 behaviour_seed,
               u64 instruction_budget, bool physical_pages, u64 page_seed,
               bool randomize_heap, const core::MachineConfig &machine,
               const core::RunnerConfig &runner)
{
    Digest d;
    d.mix(kFitnessMagic); // Never collides with a campaignKey.
    d.mix(kFormatVersion);
    d.mix(trace::programStructureDigest(prog));
    d.mix(behaviour_seed);
    d.mix(instruction_budget);
    d.mixBool(physical_pages);
    d.mix(page_seed);
    d.mixBool(randomize_heap);
    format::mixMachineConfig(d, machine);
    format::mixRunnerConfig(d, runner);
    return d.value();
}

FitnessStore::FitnessStore(const std::string &root, u64 base_key)
    : baseKey_(base_key)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(root) / ("opt-" + digestHex(base_key));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("cannot create fitness store directory '%s': %s",
              dir.string().c_str(), ec.message().c_str());
    dir_ = dir.string();
}

std::string
FitnessStore::entryPath(u64 cand_digest) const
{
    return dir_ + "/fit-" + digestHex(cand_digest) + ".bin";
}

std::optional<core::Measurement>
FitnessStore::load(u64 cand_digest) const
{
    const std::string path = entryPath(cand_digest);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt; // Never measured: a miss, not an error.

    u64 magic = 0, key = 0, digest = 0, checksum = 0;
    u32 version = 0;
    readPod(is, magic);
    readPod(is, version);
    if (!is || magic != kFitnessMagic)
        fatal("'%s' is not a fitness entry (bad magic)", path.c_str());
    if (version != kFormatVersion)
        fatal("fitness entry '%s' has unsupported format version %u",
              path.c_str(), version);
    readPod(is, key);
    readPod(is, digest);
    readPod(is, checksum);
    if (!is)
        fatal("truncated fitness entry '%s'", path.c_str());
    if (key != baseKey_)
        fatal("fitness entry '%s' belongs to a different search "
              "(base key mismatch)",
              path.c_str());
    if (digest != cand_digest)
        fatal("fitness entry '%s' names the wrong candidate "
              "(digest mismatch)",
              path.c_str());

    core::Measurement m = readMeasurement(is);
    if (!is)
        fatal("truncated fitness entry '%s'", path.c_str());
    if (samplesChecksum({m}) != checksum)
        fatal("fitness entry '%s' payload checksum mismatch "
              "(corrupt measurement)",
              path.c_str());
    return m;
}

void
FitnessStore::save(u64 cand_digest, const core::Measurement &m) const
{
    const std::string path = entryPath(cand_digest);
    const std::string tmp = tmpPathFor(path);
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '%s' for writing", tmp.c_str());
        writePod(os, kFitnessMagic);
        writePod(os, kFormatVersion);
        writePod(os, baseKey_);
        writePod(os, cand_digest);
        writePod(os, samplesChecksum({m}));
        writeMeasurement(os, m);
        os.flush();
        if (!os)
            fatal("fitness entry write to '%s' failed", tmp.c_str());
    }
    commitFile(tmp, path, dir_);
}

} // namespace interf::store
