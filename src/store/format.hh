/**
 * @file
 * On-disk format constants of the campaign artifact store.
 *
 * Shared between the store's fail-closed read/write path (store.cc)
 * and the StoreVerifier pass (verify/store.cc), which re-parses the
 * same bytes leniently so a lint tool can report *every* problem in a
 * corrupt entry instead of dying at the first. Keeping the constants
 * in one place means a format change cannot drift between the two
 * readers; the layouts themselves are documented in store.hh.
 */

#ifndef INTERF_STORE_FORMAT_HH
#define INTERF_STORE_FORMAT_HH

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::core
{
struct MachineConfig;
struct RunnerConfig;
} // namespace interf::core

namespace interf
{
class Digest;
}

namespace interf::store
{

struct BatchInfo;

namespace format
{

inline constexpr u64 kManifestMagic = 0x494e54465253544dULL; // INTFRSTM
inline constexpr u64 kBatchMagic = 0x494e544652535442ULL;    // INTFRSTB
inline constexpr u64 kFitnessMagic = 0x494e544652535446ULL;  // INTFRSTF
inline constexpr u32 kFormatVersion = 1;

/** @{ Fixed framing sizes (bytes). */
inline constexpr u64 kManifestHeaderBytes = 8 + 4 + 8 + 4;
inline constexpr u64 kManifestEntryBytes = 4 + 4 + 8;
inline constexpr u64 kManifestSealBytes = 8;
inline constexpr u64 kBatchHeaderBytes = 8 + 4 + 8 + 4 + 4 + 8;
/** @} */

template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::istream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

/** Digest that seals a manifest: header plus every batch entry. */
u64 manifestDigest(u64 key, const std::vector<BatchInfo> &batches);

/** @{
 * Mix every timing-relevant field of a config into a store key. Both
 * campaignKey (store.cc) and fitnessBaseKey (fitness.cc) must bind the
 * same machine/runner fields, so the mixers live here rather than being
 * duplicated per key.
 */
void mixMachineConfig(Digest &d, const core::MachineConfig &m);
void mixRunnerConfig(Digest &d, const core::RunnerConfig &r);
/** @} */

/** @{
 * Durable-write discipline shared by every store artifact: write to a
 * per-process temp sibling, fsync, rename atomically onto the final
 * path, fsync the directory. See commitFile's comment in store.cc.
 */
std::string tmpPathFor(const std::string &path);
void commitFile(const std::string &tmp, const std::string &path,
                const std::string &dir);
/** @} */

} // namespace format

} // namespace interf::store

#endif // INTERF_STORE_FORMAT_HH
