/**
 * @file
 * Binary serialization of measurement samples.
 *
 * Measurements are written field by field in a fixed order rather than
 * as raw structs, so the on-disk format is independent of padding and
 * of future reordering of the Measurement definition; any layout change
 * that matters must be an explicit format-version bump. samplesChecksum
 * digests exactly the serialized fields, so a store can verify a
 * payload without trusting anything but the bytes it just read.
 */

#ifndef INTERF_STORE_SERIALIZE_HH
#define INTERF_STORE_SERIALIZE_HH

#include <iosfwd>
#include <vector>

#include "core/runner.hh"

namespace interf::store
{

/** Write one measurement's fields in canonical order. */
void writeMeasurement(std::ostream &os, const core::Measurement &m);

/** Read one measurement; caller checks the stream state afterwards. */
core::Measurement readMeasurement(std::istream &is);

/** Write a sample vector (fields only; framing is the store's job). */
void writeSamples(std::ostream &os,
                  const std::vector<core::Measurement> &samples);

/**
 * Read @p count measurements. The stream's fail state is the only error
 * signal: a short read leaves it failed and the result unusable.
 */
std::vector<core::Measurement> readSamples(std::istream &is, u32 count);

/** Order-sensitive digest of every field of every sample. */
u64 samplesChecksum(const std::vector<core::Measurement> &samples);

} // namespace interf::store

#endif // INTERF_STORE_SERIALIZE_HH
