/**
 * @file
 * Content-addressed fitness cache for the layout optimizer.
 *
 * The CampaignStore persists a *contiguous prefix* of seed-indexed
 * layouts — the right shape for campaigns, useless for a search that
 * visits an unpredictable set of candidate layouts. The FitnessStore is
 * the random-access sibling: one checksummed file per candidate, named
 * by the candidate's content digest, under a directory named by the
 * base key (everything that can change a measurement's bytes *except*
 * the layout: program structure, behaviour seed, instruction budget,
 * page mapping, machine and runner configs).
 *
 * Because a candidate's measurement noise seed is derived from the same
 * content digest, the stored Measurement is a pure function of
 * (base key, candidate digest) — so concurrent or repeated writers
 * always race to write identical bytes, and the usual tmp+rename commit
 * makes the race harmless. Reads fail closed exactly like the campaign
 * store: a corrupt entry is fatal, never silently re-measured.
 */

#ifndef INTERF_STORE_FITNESS_HH
#define INTERF_STORE_FITNESS_HH

#include <optional>
#include <string>

#include "core/runner.hh"

namespace interf::trace
{
class Program;
}

namespace interf::store
{

/**
 * Everything that shapes a fitness measurement other than the candidate
 * layout itself. Two optimizer runs (or an optimizer and a later
 * verification pass) share cache entries iff their base keys match.
 * Execution knobs (jobs, batch lanes, proposals per step, strategy,
 * search seed) are intentionally excluded: none can change a candidate
 * measurement's bytes.
 */
u64 fitnessBaseKey(const trace::Program &prog, u64 behaviour_seed,
                   u64 instruction_budget, bool physical_pages,
                   u64 page_seed, bool randomize_heap,
                   const core::MachineConfig &machine,
                   const core::RunnerConfig &runner);

/**
 * On-disk cache mapping candidate content digests to Measurements.
 *
 * Layout on disk: `<root>/opt-<hex(baseKey)>/fit-<hex(digest)>.bin`,
 * each file `magic, version, baseKey, digest, checksum, measurement`.
 * Writes use the store-wide tmp+fsync+rename+fsync discipline; reads
 * verify every frame field and the payload checksum and fail closed.
 */
class FitnessStore
{
  public:
    /** Open (creating if needed) the entry directory for @p base_key
     *  under @p root. Never loads anything eagerly. */
    FitnessStore(const std::string &root, u64 base_key);

    /** The entry directory this cache reads and writes. */
    const std::string &dir() const { return dir_; }

    /** The measurement cached for @p cand_digest, or nullopt if the
     *  candidate was never persisted. Corrupt entries are fatal. */
    std::optional<core::Measurement> load(u64 cand_digest) const;

    /** Durably persist @p m as the measurement of @p cand_digest.
     *  Idempotent: racing writers of the same digest write identical
     *  bytes, and the atomic rename lets the last one win harmlessly. */
    void save(u64 cand_digest, const core::Measurement &m) const;

  private:
    std::string entryPath(u64 cand_digest) const;

    u64 baseKey_;
    std::string dir_;
};

} // namespace interf::store

#endif // INTERF_STORE_FITNESS_HH
