#include "workloads/builder.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace interf::workloads
{

using trace::BasicBlock;
using trace::BranchPattern;
using trace::DataRegion;
using trace::MemPattern;
using trace::MemRef;
using trace::OpClass;
using trace::Procedure;
using trace::Program;
using trace::RegionKind;
using trace::StaticBranch;

namespace
{

/** Per-tier region ids created for the profile's three working sets. */
struct Tiers
{
    std::vector<u32> l1;
    std::vector<u32> l2;
    std::vector<u32> mem;
};

Tiers
makeRegions(Program &prog, const WorkloadProfile &p, Rng &rng)
{
    Tiers tiers;
    auto make_tier = [&](u64 total, std::vector<u32> &out,
                         u32 count_override = 0) {
        if (total == 0)
            return;
        u32 count = count_override ? count_override : p.regionsPerTier;
        u64 each = std::max<u64>(total / count, 1024);
        for (u32 i = 0; i < count; ++i) {
            RegionKind kind = rng.bernoulli(p.heapFraction)
                                  ? RegionKind::Heap
                                  : RegionKind::Global;
            // Jitter sizes so regions are not all identical, keeping the
            // tier total roughly as requested.
            u64 size = each;
            double jitter = 0.7 + 0.6 * rng.nextDouble();
            size = std::max<u64>(
                1024, static_cast<u64>(static_cast<double>(size) * jitter));
            size = (size + 63) & ~u64{63}; // line-align sizes
            out.push_back(prog.addRegion(kind, size));
        }
    };
    make_tier(p.l1WorkingSet, tiers.l1);
    make_tier(p.l2WorkingSet, tiers.l2, p.regionsL2Tier);
    if (p.fracMem > 0.0)
        make_tier(p.memWorkingSet, tiers.mem);
    return tiers;
}

/** Draw a block's instruction count around the profile mean. */
u16
drawInsts(const WorkloadProfile &p, Rng &rng)
{
    u32 mean = p.meanInstsPerBlock;
    u32 lo = std::max<u32>(1, mean / 2);
    u32 hi = mean + mean / 2 + 1;
    return static_cast<u16>(rng.uniformRange(lo, hi));
}

/** Total byte size for a block with n instructions (x86-ish 2-6 B). */
u32
drawBytes(u16 n_insts, Rng &rng)
{
    u32 bytes = 0;
    for (u16 i = 0; i < n_insts; ++i)
        bytes += static_cast<u32>(rng.uniformRange(2, 6));
    return bytes;
}

/** Pick a branch behaviour pattern from the profile mix. */
BranchPattern
drawPattern(const WorkloadProfile &p, Rng &rng)
{
    double u = rng.nextDouble();
    if ((u -= p.fracBiased) < 0)
        return BranchPattern::Biased;
    if ((u -= p.fracPeriodic) < 0)
        return BranchPattern::Periodic;
    if ((u -= p.fracHistory) < 0)
        return BranchPattern::HistoryParity;
    if ((u -= p.fracRandom) < 0)
        return BranchPattern::Random;
    return BranchPattern::Biased; // remainder defaults to biased
}

void
fillPatternParams(StaticBranch &br, const WorkloadProfile &p, Rng &rng)
{
    switch (br.pattern) {
      case BranchPattern::Biased:
        br.takenProb = static_cast<float>(
            p.biasMin + (p.biasMax - p.biasMin) * rng.nextDouble());
        break;
      case BranchPattern::Periodic:
        br.period = static_cast<u16>(
            rng.uniformRange(p.periodMin, p.periodMax));
        break;
      case BranchPattern::HistoryParity:
        br.historyBits = static_cast<u8>(
            rng.uniformRange(p.historyBitsMin, p.historyBitsMax));
        break;
      default:
        break;
    }
}

/** Populate a block's memory references and bump the global site id. */
void
addMemRefs(BasicBlock &bb, const WorkloadProfile &p, const Tiers &tiers,
           Rng &rng, u32 &next_gen_id)
{
    double tier_total = p.fracL1 + p.fracL2 + p.fracMem;
    auto draw_region = [&](bool &is_mem_tier) -> u32 {
        is_mem_tier = false;
        double u = rng.nextDouble() * std::max(tier_total, 1e-9);
        if ((u -= p.fracL1) < 0 || tiers.l2.empty())
            return tiers.l1[rng.uniformInt(tiers.l1.size())];
        if ((u -= p.fracL2) < 0 || tiers.mem.empty())
            return tiers.l2[rng.uniformInt(tiers.l2.size())];
        is_mem_tier = true;
        return tiers.mem[rng.uniformInt(tiers.mem.size())];
    };

    u16 n_loads = 0, n_stores = 0;
    for (u16 i = 0; i < bb.nInsts; ++i) {
        if (rng.bernoulli(p.loadsPerInst))
            ++n_loads;
        else if (rng.bernoulli(p.storesPerInst))
            ++n_stores;
    }
    for (u16 i = 0; i < n_loads + n_stores; ++i) {
        MemRef ref;
        ref.isStore = i >= n_loads;
        bool is_mem_tier = false;
        ref.regionId = draw_region(is_mem_tier);
        bool is_l2_tier = !is_mem_tier &&
                          !tiers.l2.empty() &&
                          ref.regionId >= tiers.l2.front() &&
                          ref.regionId <= tiers.l2.back();
        if (is_mem_tier) {
            ref.pattern = MemPattern::Random;
        } else {
            double u = rng.nextDouble();
            if (u < 0.4 && !(is_l2_tier && p.l2TierWide)) {
                ref.pattern = MemPattern::Stride;
                ref.stride = static_cast<u32>(rng.uniformRange(1, 8)) * 8;
            } else if (is_l2_tier && p.l2TierWide) {
                ref.pattern = MemPattern::HotWide;
            } else {
                ref.pattern = MemPattern::Hot;
            }
        }
        ref.genId = next_gen_id++;
        bb.memRefs.push_back(ref);
    }
}

/**
 * Build one non-main procedure body.
 *
 * @param proc_id This procedure's id.
 * @param callee_lo/callee_hi Range of legal callee ids (DAG: > proc_id);
 *        empty range disables calls.
 */
Procedure
buildProcedure(const WorkloadProfile &p, u32 proc_id, u32 callee_lo,
               u32 callee_hi, const Tiers &tiers, Rng &rng,
               u32 &next_gen_id)
{
    Procedure proc;
    proc.name = strprintf("proc_%03u", proc_id);

    u32 mean = p.meanBlocksPerProc;
    u32 n_blocks = static_cast<u32>(
        rng.uniformRange(std::max<u32>(3, mean / 2), mean + mean / 2));

    // Plan loop ranges first (disjoint, non-nested). Calls are kept
    // outside loop bodies so the expected dynamic call tree stays
    // subcritical and trace lengths remain bounded; loop nesting in the
    // workload comes from calls *between* procedures instead.
    struct Loop
    {
        u32 header;
        u32 backedge;
        u16 period;
    };
    std::vector<Loop> loops;
    {
        u32 cursor = 1;
        u32 want = static_cast<u32>(rng.uniformRange(1, 2));
        while (loops.size() < want && cursor + 3 <= n_blocks - 1) {
            u32 header = cursor + static_cast<u32>(rng.uniformInt(2));
            u32 body = 1 + static_cast<u32>(rng.uniformInt(3));
            u32 backedge = header + body;
            if (backedge >= n_blocks - 1)
                break;
            u16 period = static_cast<u16>(
                rng.uniformRange(p.periodMin, p.periodMax));
            loops.push_back({header, backedge, period});
            cursor = backedge + 2;
        }
    }
    auto loop_ending_at = [&](u32 b) -> const Loop * {
        for (const auto &l : loops)
            if (l.backedge == b)
                return &l;
        return nullptr;
    };
    auto in_loop_body = [&](u32 b) {
        for (const auto &l : loops)
            if (b >= l.header && b < l.backedge)
                return true;
        return false;
    };

    for (u32 b = 0; b < n_blocks; ++b) {
        BasicBlock bb;
        bb.nInsts = drawInsts(p, rng);
        bb.bytes = drawBytes(bb.nInsts, rng);
        double extra = rng.exponential(
            1.0 / std::max(p.meanExtraExecCycles, 1e-6));
        bb.extraExecCycles = static_cast<u8>(std::min(extra, 20.0));
        addMemRefs(bb, p, tiers, rng, next_gen_id);

        StaticBranch &br = bb.branch;
        bool is_last = (b + 1 == n_blocks);
        const Loop *loop = loop_ending_at(b);
        if (is_last) {
            br.kind = OpClass::Return;
        } else if (loop != nullptr) {
            br.kind = OpClass::CondBranch;
            br.targetProc = static_cast<u16>(proc_id);
            br.targetBlock = static_cast<u16>(loop->header);
            br.pattern = BranchPattern::Periodic;
            br.period = loop->period;
        } else {
            double u = rng.nextDouble();
            bool in_body = in_loop_body(b);
            bool can_call = callee_lo < callee_hi && !in_body;
            bool can_indirect = b + 3 < n_blocks && !in_body;
            if (can_call && u < p.callDensity) {
                br.kind = OpClass::Call;
                br.targetProc = static_cast<u16>(rng.uniformRange(
                    callee_lo, callee_hi - 1));
                br.targetBlock = 0;
            } else if (can_indirect &&
                       u < p.callDensity + p.indirectDensity) {
                br.kind = OpClass::IndirectBranch;
                u32 max_targets =
                    std::min<u32>(5, n_blocks - 1 - (b + 1));
                u32 n_targets = static_cast<u32>(
                    rng.uniformRange(2, std::max<u32>(2, max_targets)));
                br.indirectTargets = static_cast<u8>(n_targets);
                br.targetProc = static_cast<u16>(proc_id);
                br.targetBlock = static_cast<u16>(b + 1);
            } else if (u < p.callDensity + p.indirectDensity +
                               p.condFraction) {
                // Forward conditional: taken skips the next block (but
                // never jumps out of an enclosing loop body).
                br.kind = OpClass::CondBranch;
                br.targetProc = static_cast<u16>(proc_id);
                u32 target = std::min(b + 2, n_blocks - 1);
                if (in_body) {
                    for (const auto &l : loops)
                        if (b >= l.header && b < l.backedge)
                            target = std::min(target, l.backedge);
                }
                br.targetBlock = static_cast<u16>(target);
                br.pattern = drawPattern(p, rng);
                fillPatternParams(br, p, rng);
            }
            // else: plain fall-through.
        }
        if (br.isConditional() && bb.loads() > 0) {
            br.dependsOnLoad = rng.bernoulli(p.branchLoadDepProb);
            if (br.dependsOnLoad && rng.bernoulli(p.depLoadSlowTier)) {
                // Route the feeding load to a slow tier so the branch
                // resolves behind a cache miss (the zeusmp/GemsFDTD
                // large-slope mechanism).
                bool to_mem = !tiers.mem.empty();
                const std::vector<u32> &tier = to_mem ? tiers.mem
                                                      : tiers.l2;
                for (auto it = bb.memRefs.rbegin();
                     it != bb.memRefs.rend(); ++it) {
                    if (!it->isStore) {
                        it->regionId =
                            tier[rng.uniformInt(tier.size())];
                        // Mem tier: truly cold (Random). L2 tier:
                        // L1-defeating but L2-resident (Churn), so the
                        // branch resolves behind an L2 access.
                        it->pattern = to_mem ? MemPattern::Random
                                             : MemPattern::Churn;
                        it->churnSpan = p.churnWindow;
                        break;
                    }
                }
            }
        }
        proc.blocks.push_back(std::move(bb));
    }
    return proc;
}

/** Build main: an outer loop of call blocks over the hot procedures. */
Procedure
buildMain(const WorkloadProfile &p, const Tiers &tiers, Rng &rng,
          u32 &next_gen_id)
{
    Procedure main_proc;
    main_proc.name = "main";

    u32 n_calls = std::min<u32>(p.hotProcedures, 24);
    // Entry block.
    {
        BasicBlock bb;
        bb.nInsts = drawInsts(p, rng);
        bb.bytes = drawBytes(bb.nInsts, rng);
        addMemRefs(bb, p, tiers, rng, next_gen_id);
        main_proc.blocks.push_back(std::move(bb));
    }
    // One call block per directly-driven hot procedure.
    for (u32 i = 0; i < n_calls; ++i) {
        BasicBlock bb;
        bb.nInsts = drawInsts(p, rng);
        bb.bytes = drawBytes(bb.nInsts, rng);
        addMemRefs(bb, p, tiers, rng, next_gen_id);
        bb.branch.kind = OpClass::Call;
        bb.branch.targetProc = static_cast<u16>(1 + i);
        bb.branch.targetBlock = 0;
        main_proc.blocks.push_back(std::move(bb));
    }
    // Outer loop back to the first call block.
    {
        BasicBlock bb;
        bb.nInsts = drawInsts(p, rng);
        bb.bytes = drawBytes(bb.nInsts, rng);
        bb.branch.kind = OpClass::CondBranch;
        bb.branch.targetProc = 0;
        bb.branch.targetBlock = 1;
        bb.branch.pattern = BranchPattern::Periodic;
        bb.branch.period = 4; // iterations per main() invocation
        main_proc.blocks.push_back(std::move(bb));
    }
    // Return block.
    {
        BasicBlock bb;
        bb.nInsts = 2;
        bb.bytes = drawBytes(bb.nInsts, rng);
        bb.branch.kind = OpClass::Return;
        main_proc.blocks.push_back(std::move(bb));
    }
    return main_proc;
}

} // anonymous namespace

Program
buildProgram(const WorkloadProfile &p)
{
    p.validate();
    Rng rng(p.structureSeed);
    Program prog;

    Tiers tiers = makeRegions(prog, p, rng);
    u32 next_gen_id = 0;

    // main first (id 0), then hot procedures 1..hot, then cold ones.
    prog.addProcedure(buildMain(p, tiers, rng, next_gen_id));
    for (u32 id = 1; id < p.procedures; ++id) {
        bool hot = id <= p.hotProcedures;
        // DAG calls: hot procedures call hotter-numbered hot procedures;
        // cold procedures never execute, so their call targets just need
        // to be valid (point them at later cold procedures).
        u32 callee_lo = id + 1;
        u32 callee_hi = hot ? std::min(p.hotProcedures + 1, p.procedures)
                            : p.procedures;
        if (callee_lo >= callee_hi) {
            callee_lo = 0;
            callee_hi = 0; // no calls possible
        }
        prog.addProcedure(buildProcedure(p, id, callee_lo, callee_hi,
                                         tiers, rng, next_gen_id));
    }

    // Distribute procedures over object files in a shuffled authored
    // order, interleaving hot and cold code the way real projects do.
    std::vector<u32> order = rng.permutation(p.procedures);
    for (u32 f = 0; f < p.objectFiles; ++f)
        prog.addFile(strprintf("%s_%02u.o", p.name.c_str(), f));
    for (size_t i = 0; i < order.size(); ++i)
        prog.placeInFile(static_cast<u32>(i % p.objectFiles), order[i]);

    prog.validate();
    return prog;
}

} // namespace interf::workloads
