/**
 * @file
 * Behaviour profiles for the synthetic benchmark suite.
 *
 * We cannot ship SPEC CPU 2006, so each of the paper's 23 compiling
 * benchmarks is modeled by a WorkloadProfile: a parameter vector that
 * the ProgramBuilder turns into a concrete Program (code structure,
 * branch-site behaviours, data regions) and that the TraceGenerator
 * turns into a deterministic dynamic trace. The parameters are chosen
 * per benchmark so the interferometry pipeline sees data with the same
 * qualitative structure the paper reports (Table 1 intercepts/slopes,
 * Figure 7 MPKI levels, Figure 6 blame splits).
 */

#ifndef INTERF_WORKLOADS_PROFILE_HH
#define INTERF_WORKLOADS_PROFILE_HH

#include <string>

#include "util/types.hh"

namespace interf::workloads
{

/** All knobs of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;      ///< e.g. "400.perlbench".
    u64 structureSeed = 1; ///< Seeds the static program construction.
    u64 behaviourSeed = 2; ///< Seeds the dynamic trace generation.

    /** @{ Code structure. */
    u32 objectFiles = 12;      ///< Object files on the link line.
    u32 procedures = 60;       ///< Total procedures (incl. main).
    u32 hotProcedures = 24;    ///< Procedures the main loop exercises.
    u32 meanBlocksPerProc = 10;
    u32 meanInstsPerBlock = 5;
    double callDensity = 0.08; ///< P(block terminator is a call).
    double indirectDensity = 0.0; ///< P(block ends in indirect branch).
    /** @} */

    /** @{ Conditional-branch behaviour mix (fractions sum to <= 1;
     *     the remainder of blocks fall through or loop). */
    double condFraction = 0.45;  ///< P(block ends in a cond branch).
    double fracBiased = 0.45;    ///< Of cond sites: fixed-bias.
    double fracPeriodic = 0.30;  ///< Of cond sites: loop-periodic.
    double fracHistory = 0.15;   ///< Of cond sites: history-correlated.
    double fracRandom = 0.10;    ///< Of cond sites: 50/50 noise.
    double biasMin = 0.70;       ///< Biased sites: taken prob range.
    double biasMax = 0.98;
    u32 periodMin = 3;           ///< Periodic sites: period range.
    u32 periodMax = 24;
    u32 historyBitsMin = 3;      ///< HistoryParity sites: depth range.
    u32 historyBitsMax = 10;
    /** P(cond branch's resolution depends on a load in its block) —
     *  drives the benchmark's misprediction penalty (Table 1 slope). */
    double branchLoadDepProb = 0.15;
    /** Of load-dependent branches: P(the feeding load is routed to a
     *  slow tier) — mem tier if the profile has one, else the L2 tier.
     *  This is the zeusmp/GemsFDTD mechanism: mispredictions resolving
     *  behind cache misses, giving slopes far above pipeline depth. */
    double depLoadSlowTier = 0.35;
    /** @} */

    /** @{ Memory behaviour. */
    double loadsPerInst = 0.22;
    double storesPerInst = 0.08;
    u64 l1WorkingSet = 16 << 10;   ///< Hot tier (fits L1D).
    u64 l2WorkingSet = 512 << 10;  ///< Warm tier (fits L2).
    u64 memWorkingSet = 0;         ///< Cold tier (misses L2); 0 = none.
    double fracL1 = 0.87;          ///< Access mix over the three tiers.
    double fracL2 = 0.13;
    double fracMem = 0.0;
    double heapFraction = 0.5;     ///< Fraction of regions heap-allocated.
    u32 regionsPerTier = 8;        ///< Regions each tier is split into.
    u32 regionsL2Tier = 0;         ///< Override for the L2 tier (0 = use
                                   ///< regionsPerTier).
    /** Use wide (half-region) hot sets on the L2 tier, building a
     *  recurring working set near L2 capacity whose conflict misses
     *  depend on physical page placement (the Figure 3(b) mechanism). */
    bool l2TierWide = false;
    /** Window (bytes) of Churn-pattern dependent loads; the default
     *  defeats the L1 but stays L2-resident. Widen past L2 capacity to
     *  create placement-sensitive steady-state L2 misses. */
    u32 churnWindow = 96 << 10;
    /** @} */

    /** @{ Intrinsic ILP: extra dependence-stall cycles per block. */
    double meanExtraExecCycles = 1.0;
    double fpFraction = 0.0; ///< Flavour only (FP vs integer mix).
    /** @} */

    /**
     * Sanity-check ranges (fractions in [0,1], counts nonzero);
     * calls fatal() on an invalid profile since profiles are user input.
     */
    void validate() const;
};

/** A sensible default profile for quick experiments ("toy"). */
WorkloadProfile defaultProfile(const std::string &name = "toy");

} // namespace interf::workloads

#endif // INTERF_WORKLOADS_PROFILE_HH
