#include "workloads/spec.hh"

#include <map>

#include "util/logging.hh"

namespace interf::workloads
{

namespace
{

/**
 * Base profile all suite entries start from; individual benchmarks
 * override the traits that define their character. Seeds derive from
 * the benchmark's position so every benchmark is structurally distinct.
 */
WorkloadProfile
base(const char *name, u64 index)
{
    WorkloadProfile p;
    p.name = name;
    p.structureSeed = 0x5bec0000 + index * 7919;
    p.behaviourSeed = 0xbeea0000 + index * 104729;
    return p;
}

std::vector<BenchmarkSpec>
makeSuite()
{
    std::vector<BenchmarkSpec> suite;
    u64 i = 0;

    // --- 400.perlbench: branchy interpreter, indirect dispatch,
    //     moderate memory. Table 1: slope .028, intercept .517.
    {
        auto p = base("400.perlbench", ++i);
        p.procedures = 140;
        p.hotProcedures = 70;
        p.objectFiles = 20;
        p.condFraction = 0.50;
        p.indirectDensity = 0.03;
        p.fracBiased = 0.42;
        p.fracPeriodic = 0.534;
        p.fracHistory = 0.042;
        p.fracRandom = 0.0021;
        p.biasMin = 0.9931;
        p.biasMax = 0.9983;
        p.loadsPerInst = 0.24;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 768 << 10;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.branchLoadDepProb = 0;
        p.meanExtraExecCycles = 1.159;
        suite.push_back({p, true});
    }
    // --- 401.bzip2: integer compression; mixed predictability.
    {
        auto p = base("401.bzip2", ++i);
        p.branchLoadDepProb = 0;
        p.procedures = 60;
        p.hotProcedures = 24;
        p.objectFiles = 8;
        p.condFraction = 0.52;
        p.fracBiased = 0.34;
        p.fracPeriodic = 0.501;
        p.fracHistory = 0.136;
        p.fracRandom = 0.02;
        p.biasMin = 0.9642;
        p.biasMax = 0.9867;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.11;
        p.l1WorkingSet = 28 << 10;
        p.l2WorkingSet = 2 << 20;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.meanExtraExecCycles = 1.468;
        suite.push_back({p, true});
    }
    // --- 403.gcc: huge code footprint (I-cache pressure), pointer data.
    {
        auto p = base("403.gcc", ++i);
        p.branchLoadDepProb = 0.05;
        p.historyBitsMin = 6;
        p.historyBitsMax = 14;
        p.procedures = 320;
        p.hotProcedures = 180;
        p.objectFiles = 40;
        p.meanBlocksPerProc = 16;
        p.condFraction = 0.50;
        p.indirectDensity = 0.02;
        p.fracBiased = 0.44;
        p.fracPeriodic = 0.53;
        p.fracHistory = 0.025;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.12;
        p.l1WorkingSet = 30 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 48ULL << 20;
        p.fracL1 = 0.73;
        p.fracL2 = 0.24;
        p.fracMem = 0.03;
        p.meanExtraExecCycles = 4.17;
        suite.push_back({p, true});
    }
    // --- 416.gamess: FP chemistry; few, predictable branches.
    {
        auto p = base("416.gamess", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.depLoadSlowTier = 0.8;
        p.procedures = 90;
        p.hotProcedures = 30;
        p.objectFiles = 12;
        p.condFraction = 0.30;
        p.fracBiased = 0.40;
        p.fracPeriodic = 0.446;
        p.fracHistory = 0.15;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.periodMin = 16;
        p.periodMax = 64;
        p.loadsPerInst = 0.24;
        p.storesPerInst = 0.08;
        p.l1WorkingSet = 20 << 10;
        p.l2WorkingSet = 1 << 20;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.branchLoadDepProb = 0.45;
        p.meanExtraExecCycles = 0.05;
        p.fpFraction = 0.6;
        suite.push_back({p, true});
    }
    // --- 429.mcf: memory-bound pointer chasing; CPI ~4.7.
    {
        auto p = base("429.mcf", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.depLoadSlowTier = 0.5;
        p.procedures = 60;
        p.hotProcedures = 30;
        p.objectFiles = 6;
        p.condFraction = 0.48;
        p.fracBiased = 0.40;
        p.fracPeriodic = 0.434;
        p.fracHistory = 0.089;
        p.fracRandom = 0.0749;
        p.biasMin = 0.9223;
        p.biasMax = 0.9655;
        p.loadsPerInst = 0.30;
        p.storesPerInst = 0.08;
        p.l1WorkingSet = 16 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 256ULL << 20;
        p.fracL1 = 0.6;
        p.fracL2 = 0.18;
        p.fracMem = 0.22;
        p.heapFraction = 0.9;
        p.branchLoadDepProb = 0.05;
        p.meanExtraExecCycles = 4.345;
        suite.push_back({p, true});
    }
    // --- 433.milc: FP lattice QCD; streaming, branch-insensitive to
    //     layout. One of our three t-test failures.
    {
        auto p = base("433.milc", ++i);
        p.procedures = 90;
        p.hotProcedures = 24;
        p.objectFiles = 8;
        p.condFraction = 0.14;
        p.fracBiased = 0.20;
        p.fracPeriodic = 0.796;
        p.fracHistory = 0;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.periodMin = 32;
        p.periodMax = 128;
        p.loadsPerInst = 0.30;
        p.storesPerInst = 0.14;
        p.l1WorkingSet = 16 << 10;
        p.l2WorkingSet = 2 << 20;
        p.memWorkingSet = 64ULL << 20;
        p.fracL1 = 0.7295;
        p.fracL2 = 0.27;
        p.fracMem = 0.0005;
        p.meanExtraExecCycles = 8;
        p.fpFraction = 0.8;
        suite.push_back({p, false});
    }
    // --- 434.zeusmp: FP CFD; rare mispredictions but each waits on a
    //     missing load -> Table 1 slope 0.373.
    {
        auto p = base("434.zeusmp", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.depLoadSlowTier = 1.0;
        p.procedures = 70;
        p.hotProcedures = 20;
        p.objectFiles = 10;
        p.condFraction = 0.12;
        p.fracBiased = 0.34;
        p.fracPeriodic = 0.619;
        p.fracHistory = 0.037;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.periodMin = 24;
        p.periodMax = 96;
        p.loadsPerInst = 0.28;
        p.storesPerInst = 0.12;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 3 << 20;
        p.memWorkingSet = 32ULL << 20;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0;
        p.branchLoadDepProb = 0.85;
        p.meanExtraExecCycles = 1.707;
        p.fpFraction = 0.8;
        suite.push_back({p, true});
    }
    // --- 435.gromacs: FP molecular dynamics; modest everything.
    {
        auto p = base("435.gromacs", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.periodMin = 24;
        p.periodMax = 96;
        p.procedures = 80;
        p.hotProcedures = 26;
        p.objectFiles = 12;
        p.condFraction = 0.32;
        p.fracBiased = 0.40;
        p.fracPeriodic = 0.37;
        p.fracHistory = 0.177;
        p.fracRandom = 0.05;
        p.biasMin = 0.97;
        p.biasMax = 0.99;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 1 << 20;
        p.fracL1 = 0.93;
        p.fracL2 = 0.07;
        p.fracMem = 0.0;
        p.branchLoadDepProb = 0.20;
        p.meanExtraExecCycles = 1.305;
        p.fpFraction = 0.7;
        suite.push_back({p, true});
    }
    // --- 436.cactusADM: FP stencil; near-zero branch variance.
    //     Second t-test failure.
    {
        auto p = base("436.cactusADM", ++i);
        p.procedures = 40;
        p.hotProcedures = 8;
        p.objectFiles = 6;
        p.condFraction = 0.10;
        p.fracBiased = 0.10;
        p.fracPeriodic = 0.896;
        p.fracHistory = 0;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.periodMin = 32;
        p.periodMax = 128;
        p.loadsPerInst = 0.32;
        p.storesPerInst = 0.16;
        p.l1WorkingSet = 20 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 24ULL << 20;
        p.fracL1 = 0.7525;
        p.fracL2 = 0.24;
        p.fracMem = 0.0075;
        p.meanExtraExecCycles = 1.34;
        p.fpFraction = 0.9;
        suite.push_back({p, false});
    }
    // --- 444.namd: FP; well-predicted branches, lean memory.
    {
        auto p = base("444.namd", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.periodMin = 24;
        p.periodMax = 96;
        p.procedures = 70;
        p.hotProcedures = 22;
        p.objectFiles = 10;
        p.condFraction = 0.4;
        p.fracBiased = 0.44;
        p.fracPeriodic = 0.409;
        p.fracHistory = 0.147;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.loadsPerInst = 0.24;
        p.storesPerInst = 0.08;
        p.l1WorkingSet = 20 << 10;
        p.l2WorkingSet = 768 << 10;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.branchLoadDepProb = 0.18;
        p.meanExtraExecCycles = 1.086;
        p.fpFraction = 0.7;
        suite.push_back({p, true});
    }
    // --- 445.gobmk: Go engine; the branchiest benchmark, high MPKI.
    {
        auto p = base("445.gobmk", ++i);
        p.branchLoadDepProb = 0;
        p.procedures = 200;
        p.hotProcedures = 110;
        p.objectFiles = 26;
        p.condFraction = 0.56;
        p.fracBiased = 0.30;
        p.fracPeriodic = 0.4;
        p.fracHistory = 0.257;
        p.fracRandom = 0.0413;
        p.biasMin = 0.9246;
        p.biasMax = 0.971;
        p.loadsPerInst = 0.22;
        p.storesPerInst = 0.08;
        p.l1WorkingSet = 26 << 10;
        p.l2WorkingSet = 1 << 20;
        p.fracL1 = 0.93;
        p.fracL2 = 0.07;
        p.fracMem = 0.0;
        p.meanExtraExecCycles = 0.972;
        suite.push_back({p, true});
    }
    // --- 450.soplex: FP linear programming over big sparse data.
    {
        auto p = base("450.soplex", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.periodMin = 16;
        p.periodMax = 64;
        p.procedures = 140;
        p.hotProcedures = 60;
        p.objectFiles = 12;
        p.condFraction = 0.38;
        p.fracBiased = 0.40;
        p.fracPeriodic = 0.426;
        p.fracHistory = 0.16;
        p.fracRandom = 0.012;
        p.biasMin = 0.985;
        p.biasMax = 0.997;
        p.loadsPerInst = 0.28;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 20 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 64ULL << 20;
        p.fracL1 = 0.72;
        p.fracL2 = 0.22;
        p.fracMem = 0.06;
        p.heapFraction = 0.8;
        p.meanExtraExecCycles = 1.996;
        p.fpFraction = 0.6;
        suite.push_back({p, true});
    }
    // --- 454.calculix: FP structural mechanics; the Figure 3 cache
    //     study subject: L1/L2-conflict-sensitive heap data.
    {
        auto p = base("454.calculix", ++i);
        p.structureSeed += 2;
        p.churnWindow = 8 << 20;
        p.regionsL2Tier = 1;
        p.l2TierWide = false;
        p.memWorkingSet = 0;
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.periodMin = 24;
        p.periodMax = 96;
        p.depLoadSlowTier = 0.6;
        p.procedures = 80;
        p.hotProcedures = 24;
        p.objectFiles = 12;
        p.condFraction = 0.30;
        p.fracBiased = 0.42;
        p.fracPeriodic = 0.522;
        p.fracHistory = 0.054;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.loadsPerInst = 0.30;
        p.storesPerInst = 0.12;
        p.l1WorkingSet = 36 << 10;  // straddles L1D capacity
        p.l2WorkingSet = 19 << 20;   // straddles L2 capacity
        p.fracL1 = 0.96;
        p.fracL2 = 0.04;
        p.fracMem = 0.0;
        p.heapFraction = 0.95;
        p.regionsPerTier = 24;      // many heap objects -> placement
                                    // conflicts vary with the heap seed
        p.branchLoadDepProb = 0.35;
        p.meanExtraExecCycles = 0.05;
        p.fpFraction = 0.8;
        suite.push_back({p, true});
    }
    // --- 456.hmmer: profile HMM search; high ILP, branchy inner loop.
    {
        auto p = base("456.hmmer", ++i);
        p.branchLoadDepProb = 0;
        p.procedures = 50;
        p.hotProcedures = 14;
        p.objectFiles = 8;
        p.condFraction = 0.54;
        p.fracBiased = 0.52;
        p.fracPeriodic = 0.465;
        p.fracHistory = 0.011;
        p.fracRandom = 0.002;
        p.biasMin = 0.9975;
        p.biasMax = 0.9993;
        p.loadsPerInst = 0.24;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 16 << 10;
        p.l2WorkingSet = 512 << 10;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.meanExtraExecCycles = 0.05; // very high ILP
        suite.push_back({p, true});
    }
    // --- 459.GemsFDTD: FP electromagnetics; the other huge slope
    //     (0.516): mispredictions resolve behind L2 misses.
    {
        auto p = base("459.GemsFDTD", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.depLoadSlowTier = 1.0;
        p.procedures = 60;
        p.hotProcedures = 16;
        p.objectFiles = 10;
        p.condFraction = 0.1;
        p.fracBiased = 0.30;
        p.fracPeriodic = 0.643;
        p.fracHistory = 0.053;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.periodMin = 32;
        p.periodMax = 128;
        p.loadsPerInst = 0.30;
        p.storesPerInst = 0.14;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 5 << 20;
        p.memWorkingSet = 96ULL << 20;
        p.fracL1 = 0.784;
        p.fracL2 = 0.216;
        p.fracMem = 0;
        p.branchLoadDepProb = 0.9;
        p.meanExtraExecCycles = 1.948;
        p.fpFraction = 0.9;
        suite.push_back({p, true});
    }
    // --- 462.libquantum: quantum simulation; streaming with one hot
    //     loop branch. The paper: 84.2% of CPI variance is branches.
    {
        auto p = base("462.libquantum", ++i);
        p.branchLoadDepProb = 0.05;
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.periodMin = 32;
        p.periodMax = 128;
        p.meanBlocksPerProc = 12;
        p.procedures = 80;
        p.hotProcedures = 32;
        p.objectFiles = 5;
        p.condFraction = 0.46;
        p.fracBiased = 0.36;
        p.fracPeriodic = 0.446;
        p.fracHistory = 0.163;
        p.fracRandom = 0.0205;
        p.biasMin = 0.9653;
        p.biasMax = 0.9913;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.12;
        p.l1WorkingSet = 16 << 10;
        p.l2WorkingSet = 1 << 20;
        p.memWorkingSet = 32ULL << 20;
        p.fracL1 = 0.8317;
        p.fracL2 = 0.14;
        p.fracMem = 0.0283;
        p.meanExtraExecCycles = 2.849;
        suite.push_back({p, true});
    }
    // --- 464.h264ref: video encoder; mixed, moderately predictable.
    {
        auto p = base("464.h264ref", ++i);
        p.branchLoadDepProb = 0.05;
        p.historyBitsMin = 6;
        p.historyBitsMax = 14;
        p.periodMin = 12;
        p.periodMax = 48;
        p.procedures = 110;
        p.hotProcedures = 40;
        p.objectFiles = 16;
        p.condFraction = 0.44;
        p.fracBiased = 0.46;
        p.fracPeriodic = 0.501;
        p.fracHistory = 0.035;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.12;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 1 << 20;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.meanExtraExecCycles = 0.636;
        suite.push_back({p, true});
    }
    // --- 465.tonto: FP quantum chemistry.
    {
        auto p = base("465.tonto", ++i);
        p.historyBitsMin = 6;
        p.historyBitsMax = 12;
        p.periodMin = 16;
        p.periodMax = 64;
        p.procedures = 160;
        p.hotProcedures = 70;
        p.objectFiles = 16;
        p.condFraction = 0.32;
        p.fracBiased = 0.42;
        p.fracPeriodic = 0.505;
        p.fracHistory = 0.07;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 1 << 20;
        p.fracL1 = 0.98;
        p.fracL2 = 0.02;
        p.fracMem = 0.0;
        p.branchLoadDepProb = 0.20;
        p.meanExtraExecCycles = 0.835;
        p.fpFraction = 0.7;
        suite.push_back({p, true});
    }
    // --- 470.lbm: lattice Boltzmann; almost branch-free streaming.
    //     Third t-test failure.
    {
        auto p = base("470.lbm", ++i);
        p.procedures = 20;
        p.hotProcedures = 4;
        p.objectFiles = 3;
        p.condFraction = 0.08;
        p.fracBiased = 0.06;
        p.fracPeriodic = 0.936;
        p.fracHistory = 0;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.periodMin = 48;
        p.periodMax = 160;
        p.loadsPerInst = 0.34;
        p.storesPerInst = 0.18;
        p.l1WorkingSet = 16 << 10;
        p.l2WorkingSet = 2 << 20;
        p.memWorkingSet = 128ULL << 20;
        p.fracL1 = 0.7568;
        p.fracL2 = 0.23;
        p.fracMem = 0.0132;
        p.meanExtraExecCycles = 2.66;
        p.fpFraction = 0.95;
        suite.push_back({p, false});
    }
    // --- 471.omnetpp: discrete-event simulation; virtual dispatch,
    //     pointer-heavy heap, CPI ~1.9.
    {
        auto p = base("471.omnetpp", ++i);
        p.branchLoadDepProb = 0.05;
        p.procedures = 160;
        p.hotProcedures = 80;
        p.objectFiles = 22;
        p.condFraction = 0.48;
        p.indirectDensity = 0.05;
        p.fracBiased = 0.38;
        p.fracPeriodic = 0.472;
        p.fracHistory = 0.131;
        p.fracRandom = 0.0142;
        p.biasMin = 0.9734;
        p.biasMax = 0.99;
        p.loadsPerInst = 0.28;
        p.storesPerInst = 0.12;
        p.l1WorkingSet = 28 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 64ULL << 20;
        p.fracL1 = 0.74;
        p.fracL2 = 0.21;
        p.fracMem = 0.05;
        p.heapFraction = 0.95;
        p.meanExtraExecCycles = 3.669;
        suite.push_back({p, true});
    }
    // --- 473.astar: path finding; high MPKI and memory pressure.
    {
        auto p = base("473.astar", ++i);
        p.branchLoadDepProb = 0.05;
        p.procedures = 40;
        p.hotProcedures = 14;
        p.objectFiles = 6;
        p.condFraction = 0.54;
        p.fracBiased = 0.19;
        p.fracPeriodic = 0.281;
        p.fracHistory = 0.429;
        p.fracRandom = 0.0974;
        p.biasMin = 0.8549;
        p.biasMax = 0.9442;
        p.loadsPerInst = 0.28;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 20 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 96ULL << 20;
        p.fracL1 = 0.7002;
        p.fracL2 = 0.23;
        p.fracMem = 0.0698;
        p.heapFraction = 0.9;
        p.meanExtraExecCycles = 0.72;
        suite.push_back({p, true});
    }
    // --- 482.sphinx3: speech recognition; FP with branchy scoring.
    {
        auto p = base("482.sphinx3", ++i);
        p.branchLoadDepProb = 0.05;
        p.procedures = 80;
        p.hotProcedures = 28;
        p.objectFiles = 12;
        p.condFraction = 0.44;
        p.fracBiased = 0.40;
        p.fracPeriodic = 0.411;
        p.fracHistory = 0.161;
        p.fracRandom = 0.0253;
        p.biasMin = 0.9629;
        p.biasMax = 0.9886;
        p.loadsPerInst = 0.28;
        p.storesPerInst = 0.08;
        p.l1WorkingSet = 24 << 10;
        p.l2WorkingSet = 2 << 20;
        p.fracL1 = 0.88;
        p.fracL2 = 0.12;
        p.fracMem = 0.0;
        p.meanExtraExecCycles = 3.177;
        p.fpFraction = 0.6;
        suite.push_back({p, true});
    }
    // --- 483.xalancbmk: XSLT processor; big code, indirect dispatch.
    {
        auto p = base("483.xalancbmk", ++i);
        p.branchLoadDepProb = 0.05;
        p.historyBitsMin = 6;
        p.historyBitsMax = 14;
        p.periodMin = 8;
        p.periodMax = 32;
        p.procedures = 260;
        p.hotProcedures = 140;
        p.objectFiles = 34;
        p.meanBlocksPerProc = 11;
        p.condFraction = 0.48;
        p.indirectDensity = 0.04;
        p.fracBiased = 0.44;
        p.fracPeriodic = 0.526;
        p.fracHistory = 0.03;
        p.fracRandom = 0.002;
        p.biasMin = 0.999;
        p.biasMax = 1;
        p.loadsPerInst = 0.26;
        p.storesPerInst = 0.10;
        p.l1WorkingSet = 28 << 10;
        p.l2WorkingSet = 4 << 20;
        p.memWorkingSet = 32ULL << 20;
        p.fracL1 = 0.75;
        p.fracL2 = 0.21;
        p.fracMem = 0.04;
        p.heapFraction = 0.9;
        p.meanExtraExecCycles = 5.095;
        suite.push_back({p, true});
    }

    for (auto &entry : suite)
        entry.profile.validate();
    return suite;
}

} // anonymous namespace

const std::vector<BenchmarkSpec> &
specSuite()
{
    static const std::vector<BenchmarkSpec> suite = makeSuite();
    return suite;
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &entry : specSuite())
        names.push_back(entry.profile.name);
    return names;
}

const BenchmarkSpec &
specFor(const std::string &name)
{
    for (const auto &entry : specSuite())
        if (entry.profile.name == name)
            return entry;
    fatal("unknown benchmark '%s'", name.c_str());
}

bool
isSuiteBenchmark(const std::string &name)
{
    for (const auto &entry : specSuite())
        if (entry.profile.name == name)
            return true;
    return false;
}

} // namespace interf::workloads
