/**
 * @file
 * The synthetic SPEC CPU 2006 suite.
 *
 * The paper uses the 23 SPEC CPU 2006 benchmarks that compiled under its
 * Camino infrastructure; Table 1 lists the 20 of them whose CPI-vs-MPKI
 * correlation passes the t-test at p <= 0.05. We model all 23 with
 * behaviour profiles tuned so the pipeline reproduces the paper's
 * qualitative landscape:
 *
 *  - intercepts (CPI at 0 MPKI) spanning ~0.4 (calculix) to ~4.7 (mcf);
 *  - slopes mostly 0.016-0.04 CPI/MPKI, with zeusmp and GemsFDTD far
 *    higher because their mispredicted branches wait on missing loads;
 *  - MPKI levels from <1 (FP codes) to >10 (gobmk, astar);
 *  - three benchmarks (our stand-ins: milc, cactusADM, lbm — the paper
 *    does not name its three) whose branch behaviour is so layout-
 *    insensitive that the t-test cannot reject "no correlation".
 */

#ifndef INTERF_WORKLOADS_SPEC_HH
#define INTERF_WORKLOADS_SPEC_HH

#include <string>
#include <vector>

#include "workloads/profile.hh"

namespace interf::workloads
{

/** A suite entry: the profile plus documented expectations. */
struct BenchmarkSpec
{
    WorkloadProfile profile;
    /** Whether the paper's t-test gate is expected to pass (20 of 23). */
    bool expectSignificant = true;
};

/** The full 23-benchmark suite, in SPEC numbering order. */
const std::vector<BenchmarkSpec> &specSuite();

/** Names of all suite benchmarks, in order. */
std::vector<std::string> suiteNames();

/** Look up one benchmark by name; fatal() if unknown. */
const BenchmarkSpec &specFor(const std::string &name);

/** True if the suite contains the given benchmark name. */
bool isSuiteBenchmark(const std::string &name);

} // namespace interf::workloads

#endif // INTERF_WORKLOADS_SPEC_HH
