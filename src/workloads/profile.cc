#include "workloads/profile.hh"

#include "util/logging.hh"

namespace interf::workloads
{

namespace
{

void
checkFraction(double value, const char *what, const std::string &name)
{
    if (value < 0.0 || value > 1.0)
        fatal("profile '%s': %s must be in [0,1], got %g", name.c_str(),
              what, value);
}

} // anonymous namespace

void
WorkloadProfile::validate() const
{
    if (name.empty())
        fatal("profile has an empty name");
    if (procedures < 2)
        fatal("profile '%s': needs at least main and one callee",
              name.c_str());
    if (hotProcedures == 0 || hotProcedures >= procedures)
        fatal("profile '%s': hotProcedures must be in [1, procedures)",
              name.c_str());
    if (objectFiles == 0 || objectFiles > procedures)
        fatal("profile '%s': objectFiles must be in [1, procedures]",
              name.c_str());
    if (meanBlocksPerProc < 2)
        fatal("profile '%s': meanBlocksPerProc must be >= 2", name.c_str());
    if (meanInstsPerBlock < 1)
        fatal("profile '%s': meanInstsPerBlock must be >= 1", name.c_str());
    checkFraction(callDensity, "callDensity", name);
    checkFraction(indirectDensity, "indirectDensity", name);
    checkFraction(condFraction, "condFraction", name);
    checkFraction(fracBiased, "fracBiased", name);
    checkFraction(fracPeriodic, "fracPeriodic", name);
    checkFraction(fracHistory, "fracHistory", name);
    checkFraction(fracRandom, "fracRandom", name);
    double mix = fracBiased + fracPeriodic + fracHistory + fracRandom;
    if (mix > 1.0 + 1e-9)
        fatal("profile '%s': branch pattern fractions sum to %g > 1",
              name.c_str(), mix);
    if (biasMin < 0.0 || biasMax > 1.0 || biasMin > biasMax)
        fatal("profile '%s': invalid bias range [%g, %g]", name.c_str(),
              biasMin, biasMax);
    if (periodMin < 2 || periodMin > periodMax)
        fatal("profile '%s': invalid period range [%u, %u]", name.c_str(),
              periodMin, periodMax);
    if (historyBitsMin < 1 || historyBitsMin > historyBitsMax ||
        historyBitsMax > 32)
        fatal("profile '%s': invalid history-bits range [%u, %u]",
              name.c_str(), historyBitsMin, historyBitsMax);
    checkFraction(branchLoadDepProb, "branchLoadDepProb", name);
    checkFraction(depLoadSlowTier, "depLoadSlowTier", name);
    if (loadsPerInst < 0.0 || loadsPerInst > 1.0 || storesPerInst < 0.0 ||
        storesPerInst > 1.0)
        fatal("profile '%s': loads/stores per instruction out of range",
              name.c_str());
    checkFraction(fracL1, "fracL1", name);
    checkFraction(fracL2, "fracL2", name);
    checkFraction(fracMem, "fracMem", name);
    double tier = fracL1 + fracL2 + fracMem;
    if (tier > 1.0 + 1e-9)
        fatal("profile '%s': memory tier fractions sum to %g > 1",
              name.c_str(), tier);
    if (l1WorkingSet < 4096)
        fatal("profile '%s': l1WorkingSet must be >= 4096 bytes",
              name.c_str());
    if (l2WorkingSet < 4096)
        fatal("profile '%s': l2WorkingSet must be >= 4096 bytes",
              name.c_str());
    if (fracMem > 0.0 && memWorkingSet < 4096)
        fatal("profile '%s': fracMem > 0 needs memWorkingSet >= 4096",
              name.c_str());
    checkFraction(heapFraction, "heapFraction", name);
    if (regionsPerTier == 0)
        fatal("profile '%s': regionsPerTier must be >= 1", name.c_str());
    if (meanExtraExecCycles < 0.0)
        fatal("profile '%s': meanExtraExecCycles must be >= 0",
              name.c_str());
    checkFraction(fpFraction, "fpFraction", name);
}

WorkloadProfile
defaultProfile(const std::string &name)
{
    WorkloadProfile p;
    p.name = name;
    p.validate();
    return p;
}

} // namespace interf::workloads
