/**
 * @file
 * ProgramBuilder: turn a WorkloadProfile into a concrete static Program.
 *
 * The builder plays the role of the paper's compiler front end: it fixes
 * the program's procedures, basic blocks, branch sites (with their
 * behaviour patterns), memory reference sites and data regions. The
 * construction is fully determined by profile.structureSeed, so a
 * benchmark's static shape — like a real compiled binary — is identical
 * across all experiments; only the *link order* (handled by the Linker)
 * and *heap placement* (HeapLayout) vary per layout key.
 */

#ifndef INTERF_WORKLOADS_BUILDER_HH
#define INTERF_WORKLOADS_BUILDER_HH

#include "trace/program.hh"
#include "workloads/profile.hh"

namespace interf::workloads
{

/**
 * Build the static program for a profile.
 *
 * Structural guarantees:
 *  - procedure 0 is main, whose outer loop drives the hot procedures;
 *  - procedures 1..hotProcedures are hot (reachable), the rest are cold
 *    library-like code that only occupies address space;
 *  - the call graph is a DAG (callee id > caller id), so every trace
 *    walk terminates;
 *  - every procedure ends in a Return block;
 *  - the program passes Program::validate().
 */
trace::Program buildProgram(const WorkloadProfile &profile);

} // namespace interf::workloads

#endif // INTERF_WORKLOADS_BUILDER_HH
