#include "pmu/pmu.hh"

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace interf::pmu
{

const char *
eventName(Event ev)
{
    switch (ev) {
      case Event::Cycles:
        return "cycles";
      case Event::RetiredInsts:
        return "retired-instructions";
      case Event::RetiredBranches:
        return "retired-branches";
      case Event::MispredBranches:
        return "mispredicted-branches";
      case Event::L1IMisses:
        return "l1i-misses";
      case Event::L1DMisses:
        return "l1d-misses";
      case Event::L2Misses:
        return "l2-misses";
      case Event::BtbMisses:
        return "btb-misses";
      case Event::NumEvents:
        break;
    }
    panic("bad Event %d", static_cast<int>(ev));
}

bool
isFixedEvent(Event ev)
{
    return ev == Event::Cycles || ev == Event::RetiredInsts;
}

std::vector<EventGroup>
standardGroups()
{
    return {
        {Event::MispredBranches, Event::RetiredBranches},
        {Event::L1IMisses, Event::L1DMisses},
        {Event::L2Misses, Event::BtbMisses},
    };
}

Pmu::Pmu() : group_{Event::MispredBranches, Event::RetiredBranches} {}

void
Pmu::program(const EventGroup &group)
{
    if (isFixedEvent(group.a) || isFixedEvent(group.b))
        fatal("fixed events need not occupy a programmable counter");
    group_ = group;
    programmed_ = true;
    INTERF_TELEM_COUNT("pmu.programs", 1);
}

bool
Pmu::readable(Event ev) const
{
    if (isFixedEvent(ev))
        return true;
    return programmed_ && (ev == group_.a || ev == group_.b);
}

u64
Pmu::read(Event ev) const
{
    if (!readable(ev))
        fatal("event '%s' is not programmed on this run", eventName(ev));
    return raw_[static_cast<size_t>(ev)];
}

void
Pmu::zero()
{
    raw_.fill(0);
}

} // namespace interf::pmu
