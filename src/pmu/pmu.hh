/**
 * @file
 * Performance monitoring unit model.
 *
 * Section 5.5 of the paper: "The Intel Xeon processor allows up to two
 * user-defined microarchitectural events to be counted simultaneously.
 * We are interested in more than two events, so we make multiple runs
 * of each benchmark ... We group the counters into three sets of two."
 *
 * The Pmu models exactly that constraint: fixed counters (cycles,
 * retired instructions) are always available; at most two programmable
 * events count per run. The MeasurementRunner (core/runner) performs
 * the three-group x five-run median protocol on top of this model.
 */

#ifndef INTERF_PMU_PMU_HH
#define INTERF_PMU_PMU_HH

#include <array>
#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::pmu
{

/** Countable microarchitectural events. */
enum class Event : u8 {
    Cycles,           ///< Fixed counter.
    RetiredInsts,     ///< Fixed counter.
    RetiredBranches,  ///< Programmable.
    MispredBranches,  ///< Programmable.
    L1IMisses,        ///< Programmable.
    L1DMisses,        ///< Programmable.
    L2Misses,         ///< Programmable.
    BtbMisses,        ///< Programmable.
    NumEvents,
};

/** Human-readable event name. */
const char *eventName(Event ev);

/** True for the always-available fixed counters. */
bool isFixedEvent(Event ev);

/** A pair of programmable events measured together in one run. */
struct EventGroup
{
    Event a;
    Event b;
};

/**
 * The paper's three groups of two programmable events (plus the fixed
 * cycles/instructions counted in every run): branches, L1 misses,
 * L2/BTB misses.
 */
std::vector<EventGroup> standardGroups();

/**
 * The PMU: raw event tallies for one run plus the programmable-counter
 * windowing that decides which tallies a measurement may legally read.
 *
 * The timing model increments *all* events (the hardware does occur);
 * read() enforces that only fixed events and the two programmed events
 * are observable, modeling the two-counter limit.
 */
class Pmu
{
  public:
    Pmu();

    /** Select the two programmable events for this run. */
    void program(const EventGroup &group);

    /** Increment an event (timing-model side). */
    void
    count(Event ev, u64 n = 1)
    {
        raw_[static_cast<size_t>(ev)] += n;
    }

    /**
     * Read a counter (measurement side). Fixed events always read;
     * programmable events only if selected by program(); otherwise
     * fatal(), since reading an unprogrammed counter is a harness bug
     * the real perfex would also reject.
     */
    u64 read(Event ev) const;

    /** Whether the event is readable in the current programming. */
    bool readable(Event ev) const;

    /** Raw access for tests and whole-run validation (not "hardware"). */
    u64 rawCount(Event ev) const
    {
        return raw_[static_cast<size_t>(ev)];
    }

    /** Clear all tallies (new run), keeping the programming. */
    void zero();

  private:
    std::array<u64, static_cast<size_t>(Event::NumEvents)> raw_{};
    EventGroup group_;
    bool programmed_ = false;
};

} // namespace interf::pmu

#endif // INTERF_PMU_PMU_HH
