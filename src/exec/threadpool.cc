#include "exec/threadpool.hh"

#include <algorithm>
#include <exception>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_ctx.hh"
#include "util/logging.hh"

namespace interf::exec
{

u32
ThreadPool::hardwareWorkers()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

u32
ThreadPool::resolveJobs(u32 jobs)
{
    return jobs == 0 ? hardwareWorkers() : jobs;
}

ThreadPool::ThreadPool(u32 workers)
{
    u32 count = resolveJobs(workers);
    threads_.reserve(count);
    for (u32 i = 0; i < count; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
    if (telemetry::enabled()) {
        telemetry::Registry::global()
            .gauge("pool.workers")
            .set(static_cast<i64>(count));
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    // Carry the submitter's causal context (campaign/batch/candidate
    // ids + the enqueuing span) across the thread hop, so worker spans
    // are attributable. captureContext() is empty-and-free when
    // telemetry is off, and we only pay the wrapper when it is on —
    // the task itself is identical either way (observe-only).
    if (telemetry::enabled()) {
        telemetry::TraceContext ctx = telemetry::captureContext();
        if (!ctx.empty()) {
            task = [ctx, inner = std::move(task)] {
                telemetry::ScopedTraceContext scope(ctx);
                inner();
            };
        }
    }
    size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
        ++inFlight_;
        depth = queue_.size();
    }
    INTERF_TELEM_HISTOGRAM("pool.queue_depth",
                           (std::vector<u64>{1, 2, 4, 8, 16, 32, 64,
                                             128, 256}),
                           depth);
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop(u32 index)
{
    if (telemetry::enabled())
        telemetry::setCurrentThreadName(
            strprintf("pool-worker-%u", index));
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock,
                            [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop();
        }
        // Busy time is sampled only when telemetry is on: nowNs() is a
        // clock read, not free, and the loop runs once per task.
        if (telemetry::enabled()) {
            const u64 start = telemetry::nowNs();
            task();
            INTERF_TELEM_COUNT("pool.tasks", 1);
            INTERF_TELEM_COUNT("pool.busy_ns",
                               telemetry::nowNs() - start);
        } else {
            task();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelForChunks(ThreadPool &pool, size_t n,
                  const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    const size_t chunks = std::min<size_t>(pool.workers(), n);
    if (chunks <= 1) {
        body(0, n);
        return;
    }
    // Static partition: chunk c covers [begin, end) with sizes differing
    // by at most one; boundaries depend only on (n, chunks).
    std::vector<std::exception_ptr> errors(chunks);
    const size_t base = n / chunks;
    const size_t extra = n % chunks;
    size_t begin = 0;
    for (size_t c = 0; c < chunks; ++c) {
        const size_t end = begin + base + (c < extra ? 1 : 0);
        pool.submit([&body, &errors, c, begin, end] {
            try {
                body(begin, end);
            } catch (...) {
                errors[c] = std::current_exception();
            }
        });
        begin = end;
    }
    INTERF_ASSERT(begin == n);
    pool.wait();
    for (auto &err : errors)
        if (err)
            std::rethrow_exception(err);
}

void
parallelFor(ThreadPool &pool, size_t n,
            const std::function<void(size_t)> &body)
{
    parallelForChunks(pool, n, [&body](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            body(i);
    });
}

} // namespace interf::exec
