/**
 * @file
 * Fixed-size thread pool and deterministic parallel-for helpers.
 *
 * The measurement pipeline fans hundreds of independent layouts out to
 * worker threads (campaigns measure each layout from power-on state, so
 * there is no cross-layout coupling). The design goals, in order:
 *
 *  1. **Determinism.** Results must be byte-identical to the serial
 *     path regardless of scheduling. The helpers therefore never hand
 *     out work dynamically: parallelForChunks() splits [0, n) into at
 *     most workers() contiguous chunks up front (work-stealing-free),
 *     callers write results into position-indexed slots, and the
 *     iteration order *within* a chunk is ascending, so any per-chunk
 *     state (an owned Machine, say) sees the same sequence it would
 *     see serially.
 *  2. **Shared-immutable / owned-mutable split.** Tasks may read
 *     anything immutable (Program, Trace, configs) and must own every
 *     piece of mutable state they touch. The pool adds no hidden
 *     shared state of its own beyond the task queue.
 *  3. **Exceptions propagate.** A throwing task never takes down a
 *     worker: the helpers capture per-chunk exceptions and rethrow the
 *     lowest-indexed one on the calling thread after the batch drains,
 *     which again keeps error behaviour scheduling-independent.
 */

#ifndef INTERF_EXEC_THREADPOOL_HH
#define INTERF_EXEC_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/types.hh"

namespace interf::exec
{

/**
 * A fixed-size pool of worker threads draining one FIFO task queue.
 *
 * Workers are spawned in the constructor and joined in the destructor;
 * there is no work stealing and no resizing. Intended usage is
 * batch-at-a-time: submit() a batch, then wait() for it to drain. The
 * pool itself is thread-compatible, not thread-safe to *wait on* from
 * several threads at once — give each concurrent batch its own pool.
 */
class ThreadPool
{
  public:
    /**
     * @param workers Number of worker threads; 0 means one per
     *        hardware thread (hardwareWorkers()).
     */
    explicit ThreadPool(u32 workers = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (>= 1). */
    u32 workers() const { return static_cast<u32>(threads_.size()); }

    /**
     * Enqueue one task. Tasks must not throw out of the pool — wrap
     * bodies that can throw (the parallelFor helpers do this for you).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    /** Hardware concurrency, clamped to at least 1. */
    static u32 hardwareWorkers();

    /** Resolve a jobs knob: 0 -> hardwareWorkers(), else the value. */
    static u32 resolveJobs(u32 jobs);

  private:
    void workerLoop(u32 index);

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    size_t inFlight_ = 0; ///< Queued + currently-running tasks.
    bool stop_ = false;
};

/**
 * Run body(begin, end) over a static partition of [0, n) — at most
 * pool.workers() contiguous chunks, sizes differing by at most one.
 *
 * The chunk boundaries depend only on (n, pool.workers()), never on
 * scheduling, so per-chunk state is deterministic. With one chunk (or
 * n <= 1) the body runs inline on the calling thread. Rethrows the
 * lowest-chunk-index exception after all chunks finish.
 */
void parallelForChunks(ThreadPool &pool, size_t n,
                       const std::function<void(size_t, size_t)> &body);

/** Run body(i) for every i in [0, n) via parallelForChunks. */
void parallelFor(ThreadPool &pool, size_t n,
                 const std::function<void(size_t)> &body);

/**
 * Map [0, n) through fn into a position-indexed vector: out[i] = fn(i),
 * independent of scheduling.
 */
template <typename T>
std::vector<T>
parallelMap(ThreadPool &pool, size_t n, const std::function<T(size_t)> &fn)
{
    std::vector<T> out(n);
    parallelFor(pool, n, [&out, &fn](size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace interf::exec

#endif // INTERF_EXEC_THREADPOOL_HH
