/**
 * @file
 * ReplayPlanVerifier: compiled replay plans checked structurally and
 * proven equivalent to their source (Program, Trace) pair.
 *
 * A ReplayPlan is the artifact the replay kernel trusts blindly — it
 * never touches the Program or Trace again — so a silently wrong plan
 * corrupts every sample of a campaign. Two layers:
 *
 *   1. structural — every SoA array sized to its peers, the site table
 *      a faithful dense proc-major numbering of the program's blocks,
 *      every cross-reference (event site, branch target, RAS push,
 *      return successor, memory rank) in range, the memory-id
 *      universe/rank factorization exact;
 *   2. equivalence — with the source trace at hand, re-derive every
 *      event's geometry, flags and resolved control-flow targets from
 *      (Program, Trace) and require the plan to match entity by
 *      entity, including the conditional substream and the per-access
 *      store flags.
 *
 * Layer 2 deliberately re-implements the flattening rules instead of
 * calling the ReplayPlan constructor: the verifier is an independent
 * restatement of what "compiled from this trace" means.
 */

#include <unordered_set>

#include "verify/verify.hh"

#include "trace/program.hh"
#include "trace/replay.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace interf::verify
{

namespace
{

using trace::BasicBlock;
using trace::BlockEvent;
using trace::OpClass;
using trace::Program;
using trace::ReplayPlan;
using trace::Trace;

class ReplayPlanVerifier : public Pass
{
  public:
    const char *name() const override { return "replay-plan"; }

    bool applicable(const Artifacts &a) const override
    {
        return a.plan != nullptr && a.program != nullptr;
    }

    void run(const Artifacts &a, VerifyResult &out) const override;
};

/** Check one array's size against its peers; report if it disagrees. */
template <typename T>
bool
sizedLike(const std::vector<T> &arr, size_t expect, const char *what,
          Sink &sink)
{
    if (arr.size() == expect)
        return true;
    sink.error(EntityKind::Artifact, 0,
               strprintf("%s has %zu entries, expected %zu", what,
                         arr.size(), expect));
    return false;
}

/** A site reference that is either kNoSite or in range. */
bool
siteRefOk(u32 ref, size_t n_sites)
{
    return ref == ReplayPlan::kNoSite || ref < n_sites;
}

/** Structural layer; returns false when deeper layers cannot proceed. */
bool
checkStructure(const Program &prog, const ReplayPlan &plan, Sink &sink)
{
    const size_t n_events = plan.site.size();
    const size_t n_mem = plan.memId.size();
    const size_t n_sites = plan.siteProc.size();

    // All SoA arrays mutually sized. Use & (not &&) so every mismatch
    // is reported, not just the first.
    bool ok = sizedLike(plan.bytes, n_events, "bytes", sink);
    ok &= sizedLike(plan.nInsts, n_events, "nInsts", sink);
    ok &= sizedLike(plan.extraExecCycles, n_events, "extraExecCycles",
                    sink);
    ok &= sizedLike(plan.nMem, n_events, "nMem", sink);
    ok &= sizedLike(plan.flags, n_events, "flags", sink);
    ok &= sizedLike(plan.targetSite, n_events, "targetSite", sink);
    ok &= sizedLike(plan.rasPushSite, n_events, "rasPushSite", sink);
    ok &= sizedLike(plan.returnSite, n_events, "returnSite", sink);
    ok &= sizedLike(plan.memIsStore, n_mem, "memIsStore", sink);
    ok &= sizedLike(plan.memRank, n_mem, "memRank", sink);
    ok &= sizedLike(plan.condTaken, plan.condSite.size(), "condTaken",
                    sink);
    ok &= sizedLike(plan.siteBlock, n_sites, "siteBlock", sink);
    ok &= sizedLike(plan.siteBytes, n_sites, "siteBytes", sink);
    ok &= sizedLike(plan.procFirstSite, prog.procedures().size(),
                    "procFirstSite", sink);
    if (!ok)
        return false;

    // Site table: a dense proc-major numbering of the program's
    // blocks, nothing more and nothing less.
    const auto &procs = prog.procedures();
    u32 cursor = 0;
    bool table_ok = true;
    for (size_t p = 0; p < procs.size() && table_ok; ++p) {
        if (plan.procFirstSite[p] != cursor) {
            sink.error(EntityKind::Site, cursor,
                       strprintf("procFirstSite[%zu] is %u, dense "
                                 "proc-major numbering requires %u",
                                 p, plan.procFirstSite[p], cursor));
            table_ok = false;
            break;
        }
        cursor += static_cast<u32>(procs[p].blocks.size());
    }
    if (table_ok && n_sites != cursor) {
        sink.error(EntityKind::Artifact, 0,
                   strprintf("site table has %zu entries, program has "
                             "%u blocks",
                             n_sites, cursor));
        table_ok = false;
    }
    if (table_ok) {
        for (size_t s = 0; s < n_sites; ++s) {
            const u32 p = plan.siteProc[s];
            const u32 b = plan.siteBlock[s];
            if (p >= procs.size() || b >= procs[p].blocks.size() ||
                plan.procFirstSite[p] + b != s) {
                sink.error(EntityKind::Site, s,
                           strprintf("site table entry maps to (proc "
                                     "%u, block %u), which is not this "
                                     "site",
                                     p, b));
                table_ok = false;
                continue;
            }
            if (plan.siteBytes[s] != procs[p].blocks[b].bytes)
                sink.error(EntityKind::Site, s,
                           strprintf("siteBytes %u, block has %u",
                                     plan.siteBytes[s],
                                     procs[p].blocks[b].bytes));
        }
    }

    // Event cross-references in range.
    for (size_t i = 0; i < n_events; ++i) {
        if (plan.site[i] >= n_sites)
            sink.error(EntityKind::Event, i,
                       strprintf("site %u out of range (%zu sites)",
                                 plan.site[i], n_sites));
        if (!siteRefOk(plan.targetSite[i], n_sites))
            sink.error(EntityKind::Event, i,
                       strprintf("target site %u out of range (%zu "
                                 "sites)",
                                 plan.targetSite[i], n_sites));
        if (!siteRefOk(plan.rasPushSite[i], n_sites))
            sink.error(EntityKind::Event, i,
                       strprintf("RAS push site %u out of range (%zu "
                                 "sites)",
                                 plan.rasPushSite[i], n_sites));
        if (!siteRefOk(plan.returnSite[i], n_sites))
            sink.error(EntityKind::Event, i,
                       strprintf("return site %u out of range (%zu "
                                 "sites)",
                                 plan.returnSite[i], n_sites));
    }
    for (size_t c = 0; c < plan.condSite.size(); ++c) {
        if (plan.condSite[c] >= n_sites)
            sink.error(EntityKind::Event, c,
                       strprintf("conditional substream site %u out of "
                                 "range (%zu sites)",
                                 plan.condSite[c], n_sites));
        if (plan.condTaken[c] > 1)
            sink.error(EntityKind::Event, c,
                       strprintf("conditional substream outcome %u is "
                                 "not 0/1",
                                 plan.condTaken[c]));
    }

    // Memory universe/rank factorization: distinct universe entries,
    // every rank in range, and the gather reproducing the stream.
    std::unordered_set<u64> seen;
    seen.reserve(plan.memUniverse.size());
    for (size_t u = 0; u < plan.memUniverse.size(); ++u)
        if (!seen.insert(plan.memUniverse[u]).second)
            sink.error(EntityKind::MemAccess, u,
                       strprintf("memory-id universe entry %zu "
                                 "duplicates an earlier id",
                                 u));
    for (size_t j = 0; j < n_mem; ++j) {
        if (plan.memRank[j] >= plan.memUniverse.size())
            sink.error(EntityKind::MemAccess, j,
                       strprintf("memory rank %u out of range (%zu "
                                 "universe entries)",
                                 plan.memRank[j],
                                 plan.memUniverse.size()));
        else if (plan.memUniverse[plan.memRank[j]] != plan.memId[j])
            sink.error(EntityKind::MemAccess, j,
                       "memory rank gathers a different id than the "
                       "stream records");
    }

    return table_ok;
}

/**
 * Equivalence layer: re-derive what compiling @p trace must produce
 * and compare entity by entity. Precondition: structure checks passed
 * and the trace itself verifies against the program (the trace pass
 * owns those diagnostics; a broken trace makes this comparison
 * meaningless, so the caller skips it).
 */
void
checkEquivalence(const Program &prog, const Trace &trace,
                 const ReplayPlan &plan, Sink &sink)
{
    const auto &procs = prog.procedures();
    const size_t n = trace.events.size();
    if (plan.site.size() != n) {
        sink.error(EntityKind::Artifact, 0,
                   strprintf("plan has %zu events, source trace has "
                             "%zu",
                             plan.site.size(), n));
        return;
    }
    if (plan.instCount != trace.instCount)
        sink.error(EntityKind::Artifact, 0,
                   strprintf("plan instCount %llu, trace %llu",
                             static_cast<unsigned long long>(
                                 plan.instCount),
                             static_cast<unsigned long long>(
                                 trace.instCount)));
    if (plan.memId != trace.memIds) {
        sink.error(EntityKind::Artifact, 0,
                   "plan memory-id stream differs from the trace's");
        return; // Per-access comparisons below index by trace refs.
    }

    size_t mem_cursor = 0;
    size_t cond_cursor = 0;
    for (size_t i = 0; i < n; ++i) {
        const BlockEvent &ev = trace.events[i];
        const BasicBlock &bb = prog.block(ev.proc, ev.block);
        const u32 s = plan.procFirstSite[ev.proc] + ev.block;

        // Geometry.
        if (plan.site[i] != s) {
            sink.error(EntityKind::Event, i,
                       strprintf("site %u, trace event executes site "
                                 "%u (proc %u, block %u)",
                                 plan.site[i], s, ev.proc, ev.block));
            return; // Everything downstream of a wrong site mismatches.
        }
        if (plan.bytes[i] != bb.bytes || plan.nInsts[i] != bb.nInsts ||
            plan.extraExecCycles[i] != bb.extraExecCycles ||
            plan.nMem[i] != bb.memRefs.size()) {
            sink.error(EntityKind::Event, i,
                       "event geometry (bytes/insts/stalls/refs) "
                       "differs from the source block");
            return;
        }

        // Per-access store flags.
        for (const auto &ref : bb.memRefs) {
            const u8 expect = ref.isStore ? 1 : 0;
            if (plan.memIsStore[mem_cursor] != expect) {
                sink.error(EntityKind::MemAccess, mem_cursor,
                           strprintf("access is a %s, static site is "
                                     "a %s",
                                     plan.memIsStore[mem_cursor]
                                         ? "store"
                                         : "load",
                                     expect ? "store" : "load"));
                return;
            }
            ++mem_cursor;
        }

        // Flags and resolved control-flow references.
        const auto &br = bb.branch;
        u8 flags = 0;
        u32 target = ReplayPlan::kNoSite;
        u32 ras_push = ReplayPlan::kNoSite;
        u32 ret = ReplayPlan::kNoSite;
        if (ev.taken)
            flags |= ReplayPlan::kTaken;
        if (br.exists()) {
            flags |= ReplayPlan::kHasBranch;
            if (br.isConditional()) {
                flags |= ReplayPlan::kCond;
                if (br.dependsOnLoad)
                    flags |= ReplayPlan::kDependsOnLoad;
            }
            switch (br.kind) {
              case OpClass::Return:
                flags |= ReplayPlan::kReturn;
                if (i + 1 < n)
                    ret = plan.procFirstSite[trace.events[i + 1].proc] +
                          trace.events[i + 1].block;
                break;
              case OpClass::Call:
                flags |= ReplayPlan::kCall;
                target = plan.procFirstSite[br.targetProc];
                if (static_cast<u32>(ev.block) + 1 <
                    procs[ev.proc].blocks.size())
                    ras_push = s + 1;
                break;
              case OpClass::IndirectBranch:
                flags |= ReplayPlan::kIndirect;
                target = plan.procFirstSite[br.targetProc] +
                         br.targetBlock + ev.indirectChoice;
                break;
              default:
                target = plan.procFirstSite[br.targetProc] +
                         br.targetBlock;
            }
        }
        if (plan.flags[i] != flags) {
            sink.error(EntityKind::Event, i,
                       strprintf("flags 0x%02x, compiling the trace "
                                 "event gives 0x%02x",
                                 plan.flags[i], flags));
            return;
        }
        if (plan.targetSite[i] != target || plan.rasPushSite[i] != ras_push ||
            plan.returnSite[i] != ret) {
            sink.error(EntityKind::Event, i,
                       "resolved control-flow references differ from "
                       "the source trace event");
            return;
        }

        // Conditional substream.
        if (br.isConditional()) {
            if (cond_cursor >= plan.condSite.size() ||
                plan.condSite[cond_cursor] != s ||
                plan.condTaken[cond_cursor] != ev.taken) {
                sink.error(EntityKind::Event, i,
                           strprintf("conditional substream entry %zu "
                                     "does not record this event's "
                                     "(site, outcome)",
                                     cond_cursor));
                return;
            }
            ++cond_cursor;
        }
    }
    if (cond_cursor != plan.condSite.size())
        sink.error(EntityKind::Artifact, 0,
                   strprintf("conditional substream has %zu entries, "
                             "trace executes %zu conditionals",
                             plan.condSite.size(), cond_cursor));
}

void
ReplayPlanVerifier::run(const Artifacts &a, VerifyResult &out) const
{
    const Program &prog = *a.program;
    const ReplayPlan &plan = *a.plan;
    Sink sink(out, a.path, name());

    if (!checkStructure(prog, plan, sink))
        return;
    if (a.trace == nullptr)
        return;

    // The equivalence comparison dereferences trace sites; only run it
    // over a trace that itself verifies (quietly — the trace pass owns
    // trace diagnostics, and PassManager::standard() runs it anyway).
    VerifyResult trace_check = verifyTrace(prog, *a.trace, a.path);
    if (!trace_check.ok()) {
        sink.warning(EntityKind::Artifact, 0,
                     "source trace does not verify; skipping plan "
                     "equivalence");
        return;
    }
    checkEquivalence(prog, *a.trace, plan, sink);
}

} // anonymous namespace

std::unique_ptr<Pass>
makeReplayPlanVerifier()
{
    return std::make_unique<ReplayPlanVerifier>();
}

} // namespace interf::verify
