/**
 * @file
 * ProgramVerifier: CFG well-formedness of the static program IR.
 *
 * Re-derives every invariant Program::validate() panics on — and more
 * — as diagnostics: dense procedure/region numbering, the object-file
 * partition, branch targets resolving to real blocks, memory-reference
 * site sanity (region in range and large enough for the reference
 * pattern), and agreement with an externally recorded
 * programStructureDigest. Never dereferences an out-of-range index:
 * unlike the builder-facing validate(), this pass must survive
 * arbitrarily corrupt artifacts.
 */

#include <vector>

#include "verify/verify.hh"

#include "trace/io.hh"
#include "trace/program.hh"
#include "util/logging.hh"

namespace interf::verify
{

namespace
{

using trace::BasicBlock;
using trace::BranchPattern;
using trace::MemPattern;
using trace::OpClass;
using trace::Procedure;
using trace::Program;
using trace::StaticBranch;

class ProgramVerifier : public Pass
{
  public:
    const char *name() const override { return "program"; }

    bool applicable(const Artifacts &a) const override
    {
        return a.program != nullptr;
    }

    void run(const Artifacts &a, VerifyResult &out) const override;
};

void
checkBranch(const Program &prog, const StaticBranch &br, u64 site,
            Sink &sink)
{
    if (!br.exists())
        return;
    switch (br.kind) {
      case OpClass::CondBranch:
      case OpClass::UncondBranch:
      case OpClass::IndirectBranch:
      case OpClass::Call:
      case OpClass::Return:
        break;
      default:
        sink.error(EntityKind::Branch, site,
                   strprintf("invalid terminator kind %d",
                             static_cast<int>(br.kind)));
        return;
    }

    if (br.isConditional()) {
        if (br.pattern == BranchPattern::None)
            sink.error(EntityKind::Branch, site,
                       "conditional branch has no outcome pattern");
        if (br.pattern == BranchPattern::Biased &&
            !(br.takenProb >= 0.0f && br.takenProb <= 1.0f))
            sink.error(EntityKind::Branch, site,
                       strprintf("biased branch probability %f outside "
                                 "[0, 1]",
                                 static_cast<double>(br.takenProb)));
        if (br.pattern == BranchPattern::Periodic && br.period == 0)
            sink.error(EntityKind::Branch, site,
                       "periodic branch with period 0");
        if (br.pattern == BranchPattern::HistoryParity &&
            (br.historyBits == 0 || br.historyBits > 64))
            sink.error(EntityKind::Branch, site,
                       strprintf("history branch depth %u outside "
                                 "[1, 64]",
                                 br.historyBits));
    }

    if (br.kind == OpClass::Return)
        return; // Returns resolve through the call stack, no target.

    const auto &procs = prog.procedures();
    if (br.targetProc >= procs.size()) {
        sink.error(EntityKind::Branch, site,
                   strprintf("branch target procedure %u out of range "
                             "(%zu procedures)",
                             br.targetProc, procs.size()));
        return;
    }
    const size_t target_blocks = procs[br.targetProc].blocks.size();
    if (br.kind == OpClass::IndirectBranch) {
        if (br.indirectTargets == 0)
            sink.error(EntityKind::Branch, site,
                       "indirect branch with no targets");
        else if (br.targetBlock +
                     static_cast<u32>(br.indirectTargets) >
                 target_blocks)
            sink.error(EntityKind::Branch, site,
                       strprintf("indirect target window [%u, %u) "
                                 "overruns procedure %u (%zu blocks)",
                                 br.targetBlock,
                                 br.targetBlock + br.indirectTargets,
                                 br.targetProc, target_blocks));
    } else if (br.targetBlock >= target_blocks) {
        sink.error(EntityKind::Branch, site,
                   strprintf("branch target block %u out of range in "
                             "procedure %u (%zu blocks)",
                             br.targetBlock, br.targetProc,
                             target_blocks));
    }
}

void
checkMemRefs(const Program &prog, const BasicBlock &bb, u64 site,
             Sink &sink)
{
    const auto &regions = prog.regions();
    for (size_t r = 0; r < bb.memRefs.size(); ++r) {
        const auto &ref = bb.memRefs[r];
        if (ref.regionId >= regions.size()) {
            sink.error(EntityKind::MemRef, site,
                       strprintf("ref %zu names region %u out of range "
                                 "(%zu regions)",
                                 r, ref.regionId, regions.size()));
            continue;
        }
        const u64 region_size = regions[ref.regionId].size;
        if (region_size == 0)
            sink.error(EntityKind::MemRef, site,
                       strprintf("ref %zu targets empty region %u", r,
                                 ref.regionId));
        if (ref.pattern == MemPattern::Stride) {
            if (ref.stride == 0)
                sink.error(EntityKind::MemRef, site,
                           strprintf("ref %zu has stride 0", r));
            else if (region_size != 0 && ref.stride > region_size)
                sink.error(EntityKind::MemRef, site,
                           strprintf("ref %zu stride %u exceeds region "
                                     "%u size %llu",
                                     r, ref.stride, ref.regionId,
                                     static_cast<unsigned long long>(
                                         region_size)));
        }
        if (ref.pattern == MemPattern::Churn && ref.churnSpan == 0)
            sink.error(EntityKind::MemRef, site,
                       strprintf("ref %zu has churn window 0", r));
    }
}

void
ProgramVerifier::run(const Artifacts &a, VerifyResult &out) const
{
    const Program &prog = *a.program;
    Sink sink(out, a.path, name());

    const auto &procs = prog.procedures();
    const auto &files = prog.files();
    const auto &regions = prog.regions();

    // Dense, sorted numbering: procedure/region extents are identified
    // by their table index everywhere downstream.
    for (size_t i = 0; i < procs.size(); ++i)
        if (procs[i].id != i)
            sink.error(EntityKind::Procedure, i,
                       strprintf("procedure id %u does not match its "
                                 "table index",
                                 procs[i].id));
    for (size_t i = 0; i < regions.size(); ++i)
        if (regions[i].id != i)
            sink.error(EntityKind::Region, i,
                       strprintf("region id %u does not match its "
                                 "table index",
                                 regions[i].id));

    // Object files must partition the procedures: every procedure in
    // exactly one file, with a consistent back-reference.
    std::vector<u32> placed(procs.size(), 0);
    for (size_t fi = 0; fi < files.size(); ++fi) {
        for (u32 pid : files[fi].procIds) {
            if (pid >= procs.size()) {
                sink.error(EntityKind::ObjectFile, fi,
                           strprintf("file '%s' lists procedure %u out "
                                     "of range (%zu procedures)",
                                     files[fi].name.c_str(), pid,
                                     procs.size()));
                continue;
            }
            if (++placed[pid] == 2)
                sink.error(EntityKind::Procedure, pid,
                           "procedure appears in multiple object files");
            if (procs[pid].fileIndex != fi && placed[pid] == 1)
                sink.error(EntityKind::Procedure, pid,
                           strprintf("procedure is listed in file %zu "
                                     "but claims file %u",
                                     fi, procs[pid].fileIndex));
        }
    }
    for (size_t pid = 0; pid < placed.size(); ++pid)
        if (placed[pid] == 0)
            sink.error(EntityKind::Procedure, pid,
                       "procedure is not in any object file");

    // Per-procedure structure: alignment, block geometry, branch
    // targets and memory sites. Sites are numbered densely proc-major,
    // matching ReplayPlan's numbering, so diagnostics line up across
    // passes.
    u64 site = 0;
    for (size_t pid = 0; pid < procs.size(); ++pid) {
        const Procedure &p = procs[pid];
        if (p.align == 0 || (p.align & (p.align - 1)) != 0)
            sink.error(EntityKind::Procedure, pid,
                       strprintf("alignment %u is not a power of two",
                                 p.align));
        if (p.blocks.empty())
            sink.error(EntityKind::Procedure, pid,
                       "procedure has no blocks");
        if (p.fileIndex >= files.size() && !files.empty())
            sink.error(EntityKind::Procedure, pid,
                       strprintf("file index %u out of range (%zu "
                                 "files)",
                                 p.fileIndex, files.size()));
        for (const BasicBlock &bb : p.blocks) {
            if (bb.bytes == 0)
                sink.error(EntityKind::Block, site,
                           "block has zero code bytes");
            if (bb.nInsts == 0)
                sink.error(EntityKind::Block, site,
                           "block retires zero instructions");
            checkBranch(prog, bb.branch, site, sink);
            checkMemRefs(prog, bb, site, sink);
            ++site;
        }
    }

    // Structure-digest agreement with an externally recorded value
    // (e.g. the digest a store key or campaign was built against).
    if (a.expectedProgramDigest != 0) {
        const u64 got = trace::programStructureDigest(prog);
        if (got != a.expectedProgramDigest)
            sink.error(EntityKind::Artifact, 0,
                       strprintf("program structure digest %016llx does "
                                 "not match expected %016llx",
                                 static_cast<unsigned long long>(got),
                                 static_cast<unsigned long long>(
                                     a.expectedProgramDigest)));
    }
}

} // anonymous namespace

std::unique_ptr<Pass>
makeProgramVerifier()
{
    return std::make_unique<ProgramVerifier>();
}

} // namespace interf::verify
