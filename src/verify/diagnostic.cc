#include "verify/diagnostic.hh"

#include "util/logging.hh"

namespace interf::verify
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

const char *
entityKindName(EntityKind k)
{
    switch (k) {
      case EntityKind::Artifact:
        return "artifact";
      case EntityKind::ObjectFile:
        return "object-file";
      case EntityKind::Region:
        return "region";
      case EntityKind::Procedure:
        return "procedure";
      case EntityKind::Block:
        return "block";
      case EntityKind::Branch:
        return "branch";
      case EntityKind::MemRef:
        return "mem-ref";
      case EntityKind::Event:
        return "event";
      case EntityKind::MemAccess:
        return "mem-access";
      case EntityKind::Site:
        return "site";
      case EntityKind::Placement:
        return "placement";
      case EntityKind::Page:
        return "page";
      case EntityKind::Manifest:
        return "manifest";
      case EntityKind::Batch:
        return "batch";
      case EntityKind::Cache:
        return "cache";
      case EntityKind::Btb:
        return "btb";
    }
    return "unknown";
}

std::string
Diagnostic::text() const
{
    return strprintf("%s: %s: [%s] %s %llu: %s", severityName(severity),
                     artifact.c_str(), pass, entityKindName(entity),
                     static_cast<unsigned long long>(index),
                     message.c_str());
}

void
VerifyResult::add(Diagnostic d)
{
    if (d.severity == Severity::Error)
        ++errorCount_;
    diagnostics_.push_back(std::move(d));
}

void
VerifyResult::merge(const VerifyResult &other)
{
    for (const auto &d : other.diagnostics_)
        add(d);
}

std::string
VerifyResult::summary() const
{
    if (diagnostics_.empty())
        return "clean";
    return strprintf("%zu error%s, %zu warning%s", errorCount(),
                     errorCount() == 1 ? "" : "s", warningCount(),
                     warningCount() == 1 ? "" : "s");
}

void
VerifyResult::printText(std::FILE *out) const
{
    for (const auto &d : diagnostics_)
        std::fprintf(out, "%s\n", d.text().c_str());
    std::fprintf(out, "%s\n", summary().c_str());
}

namespace
{

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // anonymous namespace

std::string
VerifyResult::toJson() const
{
    std::string out = strprintf(
        "{\"clean\": %s, \"errors\": %zu, \"warnings\": %zu, "
        "\"diagnostics\": [",
        ok() ? "true" : "false", errorCount(), warningCount());
    for (size_t i = 0; i < diagnostics_.size(); ++i) {
        const Diagnostic &d = diagnostics_[i];
        if (i)
            out += ", ";
        out += strprintf("{\"severity\": \"%s\", \"artifact\": \"%s\", "
                         "\"pass\": \"%s\", \"entity\": \"%s\", "
                         "\"index\": %llu, \"message\": \"%s\"}",
                         severityName(d.severity),
                         jsonEscape(d.artifact).c_str(), d.pass,
                         entityKindName(d.entity),
                         static_cast<unsigned long long>(d.index),
                         jsonEscape(d.message).c_str());
    }
    out += "]}";
    return out;
}

Sink::~Sink()
{
    if (suppressed_)
        out_.add({Severity::Warning, artifact_, pass_,
                  EntityKind::Artifact, 0,
                  strprintf("%zu further diagnostics suppressed",
                            suppressed_)});
}

void
Sink::emit(Severity severity, EntityKind entity, u64 index,
           std::string message)
{
    if (severity == Severity::Error)
        ++errors_;
    if (emitted_ >= kMaxDiagnostics) {
        ++suppressed_;
        return;
    }
    ++emitted_;
    out_.add({severity, artifact_, pass_, entity, index,
              std::move(message)});
}

} // namespace interf::verify
