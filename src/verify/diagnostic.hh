/**
 * @file
 * Diagnostics for the artifact verifier framework.
 *
 * Every verifier pass (see verify/verify.hh) reports through the same
 * vocabulary: a Diagnostic names the artifact it examined, the pass
 * that found the problem, the entity inside the artifact (kind +
 * index) and a human-readable message, at one of two severities.
 * VerifyResult collects diagnostics across passes and renders them as
 * text or as machine-readable JSON (the `interf_verify --json` output;
 * schema documented in DESIGN.md §5f).
 *
 * Diagnostics are data, not control flow: passes never panic or
 * fatal() on a corrupt artifact — callers decide whether a non-clean
 * result is fatal (trust boundaries), a nonzero exit (the lint tools)
 * or just a report.
 */

#ifndef INTERF_VERIFY_DIAGNOSTIC_HH
#define INTERF_VERIFY_DIAGNOSTIC_HH

#include <cstdio>
#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::verify
{

/** How bad a finding is. Errors make a result not ok(). */
enum class Severity : u8 {
    Warning, ///< Suspicious but not provably corrupt (e.g. stray file).
    Error,   ///< The artifact violates an invariant; do not trust it.
};

/** The entity inside an artifact a diagnostic points at. */
enum class EntityKind : u8 {
    Artifact,  ///< The artifact as a whole (header, framing, sizes).
    ObjectFile,///< Program: an object file on the link line.
    Region,    ///< Program: a data region.
    Procedure, ///< Program: a procedure.
    Block,     ///< Program: a basic block (index = dense site id).
    Branch,    ///< Program: a block's terminating branch site.
    MemRef,    ///< Program: a static memory-reference site.
    Event,     ///< Trace/plan: a dynamic block event (index = position).
    MemAccess, ///< Trace/plan: a memory-stream entry (index = position).
    Site,      ///< Plan: a site-table entry (dense block numbering).
    Placement, ///< Layout: a procedure placement (index = proc id).
    Page,      ///< Layout: a virtual page number.
    Manifest,  ///< Store: the manifest (index = batch-table slot).
    Batch,     ///< Store: a batch file (index = first layout).
    Cache,     ///< Machine: a cache level (0 = L1I, 1 = L1D, 2 = L2).
    Btb,       ///< Machine: the branch target buffer (index = 0).
};

const char *severityName(Severity s);
const char *entityKindName(EntityKind k);

/** One finding: where, what, and how bad. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    std::string artifact; ///< Path or pseudo-path ("<program>", ...).
    const char *pass = "";///< Name of the pass that emitted it.
    EntityKind entity = EntityKind::Artifact;
    u64 index = 0;        ///< Entity index within the artifact.
    std::string message;

    /** One-line text rendering ("error: <artifact>: block 7: ..."). */
    std::string text() const;
};

/** The report of one verification run: diagnostics across passes. */
class VerifyResult
{
  public:
    /** True when no pass reported an Error (warnings allowed). */
    bool ok() const { return errorCount_ == 0; }

    size_t errorCount() const { return errorCount_; }
    size_t warningCount() const
    {
        return diagnostics_.size() - errorCount_;
    }

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    /** Append one diagnostic. */
    void add(Diagnostic d);

    /** Append every diagnostic of @p other. */
    void merge(const VerifyResult &other);

    /** "clean" or "N errors, M warnings". */
    std::string summary() const;

    /** Print every diagnostic, one per line, then the summary. */
    void printText(std::FILE *out) const;

    /**
     * Machine-readable rendering: {"clean": bool, "errors": N,
     * "warnings": N, "diagnostics": [{severity, artifact, pass,
     * entity, index, message}, ...]}.
     */
    std::string toJson() const;

  private:
    std::vector<Diagnostic> diagnostics_;
    size_t errorCount_ = 0;
};

/**
 * Emission helper bound to one (artifact, pass) pair, so pass code
 * reads as sink.error(EntityKind::Block, idx, "..."). Caps emission at
 * kMaxDiagnostics per sink: a single corrupt length field must not
 * turn into millions of per-entity diagnostics.
 */
class Sink
{
  public:
    static constexpr size_t kMaxDiagnostics = 64;

    Sink(VerifyResult &out, std::string artifact, const char *pass)
        : out_(out), artifact_(std::move(artifact)), pass_(pass)
    {
    }

    ~Sink();

    Sink(const Sink &) = delete;
    Sink &operator=(const Sink &) = delete;

    void error(EntityKind entity, u64 index, std::string message)
    {
        emit(Severity::Error, entity, index, std::move(message));
    }

    void warning(EntityKind entity, u64 index, std::string message)
    {
        emit(Severity::Warning, entity, index, std::move(message));
    }

    /** Errors emitted through this sink (suppressed ones included). */
    size_t errors() const { return errors_; }

  private:
    void emit(Severity severity, EntityKind entity, u64 index,
              std::string message);

    VerifyResult &out_;
    std::string artifact_;
    const char *pass_;
    size_t emitted_ = 0;
    size_t suppressed_ = 0;
    size_t errors_ = 0;
};

} // namespace interf::verify

#endif // INTERF_VERIFY_DIAGNOSTIC_HH
