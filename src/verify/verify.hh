/**
 * @file
 * Composable static-analysis passes over interferometry artifacts.
 *
 * The whole method rests on artifacts being semantically equivalent by
 * construction: hundreds of reordered layouts must encode the same
 * program, and a regression conclusion is garbage if a trace, replay
 * plan or cached store batch is silently inconsistent. This module is
 * the LLVM-module-verifier analogue for that IR-like pipeline
 * (Program -> Trace -> ReplayPlan -> Layout tables -> Store batches):
 * each pass re-derives an artifact's invariants independently of the
 * code that built it and reports violations as Diagnostics instead of
 * crashing deep inside the replay kernel hours later.
 *
 * Passes (each usable alone or through PassManager):
 *   - ProgramVerifier:    CFG well-formedness, file partition,
 *     memref/region sanity, structure-digest agreement.
 *   - TraceVerifier:      event sites valid, outcomes consistent with
 *     the CFG, memory stream in-bounds, header counts re-derived.
 *   - ReplayPlanVerifier: SoA arrays mutually sized, site table and
 *     cross-references in range, plan equivalent to its source trace
 *     entity by entity.
 *   - LayoutVerifier:     procedure placements non-overlapping and
 *     aligned, page map bijective and offset-preserving.
 *   - StoreVerifier:      manifest/batch cross-checks beyond the
 *     fail-closed read path: digests recomputed, orphan and truncated
 *     batches detected — without fatal()ing on the first bad entry.
 *
 * Where they run (see DESIGN.md §5f): trace::io load paths always;
 * ReplayPlan construction and Campaign inputs in Debug builds or with
 * INTERF_VERIFY=1; store open with INTERF_VERIFY=1; everything on
 * demand through tools/interf_verify. Verification is never on the
 * per-layout replay hot path.
 */

#ifndef INTERF_VERIFY_VERIFY_HH
#define INTERF_VERIFY_VERIFY_HH

#include <memory>
#include <string>
#include <vector>

#include "verify/diagnostic.hh"

#include "util/types.hh"

namespace interf::core
{
struct MachineConfig;
}
namespace interf::layout
{
class CodeLayout;
class PageMap;
struct LayoutSpec;
}
namespace interf::trace
{
class Program;
class Trace;
class ReplayPlan;
}

namespace interf::verify
{

/**
 * The artifacts one verification run may examine. Passes declare what
 * they need via Pass::applicable(); unset pointers simply skip the
 * passes that would need them. All pointers are borrowed and must
 * outlive the run.
 */
struct Artifacts
{
    const trace::Program *program = nullptr;
    const trace::Trace *trace = nullptr;
    const trace::ReplayPlan *plan = nullptr;
    const layout::CodeLayout *codeLayout = nullptr;
    const layout::PageMap *pageMap = nullptr;

    /** Machine geometry for the src/analyze soundness passes. */
    const core::MachineConfig *machine = nullptr;
    /** Candidate layout permutations for the injectivity pass. */
    const std::vector<layout::LayoutSpec> *layoutSpecs = nullptr;

    /**
     * @{ Address-space overrides for the soundness passes (0 = derive
     * from the engine's layout constants / the bound program). The
     * ceilings are exclusive upper bounds on, respectively, any
     * cache-indexed (post-page-map) address and any branch PC.
     */
    Addr lineAddrCeiling = 0;
    Addr codeAddrCeiling = 0;
    /** @} */

    /** Store entry to verify: root directory + campaign key. */
    std::string storeRoot;
    bool hasStoreKey = false;
    u64 storeKey = 0;
    /** Also recompute every batch's payload checksum (reads all data). */
    bool deepStore = true;

    /** Expected programStructureDigest (0 = don't check). */
    u64 expectedProgramDigest = 0;

    /** Artifact label used in diagnostics ("<program>", a path, ...). */
    std::string path = "<artifacts>";
};

/** One composable static-analysis pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name, embedded in every diagnostic it emits. */
    virtual const char *name() const = 0;

    /** True when @p a carries everything this pass needs. */
    virtual bool applicable(const Artifacts &a) const = 0;

    /** Analyze; report through @p out. Must never panic or fatal(). */
    virtual void run(const Artifacts &a, VerifyResult &out) const = 0;
};

/** @{ Pass factories. */
std::unique_ptr<Pass> makeProgramVerifier();
std::unique_ptr<Pass> makeTraceVerifier();
std::unique_ptr<Pass> makeReplayPlanVerifier();
std::unique_ptr<Pass> makeLayoutVerifier();
std::unique_ptr<Pass> makeStoreVerifier();
/** @} */

/** Runs every added pass whose requirements an Artifacts set meets. */
class PassManager
{
  public:
    PassManager &add(std::unique_ptr<Pass> pass);

    /** The full pipeline: all five passes in dependency order. */
    static PassManager standard();

    /** Run applicable passes; merge their diagnostics. */
    VerifyResult run(const Artifacts &a) const;

    size_t passCount() const { return passes_.size(); }

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** @{ Convenience single-artifact entry points. */
VerifyResult verifyProgram(const trace::Program &prog,
                           const std::string &path = "<program>");
VerifyResult verifyTrace(const trace::Program &prog,
                         const trace::Trace &trace,
                         const std::string &path = "<trace>");
VerifyResult verifyPlan(const trace::Program &prog,
                        const trace::Trace &trace,
                        const trace::ReplayPlan &plan,
                        const std::string &path = "<plan>");
VerifyResult verifyLayout(const trace::Program &prog,
                          const layout::CodeLayout &code,
                          const std::string &path = "<layout>");
VerifyResult verifyStoreEntry(const std::string &root, u64 key,
                              bool deep = true);
/** @} */

/**
 * @{ Lower-level seams the composite passes delegate to, exposed so
 * corruption tests (and tools) can feed hand-built tables.
 */

/** Check an explicit proc-id -> base-address placement table. */
void verifyPlacements(const trace::Program &prog,
                      const std::vector<Addr> &proc_base,
                      const std::string &path, VerifyResult &out);

/** Check an explicit vpn -> ppn table for bijectivity. */
void verifyPageTable(const std::vector<u32> &vpn_to_ppn,
                     const std::string &path, VerifyResult &out);

/** Check a PageMap over its first @p pages page numbers. */
void verifyPageMap(const layout::PageMap &pages, u32 n_pages,
                   const std::string &path, VerifyResult &out);
/** @} */

/**
 * Verify every campaign entry under a store root. Non-key
 * subdirectories get a warning; a missing/unreadable root is an error.
 *
 * @param keys Out-param (optional): the keys found, in scan order.
 */
VerifyResult verifyStoreRoot(const std::string &root, bool deep = true,
                             std::vector<u64> *keys = nullptr);

/**
 * Lint a trace file without fatal()ing: format/framing problems and
 * program-checksum mismatches become diagnostics, and a structurally
 * readable trace is additionally run through TraceVerifier.
 */
VerifyResult verifyTraceFile(const std::string &path,
                             const trace::Program &prog);

/**
 * True when artifact verification should run at trust boundaries:
 * Debug builds (NDEBUG unset) always, any build with INTERF_VERIFY=1
 * in the environment (INTERF_VERIFY=0 forces it off, Debug included).
 * Cached after the first call.
 */
bool verifyOnTrust();

/**
 * True only when INTERF_VERIFY explicitly enables verification —
 * unlike verifyOnTrust(), Debug builds do not imply it. Used for the
 * expensive boundaries (store open re-reads every batch) that should
 * stay opt-in even in Debug test runs.
 */
bool verifyEnvRequested();

/**
 * panic() with the first few diagnostics when @p result has errors —
 * the trust-boundary reaction to a corrupt artifact produced by our
 * own pipeline (a library bug by definition).
 */
void requireClean(const VerifyResult &result, const char *what);

} // namespace interf::verify

#endif // INTERF_VERIFY_VERIFY_HH
