/**
 * @file
 * PassManager plumbing, convenience entry points and the
 * trust-boundary policy (Debug builds / INTERF_VERIFY).
 */

#include <cstdlib>
#include <cstring>

#include "verify/verify.hh"

#include "util/logging.hh"

namespace interf::verify
{

PassManager &
PassManager::add(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
    return *this;
}

PassManager
PassManager::standard()
{
    PassManager pm;
    pm.add(makeProgramVerifier())
        .add(makeTraceVerifier())
        .add(makeReplayPlanVerifier())
        .add(makeLayoutVerifier())
        .add(makeStoreVerifier());
    return pm;
}

VerifyResult
PassManager::run(const Artifacts &a) const
{
    VerifyResult out;
    for (const auto &pass : passes_)
        if (pass->applicable(a))
            pass->run(a, out);
    return out;
}

VerifyResult
verifyProgram(const trace::Program &prog, const std::string &path)
{
    Artifacts a;
    a.program = &prog;
    a.path = path;
    VerifyResult out;
    makeProgramVerifier()->run(a, out);
    return out;
}

VerifyResult
verifyTrace(const trace::Program &prog, const trace::Trace &trace,
            const std::string &path)
{
    Artifacts a;
    a.program = &prog;
    a.trace = &trace;
    a.path = path;
    VerifyResult out;
    makeTraceVerifier()->run(a, out);
    return out;
}

VerifyResult
verifyPlan(const trace::Program &prog, const trace::Trace &trace,
           const trace::ReplayPlan &plan, const std::string &path)
{
    Artifacts a;
    a.program = &prog;
    a.trace = &trace;
    a.plan = &plan;
    a.path = path;
    VerifyResult out;
    makeReplayPlanVerifier()->run(a, out);
    return out;
}

VerifyResult
verifyLayout(const trace::Program &prog, const layout::CodeLayout &code,
             const std::string &path)
{
    Artifacts a;
    a.program = &prog;
    a.codeLayout = &code;
    a.path = path;
    VerifyResult out;
    makeLayoutVerifier()->run(a, out);
    return out;
}

bool
verifyOnTrust()
{
#ifdef NDEBUG
    constexpr bool kDefault = false;
#else
    constexpr bool kDefault = true;
#endif
    // Cached: trust boundaries sit inside constructors that campaigns
    // and tests hit thousands of times.
    static const bool enabled = [] {
        const char *env = std::getenv("INTERF_VERIFY");
        if (env == nullptr || *env == '\0')
            return kDefault;
        return std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

bool
verifyEnvRequested()
{
    static const bool enabled = [] {
        const char *env = std::getenv("INTERF_VERIFY");
        if (env == nullptr || *env == '\0')
            return false;
        return std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

void
requireClean(const VerifyResult &result, const char *what)
{
    if (result.ok())
        return;
    size_t shown = 0;
    for (const auto &d : result.diagnostics()) {
        if (d.severity != Severity::Error)
            continue;
        warn("%s", d.text().c_str());
        if (++shown >= 8)
            break;
    }
    panic("%s failed verification: %s (see diagnostics above; "
          "artifacts produced by this pipeline must verify clean)",
          what, result.summary().c_str());
}

} // namespace interf::verify
