/**
 * @file
 * LayoutVerifier: code layouts and page maps.
 *
 * A layout is only a valid "semantically equivalent executable" if it
 * actually is an executable: every procedure at its declared
 * alignment, no two procedures overlapping, the link line a
 * permutation of the authored files, and block/branch addresses
 * contiguous inside each procedure. The page map must be a bijection
 * that preserves page offsets — a many-to-one map would alias
 * unrelated lines in the physically-indexed L2 and silently double
 * count conflicts.
 *
 * The placement and page-table checks are exposed as standalone seams
 * (verifyPlacements / verifyPageTable) operating on plain tables, so
 * corruption tests and tools can feed hand-built bad inputs that the
 * Linker/PageMap constructors could never produce.
 */

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "verify/verify.hh"

#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "trace/program.hh"
#include "util/logging.hh"

namespace interf::verify
{

namespace
{

constexpr const char *kPassName = "layout";

using trace::Program;

class LayoutVerifier : public Pass
{
  public:
    const char *name() const override { return kPassName; }

    bool applicable(const Artifacts &a) const override
    {
        return (a.codeLayout != nullptr && a.program != nullptr) ||
               a.pageMap != nullptr;
    }

    void run(const Artifacts &a, VerifyResult &out) const override;
};

/** True when @p order is a permutation of [0, n). */
bool
isPermutation(const std::vector<u32> &order, size_t n)
{
    if (order.size() != n)
        return false;
    std::vector<u8> seen(n, 0);
    for (u32 v : order) {
        if (v >= n || seen[v])
            return false;
        seen[v] = 1;
    }
    return true;
}

void
checkCodeLayout(const Program &prog, const layout::CodeLayout &code,
                const std::string &path, VerifyResult &out)
{
    Sink sink(out, path, kPassName);
    const auto &procs = prog.procedures();

    if (!isPermutation(code.fileOrder(), prog.files().size())) {
        sink.error(EntityKind::Artifact, 0,
                   strprintf("link line is not a permutation of the "
                             "%zu object files",
                             prog.files().size()));
        return;
    }
    if (!isPermutation(code.procOrder(), procs.size())) {
        sink.error(EntityKind::Artifact, 0,
                   strprintf("memory order is not a permutation of the "
                             "%zu procedures",
                             procs.size()));
        return;
    }

    // Blocks contiguous inside each procedure, branch addresses inside
    // their block.
    for (const auto &p : procs) {
        Addr expect = code.procBase(p.id);
        for (size_t b = 0; b < p.blocks.size(); ++b) {
            const Addr block_addr = code.blockAddr(p.id,
                                                   static_cast<u32>(b));
            const Addr branch_addr = code.branchAddr(
                p.id, static_cast<u32>(b));
            const u64 site = static_cast<u64>(b);
            if (block_addr != expect)
                sink.error(EntityKind::Placement, p.id,
                           strprintf("block %llu starts at %llx, "
                                     "contiguity requires %llx",
                                     static_cast<unsigned long long>(
                                         site),
                                     static_cast<unsigned long long>(
                                         block_addr),
                                     static_cast<unsigned long long>(
                                         expect)));
            if (branch_addr < block_addr ||
                branch_addr >= block_addr + p.blocks[b].bytes)
                sink.error(EntityKind::Placement, p.id,
                           strprintf("block %llu's terminator address "
                                     "lies outside the block",
                                     static_cast<unsigned long long>(
                                         site)));
            expect += p.blocks[b].bytes;
        }
    }

    std::vector<Addr> bases(procs.size());
    for (const auto &p : procs)
        bases[p.id] = code.procBase(p.id);
    verifyPlacements(prog, bases, path, out);
}

void
LayoutVerifier::run(const Artifacts &a, VerifyResult &out) const
{
    if (a.codeLayout != nullptr && a.program != nullptr)
        checkCodeLayout(*a.program, *a.codeLayout, a.path, out);
    if (a.pageMap != nullptr) {
        // 64 MiB of address space: covers any text segment and the
        // heap arenas the campaigns place.
        verifyPageMap(*a.pageMap, 1u << 14, a.path, out);
    }
}

} // anonymous namespace

std::unique_ptr<Pass>
makeLayoutVerifier()
{
    return std::make_unique<LayoutVerifier>();
}

void
verifyPlacements(const trace::Program &prog,
                 const std::vector<Addr> &proc_base,
                 const std::string &path, VerifyResult &out)
{
    Sink sink(out, path, kPassName);
    const auto &procs = prog.procedures();
    if (proc_base.size() != procs.size()) {
        sink.error(EntityKind::Artifact, 0,
                   strprintf("placement table has %zu entries, program "
                             "has %zu procedures",
                             proc_base.size(), procs.size()));
        return;
    }

    // Alignment respected.
    for (size_t pid = 0; pid < procs.size(); ++pid) {
        const u32 align = procs[pid].align;
        if (align != 0 && (align & (align - 1)) == 0 &&
            (proc_base[pid] & (align - 1)) != 0)
            sink.error(EntityKind::Placement, pid,
                       strprintf("base %llx violates the procedure's "
                                 "%u-byte alignment",
                                 static_cast<unsigned long long>(
                                     proc_base[pid]),
                                 align));
    }

    // No overlap: sort by base, then each extent must end before the
    // next begins.
    std::vector<u32> by_base(procs.size());
    for (u32 i = 0; i < by_base.size(); ++i)
        by_base[i] = i;
    std::sort(by_base.begin(), by_base.end(), [&](u32 l, u32 r) {
        return proc_base[l] < proc_base[r];
    });
    for (size_t i = 0; i + 1 < by_base.size(); ++i) {
        const u32 pid = by_base[i];
        const u32 next = by_base[i + 1];
        const Addr end = proc_base[pid] + procs[pid].bytes();
        if (end > proc_base[next])
            sink.error(EntityKind::Placement, pid,
                       strprintf("procedure [%llx, %llx) overlaps "
                                 "procedure %u at %llx",
                                 static_cast<unsigned long long>(
                                     proc_base[pid]),
                                 static_cast<unsigned long long>(end),
                                 next,
                                 static_cast<unsigned long long>(
                                     proc_base[next])));
    }
}

void
verifyPageTable(const std::vector<u32> &vpn_to_ppn,
                const std::string &path, VerifyResult &out)
{
    Sink sink(out, path, kPassName);
    std::unordered_set<u32> seen;
    seen.reserve(vpn_to_ppn.size());
    for (size_t vpn = 0; vpn < vpn_to_ppn.size(); ++vpn)
        if (!seen.insert(vpn_to_ppn[vpn]).second)
            sink.error(EntityKind::Page, vpn,
                       strprintf("physical page %u is mapped by more "
                                 "than one virtual page (map is not "
                                 "injective)",
                                 vpn_to_ppn[vpn]));
}

void
verifyPageMap(const layout::PageMap &pages, u32 n_pages,
              const std::string &path, VerifyResult &out)
{
    // Offset preservation and identity behaviour, checked directly...
    {
        Sink sink(out, path, kPassName);
        for (u32 vpn = 0; vpn < n_pages; ++vpn) {
            const Addr va =
                (static_cast<Addr>(vpn) << layout::PageMap::pageBits) |
                0x123;
            const Addr pa = pages.translate(va);
            if ((pa & ((1u << layout::PageMap::pageBits) - 1)) !=
                (va & ((1u << layout::PageMap::pageBits) - 1))) {
                sink.error(EntityKind::Page, vpn,
                           "translation does not preserve the page "
                           "offset");
                return;
            }
            if (pages.isIdentity() && pa != va) {
                sink.error(EntityKind::Page, vpn,
                           "identity page map moved a page");
                return;
            }
        }
    }

    // ...then injectivity over the window via the table seam.
    std::vector<u32> table(n_pages);
    for (u32 vpn = 0; vpn < n_pages; ++vpn)
        table[vpn] = static_cast<u32>(
            pages.translate(static_cast<Addr>(vpn)
                            << layout::PageMap::pageBits) >>
            layout::PageMap::pageBits);
    verifyPageTable(table, path, out);
}

} // namespace interf::verify
