/**
 * @file
 * TraceVerifier: dynamic traces checked against the static program.
 *
 * Three layers of checks, each re-derived from the Program rather than
 * trusted from the trace header:
 *
 *   1. per-event structure — site ids in range, outcome bits legal for
 *      the block's terminator kind (branchless blocks never redirect,
 *      unconditional terminators always do, indirect choices inside
 *      the target window);
 *   2. the memory stream — exactly as long as the executed blocks'
 *      static reference counts, every id naming the region its static
 *      site names, every offset inside that region;
 *   3. control-flow continuity — a call-stack-tracking re-walk proving
 *      each event's successor is the one the CFG dictates for the
 *      recorded outcome (the interferometry invariant: a trace is one
 *      fixed path through the program, layouts only move addresses);
 *
 * plus a recount of the five header aggregates. verifyTraceFile wraps
 * the same pass behind a non-fatal binary reader so lint tools can
 * diagnose corrupt files instead of dying on the first bad byte.
 */

#include <fstream>

#include "verify/verify.hh"

#include "trace/io.hh"
#include "trace/program.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace interf::verify
{

namespace
{

using trace::BasicBlock;
using trace::BlockEvent;
using trace::OpClass;
using trace::Program;
using trace::Trace;

class TraceVerifier : public Pass
{
  public:
    const char *name() const override { return "trace"; }

    bool applicable(const Artifacts &a) const override
    {
        return a.program != nullptr && a.trace != nullptr;
    }

    void run(const Artifacts &a, VerifyResult &out) const override;
};

/** (proc, block) of one executed site, bounds-unchecked storage. */
struct Pos
{
    u32 proc;
    u32 block;

    bool operator==(const Pos &o) const
    {
        return proc == o.proc && block == o.block;
    }
};

/**
 * Re-walk the trace's control flow with a tracked call stack, proving
 * each successor consistent with the recorded outcome. Precondition:
 * every event's (proc, block) is in range. Stops at the first
 * mismatch — everything after it would mismatch too.
 */
void
checkContinuity(const Program &prog, const Trace &trace, Sink &sink)
{
    const auto &events = trace.events;
    if (events.empty())
        return;
    if (events[0].proc != 0 || events[0].block != 0) {
        sink.error(EntityKind::Event, 0,
                   strprintf("trace starts at (proc %u, block %u), not "
                             "at main's entry",
                             events[0].proc, events[0].block));
        return;
    }

    std::vector<Pos> stack;
    for (size_t i = 0; i + 1 < events.size(); ++i) {
        const BlockEvent &ev = events[i];
        const Pos actual = {events[i + 1].proc, events[i + 1].block};
        const BasicBlock &bb = prog.block(ev.proc, ev.block);
        const auto &br = bb.branch;
        const u32 n_blocks =
            static_cast<u32>(prog.proc(ev.proc).blocks.size());
        const Pos fallthrough = {ev.proc, static_cast<u32>(ev.block) + 1};

        Pos expected;
        bool is_return = false;
        if (!br.exists()) {
            if (fallthrough.block < n_blocks)
                expected = fallthrough;
            else
                is_return = true; // Implicit return off the last block.
        } else {
            switch (br.kind) {
              case OpClass::CondBranch:
                expected = ev.taken
                               ? Pos{br.targetProc, br.targetBlock}
                               : fallthrough;
                break;
              case OpClass::UncondBranch:
                expected = {br.targetProc, br.targetBlock};
                break;
              case OpClass::Call: {
                const Pos callee = {br.targetProc, 0};
                if (actual == callee) {
                    // Taken call: the fall-through is the return site.
                    stack.push_back(fallthrough);
                    continue;
                }
                // Depth-limited (skipped) call: falls through, no push.
                expected = fallthrough;
                break;
              }
              case OpClass::IndirectBranch:
                expected = {br.targetProc,
                            static_cast<u32>(br.targetBlock) +
                                ev.indirectChoice};
                break;
              case OpClass::Return:
              default:
                is_return = true;
                break;
            }
        }

        if (is_return) {
            if (!stack.empty()) {
                expected = stack.back();
                stack.pop_back();
            } else {
                // Return from main: the next event, if any, is the
                // next main invocation of the run-length rule.
                expected = {0, 0};
            }
        }

        if (!(actual == expected)) {
            sink.error(EntityKind::Event, i + 1,
                       strprintf("control flow reaches (proc %u, block "
                                 "%u) but event %zu's outcome leads to "
                                 "(proc %u, block %u)",
                                 actual.proc, actual.block, i,
                                 expected.proc, expected.block));
            return;
        }
    }
}

void
TraceVerifier::run(const Artifacts &a, VerifyResult &out) const
{
    const Program &prog = *a.program;
    const Trace &trace = *a.trace;
    Sink sink(out, a.path, name());

    const auto &procs = prog.procedures();
    const auto &regions = prog.regions();

    // Layer 1: per-event structure, plus the header recount and the
    // expected memory-stream length, gathered in one scan.
    bool sites_ok = true;
    u64 expected_mem = 0;
    u64 insts = 0, conds = 0, takens = 0, loads = 0, stores = 0;
    for (size_t i = 0; i < trace.events.size(); ++i) {
        const BlockEvent &ev = trace.events[i];
        if (ev.proc >= procs.size()) {
            sink.error(EntityKind::Event, i,
                       strprintf("procedure %u out of range (%zu "
                                 "procedures)",
                                 ev.proc, procs.size()));
            sites_ok = false;
            continue;
        }
        const auto &blocks = procs[ev.proc].blocks;
        if (ev.block >= blocks.size()) {
            sink.error(EntityKind::Event, i,
                       strprintf("block %u out of range in procedure "
                                 "%u (%zu blocks)",
                                 ev.block, ev.proc, blocks.size()));
            sites_ok = false;
            continue;
        }
        const BasicBlock &bb = blocks[ev.block];
        const auto &br = bb.branch;

        if (ev.taken > 1)
            sink.error(EntityKind::Event, i,
                       strprintf("taken flag %u is not 0/1", ev.taken));
        if (!br.exists() && ev.taken)
            sink.error(EntityKind::Event, i,
                       "branchless block recorded a taken redirect");
        if (br.exists() && !br.isConditional() && !ev.taken)
            sink.error(EntityKind::Event, i,
                       strprintf("unconditional terminator (kind %d) "
                                 "recorded as not taken",
                                 static_cast<int>(br.kind)));
        if (br.kind == OpClass::IndirectBranch) {
            if (ev.indirectChoice >= br.indirectTargets)
                sink.error(EntityKind::Event, i,
                           strprintf("indirect choice %u outside the "
                                     "site's %u targets",
                                     ev.indirectChoice,
                                     br.indirectTargets));
        } else if (ev.indirectChoice != 0) {
            sink.error(EntityKind::Event, i,
                       "non-indirect event carries an indirect choice");
        }
        if (ev.pad != 0)
            sink.warning(EntityKind::Event, i,
                         "event padding bytes are not zero");

        expected_mem += bb.memRefs.size();
        insts += bb.nInsts;
        loads += bb.loads();
        stores += bb.stores();
        if (br.isConditional())
            ++conds;
        if (ev.taken)
            ++takens;
    }

    // Layer 2: the memory stream against the executed blocks' static
    // reference sites.
    if (expected_mem != trace.memIds.size()) {
        sink.error(EntityKind::Artifact, 0,
                   strprintf("memory stream has %zu ids, executed "
                             "blocks reference %llu",
                             trace.memIds.size(),
                             static_cast<unsigned long long>(
                                 expected_mem)));
    } else if (sites_ok) {
        size_t j = 0;
        for (size_t i = 0; i < trace.events.size(); ++i) {
            const BlockEvent &ev = trace.events[i];
            const BasicBlock &bb = prog.block(ev.proc, ev.block);
            for (const auto &ref : bb.memRefs) {
                const u64 id = trace.memIds[j];
                const u32 region = trace::dataIdRegion(id);
                if (ref.regionId >= regions.size()) {
                    // The static site itself is bad; the program pass
                    // owns that diagnostic.
                } else if (region != ref.regionId)
                    sink.error(EntityKind::MemAccess, j,
                               strprintf("access names region %u but "
                                         "its static site (event %zu) "
                                         "names region %u",
                                         region, i, ref.regionId));
                else if (trace::dataIdOffset(id) >= regions[region].size)
                    sink.error(EntityKind::MemAccess, j,
                               strprintf("offset %llu outside region "
                                         "%u (%llu bytes)",
                                         static_cast<unsigned long long>(
                                             trace::dataIdOffset(id)),
                                         region,
                                         static_cast<unsigned long long>(
                                             regions[region].size)));
                ++j;
            }
        }
    }

    // Header aggregates: recomputed, never trusted.
    if (sites_ok) {
        if (trace.instCount != insts)
            sink.error(EntityKind::Artifact, 0,
                       strprintf("header instCount %llu, events retire "
                                 "%llu",
                                 static_cast<unsigned long long>(
                                     trace.instCount),
                                 static_cast<unsigned long long>(insts)));
        if (trace.condBranches != conds)
            sink.error(EntityKind::Artifact, 0,
                       strprintf("header condBranches %llu, events "
                                 "execute %llu",
                                 static_cast<unsigned long long>(
                                     trace.condBranches),
                                 static_cast<unsigned long long>(conds)));
        if (trace.takenBranches != takens)
            sink.error(EntityKind::Artifact, 0,
                       strprintf("header takenBranches %llu, events "
                                 "record %llu",
                                 static_cast<unsigned long long>(
                                     trace.takenBranches),
                                 static_cast<unsigned long long>(
                                     takens)));
        if (trace.loads != loads)
            sink.error(EntityKind::Artifact, 0,
                       strprintf("header loads %llu, events issue %llu",
                                 static_cast<unsigned long long>(
                                     trace.loads),
                                 static_cast<unsigned long long>(loads)));
        if (trace.stores != stores)
            sink.error(EntityKind::Artifact, 0,
                       strprintf("header stores %llu, events issue %llu",
                                 static_cast<unsigned long long>(
                                     trace.stores),
                                 static_cast<unsigned long long>(
                                     stores)));
    }

    // Layer 3: control-flow continuity (needs every site in range).
    if (sites_ok)
        checkContinuity(prog, trace, sink);
}

} // anonymous namespace

std::unique_ptr<Pass>
makeTraceVerifier()
{
    return std::make_unique<TraceVerifier>();
}

VerifyResult
verifyTraceFile(const std::string &path, const trace::Program &prog)
{
    VerifyResult out;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        Sink sink(out, path, "trace-file");
        sink.error(EntityKind::Artifact, 0, "cannot open trace file");
        return out;
    }
    Trace loaded;
    std::string error;
    if (!trace::tryLoadTrace(is, prog, loaded, error)) {
        Sink sink(out, path, "trace-file");
        sink.error(EntityKind::Artifact, 0, error);
        return out;
    }
    out.merge(verifyTrace(prog, loaded, path));
    return out;
}

} // namespace interf::verify
