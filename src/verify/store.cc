/**
 * @file
 * StoreVerifier: campaign artifact store entries, linted leniently.
 *
 * The store's own read path (store/store.cc) is deliberately
 * fail-closed — the first corrupt byte is fatal(), because a resuming
 * campaign must never ingest garbage samples. A lint tool has the
 * opposite need: parse as far as the bytes allow and report *every*
 * problem, so an operator can see whether an entry has one flipped
 * bit or is gone wholesale. This pass re-reads the same format
 * (store/format.hh) with that stance:
 *
 *   - manifest framing, key binding, seal digest, batch contiguity;
 *   - every indexed batch: present, header fields matching the
 *     manifest entry, payload checksum recomputed from the bytes;
 *   - the directory itself: orphan batches (valid crash leftovers —
 *     warnings), stale temp files, foreign files.
 *
 * An entry with no manifest and no batches is a cold store: clean.
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "verify/verify.hh"

#include "store/format.hh"
#include "store/serialize.hh"
#include "store/store.hh"
#include "util/digest.hh"
#include "util/logging.hh"

namespace interf::verify
{

namespace
{

namespace fs = std::filesystem;
namespace fmt = store::format;

constexpr const char *kPassName = "store";

class StoreVerifier : public Pass
{
  public:
    const char *name() const override { return "store"; }

    bool applicable(const Artifacts &a) const override
    {
        return !a.storeRoot.empty() && a.hasStoreKey;
    }

    void run(const Artifacts &a, VerifyResult &out) const override
    {
        out.merge(verifyStoreEntry(a.storeRoot, a.storeKey,
                                   a.deepStore));
    }
};

/**
 * Parse a manifest leniently. Returns true when the batch table could
 * be recovered (later checks can cross-reference it), false when the
 * file is unusable beyond its own diagnostics.
 */
bool
readManifestLenient(const std::string &path, u64 expect_key,
                    std::vector<store::BatchInfo> &batches, Sink &sink)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        sink.error(EntityKind::Manifest, 0, "manifest is unreadable");
        return false;
    }

    u64 magic = 0, key = 0;
    u32 version = 0, n_batches = 0;
    fmt::readPod(is, magic);
    fmt::readPod(is, version);
    if (!is || magic != fmt::kManifestMagic) {
        sink.error(EntityKind::Manifest, 0,
                   "not a store manifest (bad magic)");
        return false;
    }
    if (version != fmt::kFormatVersion) {
        sink.error(EntityKind::Manifest, 0,
                   strprintf("unsupported format version %u", version));
        return false;
    }
    fmt::readPod(is, key);
    fmt::readPod(is, n_batches);
    if (!is) {
        sink.error(EntityKind::Manifest, 0,
                   "truncated store manifest header");
        return false;
    }
    if (key != expect_key)
        sink.error(EntityKind::Manifest, 0,
                   strprintf("manifest key %s does not match the "
                             "entry directory's key %s",
                             digestHex(key).c_str(),
                             digestHex(expect_key).c_str()));

    std::error_code size_ec;
    const u64 file_size = fs::file_size(path, size_ec);
    if (size_ec ||
        file_size < fmt::kManifestHeaderBytes + fmt::kManifestSealBytes ||
        n_batches > (file_size - fmt::kManifestHeaderBytes -
                     fmt::kManifestSealBytes) /
                        fmt::kManifestEntryBytes) {
        sink.error(EntityKind::Manifest, 0,
                   strprintf("truncated store manifest (batch "
                             "table of %u entries overruns the "
                             "file)",
                             n_batches));
        return false;
    }

    batches.resize(n_batches);
    for (auto &b : batches) {
        fmt::readPod(is, b.first);
        fmt::readPod(is, b.count);
        fmt::readPod(is, b.checksum);
    }
    u64 seal = 0;
    fmt::readPod(is, seal);
    if (!is) {
        sink.error(EntityKind::Manifest, 0, "truncated store manifest");
        batches.clear();
        return false;
    }
    if (seal != fmt::manifestDigest(key, batches)) {
        sink.error(EntityKind::Manifest, 0,
                   "manifest seal digest mismatch (corrupt manifest)");
        return false;
    }

    u32 next = 0;
    bool contiguous = true;
    for (size_t slot = 0; slot < batches.size(); ++slot) {
        const auto &b = batches[slot];
        if (b.first != next || b.count == 0) {
            sink.error(EntityKind::Manifest, slot,
                       strprintf("batch entry [%u, %u) breaks "
                                 "contiguity (expected first layout "
                                 "%u, nonzero count)",
                                 b.first, b.first + b.count, next));
            contiguous = false;
            break;
        }
        next += b.count;
    }
    return contiguous;
}

/** Verify one indexed batch file against its manifest entry. */
void
checkBatch(const std::string &path, u64 expect_key,
           const store::BatchInfo &entry, bool deep, Sink &sink)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        sink.error(EntityKind::Batch, entry.first,
                   "batch file indexed by the manifest is missing");
        return;
    }

    u64 magic = 0, key = 0, checksum = 0;
    u32 version = 0, first = 0, count = 0;
    fmt::readPod(is, magic);
    fmt::readPod(is, version);
    if (!is || magic != fmt::kBatchMagic) {
        sink.error(EntityKind::Batch, entry.first,
                   "not a store batch (bad magic)");
        return;
    }
    if (version != fmt::kFormatVersion) {
        sink.error(EntityKind::Batch, entry.first,
                   strprintf("unsupported format version %u", version));
        return;
    }
    fmt::readPod(is, key);
    fmt::readPod(is, first);
    fmt::readPod(is, count);
    fmt::readPod(is, checksum);
    if (!is) {
        sink.error(EntityKind::Batch, entry.first,
                   "truncated store batch header");
        return;
    }
    if (key != expect_key)
        sink.error(EntityKind::Batch, entry.first,
                   "batch belongs to a different campaign (key "
                   "mismatch)");
    if (first != entry.first || count != entry.count ||
        checksum != entry.checksum) {
        sink.error(EntityKind::Batch, entry.first,
                   strprintf("batch header [first %u, count %u, "
                             "checksum %s] does not match its "
                             "manifest entry",
                             first, count,
                             digestHex(checksum).c_str()));
        return;
    }

    if (!deep)
        return;
    auto samples = store::readSamples(is, entry.count);
    if (!is) {
        sink.error(EntityKind::Batch, entry.first,
                   "truncated store batch payload");
        return;
    }
    if (store::samplesChecksum(samples) != entry.checksum)
        sink.error(EntityKind::Batch, entry.first,
                   "payload checksum mismatch (corrupt samples)");
    if (is.peek() != std::char_traits<char>::eof())
        sink.warning(EntityKind::Batch, entry.first,
                     "trailing bytes after the payload");
}

} // anonymous namespace

std::unique_ptr<Pass>
makeStoreVerifier()
{
    return std::make_unique<StoreVerifier>();
}

VerifyResult
verifyStoreEntry(const std::string &root, u64 key, bool deep)
{
    VerifyResult out;
    const fs::path dir = fs::path(root) / digestHex(key);
    Sink sink(out, dir.string(), kPassName);

    std::error_code ec;
    if (!fs::is_directory(dir, ec) || ec) {
        sink.error(EntityKind::Artifact, 0,
                   "store entry directory does not exist");
        return out;
    }

    const std::string manifest = (dir / "manifest.bin").string();
    std::vector<store::BatchInfo> batches;
    bool have_table = false;
    if (fs::exists(manifest, ec) && !ec)
        have_table = readManifestLenient(manifest, key, batches, sink);
    else
        batches.clear(); // Cold store: no manifest yet.

    std::set<std::string> indexed;
    if (have_table) {
        for (const auto &entry : batches) {
            const std::string name =
                strprintf("batch-%08u.bin", entry.first);
            indexed.insert(name);
            checkBatch((dir / name).string(), key, entry, deep, sink);
        }
    }

    // Directory sweep: orphan batches, stale temp files, foreigners.
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        const std::string name = de.path().filename().string();
        if (name == "manifest.bin" || name == ".lock" ||
            name == "run-manifest.json" || indexed.count(name))
            continue;
        if (name.find(".tmp.") != std::string::npos) {
            sink.warning(EntityKind::Artifact, 0,
                         strprintf("stale temp file '%s' (crashed "
                                   "writer leftover)",
                                   name.c_str()));
            continue;
        }
        u32 first = 0;
        if (std::sscanf(name.c_str(), "batch-%8u.bin", &first) == 1) {
            // Valid crash window: batch committed, manifest not yet.
            // The next campaign run overwrites it, so a warning.
            sink.warning(EntityKind::Batch, first,
                         "batch file is not indexed by the manifest "
                         "(orphan)");
            continue;
        }
        sink.warning(EntityKind::Artifact, 0,
                     strprintf("unexpected file '%s' in store entry",
                               name.c_str()));
    }
    if (ec)
        sink.error(EntityKind::Artifact, 0,
                   "cannot iterate store entry directory");
    return out;
}

VerifyResult
verifyStoreRoot(const std::string &root, bool deep,
                std::vector<u64> *keys)
{
    VerifyResult out;
    Sink sink(out, root, kPassName);
    std::error_code ec;
    if (!fs::is_directory(root, ec) || ec) {
        sink.error(EntityKind::Artifact, 0,
                   "store root is not a directory");
        return out;
    }
    for (const auto &de : fs::directory_iterator(root, ec)) {
        if (!de.is_directory())
            continue;
        u64 key = 0;
        const std::string name = de.path().filename().string();
        if (!parseDigestHex(name, key)) {
            sink.warning(EntityKind::Artifact, 0,
                         strprintf("'%s' is not a campaign key "
                                   "directory",
                                   name.c_str()));
            continue;
        }
        if (keys)
            keys->push_back(key);
        out.merge(verifyStoreEntry(root, key, deep));
    }
    if (ec)
        sink.error(EntityKind::Artifact, 0, "cannot iterate store root");
    return out;
}

} // namespace interf::verify
