#include "opt/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "analyze/analyze.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "telemetry/trace_ctx.hh"
#include "util/digest.hh"
#include "util/logging.hh"
#include "verify/verify.hh"
#include "workloads/builder.hh"

namespace interf::opt
{

const char *
strategyName(Strategy strategy)
{
    switch (strategy) {
    case Strategy::Greedy:
        return "greedy";
    case Strategy::Anneal:
        return "anneal";
    }
    return "unknown";
}

bool
parseStrategy(const std::string &text, Strategy &out)
{
    if (text == "greedy") {
        out = Strategy::Greedy;
        return true;
    }
    if (text == "anneal" || text == "sa") {
        out = Strategy::Anneal;
        return true;
    }
    return false;
}

Json
SearchTrajectory::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", kTrajectorySchema);
    doc.set("schema_version", kTrajectorySchemaVersion);
    doc.set("benchmark", benchmark);
    doc.set("strategy", strategy);
    doc.set("seed", seed);
    doc.set("budget", budget);
    doc.set("proposals_per_step", proposalsPerStep);
    doc.set("base_key", digestHex(baseKey));
    doc.set("initial_cycles", initialCycles);
    doc.set("initial_digest", digestHex(initialDigest));
    doc.set("final_cycles", finalCycles);
    doc.set("final_digest", digestHex(finalDigest));
    Json steps_json = Json::array();
    for (const auto &s : steps) {
        Json step = Json::object();
        step.set("step", s.step);
        step.set("kind", moveKindName(s.move.kind));
        step.set("a", s.move.a);
        step.set("b", s.move.b);
        step.set("c", s.move.c);
        step.set("digest", digestHex(s.candDigest));
        step.set("cycles", s.cycles);
        step.set("accepted", s.accepted);
        step.set("temperature", s.temperature);
        step.set("best_cycles", s.bestCycles);
        steps_json.push(std::move(step));
    }
    doc.set("steps", std::move(steps_json));
    return doc;
}

std::string
SearchTrajectory::dump() const
{
    return toJson().dump(2) + "\n";
}

FitnessOracle::FitnessOracle(const workloads::WorkloadProfile &profile,
                             const OptConfig &cfg)
    : profile_(profile),
      cfg_(cfg),
      program_(workloads::buildProgram(profile)),
      linker_(),
      runner_(cfg.machine, cfg.runner)
{
    {
        INTERF_SPAN("trace.generate");
        trace::TraceGenerator gen(program_, profile.behaviourSeed);
        trace_ = gen.makeTrace(cfg_.instructionBudget);
        trace_.validate(program_);
    }
    if (verify::verifyOnTrust()) {
        INTERF_SPAN("opt.verify");
        verify::requireClean(verify::verifyProgram(program_),
                             "Optimizer program");
        verify::requireClean(verify::verifyTrace(program_, trace_),
                             "Optimizer trace");
    }
    plan_ = trace::ReplayPlan(program_, trace_);
    // Fail closed (every build type): refuse a machine config whose
    // geometry breaks a compaction invariant before the first replay
    // lane is built. See analyze::requireSoundMachine.
    analyze::requireSoundMachine(cfg_.machine, &plan_,
                                 "Optimizer machine config");
    baseKey_ = store::fitnessBaseKey(
        program_, profile_.behaviourSeed, cfg_.instructionBudget,
        cfg_.physicalPages, cfg_.pageSeed, cfg_.randomizeHeap,
        cfg_.machine, cfg_.runner);
    if (!cfg_.storeDir.empty())
        store_ = std::make_unique<store::FitnessStore>(cfg_.storeDir,
                                                       baseKey_);
}

layout::PageMap
FitnessOracle::pageMap() const
{
    if (!cfg_.physicalPages)
        return layout::PageMap(); // Identity: virtually-indexed L2.
    return layout::PageMap(cfg_.pageSeed);
}

u32
FitnessOracle::laneWidth() const
{
    return std::clamp<u32>(cfg_.batchLanes, 1,
                           trace::BatchedLayoutTables::kMaxLanes);
}

CandidateLayout
FitnessOracle::seededCandidate(u64 layout_seed) const
{
    layout::LayoutKey key;
    key.seed = layout_seed;
    CandidateLayout cand;
    cand.code = linker_.specFor(program_, key);
    cand.heapSeed = layout_seed;
    return cand;
}

void
FitnessOracle::measureGroup(core::MeasurementRunner &runner,
                            const CandidateLayout *const *cands,
                            const u64 *digests, u32 n,
                            core::Measurement *out) const
{
    // Attribute this group's spans to its first lane's content digest
    // (base key / batch ordinal are already on the thread's context).
    telemetry::ScopedCandidateDigest candidate(digests[0]);
    auto heap_key = [&](const CandidateLayout &cand) {
        layout::HeapKey key;
        key.randomize = cfg_.randomizeHeap;
        key.seed = cand.heapSeed;
        return key;
    };
    // Trust boundary: Neighborhood moves construct these specs by
    // permutation editing, so they should be injective by
    // construction — prove it statically (O(procs) per spec, no
    // tables) before fillCode's runtime check could trip on them.
    if (verify::verifyOnTrust()) {
        std::vector<layout::LayoutSpec> specs;
        specs.reserve(n);
        for (u32 l = 0; l < n; ++l)
            specs.push_back(cands[l]->code);
        verify::Artifacts a;
        a.program = &program_;
        a.layoutSpecs = &specs;
        a.path = "<optimizer candidates>";
        verify::VerifyResult result;
        analyze::makeLayoutInjectivity()->run(a, result);
        verify::requireClean(result, "Optimizer candidate layouts");
    }
    if (n == 1) {
        trace::LayoutTables tables = [&] {
            INTERF_SPAN("layout.gen");
            layout::CodeLayout code = linker_.link(program_, cands[0]->code);
            layout::HeapLayout heap(program_, heap_key(*cands[0]));
            return trace::LayoutTables(plan_, code, heap, pageMap(),
                                       cfg_.machine.hierarchy.l1i.lineBytes);
        }();
        INTERF_TELEM_COUNT("layout.tables_built", 1);
        out[0] = runner.measure(plan_, tables, digests[0]);
        return;
    }
    std::vector<layout::CodeLayout> codes;
    std::vector<layout::HeapLayout> heaps;
    std::vector<trace::BatchedLayoutTables::LaneSource> sources(n);
    codes.reserve(n);
    heaps.reserve(n);
    trace::BatchedLayoutTables batched = [&] {
        INTERF_SPAN("layout.gen");
        for (u32 l = 0; l < n; ++l) {
            codes.push_back(linker_.link(program_, cands[l]->code));
            heaps.emplace_back(program_, heap_key(*cands[l]));
            sources[l] = {&codes[l], &heaps[l], pageMap()};
        }
        return trace::BatchedLayoutTables(
            plan_, sources, cfg_.machine.hierarchy.l1i.lineBytes);
    }();
    INTERF_TELEM_COUNT("layout.tables_built", n);
    std::vector<u64> seeds(digests, digests + n);
    auto samples = runner.measureBatch(plan_, batched, seeds);
    for (u32 l = 0; l < n; ++l)
        out[l] = samples[l];
}

void
FitnessOracle::setProgressTracker(telemetry::ProgressTracker *tracker)
{
    std::lock_guard<std::mutex> lock(progressMutex_);
    progress_ = tracker;
    progressDone_ = 0;
    progressCached_ = 0;
    progressFresh_ = 0;
}

std::vector<core::Measurement>
FitnessOracle::evaluate(const std::vector<CandidateLayout> &cands)
{
    // Spans below (including the pool workers', via submit's context
    // capture) carry this search's base key and evaluate-call ordinal.
    telemetry::ScopedTraceContext trace_ctx(baseKey_, evalBatch_);
    ++evalBatch_;
    // Progress tick: callable from any thread; one relaxed load when
    // telemetry is off, one pointer test when no tracker is installed.
    auto tick = [this](u64 done, u64 cached, u64 fresh) {
        if (!telemetry::enabled())
            return;
        std::lock_guard<std::mutex> lock(progressMutex_);
        if (progress_ == nullptr)
            return;
        progressDone_ += done;
        progressCached_ += cached;
        progressFresh_ += fresh;
        progress_->update(progressDone_, progressCached_,
                          progressFresh_);
    };
    const u32 count = static_cast<u32>(cands.size());
    std::vector<core::Measurement> out(count);
    std::vector<u64> digests(count);
    std::vector<u32> fresh;              ///< First-occurrence misses.
    std::vector<std::pair<u32, u32>> dups; ///< (index, source index).
    std::unordered_map<u64, u32> first_at;
    for (u32 i = 0; i < count; ++i) {
        const u64 d = digests[i] = digestOf(cands[i]);
        auto memo_it = memo_.find(d);
        if (memo_it != memo_.end()) {
            out[i] = memo_it->second;
            ++cachedEvals_;
            continue;
        }
        if (store_) {
            if (auto m = store_->load(d)) {
                out[i] = *m;
                memo_.emplace(d, *m);
                ++cachedEvals_;
                continue;
            }
        }
        auto f = first_at.find(d);
        if (f != first_at.end()) {
            // The same candidate proposed twice in one batch: measure
            // once, copy after the fresh results land.
            dups.emplace_back(i, f->second);
            ++cachedEvals_;
            continue;
        }
        first_at.emplace(d, i);
        fresh.push_back(i);
    }
    INTERF_TELEM_COUNT("opt.evals_cached", count - fresh.size());
    INTERF_TELEM_COUNT("opt.evals_fresh", fresh.size());
    if (count > fresh.size())
        tick(count - fresh.size(), count - fresh.size(), 0);

    if (!fresh.empty()) {
        const u32 lanes = laneWidth();
        const u32 n = static_cast<u32>(fresh.size());
        const u32 groups = (n + lanes - 1) / lanes;
        // Each group is one batched replay pass; lane i of a batch is
        // bit-identical to the unbatched measurement of the same
        // candidate and each candidate's noise seed is its digest, so
        // neither grouping nor scheduling can change a byte of out.
        auto run_group = [&](core::MeasurementRunner &runner, u32 g) {
            const u32 beg = g * lanes;
            const u32 cnt = std::min(lanes, n - beg);
            std::vector<const CandidateLayout *> ptrs(cnt);
            std::vector<u64> ds(cnt);
            std::vector<core::Measurement> group(cnt);
            for (u32 l = 0; l < cnt; ++l) {
                ptrs[l] = &cands[fresh[beg + l]];
                ds[l] = digests[fresh[beg + l]];
            }
            measureGroup(runner, ptrs.data(), ds.data(), cnt,
                         group.data());
            for (u32 l = 0; l < cnt; ++l)
                out[fresh[beg + l]] = group[l];
            tick(cnt, 0, cnt);
        };
        const u32 jobs = exec::ThreadPool::resolveJobs(cfg_.jobs);
        if (jobs <= 1 || groups <= 1) {
            INTERF_SPAN_PHASE("replay.batch");
            for (u32 g = 0; g < groups; ++g)
                run_group(runner_, g);
        } else {
            if (!pool_ || pool_->workers() != jobs)
                pool_ = std::make_unique<exec::ThreadPool>(jobs);
            exec::parallelForChunks(
                *pool_, groups, [&](size_t begin, size_t end) {
                    INTERF_SPAN_PHASE("replay.batch");
                    core::MeasurementRunner runner(cfg_.machine,
                                                   cfg_.runner);
                    for (size_t g = begin; g < end; ++g)
                        run_group(runner, static_cast<u32>(g));
                });
        }
        freshEvals_ += n;
        for (u32 i : fresh) {
            memo_.emplace(digests[i], out[i]);
            if (store_)
                store_->save(digests[i], out[i]);
        }
    }
    for (auto [i, src] : dups)
        out[i] = out[src];
    return out;
}

namespace
{

/**
 * Shared search loop: seed (authored + blame layouts), then propose
 * P candidates per step from the current point until the evaluation
 * budget runs out. Subclasses decide acceptance per step.
 */
class SearchBase : public Optimizer
{
  public:
    SearchBase(FitnessOracle &oracle, const OptConfig &cfg)
        : oracle_(oracle), cfg_(cfg), acceptRng_(0)
    {
    }

    OptResult run() final;

  protected:
    /**
     * Decide acceptance for one step's proposals (ms[i] measures
     * cands[i], a neighbor of the pre-step current_). Must update
     * current_/currentM_ on acceptance and push one TrajectoryStep per
     * proposal via record().
     */
    virtual void decide(u32 step, const std::vector<CandidateLayout> &cands,
                        const std::vector<Move> &moves,
                        const std::vector<core::Measurement> &ms) = 0;

    /** Record one proposal, maintaining the champion. */
    void record(u32 step, const CandidateLayout &cand, const Move &move,
                const core::Measurement &m, bool accepted,
                double temperature);

    FitnessOracle &oracle_;
    OptConfig cfg_;
    Rng acceptRng_; ///< Reseeded from the search seed in run().
    CandidateLayout current_;
    core::Measurement currentM_;
    OptResult result_;
};

void
SearchBase::record(u32 step, const CandidateLayout &cand, const Move &move,
                   const core::Measurement &m, bool accepted,
                   double temperature)
{
    if (m.cycles < result_.bestSample.cycles) {
        result_.best = cand;
        result_.bestSample = m;
    }
    TrajectoryStep ts;
    ts.step = step;
    ts.move = move;
    ts.candDigest = oracle_.digestOf(cand);
    ts.cycles = m.cycles;
    ts.accepted = accepted;
    ts.temperature = temperature;
    ts.bestCycles = result_.bestSample.cycles;
    result_.trajectory.steps.push_back(ts);
}

OptResult
SearchBase::run()
{
    INTERF_SPAN_PHASE("opt.search");
    INTERF_ASSERT(cfg_.budget >= 1);
    const u64 fresh0 = oracle_.freshEvals();
    const u64 cached0 = oracle_.cachedEvals();
    result_ = OptResult();
    SearchTrajectory &traj = result_.trajectory;
    traj.benchmark = oracle_.profile().name;
    traj.strategy = strategyName(cfg_.strategy);
    traj.seed = cfg_.seed;
    traj.budget = cfg_.budget;
    traj.proposalsPerStep = std::max<u32>(1, cfg_.proposalsPerStep);
    traj.baseKey = oracle_.baseKey();

    // Independent substreams: seeding, proposals and acceptance never
    // perturb each other's sequences.
    Rng base(cfg_.seed);
    Rng seed_rng = base.fork(1);
    Rng move_rng = base.fork(2);
    acceptRng_ = base.fork(3);

    Neighborhood nb(oracle_.program(), cfg_.randomizeHeap);

    // Live progress over the evaluation budget, ticked by the oracle
    // per cached candidate and per finished replay group.
    telemetry::ProgressTracker progress(
        strprintf("opt.%s", strategyName(cfg_.strategy)), cfg_.budget);
    oracle_.setProgressTracker(&progress);

    u32 evals_left = cfg_.budget;

    // Seed pool: the authored layout plus cfg.blameLayouts random
    // ones. All count against the budget; the best seeds the walk and
    // with >= 4 samples the campaign model's blame weights the moves.
    std::vector<CandidateLayout> pool;
    {
        CandidateLayout authored;
        authored.code = layout::LayoutSpec::authored(oracle_.program());
        authored.heapSeed = seed_rng.next();
        pool.push_back(std::move(authored));
    }
    for (u32 b = 0; b < cfg_.blameLayouts && pool.size() < evals_left;
         ++b)
        pool.push_back(oracle_.seededCandidate(seed_rng.next()));
    auto seed_ms = oracle_.evaluate(pool);
    evals_left -= static_cast<u32>(pool.size());

    u32 best_seed = 0;
    for (u32 i = 1; i < seed_ms.size(); ++i)
        if (seed_ms[i].cycles < seed_ms[best_seed].cycles)
            best_seed = i;
    current_ = pool[best_seed];
    currentM_ = seed_ms[best_seed];
    result_.best = current_;
    result_.bestSample = currentM_;
    if (seed_ms.size() >= 4) {
        interferometry::PerformanceModel model(traj.benchmark, seed_ms);
        nb.setBlame(model.blame());
    }
    traj.initialCycles = currentM_.cycles;
    traj.initialDigest = oracle_.digestOf(current_);

    u32 step = 0;
    while (evals_left > 0) {
        INTERF_SPAN_PHASE("opt.step");
        const u32 p = std::min(traj.proposalsPerStep, evals_left);
        std::vector<CandidateLayout> cands(p, current_);
        std::vector<Move> moves(p);
        for (u32 i = 0; i < p; ++i)
            moves[i] = nb.propose(cands[i], move_rng);
        auto ms = oracle_.evaluate(cands);
        evals_left -= p;
        decide(step, cands, moves, ms);
        ++step;
    }

    oracle_.setProgressTracker(nullptr);
    progress.finish();
    traj.finalCycles = result_.bestSample.cycles;
    traj.finalDigest = oracle_.digestOf(result_.best);
    result_.freshEvals = oracle_.freshEvals() - fresh0;
    result_.cachedEvals = oracle_.cachedEvals() - cached0;
    INTERF_TELEM_COUNT("opt.steps", step);
    return result_;
}

/** Hill-climb: accept the best proposal of the step iff it improves. */
class GreedyOptimizer final : public SearchBase
{
  public:
    using SearchBase::SearchBase;

  protected:
    void
    decide(u32 step, const std::vector<CandidateLayout> &cands,
           const std::vector<Move> &moves,
           const std::vector<core::Measurement> &ms) override
    {
        const u32 p = static_cast<u32>(cands.size());
        u32 win = 0;
        for (u32 i = 1; i < p; ++i)
            if (ms[i].cycles < ms[win].cycles)
                win = i;
        const bool improves = ms[win].cycles < currentM_.cycles;
        for (u32 i = 0; i < p; ++i)
            record(step, cands[i], moves[i], ms[i],
                   improves && i == win, 0.0);
        if (improves) {
            current_ = cands[win];
            currentM_ = ms[win];
        }
    }
};

/**
 * Simulated annealing: Metropolis acceptance per proposal, geometric
 * cooling per step. The temperature schedule and every acceptance draw
 * are pure functions of the search seed and the deterministic
 * measurements, so the walk is as replayable as the greedy one.
 */
class AnnealingOptimizer final : public SearchBase
{
  public:
    AnnealingOptimizer(FitnessOracle &oracle, const OptConfig &cfg)
        : SearchBase(oracle, cfg)
    {
    }

  protected:
    void
    decide(u32 step, const std::vector<CandidateLayout> &cands,
           const std::vector<Move> &moves,
           const std::vector<core::Measurement> &ms) override
    {
        if (step == 0)
            temp_ = cfg_.initialTemp *
                    static_cast<double>(currentM_.cycles);
        const u32 p = static_cast<u32>(cands.size());
        for (u32 i = 0; i < p; ++i) {
            const double delta = static_cast<double>(ms[i].cycles) -
                                 static_cast<double>(currentM_.cycles);
            bool accept = delta <= 0.0;
            if (!accept && temp_ > 0.0)
                accept =
                    acceptRng_.nextDouble() < std::exp(-delta / temp_);
            record(step, cands[i], moves[i], ms[i], accept, temp_);
            if (accept) {
                current_ = cands[i];
                currentM_ = ms[i];
            }
        }
        temp_ *= cfg_.coolRate;
    }

  private:
    double temp_ = 0.0;
};

} // anonymous namespace

std::unique_ptr<Optimizer>
makeOptimizer(FitnessOracle &oracle, const OptConfig &cfg)
{
    switch (cfg.strategy) {
    case Strategy::Greedy:
        return std::make_unique<GreedyOptimizer>(oracle, cfg);
    case Strategy::Anneal:
        return std::make_unique<AnnealingOptimizer>(oracle, cfg);
    }
    panic("unknown optimizer strategy %d",
          static_cast<int>(cfg.strategy));
}

OptResult
bestOfRandom(FitnessOracle &oracle, const OptConfig &cfg)
{
    INTERF_SPAN_PHASE("opt.baseline");
    INTERF_ASSERT(cfg.budget >= 1);
    const u64 fresh0 = oracle.freshEvals();
    const u64 cached0 = oracle.cachedEvals();
    // Stream 4: disjoint from the search's seeding(1)/move(2)/accept(3)
    // streams, so optimizer and baseline never share layout draws.
    Rng rng = Rng(cfg.seed).fork(4);
    std::vector<CandidateLayout> cands;
    cands.reserve(cfg.budget);
    for (u32 i = 0; i < cfg.budget; ++i)
        cands.push_back(oracle.seededCandidate(rng.next()));
    telemetry::ProgressTracker progress("opt.random", cfg.budget);
    oracle.setProgressTracker(&progress);
    auto ms = oracle.evaluate(cands);
    oracle.setProgressTracker(nullptr);
    progress.finish();
    u32 best = 0;
    for (u32 i = 1; i < ms.size(); ++i)
        if (ms[i].cycles < ms[best].cycles)
            best = i;

    OptResult res;
    res.best = cands[best];
    res.bestSample = ms[best];
    SearchTrajectory &traj = res.trajectory;
    traj.benchmark = oracle.profile().name;
    traj.strategy = "random";
    traj.seed = cfg.seed;
    traj.budget = cfg.budget;
    traj.proposalsPerStep = std::max<u32>(1, cfg.proposalsPerStep);
    traj.baseKey = oracle.baseKey();
    traj.initialCycles = ms[0].cycles;
    traj.initialDigest = oracle.digestOf(cands[0]);
    traj.finalCycles = ms[best].cycles;
    traj.finalDigest = oracle.digestOf(cands[best]);
    res.freshEvals = oracle.freshEvals() - fresh0;
    res.cachedEvals = oracle.cachedEvals() - cached0;
    return res;
}

} // namespace interf::opt
