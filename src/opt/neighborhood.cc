#include "opt/neighborhood.hh"

#include <algorithm>
#include <cmath>

#include "util/digest.hh"
#include "util/logging.hh"

namespace interf::opt
{

u64
CandidateLayout::digest(u64 base) const
{
    Digest d;
    d.mix(base);
    d.mix(code.fileOrder.size());
    for (u32 fi : code.fileOrder)
        d.mix(fi);
    for (const auto &order : code.procOrder) {
        d.mix(order.size());
        for (u32 pid : order)
            d.mix(pid);
    }
    d.mix(heapSeed);
    return d.value();
}

const char *
moveKindName(MoveKind kind)
{
    switch (kind) {
    case MoveKind::ProcSwap:
        return "proc_swap";
    case MoveKind::ProcReinsert:
        return "proc_reinsert";
    case MoveKind::FileBlockMove:
        return "file_block_move";
    case MoveKind::HeapShuffle:
        return "heap_shuffle";
    }
    return "unknown";
}

namespace
{

/** Clamp a blame component to a usable weight: r^2 can be NaN on
 *  degenerate seed samples (zero variance), which must not poison the
 *  weighted draw. */
double
safeBlame(double r2)
{
    return std::isfinite(r2) && r2 > 0.0 ? r2 : 0.0;
}

/** Epsilon floor so no available kind ever becomes unreachable. */
constexpr double kWeightFloor = 0.05;

} // anonymous namespace

Neighborhood::Neighborhood(const trace::Program &prog, bool allow_heap)
    : prog_(&prog),
      files_(static_cast<u32>(prog.files().size())),
      allowHeap_(allow_heap)
{
    for (u32 fi = 0; fi < files_; ++fi)
        if (prog.files()[fi].procIds.size() >= 2)
            multiProcFiles_.push_back(fi);
    // Uniform default over the available kinds; setBlame() refines.
    weights_[static_cast<u32>(MoveKind::ProcSwap)] =
        multiProcFiles_.empty() ? 0.0 : 1.0;
    weights_[static_cast<u32>(MoveKind::ProcReinsert)] =
        multiProcFiles_.empty() ? 0.0 : 1.0;
    weights_[static_cast<u32>(MoveKind::FileBlockMove)] =
        files_ >= 2 ? 1.0 : 0.0;
    weights_[static_cast<u32>(MoveKind::HeapShuffle)] =
        allowHeap_ ? 1.0 : 0.0;
    // A program with one single-procedure file and no heap has a
    // one-point search space; nothing to optimize.
    INTERF_ASSERT(!multiProcFiles_.empty() || files_ >= 2 || allowHeap_);
}

bool
Neighborhood::kindAvailable(MoveKind kind) const
{
    switch (kind) {
    case MoveKind::ProcSwap:
    case MoveKind::ProcReinsert:
        return !multiProcFiles_.empty();
    case MoveKind::FileBlockMove:
        return files_ >= 2;
    case MoveKind::HeapShuffle:
        return allowHeap_;
    }
    return false;
}

void
Neighborhood::setBlame(const interferometry::BlameVector &blame)
{
    // Blame -> structure mapping: branch and L1I behaviour live in the
    // intra-file procedure packing; L1I and L2 set placement move with
    // whole files; L2 data conflicts move with the heap seed.
    const double branch = safeBlame(blame.branch);
    const double l1i = safeBlame(blame.l1i);
    const double l2 = safeBlame(blame.l2);
    const double w_proc = kWeightFloor + branch + l1i;
    const double w_file = kWeightFloor + l1i + l2;
    const double w_heap = kWeightFloor + l2;
    weights_[static_cast<u32>(MoveKind::ProcSwap)] =
        kindAvailable(MoveKind::ProcSwap) ? 0.5 * w_proc : 0.0;
    weights_[static_cast<u32>(MoveKind::ProcReinsert)] =
        kindAvailable(MoveKind::ProcReinsert) ? 0.5 * w_proc : 0.0;
    weights_[static_cast<u32>(MoveKind::FileBlockMove)] =
        kindAvailable(MoveKind::FileBlockMove) ? w_file : 0.0;
    weights_[static_cast<u32>(MoveKind::HeapShuffle)] =
        kindAvailable(MoveKind::HeapShuffle) ? w_heap : 0.0;
}

MoveKind
Neighborhood::pickKind(Rng &rng) const
{
    double total = 0.0;
    for (double w : weights_)
        total += w;
    INTERF_ASSERT(total > 0.0);
    double x = rng.nextDouble() * total;
    for (u32 k = 0; k < kMoveKinds; ++k) {
        x -= weights_[k];
        if (x < 0.0)
            return static_cast<MoveKind>(k);
    }
    // Floating-point edge: the draw landed exactly on the total.
    for (u32 k = kMoveKinds; k-- > 0;)
        if (weights_[k] > 0.0)
            return static_cast<MoveKind>(k);
    return MoveKind::ProcSwap;
}

Move
Neighborhood::propose(CandidateLayout &cand, Rng &rng) const
{
    return proposeOfKind(pickKind(rng), cand, rng);
}

Move
Neighborhood::proposeOfKind(MoveKind kind, CandidateLayout &cand,
                            Rng &rng) const
{
    INTERF_ASSERT(kindAvailable(kind));
    Move move;
    move.kind = kind;
    switch (kind) {
    case MoveKind::ProcSwap: {
        const u32 fi = multiProcFiles_[static_cast<size_t>(
            rng.uniformInt(multiProcFiles_.size()))];
        auto &order = cand.code.procOrder[fi];
        const u32 n = static_cast<u32>(order.size());
        u32 i = static_cast<u32>(rng.uniformInt(n));
        u32 j = static_cast<u32>(rng.uniformInt(n - 1));
        if (j >= i)
            ++j; // Distinct by construction: never a no-op swap.
        std::swap(order[i], order[j]);
        move.a = fi;
        move.b = i;
        move.c = j;
        break;
    }
    case MoveKind::ProcReinsert: {
        const u32 fi = multiProcFiles_[static_cast<size_t>(
            rng.uniformInt(multiProcFiles_.size()))];
        auto &order = cand.code.procOrder[fi];
        const u32 n = static_cast<u32>(order.size());
        const u32 i = static_cast<u32>(rng.uniformInt(n));
        // Insertion position in the shortened vector; position i would
        // reproduce the original order, so it is excluded.
        u32 p = static_cast<u32>(rng.uniformInt(n - 1));
        if (p >= i)
            ++p;
        const u32 pid = order[i];
        order.erase(order.begin() + i);
        order.insert(order.begin() + std::min(p, n - 1), pid);
        move.a = fi;
        move.b = i;
        move.c = p;
        break;
    }
    case MoveKind::FileBlockMove: {
        auto &order = cand.code.fileOrder;
        const u32 n = files_;
        const u32 max_len = std::min<u32>(3, n - 1);
        const u32 len = 1 + static_cast<u32>(rng.uniformInt(max_len));
        const u32 i = static_cast<u32>(rng.uniformInt(n - len + 1));
        const u32 m = n - len; // Files remaining after extraction.
        u32 p = static_cast<u32>(rng.uniformInt(m));
        if (p >= i)
            ++p; // p == i would reinsert the block where it was.
        std::vector<u32> block(order.begin() + i,
                               order.begin() + i + len);
        order.erase(order.begin() + i, order.begin() + i + len);
        order.insert(order.begin() + p, block.begin(), block.end());
        move.a = i;
        move.b = len;
        move.c = p;
        break;
    }
    case MoveKind::HeapShuffle: {
        const u64 seed = rng.next();
        cand.heapSeed = seed;
        move.a = static_cast<u32>(seed >> 32);
        move.b = static_cast<u32>(seed);
        break;
    }
    }
    return move;
}

} // namespace interf::opt
