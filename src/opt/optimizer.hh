/**
 * @file
 * Layout-space search driven by batched replay as the fitness oracle.
 *
 * Interferometry measures how much performance a layout is worth; this
 * subsystem turns the instrument around and *searches* the layout
 * space: propose neighbors of the current candidate (opt/neighborhood),
 * measure K of them per Machine::replayBatch pass, and walk toward
 * fewer cycles. Two strategies sit behind the one Optimizer interface —
 * greedy hill-climbing (accept the best improving proposal) and
 * simulated annealing (Metropolis acceptance under a deterministic
 * SplitMix-seeded cooling schedule).
 *
 * Determinism discipline, same as campaigns: the search seed fixes the
 * full proposal/acceptance sequence; a candidate's measurement noise
 * seed is its content digest, so its fitness is identical no matter
 * when, in which lane group, or on which worker it is measured; and
 * fitness caching (in-memory memo + store::FitnessStore) can therefore
 * never change a result, only skip a measurement. Consequently the
 * SearchTrajectory is byte-identical across reruns for a fixed seed at
 * any --jobs, any --batch, and cold or warm store — which the
 * determinism tests assert literally (tests/test_opt.cc).
 */

#ifndef INTERF_OPT_OPTIMIZER_HH
#define INTERF_OPT_OPTIMIZER_HH

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/runner.hh"
#include "exec/threadpool.hh"
#include "layout/linker.hh"
#include "layout/pagemap.hh"
#include "opt/neighborhood.hh"
#include "store/fitness.hh"
#include "telemetry/progress.hh"
#include "trace/generator.hh"
#include "trace/replay.hh"
#include "util/json.hh"
#include "workloads/profile.hh"

namespace interf::opt
{

/** Search strategies behind the Optimizer interface. */
enum class Strategy : u8
{
    Greedy, ///< Hill-climb: accept the best improving proposal.
    Anneal, ///< Simulated annealing with geometric cooling.
};

/** "greedy" / "anneal". */
const char *strategyName(Strategy strategy);

/** Parse a strategy name; false on unknown input. */
bool parseStrategy(const std::string &text, Strategy &out);

/** Parameters of one search. */
struct OptConfig
{
    u64 instructionBudget = 1'000'000;
    u64 seed = 1;  ///< Search seed: proposals, acceptance, seeding.
    u32 budget = 64; ///< Total candidate evaluations allowed.
    /**
     * Candidates proposed from the current point per search step. This
     * is search semantics (it shapes the trajectory), distinct from
     * batchLanes, which only groups fresh measurements into replay
     * passes and can never change a byte of output.
     */
    u32 proposalsPerStep = 4;
    u32 batchLanes = 4; ///< Execution knob: lanes per replay pass.
    u32 jobs = 1;       ///< Execution knob: 0 = hardware threads.
    /**
     * Random layouts evaluated first (counted against the budget) to
     * seed the search: the best becomes the starting point, and with
     * >= 4 of them a PerformanceModel's BlameVector weights the move
     * kinds. 0 starts from the authored layout with uniform weights.
     */
    u32 blameLayouts = 8;
    bool randomizeHeap = false; ///< Add heap seeds to the search space.
    bool physicalPages = true;  ///< Model physically-indexed L2.
    u64 pageSeed = 1; ///< One fixed page mapping for the whole search.
    Strategy strategy = Strategy::Greedy;
    double initialTemp = 0.01; ///< SA: T0 as a fraction of start cycles.
    double coolRate = 0.9;     ///< SA: geometric cooling per step.
    std::string storeDir; ///< FitnessStore root; empty = no persistence.
    core::MachineConfig machine = core::MachineConfig::xeonE5440();
    core::RunnerConfig runner;
};

/** One recorded proposal (accepted or not) of the search. */
struct TrajectoryStep
{
    u32 step = 0; ///< Search step (one batch of proposals per step).
    Move move;
    u64 candDigest = 0;
    u64 cycles = 0; ///< The candidate's measured (noisy) cycles.
    bool accepted = false;
    double temperature = 0.0; ///< 0 under the greedy strategy.
    u64 bestCycles = 0; ///< Champion cycles after this proposal.
};

/** Schema identity of the trajectory document. */
constexpr const char *kTrajectorySchema = "interf-opt-trajectory-1";
constexpr u32 kTrajectorySchemaVersion = 1;

/**
 * The full, replayable record of one search. Deliberately excludes
 * anything execution-dependent (cache hits, wall time, jobs), so equal
 * seeds dump() equal bytes regardless of how the search was run.
 */
struct SearchTrajectory
{
    std::string benchmark;
    std::string strategy;
    u64 seed = 0;
    u32 budget = 0;
    u32 proposalsPerStep = 0;
    u64 baseKey = 0;
    u64 initialCycles = 0; ///< Cycles of the starting candidate.
    u64 initialDigest = 0;
    u64 finalCycles = 0; ///< Champion cycles at budget exhaustion.
    u64 finalDigest = 0;
    std::vector<TrajectoryStep> steps;

    /** The docs/opt-trajectory.schema.json document. */
    Json toJson() const;

    /** Pretty-printed JSON (trailing newline included). */
    std::string dump() const;
};

/** Outcome of a search (or of the random baseline). */
struct OptResult
{
    CandidateLayout best;
    core::Measurement bestSample; ///< best's cached-or-fresh measurement.
    SearchTrajectory trajectory;
    u64 freshEvals = 0;  ///< Measured by replay during this run.
    u64 cachedEvals = 0; ///< Served from memo or FitnessStore.
};

/**
 * Measurement backend of the search: owns the program, trace and
 * compiled plan (built once, exactly like a Campaign) plus the fitness
 * memo and optional on-disk cache. evaluate() is the only entry point;
 * it batches fresh candidates into replay passes of up to batchLanes
 * lanes and fans groups out to jobs workers, neither of which can
 * change a byte of any result.
 */
class FitnessOracle
{
  public:
    FitnessOracle(const workloads::WorkloadProfile &profile,
                  const OptConfig &cfg);

    const trace::Program &program() const { return program_; }
    const layout::Linker &linker() const { return linker_; }
    const workloads::WorkloadProfile &profile() const { return profile_; }
    const OptConfig &config() const { return cfg_; }

    /** The fitness base key (store/fitness.hh) of this search setup. */
    u64 baseKey() const { return baseKey_; }

    /** A candidate's content digest (= its noise seed / cache name). */
    u64 digestOf(const CandidateLayout &cand) const
    {
        return cand.digest(baseKey_);
    }

    /** The candidate the seeded LayoutKey path would produce: the
     *  random-restart and baseline sampling primitive. */
    CandidateLayout seededCandidate(u64 layout_seed) const;

    /**
     * Measurements for @p cands, element i for candidate i. Each
     * candidate is served from the memo, then the FitnessStore, and
     * only then measured fresh (and persisted). Duplicate candidates
     * within one call are measured once.
     */
    std::vector<core::Measurement>
    evaluate(const std::vector<CandidateLayout> &cands);

    /** @{ Lifetime tallies across evaluate() calls. */
    u64 freshEvals() const { return freshEvals_; }
    u64 cachedEvals() const { return cachedEvals_; }
    /** @} */

    /**
     * Install (or, with nullptr, remove) a progress tracker that
     * evaluate() ticks per classified-cached candidate and per finished
     * replay group — including from pool workers. The tracker must
     * outlive its installation; the search loops install one for the
     * duration of run(). Observe-only, like all telemetry.
     */
    void setProgressTracker(telemetry::ProgressTracker *tracker);

  private:
    /** Measure @p n candidates as one batched replay pass. */
    void measureGroup(core::MeasurementRunner &runner,
                      const CandidateLayout *const *cands,
                      const u64 *digests, u32 n,
                      core::Measurement *out) const;

    layout::PageMap pageMap() const;
    u32 laneWidth() const;

    workloads::WorkloadProfile profile_;
    OptConfig cfg_;
    trace::Program program_;
    trace::Trace trace_;
    trace::ReplayPlan plan_;
    layout::Linker linker_;
    core::MeasurementRunner runner_; ///< Serial path (jobs == 1).
    std::unique_ptr<exec::ThreadPool> pool_;
    std::unique_ptr<store::FitnessStore> store_;
    std::unordered_map<u64, core::Measurement> memo_;
    u64 baseKey_ = 0;
    u64 freshEvals_ = 0;
    u64 cachedEvals_ = 0;

    /** @{ Progress plumbing (see setProgressTracker) + the per-call
     *  batch ordinal stamped into worker trace contexts. */
    telemetry::ProgressTracker *progress_ = nullptr;
    std::mutex progressMutex_;
    u64 progressDone_ = 0;
    u64 progressCached_ = 0;
    u64 progressFresh_ = 0;
    u32 evalBatch_ = 0; ///< evaluate() calls so far.
    /** @} */
};

/** One search strategy over a shared oracle. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Run the search to budget exhaustion. */
    virtual OptResult run() = 0;
};

/** The strategy selected by @p cfg.strategy, searching via @p oracle.
 *  The oracle must outlive the optimizer. */
std::unique_ptr<Optimizer> makeOptimizer(FitnessOracle &oracle,
                                         const OptConfig &cfg);

/**
 * The baseline the deliverable compares against: evaluate cfg.budget
 * independent seeded-random layouts (an independent PRNG stream from
 * the search's) and keep the best. Returns a trajectory with strategy
 * "random" and no steps.
 */
OptResult bestOfRandom(FitnessOracle &oracle, const OptConfig &cfg);

} // namespace interf::opt

#endif // INTERF_OPT_OPTIMIZER_HH
