/**
 * @file
 * The layout-optimizer move set: seeded, valid-by-construction edits.
 *
 * A search over layouts needs a neighborhood structure the seeded
 * LayoutKey path cannot give — keys are points, not edges. Candidates
 * are therefore explicit (LayoutSpec, heap seed) pairs, and every move
 * permutes one of the spec's permutation vectors in place: swap two
 * procedures within an object file, pull one procedure out and
 * reinsert it elsewhere in its file, slide a contiguous block of
 * object files along the link line, or redraw the DieHard heap seed.
 * None of these can produce an invalid layout — a permutation stays a
 * permutation — which the property tests pin down by running every
 * move kind through the LayoutVerifier (tests/test_opt.cc).
 *
 * Move-kind selection is weighted by the campaign model's per-event
 * r^2 (interferometry::BlameVector): branch/L1I blame steers toward
 * intra-file procedure moves (they move branch targets and I-cache
 * line packing), L1I/L2 blame toward link-order moves (they move whole
 * files across page and set boundaries), and L2 blame toward heap
 * shuffles when heap randomization is enabled. An epsilon floor keeps
 * every available kind reachable regardless of blame.
 */

#ifndef INTERF_OPT_NEIGHBORHOOD_HH
#define INTERF_OPT_NEIGHBORHOOD_HH

#include <array>
#include <vector>

#include "interferometry/model.hh"
#include "layout/linker.hh"
#include "util/random.hh"

namespace interf::opt
{

/** One point of the search space: a code permutation + a heap seed. */
struct CandidateLayout
{
    layout::LayoutSpec code;
    u64 heapSeed = 0;

    /**
     * Content digest of the candidate over @p base (the search's
     * fitness base key). Binds every permutation entry and the heap
     * seed, so equal digests mean identical measurement inputs — the
     * digest doubles as the candidate's noise seed and its fitness
     * cache name.
     */
    u64 digest(u64 base) const;
};

/** The move kinds the neighborhood can propose. */
enum class MoveKind : u8
{
    ProcSwap,      ///< Swap two procedures within one object file.
    ProcReinsert,  ///< Remove one procedure, reinsert elsewhere in file.
    FileBlockMove, ///< Move a contiguous block of files on the link line.
    HeapShuffle,   ///< Redraw the DieHard heap seed.
};

inline constexpr u32 kMoveKinds = 4;

/** Stable lower-snake name, used in trajectories ("proc_swap"...). */
const char *moveKindName(MoveKind kind);

/** One applied move, as recorded in the search trajectory. The operand
 *  meaning is kind-specific (file/positions for code moves, the new
 *  seed's halves for HeapShuffle). */
struct Move
{
    MoveKind kind = MoveKind::ProcSwap;
    u32 a = 0;
    u32 b = 0;
    u32 c = 0;
};

/**
 * Program-aware move proposer. Immutable after construction except for
 * the blame weights; safe to share across sequential searches.
 */
class Neighborhood
{
  public:
    /**
     * @param prog The program whose structure bounds the moves.
     * @param allow_heap Whether HeapShuffle is in the move set (it is
     *        meaningless when the heap is deterministically packed).
     */
    Neighborhood(const trace::Program &prog, bool allow_heap);

    /** Re-weight move kinds from a campaign model's blame vector. */
    void setBlame(const interferometry::BlameVector &blame);

    /** Current kind weights, indexed by MoveKind (0 = unavailable). */
    const std::array<double, kMoveKinds> &kindWeights() const
    {
        return weights_;
    }

    /** Whether @p kind can be proposed for this program at all. */
    bool kindAvailable(MoveKind kind) const;

    /** Mutate @p cand with one weighted-random move drawn from @p rng. */
    Move propose(CandidateLayout &cand, Rng &rng) const;

    /** Mutate @p cand with a move of the given kind (must be
     *  available); the property tests drive each kind directly. */
    Move proposeOfKind(MoveKind kind, CandidateLayout &cand,
                       Rng &rng) const;

  private:
    MoveKind pickKind(Rng &rng) const;

    const trace::Program *prog_;
    u32 files_;
    std::vector<u32> multiProcFiles_; ///< Authored files with >= 2 procs.
    bool allowHeap_;
    std::array<double, kMoveKinds> weights_{};
};

} // namespace interf::opt

#endif // INTERF_OPT_NEIGHBORHOOD_HH
