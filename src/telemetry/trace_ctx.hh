/**
 * @file
 * Causal span context: who caused this work, across thread hops.
 *
 * A span recorded on a pool worker is useless for attribution unless it
 * can answer "which campaign / which batch / which candidate put me
 * here". TraceContext is that answer: a small per-thread value holding
 * the campaign id (store key / fitness base key), the batch index, the
 * candidate digest and the id of the span that was open when the work
 * was *enqueued*. ThreadPool::submit captures the submitting thread's
 * context and restores it around the task body on the worker, so every
 * span a worker records carries the causal ids of its submitter — and
 * writeChromeTrace can emit Perfetto flow arrows connecting
 * campaign.measure on the main thread to replay.batch on the workers.
 *
 * Everything here is observe-only and follows the telemetry invariants:
 * reading the context when telemetry is disabled is one relaxed load
 * (the capture helpers return an empty context without touching the
 * thread-local), and no context value ever feeds back into a
 * measurement.
 */

#ifndef INTERF_TELEMETRY_TRACE_CTX_HH
#define INTERF_TELEMETRY_TRACE_CTX_HH

#include "telemetry/telemetry.hh"
#include "util/types.hh"

namespace interf::telemetry
{

/** Causal ids carried across ThreadPool::submit boundaries. */
struct TraceContext
{
    u64 campaignId = 0;      ///< Campaign store key / fitness base key.
    u32 batchIndex = 0;      ///< Batch ordinal within the campaign.
    u64 candidateDigest = 0; ///< Layout seed / candidate content digest.
    u64 parentSpanId = 0;    ///< Innermost span open at capture time.

    bool empty() const
    {
        return campaignId == 0 && batchIndex == 0 &&
               candidateDigest == 0 && parentSpanId == 0;
    }
};

namespace detail
{
/** The calling thread's live context (no enabled() gate; prefer the
 *  capture helpers below on any path that can run with telemetry off). */
TraceContext &threadContext();

/** Innermost open span id on the calling thread (0 = none). Maintained
 *  by ScopedSpan; read by captureContext() so cross-thread children can
 *  name their enqueuing span as parent. */
u64 &threadActiveSpanId();
} // namespace detail

/** Allocate a fresh process-unique span id (never 0). */
u64 nextSpanId();

/**
 * Snapshot the calling thread's context for a thread hop, folding in
 * the innermost open span as parent. Returns an empty context (and does
 * nothing else) when telemetry is disabled — one relaxed load.
 */
TraceContext captureContext();

/**
 * RAII: install @p ctx (or fields of it) on the calling thread,
 * restoring the previous context on destruction. Used by ThreadPool
 * workers to adopt the submitter's context, and by campaigns/optimizers
 * to stamp campaign/batch/candidate ids around their work. Cheap
 * (two thread-local copies); safe to use unconditionally, but the
 * convenience constructors no-op when telemetry is disabled so hot
 * paths keep the one-relaxed-load property.
 */
class ScopedTraceContext
{
  public:
    /** Install a full captured context (thread-hop restore). */
    explicit ScopedTraceContext(const TraceContext &ctx);

    /** Overlay campaign/batch onto the current context. */
    ScopedTraceContext(u64 campaign_id, u32 batch_index);

    /** Overlay campaign/batch/candidate onto the current context. */
    ScopedTraceContext(u64 campaign_id, u32 batch_index,
                       u64 candidate_digest);

    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    TraceContext saved_;
    bool active_ = false;
};

/**
 * RAII: overlay only the candidate digest (layout seed / candidate
 * content hash) on the current context, keeping campaign/batch ids
 * intact — for the inner measurement loops, where the enclosing
 * campaign context is already installed. No-op when telemetry is
 * disabled (one relaxed load).
 */
class ScopedCandidateDigest
{
  public:
    explicit ScopedCandidateDigest(u64 digest);
    ~ScopedCandidateDigest();

    ScopedCandidateDigest(const ScopedCandidateDigest &) = delete;
    ScopedCandidateDigest &operator=(const ScopedCandidateDigest &) =
        delete;

  private:
    u64 saved_ = 0;
    bool active_ = false;
};

} // namespace interf::telemetry

#endif // INTERF_TELEMETRY_TRACE_CTX_HH
