#include "telemetry/progress.hh"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <mutex>

#include "telemetry/recorder.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace
{

/** Publish throttle: at most one event per task per this interval. */
constexpr u64 kPublishIntervalNs = 100'000'000; // 100 ms

/** EMA half-life-ish smoothing for the units/second rate. */
constexpr double kEmaAlpha = 0.3;

std::mutex g_observerMutex;
ProgressObserver g_observer;

/** Render one event as a single rewriting stderr line. */
void
stderrTicker(const ProgressEvent &ev)
{
    // One shared line: concurrent tasks interleave, which is fine for a
    // human glancing at a terminal — the flight log has the full feed.
    std::string line = strprintf("\r[%s] %llu", ev.task.c_str(),
                                 (unsigned long long)ev.done);
    if (ev.total > 0)
        line += strprintf("/%llu", (unsigned long long)ev.total);
    line += strprintf(" (%llu cached, %llu fresh)",
                      (unsigned long long)ev.cached,
                      (unsigned long long)ev.fresh);
    if (ev.ratePerSec > 0)
        line += strprintf(" %.1f/s", ev.ratePerSec);
    if (ev.etaSec > 0)
        line += strprintf(" eta %.0fs", ev.etaSec);
    line += "\x1b[K"; // Clear the remnants of a longer previous line.
    const bool final_tick = ev.total > 0 && ev.done >= ev.total;
    if (final_tick)
        line += "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // anonymous namespace

void
publishProgress(const ProgressEvent &event)
{
    if (!enabled())
        return;
    recorder::recordProgress(event);
    ProgressObserver observer;
    {
        std::lock_guard<std::mutex> lock(g_observerMutex);
        observer = g_observer;
    }
    if (observer)
        observer(event);
}

ProgressObserver
setProgressObserver(ProgressObserver observer)
{
    std::lock_guard<std::mutex> lock(g_observerMutex);
    std::swap(g_observer, observer);
    return observer;
}

bool
installStderrProgressTicker()
{
    if (::isatty(STDERR_FILENO) == 0)
        return false;
    setProgressObserver(stderrTicker);
    return true;
}

ProgressTracker::ProgressTracker(std::string task, u64 total)
    : task_(std::move(task)), total_(total)
{
    if (!enabled())
        return;
    active_ = true;
    startNs_ = nowNs();
    lastRateNs_ = startNs_;
}

void
ProgressTracker::update(u64 done, u64 cached, u64 fresh)
{
    if (!active_)
        return;
    done_ = done;
    cached_ = cached;
    fresh_ = fresh;
    const u64 ts = nowNs();
    const bool final_unit = total_ > 0 && done_ >= total_;
    if (!final_unit && ts - lastPublishNs_ < kPublishIntervalNs)
        return;
    // Fold the window since the last EMA sample into the rate. Windows
    // are >= the publish interval, so the instantaneous rate is
    // reasonably denoised before smoothing.
    if (ts > lastRateNs_ && done_ > lastRateDone_) {
        const double window =
            static_cast<double>(ts - lastRateNs_) / 1e9;
        const double inst =
            static_cast<double>(done_ - lastRateDone_) / window;
        emaRate_ = emaRate_ == 0.0
                       ? inst
                       : kEmaAlpha * inst + (1.0 - kEmaAlpha) * emaRate_;
        lastRateNs_ = ts;
        lastRateDone_ = done_;
    }
    lastPublishNs_ = ts;
    publish(ts);
}

void
ProgressTracker::finish()
{
    if (!active_)
        return;
    publish(nowNs());
    active_ = false;
}

void
ProgressTracker::publish(u64 ts_ns)
{
    ProgressEvent ev;
    ev.task = task_;
    ev.tsNs = ts_ns;
    ev.done = done_;
    ev.total = total_;
    ev.cached = cached_;
    ev.fresh = fresh_;
    ev.ratePerSec = emaRate_;
    if (emaRate_ > 0 && total_ > done_)
        ev.etaSec = static_cast<double>(total_ - done_) / emaRate_;
    publishProgress(ev);
}

} // namespace interf::telemetry
