#include "telemetry/telemetry.hh"

#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "telemetry/metrics.hh"
#include "telemetry/recorder.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace detail
{
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_crashAfterTmpWrite{false};
} // namespace detail

namespace
{

constexpr u32 kNoTid = UINT32_MAX;
constexpr size_t kRecentWarnings = 16;

std::mutex g_mutex; ///< Threads, names, output dir, log capture.
u32 g_nextTid = 0;
std::map<u32, std::string> g_threadNames;
std::string g_outputDir;

struct LogCaptureState
{
    u64 warns = 0;
    u64 informs = 0;
    std::deque<std::string> recent;
    bool installed = false;
};
LogCaptureState g_logCapture;

thread_local u32 t_tid = kNoTid;

/** INTERF_TELEMETRY: unset = off until enable(); "0" = hard off. */
const char *
envSetting()
{
    static const char *value = std::getenv("INTERF_TELEMETRY");
    return value;
}

void
onLogMessage(LogLevel level, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        if (level == LogLevel::Inform) {
            ++g_logCapture.informs;
            return;
        }
        // Warnings (and the last words of fatal/panic) go to the
        // manifest.
        ++g_logCapture.warns;
        g_logCapture.recent.push_back(msg);
        while (g_logCapture.recent.size() > kRecentWarnings)
            g_logCapture.recent.pop_front();
    }
    // ... and into the flight log. A dying process flushes its last
    // words synchronously so the recorder's tail explains the death.
    recorder::recordLog(static_cast<u8>(level), msg);
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        recorder::flushNow();
}

struct EnvInit
{
    EnvInit()
    {
        const char *env = envSetting();
        if (env && std::string_view(env) == "1")
            enable();
    }
};
EnvInit g_envInit;

} // anonymous namespace

void
enable()
{
    const char *env = envSetting();
    if (env && std::string_view(env) == "0") {
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("telemetry requested but INTERF_TELEMETRY=0 forces it "
                 "off");
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        if (!g_logCapture.installed) {
            g_logCapture.installed = true;
            setLogObserver(onLogMessage);
        }
    }
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
setOutputDir(const std::string &dir)
{
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cannot create telemetry output directory '%s': %s",
              dir.c_str(), ec.message().c_str());
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        g_outputDir = dir;
    }
    enable();
    // An output dir is the opt-in for durable observability: start the
    // flight recorder next to the manifests/traces. No-op (with a
    // warning from enable()) under the INTERF_TELEMETRY=0 hard-off.
    if (enabled())
        recorder::start(dir + "/flight");
}

std::string
outputDir()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_outputDir;
}

u32
currentTid()
{
    if (t_tid == kNoTid) {
        std::lock_guard<std::mutex> lock(g_mutex);
        t_tid = g_nextTid++;
    }
    return t_tid;
}

void
setCurrentThreadName(const std::string &name)
{
    u32 tid = currentTid();
    std::lock_guard<std::mutex> lock(g_mutex);
    g_threadNames[tid] = name;
}

std::vector<std::pair<u32, std::string>>
threadNames()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::vector<std::pair<u32, std::string>> out;
    out.reserve(g_nextTid);
    for (u32 tid = 0; tid < g_nextTid; ++tid) {
        auto it = g_threadNames.find(tid);
        out.emplace_back(tid, it != g_threadNames.end()
                                  ? it->second
                                  : strprintf("thread-%u", tid));
    }
    return out;
}

u64
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

u64
threadCpuNs()
{
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<u64>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<u64>(ts.tv_nsec);
}

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + strprintf(".tmp.%ld", static_cast<long>(::getpid()));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot open '%s' for writing", tmp.c_str());
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        os.flush();
        if (!os)
            fatal("write to '%s' failed", tmp.c_str());
    }
    // Crash-injection point for the atomic-write test: the tmp file is
    // complete but the rename has not happened, so the original must
    // still be intact.
    if (detail::g_crashAfterTmpWrite.load(std::memory_order_relaxed))
        std::abort();
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename '%s' into place", path.c_str());
}

LogCaptureSnapshot
logCapture()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    LogCaptureSnapshot snap;
    snap.warns = g_logCapture.warns;
    snap.informs = g_logCapture.informs;
    snap.recentWarnings.assign(g_logCapture.recent.begin(),
                               g_logCapture.recent.end());
    return snap;
}

void
resetForTest()
{
    recorder::stop(); // Seals + detaches any flight log of the test.
    Registry::global().resetValues();
    clearSpans();
    std::lock_guard<std::mutex> lock(g_mutex);
    g_logCapture.warns = 0;
    g_logCapture.informs = 0;
    g_logCapture.recent.clear();
    g_outputDir.clear();
}

} // namespace interf::telemetry
