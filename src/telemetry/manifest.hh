/**
 * @file
 * Run manifest: one JSON document per campaign.
 *
 * The manifest is the durable, machine-readable answer to "what did
 * this campaign do": identity (benchmark, config digest, store key),
 * shape (budget, jobs, layouts measured vs served from cache), where
 * the time went (per-phase durations, layouts/sec), what the verifiers
 * and log sink said, and — when the escalation loop ran — the final
 * regression statistics.
 *
 * Written atomically (temp + rename) next to the campaign store and/or
 * into the --telemetry-out directory. Schema is versioned
 * ("interf-manifest-1", schema_version 1) and validated in CI against
 * docs/manifest.schema.json; tools/interf_stats pretty-prints and
 * diffs manifests.
 */

#ifndef INTERF_TELEMETRY_MANIFEST_HH
#define INTERF_TELEMETRY_MANIFEST_HH

#include <string>
#include <vector>

#include "telemetry/span.hh"
#include "util/json.hh"
#include "util/types.hh"

namespace interf::telemetry
{

/** Schema identity stamped into (and required from) every manifest. */
constexpr const char *kManifestSchema = "interf-manifest-1";
constexpr u32 kManifestSchemaVersion = 1;

struct RunManifest
{
    /** @{ Identity. */
    std::string benchmark;
    std::string configDigest; ///< 16-hex campaign key digest.
    std::string storeKey;     ///< Same digest when a store is open.
    std::string storeDir;     ///< Empty when no store was used.
    /** @} */

    /** @{ Campaign shape. */
    u64 instructionBudget = 0;
    u32 jobs = 0;
    u32 layoutsUsed = 0;     ///< Layouts the campaign consumed.
    u32 layoutsMeasured = 0; ///< Measured fresh this run.
    u32 layoutsCached = 0;   ///< Served from the store.
    /** @} */

    /** @{ Store activity this run. */
    u64 storeBatchesCommitted = 0;
    double storeCommitMs = 0.0;
    /** @} */

    /** @{ Timing. */
    double wallMs = 0.0;        ///< Whole-campaign wall time.
    double layoutsPerSec = 0.0; ///< Fresh measurements / measure time.
    std::vector<PhaseStat> phases;
    /** @} */

    /** @{ Diagnostics. */
    u64 verifyErrors = 0;
    u64 verifyWarnings = 0;
    u64 logWarns = 0;
    u64 logInforms = 0;
    std::vector<std::string> recentWarnings;
    /** Span-ring overflow: raw records lost to overwrite (phase
     *  aggregates stay exact), total and per span name. A nonzero value
     *  means the Chrome trace export is partial. */
    u64 spansDropped = 0;
    std::vector<std::pair<std::string, u64>> spansDroppedByName;
    /** @} */

    /** @{ Final regression stats (valid when regressionRan). */
    bool regressionRan = false;
    bool regressionSignificant = false;
    bool enoughMpkiRange = false;
    double slope = 0.0;
    double intercept = 0.0;
    double r2 = 0.0;
    /** @} */

    /**
     * Metrics snapshot as produced by MetricsSnapshot::toJson() (a
     * flat array of {name, kind, ...}); carried as JSON verbatim so a
     * loaded manifest round-trips without re-reading the live
     * registry.
     */
    Json metrics = Json::array();

    /**
     * Optional layout-optimizer summary (strategy, budget, evaluation
     * tallies, initial/final cycles — see tools/interf_opt). Null for
     * campaign manifests; serialized and round-tripped verbatim when
     * an object, like metrics.
     */
    Json opt = Json();

    Json toJson() const;

    /**
     * Populate from parsed JSON. Returns false (with @p error set) on
     * schema mismatch or missing/ill-typed required fields.
     */
    bool fromJson(const Json &doc, std::string *error);

    /** Pretty-printed JSON document (trailing newline included). */
    std::string dump() const;

    /** Serialize and write via writeFileAtomic. */
    void writeAtomic(const std::string &path) const;

    /** Parse @p path; false (with @p error set) on any failure. */
    bool load(const std::string &path, std::string *error);
};

} // namespace interf::telemetry

#endif // INTERF_TELEMETRY_MANIFEST_HH
