#include "telemetry/metrics.hh"

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <mutex>

#include "util/json.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace
{

using detail::HistogramMeta;
using detail::kInvalidSlot;
using detail::kMaxGauges;
using detail::kShardSlots;

/**
 * One thread's slot array. The owning thread is the only writer; all
 * cross-thread traffic is relaxed atomic loads (snapshot) against
 * relaxed stores (owner), which is exactly the wait-free contract the
 * hot paths need.
 */
struct Shard
{
    std::array<std::atomic<u64>, kShardSlots> slots{};
};

enum class Kind : u8 { Counter, Gauge, Histogram };

} // anonymous namespace

struct Registry::Impl
{
    mutable std::mutex mutex;

    std::map<std::string, Kind> kinds;
    std::map<std::string, u32> counterSlots;
    std::map<std::string, u32> gaugeIndex;
    std::map<std::string, std::unique_ptr<HistogramMeta>> histograms;
    u32 nextSlot = 0;
    u32 nextGauge = 0;
    std::array<std::atomic<i64>, kMaxGauges> gauges{};

    std::vector<Shard *> live; ///< Attached to a running thread.
    std::vector<std::unique_ptr<Shard>> owned;
    std::vector<Shard *> freeList; ///< Detached, zeroed, reusable.
    std::array<u64, kShardSlots> retired{}; ///< Fold of dead shards.

    u32 allocateSlots(u32 n)
    {
        if (nextSlot + n > kShardSlots)
            panic("telemetry metric slot space exhausted (%u slots)",
                  kShardSlots);
        u32 first = nextSlot;
        nextSlot += n;
        return first;
    }

    void requireKind(const std::string &name, Kind kind)
    {
        auto [it, inserted] = kinds.emplace(name, kind);
        if (!inserted && it->second != kind)
            panic("telemetry metric '%s' re-registered as a different "
                  "kind",
                  name.c_str());
    }

    Shard *attach()
    {
        std::lock_guard<std::mutex> lock(mutex);
        Shard *shard;
        if (!freeList.empty()) {
            shard = freeList.back();
            freeList.pop_back();
        } else {
            owned.push_back(std::make_unique<Shard>());
            shard = owned.back().get();
        }
        live.push_back(shard);
        return shard;
    }

    void detach(Shard *shard)
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (u32 i = 0; i < kShardSlots; ++i) {
            retired[i] += shard->slots[i].load(std::memory_order_relaxed);
            shard->slots[i].store(0, std::memory_order_relaxed);
        }
        live.erase(std::remove(live.begin(), live.end(), shard),
                   live.end());
        freeList.push_back(shard);
    }

    u64 slotTotalLocked(u32 slot) const
    {
        u64 total = retired[slot];
        for (const Shard *s : live)
            total += s->slots[slot].load(std::memory_order_relaxed);
        return total;
    }
};

namespace
{

/**
 * The thread's shard, attached on first use and folded back into the
 * registry when the thread exits (so counts outlive pool workers).
 */
struct ShardLease
{
    Shard *shard = nullptr;
    Registry::Impl *impl = nullptr;

    ~ShardLease()
    {
        if (shard)
            impl->detach(shard);
    }
};

thread_local ShardLease t_lease;

Registry::Impl *
globalImpl()
{
    // Leaked on purpose: thread_local lease destructors (including the
    // main thread's, at exit) must always find a live registry.
    static Registry::Impl *impl = new Registry::Impl();
    return impl;
}

std::atomic<u64> &
shardSlot(u32 slot)
{
    if (!t_lease.shard) {
        t_lease.impl = globalImpl();
        t_lease.shard = t_lease.impl->attach();
    }
    return t_lease.shard->slots[slot];
}

void
shardAdd(u32 slot, u64 n)
{
    auto &cell = shardSlot(slot);
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

} // anonymous namespace

void
Counter::add(u64 n) const
{
    if (slot_ == kInvalidSlot || !enabled())
        return;
    shardAdd(slot_, n);
}

void
Gauge::set(i64 v) const
{
    if (index_ == kInvalidSlot || !enabled())
        return;
    globalImpl()->gauges[index_].store(v, std::memory_order_relaxed);
}

void
Histogram::record(u64 value) const
{
    if (meta_ == nullptr || !enabled())
        return;
    const auto &bounds = meta_->bounds;
    u32 bucket = 0;
    while (bucket < bounds.size() && value > bounds[bucket])
        ++bucket; // First bound >= value: "le" semantics.
    shardAdd(meta_->firstSlot + bucket, 1);
    shardAdd(meta_->firstSlot + static_cast<u32>(bounds.size()) + 1,
             value);
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Registry::Impl &
Registry::impl() const
{
    return *globalImpl();
}

Counter
Registry::counter(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.requireKind(name, Kind::Counter);
    auto it = im.counterSlots.find(name);
    if (it == im.counterSlots.end())
        it = im.counterSlots.emplace(name, im.allocateSlots(1)).first;
    return Counter(it->second);
}

Gauge
Registry::gauge(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.requireKind(name, Kind::Gauge);
    auto it = im.gaugeIndex.find(name);
    if (it == im.gaugeIndex.end()) {
        if (im.nextGauge >= kMaxGauges)
            panic("telemetry gauge space exhausted (%u gauges)",
                  kMaxGauges);
        it = im.gaugeIndex.emplace(name, im.nextGauge++).first;
    }
    return Gauge(it->second);
}

Histogram
Registry::histogram(const std::string &name, std::vector<u64> bounds)
{
    if (bounds.empty())
        panic("telemetry histogram '%s' needs at least one bound",
              name.c_str());
    for (size_t i = 1; i < bounds.size(); ++i)
        if (bounds[i] <= bounds[i - 1])
            panic("telemetry histogram '%s' bounds must be strictly "
                  "ascending",
                  name.c_str());

    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.requireKind(name, Kind::Histogram);
    auto it = im.histograms.find(name);
    if (it == im.histograms.end()) {
        auto meta = std::make_unique<HistogramMeta>();
        meta->name = name;
        meta->bounds = std::move(bounds);
        // Buckets, overflow, then the value sum.
        meta->firstSlot = im.allocateSlots(
            static_cast<u32>(meta->bounds.size()) + 2);
        it = im.histograms.emplace(name, std::move(meta)).first;
    } else if (it->second->bounds != bounds) {
        panic("telemetry histogram '%s' re-registered with different "
              "bounds",
              name.c_str());
    }
    return Histogram(it->second.get());
}

MetricsSnapshot
Registry::snapshot() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    MetricsSnapshot snap;
    for (const auto &[name, slot] : im.counterSlots)
        snap.counters.push_back({name, im.slotTotalLocked(slot)});
    for (const auto &[name, index] : im.gaugeIndex)
        snap.gauges.push_back(
            {name, im.gauges[index].load(std::memory_order_relaxed)});
    for (const auto &[name, meta] : im.histograms) {
        HistogramValue h;
        h.name = name;
        h.bounds = meta->bounds;
        const u32 buckets = static_cast<u32>(meta->bounds.size());
        h.counts.resize(buckets);
        for (u32 i = 0; i < buckets; ++i)
            h.counts[i] = im.slotTotalLocked(meta->firstSlot + i);
        h.overflow = im.slotTotalLocked(meta->firstSlot + buckets);
        h.sum = im.slotTotalLocked(meta->firstSlot + buckets + 1);
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

void
Registry::resetValues()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    im.retired.fill(0);
    for (Shard *s : im.live)
        for (auto &slot : s->slots)
            slot.store(0, std::memory_order_relaxed);
    for (auto &g : im.gauges)
        g.store(0, std::memory_order_relaxed);
}

u64
HistogramValue::total() const
{
    u64 n = overflow;
    for (u64 c : counts)
        n += c;
    return n;
}

Json
MetricsSnapshot::toJson() const
{
    Json arr = Json::array();
    for (const auto &c : counters) {
        Json m = Json::object();
        m.set("name", c.name);
        m.set("kind", "counter");
        m.set("value", c.value);
        arr.push(std::move(m));
    }
    for (const auto &g : gauges) {
        Json m = Json::object();
        m.set("name", g.name);
        m.set("kind", "gauge");
        m.set("value", g.value);
        arr.push(std::move(m));
    }
    for (const auto &h : histograms) {
        Json m = Json::object();
        m.set("name", h.name);
        m.set("kind", "histogram");
        m.set("count", h.total());
        m.set("sum", h.sum);
        Json buckets = Json::array();
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            Json b = Json::object();
            b.set("le", h.bounds[i]);
            b.set("count", h.counts[i]);
            buckets.push(std::move(b));
        }
        m.set("buckets", std::move(buckets));
        m.set("overflow", h.overflow);
        arr.push(std::move(m));
    }
    return arr;
}

} // namespace interf::telemetry
