/**
 * @file
 * Live progress events: what a long campaign is doing, right now.
 *
 * Campaign::measureLayouts and the optimizers publish typed
 * ProgressEvents (done/total, cache hits, fresh measurements, a
 * layouts-per-second EMA and an ETA). Two consumers exist: an optional
 * in-process observer — the benches and interf_opt install a TTY-gated
 * stderr ticker behind --progress — and the flight recorder, so
 * `interf_trace --tail` on a running process's output dir shows the
 * same numbers post-hoc or from another terminal.
 *
 * Everything follows the telemetry invariants: publishing is gated on
 * telemetry::enabled() (one relaxed load when off), observers only
 * observe, and nothing here feeds back into a measurement.
 */

#ifndef INTERF_TELEMETRY_PROGRESS_HH
#define INTERF_TELEMETRY_PROGRESS_HH

#include <functional>
#include <string>

#include "telemetry/telemetry.hh"
#include "util/types.hh"

namespace interf::telemetry
{

/** One progress snapshot for a named long-running task. */
struct ProgressEvent
{
    std::string task;      ///< "campaign.measure", "opt.anneal", ...
    u64 tsNs = 0;          ///< Telemetry-epoch-relative publish time.
    u64 done = 0;          ///< Work units finished.
    u64 total = 0;         ///< Work units expected (0 = unknown).
    u64 cached = 0;        ///< Units served from a cache/store.
    u64 fresh = 0;         ///< Units measured fresh.
    double ratePerSec = 0; ///< EMA of units/second (0 = not yet known).
    double etaSec = 0;     ///< Estimated seconds remaining (0 = n/a).
};

/**
 * Publish @p event to the installed observer and the flight recorder.
 * No-ops on one relaxed load when telemetry is disabled. The observer
 * runs on the publishing thread — keep it cheap (the stderr ticker is).
 */
void publishProgress(const ProgressEvent &event);

/** Install (or clear, with nullptr) the process-wide progress
 *  observer. Returns the previous observer. */
using ProgressObserver = std::function<void(const ProgressEvent &)>;
ProgressObserver setProgressObserver(ProgressObserver observer);

/**
 * Install the stderr progress ticker: a single rewriting status line
 * ("\r…") per task, final state flushed with a newline. TTY-gated —
 * when stderr is not a terminal this installs nothing and returns
 * false, so piped/CI output stays clean. Benches and interf_opt call
 * this behind --progress.
 */
bool installStderrProgressTicker();

/**
 * Rate/ETA bookkeeping for one task, publish-throttled so callers can
 * tick per work unit without flooding observers: publishes at most
 * every ~100 ms, plus always on the final unit. Construction snapshots
 * telemetry::enabled() — a tracker built while disabled is inert.
 */
class ProgressTracker
{
  public:
    ProgressTracker(std::string task, u64 total);

    /** Record progress; publishes if due. Totals are absolute. */
    void update(u64 done, u64 cached, u64 fresh);

    /** Publish the current state unconditionally (end of task). */
    void finish();

  private:
    void publish(u64 ts_ns);

    std::string task_;
    u64 total_ = 0;
    u64 done_ = 0;
    u64 cached_ = 0;
    u64 fresh_ = 0;
    u64 startNs_ = 0;
    u64 lastPublishNs_ = 0;
    u64 lastRateNs_ = 0;   ///< Last EMA sample time.
    u64 lastRateDone_ = 0; ///< done_ at the last EMA sample.
    double emaRate_ = 0.0; ///< Units/second, exponentially smoothed.
    bool active_ = false;
};

} // namespace interf::telemetry

#endif // INTERF_TELEMETRY_PROGRESS_HH
