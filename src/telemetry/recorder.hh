/**
 * @file
 * Crash-safe flight recorder: a bounded binary event log that survives
 * a killed campaign.
 *
 * When telemetry is on and a recorder is started (setOutputDir does
 * both), finished spans, captured log warnings and progress events
 * spill into an append-only binary log under <dir>/flight/. The
 * framing ("interf-flight-1") reuses the store's durability discipline
 * (store/format.hh): every record is length-prefixed and checksummed,
 * the active segment is a pid-unique .tmp sibling that rotation seals
 * via fsync + atomic rename, and sealed segments beyond a bounded count
 * are deleted oldest-first. A reader therefore always finds a readable
 * tail: sealed segments verify record by record, and the active
 * segment parses up to the first torn record — which is exactly the
 * state a SIGKILL leaves behind. tools/interf_trace is that reader.
 *
 * Hot paths never touch the disk: producers enqueue events into a
 * bounded in-memory queue (dropping, with a counter, when full) and a
 * dedicated drain thread owns all file I/O. An atexit hook and the
 * fatal/panic log path call flushNow(), which synchronously drains the
 * queue and fsyncs the active segment, so even a panicking process
 * leaves its last events on disk.
 *
 * Same invariants as the rest of the telemetry layer: recording is
 * observe-only (provably byte-identical samples on/off), and every
 * entry point no-ops on one relaxed load when telemetry is disabled or
 * no recorder is active.
 */

#ifndef INTERF_TELEMETRY_RECORDER_HH
#define INTERF_TELEMETRY_RECORDER_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace interf::telemetry
{

struct ProgressEvent;
struct SpanRecord;

namespace flight
{

/** @{ On-disk framing constants ("interf-flight-1"). */
inline constexpr u64 kFlightMagic = 0x494e544652464c54ULL; // INTFRFLT
inline constexpr u32 kFlightVersion = 1;
/** Segment header: magic, version, sequence number. */
inline constexpr u64 kSegmentHeaderBytes = 8 + 4 + 8;
/** Record header: payload length, type, payload checksum. */
inline constexpr u64 kRecordHeaderBytes = 4 + 4 + 8;
/** Rotation threshold for the active segment. */
inline constexpr u64 kSegmentBytes = 1u << 20;
/** Sealed segments kept on disk (oldest deleted past this). */
inline constexpr u32 kMaxSealedSegments = 4;
/** Producer queue bound; events past this are dropped (counted). */
inline constexpr size_t kQueueCapacity = 8192;

/** Record types (the wire tag; never renumber, only append). */
enum class EventType : u32
{
    Span = 1,     ///< A finished telemetry span.
    Log = 2,      ///< A warn()/fatal()/panic() message.
    Progress = 3, ///< A typed progress event.
    /** A long-lived span announced when it *opens* (same payload as
     *  Span, wall/thread zero). Finished spans are only written at
     *  close, so without these a kill mid-phase would leave every
     *  recorded child pointing at a parent id that never reached the
     *  log. Phase spans (campaign.run, replay.batch, opt.search, ...)
     *  announce themselves so a post-mortem can always resolve them. */
    SpanOpen = 4,
};

/** One decoded flight-log event (the reader's view). */
struct Event
{
    EventType type = EventType::Span;
    u64 tsNs = 0; ///< Telemetry-epoch-relative, like span startNs.

    /** @{ Span fields (type == Span). */
    std::string name;
    u32 tid = 0;
    u64 wallNs = 0;
    u64 threadNs = 0;
    u64 spanId = 0;
    u64 parentSpanId = 0;
    u64 campaignId = 0;
    u32 batchIndex = 0;
    u64 candidateDigest = 0;
    /** @} */

    /** @{ Log fields (type == Log); name carries the message. */
    u8 logLevel = 0; ///< Mirrors interf::LogLevel.
    /** @} */

    /** @{ Progress fields (type == Progress); name carries the task. */
    u64 done = 0;
    u64 total = 0;
    u64 cached = 0;
    u64 fresh = 0;
    double ratePerSec = 0.0;
    double etaSec = 0.0;
    /** @} */
};

/** Outcome of reading a flight-log directory. */
struct ReadResult
{
    std::vector<Event> events; ///< In on-disk (chronological) order.
    u32 segments = 0;          ///< Files parsed (sealed + active).
    bool tornTail = false;     ///< Active segment ended mid-record.
    /** Corruption anywhere but the active segment's tail (a sealed
     *  segment failing its checksums); events up to the corruption are
     *  still returned. */
    std::vector<std::string> errors;
};

/**
 * Parse every segment under @p dir (a .../flight directory), sealed
 * segments first in sequence order, then the active .tmp segment.
 * Returns false only when @p dir does not exist or holds no segments.
 */
bool readDir(const std::string &dir, ReadResult &out);

} // namespace flight

namespace recorder
{

/**
 * Start recording into @p dir (created if needed; segments land
 * directly inside it). Resumes after any sealed segments already
 * present — sequence numbering continues, so a restarted campaign
 * appends to its predecessor's log instead of clobbering it. Starting
 * while started moves the recorder to the new directory.
 */
void start(const std::string &dir);

/** Flush and seal the active segment, then join the drain thread. */
void stop();

/** Is a recorder active? One relaxed load. */
bool active();

/** The directory passed to start(); empty when inactive. */
std::string dir();

/** @{ Enqueue one event; no-ops (one relaxed load) when inactive. */
void recordSpan(const SpanRecord &rec);
/** Announce a still-open span (flight::EventType::SpanOpen); @p rec
 *  carries its id/parent/context, wall and thread time ignored. */
void recordSpanOpen(const SpanRecord &rec);
void recordLog(u8 level, const std::string &message);
void recordProgress(const ProgressEvent &event);
/** @} */

/**
 * Synchronously drain the queue and fsync the active segment. Called
 * from atexit and from the fatal/panic log path; safe to call from any
 * thread, including with the drain thread running. Never touches
 * sealed segments — a crash mid-flush can tear only the active tail.
 */
void flushNow();

/** Events dropped because the producer queue was full. */
u64 droppedEvents();

} // namespace recorder

} // namespace interf::telemetry

#endif // INTERF_TELEMETRY_RECORDER_HH
