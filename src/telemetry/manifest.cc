#include "telemetry/manifest.hh"

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace
{

/** @{ Checked field accessors for fromJson: false + error on a miss. */
bool
getString(const Json &doc, const char *key, std::string &out,
          std::string *error)
{
    const Json &v = doc.get(key);
    if (!v.isString()) {
        if (error)
            *error = strprintf("missing or non-string field '%s'", key);
        return false;
    }
    out = v.asString();
    return true;
}

bool
getU64(const Json &doc, const char *key, u64 &out, std::string *error)
{
    const Json &v = doc.get(key);
    if (!v.isNumber()) {
        if (error)
            *error = strprintf("missing or non-numeric field '%s'", key);
        return false;
    }
    out = v.asU64();
    return true;
}

bool
getDouble(const Json &doc, const char *key, double &out,
          std::string *error)
{
    const Json &v = doc.get(key);
    if (!v.isNumber()) {
        if (error)
            *error = strprintf("missing or non-numeric field '%s'", key);
        return false;
    }
    out = v.asDouble();
    return true;
}

bool
getBool(const Json &doc, const char *key, bool &out, std::string *error)
{
    const Json &v = doc.get(key);
    if (!v.isBool()) {
        if (error)
            *error = strprintf("missing or non-bool field '%s'", key);
        return false;
    }
    out = v.asBool();
    return true;
}
/** @} */

} // anonymous namespace

Json
RunManifest::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", kManifestSchema);
    doc.set("schema_version", kManifestSchemaVersion);
    doc.set("benchmark", benchmark);
    doc.set("config_digest", configDigest);
    doc.set("store_key", storeKey);
    doc.set("store_dir", storeDir);
    doc.set("instruction_budget", instructionBudget);
    doc.set("jobs", jobs);

    Json layouts = Json::object();
    layouts.set("used", layoutsUsed);
    layouts.set("measured", layoutsMeasured);
    layouts.set("cached", layoutsCached);
    doc.set("layouts", std::move(layouts));

    Json store = Json::object();
    store.set("batches_committed", storeBatchesCommitted);
    store.set("commit_ms", storeCommitMs);
    doc.set("store", std::move(store));

    doc.set("wall_ms", wallMs);
    doc.set("layouts_per_sec", layoutsPerSec);

    Json verify = Json::object();
    verify.set("errors", verifyErrors);
    verify.set("warnings", verifyWarnings);
    doc.set("verify", std::move(verify));

    Json logj = Json::object();
    logj.set("warns", logWarns);
    logj.set("informs", logInforms);
    Json recent = Json::array();
    for (const auto &msg : recentWarnings)
        recent.push(msg);
    logj.set("recent_warnings", std::move(recent));
    doc.set("log", std::move(logj));

    Json spans = Json::object();
    spans.set("dropped", spansDropped);
    Json by_name = Json::array();
    for (const auto &[name, count] : spansDroppedByName) {
        Json entry = Json::object();
        entry.set("name", name);
        entry.set("count", count);
        by_name.push(std::move(entry));
    }
    spans.set("dropped_by_name", std::move(by_name));
    doc.set("spans", std::move(spans));

    Json regression = Json::object();
    regression.set("ran", regressionRan);
    regression.set("significant", regressionSignificant);
    regression.set("enough_mpki_range", enoughMpkiRange);
    regression.set("slope", slope);
    regression.set("intercept", intercept);
    regression.set("r2", r2);
    doc.set("regression", std::move(regression));

    Json phasesJson = Json::array();
    for (const auto &phase : phases) {
        Json p = Json::object();
        p.set("name", phase.name);
        p.set("count", phase.count);
        p.set("wall_ms", phase.wallMs);
        p.set("thread_ms", phase.threadMs);
        phasesJson.push(std::move(p));
    }
    doc.set("phases", std::move(phasesJson));

    doc.set("metrics", metrics.isArray() ? metrics : Json::array());
    if (opt.isObject())
        doc.set("opt", opt);
    return doc;
}

bool
RunManifest::fromJson(const Json &doc, std::string *error)
{
    if (!doc.isObject()) {
        if (error)
            *error = "manifest is not a JSON object";
        return false;
    }
    std::string schema;
    if (!getString(doc, "schema", schema, error))
        return false;
    if (schema != kManifestSchema) {
        if (error)
            *error = strprintf("unsupported manifest schema '%s'",
                               schema.c_str());
        return false;
    }

    u64 scratch = 0;
    if (!getString(doc, "benchmark", benchmark, error) ||
        !getString(doc, "config_digest", configDigest, error) ||
        !getString(doc, "store_key", storeKey, error) ||
        !getString(doc, "store_dir", storeDir, error) ||
        !getU64(doc, "instruction_budget", instructionBudget, error) ||
        !getU64(doc, "jobs", scratch, error))
        return false;
    jobs = static_cast<u32>(scratch);

    const Json &layouts = doc.get("layouts");
    if (!getU64(layouts, "used", scratch, error))
        return false;
    layoutsUsed = static_cast<u32>(scratch);
    if (!getU64(layouts, "measured", scratch, error))
        return false;
    layoutsMeasured = static_cast<u32>(scratch);
    if (!getU64(layouts, "cached", scratch, error))
        return false;
    layoutsCached = static_cast<u32>(scratch);

    const Json &store = doc.get("store");
    if (!getU64(store, "batches_committed", storeBatchesCommitted,
                error) ||
        !getDouble(store, "commit_ms", storeCommitMs, error))
        return false;

    if (!getDouble(doc, "wall_ms", wallMs, error) ||
        !getDouble(doc, "layouts_per_sec", layoutsPerSec, error))
        return false;

    const Json &verify = doc.get("verify");
    if (!getU64(verify, "errors", verifyErrors, error) ||
        !getU64(verify, "warnings", verifyWarnings, error))
        return false;

    const Json &logj = doc.get("log");
    if (!getU64(logj, "warns", logWarns, error) ||
        !getU64(logj, "informs", logInforms, error))
        return false;
    recentWarnings.clear();
    const Json &recent = logj.get("recent_warnings");
    if (recent.isArray()) {
        for (size_t i = 0; i < recent.size(); ++i)
            if (recent.at(i).isString())
                recentWarnings.push_back(recent.at(i).asString());
    }

    // Lenient: manifests written before the flight-recorder work have
    // no 'spans' section; absence means zero drops.
    spansDropped = 0;
    spansDroppedByName.clear();
    const Json *spansJson = doc.find("spans");
    if (spansJson != nullptr && spansJson->isObject()) {
        const Json &droppedJson = spansJson->get("dropped");
        if (droppedJson.isNumber())
            spansDropped = droppedJson.asU64();
        const Json &byName = spansJson->get("dropped_by_name");
        if (byName.isArray()) {
            for (size_t i = 0; i < byName.size(); ++i) {
                const Json &entry = byName.at(i);
                if (entry.get("name").isString() &&
                    entry.get("count").isNumber())
                    spansDroppedByName.emplace_back(
                        entry.get("name").asString(),
                        entry.get("count").asU64());
            }
        }
    }

    const Json &regression = doc.get("regression");
    if (!getBool(regression, "ran", regressionRan, error) ||
        !getBool(regression, "significant", regressionSignificant,
                 error) ||
        !getBool(regression, "enough_mpki_range", enoughMpkiRange,
                 error) ||
        !getDouble(regression, "slope", slope, error) ||
        !getDouble(regression, "intercept", intercept, error) ||
        !getDouble(regression, "r2", r2, error))
        return false;

    phases.clear();
    const Json &phasesJson = doc.get("phases");
    if (!phasesJson.isArray()) {
        if (error)
            *error = "missing or non-array field 'phases'";
        return false;
    }
    for (size_t i = 0; i < phasesJson.size(); ++i) {
        const Json &p = phasesJson.at(i);
        PhaseStat stat;
        if (!getString(p, "name", stat.name, error) ||
            !getU64(p, "count", stat.count, error) ||
            !getDouble(p, "wall_ms", stat.wallMs, error) ||
            !getDouble(p, "thread_ms", stat.threadMs, error))
            return false;
        phases.push_back(std::move(stat));
    }

    const Json &metricsJson = doc.get("metrics");
    metrics = metricsJson.isArray() ? metricsJson : Json::array();

    // Optional: present only in optimizer-run manifests.
    const Json *optJson = doc.find("opt");
    if (optJson != nullptr && !optJson->isObject()) {
        if (error)
            *error = "non-object field 'opt'";
        return false;
    }
    opt = optJson != nullptr ? *optJson : Json();
    return true;
}

std::string
RunManifest::dump() const
{
    return toJson().dump(1) + "\n";
}

void
RunManifest::writeAtomic(const std::string &path) const
{
    writeFileAtomic(path, dump());
}

bool
RunManifest::load(const std::string &path, std::string *error)
{
    Json doc;
    if (!Json::parseFile(path, doc, error))
        return false;
    return fromJson(doc, error);
}

} // namespace interf::telemetry
