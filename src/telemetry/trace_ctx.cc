#include "telemetry/trace_ctx.hh"

#include <atomic>

namespace interf::telemetry
{

namespace
{

/** Process-wide span id allocator. Ids only need to be unique within a
 *  process lifetime (they name spans inside one flight log / trace
 *  export), so a relaxed counter is enough; 0 is reserved for "none". */
std::atomic<u64> g_nextSpanId{1};

thread_local TraceContext t_ctx;
thread_local u64 t_activeSpanId = 0;

} // anonymous namespace

namespace detail
{

TraceContext &
threadContext()
{
    return t_ctx;
}

u64 &
threadActiveSpanId()
{
    return t_activeSpanId;
}

} // namespace detail

u64
nextSpanId()
{
    return g_nextSpanId.fetch_add(1, std::memory_order_relaxed);
}

TraceContext
captureContext()
{
    if (!enabled())
        return TraceContext{};
    TraceContext ctx = t_ctx;
    // The span open right now is the causal parent of whatever the
    // capture is for (a task about to be enqueued): a worker restoring
    // this context hands the id to its own spans' parentSpanId, which
    // is what the Chrome-trace flow arrows connect.
    if (t_activeSpanId != 0)
        ctx.parentSpanId = t_activeSpanId;
    return ctx;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext &ctx)
    : saved_(t_ctx), active_(true)
{
    t_ctx = ctx;
}

ScopedTraceContext::ScopedTraceContext(u64 campaign_id, u32 batch_index)
{
    if (!enabled())
        return;
    saved_ = t_ctx;
    active_ = true;
    t_ctx.campaignId = campaign_id;
    t_ctx.batchIndex = batch_index;
}

ScopedTraceContext::ScopedTraceContext(u64 campaign_id, u32 batch_index,
                                       u64 candidate_digest)
{
    if (!enabled())
        return;
    saved_ = t_ctx;
    active_ = true;
    t_ctx.campaignId = campaign_id;
    t_ctx.batchIndex = batch_index;
    t_ctx.candidateDigest = candidate_digest;
}

ScopedTraceContext::~ScopedTraceContext()
{
    if (active_)
        t_ctx = saved_;
}

ScopedCandidateDigest::ScopedCandidateDigest(u64 digest)
{
    if (!enabled())
        return;
    active_ = true;
    saved_ = t_ctx.candidateDigest;
    t_ctx.candidateDigest = digest;
}

ScopedCandidateDigest::~ScopedCandidateDigest()
{
    if (active_)
        t_ctx.candidateDigest = saved_;
}

} // namespace interf::telemetry
