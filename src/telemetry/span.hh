/**
 * @file
 * Scoped phase spans and Chrome trace-event export.
 *
 * INTERF_SPAN("replay.batch") stamps the enclosing scope with wall and
 * thread-CPU time. Finished spans land in two places:
 *
 *  - a bounded in-memory ring of raw records (newest win when full),
 *    exported by writeChromeTrace() as Chrome trace-event JSON — load
 *    it in Perfetto (ui.perfetto.dev) or chrome://tracing to see every
 *    phase on named per-thread tracks;
 *  - a running per-name aggregate (count, total wall, total CPU) that
 *    survives ring wrap-around, from which phaseStats() answers "where
 *    did the time go" for manifests and bench reports.
 *
 * Span names must be string literals (the records keep the pointer).
 * Spans are runtime-gated on telemetry::enabled(): a disabled span is
 * one relaxed load and two untaken branches.
 */

#ifndef INTERF_TELEMETRY_SPAN_HH
#define INTERF_TELEMETRY_SPAN_HH

#include <string>
#include <vector>

#include "telemetry/telemetry.hh"
#include "telemetry/trace_ctx.hh"
#include "util/types.hh"

namespace interf::telemetry
{

/** One finished span, as stored in the ring. */
struct SpanRecord
{
    const char *name = nullptr; ///< Static string (the macro's literal).
    u32 tid = 0;
    u64 startNs = 0;  ///< Relative to the telemetry epoch.
    u64 wallNs = 0;
    u64 threadNs = 0; ///< Thread CPU time consumed inside the span.

    /** @{ Causal ids: process-unique span id, the id of the enclosing
     *  (or enqueuing, across a thread hop) span, and the campaign/
     *  batch/candidate context active when the span closed. All zero
     *  when no context was installed. */
    u64 spanId = 0;
    u64 parentSpanId = 0;
    TraceContext ctx;
    /** @} */
};

/** Aggregated totals for one span name. */
struct PhaseStat
{
    std::string name;
    u64 count = 0;
    double wallMs = 0.0;
    double threadMs = 0.0;
};

/** RAII span; use the INTERF_SPAN macro rather than naming this. */
class ScopedSpan
{
  public:
    /** @param name Must be a string literal (kept by pointer).
     *  @param announce Write a flight::EventType::SpanOpen marker into
     *  the flight recorder at construction. Finished spans reach the
     *  flight log only at close, so a long-lived phase span that is
     *  still open when the process is killed would otherwise leave its
     *  recorded children pointing at an id absent from the log. Use
     *  INTERF_SPAN_PHASE for such spans; they are rare (per phase, not
     *  per layout), so the extra record is noise. */
    explicit ScopedSpan(const char *name, bool announce = false);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    u64 startNs_ = 0;
    u64 threadStartNs_ = 0;
    u64 spanId_ = 0;
    u64 savedActiveSpanId_ = 0; ///< Enclosing span on this thread.
    bool active_ = false;
};

/** Per-name aggregates over every span recorded so far (sorted by
 *  name). Monotonic: unaffected by ring wrap-around. */
std::vector<PhaseStat> phaseStats();

/**
 * The growth of phaseStats() since @p base (a snapshot taken earlier):
 * per-name deltas of count/wall/CPU, names absent from @p base
 * included whole, zero-delta names dropped. This is how a campaign
 * reports only its own phases in a process that runs several.
 */
std::vector<PhaseStat> phaseStatsSince(const std::vector<PhaseStat> &base);

/**
 * Export the span ring as Chrome trace-event JSON (atomic write):
 * complete ("X") events with microsecond timestamps plus thread-name
 * metadata for every thread telemetry has seen, plus flow ("s"/"f")
 * events connecting each cross-thread span to the span that enqueued
 * it — in Perfetto these render as arrows from campaign.measure to the
 * workers' replay.batch slices. Warns (once per process) when ring
 * overflow dropped spans, so a partial trace is never mistaken for a
 * complete one.
 */
void writeChromeTrace(const std::string &path);

/** Spans dropped because the ring was full (oldest-overwritten). */
u64 droppedSpans();

/** Ring-overflow drops broken down by span name (sorted by name).
 *  The same total as droppedSpans(); feeds manifests + interf_stats. */
std::vector<std::pair<std::string, u64>> droppedSpansByName();

/** Clear the ring and the aggregates (tests). */
void clearSpans();

} // namespace interf::telemetry

/** Time the enclosing scope as a telemetry span. @p name must be a
 *  string literal, dot-scoped by subsystem: "store.commit". */
#define INTERF_SPAN_CONCAT2(a, b) a##b
#define INTERF_SPAN_CONCAT(a, b) INTERF_SPAN_CONCAT2(a, b)
#define INTERF_SPAN(name)                                                   \
    ::interf::telemetry::ScopedSpan INTERF_SPAN_CONCAT(interfSpan_,         \
                                                       __LINE__)(name)

/** INTERF_SPAN for long-lived *phase* spans (a whole campaign, a
 *  worker's batch loop, an optimizer search): additionally announces
 *  the open into the flight recorder, so a SIGKILL mid-phase leaves a
 *  log in which every child's parent id still resolves. */
#define INTERF_SPAN_PHASE(name)                                             \
    ::interf::telemetry::ScopedSpan INTERF_SPAN_CONCAT(interfSpan_,         \
                                                       __LINE__)(name,     \
                                                                 true)

#endif // INTERF_TELEMETRY_SPAN_HH
