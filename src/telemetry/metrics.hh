/**
 * @file
 * Metrics registry: counters, gauges, fixed-bucket histograms.
 *
 * Hot-path friendly by construction: counter and histogram increments
 * go to a per-thread shard (a flat slot array the thread owns), so the
 * write is a relaxed atomic load/store pair on an exclusively-owned
 * cache line — wait-free, no RMW, no contention, TSan-clean. snapshot()
 * aggregates across shards; when a thread exits, its shard's values are
 * folded into a retired accumulator and the shard is recycled, so
 * counts survive pool teardown.
 *
 * Handles (Counter/Gauge/Histogram) are tiny POD values obtained from
 * the Registry by name; registering the same name twice returns the
 * same metric. A default-constructed handle is inert, and every
 * recording call no-ops unless telemetry::enabled().
 *
 * Histogram buckets are upper-bound-inclusive ("le" semantics, as in
 * Prometheus): a value v lands in the first bucket whose bound >= v,
 * and values above the last bound land in the overflow bucket.
 */

#ifndef INTERF_TELEMETRY_METRICS_HH
#define INTERF_TELEMETRY_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"
#include "util/types.hh"

namespace interf
{
class Json;
}

namespace interf::telemetry
{

class Registry;

namespace detail
{
/** Slot space per shard; registration past this is a library bug. */
constexpr u32 kShardSlots = 512;
constexpr u32 kMaxGauges = 64;
constexpr u32 kInvalidSlot = UINT32_MAX;

struct HistogramMeta
{
    std::string name;
    std::vector<u64> bounds; ///< Ascending upper bounds (inclusive).
    u32 firstSlot = 0; ///< bounds.size() buckets, overflow, then sum.
};
} // namespace detail

/** Monotonic event tally. */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n; no-op when telemetry is disabled. */
    void add(u64 n = 1) const;

  private:
    friend class Registry;
    explicit Counter(u32 slot) : slot_(slot) {}
    u32 slot_ = detail::kInvalidSlot;
};

/** Last-value metric (e.g. configured worker count). Not sharded. */
class Gauge
{
  public:
    Gauge() = default;

    void set(i64 v) const;

  private:
    friend class Registry;
    explicit Gauge(u32 index) : index_(index) {}
    u32 index_ = detail::kInvalidSlot;
};

/** Fixed-bucket distribution (latencies, queue depths). */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one observation; no-op when telemetry is disabled. */
    void record(u64 value) const;

  private:
    friend class Registry;
    explicit Histogram(const detail::HistogramMeta *meta) : meta_(meta) {}
    const detail::HistogramMeta *meta_ = nullptr;
};

/** @{ Aggregated values, as returned by Registry::snapshot(). */
struct CounterValue
{
    std::string name;
    u64 value = 0;
};

struct GaugeValue
{
    std::string name;
    i64 value = 0;
};

struct HistogramValue
{
    std::string name;
    std::vector<u64> bounds; ///< Upper bounds, inclusive.
    std::vector<u64> counts; ///< Per-bucket counts (not cumulative).
    u64 overflow = 0;        ///< Observations above the last bound.
    u64 sum = 0;             ///< Sum of all observed values.

    u64 total() const;
};

struct MetricsSnapshot
{
    std::vector<CounterValue> counters;     ///< Sorted by name.
    std::vector<GaugeValue> gauges;         ///< Sorted by name.
    std::vector<HistogramValue> histograms; ///< Sorted by name.

    /** Flat JSON array of {name, kind, ...} metric objects. */
    Json toJson() const;
};
/** @} */

/**
 * The process-wide metric namespace. Registration is mutex-protected
 * and idempotent by name; recording through the returned handles is
 * wait-free (see file comment).
 */
class Registry
{
  public:
    static Registry &global();

    /** @{ Register (or look up) a metric. Panics on a kind mismatch
     *  for an existing name or on slot-space exhaustion. */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    Histogram histogram(const std::string &name, std::vector<u64> bounds);
    /** @} */

    /** Aggregate all shards (live and retired) plus gauges. */
    MetricsSnapshot snapshot() const;

    /** Zero every value; registrations are kept. (Tests.) */
    void resetValues();

    struct Impl; ///< Implementation detail; only metrics.cc defines it.

  private:
    Registry() = default;
    Impl &impl() const;
};

} // namespace interf::telemetry

/**
 * @{ Hot-path metric macros: a function-local static handle (one
 * registration, ever) plus a wait-free recording call that no-ops when
 * telemetry is disabled. Compiled out entirely when
 * INTERF_TELEMETRY_HOTPATH is 0 (see telemetry.hh).
 */
#if INTERF_TELEMETRY_HOTPATH
#define INTERF_TELEM_COUNT(name, n)                                         \
    do {                                                                    \
        static const ::interf::telemetry::Counter interfTelemCounter_ =     \
            ::interf::telemetry::Registry::global().counter(name);          \
        interfTelemCounter_.add(n);                                         \
    } while (0)
#define INTERF_TELEM_HISTOGRAM(name, bounds, value)                         \
    do {                                                                    \
        static const ::interf::telemetry::Histogram interfTelemHisto_ =     \
            ::interf::telemetry::Registry::global().histogram(name,         \
                                                             bounds);      \
        interfTelemHisto_.record(value);                                    \
    } while (0)
#define INTERF_TELEM_GAUGE(name, value)                                     \
    do {                                                                    \
        static const ::interf::telemetry::Gauge interfTelemGauge_ =         \
            ::interf::telemetry::Registry::global().gauge(name);            \
        interfTelemGauge_.set(value);                                       \
    } while (0)
#else
#define INTERF_TELEM_COUNT(name, n) ((void)0)
#define INTERF_TELEM_HISTOGRAM(name, bounds, value) ((void)0)
#define INTERF_TELEM_GAUGE(name, value) ((void)0)
#endif
/** @} */

#endif // INTERF_TELEMETRY_METRICS_HH
