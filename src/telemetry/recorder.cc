#include "telemetry/recorder.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "store/format.hh"
#include "telemetry/progress.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "util/digest.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace
{

namespace fs = std::filesystem;

/** @{ Payload encoding: fixed-width little-endian-as-stored PODs and
 *  u32-length-prefixed strings appended to a byte buffer. The checksum
 *  in the record header covers exactly these bytes. */
template <typename T>
void
put(std::string &buf, const T &value)
{
    buf.append(reinterpret_cast<const char *>(&value), sizeof(T));
}

void
putString(std::string &buf, const std::string &s)
{
    put<u32>(buf, static_cast<u32>(s.size()));
    buf.append(s);
}

/** Bounds-checked cursor over one record payload. */
struct Cursor
{
    const char *data;
    size_t size;
    size_t at = 0;
    bool ok = true;

    template <typename T> T take()
    {
        T value{};
        if (at + sizeof(T) > size) {
            ok = false;
            return value;
        }
        std::copy_n(data + at, sizeof(T),
                    reinterpret_cast<char *>(&value));
        at += sizeof(T);
        return value;
    }

    std::string takeString()
    {
        const u32 len = take<u32>();
        if (!ok || at + len > size) {
            ok = false;
            return {};
        }
        std::string s(data + at, len);
        at += len;
        return s;
    }
};
/** @} */

u64
payloadChecksum(const std::string &payload)
{
    Digest d(flight::kFlightMagic);
    d.mixString(payload);
    return d.value();
}

std::string
encodeEvent(const flight::Event &ev)
{
    std::string buf;
    switch (ev.type) {
    case flight::EventType::Span:
    case flight::EventType::SpanOpen:
        put<u64>(buf, ev.tsNs);
        put<u64>(buf, ev.wallNs);
        put<u64>(buf, ev.threadNs);
        put<u32>(buf, ev.tid);
        put<u64>(buf, ev.spanId);
        put<u64>(buf, ev.parentSpanId);
        put<u64>(buf, ev.campaignId);
        put<u32>(buf, ev.batchIndex);
        put<u64>(buf, ev.candidateDigest);
        putString(buf, ev.name);
        break;
    case flight::EventType::Log:
        put<u64>(buf, ev.tsNs);
        put<u32>(buf, ev.logLevel);
        putString(buf, ev.name);
        break;
    case flight::EventType::Progress:
        put<u64>(buf, ev.tsNs);
        put<u64>(buf, ev.done);
        put<u64>(buf, ev.total);
        put<u64>(buf, ev.cached);
        put<u64>(buf, ev.fresh);
        put<double>(buf, ev.ratePerSec);
        put<double>(buf, ev.etaSec);
        putString(buf, ev.name);
        break;
    }
    return buf;
}

bool
decodeEvent(u32 type, const char *data, size_t size, flight::Event &ev)
{
    Cursor c{data, size};
    switch (static_cast<flight::EventType>(type)) {
    case flight::EventType::Span:
    case flight::EventType::SpanOpen:
        ev.type = static_cast<flight::EventType>(type);
        ev.tsNs = c.take<u64>();
        ev.wallNs = c.take<u64>();
        ev.threadNs = c.take<u64>();
        ev.tid = c.take<u32>();
        ev.spanId = c.take<u64>();
        ev.parentSpanId = c.take<u64>();
        ev.campaignId = c.take<u64>();
        ev.batchIndex = c.take<u32>();
        ev.candidateDigest = c.take<u64>();
        ev.name = c.takeString();
        return c.ok;
    case flight::EventType::Log:
        ev.type = flight::EventType::Log;
        ev.tsNs = c.take<u64>();
        ev.logLevel = static_cast<u8>(c.take<u32>());
        ev.name = c.takeString();
        return c.ok;
    case flight::EventType::Progress:
        ev.type = flight::EventType::Progress;
        ev.tsNs = c.take<u64>();
        ev.done = c.take<u64>();
        ev.total = c.take<u64>();
        ev.cached = c.take<u64>();
        ev.fresh = c.take<u64>();
        ev.ratePerSec = c.take<double>();
        ev.etaSec = c.take<double>();
        ev.name = c.takeString();
        return c.ok;
    }
    return false; // Unknown type: caller skips (forward compatibility).
}

/** Sealed name for sequence @p seq ("flight-000042.bin"). */
std::string
segmentName(u64 seq)
{
    return strprintf("flight-%06llu.bin",
                     static_cast<unsigned long long>(seq));
}

/** Parse a segment sequence number out of a file name; false when the
 *  name is neither a sealed segment nor an active .tmp sibling. */
bool
parseSegmentName(const std::string &name, u64 &seq, bool &is_tmp)
{
    unsigned long long value = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "flight-%6llu.bin%n", &value,
                    &consumed) != 1 ||
        consumed < 0)
        return false;
    const std::string rest = name.substr(static_cast<size_t>(consumed));
    seq = value;
    if (rest.empty()) {
        is_tmp = false;
        return true;
    }
    is_tmp = rest.rfind(".tmp.", 0) == 0;
    return is_tmp;
}

void
fsyncFile(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return; // Best-effort on the fatal path; never recurse into log.
    ::fsync(fd);
    ::close(fd);
}

/**
 * The recorder singleton. One mutex guards producer/queue state, a
 * second serializes all file writes (the drain thread and flushNow can
 * race otherwise). Lock order: queueMutex -> ioMutex, never reversed.
 */
struct Recorder
{
    std::atomic<bool> active{false};
    std::atomic<u64> dropped{0};

    std::mutex queueMutex; ///< dir, queue, drain-thread lifecycle.
    std::condition_variable queueReady;
    std::deque<flight::Event> queue;
    std::string dir;
    bool stopping = false;
    std::thread drainThread;

    /** Everything below: the active segment. Recursive because the
     *  fatal/panic log path calls flushNow(), and a fatal raised while
     *  this thread holds the lock (commitFile dies on fsync failure)
     *  must not self-deadlock on its last-words flush. */
    std::recursive_mutex ioMutex;
    std::ofstream out;
    std::string tmpPath;   ///< Active (unsealed) segment path.
    std::string finalPath; ///< Where rotation seals it to.
    u64 seq = 0;
    u64 bytes = 0;

    void openSegmentLocked();
    void rotateLocked();
    void writeEventsLocked(const std::deque<flight::Event> &events);
    void drainLoop();
};

Recorder &
rec()
{
    static Recorder *r = new Recorder();
    return *r;
}

/** Open the next active segment (ioMutex held). */
void
Recorder::openSegmentLocked()
{
    finalPath = dir + "/" + segmentName(seq);
    tmpPath = store::format::tmpPathFor(finalPath);
    out.open(tmpPath, std::ios::binary | std::ios::trunc);
    if (!out) {
        // Disk trouble must never take the instrumented process down;
        // deactivate and say so once.
        active.store(false, std::memory_order_relaxed);
        warn("flight recorder: cannot open '%s'; recording disabled",
             tmpPath.c_str());
        return;
    }
    store::format::writePod(out, flight::kFlightMagic);
    store::format::writePod(out, flight::kFlightVersion);
    store::format::writePod(out, seq);
    out.flush();
    bytes = flight::kSegmentHeaderBytes;
}

/** Seal the active segment and open the next one (ioMutex held). */
void
Recorder::rotateLocked()
{
    out.flush();
    out.close();
    store::format::commitFile(tmpPath, finalPath, dir);
    ++seq;
    openSegmentLocked();
    // Bound the on-disk footprint: delete sealed segments oldest-first
    // past the cap. The active segment never counts.
    std::vector<std::pair<u64, fs::path>> sealed;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        u64 s = 0;
        bool is_tmp = false;
        if (parseSegmentName(entry.path().filename().string(), s,
                             is_tmp) &&
            !is_tmp)
            sealed.emplace_back(s, entry.path());
    }
    std::sort(sealed.begin(), sealed.end());
    while (sealed.size() > flight::kMaxSealedSegments) {
        fs::remove(sealed.front().second, ec);
        sealed.erase(sealed.begin());
    }
}

void
Recorder::writeEventsLocked(const std::deque<flight::Event> &events)
{
    if (!out.is_open())
        return;
    for (const auto &ev : events) {
        const std::string payload = encodeEvent(ev);
        store::format::writePod(out,
                                static_cast<u32>(payload.size()));
        store::format::writePod(out, static_cast<u32>(ev.type));
        store::format::writePod(out, payloadChecksum(payload));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        bytes += flight::kRecordHeaderBytes + payload.size();
    }
    out.flush();
    if (bytes >= flight::kSegmentBytes)
        rotateLocked();
}

void
Recorder::drainLoop()
{
    setCurrentThreadName("flight-drain");
    for (;;) {
        std::deque<flight::Event> batch;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueReady.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            if (queue.empty() && stopping)
                return;
            batch.swap(queue);
        }
        std::lock_guard<std::recursive_mutex> io(ioMutex);
        writeEventsLocked(batch);
    }
}

void
atexitStop()
{
    // A clean exit seals the active segment (fsync + rename), so only
    // a killed process leaves a .tmp tail for readDir to recover.
    recorder::stop();
}

/** Enqueue one event; drops (counted) when the queue is full. */
void
push(flight::Event &&ev)
{
    Recorder &r = rec();
    bool notify = false;
    {
        std::lock_guard<std::mutex> lock(r.queueMutex);
        if (!r.active.load(std::memory_order_relaxed))
            return; // Raced with stop().
        if (r.queue.size() >= flight::kQueueCapacity) {
            r.dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        r.queue.push_back(std::move(ev));
        notify = true;
    }
    if (notify)
        r.queueReady.notify_one();
}

} // anonymous namespace

namespace recorder
{

void
start(const std::string &dir)
{
    if (dir.empty())
        return;
    stop(); // Idempotent; moves an active recorder to the new dir.
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("flight recorder: cannot create '%s': %s", dir.c_str(),
             ec.message().c_str());
        return;
    }
    Recorder &r = rec();
    std::lock_guard<std::mutex> lock(r.queueMutex);
    r.dir = dir;
    // Resume after any segments already present (sealed or a dead
    // process's torn active segment): continue the sequence instead of
    // clobbering history.
    u64 next_seq = 0;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        u64 s = 0;
        bool is_tmp = false;
        if (parseSegmentName(entry.path().filename().string(), s,
                             is_tmp))
            next_seq = std::max(next_seq, s + 1);
    }
    {
        std::lock_guard<std::recursive_mutex> io(r.ioMutex);
        r.seq = next_seq;
        r.openSegmentLocked();
        if (!r.out.is_open())
            return; // openSegmentLocked already warned + deactivated.
    }
    r.stopping = false;
    r.active.store(true, std::memory_order_relaxed);
    r.drainThread = std::thread([&r] { r.drainLoop(); });
    static bool atexit_installed = false;
    if (!atexit_installed) {
        atexit_installed = true;
        std::atexit(atexitStop);
    }
}

void
stop()
{
    Recorder &r = rec();
    std::thread drain;
    {
        std::lock_guard<std::mutex> lock(r.queueMutex);
        if (!r.active.load(std::memory_order_relaxed) &&
            !r.drainThread.joinable())
            return;
        r.active.store(false, std::memory_order_relaxed);
        r.stopping = true;
        drain.swap(r.drainThread);
    }
    r.queueReady.notify_all();
    if (drain.joinable())
        drain.join();
    // Drain whatever raced in, then seal the active segment: a cleanly
    // stopped recorder leaves only sealed, fully-verified segments.
    std::deque<flight::Event> rest;
    {
        std::lock_guard<std::mutex> lock(r.queueMutex);
        rest.swap(r.queue);
        r.dir.clear();
    }
    std::lock_guard<std::recursive_mutex> io(r.ioMutex);
    if (r.out.is_open()) {
        r.writeEventsLocked(rest);
        if (r.out.is_open()) { // writeEvents may have rotated.
            r.out.flush();
            r.out.close();
            if (r.bytes > flight::kSegmentHeaderBytes) {
                store::format::commitFile(r.tmpPath, r.finalPath,
                                          fs::path(r.finalPath)
                                              .parent_path()
                                              .string());
            } else {
                std::error_code ec;
                fs::remove(r.tmpPath, ec); // Nothing recorded: drop it.
            }
        }
    }
}

bool
active()
{
    return rec().active.load(std::memory_order_relaxed);
}

std::string
dir()
{
    Recorder &r = rec();
    std::lock_guard<std::mutex> lock(r.queueMutex);
    return r.dir;
}

void
recordSpan(const SpanRecord &span)
{
    if (!active())
        return;
    flight::Event ev;
    ev.type = flight::EventType::Span;
    ev.tsNs = span.startNs;
    ev.name = span.name != nullptr ? span.name : "";
    ev.tid = span.tid;
    ev.wallNs = span.wallNs;
    ev.threadNs = span.threadNs;
    ev.spanId = span.spanId;
    ev.parentSpanId = span.parentSpanId;
    ev.campaignId = span.ctx.campaignId;
    ev.batchIndex = span.ctx.batchIndex;
    ev.candidateDigest = span.ctx.candidateDigest;
    push(std::move(ev));
}

void
recordSpanOpen(const SpanRecord &span)
{
    if (!active())
        return;
    flight::Event ev;
    ev.type = flight::EventType::SpanOpen;
    ev.tsNs = span.startNs;
    ev.name = span.name != nullptr ? span.name : "";
    ev.tid = span.tid;
    ev.spanId = span.spanId;
    ev.parentSpanId = span.parentSpanId;
    ev.campaignId = span.ctx.campaignId;
    ev.batchIndex = span.ctx.batchIndex;
    ev.candidateDigest = span.ctx.candidateDigest;
    push(std::move(ev));
}

void
recordLog(u8 level, const std::string &message)
{
    if (!active())
        return;
    flight::Event ev;
    ev.type = flight::EventType::Log;
    ev.tsNs = nowNs();
    ev.logLevel = level;
    ev.name = message;
    push(std::move(ev));
}

void
recordProgress(const ProgressEvent &event)
{
    if (!active())
        return;
    flight::Event ev;
    ev.type = flight::EventType::Progress;
    ev.tsNs = event.tsNs;
    ev.name = event.task;
    ev.done = event.done;
    ev.total = event.total;
    ev.cached = event.cached;
    ev.fresh = event.fresh;
    ev.ratePerSec = event.ratePerSec;
    ev.etaSec = event.etaSec;
    push(std::move(ev));
}

void
flushNow()
{
    Recorder &r = rec();
    std::deque<flight::Event> batch;
    {
        std::lock_guard<std::mutex> lock(r.queueMutex);
        batch.swap(r.queue);
    }
    std::lock_guard<std::recursive_mutex> io(r.ioMutex);
    if (!r.out.is_open())
        return;
    r.writeEventsLocked(batch);
    r.out.flush();
    fsyncFile(r.tmpPath);
}

u64
droppedEvents()
{
    return rec().dropped.load(std::memory_order_relaxed);
}

} // namespace recorder

namespace flight
{

namespace
{

/** Parse one segment file; returns false on open failure. */
bool
readSegment(const fs::path &path, bool is_last, ReadResult &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    is.seekg(0, std::ios::end);
    const u64 file_size = static_cast<u64>(is.tellg());
    is.seekg(0);
    if (file_size < kSegmentHeaderBytes) {
        // A header-less active segment is a process killed between
        // open and header write: a torn tail, not corruption.
        if (is_last)
            out.tornTail = true;
        else
            out.errors.push_back(path.filename().string() +
                                 ": shorter than a segment header");
        return true;
    }
    u64 magic = 0;
    u32 version = 0;
    u64 seq = 0;
    store::format::readPod(is, magic);
    store::format::readPod(is, version);
    store::format::readPod(is, seq);
    if (magic != kFlightMagic || version != kFlightVersion) {
        out.errors.push_back(path.filename().string() +
                             ": bad segment magic or version");
        return true;
    }
    u64 at = kSegmentHeaderBytes;
    while (at + kRecordHeaderBytes <= file_size) {
        u32 len = 0, type = 0;
        u64 checksum = 0;
        store::format::readPod(is, len);
        store::format::readPod(is, type);
        store::format::readPod(is, checksum);
        if (at + kRecordHeaderBytes + len > file_size) {
            // Torn mid-payload: the expected SIGKILL shape on the
            // active segment, corruption anywhere else.
            if (is_last)
                out.tornTail = true;
            else
                out.errors.push_back(path.filename().string() +
                                     ": truncated record");
            return true;
        }
        std::string payload(len, '\0');
        is.read(payload.data(), len);
        if (!is) {
            if (is_last)
                out.tornTail = true;
            else
                out.errors.push_back(path.filename().string() +
                                     ": short read");
            return true;
        }
        at += kRecordHeaderBytes + len;
        if (payloadChecksum(payload) != checksum) {
            const bool final_record = at + kRecordHeaderBytes > file_size;
            if (is_last && final_record) {
                out.tornTail = true; // Half-flushed last record.
                return true;
            }
            out.errors.push_back(path.filename().string() +
                                 ": record checksum mismatch");
            return true;
        }
        Event ev;
        if (decodeEvent(type, payload.data(), payload.size(), ev))
            out.events.push_back(std::move(ev));
        // Undecodable-but-checksummed records are skipped: a newer
        // writer's event types must not break an older reader.
    }
    if (at != file_size) {
        if (is_last)
            out.tornTail = true; // Partial record header.
        else
            out.errors.push_back(path.filename().string() +
                                 ": trailing bytes");
    }
    return true;
}

} // anonymous namespace

bool
readDir(const std::string &dir, ReadResult &out)
{
    std::error_code ec;
    std::vector<std::tuple<u64, bool, fs::path>> segments;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        u64 seq = 0;
        bool is_tmp = false;
        if (parseSegmentName(entry.path().filename().string(), seq,
                             is_tmp))
            segments.emplace_back(seq, is_tmp, entry.path());
    }
    if (ec || segments.empty())
        return false;
    // Sequence order; a sealed segment sorts before a same-sequence
    // active one (cannot normally coexist).
    std::sort(segments.begin(), segments.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(std::get<0>(a), std::get<1>(a)) <
                         std::tie(std::get<0>(b), std::get<1>(b));
              });
    for (size_t i = 0; i < segments.size(); ++i) {
        const bool is_last = i + 1 == segments.size();
        if (readSegment(std::get<2>(segments[i]), is_last, out))
            ++out.segments;
    }
    return out.segments > 0;
}

} // namespace flight

} // namespace interf::telemetry
