/**
 * @file
 * Campaign telemetry: enablement, thread identity, output plumbing.
 *
 * The telemetry layer (metrics.hh registry, span.hh phase spans,
 * manifest.hh run manifests) makes every campaign auditable: what ran,
 * where the wall time went, what came from the cache, what the
 * verifiers said. Two invariants govern all of it:
 *
 *  1. **Determinism.** Telemetry observes; it never participates.
 *     Enabling it must not change a single sample byte, at any worker
 *     count — tests/test_telemetry.cc proves this.
 *  2. **Zero cost when off.** Every recording call is gated on one
 *     relaxed atomic load (enabled()); the hot-path counters in the
 *     replay kernel and thread pool are additionally compile-time
 *     guarded (INTERF_TELEMETRY_HOTPATH, a CMake knob) so a build can
 *     strip them entirely.
 *
 * Enablement: off by default. `INTERF_TELEMETRY=1` in the environment
 * turns it on; `--telemetry-out DIR` on the benches calls enable() and
 * directs the trace/manifest files to DIR; `INTERF_TELEMETRY=0` is a
 * hard off that wins over enable() — the escape hatch when comparing
 * against an instrumented run.
 */

#ifndef INTERF_TELEMETRY_TELEMETRY_HH
#define INTERF_TELEMETRY_TELEMETRY_HH

#include <atomic>
#include <string>
#include <vector>

#include "util/types.hh"

/**
 * Compile-time guard for hot-path counters (replay kernel, thread
 * pool). Configure with -DINTERF_TELEMETRY_HOTPATH=OFF to compile them
 * out entirely; everything else in the telemetry layer stays available.
 */
#ifndef INTERF_TELEMETRY_HOTPATH
#define INTERF_TELEMETRY_HOTPATH 1
#endif

namespace interf::telemetry
{

namespace detail
{
extern std::atomic<bool> g_enabled;
/** Test hook: abort() between tmp write and rename (crash testing). */
extern std::atomic<bool> g_crashAfterTmpWrite;
} // namespace detail

/** Is telemetry recording? One relaxed load: safe on any hot path. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Turn recording on (unless the INTERF_TELEMETRY=0 hard-off is set, in
 * which case this is a no-op and a one-time warning is printed).
 */
void enable();

/** Turn recording off (tests; comparing instrumented vs not). */
void disable();

/**
 * Directory campaign manifests (and bench trace exports) are written
 * to; empty means "only next to the store, if any". setOutputDir
 * creates the directory and implies enable().
 */
void setOutputDir(const std::string &dir);
std::string outputDir();

/**
 * Name the calling thread for trace export (Perfetto thread tracks).
 * Cheap (one mutex acquisition); call once per thread. Unnamed threads
 * export as "thread-<tid>".
 */
void setCurrentThreadName(const std::string &name);

/** Small dense id of the calling thread (assigned on first use). */
u32 currentTid();

/** Snapshot of tid -> name for every thread seen so far. */
std::vector<std::pair<u32, std::string>> threadNames();

/** Nanoseconds since the process-wide telemetry epoch (steady clock). */
u64 nowNs();

/** Nanoseconds of CPU time consumed by the calling thread. */
u64 threadCpuNs();

/**
 * Write @p content to @p path atomically: temp sibling, flush, rename.
 * A reader (or a crash) never observes a half-written file. fatal() on
 * I/O errors.
 */
void writeFileAtomic(const std::string &path, const std::string &content);

/** @{ Counts of warn()/inform() messages captured since enable(), and
 *  the most recent warning texts (newest last, bounded) — the log
 *  sink's view, embedded into run manifests. */
struct LogCaptureSnapshot
{
    u64 warns = 0;
    u64 informs = 0;
    std::vector<std::string> recentWarnings;
};
LogCaptureSnapshot logCapture();
/** @} */

/** Reset all telemetry state (tests): metrics, spans, log capture. */
void resetForTest();

} // namespace interf::telemetry

#endif // INTERF_TELEMETRY_TELEMETRY_HH
