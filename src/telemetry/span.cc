#include "telemetry/span.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "util/json.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace
{

constexpr size_t kRingCapacity = 1 << 16;

struct Agg
{
    u64 count = 0;
    u64 wallNs = 0;
    u64 threadNs = 0;
};

/**
 * The global span sink: a bounded ring for export plus monotonic
 * per-name aggregates. One mutex guards both — spans end at phase/
 * batch/layout granularity, so an uncontended lock per span is noise
 * next to the work the span measures.
 */
struct SpanSink
{
    std::mutex mutex;
    std::vector<SpanRecord> ring;
    size_t next = 0;    ///< Ring cursor once full.
    u64 dropped = 0;    ///< Spans that overwrote an older record.
    std::map<std::string, Agg> aggregates;

    void push(const SpanRecord &rec)
    {
        Agg &agg = aggregates[rec.name];
        agg.count += 1;
        agg.wallNs += rec.wallNs;
        agg.threadNs += rec.threadNs;
        if (ring.size() < kRingCapacity) {
            ring.push_back(rec);
            return;
        }
        ring[next] = rec;
        next = (next + 1) % kRingCapacity;
        ++dropped;
    }
};

SpanSink &
sink()
{
    static SpanSink *s = new SpanSink();
    return *s;
}

} // anonymous namespace

ScopedSpan::ScopedSpan(const char *name) : name_(name)
{
    if (!enabled())
        return;
    active_ = true;
    startNs_ = nowNs();
    threadStartNs_ = threadCpuNs();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    SpanRecord rec;
    rec.name = name_;
    rec.tid = currentTid();
    rec.startNs = startNs_;
    rec.wallNs = nowNs() - startNs_;
    rec.threadNs = threadCpuNs() - threadStartNs_;
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.push(rec);
}

std::vector<PhaseStat>
phaseStats()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<PhaseStat> out;
    out.reserve(s.aggregates.size());
    for (const auto &[name, agg] : s.aggregates)
        out.push_back({name, agg.count, agg.wallNs / 1e6,
                       agg.threadNs / 1e6});
    return out; // std::map iteration: already name-sorted.
}

std::vector<PhaseStat>
phaseStatsSince(const std::vector<PhaseStat> &base)
{
    std::map<std::string, PhaseStat> baseline;
    for (const auto &p : base)
        baseline.emplace(p.name, p);
    std::vector<PhaseStat> out;
    for (const auto &now : phaseStats()) {
        PhaseStat delta = now;
        auto it = baseline.find(now.name);
        if (it != baseline.end()) {
            delta.count -= it->second.count;
            delta.wallMs -= it->second.wallMs;
            delta.threadMs -= it->second.threadMs;
        }
        if (delta.count > 0)
            out.push_back(std::move(delta));
    }
    return out;
}

u64
droppedSpans()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.dropped;
}

void
clearSpans()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.ring.clear();
    s.next = 0;
    s.dropped = 0;
    s.aggregates.clear();
}

void
writeChromeTrace(const std::string &path)
{
    // Copy the ring under the lock, format outside it.
    std::vector<SpanRecord> records;
    u64 dropped = 0;
    {
        SpanSink &s = sink();
        std::lock_guard<std::mutex> lock(s.mutex);
        records = s.ring;
        dropped = s.dropped;
    }
    std::sort(records.begin(), records.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.startNs < b.startNs;
              });

    Json events = Json::array();
    for (const auto &[tid, name] : threadNames()) {
        Json meta = Json::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", tid);
        Json args = Json::object();
        args.set("name", name);
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    {
        Json meta = Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", 0);
        Json args = Json::object();
        args.set("name", "interferometry");
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    for (const auto &rec : records) {
        Json ev = Json::object();
        ev.set("name", rec.name);
        ev.set("ph", "X");
        ev.set("pid", 1);
        ev.set("tid", rec.tid);
        ev.set("ts", rec.startNs / 1000);    // microseconds
        ev.set("dur", rec.wallNs / 1000);
        Json args = Json::object();
        args.set("thread_us", rec.threadNs / 1000);
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }

    Json doc = Json::object();
    doc.set("displayTimeUnit", "ms");
    Json other = Json::object();
    other.set("schema", "interf-trace-1");
    other.set("dropped_spans", dropped);
    doc.set("otherData", std::move(other));
    doc.set("traceEvents", std::move(events));
    writeFileAtomic(path, doc.dump(1) + "\n");
}

} // namespace interf::telemetry
