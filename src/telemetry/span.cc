#include "telemetry/span.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <unordered_map>

#include "telemetry/metrics.hh"
#include "telemetry/recorder.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace interf::telemetry
{

namespace
{

constexpr size_t kRingCapacity = 1 << 16;

struct Agg
{
    u64 count = 0;
    u64 wallNs = 0;
    u64 threadNs = 0;
};

/**
 * The global span sink: a bounded ring for export plus monotonic
 * per-name aggregates. One mutex guards both — spans end at phase/
 * batch/layout granularity, so an uncontended lock per span is noise
 * next to the work the span measures.
 */
struct SpanSink
{
    std::mutex mutex;
    std::vector<SpanRecord> ring;
    size_t next = 0;    ///< Ring cursor once full.
    u64 dropped = 0;    ///< Spans that overwrote an older record.
    std::map<std::string, Agg> aggregates;
    /** Overwritten records by *their* name — which phases lost raw
     *  records to overflow (aggregates above stay exact regardless). */
    std::map<std::string, u64> droppedByName;

    void push(const SpanRecord &rec)
    {
        Agg &agg = aggregates[rec.name];
        agg.count += 1;
        agg.wallNs += rec.wallNs;
        agg.threadNs += rec.threadNs;
        if (ring.size() < kRingCapacity) {
            ring.push_back(rec);
            return;
        }
        droppedByName[ring[next].name] += 1;
        static const Counter drop_counter =
            Registry::global().counter("telemetry.spans_dropped");
        drop_counter.add(1);
        ring[next] = rec;
        next = (next + 1) % kRingCapacity;
        ++dropped;
    }
};

SpanSink &
sink()
{
    static SpanSink *s = new SpanSink();
    return *s;
}

} // anonymous namespace

ScopedSpan::ScopedSpan(const char *name, bool announce) : name_(name)
{
    if (!enabled())
        return;
    active_ = true;
    spanId_ = nextSpanId();
    // Nesting: while this span is open it is the parent of any span
    // opened (or any work enqueued — see captureContext) on this thread.
    u64 &active_span = detail::threadActiveSpanId();
    savedActiveSpanId_ = active_span;
    active_span = spanId_;
    startNs_ = nowNs();
    threadStartNs_ = threadCpuNs();
    // Phase spans announce their open so the flight log can resolve
    // them as parents even if the process dies before they close.
    if (announce && recorder::active()) {
        SpanRecord rec;
        rec.name = name_;
        rec.tid = currentTid();
        rec.startNs = startNs_;
        rec.spanId = spanId_;
        rec.ctx = detail::threadContext();
        rec.parentSpanId = savedActiveSpanId_ != 0 ? savedActiveSpanId_
                                                   : rec.ctx.parentSpanId;
        recorder::recordSpanOpen(rec);
    }
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    SpanRecord rec;
    rec.name = name_;
    rec.tid = currentTid();
    rec.startNs = startNs_;
    rec.wallNs = nowNs() - startNs_;
    rec.threadNs = threadCpuNs() - threadStartNs_;
    rec.spanId = spanId_;
    rec.ctx = detail::threadContext();
    // Parent: the enclosing span on this thread, or — for a worker's
    // outermost span — the span that enqueued the task (carried in by
    // the restored TraceContext).
    rec.parentSpanId = savedActiveSpanId_ != 0 ? savedActiveSpanId_
                                               : rec.ctx.parentSpanId;
    detail::threadActiveSpanId() = savedActiveSpanId_;
    {
        SpanSink &s = sink();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.push(rec);
    }
    recorder::recordSpan(rec);
}

std::vector<PhaseStat>
phaseStats()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<PhaseStat> out;
    out.reserve(s.aggregates.size());
    for (const auto &[name, agg] : s.aggregates)
        out.push_back({name, agg.count, agg.wallNs / 1e6,
                       agg.threadNs / 1e6});
    return out; // std::map iteration: already name-sorted.
}

std::vector<PhaseStat>
phaseStatsSince(const std::vector<PhaseStat> &base)
{
    std::map<std::string, PhaseStat> baseline;
    for (const auto &p : base)
        baseline.emplace(p.name, p);
    std::vector<PhaseStat> out;
    for (const auto &now : phaseStats()) {
        PhaseStat delta = now;
        auto it = baseline.find(now.name);
        if (it != baseline.end()) {
            delta.count -= it->second.count;
            delta.wallMs -= it->second.wallMs;
            delta.threadMs -= it->second.threadMs;
        }
        if (delta.count > 0)
            out.push_back(std::move(delta));
    }
    return out;
}

u64
droppedSpans()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.dropped;
}

std::vector<std::pair<std::string, u64>>
droppedSpansByName()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return {s.droppedByName.begin(), s.droppedByName.end()};
}

void
clearSpans()
{
    SpanSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.ring.clear();
    s.next = 0;
    s.dropped = 0;
    s.aggregates.clear();
    s.droppedByName.clear();
}

void
writeChromeTrace(const std::string &path)
{
    // Copy the ring under the lock, format outside it.
    std::vector<SpanRecord> records;
    u64 dropped = 0;
    {
        SpanSink &s = sink();
        std::lock_guard<std::mutex> lock(s.mutex);
        records = s.ring;
        dropped = s.dropped;
    }
    std::sort(records.begin(), records.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.startNs < b.startNs;
              });

    Json events = Json::array();
    for (const auto &[tid, name] : threadNames()) {
        Json meta = Json::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", tid);
        Json args = Json::object();
        args.set("name", name);
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    {
        Json meta = Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", 0);
        Json args = Json::object();
        args.set("name", "interferometry");
        meta.set("args", std::move(args));
        events.push(std::move(meta));
    }
    std::unordered_map<u64, const SpanRecord *> by_id;
    by_id.reserve(records.size());
    for (const auto &rec : records)
        if (rec.spanId != 0)
            by_id.emplace(rec.spanId, &rec);
    for (const auto &rec : records) {
        Json ev = Json::object();
        ev.set("name", rec.name);
        ev.set("ph", "X");
        ev.set("pid", 1);
        ev.set("tid", rec.tid);
        ev.set("ts", rec.startNs / 1000);    // microseconds
        ev.set("dur", rec.wallNs / 1000);
        Json args = Json::object();
        args.set("thread_us", rec.threadNs / 1000);
        if (rec.spanId != 0) {
            args.set("span_id", rec.spanId);
            if (rec.parentSpanId != 0)
                args.set("parent_span_id", rec.parentSpanId);
            if (rec.ctx.campaignId != 0) {
                args.set("campaign_id", rec.ctx.campaignId);
                args.set("batch_index", rec.ctx.batchIndex);
            }
            if (rec.ctx.candidateDigest != 0)
                args.set("candidate_digest", rec.ctx.candidateDigest);
        }
        ev.set("args", std::move(args));
        events.push(std::move(ev));
        // A parent on another thread means this span's work was
        // enqueued there: emit a flow arrow from the parent slice to
        // this one. Same-thread parenthood is already visible as slice
        // nesting, so no arrow. The flow id is the child's span id
        // (unique per arrow, as Perfetto requires).
        auto parent = rec.parentSpanId != 0
                          ? by_id.find(rec.parentSpanId)
                          : by_id.end();
        if (parent == by_id.end() || parent->second->tid == rec.tid)
            continue;
        Json flow_s = Json::object();
        flow_s.set("name", "enqueue");
        flow_s.set("cat", "flow");
        flow_s.set("ph", "s");
        flow_s.set("id", rec.spanId);
        flow_s.set("pid", 1);
        flow_s.set("tid", parent->second->tid);
        flow_s.set("ts", parent->second->startNs / 1000);
        events.push(std::move(flow_s));
        Json flow_f = Json::object();
        flow_f.set("name", "enqueue");
        flow_f.set("cat", "flow");
        flow_f.set("ph", "f");
        flow_f.set("bp", "e");
        flow_f.set("id", rec.spanId);
        flow_f.set("pid", 1);
        flow_f.set("tid", rec.tid);
        flow_f.set("ts", rec.startNs / 1000);
        events.push(std::move(flow_f));
    }
    if (dropped > 0) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("span ring overflowed: %llu spans dropped; the trace "
                 "at '%s' is partial (aggregates stay exact)",
                 static_cast<unsigned long long>(dropped), path.c_str());
    }

    Json doc = Json::object();
    doc.set("displayTimeUnit", "ms");
    Json other = Json::object();
    other.set("schema", "interf-trace-1");
    other.set("dropped_spans", dropped);
    doc.set("otherData", std::move(other));
    doc.set("traceEvents", std::move(events));
    writeFileAtomic(path, doc.dump(1) + "\n");
}

} // namespace interf::telemetry
