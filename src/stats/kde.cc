#include "stats/kde.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace interf::stats
{

double
ViolinData::mode() const
{
    INTERF_ASSERT(!grid.empty());
    size_t best = 0;
    for (size_t i = 1; i < density.size(); ++i)
        if (density[i] > density[best])
            best = i;
    return grid[best];
}

double
silvermanBandwidth(const std::vector<double> &xs)
{
    INTERF_ASSERT(xs.size() >= 2);
    double sd = sampleStdDev(xs);
    double iqr = percentile(xs, 75.0) - percentile(xs, 25.0);
    double spread = sd;
    if (iqr > 0.0)
        spread = std::min(sd, iqr / 1.349);
    if (spread <= 0.0)
        spread = std::max(sd, 1e-9);
    double n = static_cast<double>(xs.size());
    return 0.9 * spread * std::pow(n, -0.2);
}

ViolinData
kernelDensity(const std::vector<double> &xs, size_t grid_points, double pad)
{
    INTERF_ASSERT(xs.size() >= 2);
    INTERF_ASSERT(grid_points >= 2);

    double lo = minValue(xs);
    double hi = maxValue(xs);
    double range = hi - lo;
    if (range <= 0.0)
        range = std::max(std::fabs(lo), 1.0) * 1e-6;
    lo -= pad * range;
    hi += pad * range;

    double h = silvermanBandwidth(xs);
    if (h <= 0.0)
        h = range / static_cast<double>(grid_points);

    ViolinData out;
    out.grid.resize(grid_points);
    out.density.resize(grid_points);
    double step = (hi - lo) / static_cast<double>(grid_points - 1);
    double norm = 1.0 /
        (static_cast<double>(xs.size()) * h * std::sqrt(2.0 * M_PI));
    for (size_t i = 0; i < grid_points; ++i) {
        double g = lo + step * static_cast<double>(i);
        double acc = 0.0;
        for (double x : xs) {
            double z = (g - x) / h;
            acc += std::exp(-0.5 * z * z);
        }
        out.grid[i] = g;
        out.density[i] = acc * norm;
    }
    return out;
}

} // namespace interf::stats
