/**
 * @file
 * Probability distributions needed by the regression machinery.
 *
 * The paper's statistics (Section 5.8) rely on Student's t distribution
 * (correlation t-tests, confidence/prediction intervals) and the F
 * distribution (significance of the combined multi-linear model). Both
 * reduce to the regularized incomplete beta function, implemented here
 * with the standard continued-fraction expansion (Lentz's method).
 */

#ifndef INTERF_STATS_DISTRIBUTIONS_HH
#define INTERF_STATS_DISTRIBUTIONS_HH

namespace interf::stats
{

/**
 * Regularized incomplete beta function I_x(a, b) for a, b > 0 and
 * x in [0, 1].
 */
double incompleteBeta(double a, double b, double x);

/** Standard normal cumulative distribution function. */
double normalCdf(double z);

/**
 * Standard normal quantile function (inverse CDF) for p in (0, 1).
 * Uses the Acklam rational approximation refined with one Halley step.
 */
double normalQuantile(double p);

/** Student's t CDF with nu degrees of freedom. */
double studentTCdf(double t, double nu);

/**
 * Student's t quantile for p in (0, 1) and nu > 0 degrees of freedom.
 * t such that P(T <= t) = p.
 */
double studentTQuantile(double p, double nu);

/**
 * Two-sided p-value for an observed t statistic with nu degrees of
 * freedom, i.e. P(|T| >= |t|).
 */
double studentTTwoSidedP(double t, double nu);

/** F distribution CDF with (d1, d2) degrees of freedom. */
double fCdf(double f, double d1, double d2);

/** Upper-tail p-value P(F >= f) with (d1, d2) degrees of freedom. */
double fUpperTailP(double f, double d1, double d2);

} // namespace interf::stats

#endif // INTERF_STATS_DISTRIBUTIONS_HH
