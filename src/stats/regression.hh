/**
 * @file
 * Least-squares regression with the inference machinery the paper uses.
 *
 * Simple linear regression (CPI = m * MPKI + b) produces the slope,
 * intercept, Pearson r, r^2, the t statistic for the slope, and 95%
 * confidence and prediction intervals at arbitrary x — exactly the
 * quantities behind Figures 2/3/5, Table 1, and the Section 1.4 claims.
 *
 * Multiple linear regression (CPI ~ MPKI + L1I + L2) produces the
 * combined model of Section 6.1 with its F statistic for Section 6.2's
 * significance test.
 */

#ifndef INTERF_STATS_REGRESSION_HH
#define INTERF_STATS_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace interf::stats
{

/** A two-sided interval [lo, hi]. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    double width() const { return hi - lo; }
    double center() const { return 0.5 * (lo + hi); }
    bool contains(double x) const { return x >= lo && x <= hi; }
};

/**
 * Fitted simple linear regression y = slope * x + intercept, with all the
 * sufficient statistics needed for interval estimation.
 */
class LinearFit
{
  public:
    /**
     * Fit by ordinary least squares.
     *
     * @param xs Independent variable (e.g. MPKI), at least 3 points.
     * @param ys Dependent variable (e.g. CPI), same length as xs.
     */
    LinearFit(const std::vector<double> &xs, const std::vector<double> &ys);

    /** @{ Fitted coefficients. */
    double slope() const { return slope_; }
    double intercept() const { return intercept_; }
    /** @} */

    /** Pearson correlation coefficient of the data. */
    double r() const { return r_; }

    /** Coefficient of determination (fraction of variance explained). */
    double r2() const { return r_ * r_; }

    /** Number of observations. */
    size_t n() const { return n_; }

    /** Residual standard error s = sqrt(SSE / (n - 2)). */
    double residualStdError() const { return s_; }

    /** Standard error of the slope estimate. */
    double slopeStdError() const;

    /** Standard error of the intercept estimate. */
    double interceptStdError() const;

    /** t statistic for H0: slope == 0. */
    double slopeT() const;

    /** Point prediction at x. */
    double predict(double x) const { return slope_ * x + intercept_; }

    /**
     * Confidence interval for the *mean response* at x: the band that
     * contains the true regression line with the given confidence.
     */
    Interval confidenceInterval(double x, double confidence = 0.95) const;

    /**
     * Prediction interval at x: the (wider) band that contains a future
     * *observation* at x with the given confidence.
     */
    Interval predictionInterval(double x, double confidence = 0.95) const;

    /** Mean of the x sample (the regression pivot). */
    double xMean() const { return xMean_; }

    /** Sum of squared x deviations, Sxx. */
    double sxx() const { return sxx_; }

  private:
    double halfWidth(double x, double confidence, bool prediction) const;

    size_t n_;
    double slope_;
    double intercept_;
    double r_;
    double s_;     // residual standard error
    double xMean_;
    double sxx_;
};

/**
 * Fitted multiple linear regression y = b0 + b1*x1 + ... + bk*xk,
 * solved via the normal equations with Cholesky decomposition (k is
 * small here: at most three predictors).
 */
class MultiFit
{
  public:
    /**
     * @param columns One vector per predictor, all the same length.
     * @param ys Dependent variable; length must match the columns.
     */
    MultiFit(const std::vector<std::vector<double>> &columns,
             const std::vector<double> &ys);

    /** Coefficients; index 0 is the intercept, then one per predictor. */
    const std::vector<double> &coefficients() const { return beta_; }

    /** Point prediction for one observation (xs.size() == k). */
    double predict(const std::vector<double> &xs) const;

    /** Coefficient of determination. */
    double r2() const { return r2_; }

    /** Adjusted r^2 (penalizes extra predictors). */
    double adjustedR2() const;

    /** Number of observations. */
    size_t n() const { return n_; }

    /** Number of predictors (excluding the intercept). */
    size_t k() const { return beta_.size() - 1; }

    /** F statistic for H0: all slope coefficients are zero. */
    double fStatistic() const;

    /** Upper-tail p-value of the F statistic. */
    double fPValue() const;

  private:
    std::vector<double> beta_;
    double r2_;
    size_t n_;
};

} // namespace interf::stats

#endif // INTERF_STATS_REGRESSION_HH
