#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace interf::stats
{

double
mean(const std::vector<double> &xs)
{
    INTERF_ASSERT(!xs.empty());
    double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
    return sum / static_cast<double>(xs.size());
}

double
sampleVariance(const std::vector<double> &xs)
{
    INTERF_ASSERT(xs.size() >= 2);
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) {
        double d = x - m;
        ss += d * d;
    }
    return ss / static_cast<double>(xs.size() - 1);
}

double
sampleStdDev(const std::vector<double> &xs)
{
    return std::sqrt(sampleVariance(xs));
}

double
median(const std::vector<double> &xs)
{
    INTERF_ASSERT(!xs.empty());
    std::vector<double> sorted(xs);
    std::sort(sorted.begin(), sorted.end());
    size_t n = sorted.size();
    if (n % 2 == 1)
        return sorted[n / 2];
    return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

size_t
medianIndex(const std::vector<double> &xs)
{
    INTERF_ASSERT(!xs.empty());
    std::vector<size_t> order(xs.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return xs[a] < xs[b]; });
    return order[(xs.size() - 1) / 2];
}

double
percentile(const std::vector<double> &xs, double p)
{
    INTERF_ASSERT(!xs.empty());
    INTERF_ASSERT(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(xs);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(rank));
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
minValue(const std::vector<double> &xs)
{
    INTERF_ASSERT(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(const std::vector<double> &xs)
{
    INTERF_ASSERT(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    INTERF_ASSERT(xs.size() == ys.size());
    INTERF_ASSERT(xs.size() >= 2);
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0; // a constant variable has no linear correlation
    return sxy / std::sqrt(sxx * syy);
}

Summary
summarize(const std::vector<double> &xs)
{
    INTERF_ASSERT(!xs.empty());
    Summary s;
    s.n = xs.size();
    s.mean = mean(xs);
    s.stdDev = xs.size() >= 2 ? sampleStdDev(xs) : 0.0;
    s.min = minValue(xs);
    s.max = maxValue(xs);
    s.median = median(xs);
    return s;
}

} // namespace interf::stats
