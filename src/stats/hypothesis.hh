/**
 * @file
 * Hypothesis tests used to gate the regression models.
 *
 * Section 4.6 of the paper: "For each type of prediction we would like to
 * make for a given benchmark, we first determine whether there is
 * significant correlation between the dependent variable and independent
 * variables. We use Student's t-test with the null hypothesis 'there is
 * no correlation'." The combined multi-linear model uses the F-test
 * instead (Section 6.2).
 */

#ifndef INTERF_STATS_HYPOTHESIS_HH
#define INTERF_STATS_HYPOTHESIS_HH

#include <cstddef>
#include <vector>

namespace interf::stats
{

/** Result of a significance test. */
struct TestResult
{
    double statistic = 0.0; ///< t or F statistic.
    double pValue = 1.0;    ///< Two-sided (t) or upper-tail (F) p-value.

    /** True when the null hypothesis is rejected at level alpha. */
    bool significantAt(double alpha = 0.05) const { return pValue <= alpha; }
};

/**
 * Student's t-test for H0: "there is no correlation" given a sample
 * Pearson r over n observations. Uses t = r * sqrt((n-2) / (1-r^2)) with
 * n-2 degrees of freedom.
 */
TestResult correlationTTest(double r, size_t n);

/** Convenience overload computing r from the paired samples first. */
TestResult correlationTTest(const std::vector<double> &xs,
                            const std::vector<double> &ys);

/**
 * F-test for H0: "all slope coefficients are zero" in a multiple
 * regression with k predictors, n observations and coefficient of
 * determination r2.
 */
TestResult regressionFTest(double r2, size_t n, size_t k);

} // namespace interf::stats

#endif // INTERF_STATS_HYPOTHESIS_HH
