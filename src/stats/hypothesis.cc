#include "stats/hypothesis.hh"

#include <cmath>
#include <limits>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "util/logging.hh"

namespace interf::stats
{

TestResult
correlationTTest(double r, size_t n)
{
    INTERF_ASSERT(n >= 3);
    TestResult res;
    double r2 = r * r;
    if (r2 >= 1.0) {
        res.statistic = std::numeric_limits<double>::infinity();
        res.pValue = 0.0;
        return res;
    }
    double nu = static_cast<double>(n - 2);
    res.statistic = r * std::sqrt(nu / (1.0 - r2));
    res.pValue = studentTTwoSidedP(res.statistic, nu);
    return res;
}

TestResult
correlationTTest(const std::vector<double> &xs, const std::vector<double> &ys)
{
    return correlationTTest(pearson(xs, ys), xs.size());
}

TestResult
regressionFTest(double r2, size_t n, size_t k)
{
    INTERF_ASSERT(k >= 1);
    INTERF_ASSERT(n >= k + 2);
    TestResult res;
    if (r2 >= 1.0) {
        res.statistic = std::numeric_limits<double>::infinity();
        res.pValue = 0.0;
        return res;
    }
    if (r2 < 0.0)
        r2 = 0.0;
    double kk = static_cast<double>(k);
    double dof2 = static_cast<double>(n - k - 1);
    res.statistic = (r2 / kk) / ((1.0 - r2) / dof2);
    res.pValue = fUpperTailP(res.statistic, kk, dof2);
    return res;
}

} // namespace interf::stats
