#include "stats/regression.hh"

#include <cmath>
#include <limits>

#include "stats/descriptive.hh"
#include "stats/distributions.hh"
#include "util/logging.hh"

namespace interf::stats
{

LinearFit::LinearFit(const std::vector<double> &xs,
                     const std::vector<double> &ys)
{
    INTERF_ASSERT(xs.size() == ys.size());
    INTERF_ASSERT(xs.size() >= 3);
    n_ = xs.size();

    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n_; ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    xMean_ = mx;
    sxx_ = sxx;
    if (sxx == 0.0) {
        // Degenerate: x is constant. Model the mean and report zero
        // correlation; slope inference is meaningless and slopeT() will
        // reflect that with a zero statistic.
        slope_ = 0.0;
        intercept_ = my;
        r_ = 0.0;
        double sse = syy;
        s_ = n_ > 2 ? std::sqrt(sse / static_cast<double>(n_ - 2)) : 0.0;
        return;
    }
    slope_ = sxy / sxx;
    intercept_ = my - slope_ * mx;
    r_ = (syy == 0.0) ? 0.0 : sxy / std::sqrt(sxx * syy);
    double sse = syy - slope_ * sxy;
    if (sse < 0.0)
        sse = 0.0; // numerical guard
    s_ = std::sqrt(sse / static_cast<double>(n_ - 2));
}

double
LinearFit::slopeStdError() const
{
    if (sxx_ == 0.0)
        return 0.0;
    return s_ / std::sqrt(sxx_);
}

double
LinearFit::interceptStdError() const
{
    if (sxx_ == 0.0)
        return s_ / std::sqrt(static_cast<double>(n_));
    double n = static_cast<double>(n_);
    return s_ * std::sqrt(1.0 / n + xMean_ * xMean_ / sxx_);
}

double
LinearFit::slopeT() const
{
    double se = slopeStdError();
    if (se == 0.0)
        return 0.0;
    return slope_ / se;
}

double
LinearFit::halfWidth(double x, double confidence, bool prediction) const
{
    INTERF_ASSERT(confidence > 0.0 && confidence < 1.0);
    double nu = static_cast<double>(n_ - 2);
    double t = studentTQuantile(0.5 + confidence / 2.0, nu);
    double n = static_cast<double>(n_);
    double lever = (sxx_ == 0.0)
                       ? 1.0 / n
                       : 1.0 / n + (x - xMean_) * (x - xMean_) / sxx_;
    double var_factor = prediction ? 1.0 + lever : lever;
    return t * s_ * std::sqrt(var_factor);
}

Interval
LinearFit::confidenceInterval(double x, double confidence) const
{
    double y = predict(x);
    double h = halfWidth(x, confidence, false);
    return {y - h, y + h};
}

Interval
LinearFit::predictionInterval(double x, double confidence) const
{
    double y = predict(x);
    double h = halfWidth(x, confidence, true);
    return {y - h, y + h};
}

namespace
{

/**
 * Solve the symmetric positive-definite system A x = b in place with
 * Cholesky decomposition. Dimensions are tiny (<= 4), so simplicity wins
 * over numerics-library dependencies. Returns false when A is not
 * positive definite (collinear predictors).
 */
bool
choleskySolve(std::vector<std::vector<double>> &a, std::vector<double> &b)
{
    size_t n = a.size();
    // Decompose A = L L^T, storing L in the lower triangle.
    for (size_t j = 0; j < n; ++j) {
        double d = a[j][j];
        for (size_t k = 0; k < j; ++k)
            d -= a[j][k] * a[j][k];
        if (d <= 0.0)
            return false;
        a[j][j] = std::sqrt(d);
        for (size_t i = j + 1; i < n; ++i) {
            double v = a[i][j];
            for (size_t k = 0; k < j; ++k)
                v -= a[i][k] * a[j][k];
            a[i][j] = v / a[j][j];
        }
    }
    // Forward substitution: L y = b.
    for (size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (size_t k = 0; k < i; ++k)
            v -= a[i][k] * b[k];
        b[i] = v / a[i][i];
    }
    // Back substitution: L^T x = y.
    for (size_t ii = n; ii-- > 0;) {
        double v = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            v -= a[k][ii] * b[k];
        b[ii] = v / a[ii][ii];
    }
    return true;
}

} // anonymous namespace

MultiFit::MultiFit(const std::vector<std::vector<double>> &columns,
                   const std::vector<double> &ys)
{
    INTERF_ASSERT(!columns.empty());
    size_t n = ys.size();
    size_t k = columns.size();
    for (const auto &col : columns)
        INTERF_ASSERT(col.size() == n);
    INTERF_ASSERT(n >= k + 2);
    n_ = n;

    // Build the (k+1)x(k+1) normal-equation matrix X^T X and X^T y with
    // an implicit leading column of ones.
    size_t dim = k + 1;
    std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
    std::vector<double> xty(dim, 0.0);
    auto col_value = [&](size_t j, size_t row) {
        return j == 0 ? 1.0 : columns[j - 1][row];
    };
    for (size_t row = 0; row < n; ++row) {
        for (size_t i = 0; i < dim; ++i) {
            double xi = col_value(i, row);
            xty[i] += xi * ys[row];
            for (size_t j = 0; j <= i; ++j)
                xtx[i][j] += xi * col_value(j, row);
        }
    }
    for (size_t i = 0; i < dim; ++i)
        for (size_t j = i + 1; j < dim; ++j)
            xtx[i][j] = xtx[j][i];

    // Tiny ridge term keeps near-collinear predictor sets solvable; its
    // magnitude is far below measurement noise.
    std::vector<double> beta = xty;
    auto a = xtx;
    for (size_t i = 1; i < dim; ++i)
        a[i][i] += 1e-12 * (xtx[i][i] > 0 ? xtx[i][i] : 1.0);
    if (!choleskySolve(a, beta)) {
        warn("multiple regression: singular normal equations; "
             "falling back to intercept-only model");
        beta.assign(dim, 0.0);
        beta[0] = mean(ys);
    }
    beta_ = beta;

    // r^2 from residuals.
    double my = mean(ys);
    double sse = 0.0, sst = 0.0;
    for (size_t row = 0; row < n; ++row) {
        double yhat = beta_[0];
        for (size_t j = 0; j < k; ++j)
            yhat += beta_[j + 1] * columns[j][row];
        double res = ys[row] - yhat;
        sse += res * res;
        double dev = ys[row] - my;
        sst += dev * dev;
    }
    r2_ = (sst == 0.0) ? 0.0 : 1.0 - sse / sst;
    if (r2_ < 0.0)
        r2_ = 0.0;
}

double
MultiFit::predict(const std::vector<double> &xs) const
{
    INTERF_ASSERT(xs.size() == k());
    double y = beta_[0];
    for (size_t j = 0; j < xs.size(); ++j)
        y += beta_[j + 1] * xs[j];
    return y;
}

double
MultiFit::adjustedR2() const
{
    double n = static_cast<double>(n_);
    double kk = static_cast<double>(k());
    if (n - kk - 1.0 <= 0.0)
        return r2_;
    return 1.0 - (1.0 - r2_) * (n - 1.0) / (n - kk - 1.0);
}

double
MultiFit::fStatistic() const
{
    double n = static_cast<double>(n_);
    double kk = static_cast<double>(k());
    if (r2_ >= 1.0)
        return std::numeric_limits<double>::infinity();
    return (r2_ / kk) / ((1.0 - r2_) / (n - kk - 1.0));
}

double
MultiFit::fPValue() const
{
    double f = fStatistic();
    if (std::isinf(f))
        return 0.0;
    return fUpperTailP(f, static_cast<double>(k()),
                       static_cast<double>(n_ - k() - 1));
}

} // namespace interf::stats
