/**
 * @file
 * Gaussian kernel density estimation for violin plots.
 *
 * Figure 1 of the paper shows violin plots of percentage CPI variation
 * under code reordering: "the thickness at each CPI value is proportional
 * to the number of CPIs observed in that neighborhood". ViolinData is
 * exactly that thickness profile, evaluated on a regular grid.
 */

#ifndef INTERF_STATS_KDE_HH
#define INTERF_STATS_KDE_HH

#include <cstddef>
#include <vector>

namespace interf::stats
{

/** Density profile of one violin: density[i] estimated at grid[i]. */
struct ViolinData
{
    std::vector<double> grid;
    std::vector<double> density;

    /** Grid value with the highest density (the violin's widest point). */
    double mode() const;
};

/**
 * Gaussian KDE with Silverman's rule-of-thumb bandwidth.
 *
 * @param xs Sample (at least 2 points).
 * @param grid_points Number of evaluation points.
 * @param pad Fraction of the data range added on each side of the grid.
 * @return Density evaluated on the grid; integrates to ~1.
 */
ViolinData kernelDensity(const std::vector<double> &xs,
                         size_t grid_points = 64, double pad = 0.15);

/** Silverman's rule-of-thumb bandwidth for a sample. */
double silvermanBandwidth(const std::vector<double> &xs);

} // namespace interf::stats

#endif // INTERF_STATS_KDE_HH
