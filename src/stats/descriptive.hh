/**
 * @file
 * Descriptive statistics: means, variances, medians, percentiles.
 *
 * These are the building blocks for the paper's measurement protocol
 * (take the run with the median cycle count of five) and for summarizing
 * campaigns (average CPI over 100 reorderings, etc.).
 */

#ifndef INTERF_STATS_DESCRIPTIVE_HH
#define INTERF_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace interf::stats
{

/** Arithmetic mean; panics on an empty input. */
double mean(const std::vector<double> &xs);

/** Unbiased sample variance (divides by n-1); panics when n < 2. */
double sampleVariance(const std::vector<double> &xs);

/** Unbiased sample standard deviation. */
double sampleStdDev(const std::vector<double> &xs);

/** Median (average of the middle two for even n); panics when empty. */
double median(const std::vector<double> &xs);

/**
 * Index of the element holding the median. For even n returns the index
 * of the lower-middle order statistic. This mirrors the measurement
 * protocol: of five runs we keep *the run* whose cycle count is the
 * median, so we need its index, not an interpolated value.
 */
size_t medianIndex(const std::vector<double> &xs);

/**
 * Linear-interpolation percentile, p in [0, 100]; panics when empty.
 */
double percentile(const std::vector<double> &xs, double p);

/** Minimum element; panics when empty. */
double minValue(const std::vector<double> &xs);

/** Maximum element; panics when empty. */
double maxValue(const std::vector<double> &xs);

/** Pearson correlation coefficient r; panics unless sizes match, n >= 2. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Summary bundle for one variable. */
struct Summary
{
    size_t n = 0;
    double mean = 0.0;
    double stdDev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
};

/** Compute the full Summary for a sample; panics when n < 1. */
Summary summarize(const std::vector<double> &xs);

} // namespace interf::stats

#endif // INTERF_STATS_DESCRIPTIVE_HH
