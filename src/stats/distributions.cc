#include "stats/distributions.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace interf::stats
{

namespace
{

/**
 * Continued-fraction evaluation for the incomplete beta function
 * (Numerical-Recipes-style modified Lentz algorithm).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iterations = 300;
    constexpr double epsilon = 3.0e-14;
    constexpr double fpmin = 1.0e-300;

    double qab = a + b;
    double qap = a + 1.0;
    double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iterations; ++m) {
        double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < epsilon)
            return h;
    }
    warn("incomplete beta continued fraction did not converge "
         "(a=%g b=%g x=%g)", a, b, x);
    return h;
}

} // anonymous namespace

double
incompleteBeta(double a, double b, double x)
{
    INTERF_ASSERT(a > 0.0 && b > 0.0);
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                      a * std::log(x) + b * std::log1p(-x);
    double front = std::exp(ln_front);
    // Use the symmetry relation to keep the continued fraction in its
    // fast-converging regime.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    INTERF_ASSERT(p > 0.0 && p < 1.0);

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    constexpr double p_low = 0.02425;
    double x;
    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log1p(-p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step pushes the error near machine epsilon.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double
studentTCdf(double t, double nu)
{
    INTERF_ASSERT(nu > 0.0);
    if (std::isinf(t))
        return t > 0 ? 1.0 : 0.0;
    double x = nu / (nu + t * t);
    double tail = 0.5 * incompleteBeta(nu / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double
studentTQuantile(double p, double nu)
{
    INTERF_ASSERT(p > 0.0 && p < 1.0);
    INTERF_ASSERT(nu > 0.0);
    if (p == 0.5)
        return 0.0;

    // Start from the normal quantile and refine with bisection+Newton on
    // the exact CDF. Robust over all nu, fast enough for our usage.
    double lo = -1e10, hi = 1e10;
    double x = normalQuantile(p);
    if (nu < 30.0) {
        // Heavy tails: widen the initial guess.
        x *= std::sqrt(nu / std::max(nu - 2.0, 0.5));
    }
    for (int iter = 0; iter < 200; ++iter) {
        double cdf = studentTCdf(x, nu);
        double err = cdf - p;
        if (std::fabs(err) < 1e-14)
            break;
        if (err > 0)
            hi = x;
        else
            lo = x;
        // t density at x
        double ln_pdf = std::lgamma((nu + 1.0) / 2.0) -
                        std::lgamma(nu / 2.0) -
                        0.5 * std::log(nu * M_PI) -
                        (nu + 1.0) / 2.0 * std::log1p(x * x / nu);
        double pdf = std::exp(ln_pdf);
        double step = pdf > 0 ? err / pdf : 0.0;
        double next = x - step;
        if (!(next > lo && next < hi))
            next = 0.5 * (lo + hi); // fall back to bisection
        if (next == x)
            break;
        x = next;
    }
    return x;
}

double
studentTTwoSidedP(double t, double nu)
{
    double abs_t = std::fabs(t);
    return 2.0 * (1.0 - studentTCdf(abs_t, nu));
}

double
fCdf(double f, double d1, double d2)
{
    INTERF_ASSERT(d1 > 0.0 && d2 > 0.0);
    if (f <= 0.0)
        return 0.0;
    double x = d1 * f / (d1 * f + d2);
    return incompleteBeta(d1 / 2.0, d2 / 2.0, x);
}

double
fUpperTailP(double f, double d1, double d2)
{
    return 1.0 - fCdf(f, d1, d2);
}

} // namespace interf::stats
