#include "core/runner.hh"

#include "stats/descriptive.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"

namespace interf::core
{

MeasurementRunner::MeasurementRunner(const MachineConfig &machine,
                                     const RunnerConfig &runner)
    : machine_(machine), cfg_(runner)
{
    if (cfg_.runsPerGroup == 0)
        fatal("runsPerGroup must be >= 1");
}

Measurement
MeasurementRunner::measure(const trace::Program &prog,
                           const trace::Trace &trace,
                           const layout::CodeLayout &code,
                           const layout::HeapLayout &heap, u64 noise_seed)
{
    return measure(prog, trace, code, heap, layout::PageMap(),
                   noise_seed);
}

Measurement
MeasurementRunner::measure(const trace::Program &prog,
                           const trace::Trace &trace,
                           const layout::CodeLayout &code,
                           const layout::HeapLayout &heap,
                           const layout::PageMap &pages, u64 noise_seed)
{
    return measureWithTruth(prog, trace, code, heap, pages, noise_seed)
        .sample;
}

MeasuredRun
MeasurementRunner::measureWithTruth(const trace::Program &prog,
                                    const trace::Trace &trace,
                                    const layout::CodeLayout &code,
                                    const layout::HeapLayout &heap,
                                    u64 noise_seed)
{
    return measureWithTruth(prog, trace, code, heap, layout::PageMap(),
                            noise_seed);
}

MeasuredRun
MeasurementRunner::measureWithTruth(const trace::Program &prog,
                                    const trace::Trace &trace,
                                    const layout::CodeLayout &code,
                                    const layout::HeapLayout &heap,
                                    const layout::PageMap &pages,
                                    u64 noise_seed)
{
    return protocol(machine_.run(prog, trace, code, heap, pages),
                    noise_seed);
}

Measurement
MeasurementRunner::measure(const trace::ReplayPlan &plan,
                           const trace::LayoutTables &tables,
                           u64 noise_seed)
{
    return measureWithTruth(plan, tables, noise_seed).sample;
}

MeasuredRun
MeasurementRunner::measureWithTruth(const trace::ReplayPlan &plan,
                                    const trace::LayoutTables &tables,
                                    u64 noise_seed)
{
    INTERF_SPAN("runner.measure");
    return protocol(machine_.replay(plan, tables), noise_seed);
}

std::vector<Measurement>
MeasurementRunner::measureBatch(const trace::ReplayPlan &plan,
                                const trace::BatchedLayoutTables &tables,
                                const std::vector<u64> &noise_seeds)
{
    auto runs = measureBatchWithTruth(plan, tables, noise_seeds);
    std::vector<Measurement> out;
    out.reserve(runs.size());
    for (auto &r : runs)
        out.push_back(r.sample);
    return out;
}

std::vector<MeasuredRun>
MeasurementRunner::measureBatchWithTruth(
    const trace::ReplayPlan &plan,
    const trace::BatchedLayoutTables &tables,
    const std::vector<u64> &noise_seeds)
{
    INTERF_ASSERT(noise_seeds.size() == tables.lanes());
    INTERF_SPAN("runner.measure_batch");
    std::vector<RunResult> truths = machine_.replayBatch(plan, tables);
    std::vector<MeasuredRun> out;
    out.reserve(truths.size());
    for (size_t l = 0; l < truths.size(); ++l)
        out.push_back(protocol(truths[l], noise_seeds[l]));
    return out;
}

MeasuredRun
MeasurementRunner::protocol(RunResult truth_in, u64 noise_seed)
{
    MeasuredRun out;
    out.truth = truth_in;
    const RunResult &truth = out.truth;
    NoiseModel noise(cfg_.noise, noise_seed);

    auto groups = pmu::standardGroups();
    INTERF_ASSERT(groups.size() == 3);

    // Per group: five noisy runs; keep the median-cycle run. The
    // sample buffer lives outside the lambda so one measurement makes
    // one allocation, not one per group.
    std::vector<double> cycle_samples;
    cycle_samples.reserve(cfg_.runsPerGroup);
    auto median_cycles_for_group = [&](u32 group_idx) -> Cycle {
        cycle_samples.clear();
        for (u32 rep = 0; rep < cfg_.runsPerGroup; ++rep) {
            u64 run_id = static_cast<u64>(group_idx) * cfg_.runsPerGroup +
                         rep;
            cycle_samples.push_back(static_cast<double>(
                noise.perturbCycles(run_id, truth.cycles)));
        }
        size_t keep = stats::medianIndex(cycle_samples);
        return static_cast<Cycle>(cycle_samples[keep]);
    };

    auto truth_count = [&](pmu::Event ev) -> u64 {
        switch (ev) {
          case pmu::Event::RetiredBranches:
            return truth.condBranches;
          case pmu::Event::MispredBranches:
            return truth.mispredicts;
          case pmu::Event::L1IMisses:
            return truth.l1iMisses;
          case pmu::Event::L1DMisses:
            return truth.l1dMisses;
          case pmu::Event::L2Misses:
            return truth.l2Misses;
          case pmu::Event::BtbMisses:
            return truth.btbMisses;
          default:
            panic("unexpected programmable event");
        }
    };

    Measurement &m = out.sample;
    m.layoutSeed = noise_seed;
    m.instructions = truth.instructions;

    for (u32 g = 0; g < groups.size(); ++g) {
        pmu::Pmu pmu;
        pmu.program(groups[g]);
        pmu.count(pmu::Event::RetiredInsts, truth.instructions);
        pmu.count(groups[g].a, truth_count(groups[g].a));
        pmu.count(groups[g].b, truth_count(groups[g].b));
        pmu.count(pmu::Event::Cycles, median_cycles_for_group(g));

        u64 cycles = pmu.read(pmu::Event::Cycles);
        u64 insts = pmu.read(pmu::Event::RetiredInsts);
        double kilo = static_cast<double>(insts) / 1000.0;
        u64 a = pmu.read(groups[g].a);
        u64 b = pmu.read(groups[g].b);
        switch (g) {
          case 0: // branches group also provides CPI
            m.cycles = cycles;
            m.cpi = static_cast<double>(cycles) /
                    static_cast<double>(insts);
            m.mispredicts = a;
            m.condBranches = b;
            m.mpki = static_cast<double>(a) / kilo;
            break;
          case 1:
            m.l1iMisses = a;
            m.l1dMisses = b;
            m.l1iMpki = static_cast<double>(a) / kilo;
            m.l1dMpki = static_cast<double>(b) / kilo;
            break;
          case 2:
            m.l2Misses = a;
            m.btbMisses = b;
            m.l2Mpki = static_cast<double>(a) / kilo;
            m.btbMpki = static_cast<double>(b) / kilo;
            break;
          default:
            panic("unexpected group index %u", g);
        }
    }
    return out;
}

} // namespace interf::core
